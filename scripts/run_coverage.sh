#!/usr/bin/env bash
# Line-coverage report over the tier-1 test suite (docs/STATIC_ANALYSIS.md).
#
# Builds a dedicated AFF_COVERAGE=ON tree (build-cov), runs ctest there, and
# reports line coverage for src/ — the library, not tests/bench/tools. The
# reporter is picked from what the host has, best first:
#
#   1. gcovr      — per-file table + coverage.xml (Cobertura) for CI upload.
#   2. gcov       — aggregate computed from per-file .gcov output (gcc trees;
#                   `llvm-cov gcov` stands in where plain gcov is missing).
#   3. llvm-cov   — source-based `llvm-cov report` (clang trees only).
#
# Either way the last line printed is machine-greppable:
#
#   COVERAGE <percent>% lines (<covered>/<total>) src/
#
# Coverage never gates a PR — the number is a trend line (the baseline lives
# in docs/STATIC_ANALYSIS.md), not a verdict.
# Usage: scripts/run_coverage.sh [ctest-label]   (default: run everything)
# Honors CTEST_PARALLEL_LEVEL for build/test parallelism; defaults to all cores.
set -euo pipefail

jobs="${CTEST_PARALLEL_LEVEL:-$(nproc)}"
label="${1:-}"
cd "$(dirname "$0")/.."
root="$PWD"
tree=build-cov

note() { printf '== %s ==\n' "$*"; }

note "configure + build ($tree, AFF_COVERAGE=ON)"
if [[ ! -f "$tree/CMakeCache.txt" ]]; then
  cmake -B "$tree" -S . -DAFF_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
fi
cmake --build "$tree" -j "$jobs" >/dev/null

note "run tests${label:+ (-L $label)}"
# Stale counters from a previous run would inflate the report.
find "$tree" -name '*.gcda' -delete 2>/dev/null || true
rm -f "$tree"/*.profraw
(cd "$tree" && LLVM_PROFILE_FILE="$root/$tree/cov-%p.profraw" \
  ctest ${label:+-L "$label"} -j "$jobs" --output-on-failure >/dev/null)

summary_line() { # covered total
  local pct="0.0"
  [[ "$2" -gt 0 ]] && pct=$(awk "BEGIN{printf \"%.1f\", 100.0 * $1 / $2}")
  echo "COVERAGE ${pct}% lines ($1/$2) src/"
}

if ls "$tree"/cov-*.profraw >/dev/null 2>&1; then
  # Clang source-based profiles: merge, then report over every test binary.
  note "report: llvm-cov (source-based)"
  llvm-profdata merge -sparse "$tree"/cov-*.profraw -o "$tree/cov.profdata"
  mapfile -t bins < <(find "$tree/tests" -maxdepth 1 -type f -executable)
  objs=()
  for b in "${bins[@]:1}"; do objs+=(-object "$b"); done
  llvm-cov report "${bins[0]}" "${objs[@]}" \
    -instr-profile="$tree/cov.profdata" \
    -ignore-filename-regex='tests/|bench/|examples/|tools/' | tee "$tree/coverage.txt"
  read -r covered total < <(awk '/^TOTAL/ {
    split($0, f); print f[8] - f[9], f[8] }' "$tree/coverage.txt")
  summary_line "$covered" "$total"
elif command -v gcovr >/dev/null; then
  note "report: gcovr"
  gcovr --root . --filter 'src/' --object-directory "$tree" \
    --print-summary --xml "$tree/coverage.xml" --txt "$tree/coverage.txt"
  cat "$tree/coverage.txt"
  read -r covered total < <(awk -F'[="%]' '/<coverage/ {
    for (i = 1; i <= NF; ++i) {
      if ($i == "lines-covered") c = $(i + 2)
      if ($i == "lines-valid") t = $(i + 2)
    }
    print c, t; exit }' "$tree/coverage.xml")
  summary_line "$covered" "$total"
else
  # Plain-gcov fallback: run gcov on every .gcno, aggregate src/ lines.
  gcov_bin="$(command -v gcov || echo 'llvm-cov gcov')"
  note "report: $gcov_bin (aggregate)"
  gcovdir="$tree/gcov-report"
  rm -rf "$gcovdir" && mkdir -p "$gcovdir"
  (cd "$gcovdir" && find ../src -name '*.gcno' -print0 |
    xargs -0 -r $gcov_bin -p >/dev/null 2>&1) || true
  read -r covered total < <(awk '
    # One .gcov per TU+header; the same header seen from many TUs must be
    # merged line-by-line (covered anywhere == covered).
    /^ *-: *0:Source:/ { split($0, a, "Source:"); src = a[2]; next }
    /^ *[0-9#=-]+\**: *[0-9]+:/ {
      if (src !~ /(^|\/)src\//) next
      split($0, f, ":"); gsub(/ /, "", f[1]); gsub(/ /, "", f[2])
      if (f[1] == "-") next
      key = src ":" f[2]
      hit[key] = (hit[key] || f[1] !~ /^[#=]/) ? 1 : 0
    }
    END {
      for (k in hit) { ++t; c += hit[k] }
      print c + 0, t + 0
    }' "$gcovdir"/*.gcov)
  summary_line "$covered" "$total" | tee "$tree/coverage.txt"
fi
