#!/usr/bin/env bash
# Sanitizer sweep: builds four dedicated trees (ASan+UBSan, standalone
# UBSan, TSan, lockdep) and runs the concurrency- and robustness-critical
# tests plus a chaos soak under each. The standalone UBSan tree isolates UB
# reports from ASan's interceptors and shadow-memory effects; the lockdep
# tree (Debug, -DAFF_LOCKDEP=ON) turns every aff::Mutex acquisition into a
# lock-order graph edge and fails the soak on any ordering violation — the
# dynamic half of the lock-discipline layer (docs/STATIC_ANALYSIS.md).
# The chaos soak exercises every frame-fault type, a worker kill, and a
# worker stall — the memory- and race-sensitive paths of the runtime layer.
# Usage: scripts/run_sanitizers.sh [--frames N]
#   --frames N   chaos soak size per engine (default 100000; keep small for
#                TSan, which runs ~10x slower)
# Honors CTEST_PARALLEL_LEVEL (the same knob ctest uses) for build
# parallelism; defaults to all cores.
#
# Every tree runs even after an earlier one fails; the per-tree verdicts are
# summarized at the end and any failure makes the script exit non-zero.
set -uo pipefail

frames=100000
if [[ "${1:-}" == "--frames" ]]; then
  frames="${2:?usage: run_sanitizers.sh [--frames N]}"
fi
jobs="${CTEST_PARALLEL_LEVEL:-$(nproc)}"

# Test binaries that cover the runtime/chaos/proto surface. ctest would work
# too, but invoking the binaries directly keeps one process per suite (ASan
# and TSan diagnostics are per-process) and skips the simulator-only suites.
# arena_test rides along for the frame arena's cross-thread free path
# (Treiber return stack + owner drain), which is TSan's home turf.
suites=(runtime_test chaos_test proto_test tcp_test property_test arena_test)

declare -A verdict

# run_tree <name> <build-type> <cmake-flag> <env-opts> [extra suites...]
run_tree() {
  local name="$1" build_type="$2" cmake_flag="$3" env_opts="$4"
  shift 4
  local tree_suites=("${suites[@]}" "$@")
  local dir="build-$name"
  verdict[$name]=FAIL
  echo "== [$name] configure + build =="
  if [[ ! -f "$dir/CMakeCache.txt" ]]; then
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE="$build_type" "$cmake_flag" || return 1
  fi
  local targets=("${tree_suites[@]}" chaos_soak)
  cmake --build "$dir" -j "$jobs" --target "${targets[@]}" || return 1
  local ok=0
  for t in "${tree_suites[@]}"; do
    echo "== [$name] $t =="
    env $env_opts "$dir/tests/$t" --gtest_brief=1 || ok=1
  done
  echo "== [$name] chaos_soak ($frames frames/engine) =="
  env $env_opts "$dir/tools/chaos_soak" --frames "$frames" || ok=1
  [[ "$ok" -eq 0 ]] && verdict[$name]=PASS
  return "$ok"
}

status=0
run_tree asan RelWithDebInfo -DAFF_ASAN=ON \
  "ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1" || status=1
run_tree ubsan RelWithDebInfo -DAFF_UBSAN=ON \
  "UBSAN_OPTIONS=print_stacktrace=1" || status=1
run_tree tsan RelWithDebInfo -DAFF_TSAN=ON \
  "TSAN_OPTIONS=halt_on_error=1 second_deadlock_stack=1" || status=1
# lockdep_test rides along only here: its dynamic-vs-static cross-check
# needs the live mutex hooks, and GTEST_SKIPs in the other trees.
run_tree lockdep Debug -DAFF_LOCKDEP=ON "" lockdep_test || status=1

echo "== summary =="
for name in asan ubsan tsan lockdep; do
  echo "  $name: ${verdict[$name]:-FAIL}"
done
if [[ "$status" -eq 0 ]]; then
  echo "sanitizers clean: asan+ubsan, ubsan, tsan, and lockdep all passed"
else
  echo "sanitizer sweep FAILED (see per-tree verdicts above)"
fi
exit "$status"
