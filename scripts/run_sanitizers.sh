#!/usr/bin/env bash
# Sanitizer sweep: builds three dedicated trees (ASan+UBSan, standalone
# UBSan, TSan) and runs the concurrency- and robustness-critical tests plus
# a chaos soak under each. The standalone UBSan tree isolates UB reports
# from ASan's interceptors and shadow-memory effects.
# The chaos soak exercises every frame-fault type, a worker kill, and a
# worker stall — the memory- and race-sensitive paths of the runtime layer.
# Usage: scripts/run_sanitizers.sh [--frames N]
#   --frames N   chaos soak size per engine (default 100000; keep small for
#                TSan, which runs ~10x slower)
# Honors CTEST_PARALLEL_LEVEL (the same knob ctest uses) for build
# parallelism; defaults to all cores.
set -euo pipefail

frames=100000
if [[ "${1:-}" == "--frames" ]]; then
  frames="${2:?usage: run_sanitizers.sh [--frames N]}"
fi
jobs="${CTEST_PARALLEL_LEVEL:-$(nproc)}"

# Test binaries that cover the runtime/chaos/proto surface. ctest would work
# too, but invoking the binaries directly keeps one process per suite (ASan
# and TSan diagnostics are per-process) and skips the simulator-only suites.
# arena_test rides along for the frame arena's cross-thread free path
# (Treiber return stack + owner drain), which is TSan's home turf.
suites=(runtime_test chaos_test proto_test tcp_test property_test arena_test)

run_tree() {
  local name="$1" cmake_flag="$2" env_opts="$3"
  local dir="build-$name"
  echo "== [$name] configure + build =="
  if [[ ! -f "$dir/CMakeCache.txt" ]]; then
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$cmake_flag"
  fi
  local targets=("${suites[@]}" chaos_soak)
  cmake --build "$dir" -j "$jobs" --target "${targets[@]}"
  for t in "${suites[@]}"; do
    echo "== [$name] $t =="
    env $env_opts "$dir/tests/$t" --gtest_brief=1
  done
  echo "== [$name] chaos_soak ($frames frames/engine) =="
  env $env_opts "$dir/tools/chaos_soak" --frames "$frames"
}

run_tree asan -DAFF_ASAN=ON \
  "ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1"
run_tree ubsan -DAFF_UBSAN=ON \
  "UBSAN_OPTIONS=print_stacktrace=1"
run_tree tsan -DAFF_TSAN=ON \
  "TSAN_OPTIONS=halt_on_error=1 second_deadlock_stack=1"

echo "sanitizers clean: asan+ubsan, ubsan, and tsan all passed"
