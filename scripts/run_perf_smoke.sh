#!/usr/bin/env bash
# Perf smoke: builds the Release tree and records event-kernel throughput
# (current vs frozen seed kernel) in results/BENCH_sim_kernel.json so the
# perf trajectory is tracked across PRs.
# Usage: scripts/run_perf_smoke.sh [build-dir] [--full]
#   build-dir  Release build tree (default: build-rel; configured if missing)
#   --full     full event counts (3M/workload) instead of the CI smoke size
set -euo pipefail

build_dir="${1:-build-rel}"
mode_flag="--fast"
[[ "${2:-}" == "--full" || "${1:-}" == "--full" ]] && mode_flag=""
[[ "${1:-}" == "--full" ]] && build_dir="build-rel"

if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
fi
if ! grep -q "CMAKE_BUILD_TYPE.*=Release" "$build_dir/CMakeCache.txt"; then
  echo "error: '$build_dir' is not a Release tree; benchmark numbers would be meaningless" >&2
  exit 1
fi
cmake --build "$build_dir" -j --target sim_kernel_bench

mkdir -p results
# Capture the bench exit explicitly so a failure is reported (and propagated)
# even if a caller sources this script into a shell without `set -e`.
status=0
"$build_dir/bench/sim_kernel_bench" ${mode_flag} --json results/BENCH_sim_kernel.json || status=$?
if [[ $status -ne 0 ]]; then
  echo "PERF SMOKE FAIL: sim_kernel_bench exited with status $status" >&2
  exit "$status"
fi
echo "PERF SMOKE PASS: results/BENCH_sim_kernel.json"
