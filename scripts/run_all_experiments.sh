#!/usr/bin/env bash
# Regenerates every table/figure into results/ (text + CSV).
# Usage: scripts/run_all_experiments.sh [build-dir] [--fast]
set -euo pipefail

build_dir="${1:-build}"
fast_flag="${2:-}"

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: '$build_dir/bench' not found; build first (cmake -B build -G Ninja && cmake --build build)" >&2
  exit 1
fi

out_dir="results"
mkdir -p "$out_dir"

for bench in "$build_dir"/bench/*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "== $name"
  if [[ "$name" == "rt_engine" ]]; then
    "$bench" --benchmark_min_time=0.1s > "$out_dir/$name.txt" 2>&1 || true
    continue
  fi
  "$bench" ${fast_flag:+--fast} > "$out_dir/$name.txt"
  "$bench" ${fast_flag:+--fast} --csv > "$out_dir/$name.csv"
done

echo "done: $(ls "$out_dir" | wc -l) files in $out_dir/"
