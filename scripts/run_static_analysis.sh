#!/usr/bin/env bash
# Static-analysis sweep (docs/STATIC_ANALYSIS.md), three passes:
#
#   1. afflint            — repo-specific invariants (metric names,
#                           determinism, layering, lock discipline incl. the
#                           lock-order acquisition graph). Always runs;
#                           builds with any compiler. Also exports the
#                           merged lock graph (DOT + JSON) as build
#                           artifacts — the dynamic lockdep graph
#                           (build-lockdep, scripts/run_sanitizers.sh) is
#                           cross-checked against it in tests/lockdep_test.
#   2. thread-safety      — full build under clang with
#                           -Wthread-safety -Werror=thread-safety, checking
#                           the aff::Mutex annotations.
#   3. clang-tidy         — the curated .clang-tidy profile over every TU in
#                           the tree's compile_commands.json.
#
# Passes 2 and 3 need clang; where it is missing they are reported as
# SKIPPED rather than failed (gcc compiles the annotations away, so there is
# nothing to check locally). The CI static-analysis job installs clang and
# runs all three — SKIPPED here never means "green there", and the final
# status line names every skipped pass so a partial run can't read as full.
# Any failing sub-step (including the lock-graph export) makes the script
# exit non-zero.
# Usage: scripts/run_static_analysis.sh
# Honors CTEST_PARALLEL_LEVEL for build parallelism; defaults to all cores.
set -euo pipefail

jobs="${CTEST_PARALLEL_LEVEL:-$(nproc)}"
cd "$(dirname "$0")/.."

status=0
skipped=()
note() { printf '== %s ==\n' "$*"; }

# -- 1. afflint --------------------------------------------------------------
note "afflint: build"
if [[ ! -f build/CMakeCache.txt ]]; then
  cmake -B build -S . >/dev/null
fi
cmake --build build -j "$jobs" --target afflint >/dev/null
note "afflint: src tools bench"
if ! build/tools/afflint --root .; then
  status=1
fi
note "afflint: lock-graph export (build/lock_graph.{dot,json})"
if ! build/tools/afflint --root . --lock-graph-dot >build/lock_graph.dot ||
  ! build/tools/afflint --root . --lock-graph-json >build/lock_graph.json; then
  status=1
fi

# -- 2. clang thread-safety analysis ----------------------------------------
if command -v clang++ >/dev/null; then
  note "thread-safety: clang++ -Werror=thread-safety (tree: build-tsa)"
  if [[ ! -f build-tsa/CMakeCache.txt ]]; then
    cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ -DAFF_THREAD_SAFETY=ON >/dev/null
  fi
  if ! cmake --build build-tsa -j "$jobs"; then
    status=1
  fi
else
  note "thread-safety: SKIPPED (no clang++; annotations are no-ops under $(${CXX:-c++} --version | head -1))"
  skipped+=(thread-safety)
fi

# -- 3. clang-tidy -----------------------------------------------------------
if command -v clang-tidy >/dev/null; then
  db=build-tsa
  [[ -f "$db/compile_commands.json" ]] || db=build
  note "clang-tidy: every TU in $db/compile_commands.json"
  runner="$(command -v run-clang-tidy || command -v run-clang-tidy.py || true)"
  if [[ -n "$runner" ]]; then
    if ! "$runner" -p "$db" -quiet -j "$jobs"; then
      status=1
    fi
  else
    mapfile -t files < <(grep -o '"file": "[^"]*"' "$db/compile_commands.json" |
      cut -d'"' -f4 | sort -u)
    if ! clang-tidy -p "$db" --quiet "${files[@]}"; then
      status=1
    fi
  fi
else
  note "clang-tidy: SKIPPED (not installed)"
  skipped+=(clang-tidy)
fi

if [[ "$status" -eq 0 ]]; then
  if [[ "${#skipped[@]}" -eq 0 ]]; then
    echo "static analysis clean (all passes ran)"
  else
    echo "static analysis clean, but SKIPPED: ${skipped[*]} — not green there, just unchecked"
  fi
else
  echo "static analysis FAILED"
fi
exit "$status"
