// Per-stream delivery-order battery for the real-thread engines under every
// NIC dispatch mode and overload policy, plus a deterministic reproduction
// of the Flow-Director pin-migration reordering pathology (Wu et al.,
// "Why Does Flow Director Cause Packet Reordering?", arXiv:1106.0443) and
// its transport-friendly fix (arXiv:1106.0445) as an A-B pair.
//
// The ordering contract this battery pins:
//
//   * IpsEngine       — in order for every NIC mode: each stream has exactly
//                       one consumer, and a pin can only move on failover.
//   * DispatchEngine  — in order under kStreamHash with direct and RSS
//                       dispatch (stateless maps), and even under Flow
//                       Director while the pin never moves.
//   * LockingEngine   — in order with one worker; with several workers the
//                       shared queue gives no per-stream total order (that
//                       is the paradigm, not a bug) — we only require
//                       conservation there.
//   * Flow Director + a pin migration — provably reorders: new arrivals
//                       chase the new home while old frames drain at the
//                       old one. The checker must flag it.
//   * TransportFriendly + the same migration — provably does NOT reorder:
//                       the repin parks until the old home's in-flight
//                       prefix drains, so nothing ever overtakes it.
//
// The CrossStackDifferential suite at the bottom runs the same
// consumer-re-home experiment through the discrete-event simulator and the
// real-thread engines and requires the two independent implementations to
// return the same verdict for every dispatch mode.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/protocol_sim.hpp"
#include "net/ordering.hpp"
#include "proto/stack.hpp"
#include "runtime/dispatch_engine.hpp"
#include "runtime/engine.hpp"

namespace affinity {
namespace {

constexpr std::uint16_t kPort = 7000;
constexpr std::uint32_t kStreams = 8;
constexpr std::uint64_t kFramesPerStream = 200;

std::vector<std::uint8_t> frameFor(std::uint32_t stream) {
  FrameSpec spec;
  spec.dst_port = kPort;
  spec.src_port = static_cast<std::uint16_t>(1000 + stream);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return buildUdpFrame(spec, payload);
}

/// Round-robin submit of kStreams * kFramesPerStream valid frames with
/// per-stream sequence numbers, then stop (drains everything).
template <typename Engine>
void driveAndStop(Engine& engine) {
  for (std::uint64_t seq = 0; seq < kFramesPerStream; ++seq)
    for (std::uint32_t s = 0; s < kStreams; ++s)
      EXPECT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.stop();
}

struct Battery {
  net::OrderingChecker checker;
  EngineOptions options;

  explicit Battery(net::NicDispatchMode mode, OverloadPolicy overload,
                   bool steal = false) {
    options.queue_capacity = 4096;  // roomy: overload paths stay untriggered
    options.nic_mode = mode;
    options.overload = overload;
    options.steal = steal;
    options.delivered_observer = [this](const WorkItem& item) {
      checker.record(item.stream, item.seq);
    };
  }
};

const net::NicDispatchMode kAllModes[] = {net::NicDispatchMode::kDirect,
                                          net::NicDispatchMode::kRss,
                                          net::NicDispatchMode::kFlowDirector,
                                          net::NicDispatchMode::kTransportFriendly};
const OverloadPolicy kAllOverloads[] = {OverloadPolicy::kBlock, OverloadPolicy::kRejectNewest,
                                        OverloadPolicy::kDropOldest};

TEST(OrderingBattery, IpsInOrderForEveryNicModeAndOverload) {
  for (net::NicDispatchMode mode : kAllModes) {
    for (OverloadPolicy overload : kAllOverloads) {
      SCOPED_TRACE(std::string(net::nicModeName(mode)) + " / " + overloadPolicyName(overload));
      Battery b(mode, overload);
      IpsEngine engine(3, HostConfig{}, b.options);
      engine.openPort(kPort, 4096);
      engine.start();
      driveAndStop(engine);
      const net::OrderingReport r = b.checker.report();
      EXPECT_EQ(r.observed, kStreams * kFramesPerStream);
      EXPECT_EQ(r.streams, kStreams);
      EXPECT_TRUE(r.inOrder()) << "reordered=" << r.reordered << " dup=" << r.duplicated;
      EXPECT_TRUE(engine.stats().conserved());
    }
  }
}

TEST(OrderingBattery, DispatchStreamHashInOrderForEveryNicModeAndOverload) {
  for (net::NicDispatchMode mode : kAllModes) {
    for (OverloadPolicy overload : kAllOverloads) {
      SCOPED_TRACE(std::string(net::nicModeName(mode)) + " / " + overloadPolicyName(overload));
      Battery b(mode, overload);
      DispatchEngine engine(3, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
      engine.openPort(kPort, 4096);
      engine.start();
      driveAndStop(engine);
      const net::OrderingReport r = b.checker.report();
      EXPECT_EQ(r.observed, kStreams * kFramesPerStream);
      EXPECT_TRUE(r.inOrder()) << "reordered=" << r.reordered << " dup=" << r.duplicated;
      EXPECT_TRUE(engine.stats().conserved());
    }
  }
}

TEST(OrderingBattery, LockingSingleWorkerInOrderForEveryOverload) {
  for (OverloadPolicy overload : kAllOverloads) {
    SCOPED_TRACE(overloadPolicyName(overload));
    Battery b(net::NicDispatchMode::kDirect, overload);
    LockingEngine engine(1, HostConfig{}, b.options);
    engine.openPort(kPort, 4096);
    engine.start();
    driveAndStop(engine);
    const net::OrderingReport r = b.checker.report();
    EXPECT_EQ(r.observed, kStreams * kFramesPerStream);
    EXPECT_TRUE(r.inOrder()) << "reordered=" << r.reordered << " dup=" << r.duplicated;
    EXPECT_TRUE(engine.stats().conserved());
  }
}

TEST(OrderingBattery, LockingMultiWorkerConservesButPromisesNoOrder) {
  // The shared queue hands consecutive frames of one stream to different
  // workers; delivery order then depends on lock arbitration. The engine
  // must still conserve and deliver everything — order is not part of the
  // Locking paradigm's contract, which is precisely why the paper's wired
  // policies exist.
  Battery b(net::NicDispatchMode::kDirect, OverloadPolicy::kBlock);
  LockingEngine engine(4, HostConfig{}, b.options);
  engine.openPort(kPort, 4096);
  engine.start();
  driveAndStop(engine);
  EXPECT_EQ(b.checker.report().observed, kStreams * kFramesPerStream);
  EXPECT_TRUE(engine.stats().conserved());
}

// ------------------------------------------- Flow Director reordering ---

// Deterministic Wu et al. reproduction: strand a stream's frames at its
// pinned worker (killed, so nothing drains until stop() reconciles), move
// the pin, and deliver newer frames through the new home first. The
// pre-migration frames then arrive late and the checker must flag every
// one of them as a regression.
TEST(FlowDirectorReordering, PinMigrationReordersAStream) {
  Battery b(net::NicDispatchMode::kFlowDirector, OverloadPolicy::kBlock);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();

  // A stream whose Flow Director pin lands on worker 0.
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;

  engine.injectWorkerKill(0);  // old home: frames strand until stop()
  for (std::uint64_t seq = 0; seq < 5; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.repinStream(s, 1);  // the migration
  for (std::uint64_t seq = 5; seq < 10; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  // Let the new home deliver the post-migration frames first.
  while (engine.stats().delivered < 5) std::this_thread::yield();
  engine.stop();  // reconciles the stranded pre-migration frames — late

  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, 10u);
  EXPECT_EQ(r.reordered, 5u) << "every pre-migration frame must arrive late";
  // The first-offense capture names the exact stranded prefix: seq 0 arrived
  // behind the last post-migration frame.
  ASSERT_FALSE(r.faults.empty());
  EXPECT_EQ(r.faults[0].stream, s);
  EXPECT_EQ(r.faults[0].seq, 0u);
  EXPECT_EQ(r.faults[0].watermark, 9u) << r.describeFaults();
  EXPECT_TRUE(engine.stats().conserved());
  EXPECT_GE(engine.stats().nic_migrations, 1u);
}

TEST(FlowDirectorReordering, WithoutMigrationTheSameTrafficStaysInOrder) {
  // Control: identical traffic and worker kill, but no repin — everything
  // drains from the one (stranded) queue in submit order at stop().
  Battery b(net::NicDispatchMode::kFlowDirector, OverloadPolicy::kBlock);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;
  engine.injectWorkerKill(0);
  for (std::uint64_t seq = 0; seq < 10; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.stop();
  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, 10u);
  EXPECT_TRUE(r.inOrder());
  EXPECT_EQ(engine.stats().nic_migrations, 0u);
}

// --------------------------------------- transport-friendly A-B twins ---

// A-B twin of PinMigrationReordersAStream: same worker kill, same traffic,
// same forced migration — but the transport-friendly dispatcher parks the
// repin behind the stranded in-flight prefix. Every frame keeps routing to
// the old home, stop() drains that one queue in submit order, and the
// checker sees a perfectly ordered stream where Flow Director produced five
// regressions. This pair is the paper pathology and its fix, end to end.
TEST(TransportFriendlyOrdering, DeferredRepinClosesTheMigrationPathology) {
  Battery b(net::NicDispatchMode::kTransportFriendly, OverloadPolicy::kBlock);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;
  engine.injectWorkerKill(0);  // old home: frames strand until stop()
  for (std::uint64_t seq = 0; seq < 5; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.repinStream(s, 1);  // the migration — parked: five frames in flight
  EXPECT_EQ(engine.route(s), 0u) << "the pin must not move over a stranded prefix";
  for (std::uint64_t seq = 5; seq < 10; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.stop();  // reconciles the whole queue — in submit order

  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, 10u);
  EXPECT_TRUE(r.inOrder()) << r.describeFaults();
  EXPECT_TRUE(engine.stats().conserved());
  EXPECT_GE(engine.stats().nic_tfn_deferred, 1u) << "the repin must have parked";
  // The parked move may still apply once stop()'s reconcile fully drains the
  // stream — that is safe (nothing is queued anywhere) and at most one move.
  EXPECT_LE(engine.stats().nic_migrations, 1u);
}

// Control twin of WithoutMigrationTheSameTrafficStaysInOrder: no repin, and
// the transport-friendly ledger stays quiet (no deferral, no migration).
TEST(TransportFriendlyOrdering, WithoutMigrationTheLedgerStaysQuiet) {
  Battery b(net::NicDispatchMode::kTransportFriendly, OverloadPolicy::kBlock);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;
  engine.injectWorkerKill(0);
  for (std::uint64_t seq = 0; seq < 10; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.stop();
  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, 10u);
  EXPECT_TRUE(r.inOrder()) << r.describeFaults();
  EXPECT_EQ(engine.stats().nic_migrations, 0u);
  EXPECT_EQ(engine.stats().nic_tfn_deferred, 0u);
}

// --------------------------------------------------- work stealing ---

TEST(StealAffinity, IdleWorkerStealsAStrandedQueueInOrder) {
  // Worker 0 is killed immediately; every frame of its stream can only be
  // delivered by worker 1 stealing batches from the dead worker's MPMC
  // queue (head-first, so order is preserved). The final frame sits below
  // the steal threshold (depth >= 2) and is reconciled by stop().
  Battery b(net::NicDispatchMode::kDirect, OverloadPolicy::kBlock, /*steal=*/true);
  b.options.steal_batch = 4;
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  engine.injectWorkerKill(0);
  constexpr std::uint64_t kFrames = 100;
  for (std::uint64_t seq = 0; seq < kFrames; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(0), 0, {}, seq}));  // stream 0 -> worker 0
  while (engine.stats().delivered < kFrames - 1) std::this_thread::yield();
  engine.stop();

  const EngineStats s = engine.stats();
  EXPECT_TRUE(s.conserved());
  EXPECT_EQ(s.delivered, kFrames);
  EXPECT_GE(s.steals, 1u);
  EXPECT_GE(s.stolen, kFrames - b.options.steal_batch);
  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, kFrames);
  EXPECT_TRUE(r.inOrder()) << "head-first batch stealing must not reorder";
}

TEST(StealAffinity, StealingUnderFlowDirectorMovesThePin) {
  // Same stranded-queue setup under Flow Director: once the thief runs the
  // stream, the pin chases it — new arrivals route to the thief directly.
  Battery b(net::NicDispatchMode::kFlowDirector, OverloadPolicy::kBlock, /*steal=*/true);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;
  engine.injectWorkerKill(0);
  for (std::uint64_t seq = 0; seq < 50; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  while (engine.stats().delivered < 49) std::this_thread::yield();
  EXPECT_EQ(engine.route(s), 1u) << "the pin must have followed the thief";
  engine.stop();
  const EngineStats st = engine.stats();
  EXPECT_TRUE(st.conserved());
  EXPECT_GE(st.nic_migrations, 1u);
}

TEST(StealAffinity, StealingUnderTransportFriendlyMovesThePinOnlyAfterDrain) {
  // Same stranded-queue setup under the transport-friendly dispatcher: the
  // thief's consumption *proposes* the move, but the pin holds until every
  // frame dispatched to the old home has drained — so, unlike Flow Director,
  // delivery stays in order while the pin still ends up at the thief.
  Battery b(net::NicDispatchMode::kTransportFriendly, OverloadPolicy::kBlock,
            /*steal=*/true);
  b.options.steal_batch = 4;
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;
  engine.injectWorkerKill(0);
  for (std::uint64_t seq = 0; seq < 50; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  while (engine.stats().delivered < 49) std::this_thread::yield();
  engine.stop();

  const EngineStats st = engine.stats();
  EXPECT_TRUE(st.conserved());
  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, 50u);
  EXPECT_TRUE(r.inOrder()) << r.describeFaults();
  EXPECT_GE(st.nic_tfn_feedback, 1u) << "the thief's consumption must be heard";
  EXPECT_GE(st.nic_migrations, 1u) << "the pin must eventually follow the thief";
  EXPECT_GE(st.nic_tfn_applied, 1u) << "and the move must be a deferred apply";
  EXPECT_EQ(engine.route(s), 1u) << "after the drain the pin is at the thief";
}

TEST(TransportFriendlyOrdering, ComposesWithIpsWatchdogFailover) {
  // The IPS engine's watchdog declares a killed worker failed, re-homes its
  // streams, and flushes its ring to the survivor. Under the
  // transport-friendly dispatcher the corpse's drains are stale feedback
  // (they must not re-arm the pin toward the dead worker) while the
  // survivor's consumptions are live. Whatever the interleaving:
  // conservation holds and every frame is delivered.
  Battery b(net::NicDispatchMode::kTransportFriendly, OverloadPolicy::kBlock);
  b.options.watchdog = true;
  b.options.watchdog_interval = std::chrono::milliseconds(1);
  IpsEngine engine(2, HostConfig{}, b.options);
  engine.openPort(kPort, 4096);
  engine.start();
  std::uint32_t s = 0;
  while (engine.workerOf(s) != 0) ++s;
  for (std::uint64_t seq = 0; seq < 50; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.injectWorkerKill(0);
  // Wait for the watchdog to declare the failure and re-home the stream.
  while (engine.stats().worker_failures < 1) std::this_thread::yield();
  for (std::uint64_t seq = 50; seq < 100; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.stop();

  const EngineStats st = engine.stats();
  EXPECT_TRUE(st.conserved());
  EXPECT_EQ(st.delivered, 100u);
  EXPECT_EQ(b.checker.report().observed, 100u);
  EXPECT_GE(st.worker_failures, 1u);
  EXPECT_GE(st.nic_tfn_feedback, 1u);
}

// ----------------------------------------- cross-stack differential ---
//
// The same experiment — a consumer re-home while a stream has frames in
// flight — run through both independent implementations in this repo: the
// discrete-event simulator (src/core, steal-affinity migrates a burst) and
// the real-thread DispatchEngine (worker kill + forced repin). Each run is
// reduced to a verdict; the two stacks must agree on it for every NIC
// dispatch mode, and the expected pattern is exactly the paper pair:
// Flow Director reorders the stranded prefix, everything else stays in
// order. The shared-queue Locking paradigm promises conservation only, so
// its verdict never claims order in either stack.

enum class Verdict { kInOrder, kReordersStrandedPrefix, kConservationOnly };

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::kInOrder: return "in-order";
    case Verdict::kReordersStrandedPrefix: return "reorders-stranded-prefix";
    case Verdict::kConservationOnly: return "conservation-only";
  }
  return "?";
}

/// Real-thread side: kill the home worker, strand a prefix, force the
/// migration, let the new home (if any) deliver first. Deterministic: the
/// only waiting is for deliveries that provably must happen.
Verdict runtimeVerdict(net::NicDispatchMode mode) {
  Battery b(mode, OverloadPolicy::kBlock);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;
  engine.injectWorkerKill(0);
  for (std::uint64_t seq = 0; seq < 5; ++seq)
    EXPECT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.repinStream(s, 1);
  for (std::uint64_t seq = 5; seq < 10; ++seq)
    EXPECT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  // Only Flow Director moves the pin immediately — there the new home must
  // deliver the post-migration frames before stop() reconciles the prefix.
  if (mode == net::NicDispatchMode::kFlowDirector)
    while (engine.stats().delivered < 5) std::this_thread::yield();
  engine.stop();

  EXPECT_TRUE(engine.stats().conserved());
  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, 10u);
  if (r.inOrder()) return Verdict::kInOrder;
  // "Reorders exactly the stranded prefix": every pre-migration frame is
  // late and the first offense is the head of the prefix.
  EXPECT_EQ(r.reordered, 5u) << r.describeFaults();
  EXPECT_FALSE(r.faults.empty());
  if (!r.faults.empty()) {
    EXPECT_EQ(r.faults[0].seq, 0u) << r.describeFaults();
  }
  return Verdict::kReordersStrandedPrefix;
}

/// Records per-stream service-start order in the simulator: a stream whose
/// service starts have nondecreasing arrival times was processed in order.
class ServiceOrderObserver : public SimObserver {
 public:
  void onServiceStart(unsigned, std::uint32_t stream, std::uint32_t, double arrival_us,
                      double, double) override {
    if (stream >= last_.size()) last_.resize(stream + 1, -1.0);
    if (arrival_us < last_[stream]) {
      ++regressions_;
    } else {
      last_[stream] = arrival_us;
    }
  }
  void onServiceEnd(unsigned, std::uint32_t, std::uint32_t, double) override {}
  [[nodiscard]] std::uint64_t regressions() const noexcept { return regressions_; }

 private:
  std::vector<double> last_;
  std::uint64_t regressions_ = 0;
};

/// Simulator side: two processors under steal-affinity with steal_batch = 1
/// (a stolen job starts synchronously at the steal, so the scheduling layer
/// itself never inverts a stream — any regression is the dispatcher's).
/// Bursty traffic makes thieves re-home streams constantly; under Flow
/// Director the pin chases the thief and new arrivals overtake the victim's
/// queued prefix.
Verdict simVerdict(net::NicDispatchMode mode, ServiceOrderObserver& obs) {
  SimConfig c = defaultSimConfig();
  c.num_procs = 2;
  c.policy.locking = LockingPolicy::kStealAffinity;
  c.dispatch = mode;
  c.steal_batch = 1;
  c.steal_min_queue = 2;
  c.seed = 7;
  c.warmup_us = 10'000.0;
  c.measure_us = 120'000.0;
  c.observer = &obs;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), makeBatchStreams(4, 0.008, 8.0));
  EXPECT_GT(m.steals, 0u) << "the experiment must actually re-home streams";
  return obs.regressions() == 0 ? Verdict::kInOrder : Verdict::kReordersStrandedPrefix;
}

TEST(CrossStackDifferential, SimulatorAndEnginesAgreeOnEveryDispatchMode) {
  for (net::NicDispatchMode mode : kAllModes) {
    SCOPED_TRACE(net::nicModeName(mode));
    ServiceOrderObserver obs;
    const Verdict sim = simVerdict(mode, obs);
    const Verdict rt = runtimeVerdict(mode);
    EXPECT_EQ(sim, rt) << "sim says " << verdictName(sim) << ", engines say "
                       << verdictName(rt);
    const Verdict expected = mode == net::NicDispatchMode::kFlowDirector
                                 ? Verdict::kReordersStrandedPrefix
                                 : Verdict::kInOrder;
    EXPECT_EQ(rt, expected) << verdictName(rt);
  }
}

TEST(CrossStackDifferential, SharedQueueLockingIsConservationOnly) {
  // The Locking paradigm's shared queue hands consecutive frames of one
  // stream to whichever worker wins the lock — order is explicitly not part
  // of its contract (that is why the paper's wired policies exist), so its
  // verdict is conservation-only in both stacks by construction. What *is*
  // checked: nothing vanishes.
  Battery b(net::NicDispatchMode::kDirect, OverloadPolicy::kBlock);
  LockingEngine engine(4, HostConfig{}, b.options);
  engine.openPort(kPort, 4096);
  engine.start();
  driveAndStop(engine);
  EXPECT_TRUE(engine.stats().conserved());
  EXPECT_EQ(b.checker.report().observed, kStreams * kFramesPerStream);
}

}  // namespace
}  // namespace affinity
