// Per-stream delivery-order battery for the real-thread engines under every
// NIC dispatch mode and overload policy, plus a deterministic reproduction
// of the Flow-Director pin-migration reordering pathology (Wu et al.,
// "Why Does Flow Director Cause Packet Reordering?", arXiv:1106.0443).
//
// The ordering contract this battery pins:
//
//   * IpsEngine       — in order for every NIC mode: each stream has exactly
//                       one consumer, and a pin can only move on failover.
//   * DispatchEngine  — in order under kStreamHash with direct and RSS
//                       dispatch (stateless maps), and even under Flow
//                       Director while the pin never moves.
//   * LockingEngine   — in order with one worker; with several workers the
//                       shared queue gives no per-stream total order (that
//                       is the paradigm, not a bug) — we only require
//                       conservation there.
//   * Flow Director + a pin migration — provably reorders: new arrivals
//                       chase the new home while old frames drain at the
//                       old one. The checker must flag it.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/ordering.hpp"
#include "proto/stack.hpp"
#include "runtime/dispatch_engine.hpp"
#include "runtime/engine.hpp"

namespace affinity {
namespace {

constexpr std::uint16_t kPort = 7000;
constexpr std::uint32_t kStreams = 8;
constexpr std::uint64_t kFramesPerStream = 200;

std::vector<std::uint8_t> frameFor(std::uint32_t stream) {
  FrameSpec spec;
  spec.dst_port = kPort;
  spec.src_port = static_cast<std::uint16_t>(1000 + stream);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return buildUdpFrame(spec, payload);
}

/// Round-robin submit of kStreams * kFramesPerStream valid frames with
/// per-stream sequence numbers, then stop (drains everything).
template <typename Engine>
void driveAndStop(Engine& engine) {
  for (std::uint64_t seq = 0; seq < kFramesPerStream; ++seq)
    for (std::uint32_t s = 0; s < kStreams; ++s)
      EXPECT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.stop();
}

struct Battery {
  net::OrderingChecker checker;
  EngineOptions options;

  explicit Battery(net::NicDispatchMode mode, OverloadPolicy overload,
                   bool steal = false) {
    options.queue_capacity = 4096;  // roomy: overload paths stay untriggered
    options.nic_mode = mode;
    options.overload = overload;
    options.steal = steal;
    options.delivered_observer = [this](const WorkItem& item) {
      checker.record(item.stream, item.seq);
    };
  }
};

const net::NicDispatchMode kAllModes[] = {net::NicDispatchMode::kDirect,
                                          net::NicDispatchMode::kRss,
                                          net::NicDispatchMode::kFlowDirector};
const OverloadPolicy kAllOverloads[] = {OverloadPolicy::kBlock, OverloadPolicy::kRejectNewest,
                                        OverloadPolicy::kDropOldest};

TEST(OrderingBattery, IpsInOrderForEveryNicModeAndOverload) {
  for (net::NicDispatchMode mode : kAllModes) {
    for (OverloadPolicy overload : kAllOverloads) {
      SCOPED_TRACE(std::string(net::nicModeName(mode)) + " / " + overloadPolicyName(overload));
      Battery b(mode, overload);
      IpsEngine engine(3, HostConfig{}, b.options);
      engine.openPort(kPort, 4096);
      engine.start();
      driveAndStop(engine);
      const net::OrderingReport r = b.checker.report();
      EXPECT_EQ(r.observed, kStreams * kFramesPerStream);
      EXPECT_EQ(r.streams, kStreams);
      EXPECT_TRUE(r.inOrder()) << "reordered=" << r.reordered << " dup=" << r.duplicated;
      EXPECT_TRUE(engine.stats().conserved());
    }
  }
}

TEST(OrderingBattery, DispatchStreamHashInOrderForEveryNicModeAndOverload) {
  for (net::NicDispatchMode mode : kAllModes) {
    for (OverloadPolicy overload : kAllOverloads) {
      SCOPED_TRACE(std::string(net::nicModeName(mode)) + " / " + overloadPolicyName(overload));
      Battery b(mode, overload);
      DispatchEngine engine(3, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
      engine.openPort(kPort, 4096);
      engine.start();
      driveAndStop(engine);
      const net::OrderingReport r = b.checker.report();
      EXPECT_EQ(r.observed, kStreams * kFramesPerStream);
      EXPECT_TRUE(r.inOrder()) << "reordered=" << r.reordered << " dup=" << r.duplicated;
      EXPECT_TRUE(engine.stats().conserved());
    }
  }
}

TEST(OrderingBattery, LockingSingleWorkerInOrderForEveryOverload) {
  for (OverloadPolicy overload : kAllOverloads) {
    SCOPED_TRACE(overloadPolicyName(overload));
    Battery b(net::NicDispatchMode::kDirect, overload);
    LockingEngine engine(1, HostConfig{}, b.options);
    engine.openPort(kPort, 4096);
    engine.start();
    driveAndStop(engine);
    const net::OrderingReport r = b.checker.report();
    EXPECT_EQ(r.observed, kStreams * kFramesPerStream);
    EXPECT_TRUE(r.inOrder()) << "reordered=" << r.reordered << " dup=" << r.duplicated;
    EXPECT_TRUE(engine.stats().conserved());
  }
}

TEST(OrderingBattery, LockingMultiWorkerConservesButPromisesNoOrder) {
  // The shared queue hands consecutive frames of one stream to different
  // workers; delivery order then depends on lock arbitration. The engine
  // must still conserve and deliver everything — order is not part of the
  // Locking paradigm's contract, which is precisely why the paper's wired
  // policies exist.
  Battery b(net::NicDispatchMode::kDirect, OverloadPolicy::kBlock);
  LockingEngine engine(4, HostConfig{}, b.options);
  engine.openPort(kPort, 4096);
  engine.start();
  driveAndStop(engine);
  EXPECT_EQ(b.checker.report().observed, kStreams * kFramesPerStream);
  EXPECT_TRUE(engine.stats().conserved());
}

// ------------------------------------------- Flow Director reordering ---

// Deterministic Wu et al. reproduction: strand a stream's frames at its
// pinned worker (killed, so nothing drains until stop() reconciles), move
// the pin, and deliver newer frames through the new home first. The
// pre-migration frames then arrive late and the checker must flag every
// one of them as a regression.
TEST(FlowDirectorReordering, PinMigrationReordersAStream) {
  Battery b(net::NicDispatchMode::kFlowDirector, OverloadPolicy::kBlock);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();

  // A stream whose Flow Director pin lands on worker 0.
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;

  engine.injectWorkerKill(0);  // old home: frames strand until stop()
  for (std::uint64_t seq = 0; seq < 5; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.repinStream(s, 1);  // the migration
  for (std::uint64_t seq = 5; seq < 10; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  // Let the new home deliver the post-migration frames first.
  while (engine.stats().delivered < 5) std::this_thread::yield();
  engine.stop();  // reconciles the stranded pre-migration frames — late

  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, 10u);
  EXPECT_EQ(r.reordered, 5u) << "every pre-migration frame must arrive late";
  EXPECT_TRUE(engine.stats().conserved());
  EXPECT_GE(engine.stats().nic_migrations, 1u);
}

TEST(FlowDirectorReordering, WithoutMigrationTheSameTrafficStaysInOrder) {
  // Control: identical traffic and worker kill, but no repin — everything
  // drains from the one (stranded) queue in submit order at stop().
  Battery b(net::NicDispatchMode::kFlowDirector, OverloadPolicy::kBlock);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;
  engine.injectWorkerKill(0);
  for (std::uint64_t seq = 0; seq < 10; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.stop();
  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, 10u);
  EXPECT_TRUE(r.inOrder());
  EXPECT_EQ(engine.stats().nic_migrations, 0u);
}

// --------------------------------------------------- work stealing ---

TEST(StealAffinity, IdleWorkerStealsAStrandedQueueInOrder) {
  // Worker 0 is killed immediately; every frame of its stream can only be
  // delivered by worker 1 stealing batches from the dead worker's MPMC
  // queue (head-first, so order is preserved). The final frame sits below
  // the steal threshold (depth >= 2) and is reconciled by stop().
  Battery b(net::NicDispatchMode::kDirect, OverloadPolicy::kBlock, /*steal=*/true);
  b.options.steal_batch = 4;
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  engine.injectWorkerKill(0);
  constexpr std::uint64_t kFrames = 100;
  for (std::uint64_t seq = 0; seq < kFrames; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(0), 0, {}, seq}));  // stream 0 -> worker 0
  while (engine.stats().delivered < kFrames - 1) std::this_thread::yield();
  engine.stop();

  const EngineStats s = engine.stats();
  EXPECT_TRUE(s.conserved());
  EXPECT_EQ(s.delivered, kFrames);
  EXPECT_GE(s.steals, 1u);
  EXPECT_GE(s.stolen, kFrames - b.options.steal_batch);
  const net::OrderingReport r = b.checker.report();
  EXPECT_EQ(r.observed, kFrames);
  EXPECT_TRUE(r.inOrder()) << "head-first batch stealing must not reorder";
}

TEST(StealAffinity, StealingUnderFlowDirectorMovesThePin) {
  // Same stranded-queue setup under Flow Director: once the thief runs the
  // stream, the pin chases it — new arrivals route to the thief directly.
  Battery b(net::NicDispatchMode::kFlowDirector, OverloadPolicy::kBlock, /*steal=*/true);
  DispatchEngine engine(2, DispatchPolicy::kStreamHash, HostConfig{}, b.options);
  engine.openPort(kPort, 1024);
  engine.start();
  std::uint32_t s = 0;
  while (engine.route(s) != 0) ++s;
  engine.injectWorkerKill(0);
  for (std::uint64_t seq = 0; seq < 50; ++seq)
    ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  while (engine.stats().delivered < 49) std::this_thread::yield();
  EXPECT_EQ(engine.route(s), 1u) << "the pin must have followed the thief";
  engine.stop();
  const EngineStats st = engine.stats();
  EXPECT_TRUE(st.conserved());
  EXPECT_GE(st.nic_migrations, 1u);
}

}  // namespace
}  // namespace affinity
