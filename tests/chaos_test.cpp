// Chaos-layer tests: FaultInjector determinism and semantics, engine
// recovery from injected worker kills/stalls, overload policies, and the
// end-to-end conservation ledger on both engines.
#include <gtest/gtest.h>

#include "runtime/chaos.hpp"
#include "workload/frame_gen.hpp"

namespace affinity {
namespace {

WorkItem makeItem(std::uint32_t stream, std::size_t bytes) {
  WorkItem item;
  item.stream = stream;
  item.frame.assign(bytes, static_cast<std::uint8_t>(stream));
  return item;
}

// ------------------------------------------------------------ injector --

TEST(FaultInjector, ZeroRatesPassThroughUntouched) {
  FaultInjector inj(42, FaultRates{});
  std::vector<WorkItem> out;
  for (std::uint32_t i = 0; i < 100; ++i) inj.apply(makeItem(i, 64), out);
  inj.flush(out);
  ASSERT_EQ(out.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i].stream, i);
    EXPECT_EQ(out[i].frame, makeItem(i, 64).frame);
  }
  EXPECT_EQ(inj.counts().input, 100u);
  EXPECT_EQ(inj.counts().emitted, 100u);
  EXPECT_EQ(inj.counts().dropped, 0u);
}

TEST(FaultInjector, SameSeedSameFaults) {
  const FaultRates rates{.drop = 0.1, .bitflip = 0.1, .truncate = 0.1,
                         .duplicate = 0.1, .reorder = 0.1};
  FaultInjector a(7, rates), b(7, rates);
  std::vector<WorkItem> out_a, out_b;
  for (std::uint32_t i = 0; i < 500; ++i) {
    a.apply(makeItem(i, 128), out_a);
    b.apply(makeItem(i, 128), out_b);
  }
  a.flush(out_a);
  b.flush(out_b);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].stream, out_b[i].stream);
    EXPECT_EQ(out_a[i].frame, out_b[i].frame);
  }
  EXPECT_EQ(a.counts().dropped, b.counts().dropped);
  EXPECT_EQ(a.counts().bitflips, b.counts().bitflips);
  EXPECT_EQ(a.counts().truncations, b.counts().truncations);
  EXPECT_EQ(a.counts().duplicates, b.counts().duplicates);
  EXPECT_EQ(a.counts().reordered, b.counts().reordered);
}

TEST(FaultInjector, LedgerBalancesUnderAllFaults) {
  FaultRates rates{.drop = 0.05, .bitflip = 0.05, .truncate = 0.05,
                   .duplicate = 0.05, .reorder = 0.05};
  FaultInjector inj(99, rates);
  std::vector<WorkItem> out;
  for (std::uint32_t i = 0; i < 2000; ++i) inj.apply(makeItem(i, 64), out);
  inj.flush(out);
  const FaultCounts& c = inj.counts();
  // Every input frame is either dropped or emitted; duplicates add copies.
  EXPECT_EQ(c.input, 2000u);
  EXPECT_EQ(c.emitted, c.input - c.dropped + c.duplicates);
  EXPECT_EQ(out.size(), c.emitted);
  EXPECT_GT(c.dropped, 0u);
  EXPECT_GT(c.bitflips, 0u);
  EXPECT_GT(c.truncations, 0u);
  EXPECT_GT(c.duplicates, 0u);
  EXPECT_GT(c.reordered, 0u);
}

TEST(FaultInjector, BitflipChangesExactlyOneBit) {
  FaultInjector inj(5, FaultRates{.bitflip = 1.0});
  std::vector<WorkItem> out;
  inj.apply(makeItem(3, 32), out);
  ASSERT_EQ(out.size(), 1u);
  const auto original = makeItem(3, 32).frame;
  int differing_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint8_t diff = original[i] ^ out[0].frame[i];
    while (diff) {
      differing_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);
}

TEST(FaultInjector, TruncateShortensFrame) {
  FaultInjector inj(6, FaultRates{.truncate = 1.0});
  std::vector<WorkItem> out;
  inj.apply(makeItem(1, 100), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0].frame.size(), 100u);
}

TEST(FaultInjector, ReorderHoldsBackThenReleases) {
  // First frame always held (reorder=1.0 would hold everything, so use a
  // seed-picked mix) — verify flush() releases every held frame.
  FaultInjector inj(8, FaultRates{.reorder = 0.5});
  std::vector<WorkItem> out;
  for (std::uint32_t i = 0; i < 50; ++i) inj.apply(makeItem(i, 16), out);
  inj.flush(out);
  EXPECT_EQ(out.size(), 50u);  // nothing dropped, everything eventually out
  EXPECT_GT(inj.counts().reordered, 0u);
  // Some frame left in a different position than it entered.
  bool moved = false;
  for (std::uint32_t i = 0; i < 50; ++i) moved = moved || out[i].stream != i;
  EXPECT_TRUE(moved);
}

// ------------------------------------------------------- chaos runs -----

ChaosConfig smallChaos() {
  ChaosConfig cfg;
  cfg.seed = 11;
  cfg.frames = 20'000;
  cfg.workers = 3;
  cfg.streams = 8;
  cfg.faults = {.drop = 0.02, .bitflip = 0.03, .truncate = 0.03,
                .duplicate = 0.02, .reorder = 0.02};
  // Generous stall timeout: on a loaded 1-CPU CI host a healthy worker can
  // legitimately miss short heartbeat windows; only injected faults should
  // trip the watchdog here.
  cfg.engine.stall_timeout = std::chrono::milliseconds(2000);
  return cfg;
}

TEST(Chaos, LockingConservesUnderMixedFaultsAndWorkerLoss) {
  ChaosConfig cfg = smallChaos();
  cfg.kill_at = 4'000;
  cfg.kill_worker = 1;
  cfg.stall_at = 10'000;
  cfg.stall_worker = 2;
  cfg.stall_duration = std::chrono::milliseconds(30);
  const ChaosReport rep = runChaos(EngineKind::kLocking, cfg);
  EXPECT_TRUE(rep.intake_balanced) << rep.describe();
  EXPECT_TRUE(rep.conserved) << rep.describe();
  EXPECT_GT(rep.stats.delivered, 0u);
  EXPECT_GT(rep.stats.droppedByStack(), 0u);
}

TEST(Chaos, IpsConservesAndRehomesUnderWorkerKill) {
  ChaosConfig cfg = smallChaos();
  cfg.kill_at = 4'000;
  cfg.kill_worker = 0;
  const ChaosReport rep = runChaos(EngineKind::kIps, cfg);
  EXPECT_TRUE(rep.conserved) << rep.describe();
  EXPECT_GE(rep.stats.worker_failures, 1u);
  EXPECT_GT(rep.stats.delivered, 0u);
}

TEST(Chaos, DispatchStealingConservesUnderMixedFaultsAndWorkerKill) {
  // Killing a wired worker normally wedges its queue; with stealing on the
  // survivors drain it (and under Flow Director inherit its pins), so the
  // run must conserve AND make progress without a watchdog.
  ChaosConfig cfg = smallChaos();
  cfg.engine.steal = true;
  cfg.engine.nic_mode = net::NicDispatchMode::kFlowDirector;
  cfg.kill_at = 4'000;
  cfg.kill_worker = 1;
  const ChaosReport rep = runChaos(EngineKind::kDispatch, cfg);
  EXPECT_TRUE(rep.intake_balanced) << rep.describe();
  EXPECT_TRUE(rep.conserved) << rep.describe();
  EXPECT_GT(rep.stats.delivered, 0u);
  EXPECT_GE(rep.stats.steals, 1u) << rep.describe();
}

TEST(Chaos, DispatchStealingParseDropsAreSeedDeterministic) {
  // The steal schedule is timing-dependent, but the multiset of frames is
  // not: parse-layer drop counters must be a pure function of the seed.
  ChaosConfig cfg = smallChaos();
  cfg.engine.steal = true;
  cfg.engine.nic_mode = net::NicDispatchMode::kRss;
  const ChaosReport a = runChaos(EngineKind::kDispatch, cfg);
  const ChaosReport b = runChaos(EngineKind::kDispatch, cfg);
  ASSERT_TRUE(a.conserved) << a.describe();
  ASSERT_TRUE(b.conserved) << b.describe();
  EXPECT_EQ(a.stats.submitted, b.stats.submitted);
  for (std::size_t i = 1; i < a.stats.dropped_by_reason.size(); ++i) {
    if (static_cast<DropReason>(i) == DropReason::kSessionFull) continue;  // timing-bound
    EXPECT_EQ(a.stats.dropped_by_reason[i], b.stats.dropped_by_reason[i])
        << dropReasonName(static_cast<DropReason>(i));
  }
}

TEST(Chaos, IpsConservesUnderStallThenRecovery) {
  ChaosConfig cfg = smallChaos();
  cfg.engine.stall_timeout = std::chrono::milliseconds(25);
  cfg.stall_at = 6'000;
  cfg.stall_worker = 1;
  cfg.stall_duration = std::chrono::milliseconds(300);
  const ChaosReport rep = runChaos(EngineKind::kIps, cfg);
  EXPECT_TRUE(rep.conserved) << rep.describe();
  // The stall exceeds the timeout, so the watchdog must have re-homed it.
  EXPECT_GE(rep.stats.worker_failures, 1u);
}

TEST(Chaos, CleanRunDeliversEverythingItCan) {
  ChaosConfig cfg = smallChaos();
  cfg.faults = FaultRates{};  // no frame faults, no worker faults
  const ChaosReport rep = runChaos(EngineKind::kIps, cfg);
  EXPECT_TRUE(rep.conserved) << rep.describe();
  EXPECT_EQ(rep.faults.emitted, cfg.frames);
  EXPECT_EQ(rep.stats.submitted, cfg.frames);
  EXPECT_EQ(rep.stats.rejected, 0u);
  // Valid frames either reach a session or hit the session-full backstop;
  // no parse-layer cause may fire on clean traffic.
  for (std::size_t i = 1; i < rep.stats.dropped_by_reason.size(); ++i) {
    if (static_cast<DropReason>(i) == DropReason::kSessionFull) continue;
    EXPECT_EQ(rep.stats.dropped_by_reason[i], 0u) << dropReasonName(static_cast<DropReason>(i));
  }
}

// ---------------------------------------------------- overload policies --

TEST(OverloadPolicy, RejectNewestCountsQueueFullAndConserves) {
  ChaosConfig cfg = smallChaos();
  cfg.frames = 30'000;
  cfg.engine.queue_capacity = 8;  // tiny: force overload
  cfg.engine.overload = OverloadPolicy::kRejectNewest;
  for (EngineKind kind : {EngineKind::kLocking, EngineKind::kIps}) {
    const ChaosReport rep = runChaos(kind, cfg);
    EXPECT_TRUE(rep.conserved) << rep.describe();
    EXPECT_GT(rep.stats.rejected_queue_full, 0u) << engineKindName(kind);
    EXPECT_EQ(rep.stats.rejected_stopped, 0u);
  }
}

TEST(OverloadPolicy, DropOldestEvictsAndConservesOnLocking) {
  ChaosConfig cfg = smallChaos();
  cfg.frames = 30'000;
  cfg.engine.queue_capacity = 8;
  cfg.engine.overload = OverloadPolicy::kDropOldest;
  const ChaosReport rep = runChaos(EngineKind::kLocking, cfg);
  EXPECT_TRUE(rep.conserved) << rep.describe();
  EXPECT_GT(rep.stats.dropped_oldest, 0u);
  EXPECT_EQ(rep.stats.rejected_queue_full, 0u);  // eviction always makes room
}

TEST(OverloadPolicy, BlockWithDeadlineRejectsInsteadOfHangingOnStalledWorker) {
  // Stall the only IPS worker longer than the deadline: a bounded-deadline
  // submit must give up (rejected_queue_full) rather than block forever.
  EngineOptions opts;
  opts.queue_capacity = 4;
  opts.overload = OverloadPolicy::kBlock;
  opts.submit_deadline = std::chrono::microseconds(2'000);
  IpsEngine engine(1, HostConfig{}, opts);
  FrameCorpus corpus(3, FrameCorpus::Options{.streams = 1});
  engine.openPort(corpus.dstPort());
  engine.start();
  engine.injectWorkerStall(0, std::chrono::milliseconds(400));
  std::uint64_t accepted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    WorkItem item{corpus.frame(0, i), 0, {}};
    if (engine.submit(std::move(item)))
      ++accepted;
    else
      ++rejected;
  }
  engine.stop();
  const EngineStats s = engine.stats();
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(s.rejected_queue_full, rejected);
  EXPECT_EQ(s.submitted, accepted);
  EXPECT_TRUE(s.conserved());
}

// ------------------------------------------------------- config load ----

TEST(ChaosConfigFile, LoadsRatesAndEngineKnobs) {
  const char* ini =
      "[chaos]\n"
      "seed = 77\n"
      "frames = 1234\n"
      "workers = 2\n"
      "streams = 5\n"
      "drop_rate = 0.125\n"
      "bitflip_rate = 0.25\n"
      "kill_at = 100\n"
      "kill_worker = 1\n"
      "stall_at = 200\n"
      "stall_ms = 40\n"
      "[engine]\n"
      "queue_capacity = 64\n"
      "overload = drop-oldest\n"
      "submit_deadline_us = 500\n"
      "watchdog = true\n"
      "stall_timeout_ms = 30\n"
      "nic = flow-director\n"
      "steal = true\n"
      "steal_batch = 7\n";
  std::string error;
  const auto file = ConfigFile::parse(ini, &error);
  ASSERT_TRUE(file.has_value()) << error;
  const ChaosConfig cfg = loadChaosConfig(*file);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.frames, 1234u);
  EXPECT_EQ(cfg.workers, 2u);
  EXPECT_EQ(cfg.streams, 5u);
  EXPECT_DOUBLE_EQ(cfg.faults.drop, 0.125);
  EXPECT_DOUBLE_EQ(cfg.faults.bitflip, 0.25);
  EXPECT_EQ(cfg.kill_at, 100u);
  EXPECT_EQ(cfg.kill_worker, 1u);
  EXPECT_EQ(cfg.stall_at, 200u);
  EXPECT_EQ(cfg.stall_duration.count(), 40);
  EXPECT_EQ(cfg.engine.queue_capacity, 64u);
  EXPECT_EQ(cfg.engine.overload, OverloadPolicy::kDropOldest);
  EXPECT_EQ(cfg.engine.submit_deadline.count(), 500);
  EXPECT_TRUE(cfg.engine.watchdog);
  EXPECT_EQ(cfg.engine.stall_timeout.count(), 30);
  EXPECT_EQ(cfg.engine.nic_mode, net::NicDispatchMode::kFlowDirector);
  EXPECT_TRUE(cfg.engine.steal);
  EXPECT_EQ(cfg.engine.steal_batch, 7u);
}

TEST(ChaosConfigFile, LoadsFlowTableAndAdversaryKnobs) {
  const char* ini =
      "[chaos]\n"
      "workload = collision\n"
      "zipf_alpha = 1.5\n"
      "churn_period = 512\n"
      "churn_active = 32\n"
      "flash_period = 2048\n"
      "flash_len = 256\n"
      "flash_hot = 2\n"
      "collision_buckets = 8\n"
      "collision_fraction = 0.5\n"
      "[engine]\n"
      "overload = shed-new-flows\n"
      "flow_enabled = true\n"
      "flow_budget_bytes = 98304\n"
      "flow_shards = 4\n"
      "flow_policy = fifo\n"
      "flow_high_water = 0.8\n"
      "flow_low_water = 0.6\n"
      "flow_admit_fraction = 0.25\n"
      "flow_seed = 99\n";
  std::string error;
  const auto file = ConfigFile::parse(ini, &error);
  ASSERT_TRUE(file.has_value()) << error;
  const ChaosConfig cfg = loadChaosConfig(*file);
  EXPECT_EQ(cfg.adversary.kind, AdversaryKind::kCollision);
  EXPECT_DOUBLE_EQ(cfg.adversary.zipf_alpha, 1.5);
  EXPECT_EQ(cfg.adversary.churn_period, 512u);
  EXPECT_EQ(cfg.adversary.churn_active, 32u);
  EXPECT_EQ(cfg.adversary.flash_period, 2048u);
  EXPECT_EQ(cfg.adversary.flash_len, 256u);
  EXPECT_EQ(cfg.adversary.flash_hot, 2u);
  EXPECT_EQ(cfg.adversary.collision_buckets, 8u);
  EXPECT_DOUBLE_EQ(cfg.adversary.collision_fraction, 0.5);
  EXPECT_EQ(cfg.engine.overload, OverloadPolicy::kShedNewFlows);
  EXPECT_TRUE(cfg.engine.flow.enabled);
  EXPECT_EQ(cfg.engine.flow.budget_bytes, 98304u);
  EXPECT_EQ(cfg.engine.flow.shards, 4u);
  EXPECT_EQ(cfg.engine.flow.policy, flow::EvictPolicy::kFifo);
  EXPECT_DOUBLE_EQ(cfg.engine.flow.shed_high_water, 0.8);
  EXPECT_DOUBLE_EQ(cfg.engine.flow.shed_low_water, 0.6);
  EXPECT_DOUBLE_EQ(cfg.engine.flow.shed_admit_fraction, 0.25);
  EXPECT_EQ(cfg.engine.flow.seed, 99u);
}

// --------------------------------------------- flow-table exhaustion ----

/// Chaos shape that actually exhausts the table: far more streams than
/// flow entries, combined with the usual frame faults + kill + stall.
ChaosConfig exhaustionChaos(std::size_t flow_entries) {
  ChaosConfig cfg = smallChaos();
  cfg.frames = 40'000;
  cfg.streams = 4'096;
  cfg.engine.flow.budget_bytes = flow_entries * 24;
  cfg.engine.flow.shards = 2;
  cfg.kill_at = 8'000;
  cfg.kill_worker = 1;
  cfg.stall_at = 20'000;
  cfg.stall_worker = 2;
  cfg.stall_duration = std::chrono::milliseconds(30);
  return cfg;
}

TEST(FlowChaos, EvictionUnderCombinedFaultsConservesOnAllEngines) {
  const ChaosConfig cfg = exhaustionChaos(256);
  for (EngineKind kind : {EngineKind::kLocking, EngineKind::kIps, EngineKind::kDispatch}) {
    const ChaosReport rep = runChaos(kind, cfg);
    EXPECT_TRUE(rep.intake_balanced) << engineKindName(kind) << "\n" << rep.describe();
    EXPECT_TRUE(rep.conserved) << engineKindName(kind) << "\n" << rep.describe();
    EXPECT_GT(rep.stats.evictions(), 0u) << engineKindName(kind);
    EXPECT_GT(rep.stats.delivered, 0u) << engineKindName(kind);
    EXPECT_LE(rep.stats.flow_occupancy, rep.stats.flow_capacity) << engineKindName(kind);
  }
}

TEST(FlowChaos, ShedNewFlowsRefusesNewButNeverEstablishedFlows) {
  ChaosConfig cfg = exhaustionChaos(256);
  cfg.engine.overload = OverloadPolicy::kShedNewFlows;
  for (EngineKind kind : {EngineKind::kLocking, EngineKind::kIps, EngineKind::kDispatch}) {
    const ChaosReport rep = runChaos(kind, cfg);
    EXPECT_TRUE(rep.conserved) << engineKindName(kind) << "\n" << rep.describe();
    EXPECT_GT(rep.stats.rejected_shed, 0u) << engineKindName(kind);
    EXPECT_GE(rep.stats.flow_shed_engaged, 1u) << engineKindName(kind);
    // Established flows keep flowing: hits continue after the latch engages.
    EXPECT_GT(rep.stats.flow_hits, 0u) << engineKindName(kind);
    EXPECT_GT(rep.stats.delivered, 0u) << engineKindName(kind);
  }
}

TEST(FlowChaos, DropOldestComposesWithFlowEvictionAccounting) {
  // Both degradation mechanisms at once: queue eviction (dropped_oldest)
  // and flow-table eviction (evicted_inflight) must each count their own
  // frames, with no double counting — conservation is the proof.
  ChaosConfig cfg = exhaustionChaos(256);
  cfg.engine.queue_capacity = 16;
  cfg.engine.overload = OverloadPolicy::kDropOldest;
  const ChaosReport rep = runChaos(EngineKind::kLocking, cfg);
  EXPECT_TRUE(rep.conserved) << rep.describe();
  EXPECT_GT(rep.stats.dropped_oldest, 0u);
  EXPECT_GT(rep.stats.evictions(), 0u);
}

TEST(FlowChaos, AdmissionLedgerIsIdenticalAcrossWorkerCounts) {
  // The determinism doctrine (flow/flow_table.hpp): every mutation victim
  // selection or shedding can observe happens on the single-threaded admit
  // path, so the admission-side ledger — inserts, hits, evictions by
  // reason, sheds — is a pure function of the seed, whatever the worker
  // count. (evicted_inflight is excluded: how many of a victim's frames
  // are still queued at eviction time is genuinely timing-dependent.)
  ChaosConfig base = exhaustionChaos(256);
  base.adversary.kind = AdversaryKind::kZipf;
  base.adversary.zipf_alpha = 1.1;
  base.engine.overload = OverloadPolicy::kShedNewFlows;
  base.kill_at = 0;  // worker faults off: they gate delivery, not admission
  base.stall_at = 0;
  auto ledger = [&](unsigned workers) {
    ChaosConfig cfg = base;
    cfg.workers = workers;
    const ChaosReport rep = runChaos(EngineKind::kIps, cfg);
    EXPECT_TRUE(rep.conserved) << rep.describe();
    return rep.stats;
  };
  const EngineStats two = ledger(2);
  const EngineStats four = ledger(4);
  EXPECT_EQ(two.flow_inserts, four.flow_inserts);
  EXPECT_EQ(two.flow_hits, four.flow_hits);
  EXPECT_EQ(two.rejected_shed, four.rejected_shed);
  for (std::size_t r = 0; r < two.evicted_by_reason.size(); ++r)
    EXPECT_EQ(two.evicted_by_reason[r], four.evicted_by_reason[r]) << r;
  EXPECT_GT(two.evictions() + two.rejected_shed, 0u);  // not vacuous
}

TEST(FlowChaos, HundredThousandStreamsRunWithinFixedBudget) {
  // The 10^5-stream acceptance scenario, test-sized: the stream universe
  // dwarfs the table, the corpus runs in lazy mode (no 140 MB prebuild),
  // and the extended invariant balances exactly on every engine while
  // kill + stall + continuous table exhaustion are all active.
  ChaosConfig cfg = smallChaos();
  cfg.frames = 60'000;
  cfg.streams = 100'000;
  cfg.workers = 4;
  cfg.engine.flow.budget_bytes = 1u << 16;  // 2'048 entries << 10^5 streams
  cfg.kill_at = 15'000;
  cfg.kill_worker = 1;
  cfg.stall_at = 30'000;
  cfg.stall_worker = 2;
  cfg.stall_duration = std::chrono::milliseconds(30);
  for (EngineKind kind : {EngineKind::kLocking, EngineKind::kIps, EngineKind::kDispatch}) {
    const ChaosReport rep = runChaos(kind, cfg);
    EXPECT_TRUE(rep.intake_balanced) << engineKindName(kind) << "\n" << rep.describe();
    EXPECT_TRUE(rep.conserved) << engineKindName(kind) << "\n" << rep.describe();
    EXPECT_GT(rep.stats.evictions(), 0u) << engineKindName(kind);
    EXPECT_LE(rep.stats.flow_occupancy, rep.stats.flow_capacity);
  }
}

}  // namespace
}  // namespace affinity
