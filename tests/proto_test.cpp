// Tests for src/proto: packet cursor semantics, RFC 1071 checksums, header
// codecs, per-layer validation/drop paths, demux, and full-stack round trips.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "proto/checksum.hpp"
#include "proto/headers.hpp"
#include "proto/send.hpp"
#include "proto/stack.hpp"

namespace affinity {
namespace {

std::vector<std::uint8_t> bytesOf(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// --------------------------------------------------------------- Packet ---

TEST(Packet, PullAdvancesCursor) {
  const std::vector<std::uint8_t> frame{1, 2, 3, 4, 5};
  Packet p = Packet::fromFrame(frame);
  const auto h = p.pull(2);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ((*h)[0], 1);
  EXPECT_EQ((*h)[1], 2);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.bytes()[0], 3);
}

TEST(Packet, PushPrependsWithinHeadroom) {
  Packet p = Packet::withHeadroom(8);
  const std::vector<std::uint8_t> payload{9, 9};
  p.append(payload);
  auto h = p.push(2);
  h[0] = 7;
  h[1] = 8;
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.bytes()[0], 7);
  EXPECT_EQ(p.bytes()[3], 9);
}

TEST(Packet, PushGrowsWhenHeadroomShort) {
  Packet p = Packet::withHeadroom(1);
  p.append(std::array<std::uint8_t, 1>{5});
  auto h = p.push(4);
  h[0] = 1;
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.bytes()[0], 1);
  EXPECT_EQ(p.bytes()[4], 5);
}

TEST(Packet, TruncateDropsTail) {
  Packet p = Packet::fromFrame(std::array<std::uint8_t, 5>{1, 2, 3, 4, 5});
  EXPECT_TRUE(p.truncate(3));
  EXPECT_EQ(p.size(), 3u);
}

TEST(Packet, PullPastEndFailsRecoverably) {
  Packet p = Packet::fromFrame(std::array<std::uint8_t, 2>{1, 2});
  EXPECT_FALSE(p.pull(3).has_value());
  EXPECT_EQ(p.size(), 2u) << "failed pull must not move the cursor";
  EXPECT_TRUE(p.pull(2).has_value()) << "packet remains usable after a short pull";
}

TEST(Packet, TruncatePastEndFailsRecoverably) {
  Packet p = Packet::fromFrame(std::array<std::uint8_t, 2>{1, 2});
  EXPECT_FALSE(p.truncate(3));
  EXPECT_EQ(p.size(), 2u) << "failed truncate must leave the packet intact";
}

// ------------------------------------------------------------- Checksum ---

TEST(Checksum, Rfc1071ReferenceVector) {
  // Classic example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
  // checksum ~ddf2 = 220d.
  const std::array<std::uint8_t, 8> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internetChecksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 3> data{0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internetChecksum(data), 0xfbfd);
}

TEST(Checksum, ValidatesOwnOutput) {
  std::vector<std::uint8_t> data = bytesOf("the quick brown fox!");
  data.push_back(0);
  data.push_back(0);
  const std::uint16_t ck = internetChecksum(data);
  data[data.size() - 2] = static_cast<std::uint8_t>(ck >> 8);
  data[data.size() - 1] = static_cast<std::uint8_t>(ck);
  EXPECT_TRUE(checksumValid(data));
  data[0] ^= 0x40;
  EXPECT_FALSE(checksumValid(data));
}

TEST(Checksum, IncrementalMatchesOneShot) {
  const auto data = bytesOf("abcdefgh12345678");
  ChecksumAccumulator acc;
  acc.add(std::span(data).first(6));
  acc.add(std::span(data).subspan(6));
  EXPECT_EQ(acc.finish(), internetChecksum(data));
}

// -------------------------------------------------------------- Headers ---

TEST(Headers, FddiRoundTrip) {
  FddiHeader h;
  h.dst = {1, 2, 3, 4, 5, 6};
  h.src = {7, 8, 9, 10, 11, 12};
  std::array<std::uint8_t, FddiHeader::kSize> buf{};
  h.encode(buf);
  const auto d = FddiHeader::decode(buf);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->dst, h.dst);
  EXPECT_EQ(d->src, h.src);
  EXPECT_EQ(d->ethertype, FddiHeader::kEtherTypeIpv4);
}

TEST(Headers, FddiRejectsShortOrNonSnap) {
  std::array<std::uint8_t, FddiHeader::kSize> buf{};
  FddiHeader{}.encode(buf);
  EXPECT_FALSE(FddiHeader::decode(std::span(buf).first(10)).has_value());
  buf[13] = 0x00;  // break DSAP
  EXPECT_FALSE(FddiHeader::decode(buf).has_value());
}

TEST(Headers, Ipv4RoundTripWithValidChecksum) {
  Ipv4Header h;
  h.total_length = 120;
  h.identification = 0xbeef;
  h.ttl = 17;
  h.src = 0x0a000001;
  h.dst = 0x0a000002;
  std::array<std::uint8_t, Ipv4Header::kMinSize> buf{};
  h.encode(buf);
  EXPECT_TRUE(checksumValid(buf));
  const auto d = Ipv4Header::decode(buf);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->total_length, 120);
  EXPECT_EQ(d->identification, 0xbeef);
  EXPECT_EQ(d->ttl, 17);
  EXPECT_EQ(d->src, 0x0a000001u);
  EXPECT_EQ(d->dst, 0x0a000002u);
  EXPECT_FALSE(d->isFragment());
}

TEST(Headers, Ipv4FragmentFlags) {
  Ipv4Header h;
  h.flags = 0x1;  // MF
  h.fragment_offset = 0;
  std::array<std::uint8_t, Ipv4Header::kMinSize> buf{};
  h.encode(buf);
  auto d = Ipv4Header::decode(buf);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->moreFragments());
  EXPECT_TRUE(d->isFragment());

  h.flags = 0;
  h.fragment_offset = 100;
  h.encode(buf);
  d = Ipv4Header::decode(buf);
  EXPECT_TRUE(d->isFragment());
  EXPECT_FALSE(d->moreFragments());
}

TEST(Headers, Ipv4RejectsBadIhl) {
  std::array<std::uint8_t, Ipv4Header::kMinSize> buf{};
  Ipv4Header{}.encode(buf);
  buf[0] = 0x42;  // version 4, ihl 2 (< 5)
  EXPECT_FALSE(Ipv4Header::decode(buf).has_value());
}

TEST(Headers, UdpRoundTrip) {
  UdpHeader h{.src_port = 1234, .dst_port = 7000, .length = 30, .checksum = 0xabcd};
  std::array<std::uint8_t, UdpHeader::kSize> buf{};
  h.encode(buf);
  const auto d = UdpHeader::decode(buf);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_port, 1234);
  EXPECT_EQ(d->dst_port, 7000);
  EXPECT_EQ(d->length, 30);
  EXPECT_EQ(d->checksum, 0xabcd);
}

// ----------------------------------------------------------- Full stack ---

class StackFixture : public ::testing::Test {
 protected:
  StackFixture() { stack_.open(7000); }

  std::vector<std::uint8_t> goodFrame(const std::string& payload, std::uint16_t port = 7000) {
    FrameSpec spec;
    spec.dst_port = port;
    return buildUdpFrame(spec, bytesOf(payload));
  }

  ProtocolStack stack_;
};

TEST_F(StackFixture, DeliversValidFrameToSession) {
  const auto ctx = stack_.receiveFrame(goodFrame("hello world"));
  EXPECT_FALSE(ctx.dropped());
  EXPECT_EQ(ctx.dst_port, 7000);
  EXPECT_EQ(ctx.payload_bytes, 11);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(stack_.udp().find(7000)->read(out));
  EXPECT_EQ(std::string(out.begin(), out.end()), "hello world");
}

TEST_F(StackFixture, DropsUnknownPort) {
  const auto ctx = stack_.receiveFrame(goodFrame("x", 9999));
  EXPECT_EQ(ctx.drop, DropReason::kUdpNoSession);
  EXPECT_EQ(stack_.udp().stats().dropped_no_session, 1u);
}

TEST_F(StackFixture, DropsCorruptIpChecksum) {
  auto frame = goodFrame("payload");
  frame[FddiHeader::kSize + 8] ^= 0xff;  // flip TTL without fixing checksum
  const auto ctx = stack_.receiveFrame(frame);
  EXPECT_EQ(ctx.drop, DropReason::kIpBadChecksum);
}

TEST_F(StackFixture, DropsCorruptUdpChecksum) {
  auto frame = goodFrame("payload");
  frame.back() ^= 0x01;  // corrupt last payload byte
  const auto ctx = stack_.receiveFrame(frame);
  EXPECT_EQ(ctx.drop, DropReason::kUdpBadChecksum);
}

TEST_F(StackFixture, AcceptsZeroUdpChecksum) {
  FrameSpec spec;
  spec.udp_checksum = false;
  const auto payload = bytesOf("no checksum");
  const auto ctx = stack_.receiveFrame(buildUdpFrame(spec, payload));
  EXPECT_FALSE(ctx.dropped());
}

TEST_F(StackFixture, DropsFragment) {
  auto frame = goodFrame("frag");
  // Set MF flag and re-checksum the IP header.
  auto ip_region = std::span(frame).subspan(FddiHeader::kSize, Ipv4Header::kMinSize);
  auto h = Ipv4Header::decode(ip_region);
  ASSERT_TRUE(h.has_value());
  h->flags = 0x1;
  h->encode(ip_region);
  const auto ctx = stack_.receiveFrame(frame);
  EXPECT_EQ(ctx.drop, DropReason::kIpFragment);
}

TEST_F(StackFixture, DropsWrongMacUnicast) {
  FrameSpec spec;
  spec.dst_mac = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  const auto ctx = stack_.receiveFrame(buildUdpFrame(spec, bytesOf("x")));
  EXPECT_EQ(ctx.drop, DropReason::kFddiWrongDest);
}

TEST_F(StackFixture, AcceptsBroadcastMac) {
  FrameSpec spec;
  spec.dst_mac = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  const auto ctx = stack_.receiveFrame(buildUdpFrame(spec, bytesOf("bcast")));
  EXPECT_FALSE(ctx.dropped());
}

TEST_F(StackFixture, DropsWrongIpDestination) {
  FrameSpec spec;
  spec.dst_ip = 0x0a0a0a0a;
  const auto ctx = stack_.receiveFrame(buildUdpFrame(spec, bytesOf("x")));
  EXPECT_TRUE(ctx.dropped());
}

TEST_F(StackFixture, DropsTruncatedFrame) {
  auto frame = goodFrame("truncated payload here");
  frame.resize(FddiHeader::kSize + 10);
  const auto ctx = stack_.receiveFrame(frame);
  EXPECT_TRUE(ctx.dropped());
}

TEST_F(StackFixture, SessionQueueOverflowCounts) {
  stack_.open(7001, /*queue_capacity=*/2);
  FrameSpec spec;
  spec.dst_port = 7001;
  for (int i = 0; i < 3; ++i) stack_.receiveFrame(buildUdpFrame(spec, bytesOf("x")));
  EXPECT_EQ(stack_.udp().stats().dropped_session_full, 1u);
  EXPECT_EQ(stack_.udp().find(7001)->overflowCount(), 1u);
  EXPECT_EQ(stack_.udp().find(7001)->queued(), 2u);
}

TEST_F(StackFixture, StatsCountDeliveredFrames) {
  for (int i = 0; i < 5; ++i) stack_.receiveFrame(goodFrame("abc"));
  EXPECT_EQ(stack_.framesReceived(), 5u);
  EXPECT_EQ(stack_.framesDelivered(), 5u);
  EXPECT_EQ(stack_.ip().stats().delivered, 5u);
}

// ------------------------------------------------------------ send path ---

SendContext defaultSendContext() {
  SendContext ctx;
  ctx.src_mac = {0x08, 0x00, 0x69, 0xaa, 0xbb, 0xcc};
  ctx.dst_mac = HostConfig{}.mac;
  ctx.src_ip = 0xc0a80102;
  ctx.dst_ip = HostConfig{}.ip;
  ctx.src_port = 2049;
  ctx.dst_port = 7000;
  return ctx;
}

TEST(SendPath, LayeredPushMatchesMonolithicBuilder) {
  const auto payload = bytesOf("layered send path");
  UdpSendPath path;
  Packet pkt = path.send(payload, defaultSendContext()).value();
  const auto frame = buildUdpFrame(FrameSpec{}, payload);
  ASSERT_EQ(pkt.size(), frame.size());
  const auto got = pkt.bytes();
  for (std::size_t i = 0; i < frame.size(); ++i)
    ASSERT_EQ(got[i], frame[i]) << "byte " << i;
}

TEST(SendPath, OutputRoundTripsThroughReceiveStack) {
  ProtocolStack stack;
  stack.open(7000);
  UdpSendPath path;
  const auto payload = bytesOf("over the wire and back");
  Packet pkt = path.send(payload, defaultSendContext()).value();
  const auto ctx = stack.receiveFrame(pkt.bytes());
  ASSERT_FALSE(ctx.dropped()) << dropReasonName(ctx.drop);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(stack.udp().find(7000)->read(out));
  EXPECT_EQ(std::string(out.begin(), out.end()), "over the wire and back");
}

TEST(SendPath, NoChecksumVariantAccepted) {
  ProtocolStack stack;
  stack.open(7000);
  UdpSendPath path;
  SendContext ctx = defaultSendContext();
  ctx.udp_checksum = false;
  Packet pkt = path.send(bytesOf("x"), ctx).value();
  EXPECT_FALSE(stack.receiveFrame(pkt.bytes()).dropped());
}

TEST(SendPath, StatsAccumulate) {
  UdpSendPath path;
  path.send(bytesOf("abc"), defaultSendContext());
  path.send(bytesOf("defgh"), defaultSendContext());
  EXPECT_EQ(path.stats().datagrams, 2u);
  EXPECT_EQ(path.stats().payload_bytes, 8u);
}

TEST(SendPath, EmptyPayload) {
  ProtocolStack stack;
  stack.open(7000);
  UdpSendPath path;
  Packet pkt = path.send({}, defaultSendContext()).value();
  const auto ctx = stack.receiveFrame(pkt.bytes());
  EXPECT_FALSE(ctx.dropped());
  EXPECT_EQ(ctx.payload_bytes, 0);
}

TEST(SendPath, OversizePayloadIsTypedErrorNotAbort) {
  UdpSendPath path;
  const std::vector<std::uint8_t> huge(70000, 0xab);  // > 16-bit UDP length
  EXPECT_FALSE(path.send(huge, defaultSendContext()).has_value());
  EXPECT_EQ(path.stats().oversize, 1u);
  EXPECT_EQ(path.stats().datagrams, 0u);
  // The path still works for sane payloads afterwards.
  EXPECT_TRUE(path.send(bytesOf("ok"), defaultSendContext()).has_value());
  EXPECT_EQ(path.stats().datagrams, 1u);
}

TEST(SendPath, PushLayersRejectOversizeWithoutMutation) {
  Packet pkt = Packet::withHeadroom(64);
  const std::vector<std::uint8_t> huge(0x10000, 0);
  pkt.append(huge);
  const std::size_t before = pkt.size();
  EXPECT_FALSE(pushUdp(pkt, defaultSendContext()));
  EXPECT_EQ(pkt.size(), before) << "failed push must not prepend a header";
  EXPECT_FALSE(pushIp(pkt, defaultSendContext()));
  EXPECT_EQ(pkt.size(), before);
}

TEST(UdpSessionTest, ReadDrainsFifo) {
  UdpSession s(1, 8);
  s.deliver(bytesOf("one"));
  s.deliver(bytesOf("two"));
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(s.read(out));
  EXPECT_EQ(std::string(out.begin(), out.end()), "one");
  ASSERT_TRUE(s.read(out));
  EXPECT_EQ(std::string(out.begin(), out.end()), "two");
  EXPECT_FALSE(s.read(out));
  EXPECT_EQ(s.bytesDelivered(), 6u);
}

}  // namespace
}  // namespace affinity
