// afflint-corpus-expect: nondeterminism
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double jitterSeed() {
  std::random_device rd;                                  // nondeterministic seed
  std::srand(static_cast<unsigned>(time(nullptr)));       // wall clock + global RNG
  const auto t0 = std::chrono::steady_clock::now();       // wall time in a sim path
  const auto t1 = std::chrono::system_clock::now();       // wall time anywhere
  return static_cast<double>(rd()) +
         std::chrono::duration<double>(t1.time_since_epoch()).count() +
         std::chrono::duration<double>(t0.time_since_epoch()).count();
}
