// afflint-corpus-expect: layering
#pragma once

#include "runtime/engine.hpp"  // net feeds runtime, never the reverse
#include "sched/policy.hpp"    // net is below sched in the layer table

class UpwardDispatcher {};
