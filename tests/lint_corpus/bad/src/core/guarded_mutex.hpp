// afflint-corpus-expect: guarded-mutex
#pragma once

#include <vector>

#include "util/mutex.hpp"

class ResultSink {
 public:
  void add(double v) {
    affinity::MutexLock lock(mu_);
    values_.push_back(v);
  }

 private:
  affinity::Mutex mu_;          // guards values_, but nothing on record says so
  std::vector<double> values_;  // missing AFF_GUARDED_BY(mu_)
};
