// afflint-corpus-expect: proto-check
#include "util/check.hpp"

void parseHeader(const unsigned char* data, int length) {
  AFF_CHECK(length >= 20);  // aborts the process on a short (hostile) packet
  (void)data;
}
