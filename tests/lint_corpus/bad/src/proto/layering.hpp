// afflint-corpus-expect: layering
#pragma once

#include "runtime/engine.hpp"   // proto is below runtime; dependency inversion
#include "tools/afflint.hpp"    // src/ must never reach into tools/
