// afflint-corpus-expect: lock-order
//
// Two sites nest the same pair of locks in opposite orders: forward() takes
// a_ then b_, backward() takes b_ then a_ — the classic AB/BA deadlock. The
// lock-order rule merges both nestings into the acquisition graph and
// reports the cycle with both witness sites.
#include "util/mutex.hpp"

namespace affinity {

struct TwoLocks {
  Mutex a_{"TwoLocks::a_"};
  Mutex b_{"TwoLocks::b_"};
  int under_a_ AFF_GUARDED_BY(a_) = 0;
  int under_b_ AFF_GUARDED_BY(b_) = 0;

  void forward() {
    MutexLock la(a_);
    MutexLock lb(b_);
    ++under_a_;
    ++under_b_;
  }

  void backward() {
    MutexLock lb(b_);
    MutexLock la(a_);
    ++under_b_;
    ++under_a_;
  }
};

}  // namespace affinity
