// afflint-corpus-expect: blocking-under-lock
//
// Sleeping while holding a Mutex: every other thread that needs mu_ stalls
// for the whole sleep — the dead-consumer hang class the rule exists for.
#include <chrono>
#include <thread>

#include "util/mutex.hpp"

namespace affinity {

struct Sleeper {
  Mutex mu_{"Sleeper::mu_"};
  int state_ AFF_GUARDED_BY(mu_) = 0;

  void slowPoll() {
    MutexLock lock(mu_);
    while (state_ == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

}  // namespace affinity
