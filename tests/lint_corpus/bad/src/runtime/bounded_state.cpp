// afflint-corpus-expect: bounded-state
#include <cstdint>
#include <map>
#include <unordered_map>

namespace affinity {

struct SessionState {
  std::uint64_t bytes = 0;
};

// Unbounded per-flow state: one map node per distinct source — an
// adversary minting fresh flows grows this until the host swaps.
class LeakySessionTracker {
 public:
  void touch(std::uint32_t flow, std::uint64_t bytes) { sessions_[flow].bytes += bytes; }

 private:
  std::unordered_map<std::uint32_t, SessionState> sessions_;
};

// An ordered map leaks the same way, just slower per insert.
std::map<std::uint32_t, SessionState> g_by_flow;

}  // namespace affinity
