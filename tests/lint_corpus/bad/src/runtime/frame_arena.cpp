// afflint-corpus-expect: frame-arena
#include <cstdlib>
#include <cstdint>

namespace affinity {

void* grabFrameBuffer(std::size_t n) {
  return malloc(n);  // direct malloc in the runtime tree
}

std::uint8_t* grabTypedBuffer(std::size_t n) {
  return new std::uint8_t[n];  // raw byte-buffer new[]
}

unsigned char* grabCharBuffer(std::size_t n) {
  return new unsigned char[n];
}

void regrow(void* p, std::size_t n) {
  p = realloc(p, n);
  static_cast<void>(p);
}

}  // namespace affinity
