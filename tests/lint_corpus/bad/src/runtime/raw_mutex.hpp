// afflint-corpus-expect: raw-mutex
#pragma once

#include <condition_variable>
#include <mutex>
#include <queue>

class JobQueue {
 public:
  void push(int v) {
    std::lock_guard<std::mutex> lock(mu_);  // invisible to -Wthread-safety
    jobs_.push(v);
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<int> jobs_;
};
