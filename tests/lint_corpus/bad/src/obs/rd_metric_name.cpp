// afflint-corpus-expect: metric-name
#include "obs/metrics.hpp"

// Near-miss spellings of the sim.cache.rd.* leaves that the metric-name
// rule must reject (see the good twin for the real names).
void exportRdStats(affinity::obs::MetricsRegistry& reg) {
  reg.gauge("cache.rd.proto_lines").set(412.0);            // unknown domain
  reg.meanStat("sim.cache.RD.l3_warm_fraction").add(0.9);  // uppercase segment
  reg.gauge("sim.cache.rd..steal_reload_us").set(1.0);     // empty segment
}
