// afflint-corpus-expect: metric-name
#include "obs/metrics.hpp"

void exportStats(affinity::obs::MetricsRegistry& reg, const std::string& prefix) {
  reg.counter("CamelCase.batches").inc();          // uppercase characters
  reg.gauge("widget.queue_depth").set(1.0);        // unknown domain
  reg.meanStat("engine..rx_us").add(2.0);          // empty segment
  reg.histogram("engine._private").record(3.0);    // segment starts with '_'
  reg.counter(prefix + ".Batches").inc();          // bad fragment after concat
}
