// afflint-corpus-rule: nondeterminism
//
// The reviewable escape hatch: an `afflint: allow(<rule>)` comment on the
// line or the line directly above suppresses exactly that rule there.
#include <ctime>

long stampLedgerRow() {
  // Ledger rows are wall-stamped by design.  afflint: allow(nondeterminism)
  return static_cast<long>(std::time(nullptr));
}

long stampSameLine() {
  return std::time(nullptr);  // afflint: allow(nondeterminism) -- same-line form
}
