// afflint-corpus-rule: layering
#pragma once

#include <cstdint>
#include <vector>

#include "net/toeplitz.hpp"  // intra-layer include is always allowed
#include "util/mutex.hpp"    // util is net's only permitted dependency

class DownwardDispatcher {};
