// afflint-corpus-rule: guarded-mutex
#pragma once

#include <vector>

#include "util/mutex.hpp"

class ResultSink {
 public:
  void add(double v) AFF_EXCLUDES(mu_) {
    affinity::MutexLock lock(mu_);
    values_.push_back(v);
  }

 private:
  mutable affinity::Mutex mu_;
  std::vector<double> values_ AFF_GUARDED_BY(mu_);
};
