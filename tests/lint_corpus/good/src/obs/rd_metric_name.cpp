// afflint-corpus-rule: metric-name
#include "obs/metrics.hpp"

// The reuse-distance cache-model domain (docs/OBSERVABILITY.md,
// sim.cache.rd.*): the exact leaves ProtocolSim exports, so the lint
// corpus breaks if the naming scheme and the code drift apart.
void exportRdStats(affinity::obs::MetricsRegistry& reg) {
  reg.gauge("sim.cache.rd.proto_lines").set(412.0);
  reg.gauge("sim.cache.rd.llc_share_lines").set(65536.0);
  reg.gauge("sim.cache.rd.co_runners").set(8.0);
  reg.meanStat("sim.cache.rd.l3_warm_fraction").add(0.93);
  reg.gauge("sim.cache.rd.steal_reload_us").set(1520.0);
}
