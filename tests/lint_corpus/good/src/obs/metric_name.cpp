// afflint-corpus-rule: metric-name
#include "obs/metrics.hpp"

void exportStats(affinity::obs::MetricsRegistry& reg, const std::string& prefix) {
  reg.counter("engine.rx.batches").inc();             // anchored, known domain
  reg.gauge("sweep.points_completed").set(1.0);
  reg.meanStat("sim.proc.busy_frac").add(0.5);
  reg.histogram("chaos.fault_gap_us").record(12.0);
  reg.counter(prefix + ".dropped.checksum").inc();    // fragment: domain comes from prefix
  reg.gauge(prefix + ".").set(3.0);                   // pure separator fragment
}
