// afflint-corpus-rule: raw-mutex
#pragma once

#include <queue>

#include "util/mutex.hpp"

// "std::mutex" in a string and std::lock_guard in this comment are not uses.
class JobQueue {
 public:
  void push(int v) {
    affinity::MutexLock lock(mu_);
    jobs_.push(v);
    cv_.notify_one();
  }

 private:
  affinity::Mutex mu_;
  affinity::CondVar cv_;
  std::queue<int> jobs_ AFF_GUARDED_BY(mu_);
};
