// afflint-corpus-rule: blocking-under-lock
//
// Waiting on a condvar while holding exactly the mutex the wait releases is
// the condvar contract, not a blocking-under-lock violation.
#include "util/mutex.hpp"

namespace affinity {

struct Gate {
  Mutex mu_{"Gate::mu_"};
  CondVar cv_;
  int ready_ AFF_GUARDED_BY(mu_) = 0;

  void block() {
    MutexLock lock(mu_);
    cv_.wait(mu_, [this]() AFF_REQUIRES(mu_) { return ready_ != 0; });
  }

  void open() {
    {
      MutexLock lock(mu_);
      ready_ = 1;
    }
    cv_.notify_all();
  }
};

}  // namespace affinity
