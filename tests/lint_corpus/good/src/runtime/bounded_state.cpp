// afflint-corpus-rule: bounded-state
#include <cstdint>
#include <map>
#include <vector>

#include "flow/flow_table.hpp"

namespace affinity {

// Per-flow state belongs in the fixed-budget FlowTable: admission either
// finds a slot within the budget or names a victim/shed — never grows.
class BoundedSessionTracker {
 public:
  explicit BoundedSessionTracker(const flow::FlowTableConfig& cfg) : table_(cfg) {}
  bool touch(std::uint32_t key) {
    return table_.admit(key).status == flow::AdmitResult::Status::kAdmitted;
  }

 private:
  flow::FlowTable table_;
};

// Identifiers merely containing the banned names must not trip the rule.
struct map_reduce_plan {
  int std_map_lookalike = 0;
};

// Fixed-size indexed storage is the bounded alternative for small keys.
std::vector<std::uint64_t> perWorkerTotals(unsigned workers) {
  return std::vector<std::uint64_t>(workers, 0);
}

// Control-plane maps bounded by construction may opt out with a reason.
// afflint: allow(bounded-state) — keyed by worker id, bounded by core count
std::map<unsigned, std::uint64_t> g_stall_counts_by_worker;

}  // namespace affinity
