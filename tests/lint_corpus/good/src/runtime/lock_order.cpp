// afflint-corpus-rule: lock-order
//
// Consistent nesting: every site takes a_ before b_ (directly, or with a_
// held on entry via AFF_REQUIRES), and the declared ordering agrees — an
// acyclic acquisition graph, so the rule stays silent.
#include "util/mutex.hpp"

namespace affinity {

struct TwoLocks {
  Mutex a_{"TwoLocks::a_"} AFF_ACQUIRED_BEFORE(TwoLocks::b_);
  Mutex b_{"TwoLocks::b_"};
  int under_a_ AFF_GUARDED_BY(a_) = 0;
  int under_b_ AFF_GUARDED_BY(b_) = 0;

  void both() {
    MutexLock la(a_);
    MutexLock lb(b_);
    ++under_a_;
    ++under_b_;
  }

  void innerWhileHoldingOuter() AFF_REQUIRES(a_) {
    MutexLock lb(b_);
    under_b_ = under_a_;
  }
};

}  // namespace affinity
