// afflint-corpus-rule: frame-arena
#include <cstdint>
#include <vector>

#include "util/arena.hpp"

namespace affinity {

// Frame buffers come from the per-thread arena; identifiers merely
// *containing* the banned words (reallocate, normalloc) must not trip.
FrameBuf reallocateFrame(const std::vector<std::uint8_t>& bytes) {
  FrameBuf copy = bytes;
  return copy;
}

std::uint8_t* arenaBlock(std::size_t n) { return FrameArena::local().allocate(n); }

// A non-byte new[] is fine (the rule targets packet buffers, not structs).
double* scratchDoubles(std::size_t n) { return new double[n]; }

}  // namespace affinity
