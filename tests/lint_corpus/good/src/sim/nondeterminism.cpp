// afflint-corpus-rule: nondeterminism
//
// Near misses: talking about time(nullptr) or std::random_device in comments
// is fine, and identifiers merely containing banned tokens must not trip the
// word-boundary matcher.
#include <cstdint>

#include "util/rng.hpp"

namespace {
const char* kDocs = "seed with SplitMix, never std::random_device or srand()";
}

std::uint64_t strand_count(std::uint64_t operand) { return operand + 1; }

double nextSample(affinity::Rng& rng) {
  (void)kDocs;
  return rng.uniform();  // deterministic: every draw comes from the seeded RNG
}
