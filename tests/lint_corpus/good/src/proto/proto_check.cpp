// afflint-corpus-rule: proto-check
#include "util/check.hpp"

enum class DropReason { kNone, kTruncated };

DropReason parseHeader(const unsigned char* data, int length, int scratch_size) {
  if (length < 20) return DropReason::kTruncated;  // hostile input -> typed drop
  AFF_DCHECK(scratch_size > 0);                    // internal invariant: fine
  (void)data;
  return DropReason::kNone;
}
