// afflint-corpus-rule: layering
#pragma once

#include <cstdint>

#include "proto/checksum.hpp"  // same subsystem
#include "util/check.hpp"      // util is below everything
