// Property-based and parameterized sweeps across modules:
//  * analytic-model invariants over machine geometries,
//  * protocol robustness under systematic corruption (fuzz sweep),
//  * simulation invariants over every scheduling policy,
//  * cachesim inclusion invariants under random access streams.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cachesim/coherence.hpp"
#include "cachesim/hierarchy.hpp"
#include "core/experiment.hpp"
#include "proto/stack.hpp"

namespace affinity {
namespace {

// ----------------------------------------------------- analytic sweeps -----

class GeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>> {
};

TEST_P(GeometrySweep, FlushFractionsAreValidAndMonotone) {
  const auto [l1_kb, line, assoc] = GetParam();
  MachineParams m = MachineParams::sgiChallenge();
  m.l1d = {l1_kb * 1024, line, assoc};
  m.l1i = m.l1d;
  const FlushModel fm(m, SstParams::mvsWorkload());
  double prev1 = 0.0, prev2 = 0.0;
  for (double x = 1.0; x < 3e6; x *= 2.7) {
    const double f1 = fm.f1(x), f2 = fm.f2(x);
    ASSERT_GE(f1, 0.0);
    ASSERT_LE(f1, 1.0);
    ASSERT_GE(f2, 0.0);
    ASSERT_LE(f2, 1.0);
    ASSERT_GE(f1, prev1 - 1e-12);
    ASSERT_GE(f2, prev2 - 1e-12);
    prev1 = f1;
    prev2 = f2;
  }
}

TEST_P(GeometrySweep, BiggerL1FlushesSlower) {
  const auto [l1_kb, line, assoc] = GetParam();
  MachineParams small = MachineParams::sgiChallenge();
  small.l1d = {l1_kb * 1024, line, assoc};
  MachineParams big = small;
  big.l1d.size_bytes *= 4;
  const FlushModel fs(small, SstParams::mvsWorkload());
  const FlushModel fb(big, SstParams::mvsWorkload());
  for (double x : {100.0, 1000.0, 10000.0})
    EXPECT_LE(fb.f1(x), fs.f1(x) + 1e-12) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometrySweep,
                         ::testing::Values(std::make_tuple(8ull, 16u, 1u),
                                           std::make_tuple(16ull, 32u, 1u),
                                           std::make_tuple(16ull, 32u, 2u),
                                           std::make_tuple(32ull, 64u, 4u),
                                           std::make_tuple(64ull, 128u, 2u)));

class ServiceTimeBounds : public ::testing::TestWithParam<double> {};

TEST_P(ServiceTimeBounds, WithinWarmColdEnvelope) {
  const double v = GetParam();
  const auto model = ExecTimeModel::standard();
  Rng rng(404);
  for (int i = 0; i < 500; ++i) {
    CacheStateAges ages;
    ages.code = rng.bernoulli(0.3) ? kColdAge : rng.uniform(0.0, 2e6);
    ages.shared = rng.bernoulli(0.3) ? kColdAge : rng.uniform(0.0, 2e6);
    ages.stream = rng.bernoulli(0.3) ? kColdAge : rng.uniform(0.0, 2e6);
    const double t = model.serviceTime(ages) + v;
    ASSERT_GE(t, model.tWarm() + v - 1e-9);
    ASSERT_LE(t, model.tCold() + v + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(FixedOverheads, ServiceTimeBounds,
                         ::testing::Values(0.0, 35.0, 70.0, 139.0));

// ------------------------------------------------------- protocol fuzz -----

class HeaderCorruption : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeaderCorruption, EveryHeaderByteFlipIsHandledSafely) {
  // Flipping any single byte of the headers must never crash or corrupt the
  // stack; bytes under the IP header checksum must cause a drop.
  const std::size_t byte_index = GetParam();
  ProtocolStack stack;
  stack.open(7000, 1024);
  FrameSpec spec;
  const std::vector<std::uint8_t> payload{1, 2, 3};
  auto frame = buildUdpFrame(spec, payload);
  ASSERT_LT(byte_index, frame.size());
  for (int bit = 0; bit < 8; ++bit) {
    auto copy = frame;
    copy[byte_index] ^= static_cast<std::uint8_t>(1u << bit);
    const auto ctx = stack.receiveFrame(copy);  // must not crash
    const std::size_t ip_lo = FddiHeader::kSize;
    const std::size_t ip_hi = ip_lo + Ipv4Header::kMinSize;
    if (byte_index >= ip_lo && byte_index < ip_hi) {
      EXPECT_TRUE(ctx.dropped()) << "corrupt IP header byte " << byte_index << " accepted";
    }
  }
  // The stack still works afterwards.
  EXPECT_FALSE(stack.receiveFrame(frame).dropped());
}

INSTANTIATE_TEST_SUITE_P(AllHeaderBytes, HeaderCorruption,
                         ::testing::Range<std::size_t>(0, FddiHeader::kSize +
                                                              Ipv4Header::kMinSize +
                                                              UdpHeader::kSize));

class TruncationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncationSweep, EveryTruncationOffsetIsARecoverableTypedError) {
  // Cutting the frame at any byte offset must produce a typed drop (never a
  // crash): the lost tail always contradicts some length field upstream.
  const std::size_t keep = GetParam();
  ProtocolStack stack;
  stack.open(7000, 1024);
  FrameSpec spec;
  const std::vector<std::uint8_t> payload{9, 8, 7, 6, 5};
  auto frame = buildUdpFrame(spec, payload);
  ASSERT_LT(keep, frame.size());
  auto cut = frame;
  cut.resize(keep);
  const auto ctx = stack.receiveFrame(cut);  // must not crash
  EXPECT_TRUE(ctx.dropped()) << "truncation to " << keep << " bytes accepted";
  EXPECT_NE(ctx.drop, DropReason::kNone);
  // The stack survives and still accepts the intact frame.
  EXPECT_FALSE(stack.receiveFrame(frame).dropped());
}

// The full UDP frame spans FDDI(13) + IP(20) + UDP(8) + 5 payload bytes.
INSTANTIATE_TEST_SUITE_P(AllOffsets, TruncationSweep,
                         ::testing::Range<std::size_t>(0, FddiHeader::kSize +
                                                              Ipv4Header::kMinSize +
                                                              UdpHeader::kSize + 5));

class TcpHeaderCorruption : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpHeaderCorruption, EveryTcpHeaderBitFlipIsHandledSafely) {
  // Same contract as the UDP sweep, over the TCP path of the dual stack:
  // any single-bit flip in FDDI/IP/TCP headers is a typed error or a
  // harmless mutation — never a crash — and the stack stays usable.
  const std::size_t byte_index = GetParam();
  DualProtocolStack stack;
  stack.tcp().listen(8000);
  TcpFrameSpec spec;
  spec.flags = TcpHeader::kFlagSyn;
  const auto frame = buildTcpFrame(spec, {});
  ASSERT_LT(byte_index, frame.size());
  for (int bit = 0; bit < 8; ++bit) {
    auto copy = frame;
    copy[byte_index] ^= static_cast<std::uint8_t>(1u << bit);
    const auto ctx = stack.receiveFrame(copy);  // must not crash
    const std::size_t ip_lo = FddiHeader::kSize;
    const std::size_t ip_hi = ip_lo + Ipv4Header::kMinSize;
    if (byte_index >= ip_lo && byte_index < ip_hi) {
      EXPECT_TRUE(ctx.dropped()) << "corrupt IP header byte " << byte_index << " accepted";
    }
  }
  // Truncation at this offset is also a typed error, not a crash.
  auto cut = frame;
  cut.resize(byte_index);
  EXPECT_TRUE(stack.receiveFrame(cut).dropped());
  // A fresh stack still accepts the intact segment (the flips above may
  // have legitimately consumed the SYN).
  DualProtocolStack fresh;
  fresh.tcp().listen(8000);
  EXPECT_FALSE(fresh.receiveFrame(frame).dropped());
}

INSTANTIATE_TEST_SUITE_P(AllHeaderBytes, TcpHeaderCorruption,
                         ::testing::Range<std::size_t>(0, FddiHeader::kSize +
                                                              Ipv4Header::kMinSize +
                                                              TcpHeader::kMinSize));

class PayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSizes, RoundTripsThroughTheStack) {
  const std::size_t n = GetParam();
  ProtocolStack stack;
  stack.open(7000, 16);
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  FrameSpec spec;
  const auto ctx = stack.receiveFrame(buildUdpFrame(spec, payload));
  ASSERT_FALSE(ctx.dropped()) << dropReasonName(ctx.drop);
  EXPECT_EQ(ctx.payload_bytes, n);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(stack.udp().find(7000)->read(out));
  EXPECT_EQ(out, payload);
}

// 4352 bytes ≈ FDDI MTU payload-ish upper end; 0 and 1 exercise odd-byte
// checksum paths.
INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizes,
                         ::testing::Values(0, 1, 2, 3, 31, 32, 512, 1471, 4352));

// ------------------------------------------------- simulation invariants ---

struct PolicyCase {
  Paradigm paradigm;
  LockingPolicy locking;
  IpsPolicy ips;
};

class PolicySweep : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicySweep, ConservationAndThroughputAtModerateLoad) {
  const PolicyCase pc = GetParam();
  SimConfig c;
  c.num_procs = 8;
  c.policy.paradigm = pc.paradigm;
  c.policy.locking = pc.locking;
  c.policy.ips = pc.ips;
  c.policy.hybrid_locking_streams = {0, 1, 2};
  c.warmup_us = 0.0;
  c.measure_us = 600'000.0;
  const double rate = 0.015;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), makePoissonStreams(12, rate));
  EXPECT_EQ(m.arrived, m.completed + m.backlog_end);
  EXPECT_FALSE(m.saturated);
  EXPECT_NEAR(m.throughput_per_us, rate, 0.08 * rate);
  EXPECT_GE(m.mean_delay_us, m.mean_service_us - 1e-9);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
  EXPECT_GE(m.p95_delay_us, m.p50_delay_us);
  EXPECT_GE(m.p99_delay_us, m.p95_delay_us);
}

TEST_P(PolicySweep, DelayIsMonotoneInLoadWithinNoise) {
  const PolicyCase pc = GetParam();
  SimConfig c;
  c.num_procs = 8;
  c.policy.paradigm = pc.paradigm;
  c.policy.locking = pc.locking;
  c.policy.ips = pc.ips;
  c.policy.hybrid_locking_streams = {0, 1, 2};
  c.warmup_us = 100'000.0;
  c.measure_us = 900'000.0;
  const auto model = ExecTimeModel::standard();
  const RunMetrics lo = runOnce(c, model, makePoissonStreams(12, 0.004));
  const RunMetrics hi = runOnce(c, model, makePoissonStreams(12, 0.035));
  // Queueing at 0.035 must dominate any service-time warming effects.
  EXPECT_GT(hi.mean_delay_us + 25.0, lo.mean_delay_us);
  EXPECT_GT(hi.utilization, lo.utilization);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(PolicyCase{Paradigm::kLocking, LockingPolicy::kFcfs, IpsPolicy::kWired},
                      PolicyCase{Paradigm::kLocking, LockingPolicy::kMru, IpsPolicy::kWired},
                      PolicyCase{Paradigm::kLocking, LockingPolicy::kStreamMru, IpsPolicy::kWired},
                      PolicyCase{Paradigm::kLocking, LockingPolicy::kWiredStreams,
                                 IpsPolicy::kWired},
                      PolicyCase{Paradigm::kIps, LockingPolicy::kMru, IpsPolicy::kRandom},
                      PolicyCase{Paradigm::kIps, LockingPolicy::kMru, IpsPolicy::kMru},
                      PolicyCase{Paradigm::kIps, LockingPolicy::kMru, IpsPolicy::kWired},
                      PolicyCase{Paradigm::kHybrid, LockingPolicy::kMru, IpsPolicy::kWired},
                      PolicyCase{Paradigm::kHybrid, LockingPolicy::kStreamMru,
                                 IpsPolicy::kMru}));

class StackCountSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(StackCountSweep, IpsWorksForAnyStackCount) {
  SimConfig c;
  c.num_procs = 4;
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = IpsPolicy::kWired;
  c.policy.ips_stacks = GetParam();
  c.warmup_us = 0.0;
  c.measure_us = 400'000.0;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), makePoissonStreams(9, 0.008));
  EXPECT_EQ(m.arrived, m.completed + m.backlog_end);
  EXPECT_GT(m.completed, 1000u);
}

INSTANTIATE_TEST_SUITE_P(StackCounts, StackCountSweep, ::testing::Values(1u, 2u, 3u, 4u, 7u, 16u));

// --------------------------------------------------- cachesim invariants ---

TEST(HierarchyInvariant, InclusionHoldsUnderRandomAccesses) {
  MachineParams m;
  m.l1i = {2048, 32, 1};
  m.l1d = {2048, 32, 2};
  m.l2 = {16384, 128, 1};
  Hierarchy h(m);
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.uniform_u64(1u << 20);
    const auto kind = static_cast<RefKind>(rng.uniform_u64(3));
    h.access(addr, kind);
    if (i % 500 == 0) {
      // Every L1-resident line must be L2-resident (inclusion).
      for (std::uint64_t a = 0; a < (1u << 20); a += 32) {
        if (h.l1d().contains(a) || h.l1i().contains(a)) {
          ASSERT_TRUE(h.l2().contains(a)) << "inclusion violated at " << std::hex << a;
        }
      }
    }
  }
}

TEST(HierarchyInvariant, StatsAreConsistent) {
  MachineParams m;
  m.l1i = {2048, 32, 1};
  m.l1d = {2048, 32, 1};
  m.l2 = {16384, 128, 1};
  Hierarchy h(m);
  Rng rng(78);
  for (int i = 0; i < 5000; ++i) h.access(rng.uniform_u64(1u << 18), RefKind::kLoad);
  const auto& d = h.l1d().stats();
  const auto& l2 = h.l2().stats();
  EXPECT_EQ(d.accesses, 5000u);
  EXPECT_LE(d.misses, d.accesses);
  EXPECT_EQ(l2.accesses, d.misses) << "every L1D miss probes L2 (no I-fetches issued)";
  EXPECT_LE(h.l1d().residentLineCount(), m.l1d.lines());
  EXPECT_LE(h.l2().residentLineCount(), m.l2.lines());
}

TEST(CoherenceInvariant, NoStaleDirtyReadsAcrossProcessors) {
  // Writer/reader ping-pong: after a store by one processor, a load by any
  // other must pay at least an L2 miss (never a silent stale hit).
  MachineParams m;
  m.l1i = {2048, 32, 1};
  m.l1d = {2048, 32, 1};
  m.l2 = {16384, 128, 1};
  CoherentSystem sys(m, 4);
  Rng rng(79);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng.uniform_u64(1u << 14);
    const unsigned writer = static_cast<unsigned>(rng.uniform_u64(4));
    sys.access(writer, addr, RefKind::kStore);
    const unsigned reader = (writer + 1 + static_cast<unsigned>(rng.uniform_u64(3))) % 4;
    const auto out = sys.access(reader, addr, RefKind::kLoad);
    ASSERT_TRUE(out.l1_miss) << "reader hit a line the writer had invalidated";
  }
}

}  // namespace
}  // namespace affinity
