// Tests for src/workload: arrival-process rates and shapes, stream sets,
// arrival-trace record/replay I/O (including its error paths).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "net/dispatch.hpp"
#include "workload/adversary.hpp"
#include "workload/arrivals.hpp"
#include "workload/frame_gen.hpp"
#include "workload/stream_set.hpp"
#include "workload/trace_io.hpp"

namespace affinity {
namespace {

// Empirical packet rate of a process over a long horizon.
double empiricalRate(ArrivalProcess& p, Rng& rng, std::uint64_t events) {
  double t = 0.0;
  std::uint64_t packets = 0;
  for (std::uint64_t i = 0; i < events; ++i) {
    const auto a = p.next(rng);
    t += a.gap_us;
    packets += a.batch;
  }
  return static_cast<double>(packets) / t;
}

TEST(Poisson, RateMatches) {
  PoissonArrivals p(0.01);  // 10k pkts/s
  Rng rng(1);
  EXPECT_NEAR(empiricalRate(p, rng, 200000), 0.01, 0.0005);
}

TEST(Poisson, BatchAlwaysOne) {
  PoissonArrivals p(0.02);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.next(rng).batch, 1u);
}

TEST(Poisson, InterarrivalsAreExponential) {
  PoissonArrivals p(0.01);
  Rng rng(3);
  // Coefficient of variation of exponential is 1.
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = p.next(rng).gap_us;
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.03);
}

TEST(BatchPoisson, PacketRatePreservedFixed) {
  BatchPoissonArrivals p(0.01, 8.0, /*geometric=*/false);
  Rng rng(4);
  EXPECT_NEAR(empiricalRate(p, rng, 100000), 0.01, 0.0008);
}

TEST(BatchPoisson, PacketRatePreservedGeometric) {
  BatchPoissonArrivals p(0.01, 8.0, /*geometric=*/true);
  Rng rng(5);
  EXPECT_NEAR(empiricalRate(p, rng, 100000), 0.01, 0.0008);
}

TEST(BatchPoisson, FixedBatchSizes) {
  BatchPoissonArrivals p(0.01, 6.0, /*geometric=*/false);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(p.next(rng).batch, 6u);
}

TEST(BatchPoisson, GeometricBatchMean) {
  BatchPoissonArrivals p(0.01, 5.0, /*geometric=*/true);
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += p.next(rng).batch;
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(BatchPoisson, FractionalFixedMeanUnbiased) {
  BatchPoissonArrivals p(0.01, 2.5, /*geometric=*/false);
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto b = p.next(rng).batch;
    EXPECT_TRUE(b == 2 || b == 3);
    sum += b;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(PacketTrain, PacketRatePreserved) {
  PacketTrainArrivals p(0.005, 10.0, 20.0);
  Rng rng(9);
  EXPECT_NEAR(empiricalRate(p, rng, 200000), 0.005, 0.0004);
}

TEST(PacketTrain, CarsFollowLocomotiveClosely) {
  PacketTrainArrivals p(0.001, 8.0, 15.0);
  Rng rng(10);
  int car_gaps = 0, total = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto a = p.next(rng);
    ++total;
    if (a.gap_us == 15.0) ++car_gaps;
  }
  // Mean train length 8 -> 7/8 of arrivals are cars at the fixed gap.
  EXPECT_NEAR(static_cast<double>(car_gaps) / total, 7.0 / 8.0, 0.02);
}

TEST(PacketTrain, InfeasibleGapsRejected) {
  // Rate so high the intra-train time alone exceeds the cycle budget.
  EXPECT_DEATH(PacketTrainArrivals(1.0, 100.0, 50.0), "CHECK failed");
}

TEST(StreamSet, PoissonSplitsRateEqually) {
  const StreamSet set = makePoissonStreams(16, 0.032);
  EXPECT_EQ(set.count(), 16u);
  EXPECT_NEAR(set.totalRatePerUs(), 0.032, 1e-12);
  for (const auto& s : set.streams) EXPECT_NEAR(s->meanRatePerUs(), 0.002, 1e-12);
}

TEST(StreamSet, CloneIsDeepAndEquivalent) {
  const StreamSet set = makeBatchStreams(4, 0.01, 4.0);
  StreamSet copy = set.clone();
  EXPECT_EQ(copy.count(), 4u);
  EXPECT_NEAR(copy.totalRatePerUs(), set.totalRatePerUs(), 1e-12);
  // Drawing from the clone must not disturb the original objects.
  Rng rng(11);
  copy.streams[0]->next(rng);
  EXPECT_NE(copy.streams[0].get(), set.streams[0].get());
}

TEST(StreamSet, HotColdShares) {
  const StreamSet set = makeHotColdStreams(2, 14, 0.016, 0.5);
  EXPECT_EQ(set.count(), 16u);
  EXPECT_NEAR(set.totalRatePerUs(), 0.016, 1e-12);
  EXPECT_NEAR(set.streams[0]->meanRatePerUs(), 0.004, 1e-12);   // hot
  EXPECT_NEAR(set.streams[15]->meanRatePerUs(), 0.016 * 0.5 / 14, 1e-12);
}

TEST(StreamSet, TrainStreamsRate) {
  const StreamSet set = makeTrainStreams(4, 0.008, 6.0, 10.0);
  EXPECT_NEAR(set.totalRatePerUs(), 0.008, 1e-12);
}

// ------------------------------------------------------- trace_io errors ---

std::string tracePath(const char* name) {
  return testing::TempDir() + "workload_trace_io_" + name + ".txt";
}

void writeText(const std::string& path, const char* text) {
  std::ofstream out(path);
  out << text;
}

TEST(TraceIo, RoundTripPreservesRecords) {
  const StreamSet set = makePoissonStreams(4, 0.02);
  const auto recorded = recordArrivals(set, 5'000.0, 42);
  ASSERT_FALSE(recorded.empty());
  const std::string path = tracePath("roundtrip");
  ASSERT_TRUE(writeArrivalTrace(path, recorded));
  std::string error;
  const auto replayed = readArrivalTrace(path, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(replayed.size(), recorded.size());
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_NEAR(replayed[i].time_us, recorded[i].time_us, 1e-6);
    EXPECT_EQ(replayed[i].stream, recorded[i].stream);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsEmptyAndSetsError) {
  std::string error;
  const auto records = readArrivalTrace(tracePath("does_not_exist"), &error);
  EXPECT_TRUE(records.empty());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
  // Null error pointer must be tolerated.
  EXPECT_TRUE(readArrivalTrace(tracePath("does_not_exist")).empty());
}

TEST(TraceIo, MalformedLineReportsLineNumber) {
  const std::string path = tracePath("malformed");
  writeText(path, "# header\n10.5 0\nnot-a-record\n20.0 1\n");
  std::string error;
  const auto records = readArrivalTrace(path, &error);
  EXPECT_TRUE(records.empty()) << "partial parses must not leak records";
  EXPECT_EQ(error, "bad record at line 3");
  std::remove(path.c_str());
}

TEST(TraceIo, TimeRegressionRejected) {
  const std::string path = tracePath("regression");
  writeText(path, "10.0 0\n9.0 1\n");
  std::string error;
  EXPECT_TRUE(readArrivalTrace(path, &error).empty());
  EXPECT_EQ(error, "bad record at line 2");
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedRecordRejected) {
  const std::string path = tracePath("truncated");
  writeText(path, "10.0 0\n11.5\n");
  std::string error;
  EXPECT_TRUE(readArrivalTrace(path, &error).empty());
  EXPECT_EQ(error, "bad record at line 2");
  std::remove(path.c_str());
}

TEST(TraceIo, CommentsAndBlankLinesSkipped) {
  const std::string path = tracePath("comments");
  writeText(path, "# a comment\n\n1.0 0\n# another\n2.0 1\n");
  std::string error;
  const auto records = readArrivalTrace(path, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].stream, 1u);
}

TEST(TraceIo, UnwritablePathReturnsFalse) {
  EXPECT_FALSE(writeArrivalTrace("/proc/affinity_no_such_dir/trace.txt", {}));
}

TEST(TraceIo, ReplayedStreamsMatchRecordingRate) {
  const StreamSet set = makePoissonStreams(3, 0.03);
  const double duration = 20'000.0;
  const auto recorded = recordArrivals(set, duration, 7);
  const StreamSet replay = makeTraceStreams(recorded, duration);
  EXPECT_EQ(replay.count(), 3u);
  EXPECT_NEAR(replay.totalRatePerUs() * duration, static_cast<double>(recorded.size()), 1e-6);
}

// ------------------------------------------------ adversarial workloads ---

TEST(ZipfStreams, RatesFollowThePowerLawAndSumToTotal) {
  const StreamSet set = makeZipfStreams(8, 0.08, 1.0);
  ASSERT_EQ(set.count(), 8u);
  EXPECT_NEAR(set.totalRatePerUs(), 0.08, 1e-9);
  // rate_i ~ 1/(i+1): stream 0 carries twice stream 1, eight times stream 7.
  const auto rate = [&](std::size_t s) { return set.streams[s]->meanRatePerUs(); };
  EXPECT_NEAR(rate(0) / rate(1), 2.0, 1e-9);
  EXPECT_NEAR(rate(0) / rate(7), 8.0, 1e-9);
}

TEST(ZipfStreams, AlphaZeroIsUniform) {
  const StreamSet set = makeZipfStreams(4, 0.04, 0.0);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_NEAR(set.streams[s]->meanRatePerUs(), 0.01, 1e-12) << s;
}

TEST(ChurnStreams, ArrivalsAreStaggeredAcrossTheSpan) {
  const StreamSet set = makeChurnStreams(4, 0.04, 100'000.0);
  ASSERT_EQ(set.count(), 4u);
  Rng rng(5);
  // First arrival of stream s comes no earlier than its onset delay.
  for (std::size_t s = 0; s < 4; ++s) {
    auto proc = set.streams[s]->clone();
    const double first_gap = proc->next(rng).gap_us;
    EXPECT_GE(first_gap, 100'000.0 * static_cast<double>(s) / 4.0) << s;
  }
}

TEST(Adversary, NoneReproducesRoundRobinExactly) {
  AdversaryOptions opt;
  opt.kind = AdversaryKind::kNone;
  opt.streams = 16;
  const AdversaryPattern p(opt);
  for (std::uint64_t i = 0; i < 1000; ++i)
    ASSERT_EQ(p.streamAt(i), static_cast<std::uint32_t>(i % 16)) << i;
}

TEST(Adversary, PatternsArePureFunctionsOfOptionsAndIndex) {
  for (const auto kind : {AdversaryKind::kZipf, AdversaryKind::kChurn, AdversaryKind::kFlash,
                          AdversaryKind::kCollision}) {
    AdversaryOptions opt;
    opt.kind = kind;
    opt.streams = 64;
    opt.seed = 9;
    opt.collision_buckets = 4;
    const AdversaryPattern a(opt), b(opt);
    // Two identically configured patterns agree at every index, and
    // evaluation order is irrelevant (streamAt holds no mutable state).
    for (std::uint64_t i = 0; i < 2000; ++i)
      ASSERT_EQ(a.streamAt(i), b.streamAt(i)) << i;
    for (std::uint64_t i = 2000; i-- > 0;)
      ASSERT_EQ(a.streamAt(i), b.streamAt(i)) << i;
    for (std::uint64_t i = 0; i < 2000; ++i) ASSERT_LT(a.streamAt(i), opt.streams) << i;
  }
}

TEST(Adversary, ZipfConcentratesOnTheHead) {
  AdversaryOptions opt;
  opt.kind = AdversaryKind::kZipf;
  opt.streams = 64;
  opt.zipf_alpha = 1.2;
  const AdversaryPattern p(opt);
  std::vector<std::uint64_t> counts(64, 0);
  for (std::uint64_t i = 0; i < 50'000; ++i) ++counts[p.streamAt(i)];
  EXPECT_GT(counts[0], counts[32] * 4);  // elephants vs the tail
  EXPECT_GT(counts[63], 0u);             // but the tail still churns
}

TEST(Adversary, ChurnWavesDrawFromFreshWindows) {
  AdversaryOptions opt;
  opt.kind = AdversaryKind::kChurn;
  opt.streams = 1024;
  opt.churn_period = 100;
  opt.churn_active = 8;
  const AdversaryPattern p(opt);
  // Within one wave at most churn_active distinct streams appear; the next
  // wave's window is disjoint until the stream space wraps.
  std::set<std::uint32_t> wave0, wave1;
  for (std::uint64_t i = 0; i < 100; ++i) wave0.insert(p.streamAt(i));
  for (std::uint64_t i = 100; i < 200; ++i) wave1.insert(p.streamAt(i));
  EXPECT_LE(wave0.size(), 8u);
  EXPECT_LE(wave1.size(), 8u);
  for (const auto s : wave1) EXPECT_EQ(wave0.count(s), 0u) << s;
}

TEST(Adversary, FlashCrowdConcentratesOnlyDuringTheBurst) {
  AdversaryOptions opt;
  opt.kind = AdversaryKind::kFlash;
  opt.streams = 256;
  opt.flash_period = 1000;
  opt.flash_len = 100;
  opt.flash_hot = 4;
  const AdversaryPattern p(opt);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_LT(p.streamAt(i), 4u) << i;
  std::set<std::uint32_t> background;
  for (std::uint64_t i = 100; i < 1000; ++i) background.insert(p.streamAt(i));
  EXPECT_GT(background.size(), 64u);  // uniform over the full space
}

TEST(Adversary, CollisionSetSharesOneRssQueue) {
  AdversaryOptions opt;
  opt.kind = AdversaryKind::kCollision;
  opt.streams = 4096;
  opt.collision_buckets = 4;
  opt.collision_fraction = 1.0;  // every frame comes from the colliding set
  const AdversaryPattern p(opt);
  EXPECT_GT(p.collisionSetSize(), 1u);
  net::NicDispatcher nic(net::NicDispatchMode::kRss, 4);
  const unsigned target = nic.queueOf(p.streamAt(0));
  for (std::uint64_t i = 1; i < 5000; ++i)
    ASSERT_EQ(nic.queueOf(p.streamAt(i)), target) << i;
}

TEST(Adversary, KindNamesRoundTrip) {
  for (const auto k : {AdversaryKind::kNone, AdversaryKind::kZipf, AdversaryKind::kChurn,
                       AdversaryKind::kFlash, AdversaryKind::kCollision}) {
    AdversaryKind parsed;
    ASSERT_TRUE(parseAdversaryKind(adversaryKindName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  AdversaryKind out;
  EXPECT_FALSE(parseAdversaryKind("ddos", &out));
}

// --------------------------------------------------- lazy frame corpus ---

TEST(FrameGen, LazyModeMatchesPrebuilt) {
  // Same seed + options, one corpus forced eager and one lazy (stream count
  // above the threshold): every frame must match byte-for-byte.
  FrameCorpus::Options small;
  small.streams = 64;
  const FrameCorpus eager(321, small);
  ASSERT_FALSE(eager.lazy());

  FrameCorpus::Options big = small;
  big.streams = FrameCorpus::kLazyStreamThreshold + 1;
  const FrameCorpus lazy(321, big);
  ASSERT_TRUE(lazy.lazy());

  // Streams below `small.streams` exist in both corpora with identical
  // per-stream rng splits, so the frames agree exactly.
  for (std::uint32_t s : {0u, 1u, 7u, 63u}) {
    for (std::uint64_t v = 0; v < 8; ++v) {
      ASSERT_EQ(eager.frame(s, v), lazy.frame(s, v)) << "stream " << s << " variant " << v;
    }
  }
  // Lazy frames are themselves replay-stable (pure function, no cache).
  for (std::uint32_t s : {5000u, 100'000u % big.streams}) {
    ASSERT_EQ(lazy.frame(s, 3), lazy.frame(s, 3));
  }
}

}  // namespace
}  // namespace affinity
