// Tests for the INI config parser and the scenario builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "util/config.hpp"

namespace affinity {
namespace {

// ----------------------------------------------------------------- config --

TEST(ConfigFileTest, ParsesSectionsAndTypes) {
  const auto cfg = ConfigFile::parse(R"(
# comment
top = 1
[machine]
processors = 8
ratio = 2.5
flag = true
name = challenge  ; not a comment marker mid-line? no: full-line only
)");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->getInt("top", 0), 1);
  EXPECT_EQ(cfg->getInt("machine.processors", 0), 8);
  EXPECT_DOUBLE_EQ(cfg->getDouble("machine.ratio", 0.0), 2.5);
  EXPECT_TRUE(cfg->getBool("machine.flag", false));
  EXPECT_EQ(cfg->getInt("absent", 42), 42);
  EXPECT_TRUE(cfg->has("machine.processors"));
  EXPECT_FALSE(cfg->has("machine.absent"));
}

TEST(ConfigFileTest, SectionExtraction) {
  const auto cfg = ConfigFile::parse("[a]\nx = 1\ny = 2\n[b]\nz = 3\n");
  ASSERT_TRUE(cfg.has_value());
  const auto a = cfg->section("a");
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at("x"), "1");
  EXPECT_EQ(cfg->section("b").at("z"), "3");
  EXPECT_TRUE(cfg->section("missing").empty());
}

TEST(ConfigFileTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ConfigFile::parse("[unterminated\nx = 1\n", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ConfigFile::parse("novalue\n", &error).has_value());
  EXPECT_FALSE(ConfigFile::parse("= nokey\n", &error).has_value());
}

TEST(ConfigFileTest, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(ConfigFile::load("/nonexistent/file.ini", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ConfigFileTest, WhitespaceAndCrlfTolerated) {
  const auto cfg = ConfigFile::parse("  key  =  value with spaces  \r\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->getString("key", ""), "value with spaces");
}

// --------------------------------------------------------------- scenario --

std::optional<Scenario> scenarioFrom(const std::string& text, std::string* error = nullptr) {
  const auto cfg = ConfigFile::parse(text, error);
  if (!cfg) return std::nullopt;
  return buildScenario(*cfg, error);
}

TEST(ScenarioTest, DefaultsMatchThePaperSetup) {
  const auto s = scenarioFrom("");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->config.num_procs, 8u);
  EXPECT_EQ(s->config.policy.paradigm, Paradigm::kLocking);
  EXPECT_EQ(s->config.policy.locking, LockingPolicy::kMru);
  EXPECT_EQ(s->streams.count(), 16u);
  EXPECT_NEAR(s->streams.totalRatePerUs(), 0.012, 1e-9);
  EXPECT_NEAR(s->model.tCold(), 284.3, 0.05);
}

TEST(ScenarioTest, FullConfigurationApplies) {
  const auto s = scenarioFrom(R"(
[machine]
processors = 4
bus_occupancy = 0.35
[model]
profile = tcp-receive
[workload]
type = batch
streams = 8
rate_pkts_per_s = 9000
batch = 12
[policy]
paradigm = ips
ips = mru
stacks = 6
[run]
seed = 99
v_us = 70
confident = true
)");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->config.num_procs, 4u);
  EXPECT_DOUBLE_EQ(s->config.bus_occupancy_fraction, 0.35);
  EXPECT_EQ(s->config.policy.paradigm, Paradigm::kIps);
  EXPECT_EQ(s->config.policy.ips, IpsPolicy::kMru);
  EXPECT_EQ(s->config.policy.ips_stacks, 6u);
  EXPECT_EQ(s->config.seed, 99u);
  EXPECT_DOUBLE_EQ(s->config.fixed_overhead_us, 70.0);
  EXPECT_TRUE(s->run_until_confident);
  EXPECT_NEAR(s->model.tWarm(), 156.1, 0.01);
  EXPECT_EQ(s->streams.count(), 8u);
}

TEST(ScenarioTest, HybridStreamListParsed) {
  const auto s = scenarioFrom(
      "[policy]\nparadigm = hybrid\nhybrid_locking_streams = 0,3,7\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->config.policy.hybrid_locking_streams,
            (std::vector<std::uint32_t>{0, 3, 7}));
}

TEST(ScenarioTest, RejectsUnknownEnumValues) {
  std::string error;
  EXPECT_FALSE(scenarioFrom("[policy]\nparadigm = quantum\n", &error).has_value());
  EXPECT_NE(error.find("paradigm"), std::string::npos);
  EXPECT_FALSE(scenarioFrom("[workload]\ntype = fractal\n", &error).has_value());
  EXPECT_FALSE(scenarioFrom("[model]\nprofile = carrier-pigeon\n", &error).has_value());
}

TEST(ScenarioTest, NetDispatchSectionParsed) {
  // The NIC front-end reads [net]; the historical [policy] spelling remains
  // a fallback so every pre-section scenario parses identically.
  const auto s = scenarioFrom("[net]\ndispatch = tfn\ntfn_window = 8\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->config.dispatch, net::NicDispatchMode::kTransportFriendly);
  EXPECT_EQ(s->config.tfn_window, 8u);

  const auto alias = scenarioFrom("[net]\ndispatch = transport-friendly\n");
  ASSERT_TRUE(alias.has_value());
  EXPECT_EQ(alias->config.dispatch, net::NicDispatchMode::kTransportFriendly);
  EXPECT_EQ(alias->config.tfn_window, net::NicDispatcher::kDefaultTfnWindow);

  const auto legacy = scenarioFrom("[policy]\ndispatch = fdir\n");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->config.dispatch, net::NicDispatchMode::kFlowDirector);

  std::string error;
  EXPECT_FALSE(scenarioFrom("[net]\ndispatch = quantum\n", &error).has_value());
  EXPECT_NE(error.find("net.dispatch"), std::string::npos);
  EXPECT_FALSE(scenarioFrom("[net]\ndispatch = tfn\ntfn_window = 0\n", &error).has_value());
  EXPECT_NE(error.find("tfn_window"), std::string::npos);
}

TEST(ScenarioTest, RejectsAdaptiveWithoutHybrid) {
  std::string error;
  EXPECT_FALSE(
      scenarioFrom("[policy]\nparadigm = locking\nadaptive = true\n", &error).has_value());
  EXPECT_NE(error.find("adaptive"), std::string::npos);
}

TEST(ScenarioTest, RejectsMissingTraceFile) {
  std::string error;
  EXPECT_FALSE(scenarioFrom("[workload]\ntype = trace\n", &error).has_value());
  EXPECT_FALSE(
      scenarioFrom("[workload]\ntype = trace\ntrace_file = /nonexistent\n", &error).has_value());
}

// Quick-tier determinism sweep over every shipped scenario: each INI in
// scenarios/ must load, build, and reproduce itself bit-exactly on a
// re-run with the same seed — including the adversarial flow-churn
// scenarios (flood_collision.ini is chaos-harness-shaped and builds a
// default sim scenario here; churn_storm.ini exercises the bounded flow
// table end to end). The soak tier extends the same sweep to serial vs
// parallel shards (determinism_test.cpp, GoldenSeed.ParallelMatchesSerial);
// this one stays sub-second so it rides the inner loop.
TEST(ScenarioTest, ShippedScenariosRerunBitIdentically) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(fs::path(AFF_SOURCE_ROOT) / "scenarios")) {
    if (entry.path().extension() == ".ini") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::string error;
    const auto cfg = ConfigFile::load(path.string(), &error);
    ASSERT_TRUE(cfg.has_value()) << error;
    auto sc = buildScenario(*cfg, &error);
    ASSERT_TRUE(sc.has_value()) << error;
    // Tiny windows keep the whole sweep quick-tier; determinism must hold
    // for any window.
    sc->config.warmup_us = std::min(sc->config.warmup_us, 2'000.0);
    sc->config.measure_us = std::min(sc->config.measure_us, 20'000.0);
    sc->config.parallel_procs = 0;
    const RunMetrics a = runOnce(sc->config, sc->model, sc->streams);
    const RunMetrics b = runOnce(sc->config, sc->model, sc->streams);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.mean_delay_us, b.mean_delay_us);
    EXPECT_EQ(a.p99_delay_us, b.p99_delay_us);
    EXPECT_EQ(a.throughput_per_us, b.throughput_per_us);
    EXPECT_EQ(a.flow_inserts, b.flow_inserts);
    EXPECT_EQ(a.flow_evictions, b.flow_evictions);
    EXPECT_EQ(a.flow_shed, b.flow_shed);
  }
}

TEST(ScenarioTest, BuiltScenarioRunsEndToEnd) {
  auto s = scenarioFrom(R"(
[workload]
streams = 8
rate_pkts_per_s = 10000
[run]
warmup_us = 50000
measure_us = 300000
)");
  ASSERT_TRUE(s.has_value());
  const RunMetrics m = runOnce(s->config, s->model, s->streams);
  EXPECT_GT(m.completed, 1000u);
  EXPECT_FALSE(m.saturated);
}

}  // namespace
}  // namespace affinity
