// golden_tolerance.hpp — one named tolerance policy for every golden pin.
//
// The golden suites (golden_figures_test, golden_llc_test) pin simulator
// outputs against recorded values. The simulation is deterministic, so the
// tolerances exist only to absorb benign floating-point reassociation from
// compiler/library changes — but a single anonymous constant invites two
// failure modes: silently widening it to paper over a real regression, and
// figures with different natural noise (delay pins vs bisected capacities)
// sharing a bound that fits neither. Every pin therefore names its figure,
// and the figure's tolerance lives in one table below; an unknown figure
// name is itself a test failure, so a typo cannot fall through to some
// accidental default.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

namespace affinity::golden {

/// Relative tolerance for one figure's pinned values.
struct FigureTolerance {
  const char* figure;
  double rel;
};

/// The policy table. Delay pins use the historical ±2 %; capacity pins come
/// from a 10-step bisection whose grid quantization dominates reassociation,
/// so they carry the same bound explicitly rather than by accident. The
/// shared-LLC reruns ride the reuse-distance model, whose profile-driven
/// service times amplify reassociation slightly — ±3 % (measured drift
/// across -O0/-O2 is far smaller; the headroom is for libm changes).
inline constexpr FigureTolerance kFigureTolerances[] = {
    {"fig6", 0.02},      {"fig8", 0.02},      {"fig9-capacity", 0.02},
    {"fig10", 0.02},     {"fig12", 0.02},     {"fig13-capacity", 0.02},
    {"llc-fig6", 0.03},  {"llc-fig8", 0.03},  {"llc-fig9-capacity", 0.03},
    {"llc-fig12", 0.03},
};

/// Looks up a figure's relative tolerance; unknown names fail the test and
/// return 0 (so the subsequent EXPECT_NEAR also fails loudly).
inline double relTolerance(const char* figure) {
  for (const FigureTolerance& t : kFigureTolerances)
    if (std::strcmp(t.figure, figure) == 0) return t.rel;
  ADD_FAILURE() << "no tolerance registered for figure '" << figure
                << "' — add it to golden_tolerance.hpp";
  return 0.0;
}

/// EXPECT_NEAR against a pinned value with the figure's named tolerance.
inline void expectPinned(const char* figure, double value, double pinned, const char* what) {
  EXPECT_NEAR(value, pinned, std::abs(pinned) * relTolerance(figure))
      << figure << ": " << what;
}

}  // namespace affinity::golden
