// Golden-seed regression test: pins RunMetrics for three fixed
// (config, seed, workload) triples to the exact values produced by the
// original seed kernel. The event calendar breaks ties on (time, sequence),
// so a run's event order — and therefore every derived statistic — is a pure
// function of the seed. Any kernel change that perturbs ordering, however
// subtly, shows up here as a bit-level metric drift.
//
// The constants were captured from the seed-kernel binary with full
// precision (%.17g round-trips a double exactly); the calendar-queue kernel
// must reproduce them bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "core/experiment.hpp"
#include "core/parallel_sim.hpp"
#include "core/scenario.hpp"
#include "core/sweep_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/chaos.hpp"
#include "util/config.hpp"

namespace affinity {
namespace {

struct Golden {
  double mean_delay_us, p50_delay_us, p95_delay_us, p99_delay_us, ci95_delay_us;
  double mean_service_us, mean_lock_wait_us;
  double throughput_per_us, utilization, mean_queue_len;
  std::uint64_t arrived, completed, backlog_end;
  bool saturated;
  std::uint64_t reclassifications;
};

void expectExactly(const RunMetrics& m, const Golden& g) {
  // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the whole point is bit-for-bit
  // reproduction, not closeness.
  EXPECT_EQ(m.mean_delay_us, g.mean_delay_us);
  EXPECT_EQ(m.p50_delay_us, g.p50_delay_us);
  EXPECT_EQ(m.p95_delay_us, g.p95_delay_us);
  EXPECT_EQ(m.p99_delay_us, g.p99_delay_us);
  EXPECT_EQ(m.ci95_delay_us, g.ci95_delay_us);
  EXPECT_EQ(m.mean_service_us, g.mean_service_us);
  EXPECT_EQ(m.mean_lock_wait_us, g.mean_lock_wait_us);
  EXPECT_EQ(m.throughput_per_us, g.throughput_per_us);
  EXPECT_EQ(m.utilization, g.utilization);
  EXPECT_EQ(m.mean_queue_len, g.mean_queue_len);
  EXPECT_EQ(m.arrived, g.arrived);
  EXPECT_EQ(m.completed, g.completed);
  EXPECT_EQ(m.backlog_end, g.backlog_end);
  EXPECT_EQ(m.saturated, g.saturated);
  EXPECT_EQ(m.reclassifications, g.reclassifications);
}

TEST(GoldenSeed, LockingMruPoisson) {
  SimConfig c = defaultSimConfig();  // 8 procs, Locking/MRU
  c.seed = 12345;
  c.warmup_us = 20'000.0;
  c.measure_us = 150'000.0;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), makePoissonStreams(16, 0.02));
  expectExactly(m, Golden{215.42210779173973, 211.68374390497655, 250.79400633851003,
                          274.20517683433837, 2.7714679014081289, 212.10216182978752,
                          0.56981715208325845, 0.019786666666666668, 0.52593677314464249,
                          0.054415882051270695, 3349, 2968, 4, false, 0});
}

TEST(GoldenSeed, IpsWiredPoisson) {
  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = IpsPolicy::kWired;
  c.seed = 999;
  c.warmup_us = 20'000.0;
  c.measure_us = 150'000.0;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), makePoissonStreams(16, 0.03));
  expectExactly(m, Golden{228.30822699308376, 177.94182389224551, 440.86403679977246,
                          601.90817884310445, 8.5590940190164808, 146.24273045090067, 0.0,
                          0.03032, 0.55425707780654576, 2.4887902646508961, 5153, 4548, 5,
                          false, 0});
}

// --------------------------------------- conservative-parallel identity ---
//
// SimConfig::parallel_procs shards the simulated processors across real
// threads (core/parallel_sim, docs/PARALLEL_SIM.md). The contract is strict:
// whatever the thread count, every RunMetrics field — floating-point stats
// included — must be bit-identical to the serial run. Eligible IPS/wired
// configurations exercise the real shard + commit-log-replay machinery;
// everything else must take the serial fallback and trivially match.

void expectIdenticalMetrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.mean_delay_us, b.mean_delay_us);
  EXPECT_EQ(a.p50_delay_us, b.p50_delay_us);
  EXPECT_EQ(a.p95_delay_us, b.p95_delay_us);
  EXPECT_EQ(a.p99_delay_us, b.p99_delay_us);
  EXPECT_EQ(a.ci95_delay_us, b.ci95_delay_us);
  EXPECT_EQ(a.mean_service_us, b.mean_service_us);
  EXPECT_EQ(a.mean_lock_wait_us, b.mean_lock_wait_us);
  EXPECT_EQ(a.offered_rate_per_us, b.offered_rate_per_us);
  EXPECT_EQ(a.throughput_per_us, b.throughput_per_us);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.mean_queue_len, b.mean_queue_len);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.backlog_end, b.backlog_end);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.reclassifications, b.reclassifications);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.stolen_jobs, b.stolen_jobs);
  EXPECT_EQ(a.flow_migrations, b.flow_migrations);
  EXPECT_EQ(a.tfn_feedback, b.tfn_feedback);
  EXPECT_EQ(a.tfn_deferred, b.tfn_deferred);
  EXPECT_EQ(a.tfn_applied, b.tfn_applied);
  EXPECT_EQ(a.tfn_stale, b.tfn_stale);
  ASSERT_EQ(a.per_stream_mean_delay_us.size(), b.per_stream_mean_delay_us.size());
  for (std::size_t s = 0; s < a.per_stream_mean_delay_us.size(); ++s) {
    EXPECT_EQ(a.per_stream_mean_delay_us[s], b.per_stream_mean_delay_us[s]) << "stream " << s;
  }
}

TEST(GoldenSeed, ParallelMatchesSerial) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(fs::path(AFF_SOURCE_ROOT) / "scenarios")) {
    if (entry.path().extension() == ".ini") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::string error;
    const auto cfg = ConfigFile::load(path.string(), &error);
    ASSERT_TRUE(cfg.has_value()) << error;
    auto sc = buildScenario(*cfg, &error);
    ASSERT_TRUE(sc.has_value()) << error;
    // Shrink long windows so the full scenario sweep stays test-sized; the
    // identity must hold for any window.
    sc->config.warmup_us = std::min(sc->config.warmup_us, 10'000.0);
    sc->config.measure_us = std::min(sc->config.measure_us, 80'000.0);
    sc->config.parallel_procs = 0;
    const RunMetrics serial = runOnce(sc->config, sc->model, sc->streams);
    for (const unsigned threads : {2u, 4u, 8u}) {
      SCOPED_TRACE(threads);
      SimConfig pc = sc->config;
      pc.parallel_procs = threads;
      const RunMetrics par = runOnce(pc, sc->model, sc->streams);
      expectIdenticalMetrics(serial, par);
    }
  }
}

// Guard against the gate passing vacuously: an eligible configuration must
// actually shard onto threads, and a known-ineligible one must report why
// it fell back.
TEST(GoldenSeed, ParallelActuallyShards) {
  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = IpsPolicy::kWired;
  c.seed = 999;
  c.warmup_us = 20'000.0;
  c.measure_us = 150'000.0;
  const RunMetrics serial = runOnce(c, ExecTimeModel::standard(), makePoissonStreams(16, 0.03));

  c.parallel_procs = 4;
  ParallelRunInfo pinfo;
  const RunMetrics par =
      runParallel(c, ExecTimeModel::standard(), makePoissonStreams(16, 0.03), &pinfo);
  EXPECT_TRUE(pinfo.parallel) << pinfo.fallback_reason;
  EXPECT_EQ(pinfo.shards, 4u);
  EXPECT_GT(pinfo.epochs, 0u);
  EXPECT_GT(pinfo.lookahead_us, 0.0);
  expectIdenticalMetrics(serial, par);
  // Same triple as IpsWiredPoisson above: the parallel path must reproduce
  // the pinned golden constants too, not merely agree with today's serial.
  EXPECT_EQ(par.mean_delay_us, 228.30822699308376);
  EXPECT_EQ(par.utilization, 0.55425707780654576);

  SimConfig locking = defaultSimConfig();
  locking.seed = 12345;
  locking.warmup_us = 10'000.0;
  locking.measure_us = 50'000.0;
  locking.parallel_procs = 4;
  ParallelRunInfo linfo;
  (void)runParallel(locking, ExecTimeModel::standard(), makePoissonStreams(16, 0.02), &linfo);
  EXPECT_FALSE(linfo.parallel);
  ASSERT_NE(linfo.fallback_reason, nullptr);
  EXPECT_STREQ(linfo.fallback_reason, "paradigm is not ips");
}

// ------------------------------------------- steal-affinity determinism ---
//
// Work stealing in the simulator is an event-time decision (no wall-clock,
// no extra RNG draws), so a steal-affinity run — steals, batches, Flow
// Director pin migrations and all — must be a pure function of the seed,
// whatever the sweep worker count. This is the guard that keeps the new
// scheduling layer inside the repo's bit-exactness discipline.

SimConfig stealAffinityConfig(std::uint64_t seed) {
  SimConfig c = defaultSimConfig();
  c.policy.locking = LockingPolicy::kStealAffinity;
  c.dispatch = net::NicDispatchMode::kFlowDirector;  // pins migrate on steals
  c.seed = seed;
  c.warmup_us = 10'000.0;
  c.measure_us = 120'000.0;
  return c;
}

void expectSameRun(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.mean_delay_us, b.mean_delay_us);
  EXPECT_EQ(a.p99_delay_us, b.p99_delay_us);
  EXPECT_EQ(a.throughput_per_us, b.throughput_per_us);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.backlog_end, b.backlog_end);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.stolen_jobs, b.stolen_jobs);
  EXPECT_EQ(a.flow_migrations, b.flow_migrations);
  EXPECT_EQ(a.tfn_feedback, b.tfn_feedback);
  EXPECT_EQ(a.tfn_deferred, b.tfn_deferred);
  EXPECT_EQ(a.tfn_applied, b.tfn_applied);
  EXPECT_EQ(a.tfn_stale, b.tfn_stale);
}

TEST(StealDeterminism, RepeatedSeedsAreBitIdentical) {
  for (std::uint64_t seed : {1ULL, 42ULL, 20260806ULL}) {
    const RunMetrics a =
        runOnce(stealAffinityConfig(seed), ExecTimeModel::standard(),
                makeBatchStreams(16, 0.03, 8.0));
    const RunMetrics b =
        runOnce(stealAffinityConfig(seed), ExecTimeModel::standard(),
                makeBatchStreams(16, 0.03, 8.0));
    expectSameRun(a, b);
    // Bursty traffic at this load must actually engage the steal path —
    // otherwise this guard pins nothing.
    EXPECT_GT(a.steals, 0u);
    EXPECT_GT(a.flow_migrations, 0u);
  }
}

TEST(StealDeterminism, TransportFriendlyRepeatedSeedsAreBitIdentical) {
  // Same discipline for the transport-friendly dispatcher: its feedback,
  // deferral, apply and staleness decisions are all event-time functions of
  // the seed, so the whole deferred-repin ledger must reproduce exactly.
  for (std::uint64_t seed : {1ULL, 42ULL, 20260806ULL}) {
    SimConfig c = stealAffinityConfig(seed);
    c.dispatch = net::NicDispatchMode::kTransportFriendly;
    const RunMetrics a =
        runOnce(c, ExecTimeModel::standard(), makeBatchStreams(16, 0.03, 8.0));
    const RunMetrics b =
        runOnce(c, ExecTimeModel::standard(), makeBatchStreams(16, 0.03, 8.0));
    expectSameRun(a, b);
    EXPECT_GT(a.steals, 0u);
    EXPECT_GT(a.tfn_feedback, 0u) << "completions must reach the dispatcher";
  }
}

TEST(StealDeterminism, SweepResultsIndependentOfJobCount) {
  const auto runPoint = [](std::size_t i) {
    return runOnce(stealAffinityConfig(derivePointSeed(7, i)), ExecTimeModel::standard(),
                   makeBatchStreams(16, 0.02 + 0.004 * static_cast<double>(i), 8.0));
  };
  const SweepRunner serial(1);
  const SweepRunner parallel(4);
  const std::vector<RunMetrics> a = serial.map(6, runPoint);
  const std::vector<RunMetrics> b = parallel.map(6, runPoint);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expectSameRun(a[i], b[i]);
  }
}

// ----------------------------------------------------- chaos determinism ---
//
// The fault injector runs on the submit thread with its own seeded Rng, so
// the multiset of frames each engine processes — and therefore every
// parse-layer drop counter — is a pure function of the seed, independent of
// worker count, scheduling, and even injected worker kills (recovery moves
// frames between stacks but never invents or loses them). kSessionFull is
// the one timing-free exception to compare carefully: it depends on how
// valid frames distribute over per-worker session queues, so it is excluded
// when worker counts differ (see docs/ROBUSTNESS.md).

ChaosConfig chaosGuardConfig(unsigned workers) {
  ChaosConfig cfg;
  cfg.seed = 20260806;
  cfg.frames = 15'000;
  cfg.workers = workers;
  cfg.streams = 12;
  cfg.faults = {.drop = 0.02, .bitflip = 0.04, .truncate = 0.04,
                .duplicate = 0.02, .reorder = 0.02};
  cfg.kill_at = 5'000;
  cfg.kill_worker = 1;
  cfg.engine.stall_timeout = std::chrono::milliseconds(5000);  // kills only
  return cfg;
}

void expectSameParseDrops(const EngineStats& a, const EngineStats& b,
                          bool include_session_full) {
  for (std::size_t i = 1; i < a.dropped_by_reason.size(); ++i) {
    if (!include_session_full && static_cast<DropReason>(i) == DropReason::kSessionFull)
      continue;
    EXPECT_EQ(a.dropped_by_reason[i], b.dropped_by_reason[i])
        << dropReasonName(static_cast<DropReason>(i));
  }
}

TEST(ChaosDeterminism, FixedSeedGivesIdenticalDropCountsAcrossRuns) {
  for (EngineKind kind : {EngineKind::kLocking, EngineKind::kIps}) {
    const ChaosReport a = runChaos(kind, chaosGuardConfig(3));
    const ChaosReport b = runChaos(kind, chaosGuardConfig(3));
    ASSERT_TRUE(a.conserved) << a.describe();
    ASSERT_TRUE(b.conserved) << b.describe();
    EXPECT_EQ(a.faults.dropped, b.faults.dropped);
    EXPECT_EQ(a.faults.bitflips, b.faults.bitflips);
    EXPECT_EQ(a.faults.truncations, b.faults.truncations);
    EXPECT_EQ(a.faults.duplicates, b.faults.duplicates);
    EXPECT_EQ(a.faults.emitted, b.faults.emitted);
    EXPECT_EQ(a.stats.submitted, b.stats.submitted);
    // Locking runs one shared stack, so even kSessionFull is exact.
    expectSameParseDrops(a.stats, b.stats, kind == EngineKind::kLocking);
  }
}

TEST(ChaosDeterminism, ParseDropCountsIndependentOfWorkerCount) {
  // No kill in the 1-worker run (killing the only worker of a kBlock engine
  // would wedge submit by design); the 4-worker run keeps its kill, which
  // deliberately makes the comparison stronger: recovery must not perturb
  // the parse-layer counts either.
  ChaosConfig solo = chaosGuardConfig(1);
  solo.kill_at = 0;
  const ChaosReport w1 = runChaos(EngineKind::kIps, solo);
  const ChaosReport w4 = runChaos(EngineKind::kIps, chaosGuardConfig(4));
  ASSERT_TRUE(w1.conserved) << w1.describe();
  ASSERT_TRUE(w4.conserved) << w4.describe();
  EXPECT_EQ(w1.stats.submitted, w4.stats.submitted);
  // Parse-layer causes depend only on frame bytes, not on which stack (or
  // how many stacks) processed them.
  expectSameParseDrops(w1.stats, w4.stats, /*include_session_full=*/false);
}

// Observability must be pure observation: running the same golden triples
// with the metrics registry, the live time-weighted instruments, and the
// virtual-time tracer all enabled must reproduce the exact same bits as the
// bare runs above. Instrumentation that draws randomness, schedules events,
// or perturbs event ordering in any way fails here.
TEST(GoldenSeed, MetricsAndTracingDoNotPerturbResults) {
  obs::MetricsRegistry registry;
  obs::TraceSession trace(1 << 10);

  SimConfig c = defaultSimConfig();  // same triple as LockingMruPoisson
  c.seed = 12345;
  c.warmup_us = 20'000.0;
  c.measure_us = 150'000.0;
  c.metrics = &registry;
  c.metrics_exclusive = true;
  c.trace = &trace;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), makePoissonStreams(16, 0.02));
  expectExactly(m, Golden{215.42210779173973, 211.68374390497655, 250.79400633851003,
                          274.20517683433837, 2.7714679014081289, 212.10216182978752,
                          0.56981715208325845, 0.019786666666666668, 0.52593677314464249,
                          0.054415882051270695, 3349, 2968, 4, false, 0});
  EXPECT_GT(registry.size(), 0u);
  EXPECT_GT(trace.recordedCount(), 0u);

  SimConfig ic = defaultSimConfig();  // same triple as IpsWiredPoisson
  ic.policy.paradigm = Paradigm::kIps;
  ic.policy.ips = IpsPolicy::kWired;
  ic.seed = 999;
  ic.warmup_us = 20'000.0;
  ic.measure_us = 150'000.0;
  ic.metrics = &registry;
  ic.trace = &trace;
  const RunMetrics im = runOnce(ic, ExecTimeModel::standard(), makePoissonStreams(16, 0.03));
  expectExactly(im, Golden{228.30822699308376, 177.94182389224551, 440.86403679977246,
                           601.90817884310445, 8.5590940190164808, 146.24273045090067, 0.0,
                           0.03032, 0.55425707780654576, 2.4887902646508961, 5153, 4548, 5,
                           false, 0});
}

TEST(GoldenSeed, AdaptiveHybridBatch) {
  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kHybrid;
  c.adaptive_hybrid = true;
  c.seed = 777;
  c.warmup_us = 20'000.0;
  c.measure_us = 150'000.0;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), makeBatchStreams(12, 0.025, 4.0));
  expectExactly(m, Golden{385.20016779657527, 272.96783521363142, 969.83474881773043,
                          1876.4578480882471, 158.32910156935648, 193.05205824749635,
                          5.1181081746209207, 0.025413333333333333, 0.62939502049219198,
                          19.176113585542243, 4344, 3812, 22, false, 12});
}

}  // namespace
}  // namespace affinity
