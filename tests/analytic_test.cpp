// Tests for src/analytic: closed-form queueing identities and the policy
// predictor's agreement with the discrete-event simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/predictor.hpp"
#include "analytic/queueing.hpp"
#include "core/experiment.hpp"

namespace affinity {
namespace {

// ---------------------------------------------------------------- queueing --

TEST(ErlangC, SingleServerEqualsRho) {
  // For c=1, P(wait) = rho.
  for (double rho : {0.1, 0.5, 0.9}) EXPECT_NEAR(erlangC(1, rho), rho, 1e-12);
}

TEST(ErlangC, BoundsAndMonotonicity) {
  double prev = 0.0;
  for (double a = 0.5; a < 8.0; a += 0.5) {
    const double pw = erlangC(8, a);
    EXPECT_GE(pw, prev - 1e-12);
    EXPECT_GE(pw, 0.0);
    EXPECT_LE(pw, 1.0);
    prev = pw;
  }
  EXPECT_DOUBLE_EQ(erlangC(4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlangC(4, 5.0), 1.0);  // at/above saturation
}

TEST(ErlangC, KnownValue) {
  // Classic: c=2, a=1 (rho=0.5): C = 1/3.
  EXPECT_NEAR(erlangC(2, 1.0), 1.0 / 3.0, 1e-9);
}

TEST(Mmc, SingleServerMatchesMm1) {
  // M/M/1: Wq = rho/(mu - lambda) = rho * s / (1 - rho).
  const double s = 100.0, lambda = 0.006;
  const double rho = lambda * s;
  EXPECT_NEAR(mmcMeanWait(1, lambda, s), rho * s / (1 - rho), 1e-9);
}

TEST(Mmc, InfiniteAtSaturation) {
  EXPECT_TRUE(std::isinf(mmcMeanWait(4, 0.05, 100.0)));
}

TEST(Mmc, PoolingBeatsPartitioning) {
  // One fast pooled queue waits less than parallel slow ones at equal load.
  const double s = 100.0;
  EXPECT_LT(mmcMeanWait(8, 0.06, s), mmcMeanWait(1, 0.06 / 8, s));
}

TEST(Md1, HalfOfMm1Wait) {
  const double s = 100.0, lambda = 0.005;
  EXPECT_NEAR(md1MeanWait(lambda, s), 0.5 * mmcMeanWait(1, lambda, s), 1e-9);
}

TEST(AllenCunneen, ReducesToKnownCases) {
  const double s = 120.0, lambda = 0.03;
  // Cs2=1 (exponential) => M/M/c.
  EXPECT_NEAR(allenCunneenMeanWait(8, lambda, s, 1.0, 1.0), mmcMeanWait(8, lambda, s), 1e-9);
  // Cs2=0, c=1 => M/D/1.
  EXPECT_NEAR(allenCunneenMeanWait(1, lambda / 8, s, 1.0, 0.0),
              md1MeanWait(lambda / 8, s), 1e-9);
}

// --------------------------------------------------------------- predictor --

class PredictorVsSim : public ::testing::TestWithParam<double> {};

TEST_P(PredictorVsSim, LockingMruDelayWithinTolerance) {
  const double rate = GetParam();
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = rate;
  const Prediction pred = predictLocking(model, LockingPolicy::kMru, in);

  SimConfig c = defaultSimConfig();
  c.policy.locking = LockingPolicy::kMru;
  setAutoWindow(c, rate, 60'000);
  const RunMetrics sim = runOnce(c, model, makePoissonStreams(16, rate));

  ASSERT_TRUE(pred.stable);
  ASSERT_FALSE(sim.saturated);
  EXPECT_NEAR(pred.service_us, sim.mean_service_us + sim.mean_lock_wait_us,
              0.15 * sim.mean_service_us)
      << "rate=" << rate;
  EXPECT_NEAR(pred.delay_us, sim.mean_delay_us, 0.25 * sim.mean_delay_us) << "rate=" << rate;
}

TEST_P(PredictorVsSim, IpsWiredDelayWithinTolerance) {
  const double rate = GetParam();
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = rate;
  const Prediction pred = predictIps(model, IpsPolicy::kWired, in);

  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = IpsPolicy::kWired;
  setAutoWindow(c, rate, 60'000);
  const RunMetrics sim = runOnce(c, model, makePoissonStreams(16, rate));

  ASSERT_TRUE(pred.stable);
  ASSERT_FALSE(sim.saturated);
  EXPECT_NEAR(pred.service_us, sim.mean_service_us, 0.15 * sim.mean_service_us)
      << "rate=" << rate;
  EXPECT_NEAR(pred.delay_us, sim.mean_delay_us, 0.30 * sim.mean_delay_us) << "rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, PredictorVsSim, ::testing::Values(0.004, 0.012, 0.024));

class PredictorAllPolicies
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(PredictorAllPolicies, EveryLockingPolicyTracksTheSimulator) {
  const auto [rate, policy_index] = GetParam();
  const auto policy = static_cast<LockingPolicy>(policy_index);
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = rate;
  const Prediction pred = predictLocking(model, policy, in);

  SimConfig c = defaultSimConfig();
  c.policy.locking = policy;
  setAutoWindow(c, rate, 50'000);
  const RunMetrics sim = runOnce(c, model, makePoissonStreams(16, rate));
  if (sim.saturated || !pred.stable) return;  // knee region: nothing to compare
  EXPECT_NEAR(pred.delay_us, sim.mean_delay_us, 0.35 * sim.mean_delay_us)
      << lockingPolicyName(policy) << " rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PredictorAllPolicies,
    ::testing::Combine(::testing::Values(0.005, 0.015, 0.025),
                       ::testing::Values(0, 1, 2, 3)));  // FCFS..WiredStreams

class PredictorIpsPolicies : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(PredictorIpsPolicies, EveryIpsPolicyTracksTheSimulator) {
  const auto [rate, policy_index] = GetParam();
  const auto policy = static_cast<IpsPolicy>(policy_index);
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = rate;
  const Prediction pred = predictIps(model, policy, in);

  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = policy;
  setAutoWindow(c, rate, 50'000);
  const RunMetrics sim = runOnce(c, model, makePoissonStreams(16, rate));
  if (sim.saturated || !pred.stable) return;
  EXPECT_NEAR(pred.delay_us, sim.mean_delay_us, 0.35 * sim.mean_delay_us)
      << ipsPolicyName(policy) << " rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Grid, PredictorIpsPolicies,
                         ::testing::Combine(::testing::Values(0.005, 0.015, 0.025),
                                            ::testing::Values(0, 1, 2)));

TEST(Predictor, ReproducesPolicyOrderingAtModerateLoad) {
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = 0.015;
  const double fcfs = predictLocking(model, LockingPolicy::kFcfs, in).delay_us;
  const double mru = predictLocking(model, LockingPolicy::kMru, in).delay_us;
  const double ips = predictIps(model, IpsPolicy::kWired, in).delay_us;
  EXPECT_LT(mru, fcfs);
  EXPECT_LT(ips, mru);
}

TEST(Predictor, CapacityOrdering) {
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = 0.01;
  const auto fcfs = predictLocking(model, LockingPolicy::kFcfs, in);
  const auto wired = predictLocking(model, LockingPolicy::kWiredStreams, in);
  const auto ips = predictIps(model, IpsPolicy::kWired, in);
  // Stream wiring warms services at saturation => more capacity than FCFS;
  // IPS (no locks) tops both.
  EXPECT_GT(wired.capacity_per_us, fcfs.capacity_per_us);
  EXPECT_GT(ips.capacity_per_us, fcfs.capacity_per_us);
}

TEST(Predictor, VShiftsDelayByV) {
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = 0.004;  // light load: delay ~ service
  const double base = predictLocking(model, LockingPolicy::kMru, in).delay_us;
  in.fixed_overhead_us = 139.0;
  const double with_v = predictLocking(model, LockingPolicy::kMru, in).delay_us;
  EXPECT_NEAR(with_v - base, 139.0, 15.0);
}

TEST(Predictor, InstabilityDetected) {
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = 0.08;  // far beyond 8-processor capacity
  const auto p = predictLocking(model, LockingPolicy::kMru, in);
  EXPECT_FALSE(p.stable);
  EXPECT_TRUE(std::isinf(p.delay_us));
}

TEST(Predictor, IpsMruBeatsWiredAtVeryLowRate) {
  const auto model = ExecTimeModel::standard();
  PredictorInput in;
  in.rate_per_us = 0.0002;
  const double mru = predictIps(model, IpsPolicy::kMru, in).delay_us;
  const double wired = predictIps(model, IpsPolicy::kWired, in).delay_us;
  EXPECT_LT(mru, wired);
}

}  // namespace
}  // namespace affinity
