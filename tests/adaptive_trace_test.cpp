// Tests for the adaptive hybrid controller, phase-switching arrivals, and
// arrival-trace record/replay.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "workload/trace_io.hpp"

namespace affinity {
namespace {

// ---------------------------------------------------------- phase switch ---

TEST(PhaseSwitch, SwitchesProcessAtConfiguredTime) {
  PhaseSwitchArrivals p(std::make_unique<PoissonArrivals>(0.001),
                        std::make_unique<BatchPoissonArrivals>(0.02, 8.0, false),
                        /*switch_time_us=*/100'000.0);
  Rng rng(1);
  double t = 0.0;
  bool saw_batch_before = false, saw_batch_after = false;
  for (int i = 0; i < 20000 && t < 400'000.0; ++i) {
    const auto a = p.next(rng);
    if (t < 100'000.0 && a.batch > 1) saw_batch_before = true;
    if (t >= 110'000.0 && a.batch > 1) saw_batch_after = true;
    t += a.gap_us;
  }
  EXPECT_FALSE(saw_batch_before);
  EXPECT_TRUE(saw_batch_after);
}

TEST(PhaseSwitch, CloneKeepsPhasePosition) {
  PhaseSwitchArrivals p(std::make_unique<PoissonArrivals>(0.001),
                        std::make_unique<PoissonArrivals>(0.02), 1'000.0);
  Rng rng(2);
  while (true) {
    const auto a = p.next(rng);
    if (a.gap_us > 1'000.0) break;  // crossed the switch point for sure
  }
  auto copy = p.clone();
  EXPECT_NEAR(copy->meanRatePerUs(), 0.02, 1e-12);
}

// -------------------------------------------------------- adaptive hybrid --

class Recorder : public SimObserver {
 public:
  void onServiceStart(unsigned, std::uint32_t stream, std::uint32_t stack, double, double now,
                      double) override {
    if (stream == 0) {
      if (stack == AffinityState::kNoStack)
        last_locking_time_ = now;
      else
        last_ips_time_ = now;
    }
  }
  void onServiceEnd(unsigned, std::uint32_t, std::uint32_t, double) override {}

  double last_locking_time_ = -1.0;
  double last_ips_time_ = -1.0;
};

TEST(AdaptiveHybrid, ReclassifiesAStreamThatTurnsHot) {
  // Stream 0 is quiet then turns hot+bursty at t = 150 ms; the controller
  // must move it from IPS to Locking.
  StreamSet set;
  set.streams.push_back(std::make_unique<PhaseSwitchArrivals>(
      std::make_unique<PoissonArrivals>(0.0005),
      std::make_unique<BatchPoissonArrivals>(0.008, 8.0, false), 150'000.0));
  for (int i = 0; i < 7; ++i) set.streams.push_back(std::make_unique<PoissonArrivals>(0.001));

  Recorder rec;
  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kHybrid;
  c.adaptive_hybrid = true;
  c.adapt_interval_us = 25'000.0;
  c.observer = &rec;
  c.warmup_us = 0.0;
  c.measure_us = 500'000.0;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), set);

  EXPECT_GE(m.reclassifications, 1u);
  EXPECT_GT(rec.last_ips_time_, 0.0) << "stream 0 must start on the IPS path";
  EXPECT_GT(rec.last_locking_time_, 150'000.0) << "stream 0 must move to Locking when hot";
  EXPECT_LT(rec.last_ips_time_, 250'000.0)
      << "stream 0 must not return to IPS once hot (it stays hot)";
}

TEST(AdaptiveHybrid, QuietStreamsStayOnIps) {
  StreamSet set = makePoissonStreams(8, 0.004);  // all far below the threshold
  Recorder rec;
  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kHybrid;
  c.adaptive_hybrid = true;
  c.observer = &rec;
  c.warmup_us = 0.0;
  c.measure_us = 400'000.0;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), set);
  EXPECT_EQ(m.reclassifications, 0u);
  EXPECT_LT(rec.last_locking_time_, 0.0) << "no packet of stream 0 should use Locking";
}

TEST(AdaptiveHybrid, RequiresHybridParadigm) {
  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kLocking;
  c.adaptive_hybrid = true;
  ProtocolSim sim(c, ExecTimeModel::standard(), makePoissonStreams(4, 0.004));
  EXPECT_DEATH(sim.run(), "CHECK failed");
}

TEST(AdaptiveHybrid, ConservationHolds) {
  StreamSet set;
  for (int i = 0; i < 6; ++i)
    set.streams.push_back(std::make_unique<PhaseSwitchArrivals>(
        std::make_unique<PoissonArrivals>(0.001),
        std::make_unique<BatchPoissonArrivals>(0.003, 6.0, false), 50'000.0 + 20'000.0 * i));
  SimConfig c = defaultSimConfig();
  c.policy.paradigm = Paradigm::kHybrid;
  c.adaptive_hybrid = true;
  c.warmup_us = 0.0;
  c.measure_us = 400'000.0;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), set);
  EXPECT_EQ(m.arrived, m.completed + m.backlog_end);
}

// ----------------------------------------------------------- trace replay --

TEST(TraceIo, RecordMatchesProcessRate) {
  const StreamSet set = makePoissonStreams(4, 0.01);
  const auto records = recordArrivals(set, 1'000'000.0, 7);
  EXPECT_NEAR(static_cast<double>(records.size()), 10'000.0, 500.0);
  // Sorted by time.
  for (std::size_t i = 1; i < records.size(); ++i)
    ASSERT_GE(records[i].time_us, records[i - 1].time_us);
}

TEST(TraceIo, FileRoundTrip) {
  const StreamSet set = makeBatchStreams(3, 0.005, 4.0);
  const auto records = recordArrivals(set, 200'000.0, 11);
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.txt";
  ASSERT_TRUE(writeArrivalTrace(path, records));
  std::string error;
  const auto back = readArrivalTrace(path, &error);
  ASSERT_EQ(back.size(), records.size()) << error;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_NEAR(back[i].time_us, records[i].time_us, 1e-5);
    EXPECT_EQ(back[i].stream, records[i].stream);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ReadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/trace_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "12.5 0\n9.0 1\n");  // time goes backwards
  std::fclose(f);
  std::string error;
  EXPECT_TRUE(readArrivalTrace(path, &error).empty());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReportsError) {
  std::string error;
  EXPECT_TRUE(readArrivalTrace("/nonexistent/trace.txt", &error).empty());
  EXPECT_FALSE(error.empty());
}

TEST(TraceIo, ReplayPreservesBatchesAndRate) {
  const StreamSet original = makeBatchStreams(4, 0.008, 6.0);
  const double duration = 500'000.0;
  const auto records = recordArrivals(original, duration, 13);
  const StreamSet replay = makeTraceStreams(records, duration);
  ASSERT_EQ(replay.count(), 4u);
  EXPECT_NEAR(replay.totalRatePerUs(), 0.008, 0.0012);

  // Drawing out stream 0's replay reproduces its records exactly.
  Rng rng(0);
  double t = 0.0;
  std::vector<ArrivalRecord> regenerated;
  for (;;) {
    const auto a = replay.streams[0]->next(rng);
    if (!std::isfinite(a.gap_us)) break;
    t += a.gap_us;
    for (std::uint32_t k = 0; k < a.batch; ++k) regenerated.push_back({t, 0});
  }
  std::vector<ArrivalRecord> expected;
  for (const auto& r : records)
    if (r.stream == 0) expected.push_back(r);
  ASSERT_EQ(regenerated.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(regenerated[i].time_us, expected[i].time_us, 1e-6);
}

TEST(TraceIo, SimulationRunsFromReplayedTrace) {
  // End-to-end: record a workload, replay it through the simulator, and
  // check completions match the record count (no packets invented or lost).
  const StreamSet original = makePoissonStreams(6, 0.012);
  const double duration = 400'000.0;
  const auto records = recordArrivals(original, duration, 17);
  const StreamSet replay = makeTraceStreams(records, duration);

  SimConfig c = defaultSimConfig();
  c.warmup_us = 0.0;
  c.measure_us = duration + 100'000.0;  // room to drain
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), replay);
  EXPECT_EQ(m.arrived, records.size());
  EXPECT_EQ(m.arrived, m.completed + m.backlog_end);
  EXPECT_EQ(m.backlog_end, 0u) << "all trace packets must drain";
}

}  // namespace
}  // namespace affinity
