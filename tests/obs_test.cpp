// obs_test — the observability layer: instrument semantics, registry
// find-or-create, JSON export validity, Chrome-trace structural guarantees
// (sorted timestamps, matched B/E pairs — what Perfetto requires), the
// process-global session guard, the perf ledger, and a ProtocolSim run
// exporting both metrics and a virtual-time trace.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace affinity::obs {
namespace {

namespace fs = std::filesystem;

std::string tempPath(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- a minimal JSON validity checker -------------------------------------
// Enough JSON to verify our exporters emit well-formed documents: objects,
// arrays, strings with escapes, numbers, true/false/null. Returns false on
// the first syntax error.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0)
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string_view sv(lit);
    if (s_.compare(pos_, sv.size(), sv) != 0) return false;
    pos_ += sv.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- instruments ----------------------------------------------------------

TEST(Metrics, CounterAndGauge) {
  Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Metrics, MeanStatTracksMinMeanMax) {
  MeanStat m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  for (double x : {4.0, 2.0, 6.0}) m.add(x);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 6.0);
}

TEST(Metrics, MeanStatConcurrentAdds) {
  MeanStat m;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&m] {
      for (int i = 1; i <= kPerThread; ++i) m.add(static_cast<double>(i));
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(m.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(m.mean(), (kPerThread + 1) / 2.0);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), kPerThread);
}

TEST(Metrics, TimeWeightedAverage) {
  TimeWeightedStat tw;
  tw.set(0.0, 0.0);
  tw.set(10.0, 4.0);  // level 0 for [0,10)
  tw.set(30.0, 1.0);  // level 4 for [10,30)
  tw.finalize(40.0);  // level 1 for [30,40)
  // (0*10 + 4*20 + 1*10) / 40 = 2.25
  EXPECT_DOUBLE_EQ(tw.average(), 2.25);
  EXPECT_DOUBLE_EQ(tw.maxLevel(), 4.0);
  EXPECT_DOUBLE_EQ(tw.level(), 1.0);
}

TEST(Metrics, TimeWeightedIgnoresBackwardsTime) {
  TimeWeightedStat tw;
  tw.set(0.0, 2.0);
  tw.set(10.0, 4.0);
  tw.set(5.0, 8.0);  // time regression: level updates, no negative area
  tw.finalize(20.0);
  // area = 2*10 + 8*10 = 100 over [0,20]
  EXPECT_DOUBLE_EQ(tw.average(), 5.0);
}

TEST(Metrics, LatencyHistoQuantiles) {
  LatencyHisto h(0.05, 9, 32);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.overflow, 0u);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  // Bucketed quantiles land within one log-bucket (~7.5 %) of the truth.
  EXPECT_NEAR(s.p50, 50.0, 50.0 * 0.08);
  EXPECT_NEAR(s.p95, 95.0, 95.0 * 0.08);
  EXPECT_NEAR(s.p99, 99.0, 99.0 * 0.08);
}

TEST(Metrics, LatencyHistoOverflowAndUnderflow) {
  LatencyHisto h(1.0, 2, 8);  // covers [1, 100)
  h.add(0.5);     // underflow
  h.add(1e9);     // overflow
  h.add(10.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.overflow, 1u);
}

// ---- registry -------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsStableInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  a.inc(5);
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryDeathTest, KindMismatchAborts) {
  MetricsRegistry reg;
  reg.counter("x.conflicted");
  EXPECT_DEATH(reg.gauge("x.conflicted"), "CHECK failed");
}

TEST(Registry, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.counter("z.last").inc();
  reg.gauge("a.first").set(1.0);
  reg.meanStat("m.middle").add(3.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "m.middle");
  EXPECT_EQ(snap[2].name, "z.last");
  EXPECT_EQ(snap[1].count, 1u);
  EXPECT_DOUBLE_EQ(snap[1].value, 3.0);
}

TEST(Registry, WriteJsonIsValidJson) {
  MetricsRegistry reg;
  reg.counter("sim.packets.arrived").inc(7);
  reg.gauge("engine.locking.delivered").set(123.0);
  reg.meanStat("sim.run.mean_delay_us").add(251.5);
  reg.timeWeighted("sim.queue.global_depth").set(0.0, 1.0);
  reg.timeWeighted("sim.queue.global_depth").finalize(10.0);
  reg.histogram("sim.delay_us").add(100.0);
  // A name that needs escaping must not break the document.
  reg.counter("weird\"name\\with\tescapes").inc();

  const std::string path = tempPath("obs_test_metrics.json");
  ASSERT_TRUE(reg.writeJson(path));
  const std::string text = readFile(path);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("sim.packets.arrived"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
  fs::remove(path);
}

TEST(Registry, JsonEscape) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

// ---- trace sessions -------------------------------------------------------

// Parses the "traceEvents" array of our own exporter output well enough to
// check the structural guarantees: we rely on the exporter's one-event-per-
// line layout rather than a full JSON parser.
struct ParsedEvent {
  char phase = '?';
  double ts = 0.0;
  int tid = -1;
};

std::vector<ParsedEvent> parseEvents(const std::string& text) {
  std::vector<ParsedEvent> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto ph = line.find("\"ph\": \"");
    if (ph == std::string::npos) continue;
    ParsedEvent e;
    e.phase = line[ph + 7];
    if (const auto ts = line.find("\"ts\": "); ts != std::string::npos)
      e.ts = std::stod(line.substr(ts + 6));
    if (const auto tid = line.find("\"tid\": "); tid != std::string::npos)
      e.tid = std::stoi(line.substr(tid + 7));
    out.push_back(e);
  }
  return out;
}

void expectStructurallyValidTrace(const std::string& text) {
  ASSERT_TRUE(JsonChecker(text).valid()) << "trace is not valid JSON";
  const auto events = parseEvents(text);
  ASSERT_FALSE(events.empty());

  // Non-metadata events must be globally sorted by timestamp.
  double last_ts = -1.0;
  std::map<int, int> depth;  // tid -> open span depth
  for (const auto& e : events) {
    if (e.phase == 'M') continue;
    EXPECT_GE(e.ts, last_ts) << "timestamps must be nondecreasing";
    last_ts = e.ts;
    if (e.phase == 'B') ++depth[e.tid];
    if (e.phase == 'E') {
      --depth[e.tid];
      EXPECT_GE(depth[e.tid], 0) << "E without matching B on tid " << e.tid;
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
}

TEST(Trace, SpansAndInstantsExportStructurallyValid) {
  TraceSession session(64);
  const std::uint32_t t0 = session.track("worker 0");
  const std::uint32_t t1 = session.track("worker 1");
  session.span(t0, "frame", 10.0, 15.0, 7, 0);
  session.instant(t1, "fault", 12.0, 3);
  session.span(t1, "frame", 12.5, 14.0, 8, 1);
  session.span(t0, "frame", 16.0, 16.0, 9, 0);  // zero-length span is legal
  EXPECT_EQ(session.trackCount(), 2u);
  EXPECT_EQ(session.recordedCount(), 4u);
  EXPECT_EQ(session.droppedCount(), 0u);

  const std::string path = tempPath("obs_test_trace.json");
  ASSERT_TRUE(session.writeChromeTrace(path));
  const std::string text = readFile(path);
  expectStructurallyValidTrace(text);
  EXPECT_NE(text.find("\"worker 1\""), std::string::npos) << "track names exported as metadata";
  EXPECT_NE(text.find("displayTimeUnit"), std::string::npos);
  fs::remove(path);
}

TEST(Trace, RingOverflowKeepsPairsMatched) {
  TraceSession session(8);  // tiny ring: most spans get overwritten
  const std::uint32_t t = session.track("hot worker");
  for (int i = 0; i < 100; ++i) {
    const double b = 10.0 * i;
    session.span(t, "frame", b, b + 5.0, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(session.recordedCount(), 100u);
  EXPECT_EQ(session.droppedCount(), 92u);

  const std::string path = tempPath("obs_test_trace_wrap.json");
  ASSERT_TRUE(session.writeChromeTrace(path));
  const std::string text = readFile(path);
  expectStructurallyValidTrace(text);
  // Exactly the 8 newest spans survive: 8 B + 8 E + metadata.
  const auto events = parseEvents(text);
  int begins = 0;
  for (const auto& e : events) begins += e.phase == 'B' ? 1 : 0;
  EXPECT_EQ(begins, 8);
  fs::remove(path);
}

TEST(Trace, ActiveGuardLifecycle) {
  EXPECT_EQ(TraceSession::active(), nullptr) << "tracing must be off by default";
  {
    TraceSession session;
    EXPECT_EQ(TraceSession::active(), nullptr) << "constructing must not activate";
    session.activate();
    EXPECT_EQ(TraceSession::active(), &session);
  }
  // Destruction of the active session must clear the global slot.
  EXPECT_EQ(TraceSession::active(), nullptr);

  TraceSession a;
  a.activate();
  TraceSession::deactivate();
  EXPECT_EQ(TraceSession::active(), nullptr);
}

TEST(Trace, SteadyNowIsMonotonic) {
  TraceSession session;
  const double t0 = session.steadyNowUs();
  const double t1 = session.steadyNowUs();
  EXPECT_GE(t0, 0.0);
  EXPECT_GE(t1, t0);
}

// ---- the simulator's own trace + metrics ----------------------------------

TEST(Trace, ProtocolSimExportsValidTraceAndMetrics) {
  SimConfig c = defaultSimConfig();
  c.num_procs = 4;
  c.seed = 7;
  c.warmup_us = 10'000.0;
  c.measure_us = 100'000.0;
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = LockingPolicy::kMru;

  MetricsRegistry reg;
  TraceSession trace;
  c.metrics = &reg;
  c.metrics_exclusive = true;
  c.trace = &trace;

  const auto model = ExecTimeModel::standard();
  const auto streams = makePoissonStreams(8, 0.02);
  const RunMetrics m = runOnce(c, model, streams);
  EXPECT_GT(m.completed, 0u);

  // Metrics: the headline instruments exist and agree with RunMetrics.
  const auto snap = reg.snapshot();
  EXPECT_GT(snap.size(), 10u);
  bool found_delay = false;
  for (const auto& s : snap) {
    if (s.name == "sim.run.mean_delay_us") {
      found_delay = true;
      EXPECT_NEAR(s.value, m.mean_delay_us, 1e-9);
    }
  }
  EXPECT_TRUE(found_delay);
  EXPECT_EQ(reg.counter("sim.packets.completed").value(), m.completed);

  // Trace: per-processor virtual-time spans, structurally valid.
  EXPECT_GE(trace.trackCount(), 4u);
  EXPECT_GT(trace.recordedCount(), 0u);
  const std::string path = tempPath("obs_test_sim_trace.json");
  ASSERT_TRUE(trace.writeChromeTrace(path));
  const std::string text = readFile(path);
  expectStructurallyValidTrace(text);
  EXPECT_NE(text.find("service"), std::string::npos) << "sim spans must be named";
  fs::remove(path);
}

// ---- perf ledger ----------------------------------------------------------

TEST(Ledger, AppendCreatesAndGrowsValidJsonArray) {
  const std::string path = tempPath("obs_test_ledger.json");
  fs::remove(path);
  EXPECT_EQ(ledgerRowCount(path), 0u);

  ASSERT_TRUE(appendLedgerRow(path, R"({"date": "2026-08-06", "eps": 1000})"));
  EXPECT_EQ(ledgerRowCount(path), 1u);
  ASSERT_TRUE(appendLedgerRow(path, R"({"date": "2026-08-07", "eps": 1100})"));
  EXPECT_EQ(ledgerRowCount(path), 2u);

  const std::string text = readFile(path);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_LT(text.find("2026-08-06"), text.find("2026-08-07")) << "rows append in order";
  fs::remove(path);
}

TEST(Ledger, CorruptFilePreservedAndRestarted) {
  const std::string path = tempPath("obs_test_ledger_corrupt.json");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not json";
  }
  ASSERT_TRUE(appendLedgerRow(path, R"({"fresh": 1})"));
  EXPECT_EQ(ledgerRowCount(path), 1u);
  EXPECT_TRUE(JsonChecker(readFile(path)).valid());
  EXPECT_EQ(readFile(path + ".corrupt"), "this is not json");
  fs::remove(path);
  fs::remove(path + ".corrupt");
}

}  // namespace
}  // namespace affinity::obs
