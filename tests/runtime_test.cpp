// Tests for src/runtime: queues under concurrency, worker pools, and the
// Locking / IPS real-thread engines processing real frames end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "proto/stack.hpp"
#include "runtime/dispatch_engine.hpp"
#include "runtime/engine.hpp"
#include "runtime/queues.hpp"
#include "runtime/worker_pool.hpp"

namespace affinity {
namespace {

std::vector<std::uint8_t> frameFor(std::uint32_t stream, std::uint16_t port = 7000) {
  FrameSpec spec;
  spec.dst_port = port;
  spec.src_port = static_cast<std::uint16_t>(1000 + stream);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return buildUdpFrame(spec, payload);
}

// ---------------------------------------------------------------- queues ---

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, TryPushRespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_FALSE(q.tryPush(3));
}

TEST(MpmcQueue, CloseDrainsThenEnds) {
  MpmcQueue<int> q(8);
  q.push(42);
  q.close();
  EXPECT_FALSE(q.push(43));
  EXPECT_EQ(q.pop().value(), 42);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  MpmcQueue<int> q(64);
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::jthread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q] {
        for (int i = 1; i <= kPerProducer; ++i) q.push(i);
      });
    }
  }  // join producers
  q.close();
  threads.clear();  // join consumers
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  const long long expected = 3LL * (kPerProducer * (kPerProducer + 1LL)) / 2;
  EXPECT_EQ(sum.load(), expected);
}

TEST(SpscRing, FifoAndCapacity) {
  SpscRing<int> r(4);
  int v = 0;
  EXPECT_FALSE(r.tryPop(v));
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(r.tryPush(item));
  }
  // May hold >=4 (rounded up), but is finite.
  int extra = 100;
  int pushed = 0;
  while (pushed < 100) {
    int item = extra;
    if (!r.tryPush(item)) break;
    ++pushed;
  }
  EXPECT_LT(pushed, 100);
  EXPECT_TRUE(r.tryPop(v));
  EXPECT_EQ(v, 0);
}

TEST(SpscRing, FailedPushLeavesItemIntact) {
  SpscRing<std::vector<int>> r(1);
  std::vector<int> a{1, 2, 3};
  while (r.tryPush(a)) a = {1, 2, 3};
  std::vector<int> keep{7, 8, 9};
  EXPECT_FALSE(r.tryPush(keep));
  EXPECT_EQ(keep, (std::vector<int>{7, 8, 9}));  // not moved-from
}

TEST(SpscRing, SpscStress) {
  SpscRing<int> r(128);
  constexpr int kN = 100000;
  long long sum = 0;
  std::jthread consumer([&] {
    int got = 0, v = 0;
    while (got < kN) {
      if (r.tryPop(v)) {
        sum += v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 1; i <= kN; ++i) {
    int item = i;
    while (!r.tryPush(item)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN + 1) / 2);
}

// ----------------------------------------------------------- worker pool ---

TEST(WorkerPool, RunsBodiesAndStops) {
  WorkerPool pool;
  std::atomic<int> started{0};
  pool.start(3, [&](unsigned, std::stop_token st) {
    started.fetch_add(1);
    while (!st.stop_requested()) std::this_thread::yield();
  });
  while (started.load() < 3) std::this_thread::yield();
  pool.stopAndJoin();
  EXPECT_EQ(started.load(), 3);
}

TEST(WorkerPool, PinningReportsOutcome) {
  // On any Linux box pinning to CPU 0 should succeed.
  EXPECT_TRUE(pinThisThread(0));
  EXPECT_GE(availableCpus(), 1u);
}

// --------------------------------------------------------------- engines ---

TEST(LockingEngineTest, ProcessesAllSubmittedFrames) {
  LockingEngine eng(3, HostConfig{});
  eng.openPort(7000, /*session_queue=*/1 << 16);
  eng.start();
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(eng.submit({frameFor(i % 7), 0}));
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(std::accumulate(s.per_worker_processed.begin(), s.per_worker_processed.end(),
                            std::uint64_t{0}),
            static_cast<std::uint64_t>(kN));
}

TEST(LockingEngineTest, CountsDropsSeparately) {
  LockingEngine eng(2, HostConfig{});
  eng.openPort(7000);
  eng.start();
  eng.submit({frameFor(0, 7000), 0});
  eng.submit({frameFor(0, 9999), 0});  // no session -> processed, not delivered
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.processed, 2u);
  EXPECT_EQ(s.delivered, 1u);
}

TEST(LockingEngineTest, RejectsAfterStop) {
  LockingEngine eng(1, HostConfig{});
  eng.openPort(7000);
  eng.start();
  eng.stop();
  EXPECT_FALSE(eng.submit({frameFor(0), 0}));
  EXPECT_EQ(eng.stats().rejected, 1u);
}

TEST(IpsEngineTest, RoutesByStreamHash) {
  IpsEngine eng(4, HostConfig{});
  eng.openPort(7000, /*session_queue=*/1 << 16);
  eng.start();
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i)
    EXPECT_TRUE(eng.submit({frameFor(i % 16), static_cast<std::uint32_t>(i % 16)}));
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(kN));
  // 16 streams over 4 workers round-robin: perfectly balanced load.
  for (std::uint64_t w : s.per_worker_processed) EXPECT_EQ(w, static_cast<std::uint64_t>(kN / 4));
}

TEST(LockingEngineTest, ReportsLatencyPercentiles) {
  LockingEngine eng(2, HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  for (int i = 0; i < 500; ++i) eng.submit({frameFor(i % 4), 0, {}});
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_GT(s.latency_mean_us, 0.0);
  EXPECT_GT(s.latency_p50_us, 0.0);
  EXPECT_GE(s.latency_p99_us, s.latency_p50_us);
}

TEST(IpsEngineTest, ReportsLatencyPercentiles) {
  IpsEngine eng(2, HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  for (int i = 0; i < 500; ++i)
    eng.submit({frameFor(i % 4), static_cast<std::uint32_t>(i % 4), {}});
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_GT(s.latency_mean_us, 0.0);
  EXPECT_GE(s.latency_p99_us, s.latency_p50_us);
}

TEST(IpsEngineTest, WorkerOfIsStable) {
  IpsEngine eng(4, HostConfig{});
  EXPECT_EQ(eng.workerOf(0), 0u);
  EXPECT_EQ(eng.workerOf(5), 1u);
  EXPECT_EQ(eng.workerOf(7), 3u);
}

class DispatchEngineParam : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(DispatchEngineParam, ProcessesEverythingUnderEveryPolicy) {
  DispatchEngine eng(3, GetParam(), HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i)
    ASSERT_TRUE(eng.submit({frameFor(i % 9), static_cast<std::uint32_t>(i % 9), {}}));
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(kN));
  EXPECT_GT(s.latency_p50_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, DispatchEngineParam,
                         ::testing::Values(DispatchPolicy::kRoundRobin,
                                           DispatchPolicy::kMruWorker,
                                           DispatchPolicy::kStreamHash));

TEST(DispatchEngineTest, RouteFollowsPolicy) {
  DispatchEngine rr(4, DispatchPolicy::kRoundRobin, HostConfig{});
  EXPECT_EQ(rr.route(0), 0u);
  EXPECT_EQ(rr.route(0), 1u);
  EXPECT_EQ(rr.route(0), 2u);

  DispatchEngine hash(4, DispatchPolicy::kStreamHash, HostConfig{});
  EXPECT_EQ(hash.route(5), 1u);
  EXPECT_EQ(hash.route(5), 1u);
  EXPECT_EQ(hash.route(6), 2u);

  DispatchEngine mru(4, DispatchPolicy::kMruWorker, HostConfig{});
  EXPECT_EQ(mru.route(3), mru.route(9)) << "MRU sticks to the last worker";
}

TEST(DispatchEngineTest, StreamHashNeverMigratesAStream) {
  DispatchEngine eng(4, DispatchPolicy::kStreamHash, HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i)
    eng.submit({frameFor(2), 2, {}});  // one stream only
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.per_worker_processed[2], static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.per_worker_processed[0] + s.per_worker_processed[1] + s.per_worker_processed[3],
            0u);
}

TEST(DispatchEngineTest, NamesAreStable) {
  EXPECT_STREQ(dispatchPolicyName(DispatchPolicy::kRoundRobin), "RoundRobin");
  EXPECT_STREQ(dispatchPolicyName(DispatchPolicy::kMruWorker), "MRUWorker");
  EXPECT_STREQ(dispatchPolicyName(DispatchPolicy::kStreamHash), "StreamHash");
}

// ------------------------------------------------- robustness additions ---

TEST(MpmcQueue, TryPopAndDrained) {
  MpmcQueue<int> q(4);
  int v = 0;
  EXPECT_FALSE(q.tryPop(v));
  q.push(1);
  q.push(2);
  EXPECT_TRUE(q.tryPop(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.drained());
  q.close();
  EXPECT_FALSE(q.drained());  // one item left
  EXPECT_TRUE(q.tryPop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.drained());
}

TEST(MpmcQueue, PopForTimesOutThenDelivers) {
  MpmcQueue<int> q(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.popFor(std::chrono::milliseconds(10)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(5));
  q.push(9);
  EXPECT_EQ(q.popFor(std::chrono::milliseconds(10)).value(), 9);
}

TEST(MpmcQueue, FailedTryPushLeavesItemIntact) {
  MpmcQueue<std::vector<int>> q(1);
  EXPECT_TRUE(q.tryPush({1}));
  std::vector<int> keep{7, 8, 9};
  EXPECT_FALSE(q.tryPush(std::move(keep)));
  EXPECT_EQ(keep, (std::vector<int>{7, 8, 9}));  // not moved-from
}

TEST(WorkerPool, InjectedKillStopsWorkerAtNextTick) {
  WorkerPool pool;
  std::atomic<int> ticks{0};
  pool.start(1, [&](unsigned w, std::stop_token) {
    while (pool.tick(w)) {
      ticks.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (ticks.load() < 3) std::this_thread::yield();
  pool.injectKill(0);
  while (!pool.control(0).exited.load()) std::this_thread::yield();
  EXPECT_GE(pool.control(0).faults_taken.load(), 1u);
  pool.stopAndJoin();
}

TEST(WorkerPool, InjectedStallFreezesHeartbeat) {
  WorkerPool pool;
  pool.start(1, [&](unsigned w, std::stop_token st) {
    while (!st.stop_requested()) {
      if (!pool.tick(w)) return;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  auto& ctl = pool.control(0);
  while (ctl.heartbeat.load() < 5) std::this_thread::yield();
  pool.injectStall(0, std::chrono::milliseconds(80));
  // Wait for the stall to start (faults_taken counts the served stall).
  while (ctl.faults_taken.load() == 0) std::this_thread::yield();
  // After the stall is served the heartbeat advances again.
  const std::uint64_t after_stall = ctl.heartbeat.load();
  while (ctl.heartbeat.load() == after_stall) std::this_thread::yield();
  pool.stopAndJoin();
}

TEST(LockingEngineTest, SplitsRejectedByCause) {
  EngineOptions opts;
  opts.queue_capacity = 2;
  opts.overload = OverloadPolicy::kRejectNewest;
  LockingEngine eng(1, HostConfig{}, opts);
  eng.openPort(7000);
  eng.start();
  // Stall the only worker so nothing drains the 2-slot queue; pushes past
  // capacity must then reject as queue-full.
  eng.injectWorkerStall(0, std::chrono::milliseconds(200));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // stall takes hold
  int rejected = 0;
  for (int i = 0; i < 50; ++i)
    if (!eng.submit({frameFor(0), 0, {}})) ++rejected;
  const EngineStats mid = eng.stats();
  EXPECT_GT(mid.rejected_queue_full, 0u);
  EXPECT_EQ(mid.rejected_stopped, 0u);
  EXPECT_EQ(mid.rejected, mid.rejected_queue_full);
  eng.stop();
  EXPECT_FALSE(eng.submit({frameFor(0), 0, {}}));
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.rejected_stopped, 1u);
  EXPECT_EQ(s.rejected, s.rejected_queue_full + s.rejected_stopped);
  EXPECT_TRUE(s.conserved());
}

TEST(IpsEngineTest, SplitsRejectedByCause) {
  IpsEngine eng(1, HostConfig{});
  eng.openPort(7000);
  eng.start();
  eng.stop();
  EXPECT_FALSE(eng.submit({frameFor(0), 0, {}}));
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.rejected_stopped, 1u);
  EXPECT_EQ(s.rejected_queue_full, 0u);
  EXPECT_EQ(s.rejected, 1u);
}

TEST(DispatchEngineTest, SplitsRejectedByCause) {
  EngineOptions opts;
  opts.queue_capacity = 2;
  opts.overload = OverloadPolicy::kRejectNewest;
  DispatchEngine eng(1, DispatchPolicy::kStreamHash, HostConfig{}, opts);
  eng.openPort(7000, 1 << 16);
  eng.start();
  // Flood one worker faster than it can drain under a tiny ring; with
  // reject-newest at least one submit must fail as queue-full.
  int rejected = 0;
  for (int i = 0; i < 5000 && rejected == 0; ++i)
    if (!eng.submit({frameFor(0), 0, {}})) ++rejected;
  eng.stop();
  EXPECT_FALSE(eng.submit({frameFor(0), 0, {}}));
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.rejected_queue_full, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(s.rejected_stopped, 1u);
  EXPECT_EQ(s.rejected, s.rejected_queue_full + s.rejected_stopped);
}

TEST(LockingEngineTest, SurvivesWorkerKillWithoutLosingFrames) {
  EngineOptions opts;
  opts.queue_capacity = 64;
  opts.watchdog = true;
  opts.stall_timeout = std::chrono::milliseconds(5000);  // only kills trip it
  LockingEngine eng(2, HostConfig{}, opts);
  eng.openPort(7000, 1 << 16);
  eng.start();
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    if (i == 500) eng.injectWorkerKill(0);
    ASSERT_TRUE(eng.submit({frameFor(i % 5), 0, {}}));
  }
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(kN));
  EXPECT_TRUE(s.conserved());
  EXPECT_GE(s.worker_failures, 1u);
}

TEST(LockingEngineTest, ReconcilesQueueWhenEveryWorkerDies) {
  LockingEngine eng(1, HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  eng.injectWorkerKill(0);
  // The lone worker exits at its next tick; subsequent frames sit in the
  // queue until stop() reconciles them inline.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(eng.submit({frameFor(0), 0, {}}));
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.processed, 100u);
  EXPECT_EQ(s.delivered, 100u);
  EXPECT_TRUE(s.conserved());
}

TEST(LockingEngineTest, BlockingSubmitFailsWhenEveryWorkerDies) {
  // Regression: with every worker dead, a full queue can never drain, so an
  // unbounded kBlock submit must fail (rejected_queue_full) instead of
  // spinning forever.
  EngineOptions opts;
  opts.queue_capacity = 4;
  opts.overload = OverloadPolicy::kBlock;  // no deadline
  LockingEngine eng(1, HostConfig{}, opts);
  eng.openPort(7000, 1 << 16);
  eng.start();
  eng.injectWorkerKill(0);
  int ok = 0, rejected = 0;
  for (int i = 0; i < 200; ++i) {
    if (eng.submit({frameFor(0), 0, {}}))
      ++ok;
    else
      ++rejected;
  }
  EXPECT_GT(rejected, 0) << "submit blocked forever on a dead engine";
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(s.rejected_queue_full, static_cast<std::uint64_t>(rejected));
  EXPECT_TRUE(s.conserved());
}

TEST(IpsEngineTest, SurvivesTotalWorkerLoss) {
  // Regression: when the LAST worker dies, its redirect chain resolves to
  // itself. The watchdog's flush must park the backlog (not forward it back
  // into the queue it is draining — that cycled forever), and a blocking
  // submit must fail once no consumer can ever free ring space. stop()
  // reconciles everything parked.
  EngineOptions opts;
  opts.queue_capacity = 8;
  opts.overload = OverloadPolicy::kBlock;  // no deadline
  opts.watchdog = true;
  opts.watchdog_interval = std::chrono::milliseconds(1);
  opts.stall_timeout = std::chrono::milliseconds(5000);  // only kills trip it
  IpsEngine eng(2, HostConfig{}, opts);
  eng.openPort(7000, 1 << 16);
  eng.start();
  eng.injectWorkerKill(0);
  eng.injectWorkerKill(1);
  int ok = 0, rejected = 0;
  for (int i = 0; i < 400; ++i) {
    const auto stream = static_cast<std::uint32_t>(i % 4);
    if (eng.submit({frameFor(stream), stream, {}}))
      ++ok;
    else
      ++rejected;
  }
  EXPECT_GT(rejected, 0) << "submit blocked forever with all workers dead";
  // Let the watchdog reach the self-redirect flush of the last worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(s.rejected_queue_full, static_cast<std::uint64_t>(rejected));
  EXPECT_TRUE(s.conserved());
  EXPECT_EQ(s.worker_failures, 2u);
}

TEST(IpsEngineTest, RehomesStreamsOfKilledWorker) {
  EngineOptions opts;
  opts.queue_capacity = 256;
  opts.watchdog = true;
  opts.watchdog_interval = std::chrono::milliseconds(1);
  opts.stall_timeout = std::chrono::milliseconds(5000);  // only kills trip it
  IpsEngine eng(2, HostConfig{}, opts);
  eng.openPort(7000, 1 << 16);
  eng.start();
  constexpr int kN = 6000;
  for (int i = 0; i < kN; ++i) {
    if (i == kN / 3) eng.injectWorkerKill(0);
    const auto stream = static_cast<std::uint32_t>(i % 4);
    ASSERT_TRUE(eng.submit({frameFor(stream), stream, {}}));
  }
  // Give the watchdog a beat to notice the exit before checking redirect.
  for (int spin = 0; spin < 2000 && eng.workerOf(0) == 0u; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(eng.workerOf(0), 1u) << "streams of worker 0 re-homed to worker 1";
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(kN));
  EXPECT_TRUE(s.conserved());
  EXPECT_EQ(s.worker_failures, 1u);
}

TEST(IpsEngineTest, RecoversFromStalledWorker) {
  EngineOptions opts;
  opts.queue_capacity = 256;
  opts.watchdog = true;
  opts.watchdog_interval = std::chrono::milliseconds(1);
  opts.stall_timeout = std::chrono::milliseconds(30);
  IpsEngine eng(2, HostConfig{}, opts);
  eng.openPort(7000, 1 << 16);
  eng.start();
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    if (i == kN / 4) eng.injectWorkerStall(0, std::chrono::milliseconds(500));
    const auto stream = static_cast<std::uint32_t>(i % 4);
    ASSERT_TRUE(eng.submit({frameFor(stream), stream, {}}));
  }
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_TRUE(s.conserved());
  // 500ms stall vs 30ms timeout: the watchdog must have declared it.
  EXPECT_GE(s.worker_failures, 1u);
}

TEST(IpsEngineTest, PerStreamOrderPreserved) {
  // With one worker per stream-class and SPSC rings, packets of a stream are
  // processed in submission order: deliver increasing payloads and check the
  // session queue drains in order.
  IpsEngine eng(2, HostConfig{});
  eng.openPort(7000, /*session_queue=*/4096);
  eng.start();
  FrameSpec spec;
  for (std::uint8_t i = 0; i < 200; ++i) {
    const std::vector<std::uint8_t> payload{i};
    eng.submit({buildUdpFrame(spec, payload), 0});
  }
  eng.stop();
  EXPECT_EQ(eng.stats().processed, 200u);
}

}  // namespace
}  // namespace affinity
