// Tests for src/runtime: queues under concurrency, worker pools, and the
// Locking / IPS real-thread engines processing real frames end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "proto/stack.hpp"
#include "runtime/dispatch_engine.hpp"
#include "runtime/engine.hpp"
#include "runtime/queues.hpp"
#include "runtime/worker_pool.hpp"

namespace affinity {
namespace {

std::vector<std::uint8_t> frameFor(std::uint32_t stream, std::uint16_t port = 7000) {
  FrameSpec spec;
  spec.dst_port = port;
  spec.src_port = static_cast<std::uint16_t>(1000 + stream);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return buildUdpFrame(spec, payload);
}

// ---------------------------------------------------------------- queues ---

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, TryPushRespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_FALSE(q.tryPush(3));
}

TEST(MpmcQueue, CloseDrainsThenEnds) {
  MpmcQueue<int> q(8);
  q.push(42);
  q.close();
  EXPECT_FALSE(q.push(43));
  EXPECT_EQ(q.pop().value(), 42);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  MpmcQueue<int> q(64);
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::jthread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q] {
        for (int i = 1; i <= kPerProducer; ++i) q.push(i);
      });
    }
  }  // join producers
  q.close();
  threads.clear();  // join consumers
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  const long long expected = 3LL * (kPerProducer * (kPerProducer + 1LL)) / 2;
  EXPECT_EQ(sum.load(), expected);
}

TEST(SpscRing, FifoAndCapacity) {
  SpscRing<int> r(4);
  int v = 0;
  EXPECT_FALSE(r.tryPop(v));
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(r.tryPush(item));
  }
  // May hold >=4 (rounded up), but is finite.
  int extra = 100;
  int pushed = 0;
  while (pushed < 100) {
    int item = extra;
    if (!r.tryPush(item)) break;
    ++pushed;
  }
  EXPECT_LT(pushed, 100);
  EXPECT_TRUE(r.tryPop(v));
  EXPECT_EQ(v, 0);
}

TEST(SpscRing, FailedPushLeavesItemIntact) {
  SpscRing<std::vector<int>> r(1);
  std::vector<int> a{1, 2, 3};
  while (r.tryPush(a)) a = {1, 2, 3};
  std::vector<int> keep{7, 8, 9};
  EXPECT_FALSE(r.tryPush(keep));
  EXPECT_EQ(keep, (std::vector<int>{7, 8, 9}));  // not moved-from
}

TEST(SpscRing, SpscStress) {
  SpscRing<int> r(128);
  constexpr int kN = 100000;
  long long sum = 0;
  std::jthread consumer([&] {
    int got = 0, v = 0;
    while (got < kN) {
      if (r.tryPop(v)) {
        sum += v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 1; i <= kN; ++i) {
    int item = i;
    while (!r.tryPush(item)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN + 1) / 2);
}

// ----------------------------------------------------------- worker pool ---

TEST(WorkerPool, RunsBodiesAndStops) {
  WorkerPool pool;
  std::atomic<int> started{0};
  pool.start(3, [&](unsigned, std::stop_token st) {
    started.fetch_add(1);
    while (!st.stop_requested()) std::this_thread::yield();
  });
  while (started.load() < 3) std::this_thread::yield();
  pool.stopAndJoin();
  EXPECT_EQ(started.load(), 3);
}

TEST(WorkerPool, PinningReportsOutcome) {
  // On any Linux box pinning to CPU 0 should succeed.
  EXPECT_TRUE(pinThisThread(0));
  EXPECT_GE(availableCpus(), 1u);
}

// --------------------------------------------------------------- engines ---

TEST(LockingEngineTest, ProcessesAllSubmittedFrames) {
  LockingEngine eng(3, HostConfig{});
  eng.openPort(7000, /*session_queue=*/1 << 16);
  eng.start();
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(eng.submit({frameFor(i % 7), 0}));
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(std::accumulate(s.per_worker_processed.begin(), s.per_worker_processed.end(),
                            std::uint64_t{0}),
            static_cast<std::uint64_t>(kN));
}

TEST(LockingEngineTest, CountsDropsSeparately) {
  LockingEngine eng(2, HostConfig{});
  eng.openPort(7000);
  eng.start();
  eng.submit({frameFor(0, 7000), 0});
  eng.submit({frameFor(0, 9999), 0});  // no session -> processed, not delivered
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.processed, 2u);
  EXPECT_EQ(s.delivered, 1u);
}

TEST(LockingEngineTest, RejectsAfterStop) {
  LockingEngine eng(1, HostConfig{});
  eng.openPort(7000);
  eng.start();
  eng.stop();
  EXPECT_FALSE(eng.submit({frameFor(0), 0}));
  EXPECT_EQ(eng.stats().rejected, 1u);
}

TEST(IpsEngineTest, RoutesByStreamHash) {
  IpsEngine eng(4, HostConfig{});
  eng.openPort(7000, /*session_queue=*/1 << 16);
  eng.start();
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i)
    EXPECT_TRUE(eng.submit({frameFor(i % 16), static_cast<std::uint32_t>(i % 16)}));
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(kN));
  // 16 streams over 4 workers round-robin: perfectly balanced load.
  for (std::uint64_t w : s.per_worker_processed) EXPECT_EQ(w, static_cast<std::uint64_t>(kN / 4));
}

TEST(LockingEngineTest, ReportsLatencyPercentiles) {
  LockingEngine eng(2, HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  for (int i = 0; i < 500; ++i) eng.submit({frameFor(i % 4), 0, {}});
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_GT(s.latency_mean_us, 0.0);
  EXPECT_GT(s.latency_p50_us, 0.0);
  EXPECT_GE(s.latency_p99_us, s.latency_p50_us);
}

TEST(IpsEngineTest, ReportsLatencyPercentiles) {
  IpsEngine eng(2, HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  for (int i = 0; i < 500; ++i)
    eng.submit({frameFor(i % 4), static_cast<std::uint32_t>(i % 4), {}});
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_GT(s.latency_mean_us, 0.0);
  EXPECT_GE(s.latency_p99_us, s.latency_p50_us);
}

TEST(IpsEngineTest, WorkerOfIsStable) {
  IpsEngine eng(4, HostConfig{});
  EXPECT_EQ(eng.workerOf(0), 0u);
  EXPECT_EQ(eng.workerOf(5), 1u);
  EXPECT_EQ(eng.workerOf(7), 3u);
}

class DispatchEngineParam : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(DispatchEngineParam, ProcessesEverythingUnderEveryPolicy) {
  DispatchEngine eng(3, GetParam(), HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i)
    ASSERT_TRUE(eng.submit({frameFor(i % 9), static_cast<std::uint32_t>(i % 9), {}}));
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.processed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(kN));
  EXPECT_GT(s.latency_p50_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, DispatchEngineParam,
                         ::testing::Values(DispatchPolicy::kRoundRobin,
                                           DispatchPolicy::kMruWorker,
                                           DispatchPolicy::kStreamHash));

TEST(DispatchEngineTest, RouteFollowsPolicy) {
  DispatchEngine rr(4, DispatchPolicy::kRoundRobin, HostConfig{});
  EXPECT_EQ(rr.route(0), 0u);
  EXPECT_EQ(rr.route(0), 1u);
  EXPECT_EQ(rr.route(0), 2u);

  DispatchEngine hash(4, DispatchPolicy::kStreamHash, HostConfig{});
  EXPECT_EQ(hash.route(5), 1u);
  EXPECT_EQ(hash.route(5), 1u);
  EXPECT_EQ(hash.route(6), 2u);

  DispatchEngine mru(4, DispatchPolicy::kMruWorker, HostConfig{});
  EXPECT_EQ(mru.route(3), mru.route(9)) << "MRU sticks to the last worker";
}

TEST(DispatchEngineTest, StreamHashNeverMigratesAStream) {
  DispatchEngine eng(4, DispatchPolicy::kStreamHash, HostConfig{});
  eng.openPort(7000, 1 << 16);
  eng.start();
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i)
    eng.submit({frameFor(2), 2, {}});  // one stream only
  eng.stop();
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.per_worker_processed[2], static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.per_worker_processed[0] + s.per_worker_processed[1] + s.per_worker_processed[3],
            0u);
}

TEST(DispatchEngineTest, NamesAreStable) {
  EXPECT_STREQ(dispatchPolicyName(DispatchPolicy::kRoundRobin), "RoundRobin");
  EXPECT_STREQ(dispatchPolicyName(DispatchPolicy::kMruWorker), "MRUWorker");
  EXPECT_STREQ(dispatchPolicyName(DispatchPolicy::kStreamHash), "StreamHash");
}

TEST(IpsEngineTest, PerStreamOrderPreserved) {
  // With one worker per stream-class and SPSC rings, packets of a stream are
  // processed in submission order: deliver increasing payloads and check the
  // session queue drains in order.
  IpsEngine eng(2, HostConfig{});
  eng.openPort(7000, /*session_queue=*/4096);
  eng.start();
  FrameSpec spec;
  for (std::uint8_t i = 0; i < 200; ++i) {
    const std::vector<std::uint8_t> payload{i};
    eng.submit({buildUdpFrame(spec, payload), 0});
  }
  eng.stop();
  EXPECT_EQ(eng.stats().processed, 200u);
}

}  // namespace
}  // namespace affinity
