// Tests for src/flow: the bounded sharded flow table — geometry from the
// byte budget, the four eviction policies, generation/orphan semantics,
// the shedding layer's latch + deterministic tiebreak, and the counter
// invariants the chaos conservation ledger builds on.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "flow/flow_table.hpp"

namespace affinity::flow {
namespace {

// A single-shard table whose probe window spans every slot: with 8 slots
// and window 8, any 9th distinct flow must evict, and the victim is chosen
// across the full table — which makes policy behavior exactly observable.
FlowTableConfig tinyConfig(EvictPolicy policy) {
  FlowTableConfig cfg;
  cfg.budget_bytes = 8 * 24;  // 8 entries
  cfg.shards = 1;
  cfg.policy = policy;
  return cfg;
}

TEST(FlowTableGeometry, CapacityComesFromTheByteBudget) {
  FlowTableConfig cfg;
  cfg.budget_bytes = 1u << 20;
  cfg.shards = 8;
  const FlowTable t(cfg);
  // 1 MiB / 24 B = 43690 entries, floored per shard to a power of two.
  EXPECT_EQ(t.shardCount(), 8u);
  EXPECT_EQ(t.capacity(), 8u * 4096u);
  EXPECT_EQ(t.stats().capacity, t.capacity());
  EXPECT_EQ(t.stats().occupancy, 0u);
}

TEST(FlowTableGeometry, ShardCountRoundsDownToPowerOfTwo) {
  FlowTableConfig cfg;
  cfg.shards = 3;
  EXPECT_EQ(FlowTable(cfg).shardCount(), 2u);
  cfg.shards = 0;
  EXPECT_EQ(FlowTable(cfg).shardCount(), 1u);
}

TEST(FlowTableGeometry, NeverSmallerThanOneProbeWindowPerShard) {
  FlowTableConfig cfg;
  cfg.budget_bytes = 1;  // absurdly small budget still yields a working table
  cfg.shards = 2;
  const FlowTable t(cfg);
  EXPECT_GE(t.capacity(), 2u * 8u);
}

TEST(FlowTableAdmit, HitVsInsertAccounting) {
  FlowTable t(tinyConfig(EvictPolicy::kLru));
  const auto a = t.admit(7);
  EXPECT_EQ(a.status, AdmitResult::Status::kAdmitted);
  EXPECT_TRUE(a.inserted);
  EXPECT_FALSE(a.evicted);
  const auto b = t.admit(7);
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(b.gen, a.gen);  // same entry, same generation
  const FlowTableStats s = t.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.occupancy, 1u);
  EXPECT_EQ(s.evictions(), 0u);
}

TEST(FlowTableAdmit, DisabledTableAdmitsEverythingTracksNothing) {
  FlowTableConfig cfg = tinyConfig(EvictPolicy::kLru);
  cfg.enabled = false;
  FlowTable t(cfg);
  for (std::uint32_t k = 0; k < 100; ++k) {
    const auto r = t.admit(k);
    EXPECT_EQ(r.status, AdmitResult::Status::kAdmitted);
    EXPECT_FALSE(r.inserted);
    EXPECT_TRUE(t.release(k, r.gen));
  }
  EXPECT_EQ(t.stats().inserts, 0u);
  EXPECT_EQ(t.stats().occupancy, 0u);
}

TEST(FlowTableEvict, LruEvictsLeastRecentlyAdmitted) {
  FlowTable t(tinyConfig(EvictPolicy::kLru));
  for (std::uint32_t k = 1; k <= 8; ++k) (void)t.admit(k);
  (void)t.admit(1);  // refresh flow 1's recency; flow 2 is now the LRU
  const auto r = t.admit(9);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_key, 2u);
  EXPECT_EQ(t.stats().evicted_by_reason[static_cast<std::size_t>(EvictReason::kCapacity)], 1u);
}

TEST(FlowTableEvict, FifoEvictsOldestInsertionEvenWhenRecentlyTouched) {
  FlowTable t(tinyConfig(EvictPolicy::kFifo));
  for (std::uint32_t k = 1; k <= 8; ++k) (void)t.admit(k);
  (void)t.admit(1);  // a hit refreshes recency but not insertion order
  const auto r = t.admit(9);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_key, 1u);
}

TEST(FlowTableEvict, RandomPolicyIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    FlowTableConfig cfg = tinyConfig(EvictPolicy::kRandom);
    cfg.seed = seed;
    FlowTable t(cfg);
    std::vector<std::uint32_t> victims;
    for (std::uint32_t k = 0; k < 64; ++k) {
      const auto r = t.admit(k);
      if (r.evicted) victims.push_back(r.victim_key);
    }
    return victims;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_FALSE(run(42).empty());
  EXPECT_NE(run(42), run(43));  // different seed, different victim sequence
}

TEST(FlowTableEvict, DirectMappedDisplacesWithCollisionReason) {
  FlowTableConfig cfg = tinyConfig(EvictPolicy::kDirect);
  FlowTable t(cfg);
  // Window of one: any insert landing on an occupied slot displaces it.
  for (std::uint32_t k = 0; k < 100; ++k) (void)t.admit(k);
  const FlowTableStats s = t.stats();
  EXPECT_EQ(s.inserts, 100u);
  const auto collisions = s.evicted_by_reason[static_cast<std::size_t>(EvictReason::kCollision)];
  EXPECT_GT(collisions, 0u);
  EXPECT_EQ(s.evicted_by_reason[static_cast<std::size_t>(EvictReason::kCapacity)], 0u);
  // Nothing ever leaves the table except by eviction.
  EXPECT_EQ(s.inserts, s.occupancy + s.evictions());
}

TEST(FlowTableInvariant, InsertsEqualOccupancyPlusEvictionsUnderChurn) {
  for (const auto policy :
       {EvictPolicy::kLru, EvictPolicy::kFifo, EvictPolicy::kRandom, EvictPolicy::kDirect}) {
    FlowTableConfig cfg;
    cfg.budget_bytes = 64 * 24;
    cfg.shards = 4;
    cfg.policy = policy;
    FlowTable t(cfg);
    for (std::uint32_t k = 0; k < 5000; ++k) (void)t.admit(k % 1000);
    const FlowTableStats s = t.stats();
    EXPECT_EQ(s.inserts, s.occupancy + s.evictions()) << evictPolicyName(policy);
    EXPECT_EQ(s.inserts + s.hits, 5000u) << evictPolicyName(policy);
    EXPECT_LE(s.occupancy, t.capacity()) << evictPolicyName(policy);
  }
}

TEST(FlowTableRelease, EvictionOrphansInflightFramesExactlyOnce) {
  FlowTable t(tinyConfig(EvictPolicy::kLru));
  const auto a = t.admit(1);  // one frame in flight on flow 1, never released
  for (std::uint32_t k = 2; k <= 8; ++k) {
    const auto r = t.admit(k);
    EXPECT_TRUE(t.release(k, r.gen));
  }
  const auto evict = t.admit(9);  // LRU victim is flow 1, carrying 1 in flight
  ASSERT_TRUE(evict.evicted);
  EXPECT_EQ(evict.victim_key, 1u);
  EXPECT_EQ(t.stats().evicted_inflight, 1u);
  // The orphaned frame surfaces later: release misses and says so.
  EXPECT_FALSE(t.release(1, a.gen));
  EXPECT_EQ(t.stats().stale_releases, 1u);
  // Re-admitting flow 1 starts a fresh generation.
  const auto again = t.admit(1);
  EXPECT_TRUE(again.inserted);
  EXPECT_NE(again.gen, a.gen);
}

TEST(FlowTableRelease, StaleGenerationAfterReinsertionIsRejected) {
  FlowTable t(tinyConfig(EvictPolicy::kFifo));
  const auto first = t.admit(3);
  for (std::uint32_t k = 10; k < 18; ++k) (void)t.admit(k);  // evicts flow 3
  const auto second = t.admit(3);  // re-inserted under a new generation
  ASSERT_NE(second.gen, first.gen);
  EXPECT_FALSE(t.release(3, first.gen));  // old frame: orphaned
  EXPECT_TRUE(t.release(3, second.gen));  // new frame: fine
}

TEST(FlowShed, EngagesAtHighWaterAndRefusesOnlyNewFlows) {
  FlowTableConfig cfg = tinyConfig(EvictPolicy::kLru);
  cfg.shed_enabled = true;
  cfg.shed_high_water = 0.5;  // 4 of 8 entries
  cfg.shed_low_water = 0.25;
  cfg.shed_admit_fraction = 0.0;  // shed every new flow under pressure
  FlowTable t(cfg);
  for (std::uint32_t k = 1; k <= 4; ++k) EXPECT_EQ(t.admit(k).status, AdmitResult::Status::kAdmitted);
  EXPECT_TRUE(t.shedActive());
  EXPECT_EQ(t.admit(5).status, AdmitResult::Status::kShed);
  // Established flows always get through, shedding or not.
  EXPECT_EQ(t.admit(1).status, AdmitResult::Status::kAdmitted);
  const FlowTableStats s = t.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.shed_engaged, 1u);
  EXPECT_EQ(s.occupancy, 4u);
}

TEST(FlowShed, AdmitFractionOneSpareEverything) {
  FlowTableConfig cfg = tinyConfig(EvictPolicy::kLru);
  cfg.shed_enabled = true;
  cfg.shed_high_water = 0.25;
  cfg.shed_admit_fraction = 1.0;
  FlowTable t(cfg);
  for (std::uint32_t k = 0; k < 8; ++k)
    EXPECT_EQ(t.admit(k).status, AdmitResult::Status::kAdmitted) << k;
  EXPECT_EQ(t.stats().shed, 0u);
}

TEST(FlowShed, TiebreakIsAPureFunctionOfKeyAndSeed) {
  // The same flow is either shed or spared on every attempt, in any order:
  // two identically configured tables agree key-by-key.
  const auto shedSet = [](const std::vector<std::uint32_t>& keys) {
    FlowTableConfig cfg;
    cfg.budget_bytes = 16 * 24;
    cfg.shards = 1;
    cfg.shed_enabled = true;
    cfg.shed_high_water = 0.25;
    cfg.shed_low_water = 0.125;
    cfg.shed_admit_fraction = 0.5;
    FlowTable t(cfg);
    for (std::uint32_t k = 0; k < 16; ++k) (void)t.admit(1000 + k);  // engage the latch
    std::set<std::uint32_t> shed;
    for (const auto k : keys) {
      if (t.admit(k).status == AdmitResult::Status::kShed) shed.insert(k);
    }
    return shed;
  };
  std::vector<std::uint32_t> forward, backward;
  for (std::uint32_t k = 0; k < 200; ++k) forward.push_back(k);
  backward.assign(forward.rbegin(), forward.rend());
  const auto a = shedSet(forward);
  EXPECT_EQ(a, shedSet(backward));
  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.size(), forward.size());  // fraction 0.5 spares roughly half
}

TEST(FlowShed, ExternalPressureSignalAlsoTriggers) {
  FlowTableConfig cfg = tinyConfig(EvictPolicy::kLru);
  cfg.shed_enabled = true;
  cfg.shed_high_water = 1.0;  // occupancy latch never engages on its own
  cfg.shed_admit_fraction = 0.0;
  FlowTable t(cfg);
  EXPECT_EQ(t.admit(1, /*shed_pressure=*/false).status, AdmitResult::Status::kAdmitted);
  EXPECT_EQ(t.admit(2, /*shed_pressure=*/true).status, AdmitResult::Status::kShed);
  EXPECT_EQ(t.admit(1, /*shed_pressure=*/true).status, AdmitResult::Status::kAdmitted);
}

TEST(FlowShed, DisarmedLayerNeverSheds) {
  FlowTableConfig cfg = tinyConfig(EvictPolicy::kLru);
  cfg.shed_enabled = false;
  cfg.shed_high_water = 0.0;
  FlowTable t(cfg);
  for (std::uint32_t k = 0; k < 64; ++k)
    EXPECT_EQ(t.admit(k, /*shed_pressure=*/true).status, AdmitResult::Status::kAdmitted);
  EXPECT_EQ(t.stats().shed, 0u);
}

TEST(ShedLatchTest, HysteresisBetweenWaterMarks) {
  ShedLatch latch;
  EXPECT_FALSE(latch.update(5, 10, 3));
  EXPECT_TRUE(latch.update(10, 10, 3));   // engage at high water
  EXPECT_TRUE(latch.update(5, 10, 3));    // stays on between the marks
  EXPECT_TRUE(latch.on());
  EXPECT_FALSE(latch.update(3, 10, 3));   // disengage at low water
  EXPECT_FALSE(latch.on());
  EXPECT_FALSE(latch.update(9, 10, 3));   // below high again: stays off
}

TEST(FlowNames, PolicyAndReasonRoundTrip) {
  for (const auto p :
       {EvictPolicy::kLru, EvictPolicy::kFifo, EvictPolicy::kRandom, EvictPolicy::kDirect}) {
    EvictPolicy parsed;
    ASSERT_TRUE(parseEvictPolicy(evictPolicyName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  EvictPolicy out;
  EXPECT_FALSE(parseEvictPolicy("mru", &out));
  EXPECT_STREQ(evictReasonName(EvictReason::kCapacity), "capacity");
  EXPECT_STREQ(evictReasonName(EvictReason::kCollision), "collision");
}

}  // namespace
}  // namespace affinity::flow
