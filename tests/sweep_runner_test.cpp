// Tests for core/sweep_runner: ordering, worker-count independence of both
// results and derived seeds, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/sweep_runner.hpp"

namespace affinity {
namespace {

bool sameBits(const RunMetrics& a, const RunMetrics& b) {
  auto eq = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;  // bitwise, NaN-safe
  };
  return eq(a.mean_delay_us, b.mean_delay_us) && eq(a.p50_delay_us, b.p50_delay_us) &&
         eq(a.p95_delay_us, b.p95_delay_us) && eq(a.p99_delay_us, b.p99_delay_us) &&
         eq(a.ci95_delay_us, b.ci95_delay_us) && eq(a.mean_service_us, b.mean_service_us) &&
         eq(a.mean_lock_wait_us, b.mean_lock_wait_us) &&
         eq(a.throughput_per_us, b.throughput_per_us) && eq(a.utilization, b.utilization) &&
         eq(a.mean_queue_len, b.mean_queue_len) && a.arrived == b.arrived &&
         a.completed == b.completed && a.backlog_end == b.backlog_end &&
         a.saturated == b.saturated && a.reclassifications == b.reclassifications;
}

TEST(SweepRunner, MapReturnsResultsInInputOrder) {
  SweepRunner runner(4);
  const auto out = runner.map(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, MapRunsEveryIndexExactlyOnce) {
  SweepRunner runner(3);
  std::atomic<int> calls{0};
  const auto out = runner.map(37, [&](std::size_t i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return i;
  });
  EXPECT_EQ(calls.load(), 37);
  std::set<std::size_t> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 37u);
}

TEST(SweepRunner, MapPropagatesExceptions) {
  SweepRunner runner(2);
  EXPECT_THROW(runner.map(16,
                          [](std::size_t i) -> int {
                            if (i == 7) throw std::runtime_error("boom");
                            return 0;
                          }),
               std::runtime_error);
}

TEST(SweepRunner, DerivePointSeedIsDeterministicAndSpread) {
  EXPECT_EQ(derivePointSeed(42, 0), derivePointSeed(42, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) seeds.insert(derivePointSeed(42, i));
  EXPECT_EQ(seeds.size(), 100u);                       // no collisions
  EXPECT_NE(derivePointSeed(42, 1), derivePointSeed(43, 1));  // base matters
}

// The acceptance property behind the --jobs flag: a sweep's results are
// identical whatever the worker count.
TEST(SweepRunner, RunIsIdenticalAcrossJobCounts) {
  const auto model = ExecTimeModel::standard();
  std::vector<SweepPoint> points;
  for (std::uint64_t i = 0; i < 4; ++i) {
    SweepPoint p;
    p.config = defaultSimConfig();
    p.config.seed = derivePointSeed(2026, i);
    p.config.warmup_us = 2'000.0;
    p.config.measure_us = 15'000.0;
    p.streams = makePoissonStreams(8, 0.01 + 0.005 * static_cast<double>(i));
    points.push_back(std::move(p));
  }
  const auto serial = SweepRunner(1).run(model, points);
  const auto parallel = SweepRunner(4).run(model, points);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_TRUE(sameBits(serial[i], parallel[i])) << "point " << i;
}

TEST(SweepRunner, ReplicationsAreIdenticalAcrossJobCounts) {
  const auto model = ExecTimeModel::standard();
  SimConfig c = defaultSimConfig();
  c.seed = 7;
  c.warmup_us = 2'000.0;
  c.measure_us = 10'000.0;
  const auto streams = makePoissonStreams(8, 0.015);
  const auto serial = SweepRunner(1).runReplications(c, model, streams, 3, 0.5, 0);
  const auto parallel = SweepRunner(3).runReplications(c, model, streams, 3, 0.5, 0);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(sameBits(serial[i], parallel[i]));
  // Distinct replications use distinct derived seeds, so they differ.
  EXPECT_FALSE(sameBits(serial[0], serial[1]));
}

}  // namespace
}  // namespace affinity
