// Tests for src/net: the Toeplitz hash against the Microsoft RSS
// specification's published verification vectors, the NIC dispatch
// front-end (direct / RSS / Flow Director), and the per-stream ordering
// checker the ordering battery builds on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/dispatch.hpp"
#include "net/ordering.hpp"
#include "net/toeplitz.hpp"

namespace affinity::net {
namespace {

constexpr std::uint32_t ip(unsigned a, unsigned b, unsigned c, unsigned d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

// ----------------------------------------------------------------- hash ---
//
// The RSS spec publishes input/output pairs for its 40-byte verification
// key (the ToeplitzHash default). Reproducing them pins both the key and
// the bit-order of the sliding-window implementation.

struct RssVector {
  std::uint32_t src_ip, dst_ip;
  std::uint16_t src_port, dst_port;
  std::uint32_t with_ports, ipv4_only;
};

const RssVector kSpecVectors[] = {
    {ip(66, 9, 149, 187), ip(161, 142, 100, 80), 2794, 1766, 0x51ccc178, 0x323e8fc2},
    {ip(199, 92, 111, 2), ip(65, 69, 140, 83), 14230, 4739, 0xc626b0ea, 0xd718262a},
    {ip(24, 19, 198, 95), ip(12, 22, 207, 184), 12898, 38024, 0x5c2b394a, 0xd2d0a5de},
};

TEST(Toeplitz, MatchesRssSpecVectorsWithPorts) {
  const ToeplitzHash h;
  for (const RssVector& v : kSpecVectors) {
    const auto tuple = rssTuple(v.src_ip, v.dst_ip, v.src_port, v.dst_port);
    EXPECT_EQ(h.hash(tuple), v.with_ports);
  }
}

TEST(Toeplitz, MatchesRssSpecVectorsIpv4Only) {
  const ToeplitzHash h;
  for (const RssVector& v : kSpecVectors) {
    const auto tuple = rssTuple(v.src_ip, v.dst_ip, v.src_port, v.dst_port);
    // The 2-tuple variant hashes only the 8 address bytes.
    EXPECT_EQ(h.hash(std::span<const std::uint8_t>(tuple.data(), 8)), v.ipv4_only);
  }
}

TEST(Toeplitz, EmptyInputHashesToZero) {
  const ToeplitzHash h;
  EXPECT_EQ(h.hash({}), 0u);
}

TEST(Toeplitz, StreamHashIsDeterministicAndSpreads) {
  const ToeplitzHash h;
  std::set<std::uint32_t> values;
  for (std::uint32_t s = 0; s < 256; ++s) {
    const std::uint32_t first = rssHashForStream(h, s);
    EXPECT_EQ(first, rssHashForStream(h, s));
    values.insert(first);
  }
  // A keyed hash over distinct 4-tuples must essentially never collide in
  // 256 draws from 2^32.
  EXPECT_GE(values.size(), 250u);
}

// ----------------------------------------------------------- dispatcher ---

TEST(NicDispatcher, DirectModeIsStreamModulo) {
  NicDispatcher d(NicDispatchMode::kDirect, 5);
  for (std::uint32_t s = 0; s < 100; ++s) EXPECT_EQ(d.queueOf(s), s % 5);
  EXPECT_EQ(d.stats().routed, 100u);
  EXPECT_EQ(d.stats().pins, 0u);
  EXPECT_EQ(d.stats().migrations, 0u);
}

TEST(NicDispatcher, RssIsStatelessDeterministicAndInRange) {
  NicDispatcher a(NicDispatchMode::kRss, 4);
  NicDispatcher b(NicDispatchMode::kRss, 4);
  std::vector<unsigned> hits(4, 0);
  for (std::uint32_t s = 0; s < 128; ++s) {
    const unsigned q = a.queueOf(s);
    ASSERT_LT(q, 4u);
    EXPECT_EQ(q, b.queueOf(s)) << "RSS must be a pure function of the stream";
    EXPECT_EQ(q, a.queueOf(s)) << "and of nothing else";
    ++hits[q];
  }
  for (unsigned q = 0; q < 4; ++q)
    EXPECT_GT(hits[q], 0u) << "queue " << q << " starved by the indirection table";
  EXPECT_EQ(a.stats().migrations, 0u) << "stateless mode cannot migrate";
}

TEST(NicDispatcher, RssIgnoresNoteRun) {
  NicDispatcher d(NicDispatchMode::kRss, 4);
  const unsigned q = d.queueOf(7);
  d.noteRun(7, (q + 1) % 4);
  EXPECT_EQ(d.queueOf(7), q);
  EXPECT_EQ(d.stats().pins, 0u);
}

TEST(NicDispatcher, FlowDirectorPinsFirstSeenViaRssHash) {
  NicDispatcher fdir(NicDispatchMode::kFlowDirector, 4);
  NicDispatcher rss(NicDispatchMode::kRss, 4);
  for (std::uint32_t s = 0; s < 32; ++s)
    EXPECT_EQ(fdir.queueOf(s), rss.queueOf(s)) << "first sight must hash like RSS";
  EXPECT_EQ(fdir.stats().pins, 32u);
}

TEST(NicDispatcher, FlowDirectorFollowsNoteRun) {
  NicDispatcher d(NicDispatchMode::kFlowDirector, 4);
  const unsigned home = d.queueOf(3);
  const unsigned elsewhere = (home + 1) % 4;
  d.noteRun(3, home);  // confirming the pin is not a migration
  EXPECT_EQ(d.stats().migrations, 0u);
  d.noteRun(3, elsewhere);  // the consumer moved: the pin chases it
  EXPECT_EQ(d.queueOf(3), elsewhere);
  EXPECT_EQ(d.stats().migrations, 1u);
  EXPECT_EQ(d.stats().pins, 1u);
}

TEST(NicDispatcher, RepinAlwaysCountsAMigration) {
  NicDispatcher d(NicDispatchMode::kFlowDirector, 8);
  d.repin(42, 6);  // forced placement of a never-seen stream
  EXPECT_EQ(d.queueOf(42), 6u);
  EXPECT_EQ(d.stats().migrations, 1u);
}

TEST(NicModeNames, RoundTrip) {
  for (NicDispatchMode m : {NicDispatchMode::kDirect, NicDispatchMode::kRss,
                            NicDispatchMode::kFlowDirector}) {
    NicDispatchMode parsed = NicDispatchMode::kDirect;
    EXPECT_TRUE(parseNicMode(nicModeName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  NicDispatchMode parsed = NicDispatchMode::kDirect;
  EXPECT_TRUE(parseNicMode("fdir", &parsed));
  EXPECT_EQ(parsed, NicDispatchMode::kFlowDirector);
  EXPECT_FALSE(parseNicMode("toeplitz", &parsed));
}

// ------------------------------------------------------ ordering checker ---

TEST(OrderingChecker, StrictlyIncreasingIsInOrder) {
  OrderingChecker c;
  for (std::uint32_t s = 0; s < 3; ++s)
    for (std::uint64_t q = 10 * s; q < 10 * s + 5; ++q) c.record(s, q);
  const OrderingReport r = c.report();
  EXPECT_EQ(r.observed, 15u);
  EXPECT_EQ(r.streams, 3u);
  EXPECT_TRUE(r.inOrder());
}

TEST(OrderingChecker, GapsAreStillInOrder) {
  OrderingChecker c;
  c.record(0, 1);
  c.record(0, 7);  // drops upstream leave gaps, not regressions
  EXPECT_TRUE(c.report().inOrder());
}

TEST(OrderingChecker, RegressionAndDuplicateAreCounted) {
  OrderingChecker c;
  c.record(0, 5);
  c.record(0, 3);  // regression
  c.record(0, 5);  // equal to the watermark: duplicate
  c.record(1, 0);  // other streams are independent
  const OrderingReport r = c.report();
  EXPECT_EQ(r.reordered, 1u);
  EXPECT_EQ(r.duplicated, 1u);
  EXPECT_FALSE(r.inOrder());
}

TEST(OrderingChecker, KeepsHighWatermarkAfterRegression) {
  OrderingChecker c;
  c.record(0, 10);
  c.record(0, 2);   // late straggler
  c.record(0, 11);  // resumes above the watermark: in order again
  EXPECT_EQ(c.report().reordered, 1u);
}

TEST(OrderingChecker, SequenceZeroOnFirstSightIsInOrder) {
  OrderingChecker c;
  c.record(9, 0);
  EXPECT_TRUE(c.report().inOrder());
  c.record(9, 0);  // but repeating it is a duplicate
  EXPECT_EQ(c.report().duplicated, 1u);
}

}  // namespace
}  // namespace affinity::net
