// Tests for src/net: the Toeplitz hash against the Microsoft RSS
// specification's published verification vectors, the NIC dispatch
// front-end (direct / RSS / Flow Director / transport-friendly), the
// per-stream ordering checker the ordering battery builds on, and a
// model-based fuzz over the transport-friendly dispatcher's deferred-repin
// protocol.
#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "net/dispatch.hpp"
#include "net/ordering.hpp"
#include "net/toeplitz.hpp"

namespace affinity::net {
namespace {

constexpr std::uint32_t ip(unsigned a, unsigned b, unsigned c, unsigned d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

// ----------------------------------------------------------------- hash ---
//
// The RSS spec publishes input/output pairs for its 40-byte verification
// key (the ToeplitzHash default). Reproducing them pins both the key and
// the bit-order of the sliding-window implementation.

struct RssVector {
  std::uint32_t src_ip, dst_ip;
  std::uint16_t src_port, dst_port;
  std::uint32_t with_ports, ipv4_only;
};

const RssVector kSpecVectors[] = {
    {ip(66, 9, 149, 187), ip(161, 142, 100, 80), 2794, 1766, 0x51ccc178, 0x323e8fc2},
    {ip(199, 92, 111, 2), ip(65, 69, 140, 83), 14230, 4739, 0xc626b0ea, 0xd718262a},
    {ip(24, 19, 198, 95), ip(12, 22, 207, 184), 12898, 38024, 0x5c2b394a, 0xd2d0a5de},
};

TEST(Toeplitz, MatchesRssSpecVectorsWithPorts) {
  const ToeplitzHash h;
  for (const RssVector& v : kSpecVectors) {
    const auto tuple = rssTuple(v.src_ip, v.dst_ip, v.src_port, v.dst_port);
    EXPECT_EQ(h.hash(tuple), v.with_ports);
  }
}

TEST(Toeplitz, MatchesRssSpecVectorsIpv4Only) {
  const ToeplitzHash h;
  for (const RssVector& v : kSpecVectors) {
    const auto tuple = rssTuple(v.src_ip, v.dst_ip, v.src_port, v.dst_port);
    // The 2-tuple variant hashes only the 8 address bytes.
    EXPECT_EQ(h.hash(std::span<const std::uint8_t>(tuple.data(), 8)), v.ipv4_only);
  }
}

TEST(Toeplitz, EmptyInputHashesToZero) {
  const ToeplitzHash h;
  EXPECT_EQ(h.hash({}), 0u);
}

TEST(Toeplitz, StreamHashIsDeterministicAndSpreads) {
  const ToeplitzHash h;
  std::set<std::uint32_t> values;
  for (std::uint32_t s = 0; s < 256; ++s) {
    const std::uint32_t first = rssHashForStream(h, s);
    EXPECT_EQ(first, rssHashForStream(h, s));
    values.insert(first);
  }
  // A keyed hash over distinct 4-tuples must essentially never collide in
  // 256 draws from 2^32.
  EXPECT_GE(values.size(), 250u);
}

// ----------------------------------------------------------- dispatcher ---

TEST(NicDispatcher, DirectModeIsStreamModulo) {
  NicDispatcher d(NicDispatchMode::kDirect, 5);
  for (std::uint32_t s = 0; s < 100; ++s) EXPECT_EQ(d.queueOf(s), s % 5);
  EXPECT_EQ(d.stats().routed, 100u);
  EXPECT_EQ(d.stats().pins, 0u);
  EXPECT_EQ(d.stats().migrations, 0u);
}

TEST(NicDispatcher, RssIsStatelessDeterministicAndInRange) {
  NicDispatcher a(NicDispatchMode::kRss, 4);
  NicDispatcher b(NicDispatchMode::kRss, 4);
  std::vector<unsigned> hits(4, 0);
  for (std::uint32_t s = 0; s < 128; ++s) {
    const unsigned q = a.queueOf(s);
    ASSERT_LT(q, 4u);
    EXPECT_EQ(q, b.queueOf(s)) << "RSS must be a pure function of the stream";
    EXPECT_EQ(q, a.queueOf(s)) << "and of nothing else";
    ++hits[q];
  }
  for (unsigned q = 0; q < 4; ++q)
    EXPECT_GT(hits[q], 0u) << "queue " << q << " starved by the indirection table";
  EXPECT_EQ(a.stats().migrations, 0u) << "stateless mode cannot migrate";
}

TEST(NicDispatcher, RssIgnoresNoteRun) {
  NicDispatcher d(NicDispatchMode::kRss, 4);
  const unsigned q = d.queueOf(7);
  d.noteRun(7, (q + 1) % 4);
  EXPECT_EQ(d.queueOf(7), q);
  EXPECT_EQ(d.stats().pins, 0u);
}

TEST(NicDispatcher, FlowDirectorPinsFirstSeenViaRssHash) {
  NicDispatcher fdir(NicDispatchMode::kFlowDirector, 4);
  NicDispatcher rss(NicDispatchMode::kRss, 4);
  for (std::uint32_t s = 0; s < 32; ++s)
    EXPECT_EQ(fdir.queueOf(s), rss.queueOf(s)) << "first sight must hash like RSS";
  EXPECT_EQ(fdir.stats().pins, 32u);
}

TEST(NicDispatcher, FlowDirectorFollowsNoteRun) {
  NicDispatcher d(NicDispatchMode::kFlowDirector, 4);
  const unsigned home = d.queueOf(3);
  const unsigned elsewhere = (home + 1) % 4;
  d.noteRun(3, home);  // confirming the pin is not a migration
  EXPECT_EQ(d.stats().migrations, 0u);
  d.noteRun(3, elsewhere);  // the consumer moved: the pin chases it
  EXPECT_EQ(d.queueOf(3), elsewhere);
  EXPECT_EQ(d.stats().migrations, 1u);
  EXPECT_EQ(d.stats().pins, 1u);
}

TEST(NicDispatcher, RepinAlwaysCountsAMigration) {
  NicDispatcher d(NicDispatchMode::kFlowDirector, 8);
  d.repin(42, 6);  // forced placement of a never-seen stream
  EXPECT_EQ(d.queueOf(42), 6u);
  EXPECT_EQ(d.stats().migrations, 1u);
}

TEST(NicModeNames, RoundTrip) {
  for (NicDispatchMode m : {NicDispatchMode::kDirect, NicDispatchMode::kRss,
                            NicDispatchMode::kFlowDirector,
                            NicDispatchMode::kTransportFriendly}) {
    NicDispatchMode parsed = NicDispatchMode::kDirect;
    EXPECT_TRUE(parseNicMode(nicModeName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  NicDispatchMode parsed = NicDispatchMode::kDirect;
  EXPECT_TRUE(parseNicMode("fdir", &parsed));
  EXPECT_EQ(parsed, NicDispatchMode::kFlowDirector);
  EXPECT_TRUE(parseNicMode("transport-friendly", &parsed));
  EXPECT_EQ(parsed, NicDispatchMode::kTransportFriendly);
  EXPECT_FALSE(parseNicMode("toeplitz", &parsed));
}

// -------------------------------------------- transport-friendly mode ---

TEST(NicDispatcher, TransportFriendlySeedsPlacementLikeRss) {
  NicDispatcher tfn(NicDispatchMode::kTransportFriendly, 4);
  NicDispatcher rss(NicDispatchMode::kRss, 4);
  for (std::uint32_t s = 0; s < 32; ++s)
    EXPECT_EQ(tfn.queueOf(s), rss.queueOf(s)) << "first sight must hash like RSS";
  EXPECT_EQ(tfn.stats().pins, 32u);
  EXPECT_EQ(tfn.stats().migrations, 0u);
}

TEST(NicDispatcher, TransportFriendlyDefersRepinUntilOldHomeDrains) {
  NicDispatcher d(NicDispatchMode::kTransportFriendly, 4);
  const unsigned home = d.queueOf(3);
  const unsigned elsewhere = (home + 1) % 4;
  d.noteDispatched(3);
  d.noteDispatched(3);  // two frames in flight at the home queue
  // A thief consumed the first frame elsewhere: the proposal parks.
  EXPECT_FALSE(d.noteRun(3, elsewhere));
  EXPECT_EQ(d.queueOf(3), home) << "the pin must not move over an in-flight frame";
  EXPECT_EQ(d.stats().migrations, 0u);
  EXPECT_EQ(d.stats().tfn_deferred, 1u);
  // The last in-flight frame drains at the home: now the move applies.
  EXPECT_TRUE(d.noteRun(3, home)) << "apply must be signalled for the cold transient";
  EXPECT_EQ(d.queueOf(3), elsewhere);
  EXPECT_EQ(d.stats().migrations, 1u);
  EXPECT_EQ(d.stats().tfn_applied, 1u);
  EXPECT_EQ(d.stats().tfn_feedback, 2u);
}

TEST(NicDispatcher, TransportFriendlyDropsProposalsPastTheStalenessWindow) {
  NicDispatcher d(NicDispatchMode::kTransportFriendly, 4, /*tfn_window=*/2);
  const unsigned home = d.queueOf(5);
  const unsigned elsewhere = (home + 1) % 4;
  for (int i = 0; i < 5; ++i) d.noteDispatched(5);
  EXPECT_FALSE(d.noteRun(5, elsewhere));  // parks the proposal
  // The home keeps consuming: the parked proposal ages past the window.
  EXPECT_FALSE(d.noteRun(5, home));  // age 1
  EXPECT_FALSE(d.noteRun(5, home));  // age 2
  EXPECT_FALSE(d.noteRun(5, home));  // age 3 > window: dropped as stale
  EXPECT_EQ(d.stats().tfn_stale, 1u);
  EXPECT_FALSE(d.noteRun(5, home));  // fully drained — nothing left to apply
  EXPECT_EQ(d.queueOf(5), home) << "a stale transient must not migrate the pin";
  EXPECT_EQ(d.stats().migrations, 0u);
  EXPECT_EQ(d.stats().tfn_applied, 0u);
}

TEST(NicDispatcher, TransportFriendlyRepinIsImmediateOnceDrained) {
  NicDispatcher d(NicDispatchMode::kTransportFriendly, 8);
  const unsigned home = d.queueOf(7);
  const unsigned target = (home + 3) % 8;
  d.repin(7, target);  // nothing in flight: the forced move is safe now
  EXPECT_EQ(d.queueOf(7), target);
  EXPECT_EQ(d.stats().migrations, 1u);
  EXPECT_EQ(d.stats().tfn_deferred, 0u);
}

TEST(NicDispatcher, TransportFriendlyPushFailureCancellationUnblocksRepin) {
  NicDispatcher d(NicDispatchMode::kTransportFriendly, 4);
  const unsigned home = d.queueOf(9);
  const unsigned target = (home + 1) % 4;
  d.noteDispatched(9);  // routed, about to enqueue…
  d.repin(9, target);   // forced move parks behind the in-flight slot
  EXPECT_EQ(d.queueOf(9), home);
  EXPECT_EQ(d.stats().tfn_deferred, 1u);
  d.noteDrained(9);  // …but the push failed: the slot closes, the move lands
  EXPECT_EQ(d.queueOf(9), target);
  EXPECT_EQ(d.stats().tfn_applied, 1u);
  EXPECT_EQ(d.stats().migrations, 1u);
}

// ------------------------------------------------------ ordering checker ---

TEST(OrderingChecker, StrictlyIncreasingIsInOrder) {
  OrderingChecker c;
  for (std::uint32_t s = 0; s < 3; ++s)
    for (std::uint64_t q = 10 * s; q < 10 * s + 5; ++q) c.record(s, q);
  const OrderingReport r = c.report();
  EXPECT_EQ(r.observed, 15u);
  EXPECT_EQ(r.streams, 3u);
  EXPECT_TRUE(r.inOrder());
}

TEST(OrderingChecker, GapsAreStillInOrder) {
  OrderingChecker c;
  c.record(0, 1);
  c.record(0, 7);  // drops upstream leave gaps, not regressions
  EXPECT_TRUE(c.report().inOrder());
}

TEST(OrderingChecker, RegressionAndDuplicateAreCounted) {
  OrderingChecker c;
  c.record(0, 5);
  c.record(0, 3);  // regression
  c.record(0, 5);  // equal to the watermark: duplicate
  c.record(1, 0);  // other streams are independent
  const OrderingReport r = c.report();
  EXPECT_EQ(r.reordered, 1u);
  EXPECT_EQ(r.duplicated, 1u);
  EXPECT_FALSE(r.inOrder());
}

TEST(OrderingChecker, KeepsHighWatermarkAfterRegression) {
  OrderingChecker c;
  c.record(0, 10);
  c.record(0, 2);   // late straggler
  c.record(0, 11);  // resumes above the watermark: in order again
  EXPECT_EQ(c.report().reordered, 1u);
}

TEST(OrderingChecker, SequenceZeroOnFirstSightIsInOrder) {
  OrderingChecker c;
  c.record(9, 0);
  EXPECT_TRUE(c.report().inOrder());
  c.record(9, 0);  // but repeating it is a duplicate
  EXPECT_EQ(c.report().duplicated, 1u);
}

TEST(OrderingChecker, FaultsCaptureFirstOffensePerStream) {
  OrderingChecker c;
  c.record(0, 5);
  c.record(0, 3);  // first offense on stream 0: seq 3 behind watermark 5
  c.record(0, 1);  // later offenses are counted but not re-captured
  c.record(1, 7);
  c.record(1, 7);  // a duplicate is a fault too
  const OrderingReport r = c.report();
  EXPECT_EQ(r.reordered, 2u);
  EXPECT_EQ(r.duplicated, 1u);
  ASSERT_EQ(r.faults.size(), 2u);
  EXPECT_EQ(r.faults[0].stream, 0u);
  EXPECT_EQ(r.faults[0].seq, 3u);
  EXPECT_EQ(r.faults[0].watermark, 5u);
  EXPECT_EQ(r.faults[1].stream, 1u);
  EXPECT_EQ(r.faults[1].seq, 7u);
  EXPECT_EQ(r.faults[1].watermark, 7u);
  const std::string text = r.describeFaults();
  EXPECT_NE(text.find("stream 0: seq 3 arrived behind watermark 5"), std::string::npos);
  EXPECT_NE(text.find("stream 1: seq 7 arrived behind watermark 7"), std::string::npos);
}

TEST(OrderingChecker, InOrderReportDescribesNoFaults) {
  OrderingChecker c;
  c.record(0, 1);
  c.record(0, 2);
  EXPECT_TRUE(c.report().faults.empty());
  EXPECT_TRUE(c.report().describeFaults().empty());
}

TEST(OrderingChecker, FaultCaptureIsBoundedUnderAPathology) {
  OrderingChecker c;
  for (std::uint32_t s = 0; s < 24; ++s) {
    c.record(s, 4);
    c.record(s, 0);  // every stream regresses once
  }
  const OrderingReport r = c.report();
  EXPECT_EQ(r.reordered, 24u);
  EXPECT_EQ(r.faults.size(), OrderingReport::kMaxFaults);
  EXPECT_NE(r.describeFaults().find("faulted streams shown"), std::string::npos);
}

// --------------------------------------- TFN repin-safety fuzz property ---
//
// Model-based fuzz over the transport-friendly dispatcher: a world of
// per-queue FIFOs driven by seeded schedules of dispatches, consumptions,
// head-first steals, forced repins, queue kills, push failures, and
// dead-queue reconcile drains. Two invariants must survive every schedule:
//
//   1. No out-of-order delivery. Every pop — consume, steal, or reconcile —
//      observes the stream's next undelivered sequence number. This holds
//      exactly because a deferred repin never applies while any dispatched
//      frame of the stream is still queued, so at any instant all of a
//      stream's queued frames sit in a single FIFO.
//   2. No stranded frame or leaked in-flight slot. After the final drain
//      every submitted sequence was delivered, and a forced repin takes
//      effect immediately for every stream (a leaked slot would park it
//      forever).

TEST(TfnRepinSafetyProperty, FuzzedFeedbackSchedulesNeverReorderOrStrand) {
  constexpr unsigned kQueues = 4;
  constexpr std::uint32_t kFuzzStreams = 6;
  constexpr int kOpsPerSchedule = 300;
  struct Frame {
    std::uint32_t stream;
    std::uint64_t seq;
  };

  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    NicDispatcher d(NicDispatchMode::kTransportFriendly, kQueues, /*tfn_window=*/4);
    std::vector<std::deque<Frame>> fifo(kQueues);
    std::vector<bool> dead(kQueues, false);
    std::vector<std::uint64_t> submitted(kFuzzStreams, 0);
    std::vector<std::uint64_t> delivered(kFuzzStreams, 0);

    const auto liveQueue = [&](unsigned start) {
      for (unsigned i = 0; i < kQueues; ++i)
        if (!dead[(start + i) % kQueues]) return (start + i) % kQueues;
      return 0u;  // unreachable: at least one queue stays live
    };
    const auto pop = [&](unsigned q) {
      const Frame f = fifo[q].front();
      fifo[q].pop_front();
      EXPECT_EQ(f.seq, delivered[f.stream])
          << "stream " << f.stream << " delivered out of order from queue " << q;
      ++delivered[f.stream];
      return f;
    };

    for (int op = 0; op < kOpsPerSchedule; ++op) {
      switch (rng() % 8) {
        case 0:
        case 1:
        case 2: {  // dispatch (arrivals dominate the schedule)
          const auto s = static_cast<std::uint32_t>(rng() % kFuzzStreams);
          const unsigned q = d.queueOf(s);
          d.noteDispatched(s);
          if (rng() % 16 == 0) {
            d.noteDrained(s);  // the push failed: cancel the in-flight slot
          } else {
            fifo[q].push_back(Frame{s, submitted[s]++});
          }
          break;
        }
        case 3:
        case 4: {  // a live queue consumes its own head
          const unsigned start = static_cast<unsigned>(rng() % kQueues);
          for (unsigned i = 0; i < kQueues; ++i) {
            const unsigned q = (start + i) % kQueues;
            if (dead[q] || fifo[q].empty()) continue;
            const Frame f = pop(q);
            (void)d.noteRun(f.stream, q);
            break;
          }
          break;
        }
        case 5: {  // steal: a live thief takes the head of any other queue
          const unsigned start = static_cast<unsigned>(rng() % kQueues);
          for (unsigned i = 0; i < kQueues; ++i) {
            const unsigned victim = (start + i) % kQueues;
            if (fifo[victim].empty()) continue;
            const unsigned thief = liveQueue(static_cast<unsigned>(rng() % kQueues));
            if (thief == victim) break;
            const Frame f = pop(victim);
            (void)d.noteRun(f.stream, thief);
            break;
          }
          break;
        }
        case 6: {  // forced repin toward a live queue (failover, rebalance)
          d.repin(static_cast<std::uint32_t>(rng() % kFuzzStreams),
                  liveQueue(static_cast<unsigned>(rng() % kQueues)));
          break;
        }
        case 7: {  // kill a queue, or reconcile one frame off a dead queue
          bool reconciled = false;
          for (unsigned q = 0; q < kQueues && !reconciled; ++q) {
            if (dead[q] && !fifo[q].empty() && rng() % 2 == 0) {
              const Frame f = pop(q);
              d.noteDrained(f.stream, /*stale_feedback=*/true);
              reconciled = true;
            }
          }
          if (!reconciled) {
            const unsigned q = static_cast<unsigned>(rng() % kQueues);
            unsigned live = 0;
            for (unsigned i = 0; i < kQueues; ++i) live += dead[i] ? 0u : 1u;
            if (!dead[q] && live > 1) dead[q] = true;
          }
          break;
        }
      }
    }

    // Final drain: live queues consume, dead queues reconcile. Per-stream
    // order is queue-local (invariant 1), so queue iteration order is free.
    for (unsigned q = 0; q < kQueues; ++q) {
      while (!fifo[q].empty()) {
        const Frame f = pop(q);
        if (dead[q]) {
          d.noteDrained(f.stream, /*stale_feedback=*/true);
        } else {
          (void)d.noteRun(f.stream, q);
        }
      }
    }

    for (std::uint32_t s = 0; s < kFuzzStreams; ++s)
      EXPECT_EQ(delivered[s], submitted[s]) << "stream " << s << " stranded frames";
    // Every in-flight slot must be closed: two forced repins (at least one
    // changes the pin) must both take effect immediately.
    for (std::uint32_t s = 0; s < kFuzzStreams; ++s) {
      d.repin(s, 1);
      EXPECT_EQ(d.queueOf(s), 1u) << "leaked in-flight slot parked the repin";
      d.repin(s, 2);
      EXPECT_EQ(d.queueOf(s), 2u) << "leaked in-flight slot parked the repin";
    }
  }
}

}  // namespace
}  // namespace affinity::net
