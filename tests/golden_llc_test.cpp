// golden_llc_test — the "2020s topology" golden shapes: headline figures
// 6/8/9/12 rerun on a shared-LLC machine (MachineParams::modern2020) under
// the reuse-distance cache model, pinned so EXPERIMENTS.md's "shared-LLC
// rerun" verdicts (which 1995 conclusions survive, which flip) are enforced
// by a test instead of drifting silently. bench/ext_llc_rerun prints the
// full tables these points come from.
//
// The headline FLIP pinned here: at 42k pkts/s the 1995 machine has
// Locking-MRU saturated while Wired-Streams still runs (the paper's Figure
// 6 crossover "just above 40k"); on the shared-LLC machine MRU is still
// stable at 42k and *beats* Wired — the LLC keeps migrated stream state
// warm, so the migration penalty MRU pays (and Wired exists to avoid) has
// shrunk below Wired's load-imbalance cost. The crossover moves past 42k.
//
// Also here (soak tier): the full-length RD-vs-cachesim differential
// battery over every shipped scenario (rd_model_test runs the same battery
// downsampled in quick).
#include <gtest/gtest.h>

#include "golden_tolerance.hpp"
#include "rd_differential.hpp"

#include "cachesim/rd_capture.hpp"
#include "core/capacity.hpp"
#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"

namespace affinity {
namespace {

// The modern-topology reuse model every test here shares: profiles captured
// once (cachedDefaultRdModel memoizes) with all 8 processors co-running on
// the LLC, and the 1995 memory transient split into private-L2 + shared-LLC
// parts (tCold preserved at 284.3 us).
const ExecTimeModel& modernModel() {
  static const ExecTimeModel* model = [] {
    RdCaptureParams capture;
    capture.co_runners = 8;
    return new ExecTimeModel(cachedDefaultRdModel(MachineParams::modern2020(), capture),
                             ReloadParams::measuredUdpReceive().splitForSharedLlc(),
                             FootprintShares{});
  }();
  return *model;
}

SimConfig goldenConfig() {
  SimConfig c = defaultSimConfig();
  c.num_procs = 8;
  c.lock_overhead_us = 20.0;
  c.critical_section_us = 8.0;
  c.seed = 1;
  c.warmup_us = 200'000.0;
  c.measure_us = 2'000'000.0;
  return c;
}

SimConfig goldenConfigFor(double rate_per_us) {
  SimConfig c = goldenConfig();
  setAutoWindow(c, rate_per_us, 80'000);
  return c;
}

std::uint64_t goldenSeed(std::uint64_t point_index) { return derivePointSeed(1, point_index); }

RunMetrics runLocking(const ExecTimeModel& model, LockingPolicy policy, double rate,
                      std::uint64_t idx) {
  const auto streams = makePoissonStreams(16, rate);
  SimConfig c = goldenConfigFor(rate);
  c.seed = goldenSeed(idx);
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = policy;
  return runOnce(c, model, streams);
}

// Figure 6 rerun. Below the 1995 crossover the ordering survives (MRU
// wins); at 42k the 1995 verdict FLIPS: MRU is no longer saturated and
// beats Wired outright.
TEST(GoldenLlc, Fig6MruSurvives42kFlippingThe1995Crossover) {
  const ExecTimeModel& model = modernModel();

  {
    const RunMetrics mru = runLocking(model, LockingPolicy::kMru, 0.038, 9);
    const RunMetrics wired = runLocking(model, LockingPolicy::kWiredStreams, 0.038, 9);
    EXPECT_FALSE(mru.saturated);
    EXPECT_FALSE(wired.saturated);
    EXPECT_LT(mru.mean_delay_us, wired.mean_delay_us) << "MRU must still win below 40k";
    golden::expectPinned("llc-fig6", mru.mean_delay_us, 273.3, "MRU delay at 38k");
    golden::expectPinned("llc-fig6", wired.mean_delay_us, 565.3, "Wired delay at 38k");
  }

  {
    const RunMetrics mru = runLocking(model, LockingPolicy::kMru, 0.042, 11);
    const RunMetrics wired = runLocking(model, LockingPolicy::kWiredStreams, 0.042, 11);
    // THE FLIP: the 1995 golden (golden_figures_test) asserts MRU saturated
    // here and Wired the only stable policy. With the shared LLC keeping
    // migrated stream state warm, MRU is stable AND faster.
    EXPECT_FALSE(mru.saturated) << "shared LLC must keep MRU stable at 42k";
    EXPECT_FALSE(wired.saturated);
    EXPECT_LT(mru.mean_delay_us, wired.mean_delay_us)
        << "MRU must beat Wired at 42k on the shared-LLC machine";
    golden::expectPinned("llc-fig6", mru.mean_delay_us, 703.7, "MRU delay at 42k");
    golden::expectPinned("llc-fig6", wired.mean_delay_us, 915.7, "Wired delay at 42k");
  }
}

// Figure 8 rerun: the light-load IPS placement ordering survives (MRU <
// Wired < Random) but the concentration win narrows — the shared LLC keeps
// protocol code warm on every processor, which was MRU's whole advantage.
TEST(GoldenLlc, Fig8MruWinSurvivesButNarrows) {
  const double rate = 0.001;
  const auto streams = makePoissonStreams(16, rate);

  const auto delays = [&](const ExecTimeModel& model) {
    double d[3];
    const IpsPolicy policies[3] = {IpsPolicy::kRandom, IpsPolicy::kMru, IpsPolicy::kWired};
    for (int i = 0; i < 3; ++i) {
      SimConfig c = goldenConfigFor(rate);
      c.seed = goldenSeed(2);
      c.policy.paradigm = Paradigm::kIps;
      c.policy.ips = policies[i];
      d[i] = runOnce(c, model, streams).mean_delay_us;
    }
    return std::array<double, 3>{d[0], d[1], d[2]};
  };

  const auto legacy = delays(ExecTimeModel::standard());
  const auto modern = delays(modernModel());

  // Ordering survives on the modern machine.
  EXPECT_LT(modern[1], modern[2]) << "MRU must still beat Wired at light load";
  EXPECT_LT(modern[2], modern[0]) << "Wired must still beat Random at light load";
  // ...but the relative concentration win over Random narrows vs 1995.
  const double legacy_win = (legacy[0] - legacy[1]) / legacy[0];
  const double modern_win = (modern[0] - modern[1]) / modern[0];
  EXPECT_LT(modern_win, 0.5 * legacy_win)
      << "shared LLC must erode most of the code-warmth concentration win";
  golden::expectPinned("llc-fig8", modern[0], 227.1, "Random delay at 1k");
  golden::expectPinned("llc-fig8", modern[1], 220.2, "MRU delay at 1k");
  golden::expectPinned("llc-fig8", modern[2], 224.7, "Wired delay at 1k");
}

// Figure 9 rerun: IPS's capacity advantage survives (still > 1.2x), and the
// shared LLC lifts Locking's capacity (its migrations got cheaper) while
// leaving wired IPS — which never migrates — essentially unchanged.
TEST(GoldenLlc, Fig9IpsCapacityAdvantageSurvives) {
  const auto make = [](double rate) { return makePoissonStreams(16, rate); };

  SimConfig locking = goldenConfig();
  locking.policy.paradigm = Paradigm::kLocking;
  locking.policy.locking = LockingPolicy::kMru;
  locking.measure_us = 800'000.0;
  SimConfig ips = locking;
  ips.policy.paradigm = Paradigm::kIps;
  ips.policy.ips = IpsPolicy::kWired;

  const double l95 =
      findMaxRate(locking, ExecTimeModel::standard(), make, 0.002, 0.08, 1000.0, 10)
          .max_rate_per_us * 1e6;
  const double l20 =
      findMaxRate(locking, modernModel(), make, 0.002, 0.08, 1000.0, 10).max_rate_per_us * 1e6;
  const double i20 =
      findMaxRate(ips, modernModel(), make, 0.002, 0.08, 1000.0, 10).max_rate_per_us * 1e6;

  EXPECT_GT(i20 / l20, 1.2) << "IPS must still out-scale Locking on the shared-LLC machine";
  EXPECT_GT(l20, l95) << "shared LLC must lift Locking capacity";
  golden::expectPinned("llc-fig9-capacity", l20, 42'371.1, "Locking capacity");
  golden::expectPinned("llc-fig9-capacity", i20, 54'787.1, "IPS capacity");
}

// Figure 12 rerun: the burstiness crossover survives unchanged in character
// — it is a queueing (load-imbalance) phenomenon, not a cache one, so the
// LLC cannot rescue wired IPS from burst pile-up.
TEST(GoldenLlc, Fig12BurstinessCrossoverSurvives) {
  const ExecTimeModel& model = modernModel();

  const auto run_pair = [&](double batch, std::uint64_t idx) {
    const auto streams = makeBatchStreams(16, 0.012, batch, false);
    SimConfig lc = goldenConfig();
    lc.policy.paradigm = Paradigm::kLocking;
    lc.policy.locking = LockingPolicy::kMru;
    SimConfig ic = goldenConfig();
    ic.policy.paradigm = Paradigm::kIps;
    ic.policy.ips = IpsPolicy::kWired;
    lc.seed = ic.seed = goldenSeed(idx);
    const double l = runOnce(lc, model, streams).mean_delay_us;
    const double i = runOnce(ic, model, streams).mean_delay_us;
    return std::pair{l, i};
  };

  const auto [l1, i1] = run_pair(1.0, 0);
  EXPECT_LT(i1, l1) << "IPS must still win at batch size 1";
  golden::expectPinned("llc-fig12", l1, 213.6, "Locking delay at batch 1");
  golden::expectPinned("llc-fig12", i1, 209.4, "IPS delay at batch 1");

  const auto [l8, i8] = run_pair(8.0, 3);
  EXPECT_GT(i8 / l8, 2.0) << "IPS must still be >= 2x worse at batch size 8";
  golden::expectPinned("llc-fig12", l8, 296.5, "Locking delay at batch 8");
  golden::expectPinned("llc-fig12", i8, 831.5, "IPS delay at batch 8");
}

// Full-length differential battery (quick tier runs the same machinery
// downsampled — rd_model_test.cpp).
TEST(GoldenLlc, FullLengthDifferentialBattery) {
  rd_diff::runDifferentialBattery(AFF_SOURCE_ROOT, 512);
}

}  // namespace
}  // namespace affinity
