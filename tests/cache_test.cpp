// Tests for src/cache: the SST footprint power law, set-occupancy flush
// fractions, per-level flush model, and the reload-transient execution-time
// model — including the paper's headline numbers (t_cold = 284.3 µs, L2
// flushed much more slowly than L1).
#include <gtest/gtest.h>

#include <cmath>

#include "cache/exec_time.hpp"
#include "cache/flush.hpp"
#include "cache/footprint.hpp"
#include "cache/machine.hpp"
#include "util/rng.hpp"

namespace affinity {
namespace {

// ------------------------------------------------------------ geometry ----

TEST(Machine, ChallengeGeometry) {
  const MachineParams m = MachineParams::sgiChallenge();
  EXPECT_EQ(m.l1d.sets(), 16u * 1024 / 32);
  EXPECT_EQ(m.l2.sets(), 1024u * 1024 / 128);
  EXPECT_EQ(m.l1i.lines(), 512u);
  EXPECT_DOUBLE_EQ(m.refsPerMicrosecond(), 20.0);  // 100 MHz / 5 cycles/ref
}

// ------------------------------------------------------------ footprint ---

class FootprintMonotone : public ::testing::TestWithParam<double> {};

TEST_P(FootprintMonotone, NondecreasingInRefs) {
  const SstParams p = SstParams::mvsWorkload();
  const double line = GetParam();
  double prev = 0.0;
  for (double refs = 10.0; refs <= 1e9; refs *= 3.7) {
    const double u = uniqueLines(p, refs, line);
    EXPECT_GE(u, prev) << "refs=" << refs << " L=" << line;
    EXPECT_LE(u, refs) << "u cannot exceed the reference count";
    prev = u;
  }
}

INSTANTIATE_TEST_SUITE_P(Lines, FootprintMonotone, ::testing::Values(16.0, 32.0, 64.0, 128.0));

TEST(Footprint, LargerLinesTouchFewerUniqueLines) {
  const SstParams p = SstParams::mvsWorkload();
  const double refs = 1e6;
  EXPECT_GT(uniqueLines(p, refs, 16.0), uniqueLines(p, refs, 32.0));
  EXPECT_GT(uniqueLines(p, refs, 32.0), uniqueLines(p, refs, 128.0));
}

TEST(Footprint, ZeroAndTinyRefs) {
  const SstParams p = SstParams::mvsWorkload();
  EXPECT_DOUBLE_EQ(uniqueLines(p, 0.0, 32.0), 0.0);
  EXPECT_DOUBLE_EQ(uniqueLines(p, 0.5, 32.0), 0.5);  // clamped at refs
}

TEST(Footprint, SpatialLocalityIsSubLinear) {
  // Doubling the line size should reduce unique lines by less than 2x
  // (consecutive references share lines but not perfectly).
  const SstParams p = SstParams::mvsWorkload();
  const double u32 = uniqueLines(p, 1e6, 32.0);
  const double u64 = uniqueLines(p, 1e6, 64.0);
  EXPECT_GT(u64, u32 / 2.0);
  EXPECT_LT(u64, u32);
}

TEST(Footprint, InverseRecoversRefs) {
  const SstParams p = SstParams::mvsWorkload();
  const double refs = 5e5;
  const double u = uniqueLines(p, refs, 32.0);
  EXPECT_NEAR(refsForUniqueLines(p, u, 32.0), refs, refs * 1e-3);
}

// ---------------------------------------------------------- displacement --

TEST(FractionDisplaced, DirectMappedClosedForm) {
  // u interfering lines into S sets, A=1: F = 1 - (1-1/S)^u.
  const double S = 512.0;
  for (double u : {1.0, 50.0, 512.0, 5000.0}) {
    const double expected = 1.0 - std::pow(1.0 - 1.0 / S, u);
    EXPECT_NEAR(fractionDisplaced(u, S, 1), expected, 1e-12);
  }
}

TEST(FractionDisplaced, BoundsAndMonotone) {
  double prev = 0.0;
  for (double u = 0.0; u < 1e5; u = u * 2 + 1) {
    const double f = fractionDisplaced(u, 512.0, 1);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(fractionDisplaced(0.0, 512.0, 1), 0.0);
}

TEST(FractionDisplaced, AssociativityApproachesFullyAssociativeLimit) {
  // At fixed total line count, higher associativity wastes fewer interfering
  // lines on collisions with each other, so the displaced fraction grows
  // with A toward the fully-associative limit u / total_lines.
  const double u = 400.0, S = 512.0;
  const double f1 = fractionDisplaced(u, S, 1);
  const double f2 = fractionDisplaced(u, S / 2, 2);  // same total lines
  const double f8 = fractionDisplaced(u, S / 8, 8);
  EXPECT_LT(f1, f2);
  EXPECT_LT(f2, f8);
  EXPECT_LE(f8, u / S + 0.02);
}

// -------------------------------------------------------------- flush -----

TEST(FlushModel, L2FlushesMuchMoreSlowlyThanL1) {
  // The paper's Figure 4 observation.
  const FlushModel fm(MachineParams::sgiChallenge(), SstParams::mvsWorkload());
  for (double x : {100.0, 1000.0, 10000.0}) {
    EXPECT_GT(fm.f1(x), 4.0 * fm.f2(x)) << "x=" << x;
  }
  // L1 is mostly flushed within a few ms; L2 needs ~1 s.
  EXPECT_GT(fm.f1(5000.0), 0.95);
  EXPECT_LT(fm.f2(5000.0), 0.3);
  EXPECT_GT(fm.f2(1e6), 0.9);
}

TEST(FlushModel, MonotoneNondecreasingInTime) {
  const FlushModel fm(MachineParams::sgiChallenge(), SstParams::mvsWorkload());
  double p1 = 0.0, p2 = 0.0;
  for (double x = 1.0; x < 1e7; x *= 2.3) {
    const double f1 = fm.f1(x), f2 = fm.f2(x);
    EXPECT_GE(f1, p1);
    EXPECT_GE(f2, p2);
    p1 = f1;
    p2 = f2;
  }
}

TEST(FlushModel, ZeroAtZeroGap) {
  const FlushModel fm(MachineParams::sgiChallenge(), SstParams::mvsWorkload());
  EXPECT_DOUBLE_EQ(fm.f1(0.0), 0.0);
  EXPECT_DOUBLE_EQ(fm.f2(0.0), 0.0);
}

// ------------------------------------------------------------ exec time ---

TEST(ExecTime, PaperColdTime) {
  const ReloadParams r = ReloadParams::measuredUdpReceive();
  EXPECT_NEAR(r.tCold(), 284.3, 0.05);  // the paper's measured value
}

TEST(ExecTime, WarmAndColdEndpoints) {
  const auto m = ExecTimeModel::standard();
  EXPECT_DOUBLE_EQ(m.serviceTime({0.0, 0.0, 0.0}), m.tWarm());
  EXPECT_NEAR(m.serviceTime({kColdAge, kColdAge, kColdAge}), m.tCold(), 1e-9);
}

TEST(ExecTime, MonotoneInEveryComponentAge) {
  const auto m = ExecTimeModel::standard();
  double prev = 0.0;
  for (double x = 0.0; x < 1e6; x = x * 2 + 1) {
    const double t = m.serviceTime({x, 0.0, 0.0});
    EXPECT_GE(t, prev);
    prev = t;
  }
  // Stream-component cold costs its per-level shares of the transients.
  const double stream_cold = m.serviceTime({0.0, 0.0, kColdAge});
  const double expected = m.tWarm() + m.shares().l1_stream * m.reloadParams().dl1_us +
                          m.shares().l2_stream * m.reloadParams().dl2_us;
  EXPECT_NEAR(stream_cold, expected, 1e-9);
}

TEST(ExecTime, BoundsHoldForRandomAges) {
  const auto m = ExecTimeModel::standard();
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    CacheStateAges ages;
    ages.code = rng.bernoulli(0.2) ? kColdAge : rng.uniform(0.0, 1e6);
    ages.shared = rng.bernoulli(0.2) ? kColdAge : rng.uniform(0.0, 1e6);
    ages.stream = rng.bernoulli(0.2) ? kColdAge : rng.uniform(0.0, 1e6);
    const double t = m.serviceTime(ages);
    EXPECT_GE(t, m.tWarm());
    EXPECT_LE(t, m.tCold() + 1e-9);
  }
}

TEST(ExecTime, InvalidSharesRejected) {
  FootprintShares bad;
  bad.l1_code = 0.9;
  bad.l1_shared = 0.9;
  bad.l1_stream = 0.9;
  EXPECT_FALSE(bad.valid());
  EXPECT_DEATH(ExecTimeModel(FlushModel(MachineParams::sgiChallenge(), SstParams::mvsWorkload()),
                             ReloadParams::measuredUdpReceive(), bad),
               "CHECK failed");
}

TEST(ExecTime, SendSideIsCheaper) {
  const ReloadParams recv = ReloadParams::measuredUdpReceive();
  const ReloadParams send = ReloadParams::measuredUdpSend();
  EXPECT_LT(send.t_warm_us, recv.t_warm_us);
  EXPECT_LT(send.tCold(), recv.tCold());
}

}  // namespace
}  // namespace affinity
