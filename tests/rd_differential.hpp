// rd_differential.hpp — shared machinery for the RD-model differential
// battery: build one packet trace per shipped scenario, replay it through
// the trace cachesim (ground truth) and through the RD capture +
// RdCacheModel (prediction), and require per-level global miss ratios to
// agree. rd_model_test runs it downsampled in the quick tier;
// golden_llc_test repeats it full-length in the soak tier.
//
// Tolerance: kRdDiffTolAbs = 0.015 absolute per level. Measured agreement
// on the shipped scenarios is within ±0.005 (the L2/LLC predictions are
// exact to ~1e-3); the headroom absorbs trace-generator evolution without
// letting a real model break slip through (a wrong conversion is off by
// 10x this — see the set-conflict note in cache/reuse.cpp).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/reuse.hpp"
#include "cachesim/hierarchy.hpp"
#include "cachesim/rd_capture.hpp"
#include "cachesim/shared_llc.hpp"
#include "core/scenario.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace affinity::rd_diff {

inline constexpr double kRdDiffTolAbs = 0.015;  // per-level |model - sim|

struct LevelRatios {
  double l1i = 0.0, l1d = 0.0, l2 = 0.0, llc = 0.0;
  bool has_llc = false;
};

/// Ground truth: replay the trace through the trace-driven simulator.
inline LevelRatios simulateTrace(const MachineParams& m, const std::vector<MemRef>& trace) {
  LevelRatios r;
  const double total = static_cast<double>(trace.size());
  if (m.llc.size_bytes == 0) {
    Hierarchy h(m);
    for (const MemRef& ref : trace) h.access(ref.addr, ref.kind);
    r.l1i = static_cast<double>(h.l1i().stats().misses) / total;
    r.l1d = static_cast<double>(h.l1d().stats().misses) / total;
    r.l2 = static_cast<double>(h.l2().stats().misses) / total;
  } else {
    SharedLlcSystem sys(m, 1);
    for (const MemRef& ref : trace) sys.access(0, ref.addr, ref.kind);
    r.l1i = static_cast<double>(sys.hierarchy(0).l1i().stats().misses) / total;
    r.l1d = static_cast<double>(sys.hierarchy(0).l1d().stats().misses) / total;
    r.l2 = static_cast<double>(sys.hierarchy(0).l2().stats().misses) / total;
    r.llc = static_cast<double>(sys.llcMisses(0)) / total;
    r.has_llc = true;
  }
  return r;
}

/// Prediction: capture an RD profile from the *same* trace and convert.
inline LevelRatios predictFromTrace(const MachineParams& m, const std::string& name,
                                    const std::vector<MemRef>& trace, const RdProfile& bg) {
  const RdProfile prof = captureFromTrace(m, name, trace);
  const RdCacheModel model(m, prof, bg, 1, 0.5);
  LevelRatios r;
  r.l1i = model.l1iGlobalMissRatio();
  r.l1d = model.l1dGlobalMissRatio();
  r.l2 = model.l2GlobalMissRatio();
  if (m.llc.size_bytes != 0) {
    r.llc = model.llcGlobalMissRatio();
    r.has_llc = true;
  }
  return r;
}

/// One scenario's differential check; `packets` controls the trace length.
inline void expectScenarioAgrees(const ConfigFile& cfg, const std::string& label,
                                 unsigned packets) {
  const bool modern = cfg.getString("cache.topology", "sgi-challenge") == "modern-llc";
  const MachineParams m = modern ? MachineParams::modern2020() : MachineParams::sgiChallenge();
  const auto streams =
      std::min<unsigned>(32, std::max(1, static_cast<int>(cfg.getInt("workload.streams", 16))));
  const auto seed = static_cast<std::uint64_t>(cfg.getInt("run.seed", 1));

  // Round-robin packet interleave across the scenario's streams. The exact
  // interleaving is immaterial to the differential: both sides consume the
  // identical reference stream.
  const ProtocolTraceGenerator gen(ProtocolLayout::standard(), ProtocolTraceParams{});
  Rng rng(seed);
  std::vector<MemRef> trace;
  for (unsigned p = 0; p < packets; ++p) gen.receivePacket(p % streams, p, rng, trace);
  ASSERT_FALSE(trace.empty());

  const RdProfile bg = captureBackgroundRdProfile(m, 100'000, seed + 1);
  const LevelRatios sim = simulateTrace(m, trace);
  const LevelRatios rd = predictFromTrace(m, label, trace, bg);

  EXPECT_NEAR(rd.l1i, sim.l1i, kRdDiffTolAbs) << label << " L1I";
  EXPECT_NEAR(rd.l1d, sim.l1d, kRdDiffTolAbs) << label << " L1D";
  EXPECT_NEAR(rd.l2, sim.l2, kRdDiffTolAbs) << label << " L2";
  EXPECT_EQ(rd.has_llc, sim.has_llc) << label;
  if (sim.has_llc) EXPECT_NEAR(rd.llc, sim.llc, kRdDiffTolAbs) << label << " LLC";
}

/// Runs the battery over every scenarios/*.ini with a coverage assertion
/// that no scenario was silently skipped.
inline void runDifferentialBattery(const std::string& source_root, unsigned packets) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(fs::path(source_root) / "scenarios"))
    if (entry.path().extension() == ".ini") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 9u) << "shipped scenario set shrank";

  std::size_t covered = 0;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::string error;
    const auto cfg = ConfigFile::load(path.string(), &error);
    ASSERT_TRUE(cfg.has_value()) << error;
    // Every shipped scenario must still build under the [cache] seam.
    ASSERT_TRUE(buildScenario(*cfg, &error).has_value()) << error;
    expectScenarioAgrees(*cfg, path.filename().string(), packets);
    ++covered;
  }
  // Coverage: no scenario silently skipped.
  EXPECT_EQ(covered, files.size());
}

}  // namespace affinity::rd_diff
