// Tests for src/sim: event ordering, FIFO tie-breaks, cancellation,
// horizons, and re-entrant scheduling.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace affinity {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30.0, [&] { order.push_back(3); });
  sim.schedule(10.0, [&] { order.push_back(1); });
  sim.schedule(20.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.runAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(5.0, [&order, i] { order.push_back(i); });
  sim.runAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesDuringExecution) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(42.0, [&] { seen = sim.now(); });
  sim.runAll();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Simulator, ReentrantSchedulingFromCallback) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.scheduleAfter(1.0, chain);
  };
  sim.schedule(0.0, chain);
  sim.runAll();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule(10.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // second cancel fails
  sim.runAll();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executedCount(), 0u);
}

TEST(Simulator, CancelAfterRunFails) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  sim.runAll();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelInertHandleFails) {
  Simulator sim;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, RunUntilRespectsHorizon) {
  Simulator sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0})
    sim.schedule(t, [&times, &sim] { times.push_back(sim.now()); });
  EXPECT_EQ(sim.runUntil(3.0), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pendingCount(), 2u);
  EXPECT_EQ(sim.runUntil(10.0), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock reaches the horizon
}

TEST(Simulator, RunUntilOnEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.runUntil(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, EventAtExactHorizonRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule(5.0, [&] { ran = true; });
  sim.runUntil(5.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, PendingCountTracksCancellations) {
  Simulator sim;
  auto h1 = sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  EXPECT_EQ(sim.pendingCount(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pendingCount(), 1u);
  sim.runAll();
  EXPECT_EQ(sim.pendingCount(), 0u);
  EXPECT_EQ(sim.executedCount(), 1u);
}

TEST(Simulator, SchedulingInPastAborts) {
  Simulator sim;
  sim.schedule(10.0, [] {});
  sim.runAll();
  EXPECT_DEATH(sim.schedule(5.0, [] {}), "CHECK failed");
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Rng rng(21);
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule(rng.uniform(0.0, 1000.0), [&] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.runAll();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executedCount(), 10000u);
}

}  // namespace
}  // namespace affinity
