// Tests for src/sim: event ordering, FIFO tie-breaks, cancellation,
// horizons, and re-entrant scheduling.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace affinity {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30.0, [&] { order.push_back(3); });
  sim.schedule(10.0, [&] { order.push_back(1); });
  sim.schedule(20.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.runAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(5.0, [&order, i] { order.push_back(i); });
  sim.runAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesDuringExecution) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(42.0, [&] { seen = sim.now(); });
  sim.runAll();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Simulator, ReentrantSchedulingFromCallback) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.scheduleAfter(1.0, chain);
  };
  sim.schedule(0.0, chain);
  sim.runAll();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule(10.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // second cancel fails
  sim.runAll();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executedCount(), 0u);
}

TEST(Simulator, CancelAfterRunFails) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  sim.runAll();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelInertHandleFails) {
  Simulator sim;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, RunUntilRespectsHorizon) {
  Simulator sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0})
    sim.schedule(t, [&times, &sim] { times.push_back(sim.now()); });
  EXPECT_EQ(sim.runUntil(3.0), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pendingCount(), 2u);
  EXPECT_EQ(sim.runUntil(10.0), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock reaches the horizon
}

TEST(Simulator, RunUntilOnEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.runUntil(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, EventAtExactHorizonRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule(5.0, [&] { ran = true; });
  sim.runUntil(5.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, PendingCountTracksCancellations) {
  Simulator sim;
  auto h1 = sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  EXPECT_EQ(sim.pendingCount(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pendingCount(), 1u);
  sim.runAll();
  EXPECT_EQ(sim.pendingCount(), 0u);
  EXPECT_EQ(sim.executedCount(), 1u);
}

TEST(Simulator, SchedulingInPastAborts) {
  Simulator sim;
  sim.schedule(10.0, [] {});
  sim.runAll();
  EXPECT_DEATH(sim.schedule(5.0, [] {}), "CHECK failed");
}

TEST(Simulator, StaleHandleAfterSlotReuseFails) {
  // h1's slot is recycled by h2; the generation stamp must keep the stale
  // handle from cancelling the new occupant.
  Simulator sim;
  bool a = false;
  bool b = false;
  EventHandle h1 = sim.schedule(5.0, [&] { a = true; });
  EXPECT_TRUE(sim.cancel(h1));
  EventHandle h2 = sim.schedule(6.0, [&] { b = true; });
  EXPECT_FALSE(sim.cancel(h1));  // stale generation
  sim.runAll();
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
  EXPECT_FALSE(sim.cancel(h2));  // already ran
}

TEST(Simulator, CancelSelfFromOwnCallbackFails) {
  // By the time a callback runs, its event is no longer pending.
  Simulator sim;
  EventHandle h;
  bool self_cancel = true;
  h = sim.schedule(1.0, [&] { self_cancel = sim.cancel(h); });
  sim.runAll();
  EXPECT_FALSE(self_cancel);
}

TEST(Simulator, CancelOtherEventFromCallback) {
  Simulator sim;
  bool victim_ran = false;
  EventHandle victim = sim.schedule(10.0, [&] { victim_ran = true; });
  bool cancel_ok = false;
  sim.schedule(5.0, [&] { cancel_ok = sim.cancel(victim); });
  sim.runAll();
  EXPECT_TRUE(cancel_ok);
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(sim.executedCount(), 1u);
}

TEST(Simulator, SparseFarApartEventsStayOrdered) {
  // Events many calendar "years" apart exercise the empty-rotation path
  // (cursor jump / retune) without scanning every intermediate window.
  Simulator sim;
  std::vector<double> seen;
  for (double t : {2.0e6, 1.0, 3.0e9, 1.0e6, 7.5})
    sim.schedule(t, [&seen, &sim] { seen.push_back(sim.now()); });
  EXPECT_EQ(sim.runAll(), 5u);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 7.5, 1.0e6, 2.0e6, 3.0e9}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0e9);
}

TEST(Simulator, OversizedCaptureRunsAndCancels) {
  // A capture too big for EventCallback's inline buffer takes the pooled
  // heap path; both the invoke and the cancel (destroy) sides must work.
  Simulator sim;
  std::array<double, 16> big{};
  big.fill(1.0);
  double sum = 0.0;
  sim.schedule(1.0, [big, &sum] {
    for (double v : big) sum += v;
  });
  EventHandle doomed = sim.schedule(2.0, [big, &sum] {
    for (double v : big) sum += 100.0 * v;
  });
  EXPECT_TRUE(sim.cancel(doomed));
  sim.runAll();
  EXPECT_DOUBLE_EQ(sum, 16.0);
}

TEST(Simulator, CancellationChurnStress) {
  // Retransmit-timer style churn: interleaved schedule / cancel / runUntil
  // with random victims (some already ran, some already cancelled). Every
  // event must either run or be cancelled, exactly once.
  Simulator sim;
  Rng rng(77);
  struct Rec {
    EventHandle h;
    std::size_t id;
    bool cancelled = false;
  };
  std::vector<Rec> recs;
  std::vector<char> ran;
  for (int round = 0; round < 200; ++round) {
    for (int k = 0; k < 20; ++k) {
      const std::size_t id = ran.size();
      ran.push_back(0);
      recs.push_back({sim.scheduleAfter(rng.uniform(0.0, 50.0), [&ran, id] { ran[id] = 1; }),
                      id, false});
    }
    for (int k = 0; k < 8; ++k) {
      Rec& r = recs[rng.uniform_u64(recs.size())];
      if (sim.cancel(r.h)) {
        EXPECT_FALSE(r.cancelled);         // a pending event can't be cancelled twice
        EXPECT_EQ(ran[r.id], 0);           // a cancelled event hasn't run
        r.cancelled = true;
      }
    }
    sim.runUntil(sim.now() + rng.uniform(0.0, 30.0));
  }
  sim.runAll();
  EXPECT_EQ(sim.pendingCount(), 0u);
  std::size_t cancelled = 0;
  for (const Rec& r : recs) {
    EXPECT_NE(ran[r.id] != 0, r.cancelled);  // ran XOR cancelled
    EXPECT_FALSE(sim.cancel(r.h));           // every handle is now dead
    cancelled += r.cancelled ? 1 : 0;
  }
  EXPECT_EQ(sim.executedCount(), recs.size() - cancelled);
  EXPECT_GT(cancelled, 0u);
  EXPECT_LT(cancelled, recs.size());
}

// --- batched-admission edge cases -----------------------------------------
//
// schedule() stages events in a small buffer (flushed at 64, or before any
// dequeue); these tests straddle that boundary on purpose: ties that span
// staged and admitted cohorts, cancels that hit the staging buffer, and
// calendar-year rollover with a cohort still staged.

TEST(Simulator, SameTimestampOrderStableAcrossAdmissionBatches) {
  // 200 events at one timestamp crosses the flush threshold (64) three
  // times, so the tie cohort is split across staged and admitted storage;
  // FIFO order must still be exactly schedule order.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) sim.schedule(5.0, [&order, i] { order.push_back(i); });
  sim.runAll();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, SameTimestampInterleavedWithEarlierEventStaysStable) {
  // An earlier event forces a flush + dequeue while a same-time cohort is
  // only partially staged; later same-time schedules (from inside a
  // callback, admission-wise "fresh") must still run after earlier ones.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(20.0, [&order, i] { order.push_back(i); });
  sim.schedule(1.0, [&] {
    for (int i = 10; i < 20; ++i) sim.schedule(20.0, [&order, i] { order.push_back(i); });
  });
  sim.runAll();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CancelStagedEventBeforeAdmission) {
  // Cancel fires while the event still sits in the staging buffer (no
  // dequeue has happened since schedule), exercising the sentinel-bucket
  // swap-remove path; the handle then stays dead.
  Simulator sim;
  bool ran_a = false;
  bool ran_b = false;
  bool ran_c = false;
  sim.schedule(10.0, [&] { ran_a = true; });
  EventHandle staged = sim.schedule(10.0, [&] { ran_b = true; });
  sim.schedule(10.0, [&] { ran_c = true; });
  EXPECT_TRUE(sim.cancel(staged));
  EXPECT_FALSE(sim.cancel(staged));  // second cancel: already gone
  EXPECT_EQ(sim.pendingCount(), 2u);
  EXPECT_EQ(sim.runAll(), 2u);
  EXPECT_TRUE(ran_a);
  EXPECT_FALSE(ran_b);
  EXPECT_TRUE(ran_c);
}

TEST(Simulator, CancelStagedMiddleOfBatchKeepsCohortOrder) {
  // Swap-remove inside the staging buffer moves the *last* staged entry
  // into the cancelled hole; execution order must still follow seq, not
  // staging position.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 32; ++i)
    handles.push_back(sim.schedule(5.0, [&order, i] { order.push_back(i); }));
  for (int i = 1; i < 32; i += 2) EXPECT_TRUE(sim.cancel(handles[i]));
  sim.runAll();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], 2 * i);
}

TEST(Simulator, EpochRolloverWithStagedCohort) {
  // Events far enough apart that the calendar's year (bucket ring ×
  // width) must roll over repeatedly, scheduled in bursts so whole cohorts
  // are staged together while the cursor sits in a much earlier year.
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  std::uint64_t executed_in_order = 0;
  const auto probe = [&] {
    if (sim.now() < last) monotone = false;
    last = sim.now();
    ++executed_in_order;
  };
  // Burst 1: a dense cluster near t=0 (fills the initial 16-bucket ring).
  for (int i = 0; i < 48; ++i) sim.schedule(0.5 * i, probe);
  // Burst 2: same-size cohort many "years" out, staged in one batch.
  for (int i = 0; i < 48; ++i) sim.schedule(100'000.0 + 0.25 * i, probe);
  // Burst 3: between the two, scheduled after — admission order ≠ time order.
  for (int i = 0; i < 48; ++i) sim.schedule(5'000.0 + 1.0 * i, probe);
  sim.runAll();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(executed_in_order, 144u);
  EXPECT_DOUBLE_EQ(sim.now(), 100'000.0 + 0.25 * 47);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Rng rng(21);
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule(rng.uniform(0.0, 1000.0), [&] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.runAll();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executedCount(), 10000u);
}

}  // namespace
}  // namespace affinity
