// rd_model_test — the reuse-distance cache model validated differentially
// against the trace-driven cachesim (ROADMAP item 4).
//
// Three batteries:
//
//  1. Exact micro-trace properties of the RD histogram capture: cyclic
//     single-stream and interleaved traces have closed-form stack
//     distances, a streaming scan has none, and the hit curve must be
//     monotone. These hold exactly (the first 64 distances are exact bins).
//  2. Profile determinism: byte-identical serialization for identical
//     captures, round-trips, and independence from the SweepRunner worker
//     count that produced them.
//  3. The differential battery: for EVERY shipped scenarios/*.ini, build
//     one packet trace, feed the identical trace to the cachesim hierarchy
//     (ground truth) and to the RD capture + RdCacheModel (prediction), and
//     require per-level global miss ratios (misses / total references) to
//     agree within kDiffTolAbs. A coverage counter asserts no scenario is
//     silently skipped. This is the quick-tier (downsampled) run; the
//     full-length replay lives in golden_llc_test (soak tier).
//
// The per-level tolerance (and why it is honest) is documented in
// rd_differential.hpp next to the machinery both tiers share.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "rd_differential.hpp"

#include "cache/reuse.hpp"
#include "cachesim/rd_capture.hpp"
#include "core/scenario.hpp"
#include "core/sweep_runner.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace affinity {
namespace {

// ------------------------------------------------- histogram properties --

// Feeds K cyclically repeated lines through an RdMonitor-backed histogram.
RdHistogram cyclicHistogram(std::uint64_t lines, unsigned rounds) {
  RdHistogram h;
  RdMonitor mon(32, &h, nullptr);
  for (unsigned r = 0; r < rounds; ++r)
    for (std::uint64_t l = 0; l < lines; ++l) mon.observe(l * 32);
  return h;
}

TEST(RdHistogram, CyclicSingleStreamExact) {
  // 0,1,...,15 repeated: every re-access has exactly 15 distinct lines in
  // between, so RD = 15 for all (N-1)*16 reuses and 16 compulsory misses.
  const unsigned kRounds = 10;
  const RdHistogram h = cyclicHistogram(16, kRounds);
  EXPECT_EQ(h.total(), 16u * kRounds);
  EXPECT_EQ(h.cold(), 16u);
  EXPECT_EQ(h.finite(), 16u * (kRounds - 1));
  // Capacity 16 lines holds the loop: only the colds miss.
  EXPECT_DOUBLE_EQ(h.hitsFullyAssoc(16.0), 16.0 * (kRounds - 1));
  EXPECT_DOUBLE_EQ(h.missRatioFullyAssoc(16.0), 1.0 / kRounds);
  // Capacity 15 lines misses everything (LRU evicts the line just before
  // its reuse).
  EXPECT_DOUBLE_EQ(h.hitsFullyAssoc(15.0), 0.0);
  EXPECT_DOUBLE_EQ(h.missRatioFullyAssoc(15.0), 1.0);
}

TEST(RdHistogram, TwoInterleavedStreamsExact) {
  // A0 B0 A1 B1 ... over two 16-line cyclic streams: each re-access now has
  // 31 distinct lines in between (its own 15 plus the other stream's 16).
  RdHistogram h;
  RdMonitor mon(32, &h, nullptr);
  const unsigned kRounds = 8;
  for (unsigned r = 0; r < kRounds; ++r)
    for (std::uint64_t l = 0; l < 16; ++l) {
      mon.observe(l * 32);                  // stream A
      mon.observe((1u << 20) + l * 32);     // stream B
    }
  EXPECT_EQ(h.total(), 2u * 16u * kRounds);
  EXPECT_EQ(h.cold(), 32u);
  EXPECT_DOUBLE_EQ(h.missRatioFullyAssoc(32.0), 1.0 / kRounds);
  EXPECT_DOUBLE_EQ(h.missRatioFullyAssoc(31.0), 1.0);
  // Interleaving doubled every distance relative to the isolated stream —
  // the capacity that sufficed alone no longer does.
  EXPECT_DOUBLE_EQ(cyclicHistogram(16, kRounds).missRatioFullyAssoc(16.0), 1.0 / kRounds);
  EXPECT_DOUBLE_EQ(h.missRatioFullyAssoc(16.0), 1.0);
}

TEST(RdHistogram, StreamingScanAllCold) {
  // A pure streaming scan re-references nothing: every access is cold and
  // no finite capacity helps.
  RdHistogram h;
  FootprintCurve fp;
  RdMonitor mon(32, &h, &fp);
  const std::uint64_t kN = 4096;
  for (std::uint64_t l = 0; l < kN; ++l) mon.observe(l * 32);
  mon.finish();
  EXPECT_EQ(h.total(), kN);
  EXPECT_EQ(h.cold(), kN);
  EXPECT_EQ(h.finite(), 0u);
  for (double c : {1.0, 64.0, 1e4, 1e9}) EXPECT_DOUBLE_EQ(h.missRatioFullyAssoc(c), 1.0);
  EXPECT_EQ(mon.distinctLines(), kN);
  // u(n) = n for a scan; the checkpoints interpolate a linear function.
  EXPECT_NEAR(fp.lines(1000.0), 1000.0, 1e-6);
  EXPECT_EQ(fp.capLines(), kN);
}

TEST(RdHistogram, MissCurveMonotoneNonIncreasing) {
  // Random distances spanning exact bins, geometric buckets, and colds.
  RdHistogram h;
  Rng rng(2026);
  for (int i = 0; i < 50'000; ++i) {
    if (rng.uniform() < 0.05) {
      h.addCold();
    } else {
      h.add(rng.uniform_u64(1u << 20));
    }
  }
  double prev = 1.0;
  for (double c = 1.0; c < 4e6; c *= 1.17) {
    const double mr = h.missRatioFullyAssoc(c);
    EXPECT_LE(mr, prev + 1e-12) << "capacity " << c;
    EXPECT_GE(mr, 0.0);
    EXPECT_LE(mr, 1.0);
    prev = mr;
  }
  // Colds never hit: the floor is the cold fraction.
  EXPECT_NEAR(prev, static_cast<double>(h.cold()) / static_cast<double>(h.total()), 1e-9);
}

TEST(RdHistogram, SerializeRoundTrip) {
  RdHistogram h;
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) h.add(rng.uniform_u64(1u << 16));
  for (int i = 0; i < 37; ++i) h.addCold();
  std::string s;
  h.serialize(&s);
  RdHistogram back;
  ASSERT_TRUE(back.deserialize(s));
  std::string s2;
  back.serialize(&s2);
  EXPECT_EQ(s, s2);
  EXPECT_EQ(back.total(), h.total());
  EXPECT_EQ(back.cold(), h.cold());
}

// -------------------------------------------------- occupancy solver -----

TEST(RdOccupancy, SymmetricStreamsSplitEqually) {
  // Two identical streaming footprints bigger than the cache: equal rates
  // must get equal shares summing to the capacity.
  FootprintCurve fp;
  for (std::uint64_t n = 64; n <= 1u << 20; n *= 2) fp.addSample(n, n / 2);
  fp.setCap(1u << 19);
  const std::vector<const FootprintCurve*> fps = {&fp, &fp};
  const auto occ = RdCacheModel::solveOccupancy(10'000.0, fps, {20.0, 20.0});
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_NEAR(occ[0], occ[1], 1e-6);
  EXPECT_NEAR(occ[0] + occ[1], 10'000.0, 10.0);
}

TEST(RdOccupancy, EverythingFitsKeepsFullFootprints) {
  FootprintCurve small;
  for (std::uint64_t n = 64; n <= 1u << 14; n *= 2) small.addSample(n, std::min<std::uint64_t>(n, 500));
  small.setCap(500);
  const std::vector<const FootprintCurve*> fps = {&small, &small, &small};
  const auto occ = RdCacheModel::solveOccupancy(1e6, fps, {10.0, 10.0, 10.0});
  for (double c : occ) EXPECT_NEAR(c, 500.0, 1e-6);
}

TEST(RdOccupancy, FasterStreamGetsLargerShare) {
  FootprintCurve fp;
  for (std::uint64_t n = 64; n <= 1u << 20; n *= 2) fp.addSample(n, n / 2);
  fp.setCap(1u << 19);
  const std::vector<const FootprintCurve*> fps = {&fp, &fp};
  const auto occ = RdCacheModel::solveOccupancy(10'000.0, fps, {30.0, 10.0});
  EXPECT_GT(occ[0], occ[1]);
  EXPECT_NEAR(occ[0] + occ[1], 10'000.0, 10.0);
}

// ------------------------------------------------ profile determinism ----

TEST(RdProfile, CaptureSerializesByteIdentically) {
  const MachineParams m = MachineParams::sgiChallenge();
  const RdProfile a = captureProtocolRdProfile(m, ProtocolLayout::standard(),
                                               ProtocolTraceParams{}, 4, 24, 42);
  const RdProfile b = captureProtocolRdProfile(m, ProtocolLayout::standard(),
                                               ProtocolTraceParams{}, 4, 24, 42);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_GT(a.total_refs, 0u);
  // Round trip.
  const auto back = RdProfile::deserialize(a.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->serialize(), a.serialize());
  EXPECT_EQ(back->total_refs, a.total_refs);
  EXPECT_EQ(back->ifetch_refs, a.ifetch_refs);
}

TEST(RdProfile, ByteIdenticalAcrossSweepRunnerJobs) {
  // The capture must be a pure function of its parameters: profiles built
  // on 1 worker and on 4 concurrent workers serialize byte-identically
  // (this is what lets `cache.model = reuse` scenarios reproduce across
  // --jobs counts).
  const MachineParams m = MachineParams::modern2020();
  const auto capture = [&](std::size_t) {
    return captureProtocolRdProfile(m, ProtocolLayout::standard(), ProtocolTraceParams{}, 4, 16,
                                    7).serialize();
  };
  const auto serial = SweepRunner(1).map(4, capture);
  const auto parallel = SweepRunner(4).map(4, capture);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(serial[i], serial[0]);
    EXPECT_EQ(parallel[i], serial[0]);
  }
}

TEST(RdProfile, CachedModelMemoizesAcrossThreads) {
  RdCaptureParams p;
  p.profile_streams = 2;
  p.profile_packets = 8;
  p.profile_bg_refs = 20'000;
  const auto fetch = [&](std::size_t) {
    return cachedDefaultRdModel(MachineParams::sgiChallenge(), p);
  };
  const auto models = SweepRunner(4).map(6, fetch);
  for (const auto& mp : models) EXPECT_EQ(mp.get(), models[0].get());
}

// ---------------------------------------------- differential battery -----

TEST(RdModelDifferential, EveryShippedScenarioAgreesPerLevel) {
  // Quick tier: downsampled to 64 packets per scenario (~10^5 refs each);
  // golden_llc_test repeats the identical battery at 512 packets in soak.
  rd_diff::runDifferentialBattery(AFF_SOURCE_ROOT, 64);
}

// --------------------------------------------- scenario [cache] seam -----

std::optional<Scenario> scenarioFrom(const std::string& text, std::string* error = nullptr) {
  const auto cfg = ConfigFile::parse(text, error);
  if (!cfg) return std::nullopt;
  return buildScenario(*cfg, error);
}

TEST(ScenarioCache, DefaultStaysSst) {
  const auto s = scenarioFrom("[workload]\nstreams = 4\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->model.kind(), CacheModelKind::kSst);
  EXPECT_EQ(s->model.reloadParams().dl3_us, 0.0);
}

TEST(ScenarioCache, ReuseModelSelectable) {
  const auto s = scenarioFrom(
      "[cache]\nmodel = reuse\nprofile_streams = 2\nprofile_packets = 8\n"
      "profile_bg_refs = 20000\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->model.kind(), CacheModelKind::kReuse);
  ASSERT_NE(s->model.reuseModel(), nullptr);
  EXPECT_EQ(s->model.reloadParams().dl3_us, 0.0);  // 1995 topology: no LLC
}

TEST(ScenarioCache, ModernTopologySplitsReloadPreservingTCold) {
  const auto s = scenarioFrom(
      "[cache]\nmodel = reuse\ntopology = modern-llc\nprofile_streams = 2\n"
      "profile_packets = 8\nprofile_bg_refs = 20000\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->model.kind(), CacheModelKind::kReuse);
  EXPECT_GT(s->model.reloadParams().dl3_us, 0.0);
  EXPECT_NEAR(s->model.tCold(), ExecTimeModel::standard().tCold(), 1e-9);
  ASSERT_NE(s->model.reuseModel(), nullptr);
  EXPECT_GT(s->model.reuseModel()->llcShareLines(), 0.0);
}

TEST(ScenarioCache, RejectsUnknownValues) {
  std::string error;
  EXPECT_FALSE(scenarioFrom("[cache]\nmodel = quantum\n", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(scenarioFrom("[cache]\ntopology = numa\n", &error).has_value());
  EXPECT_FALSE(scenarioFrom("[cache]\nmodel = reuse\nduty = 1.5\n", &error).has_value());
  EXPECT_FALSE(scenarioFrom("[cache]\nmodel = reuse\nco_runners = 0\n", &error).has_value());
}

}  // namespace
}  // namespace affinity
