// Tests for src/stats: Welford accumulators, merging, histograms/quantiles,
// batch-means confidence intervals, time-weighted averages.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "stats/online.hpp"
#include "stats/time_weighted.hpp"
#include "util/rng.hpp"

namespace affinity {
namespace {

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(3);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3 + 1;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, QuantilesOfUniformSamples) {
  Histogram h(0.1, 6, 64);
  Rng rng(5);
  for (int i = 0; i < 200000; ++i) h.add(rng.uniform(10.0, 1000.0));
  EXPECT_NEAR(h.quantile(0.5), 505.0, 20.0);
  EXPECT_NEAR(h.quantile(0.95), 950.5, 30.0);
  EXPECT_NEAR(h.quantile(0.05), 59.5, 10.0);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, MeanIsExact) {
  Histogram h(0.1, 6, 32);
  h.add(10.0);
  h.add(20.0);
  h.add(60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(Histogram, OverflowCounted) {
  Histogram h(1.0, 2, 8);  // covers [1, 100)
  h.add(1e6);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(1.0, 3, 8);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(BatchMeans, MeanMatchesSampleMean) {
  BatchMeans bm(10);
  double sum = 0.0;
  for (int i = 1; i <= 105; ++i) {  // includes a partial batch
    bm.add(i);
    sum += i;
  }
  EXPECT_NEAR(bm.mean(), sum / 105.0, 1e-9);
  EXPECT_EQ(bm.batchCount(), 10u);
}

TEST(BatchMeans, HalfWidthShrinksWithData) {
  Rng rng(9);
  BatchMeans small(100), large(100);
  for (int i = 0; i < 1000; ++i) small.add(rng.normal());
  for (int i = 0; i < 100000; ++i) large.add(rng.normal());
  EXPECT_GT(small.halfWidth(), large.halfWidth());
  EXPECT_LT(large.halfWidth(), 0.05);
}

TEST(BatchMeans, InfiniteWithFewBatches) {
  BatchMeans bm(1000);
  for (int i = 0; i < 500; ++i) bm.add(1.0);
  EXPECT_TRUE(std::isinf(bm.halfWidth()));
}

TEST(BatchMeans, CoverageOfIidNormal) {
  // ~95% of 95% CIs over iid normal batches should contain 0.
  int covered = 0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    Rng rng(1000 + r);
    BatchMeans bm(50);
    for (int i = 0; i < 2500; ++i) bm.add(rng.normal());
    double m = 0.0;
    BatchMeans* p = &bm;
    m = p->mean();
    if (std::abs(m) <= bm.halfWidth(0.95)) ++covered;
  }
  EXPECT_GE(covered, reps * 85 / 100);
  EXPECT_LE(covered, reps);
}

TEST(StudentT, TableValues) {
  EXPECT_NEAR(studentTCritical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(studentTCritical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(studentTCritical(30, 0.99), 2.750, 1e-3);
  EXPECT_NEAR(studentTCritical(1000, 0.95), 1.960, 1e-3);
  EXPECT_NEAR(studentTCritical(5, 0.90), 2.015, 1e-3);
  EXPECT_TRUE(std::isinf(studentTCritical(0, 0.95)));
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.set(0.0, 2.0);   // level 2 on [0,10)
  tw.set(10.0, 4.0);  // level 4 on [10,20)
  EXPECT_DOUBLE_EQ(tw.average(20.0), 3.0);
  EXPECT_DOUBLE_EQ(tw.level(), 4.0);
}

TEST(TimeWeighted, AdjustAndReset) {
  TimeWeighted tw;
  tw.set(0.0, 1.0);
  tw.adjust(5.0, +1.0);  // level 2 from t=5
  EXPECT_DOUBLE_EQ(tw.average(10.0), 1.5);
  tw.resetAt(10.0);  // discard history
  EXPECT_DOUBLE_EQ(tw.average(20.0), 2.0);
}

TEST(TimeWeighted, EmptyAverageIsZero) {
  TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.average(10.0), 0.0);
}

}  // namespace
}  // namespace affinity
