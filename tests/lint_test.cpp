// lint_test.cpp — afflint's own tests: the good/bad corpus under
// tests/lint_corpus/ (every rule must have at least one passing and one
// failing fixture), unit tests for the metric-name validator and the
// suppression comments, and a live-tree self-check that keeps the real
// src/ tools/ bench/ trees lint-clean.
//
// Fixture convention: the path under good/ or bad/ is the repo-relative
// path the file impersonates (rule scoping keys off it). The first line
// declares intent:
//   bad:  // afflint-corpus-expect: <rule> [<rule>...]
//   good: // afflint-corpus-rule: <rule>
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using affinity::lint::buildLockGraph;
using affinity::lint::checkLockOrder;
using affinity::lint::checkMetricDocs;
using affinity::lint::extractLockEdges;
using affinity::lint::Finding;
using affinity::lint::lintFile;
using affinity::lint::lintTree;
using affinity::lint::LockEdge;
using affinity::lint::LockGraph;
using affinity::lint::mergeLockGraph;
using affinity::lint::ruleNames;
using affinity::lint::validMetricName;

namespace {

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "unreadable fixture: " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Fixture {
  std::string rel_path;  // impersonated repo-relative path
  std::string content;
  std::set<std::string> tagged_rules;  // from the first-line marker
};

std::vector<Fixture> loadCorpus(const std::string& kind, const std::string& marker) {
  const fs::path root = fs::path(AFF_SOURCE_ROOT) / "tests" / "lint_corpus" / kind;
  std::vector<Fixture> out;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    Fixture f;
    f.rel_path = fs::relative(entry.path(), root).generic_string();
    f.content = readFile(entry.path());
    const std::size_t eol = f.content.find('\n');
    const std::string first = f.content.substr(0, eol);
    const std::size_t at = first.find(marker);
    EXPECT_NE(at, std::string::npos)
        << f.rel_path << " first line must carry '" << marker << "'";
    if (at != std::string::npos) {
      std::istringstream in(first.substr(at + marker.size()));
      std::string rule;
      while (in >> rule) f.tagged_rules.insert(rule);
    }
    EXPECT_FALSE(f.tagged_rules.empty()) << f.rel_path << " tags no rules";
    out.push_back(std::move(f));
  }
  EXPECT_FALSE(out.empty()) << "no fixtures under " << root;
  return out;
}

std::set<std::string> rulesIn(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const auto& f : findings) rules.insert(f.rule);
  return rules;
}

std::string describe(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& f : findings)
    out << "  " << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  return out.str();
}

TEST(LintCorpus, BadFixturesFailWithExactlyTheExpectedRules) {
  for (const auto& f : loadCorpus("bad", "afflint-corpus-expect:")) {
    const auto findings = lintFile(f.rel_path, f.content);
    EXPECT_EQ(rulesIn(findings), f.tagged_rules)
        << f.rel_path << " findings:\n" << describe(findings);
  }
}

TEST(LintCorpus, GoodFixturesLintClean) {
  for (const auto& f : loadCorpus("good", "afflint-corpus-rule:")) {
    const auto findings = lintFile(f.rel_path, f.content);
    EXPECT_TRUE(findings.empty()) << f.rel_path << " findings:\n" << describe(findings);
  }
}

TEST(LintCorpus, EveryRuleHasAPassingAndAFailingFixture) {
  const std::set<std::string> all(ruleNames().begin(), ruleNames().end());
  std::set<std::string> bad_cover, good_cover;
  for (const auto& f : loadCorpus("bad", "afflint-corpus-expect:"))
    bad_cover.insert(f.tagged_rules.begin(), f.tagged_rules.end());
  for (const auto& f : loadCorpus("good", "afflint-corpus-rule:"))
    good_cover.insert(f.tagged_rules.begin(), f.tagged_rules.end());
  EXPECT_EQ(bad_cover, all);
  EXPECT_EQ(good_cover, all);
}

TEST(ValidMetricName, AcceptsSchemeNamesAndFragments) {
  for (const char* name : {"sim.proc.busy_frac", "engine.rx.batches", "sweep.point_wall_us",
                           "chaos.fault_gap_us", "bench.kernel.events_per_sec"}) {
    std::string why;
    EXPECT_TRUE(validMetricName(name, &why)) << name << ": " << why;
  }
  // Leading/trailing '.' marks a concatenation fragment: no domain check.
  for (const char* fragment : {".queue_depth_avg", "sim.proc.", ".faults.injected.", "."}) {
    std::string why;
    EXPECT_TRUE(validMetricName(fragment, &why)) << fragment << ": " << why;
  }
}

TEST(ValidMetricName, RejectsBadNames) {
  for (const char* name : {"", "Engine.rx", "engine rx", "widget.rx", "engine..rx",
                           "engine._rx", ".Fragment", "engine.rx-batches"}) {
    EXPECT_FALSE(validMetricName(name, nullptr)) << name;
  }
}

TEST(Suppression, AllowCommentsScopeToLineAboveSameLineAndFile) {
  const std::string path = "src/sim/clock.cpp";
  const std::string banned = "double f() { return time(nullptr); }\n";
  EXPECT_FALSE(lintFile(path, banned).empty());
  EXPECT_TRUE(lintFile(path, "// afflint: allow(nondeterminism)\n" + banned).empty());
  EXPECT_TRUE(
      lintFile(path, "double f() { return time(nullptr); }  // afflint: allow(nondeterminism)\n")
          .empty());
  EXPECT_TRUE(lintFile(path, "// afflint: allow-file(nondeterminism)\n\n\n" + banned).empty());
  // A different rule's allowance suppresses nothing.
  EXPECT_FALSE(lintFile(path, "// afflint: allow(metric-name)\n" + banned).empty());
  // Two blank lines between comment and use: out of scope.
  EXPECT_FALSE(lintFile(path, "// afflint: allow(nondeterminism)\n\n" + banned).empty());
}

TEST(Preprocess, CommentsStringsAndRawStringsAreNotCode) {
  const std::string path = "src/runtime/doc.cpp";
  EXPECT_TRUE(lintFile(path, "// std::mutex in prose\n/* std::lock_guard too */\n").empty());
  EXPECT_TRUE(lintFile(path, "const char* s = \"std::mutex\";\n").empty());
  EXPECT_TRUE(lintFile(path, "const char* r = R\"(std::mutex \" quote)\";\nint x;\n").empty());
  // ...but the same tokens as code are findings.
  EXPECT_FALSE(lintFile(path, "std::mutex mu;\n").empty());
}

TEST(LiveTree, SrcToolsBenchLintClean) {
  const auto findings = lintTree(AFF_SOURCE_ROOT, {"src", "tools", "bench"});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// The acceptance demo, automated: deleting the AFF_GUARDED_BY annotation from
// a real runtime header must produce a guarded-mutex finding — this is the
// no-clang environment's substitute for -Wthread-safety breaking the build.
TEST(LiveTree, RemovingAGuardedByAnnotationIsCaught) {
  const fs::path engine = fs::path(AFF_SOURCE_ROOT) / "src" / "runtime" / "engine.hpp";
  std::string content = readFile(engine);
  ASSERT_TRUE(lintFile("src/runtime/engine.hpp", content).empty());
  const std::string annotation = " AFF_GUARDED_BY(stack_mu_)";
  const std::size_t at = content.find(annotation);
  ASSERT_NE(at, std::string::npos) << "engine.hpp no longer annotates stack_";
  content.erase(at, annotation.size());
  const auto findings = lintFile("src/runtime/engine.hpp", content);
  EXPECT_EQ(rulesIn(findings), std::set<std::string>{"guarded-mutex"})
      << describe(findings);
}

// ---------------------------------------------------------------------------
// Lock-order: acquisition-graph units + the declared-ordering mutation demo.
// ---------------------------------------------------------------------------

TEST(LockOrder, SelfEdgeIsReportedAsNestedAcquisition) {
  LockGraph g;
  g.edges.push_back(LockEdge{"FlowTable::Shard::mu", "FlowTable::Shard::mu",
                             "src/flow/x.cpp:10", "src/flow/x.cpp:12", false});
  const auto findings = checkLockOrder(g);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_NE(findings[0].message.find("nested acquisition"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("FlowTable::Shard::mu"), std::string::npos);
}

TEST(LockOrder, ContradictoryDeclarationsAreACycleWithBothSites) {
  LockGraph g;
  g.edges.push_back(LockEdge{"A::mu", "B::mu", "src/a.hpp:3", "src/a.hpp:3", true});
  g.edges.push_back(LockEdge{"B::mu", "A::mu", "src/b.hpp:7", "src/b.hpp:7", true});
  const auto findings = checkLockOrder(g);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos) << findings[0].message;
  EXPECT_NE(findings[0].message.find("src/a.hpp:3"), std::string::npos) << findings[0].message;
  EXPECT_NE(findings[0].message.find("src/b.hpp:7"), std::string::npos) << findings[0].message;
}

TEST(LockOrder, ObservedNestingContradictingADeclarationIsACycle) {
  LockGraph g;
  g.edges.push_back(LockEdge{"A::mu", "B::mu", "src/a.hpp:3", "src/a.hpp:3", true});
  // Real code then nests the other way round.
  g.edges.push_back(LockEdge{"B::mu", "A::mu", "src/c.cpp:40", "src/c.cpp:41", false});
  const auto findings = checkLockOrder(g);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("while holding"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("declared at"), std::string::npos) << findings[0].message;
}

TEST(LockOrder, ExtractSeesRaiiNestingRequiresAndDeclarations) {
  const std::string content =
      "Mutex a_{\"T::a_\"} AFF_ACQUIRED_BEFORE(T::b_);\n"
      "Mutex b_{\"T::b_\"};\n"
      "void f() {\n"
      "  MutexLock la(a_);\n"
      "  MutexLock lb(b_);\n"
      "}\n"
      "void g() AFF_REQUIRES(a_) {\n"
      "  MutexLock lb(b_);\n"
      "}\n";
  const LockGraph g = extractLockEdges("src/runtime/two.cpp", content);
  std::size_t declared = 0, observed = 0;
  for (const auto& e : g.edges) {
    EXPECT_EQ(e.from, "T::a_");
    EXPECT_EQ(e.to, "T::b_");
    (e.declared ? declared : observed) += 1;
  }
  EXPECT_EQ(declared, 1u);  // the AFF_ACQUIRED_BEFORE edge
  EXPECT_EQ(observed, 2u);  // direct nesting in f(), held-on-entry in g()
  EXPECT_TRUE(checkLockOrder(g).empty());
}

// The second acceptance demo, automated: inverting one declared ordering on
// a real runtime header must produce a lock-order cycle whose witness chain
// names both declaration sites (the flipped one in engine.hpp and the
// still-correct counterpart in net/ordering.hpp).
TEST(LiveTree, InvertingADeclaredOrderingIsCaught) {
  LockGraph graph = buildLockGraph(AFF_SOURCE_ROOT, {"src", "tools", "bench"});
  ASSERT_FALSE(graph.edges.empty());
  ASSERT_TRUE(checkLockOrder(graph).empty());

  const fs::path engine = fs::path(AFF_SOURCE_ROOT) / "src" / "runtime" / "engine.hpp";
  std::string content = readFile(engine);
  const std::string decl = "AFF_ACQUIRED_BEFORE(OrderingChecker::mu_";
  const std::size_t at = content.find(decl);
  ASSERT_NE(at, std::string::npos) << "engine.hpp no longer declares stack_mu_'s ordering";
  content.replace(at, decl.size(), "AFF_ACQUIRED_AFTER(OrderingChecker::mu_");

  LockGraph mutated = extractLockEdges("src/runtime/engine.hpp", content);
  mergeLockGraph(&graph, mutated);
  const auto findings = checkLockOrder(graph);
  ASSERT_FALSE(findings.empty());
  bool two_site_witness = false;
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "lock-order");
    two_site_witness =
        two_site_witness || (f.message.find("src/runtime/engine.hpp") != std::string::npos &&
                             f.message.find("src/net/ordering.hpp") != std::string::npos);
  }
  EXPECT_TRUE(two_site_witness) << describe(findings);
}

// ---------------------------------------------------------------------------
// Metric docs: the reverse direction of the metric-name rule.
// ---------------------------------------------------------------------------

TEST(MetricDocs, StaleDocumentedNameIsFlaggedAndRegisteredOnesPass) {
  std::set<std::string> vocab;
  affinity::lint::addMetricVocabulary(
      "counter(\"engine.rx.batches\"); counter(\"engine.tx.batches\");\n"
      "gauge(prefix + \".dropped.\" + reason);\n",
      &vocab);
  const std::string doc =
      "`engine.rx.batches` counts per-worker rx batches.\n"          // registered: ok
      "`engine.{rx,tx}.batches` both directions.\n"                  // brace expansion: ok
      "`engine.rx.dropped.<reason>` per-cause drops.\n"              // wildcard segment: ok
      "`engine.rx.queue_overruns` was renamed and never updated.\n"  // stale
      "plain prose with engine words but no dotted name.\n";
  const auto findings = checkMetricDocs("docs/OBSERVABILITY.md", doc, vocab);
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "metric-name");
  EXPECT_EQ(findings[0].file, "docs/OBSERVABILITY.md");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("queue_overruns"), std::string::npos)
      << findings[0].message;
}

TEST(MetricDocs, SuppressionCommentSilencesADocumentedName) {
  std::set<std::string> vocab;
  affinity::lint::addMetricVocabulary("counter(\"engine.rx.batches\");\n", &vocab);
  const std::string doc =
      "<!-- afflint: allow(metric-name) -->\n"
      "`engine.rx.planned_future_counter` ships next quarter.\n";
  EXPECT_TRUE(checkMetricDocs("docs/OBSERVABILITY.md", doc, vocab).empty());
  EXPECT_FALSE(
      checkMetricDocs("docs/OBSERVABILITY.md",
                      "`engine.rx.planned_future_counter` ships next quarter.\n", vocab)
          .empty());
}

}  // namespace
