// lint_test.cpp — afflint's own tests: the good/bad corpus under
// tests/lint_corpus/ (every rule must have at least one passing and one
// failing fixture), unit tests for the metric-name validator and the
// suppression comments, and a live-tree self-check that keeps the real
// src/ tools/ bench/ trees lint-clean.
//
// Fixture convention: the path under good/ or bad/ is the repo-relative
// path the file impersonates (rule scoping keys off it). The first line
// declares intent:
//   bad:  // afflint-corpus-expect: <rule> [<rule>...]
//   good: // afflint-corpus-rule: <rule>
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using affinity::lint::Finding;
using affinity::lint::lintFile;
using affinity::lint::lintTree;
using affinity::lint::ruleNames;
using affinity::lint::validMetricName;

namespace {

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "unreadable fixture: " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Fixture {
  std::string rel_path;  // impersonated repo-relative path
  std::string content;
  std::set<std::string> tagged_rules;  // from the first-line marker
};

std::vector<Fixture> loadCorpus(const std::string& kind, const std::string& marker) {
  const fs::path root = fs::path(AFF_SOURCE_ROOT) / "tests" / "lint_corpus" / kind;
  std::vector<Fixture> out;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    Fixture f;
    f.rel_path = fs::relative(entry.path(), root).generic_string();
    f.content = readFile(entry.path());
    const std::size_t eol = f.content.find('\n');
    const std::string first = f.content.substr(0, eol);
    const std::size_t at = first.find(marker);
    EXPECT_NE(at, std::string::npos)
        << f.rel_path << " first line must carry '" << marker << "'";
    if (at != std::string::npos) {
      std::istringstream in(first.substr(at + marker.size()));
      std::string rule;
      while (in >> rule) f.tagged_rules.insert(rule);
    }
    EXPECT_FALSE(f.tagged_rules.empty()) << f.rel_path << " tags no rules";
    out.push_back(std::move(f));
  }
  EXPECT_FALSE(out.empty()) << "no fixtures under " << root;
  return out;
}

std::set<std::string> rulesIn(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const auto& f : findings) rules.insert(f.rule);
  return rules;
}

std::string describe(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& f : findings)
    out << "  " << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  return out.str();
}

TEST(LintCorpus, BadFixturesFailWithExactlyTheExpectedRules) {
  for (const auto& f : loadCorpus("bad", "afflint-corpus-expect:")) {
    const auto findings = lintFile(f.rel_path, f.content);
    EXPECT_EQ(rulesIn(findings), f.tagged_rules)
        << f.rel_path << " findings:\n" << describe(findings);
  }
}

TEST(LintCorpus, GoodFixturesLintClean) {
  for (const auto& f : loadCorpus("good", "afflint-corpus-rule:")) {
    const auto findings = lintFile(f.rel_path, f.content);
    EXPECT_TRUE(findings.empty()) << f.rel_path << " findings:\n" << describe(findings);
  }
}

TEST(LintCorpus, EveryRuleHasAPassingAndAFailingFixture) {
  const std::set<std::string> all(ruleNames().begin(), ruleNames().end());
  std::set<std::string> bad_cover, good_cover;
  for (const auto& f : loadCorpus("bad", "afflint-corpus-expect:"))
    bad_cover.insert(f.tagged_rules.begin(), f.tagged_rules.end());
  for (const auto& f : loadCorpus("good", "afflint-corpus-rule:"))
    good_cover.insert(f.tagged_rules.begin(), f.tagged_rules.end());
  EXPECT_EQ(bad_cover, all);
  EXPECT_EQ(good_cover, all);
}

TEST(ValidMetricName, AcceptsSchemeNamesAndFragments) {
  for (const char* name : {"sim.proc.busy_frac", "engine.rx.batches", "sweep.point_wall_us",
                           "chaos.fault_gap_us", "bench.kernel.events_per_sec"}) {
    std::string why;
    EXPECT_TRUE(validMetricName(name, &why)) << name << ": " << why;
  }
  // Leading/trailing '.' marks a concatenation fragment: no domain check.
  for (const char* fragment : {".queue_depth_avg", "sim.proc.", ".faults.injected.", "."}) {
    std::string why;
    EXPECT_TRUE(validMetricName(fragment, &why)) << fragment << ": " << why;
  }
}

TEST(ValidMetricName, RejectsBadNames) {
  for (const char* name : {"", "Engine.rx", "engine rx", "widget.rx", "engine..rx",
                           "engine._rx", ".Fragment", "engine.rx-batches"}) {
    EXPECT_FALSE(validMetricName(name, nullptr)) << name;
  }
}

TEST(Suppression, AllowCommentsScopeToLineAboveSameLineAndFile) {
  const std::string path = "src/sim/clock.cpp";
  const std::string banned = "double f() { return time(nullptr); }\n";
  EXPECT_FALSE(lintFile(path, banned).empty());
  EXPECT_TRUE(lintFile(path, "// afflint: allow(nondeterminism)\n" + banned).empty());
  EXPECT_TRUE(
      lintFile(path, "double f() { return time(nullptr); }  // afflint: allow(nondeterminism)\n")
          .empty());
  EXPECT_TRUE(lintFile(path, "// afflint: allow-file(nondeterminism)\n\n\n" + banned).empty());
  // A different rule's allowance suppresses nothing.
  EXPECT_FALSE(lintFile(path, "// afflint: allow(metric-name)\n" + banned).empty());
  // Two blank lines between comment and use: out of scope.
  EXPECT_FALSE(lintFile(path, "// afflint: allow(nondeterminism)\n\n" + banned).empty());
}

TEST(Preprocess, CommentsStringsAndRawStringsAreNotCode) {
  const std::string path = "src/runtime/doc.cpp";
  EXPECT_TRUE(lintFile(path, "// std::mutex in prose\n/* std::lock_guard too */\n").empty());
  EXPECT_TRUE(lintFile(path, "const char* s = \"std::mutex\";\n").empty());
  EXPECT_TRUE(lintFile(path, "const char* r = R\"(std::mutex \" quote)\";\nint x;\n").empty());
  // ...but the same tokens as code are findings.
  EXPECT_FALSE(lintFile(path, "std::mutex mu;\n").empty());
}

TEST(LiveTree, SrcToolsBenchLintClean) {
  const auto findings = lintTree(AFF_SOURCE_ROOT, {"src", "tools", "bench"});
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// The acceptance demo, automated: deleting the AFF_GUARDED_BY annotation from
// a real runtime header must produce a guarded-mutex finding — this is the
// no-clang environment's substitute for -Wthread-safety breaking the build.
TEST(LiveTree, RemovingAGuardedByAnnotationIsCaught) {
  const fs::path engine = fs::path(AFF_SOURCE_ROOT) / "src" / "runtime" / "engine.hpp";
  std::string content = readFile(engine);
  ASSERT_TRUE(lintFile("src/runtime/engine.hpp", content).empty());
  const std::string annotation = " AFF_GUARDED_BY(stack_mu_)";
  const std::size_t at = content.find(annotation);
  ASSERT_NE(at, std::string::npos) << "engine.hpp no longer annotates stack_";
  content.erase(at, annotation.size());
  const auto findings = lintFile("src/runtime/engine.hpp", content);
  EXPECT_EQ(rulesIn(findings), std::set<std::string>{"guarded-mutex"})
      << describe(findings);
}

}  // namespace
