// Tests for src/cachesim: LRU set behavior, hierarchy inclusion, coherence
// invalidation, trace generators, and the measurement harness (whose outputs
// must have the paper's qualitative structure).
#include <gtest/gtest.h>

#include <set>

#include "cachesim/cache_level.hpp"
#include "cachesim/coherence.hpp"
#include "cachesim/hierarchy.hpp"
#include "cachesim/measurement.hpp"
#include "cachesim/trace.hpp"

namespace affinity {
namespace {

CacheLevelParams tiny(std::uint64_t size, std::uint32_t line, std::uint32_t assoc) {
  return CacheLevelParams{size, line, assoc};
}

// ------------------------------------------------------------ CacheLevel --

TEST(CacheLevel, HitAfterMiss) {
  CacheLevel c(tiny(1024, 32, 1));
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x11f, false).hit);   // same line
  EXPECT_FALSE(c.access(0x120, false).hit);  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheLevel, DirectMappedConflict) {
  CacheLevel c(tiny(1024, 32, 1));  // 32 sets
  c.access(0x0, false);
  const auto r = c.access(32 * 32, false);  // same set, different tag
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_EQ(r.evicted_line_addr, 0u);
  EXPECT_FALSE(c.contains(0x0));
}

TEST(CacheLevel, LruEvictsOldestWithinSet) {
  CacheLevel c(tiny(4 * 32, 32, 4));  // one set, 4 ways
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * 32, false);
  c.access(0 * 32, false);            // refresh line 0
  c.access(4 * 32, false);            // evicts line 1 (LRU)
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(32));
  EXPECT_TRUE(c.contains(2 * 32));
}

TEST(CacheLevel, WritebackCountsDirtyEvictions) {
  CacheLevel c(tiny(1024, 32, 1));
  c.access(0x0, true);         // dirty
  c.access(32 * 32, false);    // evicts dirty line
  EXPECT_EQ(c.stats().writebacks, 1u);
  c.access(64 * 32, false);    // evicts clean line
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheLevel, InvalidateAndFlush) {
  CacheLevel c(tiny(1024, 32, 2));
  c.access(0x40, false);
  EXPECT_TRUE(c.invalidate(0x40));
  EXPECT_FALSE(c.invalidate(0x40));
  EXPECT_FALSE(c.contains(0x40));
  c.access(0x40, false);
  c.access(0x80, false);
  c.flushAll();
  EXPECT_EQ(c.residentLineCount(), 0u);
}

TEST(CacheLevel, ResidentWithinRange) {
  CacheLevel c(tiny(4096, 32, 2));
  c.access(0x1000, false);
  c.access(0x1020, false);
  c.access(0x2000, false);
  EXPECT_EQ(c.residentWithin(0x1000, 0x1040), 2u);
  EXPECT_EQ(c.residentWithin(0x0, 0x10000), 3u);
}

TEST(CacheLevel, RejectsNonPowerOfTwoLine) {
  EXPECT_DEATH(CacheLevel(tiny(1024, 24, 1)), "CHECK failed");
}

// ------------------------------------------------------------- Hierarchy --

MachineParams smallMachine() {
  MachineParams m;
  m.l1i = {1024, 32, 1};
  m.l1d = {1024, 32, 1};
  m.l2 = {8192, 128, 1};
  return m;
}

TEST(Hierarchy, MissCostsAccumulate) {
  const MachineParams m = smallMachine();
  Hierarchy h(m);
  const auto cold = h.access(0x100, RefKind::kLoad);
  EXPECT_TRUE(cold.l1_miss);
  EXPECT_TRUE(cold.l2_miss);
  EXPECT_DOUBLE_EQ(cold.cycles, m.cycles_per_ref + m.l1_miss_cycles + m.l2_miss_cycles);
  const auto warm = h.access(0x100, RefKind::kLoad);
  EXPECT_FALSE(warm.l1_miss);
  EXPECT_DOUBLE_EQ(warm.cycles, 5.0);
}

TEST(Hierarchy, L1MissL2HitCost) {
  Hierarchy h(smallMachine());
  h.access(0x100, RefKind::kLoad);
  h.flushL1();
  const auto r = h.access(0x100, RefKind::kLoad);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.l2_miss);
  EXPECT_DOUBLE_EQ(r.cycles, 5.0 + 12.0);
}

TEST(Hierarchy, SplitL1SeparatesIAndD) {
  Hierarchy h(smallMachine());
  h.access(0x100, RefKind::kIFetch);
  EXPECT_EQ(h.l1i().stats().misses, 1u);
  EXPECT_EQ(h.l1d().stats().misses, 0u);
  const auto r = h.access(0x100, RefKind::kLoad);  // D-cache miss, L2 hit
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.l2_miss);
}

TEST(Hierarchy, InclusionBackInvalidatesL1) {
  Hierarchy h(smallMachine());  // L2: 8 KB, 64 sets... 8192/128 = 64 sets
  h.access(0x0, RefKind::kLoad);
  // Conflict in L2: same L2 set = addr + 8192.
  h.access(0x0 + 8192, RefKind::kLoad);
  EXPECT_FALSE(h.l1d().contains(0x0)) << "L2 eviction must back-invalidate L1";
}

TEST(Hierarchy, InvalidateLineCoversWholeL2Line) {
  Hierarchy h(smallMachine());
  h.access(0x100, RefKind::kLoad);
  h.access(0x120, RefKind::kLoad);  // same 128 B L2 line, different L1 line
  h.invalidateLine(0x100);
  EXPECT_FALSE(h.l1d().contains(0x100));
  EXPECT_FALSE(h.l1d().contains(0x120));
  EXPECT_FALSE(h.l2().contains(0x100));
}

TEST(Hierarchy, ExternalDirtyChargesIntervention) {
  Hierarchy h(smallMachine());
  const auto r = h.access(0x100, RefKind::kLoad, /*external_dirty=*/true);
  EXPECT_DOUBLE_EQ(r.cycles, 5.0 + 12.0 + 140.0);
}

// ------------------------------------------------------------- Coherence --

TEST(Coherence, StoreInvalidatesRemoteCopies) {
  CoherentSystem sys(smallMachine(), 2);
  sys.access(0, 0x100, RefKind::kLoad);
  sys.access(1, 0x100, RefKind::kLoad);
  EXPECT_TRUE(sys.proc(0).l1d().contains(0x100));
  sys.access(1, 0x100, RefKind::kStore);
  EXPECT_FALSE(sys.proc(0).l1d().contains(0x100));
  EXPECT_FALSE(sys.proc(0).l2().contains(0x100));
  EXPECT_GE(sys.invalidationsSent(), 1u);
}

TEST(Coherence, DirtyRemoteLoadPaysIntervention) {
  CoherentSystem sys(smallMachine(), 2);
  sys.access(0, 0x100, RefKind::kStore);
  const auto r = sys.access(1, 0x100, RefKind::kLoad);
  EXPECT_DOUBLE_EQ(r.cycles, 5.0 + 12.0 + 140.0);
  EXPECT_EQ(sys.interventions(), 1u);
  // Second load by proc 1 is now a plain hit.
  EXPECT_DOUBLE_EQ(sys.access(1, 0x100, RefKind::kLoad).cycles, 5.0);
}

TEST(Coherence, LocalRereadAfterOwnStoreIsCheap) {
  CoherentSystem sys(smallMachine(), 2);
  sys.access(0, 0x100, RefKind::kStore);
  EXPECT_DOUBLE_EQ(sys.access(0, 0x100, RefKind::kLoad).cycles, 5.0);
  EXPECT_EQ(sys.interventions(), 0u);
}

// ------------------------------------------------------------- Traces -----

TEST(ProtocolTrace, DeterministicPerSeed) {
  const ProtocolTraceGenerator gen(ProtocolLayout::standard(), ProtocolTraceParams{});
  std::vector<MemRef> a, b;
  Rng ra(1), rb(1);
  gen.receivePacket(3, 7, ra, a);
  gen.receivePacket(3, 7, rb, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].addr, b[i].addr);
}

TEST(ProtocolTrace, EmitsDeclaredReferenceCount) {
  const ProtocolTraceGenerator gen(ProtocolLayout::standard(), ProtocolTraceParams{});
  std::vector<MemRef> t;
  Rng rng(2);
  gen.receivePacket(0, 0, rng, t);
  EXPECT_EQ(t.size(), gen.refsPerPacket());
}

TEST(ProtocolTrace, ReferencesStayInDeclaredRegions) {
  const ProtocolLayout lay = ProtocolLayout::standard();
  const ProtocolTraceGenerator gen(lay, ProtocolTraceParams{});
  std::vector<MemRef> t;
  Rng rng(3);
  gen.receivePacket(2, 5, rng, t);
  for (const MemRef& r : t) {
    const bool in_code = r.addr >= lay.code_base && r.addr < lay.code_base + lay.code_bytes;
    const bool in_shared =
        r.addr >= lay.shared_base && r.addr < lay.shared_base + lay.shared_bytes;
    const bool in_stream =
        r.addr >= lay.streamBase(2) && r.addr < lay.streamBase(2) + lay.stream_bytes_each;
    const bool in_pkt = r.addr >= lay.pktBase(5) && r.addr < lay.pktBase(5) + lay.pkt_bytes_each;
    EXPECT_TRUE(in_code || in_shared || in_stream || in_pkt) << std::hex << r.addr;
    if (r.kind == RefKind::kIFetch) {
      EXPECT_TRUE(in_code);
    }
  }
}

TEST(ProtocolTrace, DifferentStreamsTouchDifferentStreamState) {
  const ProtocolLayout lay = ProtocolLayout::standard();
  const ProtocolTraceGenerator gen(lay, ProtocolTraceParams{});
  std::vector<MemRef> t;
  Rng rng(4);
  gen.receivePacket(1, 0, rng, t);
  for (const MemRef& r : t) {
    EXPECT_FALSE(r.addr >= lay.streamBase(0) && r.addr < lay.streamBase(0) + lay.stream_bytes_each)
        << "stream 1 packet touched stream 0 state";
  }
}

TEST(ProtocolTrace, PayloadTouchScalesWithBytes) {
  const ProtocolTraceGenerator gen(ProtocolLayout::standard(), ProtocolTraceParams{});
  std::vector<MemRef> small, large;
  gen.touchPayload(0, 0, 512, small);
  gen.touchPayload(0, 0, 4096, large);
  EXPECT_EQ(small.size(), 2u * (512 / 8));
  EXPECT_EQ(large.size(), 2u * (4096 / 8));
}

TEST(BackgroundTrace, GeneratesRequestedCountWithinWorkingSet) {
  BackgroundTraceGenerator bg(0x4000'0000, 1 << 20);
  std::vector<MemRef> t;
  Rng rng(5);
  bg.generate(10000, rng, t);
  ASSERT_EQ(t.size(), 10000u);
  for (const MemRef& r : t) {
    EXPECT_GE(r.addr, 0x4000'0000u);
    EXPECT_LT(r.addr, 0x4000'0000u + (1u << 20));
  }
}

// ---------------------------------------------------------- Measurement ---

class MeasurementFixture : public ::testing::Test {
 protected:
  MeasurementHarness harness_{MachineParams::sgiChallenge(), ProtocolLayout::standard(),
                              ProtocolTraceParams{}, 42};
};

TEST_F(MeasurementFixture, ColdExceedsL1ColdExceedsWarm) {
  const MeasuredParams m = harness_.measure();
  EXPECT_GT(m.t_warm_us, 0.0);
  EXPECT_GT(m.t_l1cold_us, m.t_warm_us);
  EXPECT_GT(m.t_cold_us, m.t_l1cold_us);
  // The paper's ratio: t_cold is roughly 2x t_warm.
  EXPECT_GT(m.t_cold_us / m.t_warm_us, 1.4);
  EXPECT_LT(m.t_cold_us / m.t_warm_us, 3.5);
}

TEST_F(MeasurementFixture, SharesAreValidAndStreamShareSignificant) {
  const MeasuredParams m = harness_.measure();
  EXPECT_TRUE(m.shares.valid());
  EXPECT_GT(m.shares.l1_code, 0.05);
  EXPECT_GT(m.shares.l1_stream, 0.1);
  EXPECT_GT(m.shares.l1_shared, 0.02);
  EXPECT_GT(m.shares.l2_code, 0.2) << "text is the largest region, dominating the L2 transient";
}

TEST_F(MeasurementFixture, ComponentPenaltiesAreConsistent) {
  const MeasuredParams m = harness_.measure();
  for (const auto* p : {&m.code, &m.shared, &m.stream}) {
    EXPECT_GE(p->l1_us, 0.0);
    EXPECT_GE(p->full_us, p->l1_us) << "both-levels penalty must cover the L1-only penalty";
  }
  // Component penalties must roughly add up to the full transients.
  const double full_sum = m.code.full_us + m.shared.full_us + m.stream.full_us;
  EXPECT_GT(full_sum, 0.5 * (m.t_cold_us - m.t_warm_us));
  EXPECT_LT(full_sum, 1.6 * (m.t_cold_us - m.t_warm_us));
}

TEST_F(MeasurementFixture, AgedTimeInterpolatesBetweenWarmAndCold) {
  const MeasuredParams m = harness_.measure();
  const double aged_short = harness_.measureAged(50.0);
  const double aged_long = harness_.measureAged(50'000.0);
  EXPECT_GE(aged_short, m.t_warm_us * 0.99);
  EXPECT_LE(aged_long, m.t_cold_us * 1.01);
  EXPECT_LT(aged_short, aged_long);
}

TEST_F(MeasurementFixture, MigrationCostsAtLeastCold) {
  // The simulation model treats a migrated footprint component as fully
  // cold; the coherent-cache experiment shows migration is in fact at least
  // as expensive (write-invalidate + dirty-line interventions).
  const auto mt = harness_.measureMigration();
  EXPECT_LT(mt.t_same_proc_us, mt.t_other_proc_us);
  EXPECT_GE(mt.t_other_proc_us, 0.98 * mt.t_cold_us)
      << "migrated execution must cost roughly a cold start or more";
  EXPECT_GT(mt.t_cold_us, 1.5 * mt.t_same_proc_us);
}

TEST_F(MeasurementFixture, DisplacementGrowsWithAgeAndL1LeadsL2) {
  const auto d1 = harness_.displacedAfter(100.0);
  const auto d2 = harness_.displacedAfter(5'000.0);
  EXPECT_LE(d1.l1, d2.l1 + 0.02);
  EXPECT_LE(d1.l2, d2.l2 + 0.02);
  EXPECT_GT(d2.l1, d2.l2) << "L1 must flush faster than L2 (paper Fig. 4)";
}

}  // namespace
}  // namespace affinity
