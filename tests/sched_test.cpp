// Tests for src/sched: policy descriptions and the AffinityState last-touch
// bookkeeping that drives every service-time computation.
#include <gtest/gtest.h>

#include "cache/exec_time.hpp"
#include "sched/affinity_state.hpp"
#include "sched/policy.hpp"

namespace affinity {
namespace {

TEST(Policy, Names) {
  EXPECT_STREQ(paradigmName(Paradigm::kLocking), "Locking");
  EXPECT_STREQ(paradigmName(Paradigm::kIps), "IPS");
  EXPECT_STREQ(lockingPolicyName(LockingPolicy::kWiredStreams), "WiredStreams");
  EXPECT_STREQ(ipsPolicyName(IpsPolicy::kMru), "MRU");
}

TEST(Policy, Describe) {
  PolicyConfig c;
  c.paradigm = Paradigm::kLocking;
  c.locking = LockingPolicy::kMru;
  EXPECT_EQ(c.describe(), "Locking/MRU");
  c.paradigm = Paradigm::kIps;
  c.ips = IpsPolicy::kWired;
  EXPECT_EQ(c.describe(), "IPS/Wired");
  c.paradigm = Paradigm::kHybrid;
  EXPECT_EQ(c.describe(), "Hybrid(MRU+Wired)");
}

class AffinityStateFixture : public ::testing::Test {
 protected:
  AffinityState st_{4, 8, 4};
};

TEST_F(AffinityStateFixture, EverythingColdInitially) {
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(st_.codeAge(p, 100.0), kColdAge);
    EXPECT_EQ(st_.sharedAge(p, 100.0), kColdAge);
    EXPECT_EQ(st_.streamAge(p, 0, 100.0), kColdAge);
    EXPECT_EQ(st_.stackAge(p, 0, 100.0), kColdAge);
  }
  EXPECT_EQ(st_.lastProcOfStream(3), -1);
  EXPECT_EQ(st_.lastProcOfStack(2), -1);
}

TEST_F(AffinityStateFixture, CompletionWarmsOnlyThatProcessor) {
  st_.onComplete(/*proc=*/1, /*stream=*/5, /*stack=*/2, /*now=*/1000.0);
  EXPECT_DOUBLE_EQ(st_.codeAge(1, 1250.0), 250.0);
  EXPECT_EQ(st_.codeAge(0, 1250.0), kColdAge);
  EXPECT_DOUBLE_EQ(st_.streamAge(1, 5, 1400.0), 400.0);
  EXPECT_EQ(st_.streamAge(0, 5, 1400.0), kColdAge);
  EXPECT_EQ(st_.streamAge(1, 6, 1400.0), kColdAge) << "other streams unaffected";
  EXPECT_DOUBLE_EQ(st_.stackAge(1, 2, 1100.0), 100.0);
  EXPECT_EQ(st_.lastProcOfStream(5), 1);
  EXPECT_EQ(st_.lastProcOfStack(2), 1);
}

TEST_F(AffinityStateFixture, MigrationInvalidatesOldProcessor) {
  st_.onComplete(0, 5, 2, 1000.0);
  st_.onComplete(3, 5, 2, 2000.0);  // stream 5 migrates 0 -> 3
  EXPECT_EQ(st_.streamAge(0, 5, 2500.0), kColdAge) << "old copy invalidated by coherence";
  EXPECT_DOUBLE_EQ(st_.streamAge(3, 5, 2500.0), 500.0);
  EXPECT_EQ(st_.lastProcOfStream(5), 3);
  // Code on proc 0 is still warm (code is shared, not invalidated).
  EXPECT_DOUBLE_EQ(st_.codeAge(0, 2500.0), 1500.0);
}

TEST_F(AffinityStateFixture, SharedDataFollowsLastPacket) {
  st_.onComplete(0, 1, AffinityState::kNoStack, 1000.0);
  EXPECT_DOUBLE_EQ(st_.sharedAge(0, 1200.0), 200.0);
  st_.onComplete(2, 3, AffinityState::kNoStack, 1500.0);
  EXPECT_EQ(st_.sharedAge(0, 1600.0), kColdAge) << "packet on proc 2 stole the shared data";
  EXPECT_DOUBLE_EQ(st_.sharedAge(2, 1600.0), 100.0);
}

TEST_F(AffinityStateFixture, NoStackLeavesStacksUntouched) {
  st_.onComplete(1, 2, AffinityState::kNoStack, 500.0);
  for (std::uint32_t k = 0; k < 4; ++k) EXPECT_EQ(st_.lastProcOfStack(k), -1);
}

TEST_F(AffinityStateFixture, AgeNeverNegative) {
  st_.onComplete(1, 0, 0, 1000.0);
  // Query at the same instant (completion and immediate restart).
  EXPECT_DOUBLE_EQ(st_.codeAge(1, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(st_.streamAge(1, 0, 1000.0), 0.0);
}

TEST_F(AffinityStateFixture, LastProtocolTimeTracksPerProcessor) {
  EXPECT_LT(st_.lastProtocolTime(0), 0.0);  // -inf initially
  st_.onComplete(0, 0, 0, 700.0);
  st_.onComplete(2, 1, 1, 900.0);
  EXPECT_DOUBLE_EQ(st_.lastProtocolTime(0), 700.0);
  EXPECT_DOUBLE_EQ(st_.lastProtocolTime(2), 900.0);
  EXPECT_GT(st_.lastProtocolTime(2), st_.lastProtocolTime(0));
}

}  // namespace
}  // namespace affinity
