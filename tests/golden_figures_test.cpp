// golden_figures_test — pins the headline numbers behind EXPERIMENTS.md so a
// regression that bends a paper conclusion fails a test instead of silently
// shifting a table.
//
// Each test replicates its bench driver's exact configuration (16 streams,
// derivePointSeed(seed=1, point index), the full-run auto windows), so the
// pinned values are the same numbers the driver prints. The simulation is
// deterministic; the per-figure tolerances (named in golden_tolerance.hpp)
// only absorb benign floating-point reassociation from compiler/library
// changes, while shape assertions (orderings, crossovers, scaling ratios)
// encode the paper's conclusions themselves. docs/OBSERVABILITY.md explains
// the policy.
//
// Paper: Salehi, Kurose, Towsley, "The Performance Impact of Scheduling for
// Cache Affinity in Parallel Network Processing" (HPDC 1995): Figures 6-13.
#include <gtest/gtest.h>

#include "golden_tolerance.hpp"

#include "core/capacity.hpp"
#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"

namespace affinity {
namespace {

// The bench drivers' full-run configuration (bench/common.hpp makeConfig
// with default flags).
SimConfig goldenConfig() {
  SimConfig c = defaultSimConfig();
  c.num_procs = 8;
  c.lock_overhead_us = 20.0;
  c.critical_section_us = 8.0;
  c.seed = 1;
  c.warmup_us = 200'000.0;
  c.measure_us = 2'000'000.0;
  return c;
}

// makeConfigFor: measurement window sized for the point's rate (80k packets).
SimConfig goldenConfigFor(double rate_per_us) {
  SimConfig c = goldenConfig();
  setAutoWindow(c, rate_per_us, 80'000);
  return c;
}

// The sweep-point seed the drivers use (splitmix of --seed=1 and the index).
std::uint64_t goldenSeed(std::uint64_t point_index) { return derivePointSeed(1, point_index); }

// Figure 6 (Locking): MRU beats Wired-Streams at 38k pkts/s, but Wired is
// the only policy still stable at 42k — the crossover the paper puts just
// above 40k pkts/s.
TEST(GoldenFigures, Fig6MruWiredCrossoverAbove40k) {
  const auto model = ExecTimeModel::standard();

  // rate 0.038 pkts/us = sweep index 9 of rateSweep(false)
  {
    const auto streams = makePoissonStreams(16, 0.038);
    SimConfig c = goldenConfigFor(0.038);
    c.seed = goldenSeed(9);
    c.policy.paradigm = Paradigm::kLocking;
    c.policy.locking = LockingPolicy::kMru;
    const RunMetrics mru = runOnce(c, model, streams);
    c.policy.locking = LockingPolicy::kWiredStreams;
    const RunMetrics wired = runOnce(c, model, streams);

    EXPECT_FALSE(mru.saturated);
    EXPECT_FALSE(wired.saturated);
    EXPECT_LT(mru.mean_delay_us, wired.mean_delay_us) << "MRU must win below the crossover";
    golden::expectPinned("fig6", mru.mean_delay_us, 360.8368, "MRU delay at 38k");
    golden::expectPinned("fig6", wired.mean_delay_us, 482.8502, "Wired delay at 38k");
  }

  // rate 0.042 pkts/us = sweep index 11: MRU has saturated, Wired has not.
  {
    const auto streams = makePoissonStreams(16, 0.042);
    SimConfig c = goldenConfigFor(0.042);
    c.seed = goldenSeed(11);
    c.policy.paradigm = Paradigm::kLocking;
    c.policy.locking = LockingPolicy::kMru;
    const RunMetrics mru = runOnce(c, model, streams);
    c.policy.locking = LockingPolicy::kWiredStreams;
    const RunMetrics wired = runOnce(c, model, streams);

    EXPECT_TRUE(mru.saturated) << "MRU must be past saturation at 42k";
    EXPECT_FALSE(wired.saturated) << "Wired must still be stable at 42k";
    golden::expectPinned("fig6", wired.mean_delay_us, 699.8590, "Wired delay at 42k");
    EXPECT_GT(mru.mean_delay_us, 10.0 * wired.mean_delay_us);
  }
}

// Figure 8 (IPS): at very light load (1k pkts/s) MRU — concentrating all
// stacks on few processors so the shared protocol text stays warm — beats
// both Random and Wired placement.
TEST(GoldenFigures, Fig8LowRateMruWin) {
  const auto model = ExecTimeModel::standard();
  const double rate = 0.001;  // index 2 of rateSweepWithLowEnd(false)
  const auto streams = makePoissonStreams(16, rate);

  double delay[3] = {0, 0, 0};
  const IpsPolicy policies[3] = {IpsPolicy::kRandom, IpsPolicy::kMru, IpsPolicy::kWired};
  for (int i = 0; i < 3; ++i) {
    SimConfig c = goldenConfigFor(rate);
    c.seed = goldenSeed(2);
    c.policy.paradigm = Paradigm::kIps;
    c.policy.ips = policies[i];
    delay[i] = runOnce(c, model, streams).mean_delay_us;
  }
  golden::expectPinned("fig8", delay[0], 226.9830, "Random delay at 1k");
  golden::expectPinned("fig8", delay[1], 197.1524, "MRU delay at 1k");
  golden::expectPinned("fig8", delay[2], 200.1067, "Wired delay at 1k");
  EXPECT_LT(delay[1], delay[2]) << "MRU must beat Wired at light load";
  EXPECT_LT(delay[2], delay[0]) << "Wired must beat Random at light load";
}

// Figure 9: maximum throughput capacity under a 1 ms delay bound — the
// paper's headline Locking 40.6k vs IPS 54.9k pkts/s (EXPERIMENTS.md).
TEST(GoldenFigures, Fig9CapacityLockingVsIps) {
  const auto model = ExecTimeModel::standard();
  const auto make = [](double rate) { return makePoissonStreams(16, rate); };

  SimConfig locking = goldenConfig();
  locking.policy.paradigm = Paradigm::kLocking;
  locking.policy.locking = LockingPolicy::kMru;
  locking.measure_us = 800'000.0;
  SimConfig ips = locking;
  ips.policy.paradigm = Paradigm::kIps;
  ips.policy.ips = IpsPolicy::kWired;

  const CapacityResult cl = findMaxRate(locking, model, make, 0.002, 0.08, 1000.0, 10);
  const CapacityResult ci = findMaxRate(ips, model, make, 0.002, 0.08, 1000.0, 10);
  const double locking_pkts_s = cl.max_rate_per_us * 1e6;
  const double ips_pkts_s = ci.max_rate_per_us * 1e6;

  // Pin against EXPERIMENTS.md's reported 40.6k / 54.9k.
  golden::expectPinned("fig9-capacity", locking_pkts_s, 40'600.0, "Locking capacity");
  golden::expectPinned("fig9-capacity", ips_pkts_s, 54'900.0, "IPS capacity");
  EXPECT_GT(ips_pkts_s / locking_pkts_s, 1.25) << "IPS must out-scale Locking by a wide margin";
}

// Figure 10: affinity scheduling (Stream-MRU) vs FCFS under Locking with no
// per-stream state variance (V=0) cuts mean delay by at least 40 % at 40k
// pkts/s.
TEST(GoldenFigures, Fig10StreamMruReductionAtLeast40Pct) {
  const auto model = ExecTimeModel::standard();
  const double rate = 0.040;  // index 10 of rateSweep(false)
  const auto streams = makePoissonStreams(16, rate);

  SimConfig c = goldenConfigFor(rate);
  c.seed = goldenSeed(10);
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = LockingPolicy::kFcfs;
  const RunMetrics base = runOnce(c, model, streams);
  c.policy.locking = LockingPolicy::kStreamMru;
  const RunMetrics aff = runOnce(c, model, streams);

  EXPECT_FALSE(base.saturated);
  EXPECT_FALSE(aff.saturated);
  golden::expectPinned("fig10", base.mean_delay_us, 584.72, "FCFS delay at 40k");
  golden::expectPinned("fig10", aff.mean_delay_us, 271.50, "Stream-MRU delay at 40k");
  const double reduction = (base.mean_delay_us - aff.mean_delay_us) / base.mean_delay_us * 100.0;
  EXPECT_GE(reduction, 40.0) << "affinity must cut delay by >= 40% (paper: ~50%)";
}

// Figure 12: burstiness crossover. At 12k pkts/s Locking and IPS swap
// places as the per-stream batch size grows: IPS wins at batch 1, loses
// badly (>= 2x) by batch 8 — bursts pile onto one wired processor.
TEST(GoldenFigures, Fig12BurstinessCrossover) {
  const auto model = ExecTimeModel::standard();

  const auto run_pair = [&](double batch, std::uint64_t idx) {
    const auto streams = makeBatchStreams(16, 0.012, batch, false);
    SimConfig lc = goldenConfig();
    lc.policy.paradigm = Paradigm::kLocking;
    lc.policy.locking = LockingPolicy::kMru;
    SimConfig ic = goldenConfig();
    ic.policy.paradigm = Paradigm::kIps;
    ic.policy.ips = IpsPolicy::kWired;
    lc.seed = ic.seed = goldenSeed(idx);
    const double l = runOnce(lc, model, streams).mean_delay_us;
    const double i = runOnce(ic, model, streams).mean_delay_us;
    return std::pair{l, i};
  };

  const auto [l1, i1] = run_pair(1.0, 0);  // batch 1 = sweep index 0
  golden::expectPinned("fig12", l1, 215.70, "Locking delay at batch 1");
  golden::expectPinned("fig12", i1, 186.79, "IPS delay at batch 1");
  EXPECT_LT(i1, l1) << "IPS must win at batch size 1";

  const auto [l8, i8] = run_pair(8.0, 3);  // batch 8 = sweep index 3
  golden::expectPinned("fig12", l8, 295.62, "Locking delay at batch 8");
  golden::expectPinned("fig12", i8, 808.11, "IPS delay at batch 8");
  EXPECT_GT(i8 / l8, 2.0) << "IPS must be >= 2x worse at batch size 8";
}

// Figure 13: single-stream capacity vs processor count. A single stream's
// IPS capacity is pinned near one processor's throughput regardless of
// machine size, while Locking scales with processors.
TEST(GoldenFigures, Fig13IpsSingleStreamPinned) {
  const auto model = ExecTimeModel::standard();
  const auto make = [](double rate) { return makePoissonStreams(1, rate); };

  const auto capacities = [&](unsigned procs, std::uint64_t idx) {
    SimConfig locking = goldenConfig();
    locking.seed = goldenSeed(idx);
    locking.num_procs = procs;
    locking.policy.paradigm = Paradigm::kLocking;
    locking.policy.locking = LockingPolicy::kMru;
    locking.measure_us = 600'000.0;
    SimConfig ips = locking;
    ips.policy.paradigm = Paradigm::kIps;
    ips.policy.ips = IpsPolicy::kWired;
    const CapacityResult cl = findMaxRate(locking, model, make, 0.001, 0.09, 2000.0, 10);
    const CapacityResult ci = findMaxRate(ips, model, make, 0.001, 0.09, 2000.0, 10);
    return std::pair{cl.max_rate_per_us * 1e6, ci.max_rate_per_us * 1e6};
  };

  const auto [l1, i1] = capacities(1, 0);  // procs=1 = sweep index 0
  golden::expectPinned("fig13-capacity", l1, 6127.9, "Locking capacity at 1 proc");
  golden::expectPinned("fig13-capacity", i1, 7257.8, "IPS capacity at 1 proc");

  const auto [l8, i8] = capacities(8, 2);  // procs=8 = sweep index 2
  golden::expectPinned("fig13-capacity", l8, 51410.2, "Locking capacity at 8 procs");
  golden::expectPinned("fig13-capacity", i8, 7170.9, "IPS capacity at 8 procs");

  EXPECT_GT(l8 / l1, 4.0) << "Locking must scale with processors";
  EXPECT_NEAR(i8 / i1, 1.0, 0.1) << "IPS single-stream capacity must stay pinned";
}

}  // namespace
}  // namespace affinity
