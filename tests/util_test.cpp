// Tests for src/util: RNG determinism and distribution sanity, CLI parsing,
// table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace affinity {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng s1 = parent.split(1);
  Rng s2 = parent.split(2);
  Rng s1b = Rng(7).split(1);
  EXPECT_EQ(s1(), s1b());
  // Parent state is unaffected by splitting.
  Rng parent2(7);
  EXPECT_EQ(parent(), parent2());
  // Distinct streams differ.
  EXPECT_NE(s1(), s2());
}

TEST(Rng, UniformBoundsAndMean) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, 500);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05 / rate);
}

TEST(Rng, GeometricMean) {
  Rng rng(13);
  const double p = 0.2;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, 1.0 / p, 0.1);
  EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  Rng rng(19);
  for (double mean : {0.5, 4.0, 80.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, std::max(0.05 * mean, 0.03)) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Cli, ParsesTypedFlags) {
  Cli cli("prog", "test");
  const int& iv = cli.flag<int>("count", 3, "a count");
  const double& dv = cli.flag<double>("rate", 1.5, "a rate");
  const bool& bv = cli.flag<bool>("csv", false, "csv output");
  const std::string& sv = cli.flag<std::string>("name", "x", "a name");
  const char* argv[] = {"prog", "--count", "42", "--rate=2.5", "--csv", "--name", "hello"};
  cli.parse(7, const_cast<char**>(argv));
  EXPECT_EQ(iv, 42);
  EXPECT_DOUBLE_EQ(dv, 2.5);
  EXPECT_TRUE(bv);
  EXPECT_EQ(sv, "hello");
  EXPECT_TRUE(cli.provided("count"));
  EXPECT_FALSE(cli.provided("missing"));
}

TEST(Cli, DefaultsSurviveWhenNotProvided) {
  Cli cli("prog", "test");
  const int& iv = cli.flag<int>("count", 3, "a count");
  const char* argv[] = {"prog"};
  cli.parse(1, const_cast<char**>(argv));
  EXPECT_EQ(iv, 3);
}

TEST(Cli, BoolAcceptsExplicitValue) {
  Cli cli("prog", "test");
  const bool& bv = cli.flag<bool>("csv", true, "csv");
  const char* argv[] = {"prog", "--csv=false"};
  cli.parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(bv);
}

// Cli error paths all route through usage_and_exit(2): the process prints a
// diagnostic on stderr and exits with status 2, so drivers fail loudly on a
// typo'd sweep flag instead of silently benchmarking the default config.
// (Helper keeps the argv initializer-list commas inside the call parens,
// out of reach of the EXPECT_EXIT macro's argument scan.)
void parseFlags(std::vector<std::string> args) {
  Cli cli("prog", "test");
  cli.flag<int>("count", 3, "a count");
  cli.flag<double>("rate", 1.5, "a rate");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, UnknownFlagExitsWithUsage) {
  EXPECT_EXIT(parseFlags({"prog", "--quirk", "7"}), testing::ExitedWithCode(2),
              "unknown flag '--quirk'");
}

TEST(Cli, MissingValueExits) {
  EXPECT_EXIT(parseFlags({"prog", "--count"}), testing::ExitedWithCode(2),
              "flag '--count' needs a value");
}

TEST(Cli, BadValueExits) {
  EXPECT_EXIT(parseFlags({"prog", "--rate=fast"}), testing::ExitedWithCode(2),
              "bad value 'fast' for flag '--rate'");
}

TEST(Cli, TrailingGarbageInNumberExits) {
  // from_chars must consume the whole token: "42x" is an error, not 42.
  EXPECT_EXIT(parseFlags({"prog", "--count=42x"}), testing::ExitedWithCode(2),
              "bad value '42x'");
}

TEST(Cli, PositionalArgumentExits) {
  EXPECT_EXIT(parseFlags({"prog", "stray"}), testing::ExitedWithCode(2),
              "unexpected argument 'stray'");
}

TEST(Cli, HelpExitsZero) {
  EXPECT_EXIT(parseFlags({"prog", "--help"}), testing::ExitedWithCode(0), "");
}

TEST(TableDeathTest, EmptyColumnsAborts) {
  EXPECT_DEATH(TableWriter({}, false, 2), "CHECK failed");
}

TEST(TableDeathTest, AddBeforeBeginRowAborts) {
  TableWriter t({"a"}, false, 2);
  EXPECT_DEATH(t.add(1.0), "CHECK failed");
  EXPECT_DEATH(t.addText("x"), "CHECK failed");
}

TEST(Table, RaggedRowsPrintWithoutOverrunningColumns) {
  // A row shorter than the header is legal (drivers sometimes omit trailing
  // diagnostics); print must not read past the row or the widths vector.
  TableWriter t({"a", "b", "c"}, /*csv=*/false, 1);
  t.beginRow();
  t.add(1.0);
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  t.print(mem);
  std::fclose(mem);
  std::string s(buf, len);
  free(buf);
  EXPECT_NE(s.find("1.0"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 1u);
}

TEST(Table, AlignedOutputContainsColumnsAndRows) {
  TableWriter t({"rate", "delay"}, /*csv=*/false, 2);
  t.addRow({1.0, 234.5});
  t.addRow({2.0, 345.25});
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  t.print(mem);
  std::fclose(mem);
  std::string s(buf, len);
  free(buf);
  EXPECT_NE(s.find("rate"), std::string::npos);
  EXPECT_NE(s.find("234.50"), std::string::npos);
  EXPECT_NE(s.find("345.25"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvOutput) {
  TableWriter t({"a", "b"}, /*csv=*/true, 1);
  t.beginRow();
  t.add(1.0);
  t.addText("hello");
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  t.print(mem);
  std::fclose(mem);
  std::string s(buf, len);
  free(buf);
  EXPECT_EQ(s, "a,b\n1.0,hello\n");
}

}  // namespace
}  // namespace affinity
