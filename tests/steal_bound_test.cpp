// steal_bound_test — the Gu et al. steal-cache-complexity envelope.
//
// Two halves, deliberately independent:
//
//  1. Unit tests of the envelope arithmetic itself (cache/steal_bound.hpp):
//     per-level min(footprint, capacity) clamping, LLC inclusion, and the
//     cycles → microseconds conversion.
//  2. A regression on the Figure 12 burst workload under kStealAffinity:
//     the simulator's measured migrated-footprint reload cost
//     (RunMetrics::steal_reload_us, accumulated per stolen job inside the
//     measurement window) must stay under the theoretical envelope computed
//     from cache geometry and the ProtocolLayout-derived footprint line
//     counts. The footprint is derived here, in the test, from the layout —
//     cache/ cannot see cachesim/, so the envelope check is a genuine
//     cross-layer invariant rather than the simulator grading its own work.
#include <gtest/gtest.h>

#include "cache/steal_bound.hpp"
#include "cachesim/trace.hpp"
#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"

namespace affinity {
namespace {

// ------------------------------------------------- envelope arithmetic ---

TEST(StealBound, PerLevelCyclesAddUp) {
  const MachineParams m = MachineParams::sgiChallenge();
  const StealFootprintLines fp{100.0, 50.0, 0.0};
  // 100 L1 fills at 12 cycles + 50 L2 fills at 85 cycles; no LLC in 1995.
  EXPECT_DOUBLE_EQ(stealColdMissCyclesBound(m, fp), 100.0 * 12.0 + 50.0 * 85.0);
}

TEST(StealBound, FootprintClampedByCapacity) {
  const MachineParams m = MachineParams::sgiChallenge();
  // 16 KB / 32 B = 512 lines per L1, 1024 for I+D; 1 MB / 128 B = 8192 L2.
  const StealFootprintLines huge{1e9, 1e9, 1e9};
  const double l1_cap = static_cast<double>(m.l1i.lines() + m.l1d.lines());
  const double l2_cap = static_cast<double>(m.l2.lines());
  EXPECT_DOUBLE_EQ(stealColdMissCyclesBound(m, huge),
                   l1_cap * m.l1_miss_cycles + l2_cap * m.l2_miss_cycles);
  // Monotone: a bigger footprint never shrinks the bound.
  const StealFootprintLines small{10.0, 10.0, 10.0};
  EXPECT_LE(stealColdMissCyclesBound(m, small), stealColdMissCyclesBound(m, huge));
}

TEST(StealBound, SharedLlcLevelIncludedWhenPresent) {
  const MachineParams modern = MachineParams::modern2020();
  const StealFootprintLines fp{100.0, 100.0, 100.0};
  const double without_llc = 100.0 * modern.l1_miss_cycles + 100.0 * modern.l2_miss_cycles;
  EXPECT_DOUBLE_EQ(stealColdMissCyclesBound(modern, fp),
                   without_llc + 100.0 * modern.llc_miss_cycles);
  // The 1995 machine has llc.size_bytes == 0: the llc term must vanish even
  // with a nonzero llc footprint.
  EXPECT_DOUBLE_EQ(stealColdMissCyclesBound(MachineParams::sgiChallenge(), fp),
                   100.0 * 12.0 + 100.0 * 85.0);
}

TEST(StealBound, EnvelopeMicrosecondsAndPenalty) {
  const MachineParams m = MachineParams::sgiChallenge();
  const StealFootprintLines fp{100.0, 0.0, 0.0};
  // 3 stolen jobs at 1200 cycles each on a 100 MHz clock = 36 us, plus 2
  // steal operations at 5 us.
  EXPECT_DOUBLE_EQ(stealCacheComplexityEnvelopeUs(m, fp, 2, 3, 5.0),
                   3.0 * (100.0 * 12.0) / m.clock_hz * 1e6 + 2.0 * 5.0);
  // No steals: no envelope.
  EXPECT_DOUBLE_EQ(stealCacheComplexityEnvelopeUs(m, fp, 0, 0, 5.0), 0.0);
}

// ------------------------------------------ Figure 12 burst regression ---

// Per-level footprint line counts of one packet execution, derived from the
// ProtocolLayout the trace generator (and the measured reload parameters)
// model: code + shared structures + one stream's state + one packet buffer.
StealFootprintLines protocolFootprint(const MachineParams& m) {
  const ProtocolLayout lay = ProtocolLayout::standard();
  const double bytes = static_cast<double>(lay.code_bytes + lay.shared_bytes +
                                           lay.stream_bytes_each + lay.pkt_bytes_each);
  StealFootprintLines fp;
  fp.l1 = bytes / m.l1d.line_bytes;
  fp.l2 = bytes / m.l2.line_bytes;
  fp.llc = m.llc.size_bytes != 0 ? bytes / m.llc.line_bytes : 0.0;
  return fp;
}

TEST(StealBound, Fig12BurstStealsStayUnderEnvelope) {
  // The Figure 12 batch-8 burst point is the steal-heavy regime: bursts
  // pile onto one processor's queue and kStealAffinity migrates the
  // overflow. Every migrated job's measured reload (plus the flat steal
  // penalties) must stay under the theoretical envelope.
  const auto model = ExecTimeModel::standard();
  const auto streams = makeBatchStreams(16, 0.012, 8.0, false);
  SimConfig c = defaultSimConfig();
  c.num_procs = 8;
  c.lock_overhead_us = 20.0;
  c.critical_section_us = 8.0;
  c.seed = derivePointSeed(1, 3);  // fig12 batch-8 sweep point
  c.warmup_us = 100'000.0;
  c.measure_us = 600'000.0;
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = LockingPolicy::kStealAffinity;
  const RunMetrics m = runOnce(c, model, streams);

  ASSERT_GT(m.steals, 0u) << "burst workload must trigger steals";
  ASSERT_GE(m.stolen_jobs, m.steals);
  ASSERT_GT(m.steal_reload_us, 0.0);

  const double envelope = stealCacheComplexityEnvelopeUs(
      model.machineParams(), protocolFootprint(model.machineParams()), m.steals, m.stolen_jobs,
      c.steal_penalty_us);
  EXPECT_LE(m.steal_reload_us, envelope)
      << "measured migrated-footprint reload cost exceeds the steal-cache-complexity bound ("
      << m.stolen_jobs << " stolen jobs)";
  // The envelope is an upper bound, not a tautology: it must be finite and
  // within a small constant factor of the worst-case per-job reload, or the
  // check has degenerated into comparing against infinity.
  const double per_job_cold =
      model.reloadParams().dl1_us + model.reloadParams().dl2_us + model.reloadParams().dl3_us;
  EXPECT_LT(envelope, static_cast<double>(m.stolen_jobs) * 20.0 * per_job_cold +
                          static_cast<double>(m.steals) * c.steal_penalty_us);
}

}  // namespace
}  // namespace affinity
