// Tests for the TCP receive path: handshake, header-prediction fast path,
// reassembly, duplicates, FIN/RST, checksums, demux, and the full
// FDDI/IP/TCP stack.
#include <gtest/gtest.h>

#include <string>

#include "proto/stack.hpp"
#include "proto/tcp.hpp"
#include "util/rng.hpp"

namespace affinity {
namespace {

std::vector<std::uint8_t> bytesOf(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// A helper driving one session directly (no framing).
class SessionDriver {
 public:
  SessionDriver() : session_(8000, 0x0a000002, 3000) {}

  DropReason feed(std::uint32_t seq, const std::string& data, std::uint8_t flags,
                  std::uint32_t ack = 0) {
    TcpHeader h;
    h.src_port = 3000;
    h.dst_port = 8000;
    h.seq = seq;
    h.ack = ack;
    h.flags = flags;
    DropReason drop = DropReason::kNone;
    const auto payload = bytesOf(data);
    session_.segment(h, payload, acks_, drop);
    return drop;
  }

  /// Performs SYN + completing ACK so the session is established with
  /// rcv_nxt == isn + 1.
  void establish(std::uint32_t isn = 100) {
    feed(isn, "", TcpHeader::kFlagSyn);
    ASSERT_EQ(session_.state(), TcpSession::State::kSynReceived);
    ASSERT_EQ(acks_.back().flags, TcpHeader::kFlagSyn | TcpHeader::kFlagAck);
    feed(isn + 1, "", TcpHeader::kFlagAck, acks_.back().seq + 1);
    ASSERT_EQ(session_.state(), TcpSession::State::kEstablished);
  }

  std::string readAll() {
    std::vector<std::uint8_t> out;
    session_.read(out);
    return std::string(out.begin(), out.end());
  }

  TcpSession session_;
  std::vector<TcpAckDescriptor> acks_;
};

TEST(TcpSessionTest, HandshakeEstablishes) {
  SessionDriver d;
  d.establish(500);
  EXPECT_EQ(d.session_.rcvNxt(), 501u);
}

TEST(TcpSessionTest, InOrderDataTakesFastPath) {
  SessionDriver d;
  d.establish(100);
  d.feed(101, "hello ", TcpHeader::kFlagAck | TcpHeader::kFlagPsh);
  d.feed(107, "world", TcpHeader::kFlagAck | TcpHeader::kFlagPsh);
  EXPECT_EQ(d.readAll(), "hello world");
  EXPECT_EQ(d.session_.stats().fast_path, 2u);
  EXPECT_EQ(d.session_.rcvNxt(), 112u);
}

TEST(TcpSessionTest, DelayedAckEverySecondSegment) {
  SessionDriver d;
  d.establish(100);
  const std::size_t before = d.acks_.size();
  d.feed(101, "aaaa", TcpHeader::kFlagAck);  // ack withheld
  EXPECT_EQ(d.acks_.size(), before);
  d.feed(105, "bbbb", TcpHeader::kFlagAck);  // second segment -> ack
  ASSERT_EQ(d.acks_.size(), before + 1);
  EXPECT_EQ(d.acks_.back().ack, 109u);
}

TEST(TcpSessionTest, OutOfOrderSegmentsReassemble) {
  SessionDriver d;
  d.establish(100);
  d.feed(105, "efgh", TcpHeader::kFlagAck);  // gap: 101..104 missing
  EXPECT_EQ(d.session_.stats().out_of_order, 1u);
  EXPECT_EQ(d.session_.reassemblyDepth(), 1u);
  EXPECT_EQ(d.readAll(), "");  // nothing deliverable yet
  d.feed(101, "abcd", TcpHeader::kFlagAck);  // fills the gap
  EXPECT_EQ(d.readAll(), "abcdefgh");
  EXPECT_EQ(d.session_.reassemblyDepth(), 0u);
  EXPECT_EQ(d.session_.rcvNxt(), 109u);
}

TEST(TcpSessionTest, GapGeneratesImmediateDuplicateAck) {
  SessionDriver d;
  d.establish(100);
  const std::size_t before = d.acks_.size();
  d.feed(200, "late", TcpHeader::kFlagAck);
  ASSERT_EQ(d.acks_.size(), before + 1);
  EXPECT_EQ(d.acks_.back().ack, 101u) << "dup-ACK must re-advertise rcv_nxt";
}

TEST(TcpSessionTest, DuplicateDataCountedAndReAcked) {
  SessionDriver d;
  d.establish(100);
  d.feed(101, "data", TcpHeader::kFlagAck);
  d.feed(101, "data", TcpHeader::kFlagAck);  // retransmission
  EXPECT_EQ(d.session_.stats().duplicates, 1u);
  EXPECT_EQ(d.readAll(), "data");
}

TEST(TcpSessionTest, PartialOverlapAcceptsOnlyNewBytes) {
  SessionDriver d;
  d.establish(100);
  d.feed(101, "abcd", TcpHeader::kFlagAck);
  d.feed(103, "cdEF", TcpHeader::kFlagAck);  // first two bytes already held
  EXPECT_EQ(d.readAll(), "abcdEF");
  EXPECT_EQ(d.session_.rcvNxt(), 107u);
}

TEST(TcpSessionTest, FinMovesToCloseWait) {
  SessionDriver d;
  d.establish(100);
  d.feed(101, "bye", TcpHeader::kFlagAck | TcpHeader::kFlagPsh);
  d.feed(104, "", TcpHeader::kFlagAck | TcpHeader::kFlagFin);
  EXPECT_EQ(d.session_.state(), TcpSession::State::kCloseWait);
  EXPECT_EQ(d.session_.rcvNxt(), 105u);  // FIN consumed a sequence number
  EXPECT_EQ(d.readAll(), "bye");
}

TEST(TcpSessionTest, OutOfOrderFinWaitsForData) {
  SessionDriver d;
  d.establish(100);
  d.feed(105, "", TcpHeader::kFlagAck | TcpHeader::kFlagFin);  // FIN beyond gap
  EXPECT_EQ(d.session_.state(), TcpSession::State::kEstablished);
}

TEST(TcpSessionTest, RstClosesImmediately) {
  SessionDriver d;
  d.establish(100);
  d.feed(101, "", TcpHeader::kFlagRst);
  EXPECT_EQ(d.session_.state(), TcpSession::State::kClosed);
  EXPECT_EQ(d.feed(102, "x", TcpHeader::kFlagAck), DropReason::kTcpBadState);
}

TEST(TcpSessionTest, SynRetransmissionReAnswered) {
  SessionDriver d;
  d.feed(100, "", TcpHeader::kFlagSyn);
  const std::size_t before = d.acks_.size();
  d.feed(100, "", TcpHeader::kFlagSyn);  // retransmitted SYN
  ASSERT_EQ(d.acks_.size(), before + 1);
  EXPECT_EQ(d.acks_.back().flags, TcpHeader::kFlagSyn | TcpHeader::kFlagAck);
}

TEST(TcpSessionTest, FastPathSuppressedWhileReassembling) {
  SessionDriver d;
  d.establish(100);
  d.feed(110, "zz", TcpHeader::kFlagAck);  // creates a gap
  const auto fast_before = d.session_.stats().fast_path;
  d.feed(101, "abcdefghi", TcpHeader::kFlagAck);  // in-order but must drain
  EXPECT_EQ(d.session_.stats().fast_path, fast_before) << "slow path must handle the drain";
  EXPECT_EQ(d.readAll(), "abcdefghizz");
}

class TcpShuffleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpShuffleProperty, AnyDeliveryOrderReassemblesTheStream) {
  // Property: segments of a stream delivered in ANY order (with duplicates)
  // reassemble to exactly the original byte stream, once all have arrived.
  Rng rng(GetParam());
  SessionDriver d;
  d.establish(100);

  // Build the original stream and cut it into random-sized segments.
  std::string stream;
  for (int i = 0; i < 600; ++i) stream.push_back(static_cast<char>('a' + (i * 17 + 3) % 26));
  struct Seg {
    std::uint32_t seq;
    std::string data;
  };
  std::vector<Seg> segs;
  std::uint32_t seq = 101;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t len = 1 + rng.uniform_u64(40);
    const std::string part = stream.substr(off, len);
    segs.push_back(Seg{seq, part});
    seq += static_cast<std::uint32_t>(part.size());
    off += part.size();
  }
  // Shuffle (Fisher–Yates) and sprinkle duplicates.
  for (std::size_t i = segs.size(); i > 1; --i)
    std::swap(segs[i - 1], segs[rng.uniform_u64(i)]);
  const std::size_t dup_count = segs.size() / 4;
  for (std::size_t i = 0; i < dup_count; ++i)
    segs.push_back(segs[rng.uniform_u64(segs.size())]);

  std::string received;
  for (const Seg& s : segs) {
    d.feed(s.seq, s.data, TcpHeader::kFlagAck);
    received += d.readAll();
  }
  received += d.readAll();
  EXPECT_EQ(received, stream);
  EXPECT_EQ(d.session_.reassemblyDepth(), 0u);
  EXPECT_EQ(d.session_.rcvNxt(), 101u + stream.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpShuffleProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(TcpHeaderTest, RoundTrip) {
  TcpHeader h;
  h.src_port = 3000;
  h.dst_port = 8000;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flags = TcpHeader::kFlagAck | TcpHeader::kFlagPsh;
  h.window = 4096;
  std::array<std::uint8_t, TcpHeader::kMinSize> buf{};
  h.encode(buf);
  const auto back = TcpHeader::decode(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 0xdeadbeefu);
  EXPECT_EQ(back->ack, 0x01020304u);
  EXPECT_TRUE(back->has(TcpHeader::kFlagPsh));
  EXPECT_FALSE(back->has(TcpHeader::kFlagSyn));
  EXPECT_EQ(back->window, 4096);
}

TEST(TcpHeaderTest, RejectsBadOffset) {
  std::array<std::uint8_t, TcpHeader::kMinSize> buf{};
  TcpHeader{}.encode(buf);
  buf[12] = 0x20;  // data offset 2 (< 5)
  EXPECT_FALSE(TcpHeader::decode(buf).has_value());
}

// --------------------------------------------------------- full TCP stack --

class TcpStackFixture : public ::testing::Test {
 protected:
  TcpStackFixture() { stack_.tcp().listen(8000); }

  ReceiveContext feedFrame(std::uint32_t seq, const std::string& data, std::uint8_t flags,
                           std::uint32_t ack = 0) {
    TcpFrameSpec spec;
    spec.seq = seq;
    spec.ack = ack;
    spec.flags = flags;
    return stack_.receiveFrame(buildTcpFrame(spec, bytesOf(data)));
  }

  TcpSession* session() { return stack_.tcp().find(8000, 0xc0a80102, 3000); }

  void establish() {
    ASSERT_FALSE(feedFrame(1000, "", TcpHeader::kFlagSyn).dropped());
    const auto acks = stack_.tcp().drainAcks();
    ASSERT_EQ(acks.size(), 1u);
    ASSERT_FALSE(feedFrame(1001, "", TcpHeader::kFlagAck, acks[0].seq + 1).dropped());
    ASSERT_NE(session(), nullptr);
    ASSERT_EQ(session()->state(), TcpSession::State::kEstablished);
  }

  DualProtocolStack stack_;
};

TEST_F(TcpStackFixture, ConnectAndStreamThroughWholeStack) {
  establish();
  feedFrame(1001, "the quick ", TcpHeader::kFlagAck);
  feedFrame(1011, "brown fox", TcpHeader::kFlagAck | TcpHeader::kFlagPsh);
  std::vector<std::uint8_t> out;
  session()->read(out);
  EXPECT_EQ(std::string(out.begin(), out.end()), "the quick brown fox");
  EXPECT_EQ(stack_.tcp().stats().delivered, 4u);
  EXPECT_EQ(session()->stats().fast_path, 2u);
}

TEST_F(TcpStackFixture, SegmentToUnknownPortDropped) {
  TcpFrameSpec spec;
  spec.dst_port = 9999;
  spec.flags = TcpHeader::kFlagSyn;
  const auto ctx = stack_.receiveFrame(buildTcpFrame(spec, {}));
  EXPECT_EQ(ctx.drop, DropReason::kTcpNoListener);
}

TEST_F(TcpStackFixture, NonSynToListenerWithoutSessionDropped) {
  const auto ctx = feedFrame(1001, "data", TcpHeader::kFlagAck);
  EXPECT_EQ(ctx.drop, DropReason::kTcpNoListener);
}

TEST_F(TcpStackFixture, CorruptChecksumDropped) {
  establish();
  TcpFrameSpec spec;
  spec.seq = 1001;
  auto frame = buildTcpFrame(spec, bytesOf("data"));
  frame.back() ^= 0x01;
  const auto ctx = stack_.receiveFrame(frame);
  EXPECT_EQ(ctx.drop, DropReason::kTcpBadChecksum);
}

TEST_F(TcpStackFixture, UdpAndTcpCoexist) {
  establish();
  stack_.udp().open(7000);
  FrameSpec udp_spec;
  const auto udp_ctx = stack_.receiveFrame(buildUdpFrame(udp_spec, bytesOf("datagram")));
  EXPECT_FALSE(udp_ctx.dropped());
  EXPECT_EQ(udp_ctx.dst_port, 7000);
  feedFrame(1001, "stream", TcpHeader::kFlagAck);
  EXPECT_EQ(session()->available(), 6u);
}

TEST_F(TcpStackFixture, TwoPeersDemuxToSeparateSessions) {
  establish();  // peer 0xc0a80102:3000
  TcpFrameSpec other;
  other.src_ip = 0xc0a80155;
  other.src_port = 4000;
  other.seq = 9000;
  other.flags = TcpHeader::kFlagSyn;
  ASSERT_FALSE(stack_.receiveFrame(buildTcpFrame(other, {})).dropped());
  EXPECT_EQ(stack_.tcp().sessionCount(), 2u);
  EXPECT_NE(stack_.tcp().find(8000, 0xc0a80155, 4000), nullptr);
}

TEST_F(TcpStackFixture, AckDescriptorsAddressThePeer) {
  establish();
  feedFrame(1001, "a", TcpHeader::kFlagAck);
  feedFrame(1002, "b", TcpHeader::kFlagAck);
  const auto acks = stack_.tcp().drainAcks();
  ASSERT_FALSE(acks.empty());
  EXPECT_EQ(acks.back().peer_addr, 0xc0a80102u);
  EXPECT_EQ(acks.back().peer_port, 3000);
  EXPECT_EQ(acks.back().local_port, 8000);
  EXPECT_EQ(acks.back().ack, 1003u);
  EXPECT_TRUE(stack_.tcp().drainAcks().empty()) << "drain must clear";
}

}  // namespace
}  // namespace affinity
