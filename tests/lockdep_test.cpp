// lockdep_test.cpp — unit tests for the dynamic lock-order tracker
// (util/lockdep.hpp) plus the dynamic-vs-static cross-check that ties the
// two halves of the lock-discipline layer together: every acquisition edge
// lockdep observes while a real engine runs must lie inside the transitive
// closure of the static acquisition graph afflint extracts from the sources
// (lexical nestings + AFF_ACQUIRED_BEFORE/AFTER declarations).
//
// The unit tests drive onAcquire/onRelease directly with fake addresses, so
// they run in every tree — the cycle detector is compiled unconditionally.
// Only the cross-check needs the mutex hooks live (-DAFF_LOCKDEP=ON) and
// GTEST_SKIPs elsewhere.
#include "util/lockdep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "net/ordering.hpp"
#include "proto/stack.hpp"
#include "runtime/engine.hpp"

namespace affinity {
namespace {

// Drains a writeJson/writeDot-style writer into a string via a temp stream.
std::string capture(void (*writer)(std::FILE*)) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  writer(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string joined(const std::vector<std::string>& reports) {
  std::ostringstream out;
  for (const auto& r : reports) out << "  " << r << "\n";
  return out.str();
}

TEST(Lockdep, ObservedNestingMakesOneEdgeWithBothSites) {
  lockdep::reset();
  int a = 0, b = 0;
  lockdep::onAcquire(&a, "Test::outer", "outer.cpp", 10);
  lockdep::onAcquire(&b, "Test::inner", "inner.cpp", 20);
  lockdep::onRelease(&b);
  lockdep::onRelease(&a);
  const auto es = lockdep::edges();
  ASSERT_EQ(es.size(), 1u);
  EXPECT_EQ(es[0].from, "Test::outer");
  EXPECT_EQ(es[0].to, "Test::inner");
  EXPECT_EQ(es[0].from_site, "outer.cpp:10");
  EXPECT_EQ(es[0].to_site, "inner.cpp:20");
  EXPECT_EQ(lockdep::cycleCount(), 0u) << joined(lockdep::reports());
  lockdep::reset();
}

TEST(Lockdep, AbThenBaClosesACycleWithAFirstWitnessReport) {
  lockdep::reset();
  int a = 0, b = 0;
  lockdep::onAcquire(&a, "Test::a", "ab.cpp", 1);
  lockdep::onAcquire(&b, "Test::b", "ab.cpp", 2);
  lockdep::onRelease(&b);
  lockdep::onRelease(&a);
  lockdep::onAcquire(&b, "Test::b", "ba.cpp", 3);
  lockdep::onAcquire(&a, "Test::a", "ba.cpp", 4);  // closes Test::a -> Test::b -> Test::a
  lockdep::onRelease(&a);
  lockdep::onRelease(&b);
  ASSERT_EQ(lockdep::cycleCount(), 1u);
  const auto reports = lockdep::reports();
  ASSERT_EQ(reports.size(), 1u);
  // The first witness carries both sites of the closing edge and the path
  // that already ordered the locks the other way.
  EXPECT_NE(reports[0].find("lock-order cycle"), std::string::npos) << reports[0];
  EXPECT_NE(reports[0].find("ba.cpp:4"), std::string::npos) << reports[0];
  EXPECT_NE(reports[0].find("ba.cpp:3"), std::string::npos) << reports[0];
  EXPECT_NE(reports[0].find("Test::a -> Test::b"), std::string::npos) << reports[0];

  // First witness only: exercising the same inverted order again is not a
  // new violation — the edge is already in the graph.
  lockdep::onAcquire(&b, "Test::b", "ba.cpp", 3);
  lockdep::onAcquire(&a, "Test::a", "ba.cpp", 4);
  lockdep::onRelease(&a);
  lockdep::onRelease(&b);
  EXPECT_EQ(lockdep::cycleCount(), 1u);
  lockdep::reset();
}

TEST(Lockdep, ReacquiringAHeldObjectIsASelfDeadlock) {
  lockdep::reset();
  int a = 0;
  // Identity-based, so it works for unnamed (e.g. test-local) mutexes too.
  lockdep::onAcquire(&a, nullptr, "self.cpp", 5);
  lockdep::onAcquire(&a, nullptr, "self.cpp", 9);
  lockdep::onRelease(&a);
  lockdep::onRelease(&a);
  ASSERT_EQ(lockdep::cycleCount(), 1u);
  const auto reports = lockdep::reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("self-deadlock"), std::string::npos) << reports[0];
  EXPECT_NE(reports[0].find("self.cpp:5"), std::string::npos) << reports[0];
  EXPECT_NE(reports[0].find("self.cpp:9"), std::string::npos) << reports[0];
  lockdep::reset();
}

TEST(Lockdep, UnnamedMutexesStayInTheHeldSetButAddNoEdges) {
  lockdep::reset();
  int named = 0, anon = 0;
  lockdep::onAcquire(&anon, nullptr, "anon.cpp", 1);
  lockdep::onAcquire(&named, "Test::named", "anon.cpp", 2);  // held lock unnamed: no edge
  lockdep::onRelease(&named);
  lockdep::onRelease(&anon);
  lockdep::onAcquire(&named, "Test::named", "anon.cpp", 3);
  lockdep::onAcquire(&anon, nullptr, "anon.cpp", 4);  // acquired lock unnamed: no edge
  lockdep::onRelease(&anon);
  lockdep::onRelease(&named);
  EXPECT_TRUE(lockdep::edges().empty());
  EXPECT_EQ(lockdep::cycleCount(), 0u);
  lockdep::reset();
}

TEST(Lockdep, ResetClearsEdgesAndReports) {
  lockdep::reset();
  int a = 0, b = 0;
  lockdep::onAcquire(&a, "Test::a", "r.cpp", 1);
  lockdep::onAcquire(&b, "Test::b", "r.cpp", 2);
  lockdep::onRelease(&b);
  lockdep::onRelease(&a);
  lockdep::onAcquire(&b, "Test::b", "r.cpp", 3);
  lockdep::onAcquire(&a, "Test::a", "r.cpp", 4);
  lockdep::onRelease(&a);
  lockdep::onRelease(&b);
  ASSERT_FALSE(lockdep::edges().empty());
  ASSERT_NE(lockdep::cycleCount(), 0u);
  lockdep::reset();
  EXPECT_TRUE(lockdep::edges().empty());
  EXPECT_TRUE(lockdep::reports().empty());
  EXPECT_EQ(lockdep::cycleCount(), 0u);
}

TEST(Lockdep, JsonAndDotExportsCarryTheGraphAndTheViolations) {
  lockdep::reset();
  int a = 0, b = 0;
  lockdep::onAcquire(&a, "Test::a", "x.cpp", 1);
  lockdep::onAcquire(&b, "Test::b", "x.cpp", 2);
  lockdep::onRelease(&b);
  lockdep::onRelease(&a);
  lockdep::onAcquire(&b, "Test::b", "y.cpp", 3);
  lockdep::onAcquire(&a, "Test::a", "y.cpp", 4);
  lockdep::onRelease(&a);
  lockdep::onRelease(&b);

  const std::string json = capture(&lockdep::writeJson);
  EXPECT_NE(json.find("\"edges\""), std::string::npos) << json;
  EXPECT_NE(json.find("{\"from\": \"Test::a\", \"to\": \"Test::b\", "
                      "\"from_site\": \"x.cpp:1\", \"to_site\": \"x.cpp:2\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cycle_count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("lock-order cycle"), std::string::npos) << json;

  const std::string dot = capture(&lockdep::writeDot);
  EXPECT_NE(dot.find("digraph lock_order"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"Test::a\" -> \"Test::b\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"Test::b\" -> \"Test::a\""), std::string::npos) << dot;
  lockdep::reset();
}

// ---------------------------------------------------------------------------
// Dynamic vs static cross-check.
// ---------------------------------------------------------------------------

// Is `to` reachable from `from` in the static acquisition graph? Declared
// edges count: a callback-mediated nesting (engine stack lock held around a
// delivered_observer that locks the OrderingChecker) is invisible to the
// lexical scanner, so the declaration on the member IS how it becomes
// statically known — exactly what the declarations are for.
bool staticallyOrdered(const lint::LockGraph& g, const std::string& from,
                       const std::string& to) {
  std::set<std::string> seen{from};
  std::vector<std::string> stack{from};
  while (!stack.empty()) {
    const std::string cur = stack.back();
    stack.pop_back();
    if (cur == to) return true;
    for (const auto& e : g.edges)
      if (e.from == cur && seen.insert(e.to).second) stack.push_back(e.to);
  }
  return false;
}

constexpr std::uint16_t kPort = 7000;
constexpr std::uint32_t kStreams = 4;
constexpr std::uint64_t kFramesPerStream = 50;

std::vector<std::uint8_t> frameFor(std::uint32_t stream) {
  FrameSpec spec;
  spec.dst_port = kPort;
  spec.src_port = static_cast<std::uint16_t>(1000 + stream);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return buildUdpFrame(spec, payload);
}

TEST(LockdepLiveTree, DynamicEdgesLieWithinTheStaticAcquisitionGraph) {
  if (!lockdep::enabled())
    GTEST_SKIP() << "tree configured without -DAFF_LOCKDEP=ON; hooks are compiled out";
  lockdep::reset();

  // Run a real LockingEngine workload with a delivered_observer that locks
  // an OrderingChecker — the one genuine cross-class nesting in the engine
  // paths (stack_mu_ held around the callback).
  net::OrderingChecker checker;
  EngineOptions options;
  options.queue_capacity = 1024;
  options.delivered_observer = [&checker](const WorkItem& item) {
    checker.record(item.stream, item.seq);
  };
  LockingEngine engine(2, HostConfig{}, options);
  engine.openPort(kPort, 1024);
  engine.start();
  for (std::uint64_t seq = 0; seq < kFramesPerStream; ++seq)
    for (std::uint32_t s = 0; s < kStreams; ++s)
      ASSERT_TRUE(engine.submit(WorkItem{frameFor(s), s, {}, seq}));
  engine.stop();
  ASSERT_EQ(checker.report().observed, kStreams * kFramesPerStream);

  // The run itself must be violation-free...
  EXPECT_EQ(lockdep::cycleCount(), 0u) << joined(lockdep::reports());

  // ...must have actually observed the observer nesting (the check below is
  // vacuous on an empty edge set)...
  const auto dyn = lockdep::edges();
  bool saw_observer_edge = false;
  for (const auto& e : dyn)
    saw_observer_edge = saw_observer_edge ||
                        (e.from == "LockingEngine::stack_mu_" && e.to == "OrderingChecker::mu_");
  EXPECT_TRUE(saw_observer_edge)
      << "expected the delivered-observer nesting in the observed graph; got "
      << dyn.size() << " edge(s)";

  // ...and every observed edge must be within the static graph's closure:
  // dynamic behavior never exercises an order the static pass doesn't know.
  const lint::LockGraph static_graph =
      lint::buildLockGraph(AFF_SOURCE_ROOT, {"src", "tools", "bench"});
  ASSERT_FALSE(static_graph.edges.empty());
  for (const auto& e : dyn) {
    EXPECT_TRUE(staticallyOrdered(static_graph, e.from, e.to))
        << e.from << " -> " << e.to << " (observed at " << e.to_site
        << ") is not in the static acquisition graph's transitive closure — "
           "add or fix an AFF_ACQUIRED_BEFORE/AFTER declaration";
  }
  lockdep::reset();
}

}  // namespace
}  // namespace affinity
