// Tests for src/core: the multiprocessor protocol simulation. Validates
// against queueing-theory closed forms (cache model disabled), checks
// conservation, determinism, policy invariants (via the observer hook), and
// the directional effects the paper reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "core/capacity.hpp"
#include "core/experiment.hpp"
#include "core/protocol_sim.hpp"

namespace affinity {
namespace {

// A model with no cache effects: constant service time t_warm.
ExecTimeModel constantModel(double t_us) {
  return ExecTimeModel(FlushModel(MachineParams::sgiChallenge(), SstParams::mvsWorkload()),
                       ReloadParams{t_us, 0.0, 0.0}, FootprintShares{});
}

SimConfig plainConfig(unsigned procs, Paradigm paradigm) {
  SimConfig c;
  c.num_procs = procs;
  c.policy.paradigm = paradigm;
  c.lock_overhead_us = 0.0;
  c.critical_section_us = 0.0;
  c.warmup_us = 100'000.0;
  c.measure_us = 2'000'000.0;
  return c;
}

// ---------------------------------------------------- queueing validation --

TEST(QueueTheory, MD1MeanDelayMatchesClosedForm) {
  // Locking/FCFS, 1 processor, constant service => M/D/1.
  const double t = 100.0;
  for (double rho : {0.3, 0.6, 0.8}) {
    SimConfig c = plainConfig(1, Paradigm::kLocking);
    c.policy.locking = LockingPolicy::kFcfs;
    c.measure_us = 6'000'000.0;
    const double lambda = rho / t;
    const RunMetrics m = runOnce(c, constantModel(t), makePoissonStreams(4, lambda));
    const double expected = t + rho * t / (2.0 * (1.0 - rho));
    EXPECT_NEAR(m.mean_delay_us, expected, 0.06 * expected) << "rho=" << rho;
    EXPECT_FALSE(m.saturated);
    EXPECT_NEAR(m.utilization, rho, 0.03);
  }
}

TEST(QueueTheory, MD1SaturatesAboveCapacity) {
  const double t = 100.0;
  SimConfig c = plainConfig(1, Paradigm::kLocking);
  c.policy.locking = LockingPolicy::kFcfs;
  const RunMetrics m = runOnce(c, constantModel(t), makePoissonStreams(4, 1.3 / t));
  EXPECT_TRUE(m.saturated);
  EXPECT_GT(m.backlog_end, 100u);
  EXPECT_NEAR(m.utilization, 1.0, 0.01);
}

TEST(QueueTheory, MultiprocessorPoolsWorkConservingly) {
  // M/D/4: mean delay must be far below 4 x M/D/1 at the same total load and
  // above the no-wait bound t.
  const double t = 100.0;
  SimConfig c = plainConfig(4, Paradigm::kLocking);
  c.policy.locking = LockingPolicy::kFcfs;
  const double lambda = 0.8 * 4.0 / t;
  const RunMetrics m = runOnce(c, constantModel(t), makePoissonStreams(16, lambda));
  EXPECT_GT(m.mean_delay_us, t);
  EXPECT_LT(m.mean_delay_us, t + 0.8 * t / (2.0 * 0.2));  // below the M/D/1 wait
  EXPECT_NEAR(m.utilization, 0.8, 0.03);
}

TEST(QueueTheory, ThroughputEqualsOfferedBelowCapacity) {
  SimConfig c = plainConfig(8, Paradigm::kLocking);
  const double lambda = 0.02;
  const RunMetrics m = runOnce(c, constantModel(150.0), makePoissonStreams(8, lambda));
  EXPECT_NEAR(m.throughput_per_us, lambda, 0.05 * lambda);
}

// --------------------------------------------------------- conservation ----

TEST(Conservation, ArrivalsEqualCompletionsPlusBacklog) {
  SimConfig c = plainConfig(4, Paradigm::kLocking);
  c.warmup_us = 0.0;  // count every completion
  c.measure_us = 500'000.0;
  const RunMetrics m = runOnce(c, constantModel(120.0), makePoissonStreams(8, 0.02));
  EXPECT_EQ(m.arrived, m.completed + m.backlog_end);
  EXPECT_GT(m.arrived, 5000u);
}

TEST(Conservation, HoldsUnderIpsAndHybridToo) {
  for (Paradigm p : {Paradigm::kIps, Paradigm::kHybrid}) {
    SimConfig c = plainConfig(4, p);
    c.warmup_us = 0.0;
    c.measure_us = 400'000.0;
    c.policy.hybrid_locking_streams = {0, 1};
    const RunMetrics m = runOnce(c, constantModel(120.0), makePoissonStreams(8, 0.02));
    EXPECT_EQ(m.arrived, m.completed + m.backlog_end) << paradigmName(p);
  }
}

// ----------------------------------------------------------- determinism ---

TEST(Determinism, SameSeedSameMetrics) {
  SimConfig c = plainConfig(8, Paradigm::kLocking);
  c.policy.locking = LockingPolicy::kMru;
  c.seed = 77;
  const auto model = ExecTimeModel::standard();
  const RunMetrics a = runOnce(c, model, makePoissonStreams(16, 0.02));
  const RunMetrics b = runOnce(c, model, makePoissonStreams(16, 0.02));
  EXPECT_DOUBLE_EQ(a.mean_delay_us, b.mean_delay_us);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Determinism, DifferentSeedsAgreeWithinCi) {
  SimConfig c = plainConfig(8, Paradigm::kLocking);
  const auto model = ExecTimeModel::standard();
  c.seed = 1;
  const RunMetrics a = runOnce(c, model, makePoissonStreams(16, 0.02));
  c.seed = 2;
  const RunMetrics b = runOnce(c, model, makePoissonStreams(16, 0.02));
  EXPECT_NEAR(a.mean_delay_us, b.mean_delay_us,
              3.0 * (a.ci95_delay_us + b.ci95_delay_us) + 1.0);
}

// ------------------------------------------------------ policy invariants --

/// Records service intervals for invariant checks.
class Recorder : public SimObserver {
 public:
  struct Event {
    unsigned proc;
    std::uint32_t stream;
    std::uint32_t stack;
    double start;
    double end;
  };

  void onServiceStart(unsigned proc, std::uint32_t stream, std::uint32_t stack, double,
                      double now, double service) override {
    open_.push_back(Event{proc, stream, stack, now, now + service});
  }
  void onServiceEnd(unsigned proc, std::uint32_t stream, std::uint32_t stack,
                    double now) override {
    for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
      if (it->proc == proc && it->stream == stream && it->stack == stack &&
          std::abs(it->end - now) < 1e-6) {
        events_.push_back(*it);
        open_.erase(std::next(it).base());
        return;
      }
    }
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> open_;
  std::vector<Event> events_;
};

TEST(PolicyInvariant, WiredStreamsNeverMigrates) {
  Recorder rec;
  SimConfig c = plainConfig(4, Paradigm::kLocking);
  c.policy.locking = LockingPolicy::kWiredStreams;
  c.observer = &rec;
  c.measure_us = 300'000.0;
  runOnce(c, ExecTimeModel::standard(), makePoissonStreams(12, 0.02));
  ASSERT_GT(rec.events().size(), 1000u);
  for (const auto& e : rec.events())
    EXPECT_EQ(e.proc, e.stream % 4) << "wired stream executed off its processor";
}

TEST(PolicyInvariant, IpsWiredStacksStayOnTheirProcessor) {
  Recorder rec;
  SimConfig c = plainConfig(4, Paradigm::kIps);
  c.policy.ips = IpsPolicy::kWired;
  c.observer = &rec;
  c.measure_us = 300'000.0;
  runOnce(c, ExecTimeModel::standard(), makePoissonStreams(12, 0.02));
  ASSERT_GT(rec.events().size(), 1000u);
  for (const auto& e : rec.events()) {
    ASSERT_NE(e.stack, AffinityState::kNoStack);
    EXPECT_EQ(e.proc, e.stack % 4);
  }
}

TEST(PolicyInvariant, IpsStacksNeverRunConcurrently) {
  Recorder rec;
  SimConfig c = plainConfig(4, Paradigm::kIps);
  c.policy.ips = IpsPolicy::kMru;
  c.observer = &rec;
  c.measure_us = 300'000.0;
  runOnce(c, ExecTimeModel::standard(), makePoissonStreams(8, 0.025));
  // Per stack, sort intervals by start; consecutive intervals must not overlap.
  std::map<std::uint32_t, std::vector<std::pair<double, double>>> by_stack;
  for (const auto& e : rec.events()) by_stack[e.stack].emplace_back(e.start, e.end);
  ASSERT_FALSE(by_stack.empty());
  for (auto& [stack, iv] : by_stack) {
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i)
      EXPECT_GE(iv[i].first, iv[i - 1].second - 1e-9) << "stack " << stack;
  }
}

TEST(PolicyInvariant, ProcessorsNeverDoubleBooked) {
  Recorder rec;
  SimConfig c = plainConfig(4, Paradigm::kLocking);
  c.policy.locking = LockingPolicy::kMru;
  c.observer = &rec;
  c.measure_us = 300'000.0;
  runOnce(c, ExecTimeModel::standard(), makePoissonStreams(8, 0.025));
  std::map<unsigned, std::vector<std::pair<double, double>>> by_proc;
  for (const auto& e : rec.events()) by_proc[e.proc].emplace_back(e.start, e.end);
  for (auto& [proc, iv] : by_proc) {
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i)
      EXPECT_GE(iv[i].first, iv[i - 1].second - 1e-9) << "proc " << proc;
  }
}

TEST(PolicyInvariant, HybridRoutesStreamsByDesignation) {
  Recorder rec;
  SimConfig c = plainConfig(4, Paradigm::kHybrid);
  c.policy.hybrid_locking_streams = {0, 1};
  c.observer = &rec;
  c.measure_us = 300'000.0;
  runOnce(c, ExecTimeModel::standard(), makePoissonStreams(8, 0.02));
  for (const auto& e : rec.events()) {
    if (e.stream <= 1)
      EXPECT_EQ(e.stack, AffinityState::kNoStack);
    else
      EXPECT_NE(e.stack, AffinityState::kNoStack);
  }
}

// ----------------------------------------------------- directional checks --

TEST(Direction, MruBeatsFcfsUnderLocking) {
  const auto model = ExecTimeModel::standard();
  SimConfig c = plainConfig(8, Paradigm::kLocking);
  c.lock_overhead_us = 10.0;
  c.critical_section_us = 5.0;
  const auto streams = makePoissonStreams(16, 0.01);  // moderate load
  c.policy.locking = LockingPolicy::kFcfs;
  const RunMetrics fcfs = runOnce(c, model, streams);
  c.policy.locking = LockingPolicy::kMru;
  const RunMetrics mru = runOnce(c, model, streams);
  EXPECT_LT(mru.mean_delay_us, fcfs.mean_delay_us);
  EXPECT_LT(mru.mean_service_us, fcfs.mean_service_us);
}

TEST(Direction, LockWaitGrowsWithLoad) {
  const auto model = constantModel(150.0);
  SimConfig c = plainConfig(8, Paradigm::kLocking);
  c.lock_overhead_us = 10.0;
  c.critical_section_us = 8.0;
  const RunMetrics lo = runOnce(c, model, makePoissonStreams(16, 0.005));
  const RunMetrics hi = runOnce(c, model, makePoissonStreams(16, 0.04));
  EXPECT_GT(hi.mean_lock_wait_us, lo.mean_lock_wait_us);
}

TEST(Direction, IpsHasNoLockWait) {
  SimConfig c = plainConfig(8, Paradigm::kIps);
  c.lock_overhead_us = 10.0;  // must be ignored under IPS
  c.critical_section_us = 5.0;
  const RunMetrics m = runOnce(c, ExecTimeModel::standard(), makePoissonStreams(16, 0.02));
  EXPECT_DOUBLE_EQ(m.mean_lock_wait_us, 0.0);
}

TEST(Direction, FixedOverheadAddsDirectly) {
  const auto model = constantModel(100.0);
  SimConfig c = plainConfig(8, Paradigm::kLocking);
  const auto streams = makePoissonStreams(8, 0.004);  // light load, no queueing
  const RunMetrics base = runOnce(c, model, streams);
  c.fixed_overhead_us = 139.0;  // the paper's max-FDDI-packet checksum cost
  const RunMetrics v = runOnce(c, model, streams);
  EXPECT_NEAR(v.mean_delay_us - base.mean_delay_us, 139.0, 3.0);
}

TEST(Direction, BusContentionSlowsColdTrafficOnly) {
  const auto model = ExecTimeModel::standard();
  const auto streams = makePoissonStreams(16, 0.02);
  SimConfig c = plainConfig(8, Paradigm::kLocking);
  c.policy.locking = LockingPolicy::kFcfs;  // cold-heavy traffic
  const RunMetrics no_bus = runOnce(c, model, streams);
  c.bus_occupancy_fraction = 0.35;
  const RunMetrics bus = runOnce(c, model, streams);
  EXPECT_GT(bus.mean_delay_us, no_bus.mean_delay_us);

  // A warm, single-processor workload generates almost no bus traffic.
  SimConfig solo = plainConfig(1, Paradigm::kLocking);
  solo.policy.locking = LockingPolicy::kMru;
  const auto one = makePoissonStreams(1, 0.005);
  const RunMetrics solo_no_bus = runOnce(solo, model, one);
  solo.bus_occupancy_fraction = 0.35;
  const RunMetrics solo_bus = runOnce(solo, model, one);
  EXPECT_NEAR(solo_bus.mean_delay_us, solo_no_bus.mean_delay_us,
              0.05 * solo_no_bus.mean_delay_us);
}

TEST(Direction, BusContentionOffByDefault) {
  SimConfig c;
  EXPECT_DOUBLE_EQ(c.bus_occupancy_fraction, 0.0);
}

// ------------------------------------------------------------- capacity ----

TEST(Capacity, FindsRateNearTheoreticalBound) {
  // Constant service t on N processors: capacity = N / t.
  const double t = 100.0;
  SimConfig c = plainConfig(4, Paradigm::kLocking);
  c.policy.locking = LockingPolicy::kFcfs;
  c.warmup_us = 50'000.0;
  c.measure_us = 500'000.0;
  const auto make = [](double rate) { return makePoissonStreams(16, rate); };
  const auto r = findMaxRate(c, constantModel(t), make, 0.001, 0.08, 1'000.0, 10);
  EXPECT_GT(r.max_rate_per_us, 0.8 * 4.0 / t);
  EXPECT_LE(r.max_rate_per_us, 1.02 * 4.0 / t);
}

TEST(Capacity, InfeasibleLowerBoundReportsZero) {
  SimConfig c = plainConfig(1, Paradigm::kLocking);
  c.warmup_us = 20'000.0;
  c.measure_us = 300'000.0;
  const auto make = [](double rate) { return makePoissonStreams(4, rate); };
  // Even the lower bound exceeds 1/t.
  const auto r = findMaxRate(c, constantModel(100.0), make, 0.02, 0.05, 1'000.0, 4);
  EXPECT_DOUBLE_EQ(r.max_rate_per_us, 0.0);
}

// --------------------------------------------------------------- window ----

TEST(Window, AutoWindowScalesWithRate) {
  SimConfig c = defaultSimConfig();
  setAutoWindow(c, 0.01, 100'000);
  EXPECT_NEAR(c.measure_us, 1e7, 1.0);
  setAutoWindow(c, 10.0, 100'000);
  EXPECT_DOUBLE_EQ(c.measure_us, 500'000.0);  // floor
}

TEST(Window, RunUntilConfidentMeetsTarget) {
  SimConfig c = plainConfig(4, Paradigm::kLocking);
  c.measure_us = 150'000.0;  // deliberately short: forces at least one doubling
  const RunMetrics m =
      runUntilConfident(c, ExecTimeModel::standard(), makePoissonStreams(8, 0.015), 0.05, 6);
  ASSERT_FALSE(m.saturated);
  EXPECT_LE(m.ci95_delay_us, 0.05 * m.mean_delay_us);
}

TEST(Window, RunUntilConfidentBailsOnSaturation) {
  SimConfig c = plainConfig(1, Paradigm::kLocking);
  c.measure_us = 400'000.0;
  const RunMetrics m =
      runUntilConfident(c, constantModel(100.0), makePoissonStreams(4, 0.02), 0.05, 6);
  EXPECT_TRUE(m.saturated);
}

TEST(Window, PerStreamStatsProduced) {
  SimConfig c = plainConfig(4, Paradigm::kLocking);
  c.per_stream_stats = true;
  c.measure_us = 300'000.0;
  const RunMetrics m = runOnce(c, constantModel(100.0), makePoissonStreams(6, 0.01));
  ASSERT_EQ(m.per_stream_mean_delay_us.size(), 6u);
  for (double d : m.per_stream_mean_delay_us) EXPECT_GT(d, 0.0);
}

}  // namespace
}  // namespace affinity
