// Cross-module integration tests:
//  * the trace-driven cache simulator agrees with the analytic
//    set-occupancy model on displacement,
//  * measured parameters drive the simulation end to end,
//  * the paper's headline findings hold directionally in full runs.
#include <gtest/gtest.h>

#include <set>

#include "cachesim/measurement.hpp"
#include "core/capacity.hpp"
#include "core/experiment.hpp"
#include "proto/stack.hpp"

namespace affinity {
namespace {

// ---------------------------------------------------------------------------
// cachesim vs. the analytic independent-mapping displacement model: generate
// an interfering trace, count its unique lines, and compare the *observed*
// displaced fraction of a resident footprint with fractionDisplaced().
TEST(CachesimVsAnalytic, DisplacedFractionMatchesIndependentMappingModel) {
  MachineParams m = MachineParams::sgiChallenge();
  Hierarchy h(m);
  // Fill the L1 D-cache completely with a resident footprint.
  const std::uint64_t base = 0x0100'0000;
  for (std::uint64_t a = base; a < base + m.l1d.size_bytes; a += m.l1d.line_bytes)
    h.access(a, RefKind::kLoad);
  ASSERT_EQ(h.l1d().residentLineCount(), m.l1d.lines());

  // Interfere with uniformly random lines from a large region.
  Rng rng(123);
  std::set<std::uint64_t> unique;
  const std::uint64_t region = 64ull << 20;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t addr = 0x4000'0000 + rng.uniform_u64(region / 32) * 32;
    unique.insert(addr / m.l1d.line_bytes);
    h.access(addr, RefKind::kLoad);
  }
  const double survivors = static_cast<double>(h.l1d().residentWithin(base, base + m.l1d.size_bytes));
  const double observed = 1.0 - survivors / static_cast<double>(m.l1d.lines());
  const double predicted = fractionDisplaced(static_cast<double>(unique.size()),
                                             static_cast<double>(m.l1d.sets()),
                                             m.l1d.associativity);
  EXPECT_NEAR(observed, predicted, 0.06);
}

TEST(CachesimVsAnalytic, AgedPacketTimeTracksExecTimeModelShape) {
  // The analytic t(x) and the simulated aged packet time must both be
  // monotone and bracketed by [t_warm, t_cold]; they must agree on the scale
  // of the transition (L1 effects by ~1 ms, L2 effects later).
  MeasurementHarness harness(MachineParams::sgiChallenge(), ProtocolLayout::standard(),
                             ProtocolTraceParams{}, 42);
  const MeasuredParams mp = harness.measure();
  double prev = 0.0;
  for (double x : {20.0, 200.0, 2'000.0, 20'000.0}) {
    const double t = harness.measureAged(x);
    EXPECT_GE(t, prev * 0.98) << "x=" << x;  // monotone within noise
    EXPECT_GE(t, mp.t_warm_us * 0.99);
    EXPECT_LE(t, mp.t_cold_us * 1.02);
    prev = t;
  }
  // By 20 ms the packet time must have moved well away from warm.
  EXPECT_GT(prev, mp.t_warm_us + 0.5 * (mp.t_l1cold_us - mp.t_warm_us));
}

// ---------------------------------------------------------------------------
// Measured parameters feed the simulation end to end (the paper's pipeline:
// experiments -> analytic model -> simulation).
TEST(Pipeline, MeasuredParamsDriveSimulation) {
  MeasurementHarness harness(MachineParams::sgiChallenge(), ProtocolLayout::standard(),
                             ProtocolTraceParams{}, 42);
  const MeasuredParams mp = harness.measure();
  const ExecTimeModel model(FlushModel(MachineParams::sgiChallenge(), SstParams::mvsWorkload()),
                            mp.reload, mp.shares);
  SimConfig c = defaultSimConfig();
  c.measure_us = 500'000.0;
  const RunMetrics m = runOnce(c, model, makePoissonStreams(16, 0.01));
  EXPECT_GT(m.mean_delay_us, mp.t_warm_us);
  EXPECT_FALSE(m.saturated);
  EXPECT_GT(m.completed, 1000u);
}

// ---------------------------------------------------------------------------
// The paper's headline findings, as full-system directional checks.

ExecTimeModel paperModel() { return ExecTimeModel::standard(); }

SimConfig paperConfig() {
  SimConfig c = defaultSimConfig();
  c.warmup_us = 150'000.0;
  c.measure_us = 1'500'000.0;
  return c;
}

TEST(Findings, AffinityReducesDelaySubstantiallyAtV0) {
  // Abstract: affinity-based scheduling significantly reduces delay; Figs
  // 10-11: upper bound (V=0) around 40-50%, reached near the no-affinity
  // configuration's saturation point.
  SimConfig c = paperConfig();
  const auto streams = makePoissonStreams(16, 0.040);  // near FCFS saturation
  c.policy.locking = LockingPolicy::kFcfs;
  const RunMetrics none = runOnce(c, paperModel(), streams);
  c.policy.locking = LockingPolicy::kStreamMru;  // the full affinity bundle
  const RunMetrics aff = runOnce(c, paperModel(), streams);
  const double red = reductionPercent(none.mean_delay_us, aff.mean_delay_us);
  EXPECT_GT(red, 25.0);
  EXPECT_LT(red, 75.0);
}

TEST(Findings, WiredStreamsWinsAtHighRateUnderLocking) {
  // Paper conclusion: "Under Locking, processors should be managed MRU —
  // except under high arrival rate, when Wired-Streams scheduling performs
  // better."
  SimConfig c = paperConfig();
  const auto streams = makePoissonStreams(16, 0.044);  // beyond MRU capacity
  c.policy.locking = LockingPolicy::kMru;
  const RunMetrics mru = runOnce(c, paperModel(), streams);
  c.policy.locking = LockingPolicy::kWiredStreams;
  const RunMetrics wired = runOnce(c, paperModel(), streams);
  EXPECT_TRUE(mru.saturated || mru.mean_delay_us > 2.0 * wired.mean_delay_us);
  EXPECT_FALSE(wired.saturated);
  // ... and MRU wins at moderate rate.
  const auto moderate = makePoissonStreams(16, 0.012);
  c.policy.locking = LockingPolicy::kMru;
  const RunMetrics mru_mod = runOnce(c, paperModel(), moderate);
  c.policy.locking = LockingPolicy::kWiredStreams;
  const RunMetrics wired_mod = runOnce(c, paperModel(), moderate);
  EXPECT_LT(mru_mod.mean_delay_us, wired_mod.mean_delay_us);
}

TEST(Findings, IpsMruWinsAtVeryLowRate) {
  // Paper conclusion: "Under IPS, independent stacks should be wired to
  // processors — except under low arrival rate, when MRU processor
  // scheduling performs better" (concentration keeps the shared text warm).
  SimConfig c = paperConfig();
  c.policy.paradigm = Paradigm::kIps;
  setAutoWindow(c, 0.0002, 40'000);
  const auto trickle = makePoissonStreams(16, 0.0002);  // 200 pkts/s
  c.policy.ips = IpsPolicy::kMru;
  const RunMetrics mru = runOnce(c, paperModel(), trickle);
  c.policy.ips = IpsPolicy::kWired;
  const RunMetrics wired = runOnce(c, paperModel(), trickle);
  EXPECT_LT(mru.mean_delay_us, wired.mean_delay_us);
}

TEST(Findings, DataTouchingShrinksTheAffinityBenefit) {
  // Figs 10-11: the reduction falls as fixed per-packet overhead V grows.
  SimConfig c = paperConfig();
  const auto streams = makePoissonStreams(16, 0.012);
  double prev_reduction = 1e9;
  for (double v : {0.0, 70.0, 139.0}) {
    c.fixed_overhead_us = v;
    c.policy.locking = LockingPolicy::kFcfs;
    const RunMetrics none = runOnce(c, paperModel(), streams);
    c.policy.locking = LockingPolicy::kMru;
    const RunMetrics mru = runOnce(c, paperModel(), streams);
    const double red = reductionPercent(none.mean_delay_us, mru.mean_delay_us);
    EXPECT_LT(red, prev_reduction + 3.0) << "V=" << v;
    prev_reduction = red;
  }
}

TEST(Findings, IpsBeatsLockingOnLatency) {
  // Abstract: IPS delivers much lower message latency.
  SimConfig c = paperConfig();
  const auto streams = makePoissonStreams(16, 0.015);
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = LockingPolicy::kMru;
  const RunMetrics locking = runOnce(c, paperModel(), streams);
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = IpsPolicy::kWired;
  const RunMetrics ips = runOnce(c, paperModel(), streams);
  EXPECT_LT(ips.mean_delay_us, locking.mean_delay_us);
}

TEST(Findings, IpsLessRobustToIntraStreamBurstiness) {
  // Abstract: IPS exhibits less robust response to intra-stream burstiness.
  SimConfig c = paperConfig();
  const double rate = 0.012;
  const auto bursty = makeBatchStreams(16, rate, 16.0);
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = LockingPolicy::kMru;
  const RunMetrics locking = runOnce(c, paperModel(), bursty);
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = IpsPolicy::kWired;
  const RunMetrics ips = runOnce(c, paperModel(), bursty);
  EXPECT_GT(ips.mean_delay_us, locking.mean_delay_us)
      << "bursts serialize on one stack under IPS";
}

TEST(Findings, IpsSingleStreamThroughputCapped) {
  // Abstract: limited intra-stream scalability under IPS — one stream cannot
  // exceed a single processor's service rate, while Locking spreads it.
  SimConfig c = paperConfig();
  c.warmup_us = 50'000.0;
  c.measure_us = 400'000.0;
  const auto make = [](double rate) { return makePoissonStreams(1, rate); };
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = IpsPolicy::kWired;
  const auto ips = findMaxRate(c, paperModel(), make, 0.001, 0.05, 2'000.0, 8);
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = LockingPolicy::kMru;
  const auto locking = findMaxRate(c, paperModel(), make, 0.001, 0.05, 2'000.0, 8);
  EXPECT_LT(ips.max_rate_per_us, 1.05 / 135.7);  // at most one processor's rate
  EXPECT_GT(locking.max_rate_per_us, 1.5 * ips.max_rate_per_us);
}

TEST(Findings, WiredBeatsMruUnderIpsAtHighLoad) {
  SimConfig c = paperConfig();
  const auto streams = makePoissonStreams(32, 0.035);  // high load
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = IpsPolicy::kWired;
  const RunMetrics wired = runOnce(c, paperModel(), streams);
  c.policy.ips = IpsPolicy::kMru;
  const RunMetrics mru = runOnce(c, paperModel(), streams);
  EXPECT_LT(wired.mean_delay_us, mru.mean_delay_us * 1.05);
}

// ---------------------------------------------------------------------------
// Full pipeline smoke: real frames through the real stack, while the
// simulation uses parameters measured from the same protocol's trace.
TEST(Pipeline, RealStackAndSimulationCoexist) {
  ProtocolStack stack;
  stack.open(7000, /*queue_capacity=*/256);
  FrameSpec spec;
  const std::vector<std::uint8_t> payload(64, 0xab);
  for (int i = 0; i < 100; ++i) {
    const auto ctx = stack.receiveFrame(buildUdpFrame(spec, payload));
    ASSERT_FALSE(ctx.dropped());
  }
  EXPECT_EQ(stack.framesDelivered(), 100u);

  SimConfig c = defaultSimConfig();
  c.measure_us = 300'000.0;
  const RunMetrics m = runOnce(c, paperModel(), makePoissonStreams(8, 0.01));
  EXPECT_GT(m.completed, 1000u);
}

}  // namespace
}  // namespace affinity
