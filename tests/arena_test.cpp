// arena_test.cpp — FrameArena / FrameBuf: size-class reuse, slab refill
// under exhaustion, cross-thread frees, oversize fallback — and the PR's
// headline claim, pinned with a counting global allocator: once warm, the
// runtime frame path (WorkItem submit → queue hop → stack parse → session
// deliver) performs ZERO global-allocator calls.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "proto/stack.hpp"
#include "proto/udp.hpp"
#include "runtime/engine.hpp"
#include "util/lockdep.hpp"

// ------------------------------------------------- counting global new --
//
// Replacing global operator new/delete is the one watertight way to count
// allocator traffic: every std::vector grow, deque node, or std::function
// heap capture lands here. The counter only discriminates; the tests
// measure deltas across a steady-state window after an explicit warm-up.

namespace {
std::atomic<std::uint64_t> g_global_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_global_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace affinity {
namespace {

std::uint64_t globalNews() { return g_global_news.load(std::memory_order_relaxed); }

TEST(FrameBuf, VectorRoundTripAndCompare) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5};
  FrameBuf a = bytes;  // implicit: the WorkItem construction path
  ASSERT_EQ(a.size(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) EXPECT_EQ(a[i], bytes[i]);

  FrameBuf b = a;  // copy allocates its own block
  EXPECT_EQ(a, b);
  b[0] = 99;
  EXPECT_FALSE(a == b);

  FrameBuf c = std::move(a);  // move transfers the block
  EXPECT_EQ(c.size(), bytes.size());
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move) — pinned contract

  const std::span<const std::uint8_t> view = c;  // the receiveFrame conversion
  EXPECT_EQ(view.size(), bytes.size());
  EXPECT_EQ(view[1], 2);
}

TEST(FrameBuf, ResizeAndFillAssign) {
  FrameBuf f;
  f.assign(100, 7);
  ASSERT_EQ(f.size(), 100u);
  EXPECT_EQ(f[99], 7);
  f.resize(10);  // shrink keeps bytes
  ASSERT_EQ(f.size(), 10u);
  EXPECT_EQ(f[9], 7);
  f.resize(50);  // grow zero-fills the tail (fault-injector truncate/regrow)
  ASSERT_EQ(f.size(), 50u);
  EXPECT_EQ(f[9], 7);
  EXPECT_EQ(f[49], 0);
}

TEST(FrameArena, SteadyStateAllocFreeIsGlobalAllocFree) {
  // Warm the 1500-byte size class.
  for (int i = 0; i < 64; ++i) FrameBuf f(std::vector<std::uint8_t>(1500, 1));
  const ArenaStats warm = FrameArena::local().stats();
  const std::uint64_t baseline = globalNews();
  for (int i = 0; i < 10'000; ++i) {
    std::uint8_t* p = FrameArena::local().allocate(1500);
    ASSERT_GE(FrameArena::capacityOf(p), 1500u);
    FrameArena::deallocate(p);
  }
  EXPECT_EQ(globalNews() - baseline, 0u);
  const ArenaStats after = FrameArena::local().stats();
  EXPECT_EQ(after.slab_refills, warm.slab_refills);
  EXPECT_EQ(after.allocs - warm.allocs, 10'000u);
  EXPECT_EQ(after.frees - warm.frees, 10'000u);
}

TEST(FrameArena, ExhaustionRefillsBySlab) {
  const ArenaStats before = FrameArena::local().stats();
  // Hold far more 1 KiB blocks live than one slab carves (128 KiB target /
  // ~1 KiB stride ≈ 126 blocks), forcing repeated refills.
  std::vector<FrameBuf> live;
  live.reserve(1000);
  for (int i = 0; i < 1000; ++i) live.emplace_back(std::vector<std::uint8_t>(1024, 3));
  const ArenaStats grown = FrameArena::local().stats();
  EXPECT_GE(grown.slab_refills - before.slab_refills, 7u);
  EXPECT_GT(grown.bytes_reserved, before.bytes_reserved);
  live.clear();  // all 1000 return to the freelists...
  const std::vector<std::uint8_t> source(1024, 4);
  const std::uint64_t baseline = globalNews();
  for (int i = 0; i < 1000; ++i) live.emplace_back(source);
  // ...so the second wave is served entirely from them. (live was reserved
  // above, and the source vector is hoisted, so the only allocator in the
  // loop is the arena.)
  EXPECT_EQ(FrameArena::local().stats().slab_refills, grown.slab_refills);
  EXPECT_EQ(globalNews() - baseline, 0u);
}

TEST(FrameArena, CrossThreadFreeReturnsToOwner) {
  FrameArena& owner = FrameArena::local();
  const ArenaStats before = owner.stats();
  // Allocate here, free on another thread — the engine pattern (submitter
  // allocates the frame, a worker destroys the WorkItem).
  std::vector<FrameBuf> frames;
  for (int i = 0; i < 100; ++i) frames.emplace_back(std::vector<std::uint8_t>(512, 9));
  std::thread reaper([moved = std::move(frames)]() mutable { moved.clear(); });
  reaper.join();
  const ArenaStats returned = owner.stats();
  EXPECT_EQ(returned.cross_thread_returns - before.cross_thread_returns, 100u);
  EXPECT_EQ(returned.frees - before.frees, 100u);
  // The owner's next allocations drain the return stack: no new slabs.
  for (int i = 0; i < 100; ++i) frames.emplace_back(std::vector<std::uint8_t>(512, 8));
  EXPECT_EQ(owner.stats().slab_refills, returned.slab_refills);
}

TEST(FrameArena, OversizeFallsThroughToGlobalAllocator) {
  const ArenaStats before = FrameArena::local().stats();
  std::vector<std::uint8_t> big(256 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  FrameBuf f = big;
  ASSERT_EQ(f.size(), big.size());
  EXPECT_EQ(f[70'000], static_cast<std::uint8_t>(70'000));
  const ArenaStats after = FrameArena::local().stats();
  EXPECT_EQ(after.oversize_allocs - before.oversize_allocs, 1u);
}

TEST(FrameArena, SessionRingSteadyStateIsAllocFree) {
  UdpSession session(7000, /*queue_capacity=*/32);
  const std::vector<std::uint8_t> payload(200, 0xAB);
  std::vector<std::uint8_t> out;
  out.reserve(256);
  // One full lap warms every ring slot and the read buffer.
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(session.deliver(payload));
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(session.read(out));
  const std::uint64_t baseline = globalNews();
  for (int lap = 0; lap < 100; ++lap) {
    for (int i = 0; i < 32; ++i) ASSERT_TRUE(session.deliver(payload));
    for (int i = 0; i < 32; ++i) ASSERT_TRUE(session.read(out));
  }
  EXPECT_EQ(globalNews() - baseline, 0u);
  EXPECT_EQ(session.deliveredCount(), 32u * 101u);
}

TEST(FrameArena, EngineSteadyStateFramePathIsGlobalAllocFree) {
  // The lockdep tree instruments every Mutex acquisition (site strings,
  // held-set growth) — heap traffic by design, so the zero-allocation claim
  // only holds for trees without the diagnostic.
  if (affinity::lockdep::enabled())
    GTEST_SKIP() << "AFF_LOCKDEP hooks allocate on the lock path";
  // End-to-end: submit → MpmcQueue ring hop → worker pops → shared-stack
  // parse (FDDI/IP/UDP on the scratch Packet) → session → WorkItem freed
  // cross-thread. After warm-up, a window of 4096 frames must hit the
  // global allocator exactly zero times.
  EngineOptions opts;
  opts.queue_capacity = 256;
  LockingEngine engine(/*workers=*/1, HostConfig{}, opts);
  engine.openPort(7000, /*session_queue=*/64);
  engine.start();

  const std::vector<std::uint8_t> payload(64, 0x5A);
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t s = 0; s < 8; ++s) {
    FrameSpec spec;
    spec.src_port = static_cast<std::uint16_t>(3000 + s);
    frames.push_back(buildUdpFrame(spec, payload));
  }
  // Warm-up lap: arena slabs, queue ring slots, the scratch Packet, and
  // the session ring all reach their steady capacity here.
  for (std::uint64_t i = 0; i < 4096; ++i)
    ASSERT_TRUE(engine.submit(WorkItem{frames[i % frames.size()],
                                       static_cast<std::uint32_t>(i % 8), {}, i}));
  while (engine.processedCount() < 4096)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Measured window. stats() builds vectors, so inside the window the only
  // quiesce signal is time: the sleep just gives the worker room — the
  // zero-delta claim holds at any point because every in-flight path
  // (submit, ring hop, parse, free) is allocation-free.
  const std::uint64_t baseline = globalNews();
  for (std::uint64_t i = 0; i < 4096; ++i)
    ASSERT_TRUE(engine.submit(WorkItem{frames[i % frames.size()],
                                       static_cast<std::uint32_t>(i % 8), {}, i}));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::uint64_t frame_path_allocs = globalNews() - baseline;
  EXPECT_EQ(frame_path_allocs, 0u) << "steady-state frame path hit the global allocator";

  while (engine.processedCount() < 8192)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  engine.stop();
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, 8192u);
  EXPECT_TRUE(s.conserved());
}

TEST(FrameArena, ExhaustionWithWorkerKillStaysGlobalAllocFreeAndConserves) {
  if (affinity::lockdep::enabled())
    GTEST_SKIP() << "AFF_LOCKDEP hooks allocate on the lock path";
  // The robustness composition: a deliberately tiny flow table (so flow
  // eviction runs continuously), kDropOldest queue overload, and a worker
  // killed in the middle of the measured window. The degraded path — shed
  // victim accounting, queue eviction, orphaned-frame consumption, the
  // survivor absorbing the dead worker's share — must stay exactly as
  // allocation-free as the happy path, and the ledger must still balance.
  EngineOptions opts;
  opts.queue_capacity = 64;
  opts.overload = OverloadPolicy::kDropOldest;
  opts.flow.budget_bytes = 32 * 24;  // 32 entries for 64 streams: churn
  opts.flow.shards = 1;
  LockingEngine engine(/*workers=*/2, HostConfig{}, opts);
  engine.openPort(7000, /*session_queue=*/64);
  engine.start();

  const std::vector<std::uint8_t> payload(64, 0xA5);
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t s = 0; s < 64; ++s) {
    FrameSpec spec;
    spec.src_port = static_cast<std::uint16_t>(3000 + s);
    frames.push_back(buildUdpFrame(spec, payload));
  }
  std::uint64_t submitted = 0;
  const auto burst = [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = submitted++;
      if (engine.submit(
              WorkItem{frames[k % frames.size()], static_cast<std::uint32_t>(k % 64), {}, k}))
        continue;  // kDropOldest never rejects here, but stay robust
    }
  };
  // kDropOldest sheds most of a fast burst at the submit side, so there is
  // no fixed processed-count target to wait for — wait for quiescence.
  const auto drain = [&] {
    std::uint64_t last = ~0ull;
    for (std::uint64_t now = engine.processedCount(); now != last;
         now = engine.processedCount()) {
      last = now;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };
  // Paced warm-up first: one frame at a time, each popped before the next
  // goes in. A fast burst alone cannot warm the session ring — flow churn
  // orphans most queued frames before a worker reaches them, so fewer than
  // ring-size frames may actually deliver, leaving cold slots whose
  // first-touch assign() would then allocate inside the measured window.
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t before = engine.processedCount();
    burst(1);
    while (engine.processedCount() == before)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  burst(4096);  // then the fast burst: drop-oldest + eviction paths settle
  drain();

  const std::uint64_t baseline = globalNews();
  burst(2048);
  engine.injectWorkerKill(1);  // mid-window: the survivor takes over
  burst(4096);
  drain();
  const std::uint64_t degraded_path_allocs = globalNews() - baseline;
  EXPECT_EQ(degraded_path_allocs, 0u)
      << "kill/evict/drop-oldest path hit the global allocator";

  engine.stop();
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted + s.rejected, 256u + 4096u + 2048u + 4096u);
  EXPECT_TRUE(s.conserved()) << "ledger must balance under kill + flow churn";
  EXPECT_GT(s.evictions(), 0u);  // the tiny table actually churned
}

}  // namespace
}  // namespace affinity
