// affinity_sim — run one configured experiment from a scenario file.
//
//   $ ./affinity_sim --config scenarios/paper_fig06_point.ini [--csv]
//   $ ./affinity_sim --config ... --trace-out trace.json   # open in Perfetto
//
// See src/core/scenario.hpp for the schema and scenarios/ for examples.
// --metrics-out/--trace-out export the run's metrics registry and a
// virtual-time Chrome trace (one track per simulated processor); since this
// tool owns the single simulation, the registry gets the live time-weighted
// instruments too (SimConfig::metrics_exclusive).
#include <cstdio>
#include <memory>

#include "core/scenario.hpp"
#include "core/experiment.hpp"
#include "core/parallel_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace affinity;

int main(int argc, char** argv) {
  Cli cli("affinity_sim", "run a scenario file through the protocol-processing simulator");
  const std::string& path = cli.flag<std::string>("config", "", "scenario file (required)");
  const bool& csv = cli.flag<bool>("csv", false, "emit CSV");
  const std::string& metrics_out =
      cli.flag<std::string>("metrics-out", "", "write a metrics-registry JSON snapshot here");
  const std::string& trace_out = cli.flag<std::string>(
      "trace-out", "", "write a virtual-time Chrome trace_event JSON file here");
  cli.parse(argc, argv);
  if (path.empty()) {
    std::fprintf(stderr, "affinity_sim: --config is required\n");
    return 2;
  }

  std::string error;
  const auto cfg = ConfigFile::load(path, &error);
  if (!cfg) {
    std::fprintf(stderr, "affinity_sim: %s\n", error.c_str());
    return 1;
  }
  auto scenario = buildScenario(*cfg, &error);
  if (!scenario) {
    std::fprintf(stderr, "affinity_sim: %s\n", error.c_str());
    return 1;
  }

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TraceSession> trace;
  if (!metrics_out.empty()) {
    scenario->config.metrics = &registry;
    scenario->config.metrics_exclusive = true;  // this tool owns the one sim
  }
  if (!trace_out.empty()) {
    trace = std::make_unique<obs::TraceSession>();
    scenario->config.trace = trace.get();
  }

  std::printf("# %s — %s, %u procs, %zu streams, %.0f pkts/s offered\n", path.c_str(),
              scenario->config.policy.describe().c_str(), scenario->config.num_procs,
              scenario->streams.count(), scenario->streams.totalRatePerUs() * 1e6);

  // run.parallel scenarios go through runParallel directly so the tool can
  // report how the run executed (sim.parallel.* gauges + a banner line);
  // results are bit-identical either way (docs/PARALLEL_SIM.md).
  ParallelRunInfo pinfo;
  const bool want_parallel =
      scenario->config.parallel_procs > 1 && !scenario->run_until_confident;
  const RunMetrics m =
      scenario->run_until_confident
          ? runUntilConfident(scenario->config, scenario->model, scenario->streams)
      : want_parallel
          ? runParallel(scenario->config, scenario->model, scenario->streams, &pinfo)
          : runOnce(scenario->config, scenario->model, scenario->streams);
  if (want_parallel) {
    if (!metrics_out.empty()) exportParallelRunInfo(pinfo, registry);
    if (pinfo.parallel)
      std::printf("# parallel: %u shards, %llu epochs, lookahead %.1f us%s\n", pinfo.shards,
                  static_cast<unsigned long long>(pinfo.epochs), pinfo.lookahead_us,
                  pinfo.replay_fallback ? " (replay fallback: serial rerun)" : "");
    else
      std::printf("# parallel requested but ran serial: %s\n",
                  pinfo.fallback_reason != nullptr ? pinfo.fallback_reason : "ineligible");
  }

  if (!metrics_out.empty() && !registry.writeJson(metrics_out))
    std::fprintf(stderr, "warning: could not write --metrics-out %s\n", metrics_out.c_str());
  if (trace != nullptr && !trace->writeChromeTrace(trace_out))
    std::fprintf(stderr, "warning: could not write --trace-out %s\n", trace_out.c_str());

  TableWriter t({"metric", "value"}, csv, 3);
  const auto row = [&t](const char* name, double v) {
    t.beginRow();
    t.addText(name);
    t.add(v);
  };
  row("mean_delay_us", m.mean_delay_us);
  row("ci95_halfwidth_us", m.ci95_delay_us);
  row("p50_delay_us", m.p50_delay_us);
  row("p95_delay_us", m.p95_delay_us);
  row("p99_delay_us", m.p99_delay_us);
  row("mean_service_us", m.mean_service_us);
  row("mean_lock_wait_us", m.mean_lock_wait_us);
  row("throughput_pkts_per_s", m.throughput_per_us * 1e6);
  row("utilization", m.utilization);
  row("mean_queue_len", m.mean_queue_len);
  row("completed", static_cast<double>(m.completed));
  row("saturated", m.saturated ? 1.0 : 0.0);
  if (m.reclassifications > 0)
    row("reclassifications", static_cast<double>(m.reclassifications));
  t.print();

  if (scenario->config.per_stream_stats) {
    std::printf("\n# per-stream mean delay (us)\n");
    TableWriter ps({"stream", "mean_delay_us"}, csv, 1);
    for (std::size_t s = 0; s < m.per_stream_mean_delay_us.size(); ++s)
      ps.addRow({static_cast<double>(s), m.per_stream_mean_delay_us[s]});
    ps.print();
  }
  return m.saturated ? 3 : 0;
}
