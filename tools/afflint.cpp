// afflint — repo-specific invariant lint (src/lint/lint.hpp has the rules,
// docs/STATIC_ANALYSIS.md the rationale). Exit codes: 0 clean, 1 findings,
// 2 I/O or usage error — so CI can distinguish "violations" from "broken".
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  affinity::Cli cli("afflint", "repo-specific invariant checks (metric names, determinism, "
                               "layering, lock discipline)");
  const std::string& root = cli.flag<std::string>("root", ".", "repo root to lint");
  const std::string& dirs =
      cli.flag<std::string>("dirs", "src,tools,bench", "comma-separated dirs under root");
  const bool& json = cli.flag<bool>("json", false, "emit findings as a JSON array on stdout");
  const bool& list_rules = cli.flag<bool>("list-rules", false, "print rule names and exit");
  const bool& graph_dot = cli.flag<bool>(
      "lock-graph-dot", false, "print the static acquisition graph as Graphviz DOT and exit "
                               "(observed edges solid, declared orderings dashed)");
  const bool& graph_json = cli.flag<bool>(
      "lock-graph-json", false, "print the static acquisition graph as JSON and exit");
  cli.parse(argc, argv);

  if (list_rules) {
    for (const auto& rule : affinity::lint::ruleNames()) std::printf("%s\n", rule.c_str());
    return 0;
  }

  std::vector<std::string> rel_roots;
  {
    std::istringstream in(dirs);
    std::string d;
    while (std::getline(in, d, ',')) {
      if (!d.empty()) rel_roots.push_back(d);
    }
  }
  if (rel_roots.empty()) {
    std::fprintf(stderr, "afflint: --dirs is empty\n");
    return 2;
  }

  if (graph_dot || graph_json) {
    const auto graph = affinity::lint::buildLockGraph(root, rel_roots);
    if (graph_dot) affinity::lint::writeLockGraphDot(stdout, graph);
    if (graph_json) affinity::lint::writeLockGraphJson(stdout, graph);
    return 0;
  }

  const auto findings = affinity::lint::lintTree(root, rel_roots);
  bool io_error = false;
  for (const auto& f : findings) io_error = io_error || f.rule == "io-error";

  if (json) {
    affinity::lint::writeFindingsJson(stdout, findings);
  } else {
    for (const auto& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    std::printf("afflint: %zu finding%s in %zu dir%s under %s\n", findings.size(),
                findings.size() == 1 ? "" : "s", rel_roots.size(),
                rel_roots.size() == 1 ? "" : "s", root.c_str());
  }
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}
