// perf_ledger — run the perf smoke suite and append one row to the
// BENCH_<date>.json trajectory ledger (docs/OBSERVABILITY.md).
//
//   $ ./perf_ledger                      # appends to BENCH_<today>.json
//   $ ./perf_ledger --out results/BENCH_ci.json --full
//
// The row records event-kernel throughput vs the frozen seed kernel
// (bench/kernel_workloads.hpp), simulated packets per wall-second through
// the full protocol model, the fast Figure-9 capacity smoke (Locking vs
// IPS), and the disabled trace-guard overhead. The ledger stays a valid
// JSON array after every append (src/obs/ledger.hpp), so the perf
// trajectory across PRs is one file per day of runs.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>

#include "bench/kernel_workloads.hpp"
#include "bench/legacy_simulator.hpp"
#include "core/capacity.hpp"
#include "core/experiment.hpp"
#include "obs/ledger.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

using namespace affinity;
using namespace affinity::bench;

namespace {

std::string todayIso() {
  // Ledger rows are wall-stamped by design.  afflint: allow(nondeterminism)
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  localtime_r(&now, &tm);
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

double wallSecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("perf_ledger", "run the perf smoke and append a BENCH_<date>.json trajectory row");
  const std::string& out = cli.flag<std::string>(
      "out", "", "ledger file (default BENCH_<date>.json in the current directory)");
  const std::string& date = cli.flag<std::string>("date", "", "row date (default today)");
  const bool& full = cli.flag<bool>("full", false, "full event counts (slower, steadier numbers)");
  const int& reps = cli.flag<int>("reps", 3, "repetitions per kernel workload (best kept)");
  cli.parse(argc, argv);

  const std::string day = date.empty() ? todayIso() : date;
  const std::string path = out.empty() ? "BENCH_" + day + ".json" : out;
  const std::uint64_t n = full ? 3'000'000 : 300'000;

  // 1) Event-kernel hot path, current vs frozen seed kernel.
  std::printf("perf_ledger: kernel workloads (%llu events, best of %d)...\n",
              static_cast<unsigned long long>(n), reps);
  const KernelResult hold = measureKernelPair(
      "hold64", reps, [&](std::uint64_t s) { return benchHold<Simulator>(n, 64, s); },
      [&](std::uint64_t s) { return benchHold<legacy::Simulator>(n, 64, s); });
  const KernelResult churn = measureKernelPair(
      "churn", reps, [&](std::uint64_t s) { return benchChurn<Simulator>(n, 256, s); },
      [&](std::uint64_t s) { return benchChurn<legacy::Simulator>(n, 256, s); });
  const KernelResult chain = measureKernelPair(
      "chain", reps, [&](std::uint64_t s) { return benchChain<Simulator>(n, s); },
      [&](std::uint64_t s) { return benchChain<legacy::Simulator>(n, s); });
  const double guard_pct = benchGuardOverheadPct<Simulator>(n, 64, reps);

  // 2) Full protocol model: simulated packets per wall-second (Locking/MRU
  // at moderate load — the simulator's own speed, not the modeled system's).
  std::printf("perf_ledger: protocol-model throughput...\n");
  const auto model = ExecTimeModel::standard();
  SimConfig sim_cfg = defaultSimConfig();
  sim_cfg.num_procs = 8;
  sim_cfg.policy.paradigm = Paradigm::kLocking;
  sim_cfg.policy.locking = LockingPolicy::kMru;
  sim_cfg.seed = 1;
  setAutoWindow(sim_cfg, 0.03, full ? 80'000 : 15'000);
  const auto streams = makePoissonStreams(16, 0.03);
  const auto sim_t0 = std::chrono::steady_clock::now();
  const RunMetrics sim_m = runOnce(sim_cfg, model, streams);
  const double sim_pkts_per_wall_s = static_cast<double>(sim_m.completed) / wallSecondsSince(sim_t0);

  // 3) Fast Figure-9 capacity smoke: Locking vs IPS max sustainable rate.
  std::printf("perf_ledger: fig9 capacity smoke...\n");
  SimConfig cap_cfg = defaultSimConfig();
  cap_cfg.num_procs = 8;
  cap_cfg.seed = 1;
  cap_cfg.warmup_us = 50'000.0;
  cap_cfg.measure_us = full ? 800'000.0 : 200'000.0;
  const auto factory = [](double rate) { return makePoissonStreams(16, rate); };
  cap_cfg.policy.paradigm = Paradigm::kLocking;
  cap_cfg.policy.locking = LockingPolicy::kMru;
  const CapacityResult cap_locking =
      findMaxRate(cap_cfg, model, factory, 0.002, 0.08, 1000.0, full ? 10 : 7);
  cap_cfg.policy.paradigm = Paradigm::kIps;
  cap_cfg.policy.ips = IpsPolicy::kMru;
  const CapacityResult cap_ips =
      findMaxRate(cap_cfg, model, factory, 0.002, 0.08, 1000.0, full ? 10 : 7);

  char row[1024];
  std::snprintf(
      row, sizeof row,
      "{\"date\": \"%s\", \"mode\": \"%s\", "
      "\"kernel_hold64_eps\": %.0f, \"kernel_hold64_speedup\": %.3f, "
      "\"kernel_churn_ops\": %.0f, \"kernel_churn_speedup\": %.3f, "
      "\"kernel_chain_eps\": %.0f, \"kernel_chain_speedup\": %.3f, "
      "\"trace_guard_overhead_pct\": %.3f, "
      "\"sim_pkts_per_wall_s\": %.0f, "
      "\"capacity_locking_pkts_per_s\": %.0f, \"capacity_ips_pkts_per_s\": %.0f}",
      day.c_str(), full ? "full" : "fast", hold.new_eps, hold.speedup(), churn.new_eps,
      churn.speedup(), chain.new_eps, chain.speedup(), guard_pct, sim_pkts_per_wall_s,
      cap_locking.max_rate_per_us * 1e6, cap_ips.max_rate_per_us * 1e6);

  if (!obs::appendLedgerRow(path, row)) {
    std::fprintf(stderr, "perf_ledger: could not write %s\n", path.c_str());
    return 1;
  }
  std::printf("kernel hold64 %.2f Mev/s (%.2fx seed)  churn %.2f Mops/s (%.2fx)  "
              "chain %.2f Mev/s (%.2fx)\n",
              hold.new_eps / 1e6, hold.speedup(), churn.new_eps / 1e6, churn.speedup(),
              chain.new_eps / 1e6, chain.speedup());
  std::printf("trace guard %.3f%%  sim %.0f pkts/wall-s  capacity locking %.0f / ips %.0f pkts/s\n",
              guard_pct, sim_pkts_per_wall_s, cap_locking.max_rate_per_us * 1e6,
              cap_ips.max_rate_per_us * 1e6);
  std::printf("appended row %zu to %s\n", obs::ledgerRowCount(path), path.c_str());
  return 0;
}
