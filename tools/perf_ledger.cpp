// perf_ledger — run the perf smoke suite and append one row to the
// BENCH_<date>.json trajectory ledger (docs/OBSERVABILITY.md).
//
//   $ ./perf_ledger                      # appends to BENCH_<today>.json
//   $ ./perf_ledger --out results/BENCH_ci.json --full
//
// The row records event-kernel throughput vs the frozen seed kernel
// (bench/kernel_workloads.hpp), simulated packets per wall-second through
// the full protocol model, the fast Figure-9 capacity smoke (Locking vs
// IPS), and the disabled trace-guard overhead. The ledger stays a valid
// JSON array after every append (src/obs/ledger.hpp), so the perf
// trajectory across PRs is one file per day of runs.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench/kernel_workloads.hpp"
#include "bench/legacy_simulator.hpp"
#include "core/capacity.hpp"
#include "core/experiment.hpp"
#include "core/parallel_sim.hpp"
#include "obs/ledger.hpp"
#include "proto/stack.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"
#include "util/cli.hpp"

using namespace affinity;
using namespace affinity::bench;

namespace {

std::string todayIso() {
  // Ledger rows are wall-stamped by design.  afflint: allow(nondeterminism)
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  localtime_r(&now, &tm);
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

double wallSecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("perf_ledger", "run the perf smoke and append a BENCH_<date>.json trajectory row");
  const std::string& out = cli.flag<std::string>(
      "out", "", "ledger file (default BENCH_<date>.json in the current directory)");
  const std::string& date = cli.flag<std::string>("date", "", "row date (default today)");
  const bool& full = cli.flag<bool>("full", false, "full event counts (slower, steadier numbers)");
  const int& reps = cli.flag<int>("reps", 3, "repetitions per kernel workload (best kept)");
  const bool& parallel_only = cli.flag<bool>(
      "parallel-only", false,
      "run only the parallel-sim section (the multi-core CI datapoint; reduced row)");
  cli.parse(argc, argv);

  const std::string day = date.empty() ? todayIso() : date;
  const std::string path = out.empty() ? "BENCH_" + day + ".json" : out;
  const std::uint64_t n = full ? 3'000'000 : 300'000;
  const auto model = ExecTimeModel::standard();
  const auto streams = makePoissonStreams(16, 0.03);

  // 1) Event-kernel hot path, current vs frozen seed kernel.
  KernelResult hold, churn, chain, batch;
  double guard_pct = 0.0;
  double sim_pkts_per_wall_s = 0.0;
  if (!parallel_only) {
    std::printf("perf_ledger: kernel workloads (%llu events, best of %d)...\n",
                static_cast<unsigned long long>(n), reps);
    hold = measureKernelPair(
        "hold64", reps, [&](std::uint64_t s) { return benchHold<Simulator>(n, 64, s); },
        [&](std::uint64_t s) { return benchHold<legacy::Simulator>(n, 64, s); });
    churn = measureKernelPair(
        "churn", reps, [&](std::uint64_t s) { return benchChurn<Simulator>(n, 256, s); },
        [&](std::uint64_t s) { return benchChurn<legacy::Simulator>(n, 256, s); });
    chain = measureKernelPair(
        "chain", reps, [&](std::uint64_t s) { return benchChain<Simulator>(n, s); },
        [&](std::uint64_t s) { return benchChain<legacy::Simulator>(n, s); });
    batch = measureKernelPair(
        "batch_admit", reps,
        [&](std::uint64_t s) { return benchBatchAdmit<Simulator>(n, 64, s); },
        [&](std::uint64_t s) { return benchBatchAdmit<legacy::Simulator>(n, 64, s); });
    guard_pct = benchGuardOverheadPct<Simulator>(n, 64, reps);

    // 2) Full protocol model: simulated packets per wall-second (Locking/MRU
    // at moderate load — the simulator's own speed, not the modeled system's).
    std::printf("perf_ledger: protocol-model throughput...\n");
    SimConfig sim_cfg = defaultSimConfig();
    sim_cfg.num_procs = 8;
    sim_cfg.policy.paradigm = Paradigm::kLocking;
    sim_cfg.policy.locking = LockingPolicy::kMru;
    sim_cfg.seed = 1;
    setAutoWindow(sim_cfg, 0.03, full ? 80'000 : 15'000);
    const auto sim_t0 = std::chrono::steady_clock::now();
    const RunMetrics sim_m = runOnce(sim_cfg, model, streams);
    sim_pkts_per_wall_s = static_cast<double>(sim_m.completed) / wallSecondsSince(sim_t0);
  }

  // 2b) Parallel sim: the exactly-decomposable IPS/Wired configuration,
  // serial vs sharded, same seed and window. host_cores rides along because
  // wall-clock speedup is bounded by *real* cores — on a 1-core host the
  // parallel row honestly measures barrier/replay overhead, not a
  // multiplier; the ≥3x target is a multi-core reading of the same row.
  std::printf("perf_ledger: parallel sim throughput...\n");
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  SimConfig par_cfg = defaultSimConfig();
  par_cfg.num_procs = 8;
  par_cfg.policy.paradigm = Paradigm::kIps;
  par_cfg.policy.ips = IpsPolicy::kWired;
  par_cfg.seed = 1;
  setAutoWindow(par_cfg, 0.03, full ? 80'000 : 15'000);
  const auto ser_t0 = std::chrono::steady_clock::now();
  const RunMetrics ser_m = runOnce(par_cfg, model, streams);
  const double sim_serial_ips_pkts_per_wall_s =
      static_cast<double>(ser_m.completed) / wallSecondsSince(ser_t0);
  par_cfg.parallel_procs = 4;
  ParallelRunInfo pinfo;
  const auto par_t0 = std::chrono::steady_clock::now();
  const RunMetrics par_m = runParallel(par_cfg, model, streams, &pinfo);
  const double sim_parallel_pkts_per_wall_s =
      static_cast<double>(par_m.completed) / wallSecondsSince(par_t0);
  if (par_m.completed != ser_m.completed)
    std::fprintf(stderr, "perf_ledger: parallel/serial completed-count mismatch!\n");

  // 2d) Figure-12 solved-pair datapoint: the bursty steal-affinity workload
  // that makes Flow Director migrate pins, run A-B against the
  // transport-friendly dispatcher (same seed, same window). The ratio tracks
  // the delay cost/saving of closing the reordering pathology over time;
  // ordering correctness itself is pinned by tests/ordering_test.cpp.
  std::printf("perf_ledger: fig12 tfn vs fdir burst point...\n");
  SimConfig ab_cfg = defaultSimConfig();
  ab_cfg.num_procs = 8;
  ab_cfg.policy.locking = LockingPolicy::kStealAffinity;
  ab_cfg.seed = 1;
  ab_cfg.warmup_us = 20'000.0;
  ab_cfg.measure_us = full ? 400'000.0 : 120'000.0;
  const auto ab_streams = makeBatchStreams(16, 0.03, 8.0);
  ab_cfg.dispatch = net::NicDispatchMode::kFlowDirector;
  const RunMetrics fdir_m = runOnce(ab_cfg, model, ab_streams);
  ab_cfg.dispatch = net::NicDispatchMode::kTransportFriendly;
  const RunMetrics tfn_m = runOnce(ab_cfg, model, ab_streams);
  const double fig12_tfn_vs_fdir_delay_ratio =
      fdir_m.mean_delay_us > 0.0 ? tfn_m.mean_delay_us / fdir_m.mean_delay_us : 0.0;

  // 2c) Runtime frame path: arena allocations per frame through a
  // steady-state LockingEngine window. The counting-allocator test
  // (arena_test) pins the *global*-allocator count at zero; this row tracks
  // the arena-side cost — ~1.0 means one pool hit per submitted frame.
  double arena_alloc_calls_per_frame = 0.0;
  if (!parallel_only) {
    std::printf("perf_ledger: arena frame path...\n");
    EngineOptions eopts;
    eopts.queue_capacity = 256;
    LockingEngine eng(/*workers=*/1, HostConfig{}, eopts);
    eng.openPort(7000, /*session_queue=*/64);
    eng.start();
    const std::vector<std::uint8_t> payload(64, 0x5A);
    std::vector<std::vector<std::uint8_t>> frames;
    for (std::uint32_t s = 0; s < 8; ++s) {
      FrameSpec spec;
      spec.src_port = static_cast<std::uint16_t>(3000 + s);
      frames.push_back(buildUdpFrame(spec, payload));
    }
    const auto pump = [&](std::uint64_t count, std::uint64_t base) {
      for (std::uint64_t i = 0; i < count; ++i)
        while (!eng.submit(WorkItem{frames[i % frames.size()],
                                    static_cast<std::uint32_t>(i % 8), {}, base + i}))
          std::this_thread::yield();
      while (eng.processedCount() < base + count)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    pump(4096, 0);  // warm: slabs, ring slots, scratch Packet, session ring
    const ArenaStats arena_before = FrameArena::totalStats();
    const std::uint64_t window = full ? 65'536 : 16'384;
    pump(window, 4096);
    const ArenaStats arena_after = FrameArena::totalStats();
    eng.stop();
    arena_alloc_calls_per_frame =
        static_cast<double>(arena_after.allocs - arena_before.allocs) /
        static_cast<double>(window);
  }

  // 3) Fast Figure-9 capacity smoke: Locking vs IPS max sustainable rate.
  CapacityResult cap_locking, cap_ips;
  if (!parallel_only) {
    std::printf("perf_ledger: fig9 capacity smoke...\n");
    SimConfig cap_cfg = defaultSimConfig();
    cap_cfg.num_procs = 8;
    cap_cfg.seed = 1;
    cap_cfg.warmup_us = 50'000.0;
    cap_cfg.measure_us = full ? 800'000.0 : 200'000.0;
    const auto factory = [](double rate) { return makePoissonStreams(16, rate); };
    cap_cfg.policy.paradigm = Paradigm::kLocking;
    cap_cfg.policy.locking = LockingPolicy::kMru;
    cap_locking = findMaxRate(cap_cfg, model, factory, 0.002, 0.08, 1000.0, full ? 10 : 7);
    cap_cfg.policy.paradigm = Paradigm::kIps;
    cap_cfg.policy.ips = IpsPolicy::kMru;
    cap_ips = findMaxRate(cap_cfg, model, factory, 0.002, 0.08, 1000.0, full ? 10 : 7);
  }

  char row[2048];
  if (parallel_only) {
    // Reduced row: just the parallel-sim datapoint ROADMAP item 2 wants
    // from a multi-core host (CI job perf-ledger-multicore). Same keys as
    // the full row where they overlap, so trajectory queries compose.
    std::snprintf(
        row, sizeof row,
        "{\"date\": \"%s\", \"mode\": \"parallel-only\", \"host_cores\": %u, "
        "\"sim_serial_ips_pkts_per_wall_s\": %.0f, "
        "\"sim_parallel_pkts_per_wall_s\": %.0f, "
        "\"sim_parallel_threads\": %u, \"sim_parallel_engaged\": %s, "
        "\"sim_parallel_speedup\": %.3f, "
        "\"fig12_tfn_vs_fdir_delay_ratio\": %.3f}",
        day.c_str(), host_cores, sim_serial_ips_pkts_per_wall_s,
        sim_parallel_pkts_per_wall_s, pinfo.shards, pinfo.parallel ? "true" : "false",
        sim_serial_ips_pkts_per_wall_s > 0.0
            ? sim_parallel_pkts_per_wall_s / sim_serial_ips_pkts_per_wall_s
            : 0.0,
        fig12_tfn_vs_fdir_delay_ratio);
  } else {
    std::snprintf(
        row, sizeof row,
        "{\"date\": \"%s\", \"mode\": \"%s\", \"host_cores\": %u, "
        "\"kernel_hold64_eps\": %.0f, \"kernel_hold64_speedup\": %.3f, "
        "\"kernel_churn_ops\": %.0f, \"kernel_churn_speedup\": %.3f, "
        "\"kernel_chain_eps\": %.0f, \"kernel_chain_speedup\": %.3f, "
        "\"kernel_batch_admit_eps\": %.0f, \"kernel_batch_admit_speedup\": %.3f, "
        "\"trace_guard_overhead_pct\": %.3f, "
        "\"sim_pkts_per_wall_s\": %.0f, "
        "\"sim_serial_ips_pkts_per_wall_s\": %.0f, "
        "\"sim_parallel_pkts_per_wall_s\": %.0f, "
        "\"sim_parallel_threads\": %u, \"sim_parallel_engaged\": %s, "
        "\"arena_alloc_calls_per_frame\": %.3f, "
        "\"capacity_locking_pkts_per_s\": %.0f, \"capacity_ips_pkts_per_s\": %.0f, "
        "\"fig12_tfn_vs_fdir_delay_ratio\": %.3f}",
        day.c_str(), full ? "full" : "fast", host_cores, hold.new_eps, hold.speedup(),
        churn.new_eps, churn.speedup(), chain.new_eps, chain.speedup(), batch.new_eps,
        batch.speedup(), guard_pct, sim_pkts_per_wall_s, sim_serial_ips_pkts_per_wall_s,
        sim_parallel_pkts_per_wall_s, pinfo.shards, pinfo.parallel ? "true" : "false",
        arena_alloc_calls_per_frame, cap_locking.max_rate_per_us * 1e6,
        cap_ips.max_rate_per_us * 1e6, fig12_tfn_vs_fdir_delay_ratio);
  }

  if (!obs::appendLedgerRow(path, row)) {
    std::fprintf(stderr, "perf_ledger: could not write %s\n", path.c_str());
    return 1;
  }
  if (!parallel_only) {
    std::printf("kernel hold64 %.2f Mev/s (%.2fx seed)  churn %.2f Mops/s (%.2fx)  "
                "chain %.2f Mev/s (%.2fx)  batch_admit %.2f Mev/s (%.2fx)\n",
                hold.new_eps / 1e6, hold.speedup(), churn.new_eps / 1e6, churn.speedup(),
                chain.new_eps / 1e6, chain.speedup(), batch.new_eps / 1e6, batch.speedup());
    std::printf("trace guard %.3f%%  sim %.0f pkts/wall-s  capacity locking %.0f / ips %.0f pkts/s\n",
                guard_pct, sim_pkts_per_wall_s, cap_locking.max_rate_per_us * 1e6,
                cap_ips.max_rate_per_us * 1e6);
  }
  std::printf("ips serial %.0f pkts/wall-s  parallel %.0f pkts/wall-s "
              "(%u shards, engaged=%s, %u host cores)  arena %.3f allocs/frame\n",
              sim_serial_ips_pkts_per_wall_s, sim_parallel_pkts_per_wall_s, pinfo.shards,
              pinfo.parallel ? "true" : "false", host_cores, arena_alloc_calls_per_frame);
  std::printf("fig12 tfn/fdir delay ratio %.3f (tfn %.1f us, fdir %.1f us, "
              "fdir migrations %llu, tfn applied %llu)\n",
              fig12_tfn_vs_fdir_delay_ratio, tfn_m.mean_delay_us, fdir_m.mean_delay_us,
              static_cast<unsigned long long>(fdir_m.flow_migrations),
              static_cast<unsigned long long>(tfn_m.tfn_applied));
  std::printf("appended row %zu to %s\n", obs::ledgerRowCount(path), path.c_str());
  return 0;
}
