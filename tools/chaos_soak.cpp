// chaos_soak — soak the real-thread engines (Locking / IPS / Dispatch)
// under a deterministic fault mix (frame faults + scheduled worker
// kill/stall) and audit the conservation ledger at shutdown:
//
//   submitted == delivered + Σ dropped_by_cause + dropped_oldest
//                + Σ evicted_inflight
//
//   $ ./chaos_soak --config scenarios/chaos_mixed_faults.ini
//   $ ./chaos_soak --frames 1000000 --engine all
//   $ ./chaos_soak --streams 100000 --frames 400000   # flow-table eviction
//
// Exits 0 iff every run conserves exactly (greppable "CHAOS SOAK PASS" /
// "CHAOS SOAK FAIL" status line). Flags override the config file.
#include <cstdio>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/chaos.hpp"
#include "util/cli.hpp"
#include "util/lockdep.hpp"

using namespace affinity;

int main(int argc, char** argv) {
  Cli cli("chaos_soak", "soak the engines under injected faults and audit conservation");
  const std::string& path = cli.flag<std::string>("config", "", "chaos scenario file (optional)");
  const std::string& engine = cli.flag<std::string>("engine", "all", "locking|ips|dispatch|all");
  const std::int64_t& frames = cli.flag<std::int64_t>("frames", 0, "override frame count");
  const std::int64_t& streams = cli.flag<std::int64_t>(
      "streams", 0, "override stream count (10^5 exercises flow-table eviction)");
  const std::int64_t& seed = cli.flag<std::int64_t>("seed", -1, "override seed");
  const std::string& metrics_out = cli.flag<std::string>(
      "metrics-out", "", "write the chaos ledger as a metrics-registry JSON snapshot here");
  const std::string& trace_out = cli.flag<std::string>(
      "trace-out", "", "write worker frame spans + fault instants as Chrome trace JSON here");
  const std::string& lockdep_out = cli.flag<std::string>(
      "lockdep-out", "", "write the observed lock-order graph as JSON here (AFF_LOCKDEP builds; "
                         "empty graph otherwise)");
  cli.parse(argc, argv);

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TraceSession> trace;
  if (!trace_out.empty()) {
    // Activate before the engines start so their workers pick up tracks.
    trace = std::make_unique<obs::TraceSession>();
    trace->activate();
  }

  ChaosConfig cfg;
  if (!path.empty()) {
    std::string error;
    const auto file = ConfigFile::load(path, &error);
    if (!file) {
      std::fprintf(stderr, "chaos_soak: %s\n", error.c_str());
      return 1;
    }
    cfg = loadChaosConfig(*file);
  } else {
    // Default soak: every fault type, one kill, one stall.
    cfg.frames = 200'000;
    cfg.workers = 4;
    cfg.streams = 16;
    cfg.faults = {.drop = 0.01, .bitflip = 0.02, .truncate = 0.02,
                  .duplicate = 0.01, .reorder = 0.01};
    cfg.kill_at = cfg.frames / 4;
    cfg.kill_worker = 1;
    cfg.stall_at = cfg.frames / 2;
    cfg.stall_worker = 2;
  }
  if (frames > 0) {
    // Keep scheduled worker faults inside the (possibly overridden) run.
    const double scale = static_cast<double>(frames) / static_cast<double>(cfg.frames);
    cfg.kill_at = static_cast<std::uint64_t>(static_cast<double>(cfg.kill_at) * scale);
    cfg.stall_at = static_cast<std::uint64_t>(static_cast<double>(cfg.stall_at) * scale);
    cfg.frames = static_cast<std::uint64_t>(frames);
  }
  if (streams > 0) cfg.streams = static_cast<std::uint32_t>(streams);
  if (seed >= 0) cfg.seed = static_cast<std::uint64_t>(seed);
  if (!metrics_out.empty()) cfg.metrics = &registry;

  bool ok = true;
  const auto soak = [&](EngineKind kind) {
    std::printf("== chaos soak: %s engine, %llu frames ==\n", engineKindName(kind),
                static_cast<unsigned long long>(cfg.frames));
    const ChaosReport rep = runChaos(kind, cfg);
    std::fputs(rep.describe().c_str(), stdout);
    std::printf("\n");
    ok = ok && rep.conserved;
  };
  // "both" predates the dispatch engine; kept as a synonym for "all".
  const bool all = engine == "all" || engine == "both";
  if (engine == "locking" || all) soak(EngineKind::kLocking);
  if (engine == "ips" || all) soak(EngineKind::kIps);
  if (engine == "dispatch" || all) soak(EngineKind::kDispatch);
  if (engine != "locking" && engine != "ips" && engine != "dispatch" && !all) {
    std::fprintf(stderr, "chaos_soak: unknown --engine %s\n", engine.c_str());
    return 2;
  }

  // In AFF_LOCKDEP builds the soak doubles as a lock-discipline gate: any
  // ordering violation observed while the engines ran fails the run even
  // though no deadlock happened to materialize.
  if (lockdep::enabled() && lockdep::cycleCount() > 0) {
    for (const auto& report : lockdep::reports()) std::fprintf(stderr, "%s\n", report.c_str());
    std::fprintf(stderr, "chaos_soak: lockdep recorded %zu lock-order violation%s\n",
                 lockdep::cycleCount(), lockdep::cycleCount() == 1 ? "" : "s");
    ok = false;
  }
  if (!lockdep_out.empty()) {
    std::FILE* f = std::fopen(lockdep_out.c_str(), "w");
    if (f != nullptr) {
      lockdep::writeJson(f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "warning: could not write --lockdep-out %s\n", lockdep_out.c_str());
    }
  }

  // Greppable status line, same convention as scripts/run_perf_smoke.sh.
  std::printf("%s\n", ok ? "CHAOS SOAK PASS: every frame accounted for"
                         : "CHAOS SOAK FAIL: conservation ledger does not balance");

  if (trace != nullptr) {
    obs::TraceSession::deactivate();
    if (!trace->writeChromeTrace(trace_out))
      std::fprintf(stderr, "warning: could not write --trace-out %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty() && !registry.writeJson(metrics_out))
    std::fprintf(stderr, "warning: could not write --metrics-out %s\n", metrics_out.c_str());
  return ok ? 0 : 4;
}
