// Figure 9 [reconstructed]: the paradigms head to head — best Locking policy
// vs best IPS policy: delay across the rate sweep, plus maximum throughput
// capacity under a delay bound. Expected shape (abstract): IPS delivers much
// lower message latency and significantly higher message throughput
// capacity.
#include <array>
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig09_locking_vs_ips", "Locking-best vs IPS-best: delay and capacity");
  const auto flags = CommonFlags::declare(cli);
  const double& bound = cli.flag<double>("delay-bound", 1'000.0, "capacity delay bound (us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  SimConfig locking = flags.makeConfig();
  locking.policy.paradigm = Paradigm::kLocking;
  locking.policy.locking = LockingPolicy::kMru;
  SimConfig ips = flags.makeConfig();
  ips.policy.paradigm = Paradigm::kIps;
  ips.policy.ips = IpsPolicy::kWired;

  std::printf("# Figure 9 — Locking/MRU vs IPS/Wired, %d procs, %d streams\n", flags.procs,
              flags.streams);
  TableWriter t({"rate_pkts_per_s", "Locking_MRU", "IPS_Wired"}, flags.csv, 1);
  const auto rates = rateSweep(flags.fast);
  const auto rows = sweep(flags, rates.size(), [&](std::size_t i) {
    const double rate = rates[i];
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    SimConfig lc = locking, ic = ips;
    lc.seed = ic.seed = pointSeed(flags, i);
    return std::array<double, 2>{runOnce(lc, model, streams).mean_delay_us,
                                 runOnce(ic, model, streams).mean_delay_us};
  });
  for (std::size_t i = 0; i < rates.size(); ++i) {
    t.beginRow();
    t.add(perSecond(rates[i]));
    t.add(rows[i][0]);
    t.add(rows[i][1]);
  }
  t.print();

  // Capacity under the delay bound: the two bisections are independent, so
  // they too go through the sweep pool (each search stays sequential).
  const std::size_t ns = static_cast<std::size_t>(flags.streams);
  const auto make = [ns](double rate) { return makePoissonStreams(ns, rate); };
  SimConfig fast_locking = locking, fast_ips = ips;
  fast_locking.measure_us = fast_ips.measure_us = flags.fast ? 200'000.0 : 800'000.0;
  const std::array<const SimConfig*, 2> cap_cfgs{&fast_locking, &fast_ips};
  const auto caps = sweep(flags, cap_cfgs.size(), [&](std::size_t i) {
    return findMaxRate(*cap_cfgs[i], model, make, 0.002, 0.08, bound, 10);
  });
  const CapacityResult& cap_l = caps[0];
  const CapacityResult& cap_i = caps[1];
  std::printf("\n# maximum throughput capacity (mean delay <= %.0f us)\n", bound);
  TableWriter cap({"paradigm", "capacity_pkts_per_s", "mean_delay_at_cap_us"}, flags.csv, 1);
  cap.beginRow();
  cap.addText("Locking/MRU");
  cap.add(perSecond(cap_l.max_rate_per_us));
  cap.add(cap_l.at_max.mean_delay_us);
  cap.beginRow();
  cap.addText("IPS/Wired");
  cap.add(perSecond(cap_i.max_rate_per_us));
  cap.add(cap_i.at_max.mean_delay_us);
  cap.print();
  return 0;
}
