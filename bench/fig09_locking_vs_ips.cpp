// Figure 9 [reconstructed]: the paradigms head to head — best Locking policy
// vs best IPS policy: delay across the rate sweep, plus maximum throughput
// capacity under a delay bound. Expected shape (abstract): IPS delivers much
// lower message latency and significantly higher message throughput
// capacity.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig09_locking_vs_ips", "Locking-best vs IPS-best: delay and capacity");
  const auto flags = CommonFlags::declare(cli);
  const double& bound = cli.flag<double>("delay-bound", 1'000.0, "capacity delay bound (us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  SimConfig locking = flags.makeConfig();
  locking.policy.paradigm = Paradigm::kLocking;
  locking.policy.locking = LockingPolicy::kMru;
  SimConfig ips = flags.makeConfig();
  ips.policy.paradigm = Paradigm::kIps;
  ips.policy.ips = IpsPolicy::kWired;

  std::printf("# Figure 9 — Locking/MRU vs IPS/Wired, %d procs, %d streams\n", flags.procs,
              flags.streams);
  TableWriter t({"rate_pkts_per_s", "Locking_MRU", "IPS_Wired"}, flags.csv, 1);
  for (double rate : rateSweep(flags.fast)) {
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    t.beginRow();
    t.add(perSecond(rate));
    t.add(runOnce(locking, model, streams).mean_delay_us);
    t.add(runOnce(ips, model, streams).mean_delay_us);
  }
  t.print();

  // Capacity under the delay bound.
  const std::size_t ns = static_cast<std::size_t>(flags.streams);
  const auto make = [ns](double rate) { return makePoissonStreams(ns, rate); };
  SimConfig fast_locking = locking, fast_ips = ips;
  fast_locking.measure_us = fast_ips.measure_us = flags.fast ? 200'000.0 : 800'000.0;
  const auto cap_l = findMaxRate(fast_locking, model, make, 0.002, 0.08, bound, 10);
  const auto cap_i = findMaxRate(fast_ips, model, make, 0.002, 0.08, bound, 10);
  std::printf("\n# maximum throughput capacity (mean delay <= %.0f us)\n", bound);
  TableWriter cap({"paradigm", "capacity_pkts_per_s", "mean_delay_at_cap_us"}, flags.csv, 1);
  cap.beginRow();
  cap.addText("Locking/MRU");
  cap.add(perSecond(cap_l.max_rate_per_us));
  cap.add(cap_l.at_max.mean_delay_us);
  cap.beginRow();
  cap.addText("IPS/Wired");
  cap.add(perSecond(cap_i.max_rate_per_us));
  cap.add(cap_i.at_max.mean_delay_us);
  cap.print();
  return 0;
}
