// TCP applicability (paper §6): "our results are likely to hold directly
// for TCP" — TCP-specific processing is at most ~15% of packet time and the
// overhead breakdown matches UDP's. This bench reruns the headline policy
// comparison with the TCP receive-path parameters (and a slightly
// stream-state-heavier footprint: the TCP PCB is large) and checks the
// orderings persist.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("ext_tcp", "the policy comparison under TCP/IP/FDDI receive parameters");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  FootprintShares tcp_shares;  // heavier per-connection state than UDP
  tcp_shares.l1_code = 0.26;
  tcp_shares.l1_shared = 0.18;
  tcp_shares.l1_stream = 0.56;
  tcp_shares.l2_code = 0.60;
  tcp_shares.l2_shared = 0.14;
  tcp_shares.l2_stream = 0.26;
  const ExecTimeModel model(FlushModel(MachineParams::sgiChallenge(), SstParams::mvsWorkload()),
                            ReloadParams::measuredTcpReceive(), tcp_shares);

  std::printf("# TCP receive path — t_warm=%.1f t_cold=%.1f (UDP: 135.7/284.3)\n", model.tWarm(),
              model.tCold());
  TableWriter t({"rate_pkts_per_s", "FCFS", "MRU", "StreamMRU", "IPS_Wired"}, flags.csv, 1);
  for (double rate : rateSweep(flags.fast)) {
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    t.beginRow();
    t.add(perSecond(rate));
    for (LockingPolicy p :
         {LockingPolicy::kFcfs, LockingPolicy::kMru, LockingPolicy::kStreamMru}) {
      SimConfig c = flags.makeConfigFor(rate);
      c.policy.paradigm = Paradigm::kLocking;
      c.policy.locking = p;
      t.add(runOnce(c, model, streams).mean_delay_us);
    }
    SimConfig c = flags.makeConfigFor(rate);
    c.policy.paradigm = Paradigm::kIps;
    c.policy.ips = IpsPolicy::kWired;
    t.add(runOnce(c, model, streams).mean_delay_us);
  }
  t.print();
  return 0;
}
