// Hybrid policy (TR UM-CS-1994-075 / conclusions): a per-stream choice —
// hot, bursty streams go through the Locking stack (multi-processor burst
// absorption), the background population through IPS stacks (warm, lockless
// fast path). Workload: a few hot bursty streams over many quiet ones.
// Expected: Hybrid tracks IPS for the quiet streams and Locking for the hot
// ones, beating either pure paradigm on overall mean delay.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

namespace {

StreamSet hotColdBursty(std::size_t hot, std::size_t cold, double rate, double hot_share,
                        double batch) {
  StreamSet set;
  const double hot_rate = rate * hot_share / static_cast<double>(hot);
  const double cold_rate = rate * (1.0 - hot_share) / static_cast<double>(cold);
  for (std::size_t i = 0; i < hot; ++i)
    set.streams.push_back(std::make_unique<BatchPoissonArrivals>(hot_rate, batch, false));
  for (std::size_t i = 0; i < cold; ++i)
    set.streams.push_back(std::make_unique<PoissonArrivals>(cold_rate));
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ext_hybrid", "hybrid Locking/IPS per-stream policy on a hot/cold workload");
  const auto flags = CommonFlags::declare(cli);
  const int& hot = cli.flag<int>("hot", 2, "number of hot bursty streams");
  const double& hot_share = cli.flag<double>("hot-share", 0.5, "rate share of hot streams");
  const double& batch = cli.flag<double>("batch", 16.0, "hot-stream batch size");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  const std::size_t cold = static_cast<std::size_t>(flags.streams) - hot;

  std::printf("# Hybrid — %d hot bursty streams (batch %.0f, %.0f%% of load) + %zu quiet\n", hot,
              batch, 100 * hot_share, cold);
  TableWriter t({"rate_pkts_per_s", "Locking_MRU", "IPS_Wired", "Hybrid"}, flags.csv, 1);
  for (double rate : rateSweep(flags.fast)) {
    const auto streams = hotColdBursty(static_cast<std::size_t>(hot), cold, rate, hot_share, batch);
    t.beginRow();
    t.add(perSecond(rate));

    SimConfig c = flags.makeConfigFor(rate);
    c.policy.paradigm = Paradigm::kLocking;
    c.policy.locking = LockingPolicy::kMru;
    t.add(runOnce(c, model, streams).mean_delay_us);

    c.policy.paradigm = Paradigm::kIps;
    c.policy.ips = IpsPolicy::kWired;
    t.add(runOnce(c, model, streams).mean_delay_us);

    c.policy.paradigm = Paradigm::kHybrid;
    c.policy.locking = LockingPolicy::kMru;
    c.policy.ips = IpsPolicy::kWired;
    c.policy.hybrid_locking_streams.clear();
    for (int h = 0; h < hot; ++h)
      c.policy.hybrid_locking_streams.push_back(static_cast<std::uint32_t>(h));
    t.add(runOnce(c, model, streams).mean_delay_us);
  }
  t.print();
  return 0;
}
