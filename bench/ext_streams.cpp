// Stream-population sweep: mean delay vs the number of concurrent streams at
// a fixed aggregate rate. More streams dilute per-stream warmth (each
// stream's state is referenced more rarely and competes for cache), so
// stream-affinity policies lose their edge gradually while the no-affinity
// baseline is flat-to-worse throughout — the "supporting many concurrent
// streams" axis of the abstract.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("ext_streams", "delay vs number of concurrent streams at fixed rate");
  const auto flags = CommonFlags::declare(cli);
  const double& rate = cli.flag<double>("rate", 0.02, "aggregate packet rate (pkts/us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# stream population sweep — rate %.0f pkts/s, %d procs\n", perSecond(rate),
              flags.procs);
  TableWriter t({"streams", "FCFS", "MRU", "StreamMRU", "IPS_Wired"}, flags.csv, 1);
  const std::vector<int> counts = flags.fast ? std::vector<int>{8, 64}
                                             : std::vector<int>{4, 8, 16, 32, 64, 128};
  for (int n : counts) {
    const auto streams = makePoissonStreams(static_cast<std::size_t>(n), rate);
    t.beginRow();
    t.add(n);
    for (LockingPolicy p :
         {LockingPolicy::kFcfs, LockingPolicy::kMru, LockingPolicy::kStreamMru}) {
      SimConfig c = flags.makeConfigFor(rate);
      c.policy.paradigm = Paradigm::kLocking;
      c.policy.locking = p;
      t.add(runOnce(c, model, streams).mean_delay_us);
    }
    SimConfig c = flags.makeConfigFor(rate);
    c.policy.paradigm = Paradigm::kIps;
    c.policy.ips = IpsPolicy::kWired;
    t.add(runOnce(c, model, streams).mean_delay_us);
  }
  t.print();
  return 0;
}
