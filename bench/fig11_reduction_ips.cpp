// Figure 11: percentage reduction in mean packet delay achieved by affinity
// scheduling under IPS (Wired vs Random stack placement), vs arrival rate,
// for several fixed per-packet overheads V — the IPS counterpart of Fig 10.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig11_reduction_ips", "IPS: % delay reduction from affinity vs rate and V");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  const double vs[] = {0.0, 35.0, 70.0, 139.0};
  std::printf("# Figure 11 — IPS, Wired vs Random, %d procs, %d streams; entries are %% reduction\n",
              flags.procs, flags.streams);
  TableWriter t({"rate_pkts_per_s", "V=0", "V=35us", "V=70us", "V=139us"}, flags.csv, 1);
  for (double rate : rateSweep(flags.fast)) {
    t.beginRow();
    t.add(perSecond(rate));
    for (double v : vs) {
      const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
      SimConfig c = flags.makeConfigFor(rate);
      c.fixed_overhead_us = v;
      c.policy.paradigm = Paradigm::kIps;
      c.policy.ips = IpsPolicy::kRandom;
      const RunMetrics base = runOnce(c, model, streams);
      c.policy.ips = IpsPolicy::kWired;
      const RunMetrics wired = runOnce(c, model, streams);
      if (wired.saturated) {
        t.addText("sat");
      } else if (base.saturated) {
        char buf[32];
        std::snprintf(buf, sizeof buf, ">%.0f",
                      std::min(99.0, reductionPercent(base.mean_delay_us, wired.mean_delay_us)));
        t.addText(buf);
      } else {
        t.add(reductionPercent(base.mean_delay_us, wired.mean_delay_us));
      }
    }
  }
  t.print();
  return 0;
}
