// Figure 11: percentage reduction in mean packet delay achieved by affinity
// scheduling under IPS (Wired vs Random stack placement), vs arrival rate,
// for several fixed per-packet overheads V — the IPS counterpart of Fig 10.
#include <algorithm>
#include <array>
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig11_reduction_ips", "IPS: % delay reduction from affinity vs rate and V");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  const double vs[] = {0.0, 35.0, 70.0, 139.0};
  std::printf("# Figure 11 — IPS, Wired vs Random, %d procs, %d streams; entries are %% reduction\n",
              flags.procs, flags.streams);
  TableWriter t({"rate_pkts_per_s", "V=0", "V=35us", "V=70us", "V=139us"}, flags.csv, 1);
  const auto rates = rateSweep(flags.fast);
  struct Cell {
    RunMetrics base, wired;
  };
  const auto rows = sweep(flags, rates.size(), [&](std::size_t i) {
    const double rate = rates[i];
    std::array<Cell, 4> row;
    for (std::size_t k = 0; k < 4; ++k) {
      const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
      SimConfig c = flags.makeConfigFor(rate);
      c.seed = pointSeed(flags, i);
      c.fixed_overhead_us = vs[k];
      c.policy.paradigm = Paradigm::kIps;
      c.policy.ips = IpsPolicy::kRandom;
      row[k].base = runOnce(c, model, streams);
      c.policy.ips = IpsPolicy::kWired;
      row[k].wired = runOnce(c, model, streams);
    }
    return row;
  });
  for (std::size_t i = 0; i < rates.size(); ++i) {
    t.beginRow();
    t.add(perSecond(rates[i]));
    for (const Cell& cell : rows[i]) {
      const RunMetrics& base = cell.base;
      const RunMetrics& wired = cell.wired;
      if (wired.saturated) {
        t.addText("sat");
      } else if (base.saturated) {
        char buf[32];
        std::snprintf(buf, sizeof buf, ">%.0f",
                      std::min(99.0, reductionPercent(base.mean_delay_us, wired.mean_delay_us)));
        t.addText(buf);
      } else {
        t.add(reductionPercent(base.mean_delay_us, wired.mean_delay_us));
      }
    }
  }
  t.print();
  return 0;
}
