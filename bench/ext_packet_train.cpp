// Extension (ii): burstiness and source locality via the Packet-Train model
// of Jain & Routhier [9] — trains of back-to-back packets per stream. Sweeps
// the mean train length at fixed packet rate. Trains reward affinity (the
// cars of a train reuse the warm stream state) but punish IPS at long trains
// (a whole train serializes on one stack).
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("ext_packet_train", "packet-train workload: delay vs mean train length");
  const auto flags = CommonFlags::declare(cli);
  const double& rate = cli.flag<double>("rate", 0.012, "aggregate packet rate (pkts/us)");
  const double& gap = cli.flag<double>("intercar-gap", 30.0, "gap between cars (us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  SimConfig fcfs = flags.makeConfig();
  fcfs.policy.paradigm = Paradigm::kLocking;
  fcfs.policy.locking = LockingPolicy::kFcfs;
  SimConfig mru = fcfs;
  mru.policy.locking = LockingPolicy::kMru;
  SimConfig smru = fcfs;
  smru.policy.locking = LockingPolicy::kStreamMru;
  SimConfig ips = flags.makeConfig();
  ips.policy.paradigm = Paradigm::kIps;
  ips.policy.ips = IpsPolicy::kWired;

  std::printf("# Extension ii — packet trains, rate %.0f pkts/s, intercar gap %.0f us\n",
              perSecond(rate), gap);
  TableWriter t({"train_len", "FCFS", "MRU", "StreamMRU", "IPS_Wired"}, flags.csv, 1);
  const std::vector<double> lens =
      flags.fast ? std::vector<double>{1, 8} : std::vector<double>{1, 2, 4, 8, 12, 16};
  for (double len : lens) {
    const auto streams =
        makeTrainStreams(static_cast<std::size_t>(flags.streams), rate, len, gap);
    t.beginRow();
    t.add(len);
    t.add(runOnce(fcfs, model, streams).mean_delay_us);
    t.add(runOnce(mru, model, streams).mean_delay_us);
    t.add(runOnce(smru, model, streams).mean_delay_us);
    t.add(runOnce(ips, model, streams).mean_delay_us);
  }
  t.print();
  return 0;
}
