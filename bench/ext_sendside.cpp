// Extension (i): send-side UDP/IP/FDDI processing — the same policy
// comparison with the send path's measured reload parameters (cheaper warm
// path, smaller data footprint). The affinity conclusions should carry over.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("ext_sendside", "send-side processing: Locking policies and IPS");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  // Send path: relatively more code, less per-stream state than receive.
  FootprintShares send_shares;
  send_shares.l1_code = 0.40;
  send_shares.l1_shared = 0.20;
  send_shares.l1_stream = 0.40;
  send_shares.l2_code = 0.70;
  send_shares.l2_shared = 0.15;
  send_shares.l2_stream = 0.15;
  const ExecTimeModel model(FlushModel(MachineParams::sgiChallenge(), SstParams::mvsWorkload()),
                            ReloadParams::measuredUdpSend(), send_shares);

  std::printf("# Extension i — send-side UDP/IP/FDDI (t_warm=%.0f, t_cold=%.0f)\n", model.tWarm(),
              model.tCold());
  TableWriter t({"rate_pkts_per_s", "FCFS", "MRU", "WiredStreams", "IPS_Wired"}, flags.csv, 1);
  for (double rate : rateSweep(flags.fast)) {
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    t.beginRow();
    t.add(perSecond(rate));
    for (LockingPolicy p :
         {LockingPolicy::kFcfs, LockingPolicy::kMru, LockingPolicy::kWiredStreams}) {
      SimConfig c = flags.makeConfigFor(rate);
      c.policy.paradigm = Paradigm::kLocking;
      c.policy.locking = p;
      t.add(runOnce(c, model, streams).mean_delay_us);
    }
    SimConfig c = flags.makeConfigFor(rate);
    c.policy.paradigm = Paradigm::kIps;
    c.policy.ips = IpsPolicy::kWired;
    t.add(runOnce(c, model, streams).mean_delay_us);
  }
  t.print();
  return 0;
}
