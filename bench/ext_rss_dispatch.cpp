// Beyond the paper: NIC dispatch modes (RSS / Flow Director) and
// affinity-aware work stealing against the paper's own baselines.
//
// Table 1 re-runs the Figure 9 crossover (mean delay vs rate, Locking-MRU
// vs IPS-Wired) with the wired-family Locking scheduler behind each NIC
// dispatch mode, with and without stealing. Expected shape: direct and RSS
// differ only through queue-assignment balance (both are stateless maps);
// steal-affinity tracks plain wired at low load (stealing rarely engages
// below the min-queue threshold) and undercuts it as bursts build.
//
// Table 2 sits at the Figure 12 high-burstiness point (batch arrivals at a
// fixed aggregate rate) and is the load-imbalance story: an IPS stack
// serializes each burst, wired-no-steal strands bursts on their home
// processor, and steal-affinity spreads them while the bounded batch +
// per-steal penalty keep the migrated footprint — and thus the warm
// fraction sim.affinity.* — close to IPS's. The acceptance bar from the
// tracking issue: steal-affinity throughput >= IPS at this point with the
// L2 warm fraction within 10% of IPS's, steals visible via sched.steal.*.
//
// The transport-friendly (TFN) columns ride both tables: TFN seeds
// placement exactly like RSS and only moves a pin on consumer feedback
// once the old home has drained, so its delay curve must shadow RSS's and
// its per-core load spread (max-min per-proc busy fraction) must stay
// within 10 points of RSS's across the Figure 9 grid — the second smoke
// bar asserted below.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "obs/metrics.hpp"

using namespace affinity;
using namespace affinity::bench;

namespace {

struct PolicyPoint {
  const char* name;
  Paradigm paradigm;
  LockingPolicy locking;
  IpsPolicy ips;
  net::NicDispatchMode dispatch;
};

/// The burst-point series: paper baselines first, then the new machinery.
const PolicyPoint kBurstPolicies[] = {
    {"IPS_Wired", Paradigm::kIps, LockingPolicy::kFcfs, IpsPolicy::kWired,
     net::NicDispatchMode::kDirect},
    {"Wired_NoSteal", Paradigm::kLocking, LockingPolicy::kWiredStreams, IpsPolicy::kWired,
     net::NicDispatchMode::kDirect},
    {"Steal_direct", Paradigm::kLocking, LockingPolicy::kStealAffinity, IpsPolicy::kWired,
     net::NicDispatchMode::kDirect},
    {"Steal_rss", Paradigm::kLocking, LockingPolicy::kStealAffinity, IpsPolicy::kWired,
     net::NicDispatchMode::kRss},
    {"Steal_fdir", Paradigm::kLocking, LockingPolicy::kStealAffinity, IpsPolicy::kWired,
     net::NicDispatchMode::kFlowDirector},
    {"Steal_tfn", Paradigm::kLocking, LockingPolicy::kStealAffinity, IpsPolicy::kWired,
     net::NicDispatchMode::kTransportFriendly},
};

struct BurstRow {
  double throughput, delay, warm_l2;
  double steals, stolen, migrations;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ext_rss_dispatch",
          "NIC dispatch modes + steal-affinity vs the Figure 9/12 baselines");
  const auto flags = CommonFlags::declare(cli);
  const double& rate = cli.flag<double>("rate", 0.012, "burst-point aggregate rate (pkts/us)");
  const double& batch = cli.flag<double>("batch", 24.0, "burst-point intra-stream batch size");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  const auto base = [&](Paradigm paradigm, LockingPolicy locking,
                        net::NicDispatchMode dispatch) {
    SimConfig c = flags.makeConfig();
    c.policy.paradigm = paradigm;
    c.policy.locking = locking;
    c.policy.ips = IpsPolicy::kWired;
    c.dispatch = dispatch;
    return c;
  };

  // --- Table 1: the Figure 9 crossover behind each dispatch mode ----------
  std::printf("# Fig. 9 crossover behind the NIC front-end — %d procs, %d streams, Poisson\n",
              flags.procs, flags.streams);
  TableWriter sweep_table({"rate_pkts_s", "Locking_MRU", "IPS_Wired", "Wired_direct",
                           "Wired_rss", "Steal_direct", "Steal_rss", "Steal_tfn"},
                          flags.csv, 2);
  const std::vector<double> rates = rateSweep(flags.fast);
  struct SweepRow {
    double mru, ips, wired_direct, wired_rss, steal_direct, steal_rss, steal_tfn;
    double spread_rss, spread_tfn;  // max-min per-proc busy fraction
  };
  const auto sweep_rows = sweep(flags, rates.size(), [&](std::size_t i) {
    const auto streams =
        makePoissonStreams(static_cast<std::size_t>(flags.streams), rates[i]);
    const auto run = [&](SimConfig c) {
      c.seed = pointSeed(flags, i);
      setAutoWindow(c, rates[i], flags.fast ? 15'000 : 80'000);
      return runOnce(c, model, streams).mean_delay_us;
    };
    // The two steal columns that feed the load-spread bar also harvest the
    // per-proc busy fractions from a private registry.
    const auto runSpread = [&](SimConfig c, double* spread) {
      c.seed = pointSeed(flags, i);
      setAutoWindow(c, rates[i], flags.fast ? 15'000 : 80'000);
      obs::MetricsRegistry reg;
      c.metrics = &reg;
      const double delay = runOnce(c, model, streams).mean_delay_us;
      double lo = 1.0, hi = 0.0;
      for (std::uint32_t p = 0; p < c.num_procs; ++p) {
        const double busy = reg.meanStat("sim.proc." + std::to_string(p) + ".busy_frac").mean();
        lo = std::min(lo, busy);
        hi = std::max(hi, busy);
      }
      *spread = hi - lo;
      return delay;
    };
    SimConfig mru = base(Paradigm::kLocking, LockingPolicy::kMru, net::NicDispatchMode::kDirect);
    SweepRow row{};
    row.mru = run(mru);
    row.ips = run(base(Paradigm::kIps, LockingPolicy::kFcfs, net::NicDispatchMode::kDirect));
    row.wired_direct =
        run(base(Paradigm::kLocking, LockingPolicy::kWiredStreams, net::NicDispatchMode::kDirect));
    row.wired_rss =
        run(base(Paradigm::kLocking, LockingPolicy::kWiredStreams, net::NicDispatchMode::kRss));
    row.steal_direct =
        run(base(Paradigm::kLocking, LockingPolicy::kStealAffinity, net::NicDispatchMode::kDirect));
    row.steal_rss =
        runSpread(base(Paradigm::kLocking, LockingPolicy::kStealAffinity, net::NicDispatchMode::kRss),
                  &row.spread_rss);
    row.steal_tfn = runSpread(
        base(Paradigm::kLocking, LockingPolicy::kStealAffinity, net::NicDispatchMode::kTransportFriendly),
        &row.spread_tfn);
    return row;
  });
  for (std::size_t i = 0; i < rates.size(); ++i)
    sweep_table.addRow({perSecond(rates[i]), sweep_rows[i].mru, sweep_rows[i].ips,
                        sweep_rows[i].wired_direct, sweep_rows[i].wired_rss,
                        sweep_rows[i].steal_direct, sweep_rows[i].steal_rss,
                        sweep_rows[i].steal_tfn});
  sweep_table.print();

  // Worst TFN-vs-RSS load-spread delta across the grid: consumer-driven
  // repins must not unbalance the queues relative to the stateless hash.
  double worst_spread_delta = 0.0;
  double worst_spread_rate = rates.empty() ? 0.0 : rates[0];
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double delta = sweep_rows[i].spread_tfn - sweep_rows[i].spread_rss;
    if (delta > worst_spread_delta) {
      worst_spread_delta = delta;
      worst_spread_rate = rates[i];
    }
  }
  std::printf(
      "# tfn vs rss per-core load spread: worst delta %.3f (at %.0f pkts/s); bar 0.100\n",
      worst_spread_delta, perSecond(worst_spread_rate));

  // --- Table 2: the Figure 12 high-burstiness point -----------------------
  std::printf("\n# Burst point — batch %.0f at %.0f pkts/s aggregate (Fig. 12 regime)\n",
              batch, perSecond(rate));
  TableWriter burst_table({"policy", "throughput_per_us", "mean_delay_us", "warm_l2",
                           "steals", "stolen_jobs", "migrations"},
                          flags.csv, 4);
  const std::size_t n_policies = std::size(kBurstPolicies);
  const auto burst_rows = sweep(flags, n_policies, [&](std::size_t i) {
    const PolicyPoint& p = kBurstPolicies[i];
    const auto streams = makeBatchStreams(static_cast<std::size_t>(flags.streams), rate,
                                          batch, /*geometric=*/false);
    SimConfig c = base(p.paradigm, p.locking, p.dispatch);
    c.policy.ips = p.ips;
    // Every policy runs the same seed: identical arrival sequences, so the
    // burst-point rows differ only through scheduling.
    c.seed = pointSeed(flags, 0);
    // A private registry per run: the warm fractions and steal counters
    // below must be this run's, not the table's aggregate.
    obs::MetricsRegistry reg;
    c.metrics = &reg;
    const RunMetrics m = runOnce(c, model, streams);
    return BurstRow{m.throughput_per_us,
                    m.mean_delay_us,
                    reg.meanStat("sim.affinity.l2_warm_fraction").mean(),
                    static_cast<double>(reg.counter("sim.sched.steal.count").value()),
                    static_cast<double>(reg.counter("sim.sched.steal.jobs").value()),
                    static_cast<double>(m.flow_migrations)};
  });
  for (std::size_t i = 0; i < n_policies; ++i) {
    burst_table.beginRow();
    burst_table.addText(kBurstPolicies[i].name);
    burst_table.add(burst_rows[i].throughput);
    burst_table.add(burst_rows[i].delay);
    burst_table.add(burst_rows[i].warm_l2);
    burst_table.add(burst_rows[i].steals);
    burst_table.add(burst_rows[i].stolen);
    burst_table.add(burst_rows[i].migrations);
  }
  burst_table.print();

  const BurstRow& ips = burst_rows[0];
  const BurstRow& steal = burst_rows[2];  // Steal_direct
  const double gap_pct = 100.0 * (ips.warm_l2 - steal.warm_l2) / ips.warm_l2;
  std::printf(
      "# steal-affinity vs IPS @ batch %.0f: throughput x%.3f, "
      "L2 warm fraction %.3f vs %.3f (gap %.1f%%)\n",
      batch, steal.throughput / ips.throughput, steal.warm_l2, ips.warm_l2, gap_pct);

  // The tracking-issue bar from the header comment, now asserted instead of
  // just printed: steal-affinity matches IPS throughput at the burst point
  // and keeps the L2 warm fraction within 10% of IPS's. The --fast window
  // is ~5x shorter, so the smoke run widens both tolerances rather than
  // flaking on sampling noise (EXPERIMENTS.md, bench status lines).
  // A second bar rides the Figure 9 grid: the transport-friendly front-end
  // may only repin on consumer feedback, so its per-core load spread must
  // stay within 10 points of the stateless RSS hash at every rate.
  const double min_tp_ratio = flags.fast ? 0.99 : 0.999;
  const double max_gap_pct = flags.fast ? 15.0 : 10.0;
  const double max_spread_delta = 0.10;
  char detail[200];
  std::snprintf(detail, sizeof detail,
                "steal/IPS throughput x%.3f, warm-L2 gap %.1f%%, tfn-rss spread delta %.3f (%s bar)",
                steal.throughput / ips.throughput, gap_pct, worst_spread_delta,
                flags.fast ? "fast" : "full");
  return smokeStatus("ext_rss_dispatch",
                     steal.throughput >= ips.throughput * min_tp_ratio &&
                         gap_pct <= max_gap_pct && worst_spread_delta <= max_spread_delta,
                     detail);
}
