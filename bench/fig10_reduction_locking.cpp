// Figure 10: percentage reduction in mean packet delay achieved by affinity
// scheduling under Locking (the StreamMRU affinity bundle vs FCFS), as a
// function of arrival rate, for several values of the fixed per-packet
// data-touching overhead V. The paper: "the upper bound on the reduction
// (as given by the V=0 curves) is around 40-50%"; checksumming the largest
// FDDI packet costs V = 139 µs.
#include <algorithm>
#include <array>
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig10_reduction_locking", "Locking: % delay reduction from affinity vs rate and V");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  const double vs[] = {0.0, 35.0, 70.0, 139.0};
  std::printf(
      "# Figure 10 — Locking: affinity bundle (StreamMRU) vs FCFS, %d procs, %d streams\n"
      "# entries are %% reduction in mean delay; '>' = baseline saturated (lower bound);\n"
      "# 'sat' = both saturated\n",
      flags.procs, flags.streams);
  TableWriter t({"rate_pkts_per_s", "V=0", "V=35us", "V=70us", "V=139us"}, flags.csv, 1);
  const auto rates = rateSweep(flags.fast);
  struct Cell {
    RunMetrics base, aff;
  };
  const auto rows = sweep(flags, rates.size(), [&](std::size_t i) {
    const double rate = rates[i];
    std::array<Cell, 4> row;
    for (std::size_t k = 0; k < 4; ++k) {
      // Capacity shrinks as V grows; saturated points are marked on print.
      const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
      SimConfig c = flags.makeConfigFor(rate);
      c.seed = pointSeed(flags, i);
      c.fixed_overhead_us = vs[k];
      c.policy.paradigm = Paradigm::kLocking;
      c.policy.locking = LockingPolicy::kFcfs;
      row[k].base = runOnce(c, model, streams);
      // The affinity system bundles MRU processor management with
      // per-processor pools and stream affinity (paper §5.1, footnote 7).
      c.policy.locking = LockingPolicy::kStreamMru;
      row[k].aff = runOnce(c, model, streams);
    }
    return row;
  });
  for (std::size_t i = 0; i < rates.size(); ++i) {
    t.beginRow();
    t.add(perSecond(rates[i]));
    for (const Cell& cell : rows[i]) {
      const RunMetrics& base = cell.base;
      const RunMetrics& aff = cell.aff;
      if (aff.saturated) {
        t.addText("sat");
      } else if (base.saturated) {
        // The baseline's backlog is still growing; the true steady-state
        // reduction is at least this.
        char buf[32];
        std::snprintf(buf, sizeof buf, ">%.0f",
                      std::min(99.0, reductionPercent(base.mean_delay_us, aff.mean_delay_us)));
        t.addText(buf);
      } else {
        t.add(reductionPercent(base.mean_delay_us, aff.mean_delay_us));
      }
    }
  }
  t.print();
  return 0;
}
