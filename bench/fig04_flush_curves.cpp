// Figure 4: F1(x) and F2(x) — the fractions of the protocol footprint
// flushed from L1 and L2 after x microseconds of intervening non-protocol
// execution (analytic, SST-parameterized). The paper's observation: the
// footprint is flushed much more slowly from L2 than from L1. The analytic
// curves are printed alongside the cache simulator's directly observed
// displaced fractions for cross-validation.
#include <cstdio>

#include "bench/common.hpp"
#include "cachesim/measurement.hpp"

using namespace affinity;

int main(int argc, char** argv) {
  Cli cli("fig04_flush_curves", "footprint flush fractions F1(x), F2(x)");
  const bool& csv = cli.flag<bool>("csv", false, "emit CSV");
  const bool& fast = cli.flag<bool>("fast", false, "skip the simulated validation points");
  cli.parse(argc, argv);

  const FlushModel fm(MachineParams::sgiChallenge(), SstParams::mvsWorkload());
  MeasurementHarness harness(MachineParams::sgiChallenge(), ProtocolLayout::standard(),
                             ProtocolTraceParams{}, 42);

  std::printf("# Figure 4 — fraction of footprint flushed vs intervening time\n");
  TableWriter t({"x_us", "F1_analytic", "F2_analytic", "F1_simulated", "F2_simulated"}, csv, 4);
  for (double x : {10.0, 30.0, 100.0, 300.0, 1'000.0, 3'000.0, 10'000.0, 30'000.0, 100'000.0,
                   300'000.0, 1'000'000.0}) {
    t.beginRow();
    t.add(x);
    t.add(fm.f1(x));
    t.add(fm.f2(x));
    if (!fast && x <= 100'000.0) {
      const auto d = harness.displacedAfter(x);
      t.add(d.l1);
      t.add(d.l2);
    } else {
      t.addText("-");
      t.addText("-");
    }
  }
  t.print();
  return 0;
}
