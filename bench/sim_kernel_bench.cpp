// sim_kernel_bench — events/sec of the discrete-event kernel, current vs
// the frozen seed kernel (bench/legacy_simulator.hpp), on schedule / cancel
// / run mixes shaped like the protocol simulation's event traffic. Emits an
// aligned table on stdout and, with --json, a JSON file so the perf
// trajectory is tracked across PRs (scripts/run_perf_smoke.sh writes
// results/BENCH_sim_kernel.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/legacy_simulator.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace affinity;

namespace {

// Payload sized like the simulation's completion callback (`this` + Job +
// two doubles ≈ 40 bytes): big enough that std::function heap-allocates it,
// small enough for EventCallback's inline buffer.
struct Payload {
  std::uint64_t* sink;
  double a, b, c, d;
  void operator()() const { *sink += static_cast<std::uint64_t>(a + b + c + d); }
};

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Steady-state schedule+run: hold `depth` pending events; each iteration
// pops the earliest and schedules a replacement. Returns events/sec.
template <class Sim>
double benchHold(std::uint64_t n, std::size_t depth, std::uint64_t seed) {
  Sim sim;
  Rng rng(seed);
  std::uint64_t sink = 0;
  const Payload payload{&sink, 1.25, 2.5, 3.75, 5.0};
  for (std::size_t i = 0; i < depth; ++i) sim.schedule(rng.uniform(0.0, 1000.0), payload);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    sim.step();
    sim.scheduleAfter(rng.uniform(0.0, 1000.0), payload);
  }
  const double dt = secondsSince(t0);
  sim.runAll();
  AFF_CHECK(sim.executedCount() == n + depth);
  AFF_CHECK(sink != 0);
  return static_cast<double>(n) / dt;
}

// Timer churn: the retransmit-timer pattern — most timers are cancelled
// before they fire. Each phase schedules `depth` timers ~1-2 ms out, cancels
// a random half while they are all still pending, then drains the
// survivors; the outstanding population stays ~depth throughout. Returns
// kernel ops/sec (one op = a schedule, a cancel, or an executed event).
template <class Sim>
double benchChurn(std::uint64_t n, std::size_t depth, std::uint64_t seed) {
  using Handle = decltype(std::declval<Sim&>().schedule(0.0, Payload{}));
  Sim sim;
  Rng rng(seed);
  std::uint64_t sink = 0;
  const Payload payload{&sink, 1.0, 2.0, 3.0, 4.0};
  std::vector<Handle> timers(depth);
  const std::uint64_t phases = n / depth;
  std::uint64_t ops = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t p = 0; p < phases; ++p) {
    for (std::size_t i = 0; i < depth; ++i)
      timers[i] = sim.scheduleAfter(rng.uniform(1000.0, 2000.0), payload);
    std::uint64_t attempts = 0;
    std::uint64_t cancelled = 0;
    for (std::size_t i = 0; i < depth; ++i) {
      if (rng.uniform_u64(2) == 0) {
        ++attempts;
        cancelled += sim.cancel(timers[i]) ? 1 : 0;
      }
    }
    AFF_CHECK(cancelled == attempts);  // all victims were still pending
    sim.runUntil(sim.now() + 2000.0);
    AFF_CHECK(sim.pendingCount() == 0);
    ops += depth + attempts + (depth - cancelled);
  }
  const double dt = secondsSince(t0);
  AFF_CHECK(sink != 0);
  return static_cast<double>(ops) / dt;
}

// Re-entrant chain: one self-rescheduling event, the minimal per-event
// overhead (schedule from inside a callback, pop, invoke). The capture is
// sized like the simulation's completion context (~40 bytes — see Payload);
// the delay and pad doubles ride along in the capture. Returns events/sec.
template <class Sim>
struct Chain {
  Sim* sim;
  std::uint64_t* left;
  double delay, pad_a, pad_b;
  void operator()() const {
    if (*left == 0) return;
    --*left;
    sim->scheduleAfter(delay, *this);
  }
};

template <class Sim>
double benchChain(std::uint64_t n, std::uint64_t /*seed*/) {
  Sim sim;
  std::uint64_t left = n;
  const auto t0 = std::chrono::steady_clock::now();
  sim.schedule(0.0, Chain<Sim>{&sim, &left, 1.0, 2.0, 3.0});
  sim.runAll();
  const double dt = secondsSince(t0);
  AFF_CHECK(sim.executedCount() == n + 1);
  return static_cast<double>(n) / dt;
}

struct Result {
  std::string name;
  double new_eps = 0.0;
  double legacy_eps = 0.0;
  [[nodiscard]] double speedup() const { return new_eps / legacy_eps; }
};

// Runs `reps` back-to-back (new, legacy) pairs and keeps the best of each,
// so both kernels sample the same load climate on a shared machine.
template <typename NewFn, typename LegacyFn>
Result measure(const char* name, int reps, NewFn&& new_fn, LegacyFn&& legacy_fn) {
  Result r{name, 0.0, 0.0};
  for (int rep = 0; rep < reps; ++rep) {
    const auto seed = static_cast<std::uint64_t>(rep) + 1;
    r.new_eps = std::max(r.new_eps, new_fn(seed));
    r.legacy_eps = std::max(r.legacy_eps, legacy_fn(seed));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("sim_kernel_bench", "event-kernel events/sec: current vs seed (legacy) kernel");
  const bool& fast = cli.flag<bool>("fast", false, "smaller event counts (CI smoke run)");
  const bool& csv = cli.flag<bool>("csv", false, "emit CSV instead of an aligned table");
  const int& reps = cli.flag<int>("reps", 3, "repetitions per workload (best kept)");
  const std::string& json_path =
      cli.flag<std::string>("json", "", "also write results as JSON to this path");
  cli.parse(argc, argv);

  const std::uint64_t n = fast ? 300'000 : 3'000'000;
  std::vector<Result> results;

  results.push_back(measure(
      "hold64_schedule_run", reps,
      [&](std::uint64_t s) { return benchHold<Simulator>(n, 64, s); },
      [&](std::uint64_t s) { return benchHold<legacy::Simulator>(n, 64, s); }));
  results.push_back(measure(
      "hold4096_schedule_run", reps,
      [&](std::uint64_t s) { return benchHold<Simulator>(n, 4096, s); },
      [&](std::uint64_t s) { return benchHold<legacy::Simulator>(n, 4096, s); }));
  results.push_back(measure(
      "churn_schedule_cancel_run", reps,
      [&](std::uint64_t s) { return benchChurn<Simulator>(n, 256, s); },
      [&](std::uint64_t s) { return benchChurn<legacy::Simulator>(n, 256, s); }));
  results.push_back(measure(
      "reentrant_chain", reps, [&](std::uint64_t s) { return benchChain<Simulator>(n, s); },
      [&](std::uint64_t s) { return benchChain<legacy::Simulator>(n, s); }));

  std::printf("# sim kernel — %s run, %llu events/workload, best of %d\n",
              fast ? "fast" : "full", static_cast<unsigned long long>(n), reps);
  TableWriter t({"workload", "new_Mev_per_s", "legacy_Mev_per_s", "speedup"}, csv, 2);
  double worst = 1e300;
  double new_time = 0.0;
  double legacy_time = 0.0;
  for (const Result& r : results) {
    t.beginRow();
    t.addText(r.name.c_str());
    t.add(r.new_eps / 1e6);
    t.add(r.legacy_eps / 1e6);
    t.add(r.speedup());
    worst = std::min(worst, r.speedup());
    // Equal event budget per workload, so total-time ratio = harmonic weight.
    new_time += 1.0 / r.new_eps;
    legacy_time += 1.0 / r.legacy_eps;
  }
  t.print();
  const double aggregate = legacy_time / new_time;
  std::printf("# aggregate events/sec over the whole mix: %.2fx the seed kernel\n", aggregate);
  std::printf("# worst-case single-workload speedup: %.2fx\n", worst);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    AFF_CHECK(f != nullptr);
    std::fprintf(f, "{\n  \"bench\": \"sim_kernel\",\n  \"mode\": \"%s\",\n",
                 fast ? "fast" : "full");
    std::fprintf(f, "  \"events_per_workload\": %llu,\n  \"results\": [\n",
                 static_cast<unsigned long long>(n));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "    {\"workload\": \"%s\", \"new_events_per_sec\": %.0f, "
                   "\"legacy_events_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                   r.name.c_str(), r.new_eps, r.legacy_eps, r.speedup(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"aggregate_speedup\": %.3f,\n  \"worst_speedup\": %.3f\n}\n",
                 aggregate, worst);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
