// sim_kernel_bench — events/sec of the discrete-event kernel, current vs
// the frozen seed kernel (bench/legacy_simulator.hpp), on schedule / cancel
// / run mixes shaped like the protocol simulation's event traffic (the
// workloads themselves live in bench/kernel_workloads.hpp, shared with
// tools/perf_ledger). Also pins the disabled-tracing guard overhead below
// the 1 % budget from docs/OBSERVABILITY.md. Emits an aligned table on
// stdout and, with --json, a JSON file so the perf trajectory is tracked
// across PRs (scripts/run_perf_smoke.sh writes
// results/BENCH_sim_kernel.json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/kernel_workloads.hpp"
#include "bench/legacy_simulator.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("sim_kernel_bench", "event-kernel events/sec: current vs seed (legacy) kernel");
  const bool& fast = cli.flag<bool>("fast", false, "smaller event counts (CI smoke run)");
  const bool& csv = cli.flag<bool>("csv", false, "emit CSV instead of an aligned table");
  const int& reps = cli.flag<int>("reps", 3, "repetitions per workload (best kept)");
  const std::string& json_path =
      cli.flag<std::string>("json", "", "also write results as JSON to this path");
  const std::string& metrics_out =
      cli.flag<std::string>("metrics-out", "", "write a metrics-registry JSON snapshot here");
  const std::string& trace_out =
      cli.flag<std::string>("trace-out", "", "write a Chrome trace_event JSON file here");
  cli.parse(argc, argv);

  ObsOutput obs;
  obs.open(metrics_out, trace_out);

  const std::uint64_t n = fast ? 300'000 : 3'000'000;
  std::vector<KernelResult> results;
  obs::TraceSession* trace = obs.trace();
  const std::uint32_t bench_track = trace != nullptr ? trace->track("kernel bench") : 0;

  const auto run = [&](const char* name, auto&& new_fn, auto&& legacy_fn) {
    const double t0 = trace != nullptr ? trace->steadyNowUs() : 0.0;
    results.push_back(measureKernelPair(name, reps, new_fn, legacy_fn));
    if (trace != nullptr) trace->span(bench_track, "workload", t0, trace->steadyNowUs());
  };
  run(
      "hold64_schedule_run",
      [&](std::uint64_t s) { return benchHold<Simulator>(n, 64, s); },
      [&](std::uint64_t s) { return benchHold<legacy::Simulator>(n, 64, s); });
  run(
      "hold4096_schedule_run",
      [&](std::uint64_t s) { return benchHold<Simulator>(n, 4096, s); },
      [&](std::uint64_t s) { return benchHold<legacy::Simulator>(n, 4096, s); });
  run(
      "churn_schedule_cancel_run",
      [&](std::uint64_t s) { return benchChurn<Simulator>(n, 256, s); },
      [&](std::uint64_t s) { return benchChurn<legacy::Simulator>(n, 256, s); });
  run(
      "reentrant_chain", [&](std::uint64_t s) { return benchChain<Simulator>(n, s); },
      [&](std::uint64_t s) { return benchChain<legacy::Simulator>(n, s); });
  run(
      "batch64_same_ts",
      [&](std::uint64_t s) { return benchBatchAdmit<Simulator>(n, 64, s); },
      [&](std::uint64_t s) { return benchBatchAdmit<legacy::Simulator>(n, 64, s); });

  const double guard_pct = benchGuardOverheadPct<Simulator>(n, 64, reps);

  std::printf("# sim kernel — %s run, %llu events/workload, best of %d\n",
              fast ? "fast" : "full", static_cast<unsigned long long>(n), reps);
  TableWriter t({"workload", "new_Mev_per_s", "legacy_Mev_per_s", "speedup"}, csv, 2);
  double worst = 1e300;
  double new_time = 0.0;
  double legacy_time = 0.0;
  for (const KernelResult& r : results) {
    t.beginRow();
    t.addText(r.name.c_str());
    t.add(r.new_eps / 1e6);
    t.add(r.legacy_eps / 1e6);
    t.add(r.speedup());
    worst = std::min(worst, r.speedup());
    // Equal event budget per workload, so total-time ratio = harmonic weight.
    new_time += 1.0 / r.new_eps;
    legacy_time += 1.0 / r.legacy_eps;
  }
  t.print();
  const double aggregate = legacy_time / new_time;
  std::printf("# aggregate events/sec over the whole mix: %.2fx the seed kernel\n", aggregate);
  std::printf("# worst-case single-workload speedup: %.2fx\n", worst);
  std::printf("# disabled trace-guard overhead (frame-sized hold64): %.3f%% (budget < 1%%%s)\n",
              guard_pct,
              trace != nullptr ? "; tracing ACTIVE, number includes enabled cost" : "");

  if (obs::MetricsRegistry* reg = obs.metrics(); reg != nullptr) {
    for (const KernelResult& r : results) {
      reg->gauge("bench.kernel." + r.name + ".new_events_per_sec").set(r.new_eps);
      reg->gauge("bench.kernel." + r.name + ".legacy_events_per_sec").set(r.legacy_eps);
      reg->gauge("bench.kernel." + r.name + ".speedup").set(r.speedup());
    }
    reg->gauge("bench.kernel.aggregate_speedup").set(aggregate);
    reg->gauge("bench.kernel.worst_speedup").set(worst);
    reg->gauge("bench.kernel.trace_guard_overhead_pct").set(guard_pct);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    AFF_CHECK(f != nullptr);
    std::fprintf(f, "{\n  \"bench\": \"sim_kernel\",\n  \"mode\": \"%s\",\n",
                 fast ? "fast" : "full");
    std::fprintf(f, "  \"events_per_workload\": %llu,\n  \"results\": [\n",
                 static_cast<unsigned long long>(n));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const KernelResult& r = results[i];
      std::fprintf(f,
                   "    {\"workload\": \"%s\", \"new_events_per_sec\": %.0f, "
                   "\"legacy_events_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                   r.name.c_str(), r.new_eps, r.legacy_eps, r.speedup(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"aggregate_speedup\": %.3f,\n  \"worst_speedup\": %.3f,\n"
                 "  \"trace_guard_overhead_pct\": %.3f\n}\n",
                 aggregate, worst, guard_pct);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }

  // The bar: no workload mix slower than the frozen seed kernel, and the
  // disabled trace guard inside its 1% budget (only checkable when tracing
  // is off — an active session measures the enabled cost instead).
  const bool guard_ok = trace != nullptr || guard_pct < 1.0;
  char detail[160];
  std::snprintf(detail, sizeof detail, "aggregate %.2fx seed, worst workload %.2fx, guard %.3f%%",
                aggregate, worst, guard_pct);
  return smokeStatus("sim_kernel_bench", aggregate >= 1.0 && guard_ok, detail);
}
