// Google-benchmark microbenchmark of the real-thread engines: frames/second
// through the actual UDP/IP/FDDI stack under the Locking (shared stack +
// mutex) and IPS (stack-per-worker, lock-free rings) engines. On a
// multi-core host IPS shows its lockless-affinity advantage; on a single
// CPU both degrade gracefully to one worker's throughput.
#include <benchmark/benchmark.h>

#include "proto/stack.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace affinity;

std::vector<std::vector<std::uint8_t>> makeFrames(int streams, int frames) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(frames);
  const std::vector<std::uint8_t> payload(64, 0x5a);
  for (int i = 0; i < frames; ++i) {
    FrameSpec spec;
    spec.dst_port = 7000;
    spec.src_port = static_cast<std::uint16_t>(1000 + i % streams);
    out.push_back(buildUdpFrame(spec, payload));
  }
  return out;
}

void BM_StackReceiveOnly(benchmark::State& state) {
  ProtocolStack stack;
  stack.open(7000, 1u << 20);
  const auto frames = makeFrames(8, 256);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.receiveFrame(frames[i++ % frames.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StackReceiveOnly);

void BM_LockingEngine(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  const auto frames = makeFrames(16, 256);
  for (auto _ : state) {
    LockingEngine eng(workers, HostConfig{}, 4096);
    eng.openPort(7000, 1u << 20);
    eng.start();
    for (int i = 0; i < 20000; ++i)
      eng.submit({frames[static_cast<std::size_t>(i) % frames.size()],
                  static_cast<std::uint32_t>(i % 16)});
    eng.stop();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_LockingEngine)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_IpsEngine(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  const auto frames = makeFrames(16, 256);
  for (auto _ : state) {
    IpsEngine eng(workers, HostConfig{}, 4096);
    eng.openPort(7000, 1u << 20);
    eng.start();
    for (int i = 0; i < 20000; ++i)
      eng.submit({frames[static_cast<std::size_t>(i) % frames.size()],
                  static_cast<std::uint32_t>(i % 16)});
    eng.stop();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_IpsEngine)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
