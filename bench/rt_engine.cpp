// Google-benchmark microbenchmark of the real-thread engines: frames/second
// through the actual UDP/IP/FDDI stack under the Locking (shared stack +
// mutex) and IPS (stack-per-worker, lock-free rings) engines. On a
// multi-core host IPS shows its lockless-affinity advantage; on a single
// CPU both degrade gracefully to one worker's throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/stack.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace affinity;

// Filled from --metrics-out (stripped before google-benchmark sees argv);
// each engine benchmark snapshots its final ledger here.
obs::MetricsRegistry* g_registry = nullptr;

std::vector<std::vector<std::uint8_t>> makeFrames(int streams, int frames) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(frames);
  const std::vector<std::uint8_t> payload(64, 0x5a);
  for (int i = 0; i < frames; ++i) {
    FrameSpec spec;
    spec.dst_port = 7000;
    spec.src_port = static_cast<std::uint16_t>(1000 + i % streams);
    out.push_back(buildUdpFrame(spec, payload));
  }
  return out;
}

void BM_StackReceiveOnly(benchmark::State& state) {
  ProtocolStack stack;
  stack.open(7000, 1u << 20);
  const auto frames = makeFrames(8, 256);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.receiveFrame(frames[i++ % frames.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StackReceiveOnly);

void BM_LockingEngine(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  const auto frames = makeFrames(16, 256);
  for (auto _ : state) {
    LockingEngine eng(workers, HostConfig{}, 4096);
    eng.openPort(7000, 1u << 20);
    eng.start();
    for (int i = 0; i < 20000; ++i)
      eng.submit({frames[static_cast<std::size_t>(i) % frames.size()],
                  static_cast<std::uint32_t>(i % 16)});
    eng.stop();
    if (g_registry != nullptr)
      eng.exportMetrics(*g_registry, "rt_engine.locking.w" + std::to_string(workers));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_LockingEngine)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_IpsEngine(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  const auto frames = makeFrames(16, 256);
  for (auto _ : state) {
    IpsEngine eng(workers, HostConfig{}, 4096);
    eng.openPort(7000, 1u << 20);
    eng.start();
    for (int i = 0; i < 20000; ++i)
      eng.submit({frames[static_cast<std::size_t>(i) % frames.size()],
                  static_cast<std::uint32_t>(i % 16)});
    eng.stop();
    if (g_registry != nullptr)
      eng.exportMetrics(*g_registry, "rt_engine.ips.w" + std::to_string(workers));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_IpsEngine)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: peel off --metrics-out/--trace-out (google-benchmark rejects
// unknown flags) before handing the rest of argv over. An active trace
// session makes every benchmarked engine emit per-frame spans — expect the
// ring to wrap on full runs; sizes are per docs/OBSERVABILITY.md.
int main(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view a(argv[i]);
    const auto grab = [&](std::string_view flag, std::string& out) {
      if (a.size() > flag.size() + 1 && a.substr(0, flag.size()) == flag && a[flag.size()] == '=') {
        out = std::string(a.substr(flag.size() + 1));
        return true;
      }
      if (a == flag && i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      return false;
    };
    if (grab("--metrics-out", metrics_out) || grab("--trace-out", trace_out)) continue;
    rest.push_back(argv[i]);
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;

  obs::MetricsRegistry registry;
  if (!metrics_out.empty()) g_registry = &registry;
  std::unique_ptr<obs::TraceSession> trace;
  if (!trace_out.empty()) {
    trace = std::make_unique<obs::TraceSession>();
    trace->activate();
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (trace != nullptr) {
    obs::TraceSession::deactivate();
    if (!trace->writeChromeTrace(trace_out))
      std::fprintf(stderr, "warning: could not write --trace-out %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty() && !registry.writeJson(metrics_out))
    std::fprintf(stderr, "warning: could not write --metrics-out %s\n", metrics_out.c_str());
  return 0;
}
