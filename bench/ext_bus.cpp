// Memory-bus contention: the SGI Challenge's shared bus serializes L2
// reloads. With the bus modeled, cache-cold packets on different processors
// delay each other — which (a) caps multiprocessor capacity below N/t and
// (b) *amplifies* the affinity-scheduling benefit, since warm packets put
// almost nothing on the bus. The paper's platform model folds the bus into
// measured miss penalties; this extension makes contention explicit.
#include <array>
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("ext_bus", "memory-bus contention: capacity and affinity benefit");
  const auto flags = CommonFlags::declare(cli);
  const double& occupancy =
      cli.flag<double>("bus-occupancy", 0.35, "bus share of each L2-reload microsecond");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# bus contention (occupancy %.2f) — mean delay, us\n", occupancy);
  TableWriter t({"rate_pkts_per_s", "FCFS_nobus", "FCFS_bus", "StreamMRU_nobus",
                 "StreamMRU_bus"},
                flags.csv, 1);
  const auto rates = rateSweep(flags.fast);
  const auto rows = sweep(flags, rates.size(), [&](std::size_t i) {
    const double rate = rates[i];
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    std::array<RunMetrics, 4> row;
    std::size_t k = 0;
    for (LockingPolicy p : {LockingPolicy::kFcfs, LockingPolicy::kStreamMru}) {
      for (double occ : {0.0, occupancy}) {
        SimConfig c = flags.makeConfigFor(rate);
        c.seed = pointSeed(flags, i);
        c.policy.paradigm = Paradigm::kLocking;
        c.policy.locking = p;
        c.bus_occupancy_fraction = occ;
        row[k++] = runOnce(c, model, streams);
      }
    }
    return row;
  });
  for (std::size_t i = 0; i < rates.size(); ++i) {
    t.beginRow();
    t.add(perSecond(rates[i]));
    for (const RunMetrics& m : rows[i]) {
      if (m.saturated) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f*", m.mean_delay_us);
        t.addText(buf);
      } else {
        t.add(m.mean_delay_us);
      }
    }
  }
  t.print();

  // Affinity benefit with and without the bus, near the no-affinity knee.
  const double probe = 0.036;
  double red[2];
  int i = 0;
  for (double occ : {0.0, occupancy}) {
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), probe);
    SimConfig c = flags.makeConfigFor(probe);
    c.bus_occupancy_fraction = occ;
    c.policy.paradigm = Paradigm::kLocking;
    c.policy.locking = LockingPolicy::kFcfs;
    const RunMetrics base = runOnce(c, model, streams);
    c.policy.locking = LockingPolicy::kStreamMru;
    const RunMetrics aff = runOnce(c, model, streams);
    red[i++] = reductionPercent(base.mean_delay_us, aff.mean_delay_us);
  }
  std::printf("\n# affinity reduction at %.0f pkts/s: %.1f%% without bus, %.1f%% with bus\n",
              perSecond(probe), red[0], red[1]);
  return 0;
}
