// Analytic model vs simulation (the paper's §3 combines both): compares the
// closed-form predictor's mean delay against the discrete-event simulator
// for the main policies across the arrival-rate sweep, reporting the
// relative error. The predictor is what a capacity planner would use when a
// full simulation is too slow.
#include <cmath>
#include <cstdio>

#include "analytic/predictor.hpp"
#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("ext_analytic_vs_sim", "closed-form predictor vs discrete-event simulation");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# analytic (A) vs simulated (S) mean delay, us; err = (A-S)/S\n");
  TableWriter t({"rate_pkts_per_s", "MRU_sim", "MRU_ana", "MRU_err%", "IPSWired_sim",
                 "IPSWired_ana", "IPSWired_err%"},
                flags.csv, 1);
  for (double rate : rateSweep(flags.fast)) {
    PredictorInput in;
    in.num_procs = static_cast<unsigned>(flags.procs);
    in.num_streams = static_cast<unsigned>(flags.streams);
    in.rate_per_us = rate;
    in.lock_overhead_us = flags.lock_overhead;
    in.critical_section_us = flags.critical_section;

    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);

    SimConfig c = flags.makeConfigFor(rate);
    c.policy.paradigm = Paradigm::kLocking;
    c.policy.locking = LockingPolicy::kMru;
    const RunMetrics sim_mru = runOnce(c, model, streams);
    const Prediction ana_mru = predictLocking(model, LockingPolicy::kMru, in);

    c.policy.paradigm = Paradigm::kIps;
    c.policy.ips = IpsPolicy::kWired;
    const RunMetrics sim_ips = runOnce(c, model, streams);
    const Prediction ana_ips = predictIps(model, IpsPolicy::kWired, in);

    t.beginRow();
    t.add(perSecond(rate));
    const auto emit = [&t](const RunMetrics& s, const Prediction& a) {
      if (s.saturated || !a.stable) {
        t.addText(s.saturated ? "sat" : "-");
        t.addText(a.stable ? "-" : "unstable");
        t.addText("-");
        return;
      }
      t.add(s.mean_delay_us);
      t.add(a.delay_us);
      t.add(100.0 * (a.delay_us - s.mean_delay_us) / s.mean_delay_us);
    };
    emit(sim_mru, ana_mru);
    emit(sim_ips, ana_ips);
  }
  t.print();
  return 0;
}
