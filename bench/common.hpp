// common.hpp — shared scaffolding for the experiment drivers.
//
// Every bench binary reproduces one table or figure of the paper: it sweeps
// the figure's x-axis, runs the simulation for each series, and prints the
// series as an aligned table (or CSV with --csv). EXPERIMENTS.md records the
// expected shapes next to the paper's.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/capacity.hpp"
#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace affinity::bench {

/// Owns the optional sinks behind --metrics-out / --trace-out.
///
/// declare() creates one inert instance per driver; the first makeConfig()
/// or sweep() call after cli.parse() opens the sinks (flag values aren't
/// known earlier), and the destructor — end of main — writes the files.
/// Opening the trace sink also activates the session process-globally so
/// real-thread engines started afterwards pick it up.
class ObsOutput {
 public:
  ObsOutput() = default;
  ~ObsOutput() { flush(); }
  ObsOutput(const ObsOutput&) = delete;
  ObsOutput& operator=(const ObsOutput&) = delete;

  /// Idempotent: only the first call takes effect.
  void open(const std::string& metrics_path, const std::string& trace_path) {
    if (opened_) return;
    opened_ = true;
    metrics_path_ = metrics_path;
    trace_path_ = trace_path;
    if (!trace_path_.empty()) {
      trace_ = std::make_unique<obs::TraceSession>();
      trace_->activate();
    }
  }

  /// Writes whichever files were requested; safe to call more than once.
  void flush() {
    if (flushed_ || !opened_) return;
    flushed_ = true;
    if (trace_ != nullptr) obs::TraceSession::deactivate();
    if (!metrics_path_.empty() && !registry_.writeJson(metrics_path_))
      std::fprintf(stderr, "warning: could not write --metrics-out %s\n", metrics_path_.c_str());
    if (trace_ != nullptr && !trace_->writeChromeTrace(trace_path_))
      std::fprintf(stderr, "warning: could not write --trace-out %s\n", trace_path_.c_str());
  }

  /// Null unless --metrics-out was given.
  [[nodiscard]] obs::MetricsRegistry* metrics() {
    return opened_ && !metrics_path_.empty() ? &registry_ : nullptr;
  }
  /// Null unless --trace-out was given.
  [[nodiscard]] obs::TraceSession* trace() { return trace_.get(); }

 private:
  bool opened_ = false;
  bool flushed_ = false;
  std::string metrics_path_;
  std::string trace_path_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::TraceSession> trace_;
};

/// Flags shared by all experiment drivers.
struct CommonFlags {
  const int& procs;
  const int& streams;
  const double& lock_overhead;
  const double& critical_section;
  const std::uint64_t& seed;
  const bool& csv;
  const bool& fast;
  const int& jobs;
  const std::string& metrics_out;
  const std::string& trace_out;
  /// Shared by all copies of this CommonFlags (sweep() and makeConfig()
  /// route instrument pointers through it).
  std::shared_ptr<ObsOutput> obs;

  static CommonFlags declare(Cli& cli) {
    return CommonFlags{
        cli.flag<int>("procs", 8, "number of processors"),
        cli.flag<int>("streams", 16, "number of concurrent streams"),
        cli.flag<double>("lock-overhead", 20.0, "per-packet lock overhead under Locking (us)"),
        cli.flag<double>("critical-section", 8.0, "serialized critical section (us)"),
        cli.flag<std::uint64_t>("seed", 1, "simulation seed"),
        cli.flag<bool>("csv", false, "emit CSV instead of an aligned table"),
        cli.flag<bool>("fast", false, "short windows (CI smoke run)"),
        cli.flag<int>("jobs", 1, "sweep worker threads (0 = all hardware threads)"),
        cli.flag<std::string>("metrics-out", "", "write a metrics-registry JSON snapshot here"),
        cli.flag<std::string>("trace-out", "", "write a Chrome trace_event JSON file here"),
        std::make_shared<ObsOutput>(),
    };
  }

  /// Opens the observability sinks (no-op after the first call). Callable
  /// only after cli.parse().
  ObsOutput& observability() const {
    obs->open(metrics_out, trace_out);
    return *obs;
  }

  [[nodiscard]] SimConfig makeConfig() const {
    SimConfig c = defaultSimConfig();
    c.num_procs = static_cast<unsigned>(procs);
    c.lock_overhead_us = lock_overhead;
    c.critical_section_us = critical_section;
    c.seed = seed;
    c.warmup_us = fast ? 50'000.0 : 200'000.0;
    c.measure_us = fast ? 300'000.0 : 2'000'000.0;
    // Sweep sims share the registry across worker threads, so only the
    // thread-safe end-of-run export is wired up (never metrics_exclusive,
    // never SimConfig::trace — virtual times from parallel points would
    // interleave meaninglessly on one timeline).
    c.metrics = observability().metrics();
    return c;
  }

  /// makeConfig() with the measurement window sized for the sweep point's
  /// rate, so light-load points still complete enough packets.
  [[nodiscard]] SimConfig makeConfigFor(double rate_per_us) const {
    SimConfig c = makeConfig();
    setAutoWindow(c, rate_per_us, fast ? 15'000 : 80'000);
    return c;
  }
};

/// Standard arrival-rate sweep (packets/µs). With 8 processors and a warm
/// service time of ~136 µs the no-overhead capacity is ~0.059 pkts/µs; the
/// sweep spans light load to near saturation.
inline std::vector<double> rateSweep(bool fast) {
  if (fast) return {0.005, 0.015, 0.03};
  return {0.002, 0.005, 0.008, 0.012, 0.016, 0.020, 0.025, 0.030,
          0.035, 0.038, 0.040, 0.042, 0.044};
}

/// Rate sweep extended down to very light load (hundreds of packets per
/// second), where the IPS policy crossover lives: concentrating stacks (MRU)
/// keeps the shared protocol text warm while everything else has decayed.
inline std::vector<double> rateSweepWithLowEnd(bool fast) {
  if (fast) return {0.0005, 0.005, 0.03};
  std::vector<double> rates{0.0002, 0.0005, 0.001};
  for (double r : rateSweep(false)) rates.push_back(r);
  return rates;
}

/// Converts packets/µs to the paper's natural packets/s axis label value.
inline double perSecond(double per_us) { return per_us * 1e6; }

/// The greppable status line scripts/run_perf_smoke.sh keys on. A bench
/// with an acceptance bar prints exactly one of these as its last stdout
/// line and returns the result as its exit code, so `grep "PERF SMOKE"`
/// over a CI log tells the whole story and the smoke script propagates
/// failure without parsing tables. EXPERIMENTS.md documents each bar.
[[nodiscard]] inline int smokeStatus(const char* bench, bool pass, const std::string& detail) {
  std::printf("PERF SMOKE %s: %s (%s)\n", pass ? "PASS" : "FAIL", bench, detail.c_str());
  if (!pass) std::fprintf(stderr, "PERF SMOKE FAIL: %s (%s)\n", bench, detail.c_str());
  return pass ? 0 : 1;
}

/// Runs `fn(i)` for every sweep index across `--jobs` worker threads and
/// returns the results in index order (output is byte-identical for any job
/// count as long as `fn` is a pure function of its index — derive per-point
/// seeds from the index, don't share mutable state). Drivers compute all
/// rows through this, then print sequentially.
template <typename Fn>
auto sweep(const CommonFlags& flags, std::size_t n, Fn&& fn) {
  SweepRunner runner(static_cast<unsigned>(flags.jobs));
  ObsOutput& obs = flags.observability();
  runner.instrument(obs.metrics(), obs.trace());
  return runner.map(n, std::forward<Fn>(fn));
}

/// The derived seed for sweep point `i` (splitmix of --seed and i): every
/// point gets an independent random stream, and results don't depend on
/// which worker runs the point.
inline std::uint64_t pointSeed(const CommonFlags& flags, std::size_t i) {
  return derivePointSeed(flags.seed, static_cast<std::uint64_t>(i));
}

}  // namespace affinity::bench
