// Table 1 (paper §4): packet execution times measured under controlled cache
// states, plus the per-component affinity penalties. The paper measured
// these on the SGI Challenge (t_cold = 284.3 µs); here they come from the
// trace-driven cache simulator replaying the same experimental method.
#include <cstdio>

#include "bench/common.hpp"
#include "cachesim/measurement.hpp"

using namespace affinity;

int main(int argc, char** argv) {
  Cli cli("tab1_exec_times", "measured packet execution times under controlled cache states");
  const bool& csv = cli.flag<bool>("csv", false, "emit CSV");
  const std::uint64_t& seed = cli.flag<std::uint64_t>("seed", 42, "trace seed");
  cli.parse(argc, argv);

  MeasurementHarness harness(MachineParams::sgiChallenge(), ProtocolLayout::standard(),
                             ProtocolTraceParams{}, seed);
  const MeasuredParams m = harness.measure();

  std::printf("# Table 1 — packet execution time vs cache state (simulated R4400/Challenge)\n");
  std::printf("# paper reference point: t_cold = 284.3 us\n");
  TableWriter t({"cache_state", "exec_time_us", "vs_warm_us"}, csv, 1);
  t.beginRow();
  t.addText("warm (L1+L2 hold footprint)");
  t.add(m.t_warm_us);
  t.add(0.0);
  t.beginRow();
  t.addText("L1 cold, L2 warm");
  t.add(m.t_l1cold_us);
  t.add(m.t_l1cold_us - m.t_warm_us);
  t.beginRow();
  t.addText("cold (nothing cached)");
  t.add(m.t_cold_us);
  t.add(m.t_cold_us - m.t_warm_us);
  t.print();

  std::printf("\n# per-component penalties (selective invalidation, L1-only vs both levels)\n");
  TableWriter c({"component", "L1_penalty_us", "L2_penalty_us", "L1_share", "L2_share"}, csv, 3);
  c.beginRow();
  c.addText("code + read-only");
  c.add(m.code.l1_us);
  c.add(m.code.l2_us());
  c.add(m.shares.l1_code);
  c.add(m.shares.l2_code);
  c.beginRow();
  c.addText("shared writable data");
  c.add(m.shared.l1_us);
  c.add(m.shared.l2_us());
  c.add(m.shares.l1_shared);
  c.add(m.shares.l2_shared);
  c.beginRow();
  c.addText("per-stream state");
  c.add(m.stream.l1_us);
  c.add(m.stream.l2_us());
  c.add(m.shares.l1_stream);
  c.add(m.shares.l2_stream);
  c.print();

  std::printf("\n# derived analytic-model parameters: t_warm=%.1f dL1=%.1f dL2=%.1f (t_cold=%.1f)\n",
              m.reload.t_warm_us, m.reload.dl1_us, m.reload.dl2_us, m.reload.tCold());

  // Migration experiment on the coherent 2-processor system: validates the
  // model's migrated-is-cold assumption.
  const auto mt = harness.measureMigration();
  std::printf("\n# stream-migration experiment (coherent 2-processor system)\n");
  TableWriter mig({"case", "exec_time_us"}, csv, 1);
  mig.beginRow();
  mig.addText("next packet on same processor");
  mig.add(mt.t_same_proc_us);
  mig.beginRow();
  mig.addText("next packet migrated (state dirty on other proc)");
  mig.add(mt.t_other_proc_us);
  mig.beginRow();
  mig.addText("cold start (reference)");
  mig.add(mt.t_cold_us);
  mig.print();
  return 0;
}
