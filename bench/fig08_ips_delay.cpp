// Figure 8 [reconstructed]: affinity scheduling under IPS — mean packet
// delay vs arrival rate for Random (no affinity), MRU, and Wired stack
// placement. Expected shape (paper §5): wiring stacks to processors wins —
// except at low arrival rate, where MRU wins (concentrating the stacks keeps
// the shared protocol code warm).
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig08_ips_delay", "IPS: mean packet delay vs arrival rate, by stack policy");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# Figure 8 — IPS, %d procs (one stack per proc), %d streams\n", flags.procs,
              flags.streams);
  TableWriter t({"rate_pkts_per_s", "Random", "MRU", "Wired"}, flags.csv, 1);
  for (double rate : rateSweepWithLowEnd(flags.fast)) {
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    t.beginRow();
    t.add(perSecond(rate));
    for (IpsPolicy p : {IpsPolicy::kRandom, IpsPolicy::kMru, IpsPolicy::kWired}) {
      SimConfig c = flags.makeConfigFor(rate);
      c.policy.paradigm = Paradigm::kIps;
      c.policy.ips = p;
      const RunMetrics m = runOnce(c, model, streams);
      t.add(m.mean_delay_us);
    }
  }
  t.print();
  return 0;
}
