// Figure 8 [reconstructed]: affinity scheduling under IPS — mean packet
// delay vs arrival rate for Random (no affinity), MRU, and Wired stack
// placement. Expected shape (paper §5): wiring stacks to processors wins —
// except at low arrival rate, where MRU wins (concentrating the stacks keeps
// the shared protocol code warm).
#include <array>
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig08_ips_delay", "IPS: mean packet delay vs arrival rate, by stack policy");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# Figure 8 — IPS, %d procs (one stack per proc), %d streams\n", flags.procs,
              flags.streams);
  TableWriter t({"rate_pkts_per_s", "Random", "MRU", "Wired"}, flags.csv, 1);
  const auto rates = rateSweepWithLowEnd(flags.fast);
  const auto rows = sweep(flags, rates.size(), [&](std::size_t i) {
    const double rate = rates[i];
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    std::array<double, 3> row;
    std::size_t k = 0;
    for (IpsPolicy p : {IpsPolicy::kRandom, IpsPolicy::kMru, IpsPolicy::kWired}) {
      SimConfig c = flags.makeConfigFor(rate);
      c.seed = pointSeed(flags, i);
      c.policy.paradigm = Paradigm::kIps;
      c.policy.ips = p;
      row[k++] = runOnce(c, model, streams).mean_delay_us;
    }
    return row;
  });
  for (std::size_t i = 0; i < rates.size(); ++i) {
    t.beginRow();
    t.add(perSecond(rates[i]));
    for (double delay : rows[i]) t.add(delay);
  }
  t.print();
  return 0;
}
