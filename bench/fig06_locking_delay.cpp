// Figure 6: affinity scheduling under Locking — mean packet delay vs
// aggregate arrival rate for FCFS (no affinity), MRU, and Wired-Streams.
// Expected shape (paper §5.1): MRU below FCFS everywhere; Wired-Streams
// worse than MRU at low/moderate rate but best at high rate.
#include <array>
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig06_locking_delay", "Locking: mean packet delay vs arrival rate, by policy");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# Figure 6 — Locking, %d procs, %d streams; delay in us, saturated marked *\n",
              flags.procs, flags.streams);
  TableWriter t({"rate_pkts_per_s", "FCFS", "MRU", "WiredStreams"}, flags.csv, 1);
  const auto rates = rateSweep(flags.fast);
  const auto rows = sweep(flags, rates.size(), [&](std::size_t i) {
    const double rate = rates[i];
    const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    std::array<RunMetrics, 3> row;
    std::size_t k = 0;
    for (LockingPolicy p :
         {LockingPolicy::kFcfs, LockingPolicy::kMru, LockingPolicy::kWiredStreams}) {
      SimConfig c = flags.makeConfigFor(rate);
      c.seed = pointSeed(flags, i);
      c.policy.paradigm = Paradigm::kLocking;
      c.policy.locking = p;
      row[k++] = runOnce(c, model, streams);
    }
    return row;
  });
  for (std::size_t i = 0; i < rates.size(); ++i) {
    t.beginRow();
    t.add(perSecond(rates[i]));
    for (const RunMetrics& m : rows[i]) {
      if (m.saturated) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f*", m.mean_delay_us);
        t.addText(buf);
      } else {
        t.add(m.mean_delay_us);
      }
    }
  }
  t.print();
  return 0;
}
