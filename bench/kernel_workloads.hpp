// kernel_workloads.hpp — the event-kernel microbenchmark workloads, shared
// by bench/sim_kernel_bench (table / JSON output) and tools/perf_ledger
// (BENCH_<date>.json trajectory rows). Each workload is a template over the
// kernel type so the same code drives the current Simulator and the frozen
// seed kernel (bench/legacy_simulator.hpp).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace affinity::bench {

// Payload sized like the simulation's completion callback (`this` + Job +
// two doubles ≈ 40 bytes): big enough that std::function heap-allocates it,
// small enough for EventCallback's inline buffer.
struct KernelPayload {
  std::uint64_t* sink;
  double a, b, c, d;
  void operator()() const { *sink += static_cast<std::uint64_t>(a + b + c + d); }
};

// ~300 ns of dependent FP work: the scale of one *instrumented call site*
// (the engines trace once per protocol frame, ~1 µs of stack processing;
// the simulator once per completion). The guard-overhead bench wraps this,
// not the bare 25 ns kernel hot path — a single relaxed load is a few
// percent of 25 ns but noise-level against real per-frame work, and the
// budget in docs/OBSERVABILITY.md is about the latter.
inline double frameSizedWork(double x) {
  for (int i = 0; i < 256; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

// Frame-sized payload, with and without the engines' tracing guard (one
// relaxed atomic load of the process-global TraceSession slot per event).
// benchGuardOverheadPct races the two to pin the disabled-tracing cost.
struct FrameWorkPayload {
  std::uint64_t* sink;
  double a, b, c, d;
  // Unused; matches GuardedFrameWorkPayload's size and layout so the two
  // variants take the same EventCallback storage path (inline vs heap) and
  // the A/B race isolates the guard, not the payload footprint.
  std::uint32_t track;
  void operator()() const {
    *sink += static_cast<std::uint64_t>(frameSizedWork(a + b + c + d));
  }
};

struct GuardedFrameWorkPayload {
  std::uint64_t* sink;
  double a, b, c, d;
  std::uint32_t track;
  void operator()() const {
    if (obs::TraceSession* t = obs::TraceSession::active(); t != nullptr)
      t->instant(track, "kernel event", t->steadyNowUs(), *sink);
    *sink += static_cast<std::uint64_t>(frameSizedWork(a + b + c + d));
  }
};

inline double kernelSecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Steady-state schedule+run: hold `depth` pending events; each iteration
// pops the earliest and schedules a replacement. Returns events/sec.
template <class Sim, class Payload = KernelPayload>
double benchHold(std::uint64_t n, std::size_t depth, std::uint64_t seed, Payload payload = {}) {
  Sim sim;
  Rng rng(seed);
  std::uint64_t sink = 0;
  payload.sink = &sink;
  payload.a = 1.25;
  payload.b = 2.5;
  payload.c = 3.75;
  payload.d = 5.0;
  for (std::size_t i = 0; i < depth; ++i) sim.schedule(rng.uniform(0.0, 1000.0), payload);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    sim.step();
    sim.scheduleAfter(rng.uniform(0.0, 1000.0), payload);
  }
  const double dt = kernelSecondsSince(t0);
  sim.runAll();
  AFF_CHECK(sim.executedCount() == n + depth);
  AFF_CHECK(sink != 0);
  return static_cast<double>(n) / dt;
}

// Timer churn: the retransmit-timer pattern — most timers are cancelled
// before they fire. Each phase schedules `depth` timers ~1-2 ms out, cancels
// a random half while they are all still pending, then drains the
// survivors; the outstanding population stays ~depth throughout. Returns
// kernel ops/sec (one op = a schedule, a cancel, or an executed event).
template <class Sim>
double benchChurn(std::uint64_t n, std::size_t depth, std::uint64_t seed) {
  using Handle = decltype(std::declval<Sim&>().schedule(0.0, KernelPayload{}));
  Sim sim;
  Rng rng(seed);
  std::uint64_t sink = 0;
  const KernelPayload payload{&sink, 1.0, 2.0, 3.0, 4.0};
  std::vector<Handle> timers(depth);
  const std::uint64_t phases = n / depth;
  std::uint64_t ops = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t p = 0; p < phases; ++p) {
    for (std::size_t i = 0; i < depth; ++i)
      timers[i] = sim.scheduleAfter(rng.uniform(1000.0, 2000.0), payload);
    std::uint64_t attempts = 0;
    std::uint64_t cancelled = 0;
    for (std::size_t i = 0; i < depth; ++i) {
      if (rng.uniform_u64(2) == 0) {
        ++attempts;
        cancelled += sim.cancel(timers[i]) ? 1 : 0;
      }
    }
    AFF_CHECK(cancelled == attempts);  // all victims were still pending
    sim.runUntil(sim.now() + 2000.0);
    AFF_CHECK(sim.pendingCount() == 0);
    ops += depth + attempts + (depth - cancelled);
  }
  const double dt = kernelSecondsSince(t0);
  AFF_CHECK(sink != 0);
  return static_cast<double>(ops) / dt;
}

// Re-entrant chain: one self-rescheduling event, the minimal per-event
// overhead (schedule from inside a callback, pop, invoke). The capture is
// sized like the simulation's completion context (~40 bytes — see
// KernelPayload); the delay and pad doubles ride along in the capture.
// Returns events/sec.
template <class Sim>
struct KernelChain {
  Sim* sim;
  std::uint64_t* left;
  double delay, pad_a, pad_b;
  void operator()() const {
    if (*left == 0) return;
    --*left;
    sim->scheduleAfter(delay, *this);
  }
};

template <class Sim>
double benchChain(std::uint64_t n, std::uint64_t /*seed*/) {
  Sim sim;
  std::uint64_t left = n;
  const auto t0 = std::chrono::steady_clock::now();
  sim.schedule(0.0, KernelChain<Sim>{&sim, &left, 1.0, 2.0, 3.0});
  sim.runAll();
  const double dt = kernelSecondsSince(t0);
  AFF_CHECK(sim.executedCount() == n + 1);
  return static_cast<double>(n) / dt;
}

// Batched same-timestamp admission: the dispatcher pattern — a burst of
// `batch` events lands at one virtual instant, then the queue drains before
// the next burst. With batch >= the kernel's admission-batch size the
// staged cohort crosses the flush boundary every phase, so this isolates
// the SoA batched-insert path against the seed kernel's one-at-a-time
// heap pushes. Returns events/sec.
template <class Sim>
double benchBatchAdmit(std::uint64_t n, std::size_t batch, std::uint64_t seed) {
  Sim sim;
  Rng rng(seed);
  std::uint64_t sink = 0;
  const KernelPayload payload{&sink, 1.0, 2.0, 3.0, 4.0};
  const std::uint64_t phases = n / batch;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t p = 0; p < phases; ++p) {
    const double at = sim.now() + rng.uniform(1.0, 2.0);
    for (std::size_t i = 0; i < batch; ++i) sim.schedule(at, payload);
    sim.runAll();
  }
  const double dt = kernelSecondsSince(t0);
  AFF_CHECK(sim.executedCount() == phases * batch);
  AFF_CHECK(sink != 0);
  return static_cast<double>(phases * batch) / dt;
}

struct KernelResult {
  std::string name;
  double new_eps = 0.0;
  double legacy_eps = 0.0;
  [[nodiscard]] double speedup() const { return new_eps / legacy_eps; }
};

// Runs `reps` back-to-back (new, legacy) pairs and keeps the best of each,
// so both kernels sample the same load climate on a shared machine.
template <typename NewFn, typename LegacyFn>
KernelResult measureKernelPair(const char* name, int reps, NewFn&& new_fn, LegacyFn&& legacy_fn) {
  KernelResult r{name, 0.0, 0.0};
  for (int rep = 0; rep < reps; ++rep) {
    const auto seed = static_cast<std::uint64_t>(rep) + 1;
    r.new_eps = std::max(r.new_eps, new_fn(seed));
    r.legacy_eps = std::max(r.legacy_eps, legacy_fn(seed));
  }
  return r;
}

// Disabled-tracing cost of the per-frame guard (one relaxed load of
// TraceSession::active() + branch): hold workload with frame-sized events
// (frameSizedWork above), guarded vs plain, as a percent slowdown. Near
// zero (can be slightly negative from run-to-run noise) when no session is
// active; docs/OBSERVABILITY.md pins the < 1 % budget. If a session IS
// active the number instead measures *enabled* tracing, so run without
// --trace-out to reproduce the budget figure.
//
// A single timed pair drowns a sub-1 % effect in scheduler noise on a
// shared machine, so this interleaves many short blocks of each variant and
// compares the *fastest* block of each (noise only ever adds time, so the
// per-variant maximum events/sec is the stable estimator).
template <class Sim>
double benchGuardOverheadPct(std::uint64_t n, std::size_t depth, int reps) {
  GuardedFrameWorkPayload guarded{};
  if (obs::TraceSession* t = obs::TraceSession::active(); t != nullptr)
    guarded.track = t->track("kernel bench events");
  const std::uint64_t block = std::max<std::uint64_t>(n / 16, 50'000);
  const int samples = std::max(reps * 3, 9);
  // One discarded block per variant soaks up turbo/cold-cache transients,
  // then the A/B order alternates per sample so frequency drift during the
  // run can't systematically favor either side.
  benchHold<Sim, FrameWorkPayload>(block, depth, 1);
  benchHold<Sim, GuardedFrameWorkPayload>(block, depth, 1, guarded);
  double plain_eps = 0.0;
  double guarded_eps = 0.0;
  for (int i = 0; i < samples; ++i) {
    const auto seed = static_cast<std::uint64_t>(i) + 1;
    if (i % 2 == 0) {
      plain_eps = std::max(plain_eps, benchHold<Sim, FrameWorkPayload>(block, depth, seed));
      guarded_eps = std::max(
          guarded_eps, benchHold<Sim, GuardedFrameWorkPayload>(block, depth, seed, guarded));
    } else {
      guarded_eps = std::max(
          guarded_eps, benchHold<Sim, GuardedFrameWorkPayload>(block, depth, seed, guarded));
      plain_eps = std::max(plain_eps, benchHold<Sim, FrameWorkPayload>(block, depth, seed));
    }
  }
  return (plain_eps / guarded_eps - 1.0) * 100.0;
}

}  // namespace affinity::bench
