// Adaptive hybrid: the TR's hybrid policy with automatic stream
// classification. Workload: a population of quiet streams in which some
// turn hot-and-bursty mid-run (video sessions starting). The adaptive
// controller reclassifies streams from windowed arrival statistics; compare
// against pure Locking, pure IPS, and the oracle hybrid that knows the hot
// set in advance.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

namespace {

StreamSet turningHotWorkload(std::size_t hot, std::size_t total, double rate, double hot_share,
                             double batch, double switch_time_us) {
  StreamSet set;
  const std::size_t cold = total - hot;
  const double hot_rate = rate * hot_share / static_cast<double>(hot);
  const double cold_rate = rate * (1.0 - hot_share) / static_cast<double>(cold);
  for (std::size_t i = 0; i < hot; ++i) {
    // Quiet at first, then hot+bursty.
    set.streams.push_back(std::make_unique<PhaseSwitchArrivals>(
        std::make_unique<PoissonArrivals>(cold_rate),
        std::make_unique<BatchPoissonArrivals>(hot_rate, batch, false), switch_time_us));
  }
  for (std::size_t i = 0; i < cold; ++i)
    set.streams.push_back(std::make_unique<PoissonArrivals>(cold_rate));
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ext_adaptive", "adaptive hybrid vs pure paradigms on a shifting workload");
  const auto flags = CommonFlags::declare(cli);
  const int& hot = cli.flag<int>("hot", 3, "streams that turn hot mid-run");
  const double& batch = cli.flag<double>("batch", 16.0, "hot-phase batch size");
  const double& hot_share = cli.flag<double>("hot-share", 0.5, "hot streams' rate share");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# Adaptive hybrid — %d of %d streams turn hot (batch %.0f) after warmup\n", hot,
              flags.streams, batch);
  TableWriter t({"rate_pkts_per_s", "Locking_MRU", "IPS_Wired", "Oracle_Hybrid",
                 "Adaptive_Hybrid", "reclassifications"},
                flags.csv, 1);
  for (double rate : rateSweep(flags.fast)) {
    SimConfig base = flags.makeConfigFor(rate);
    const double switch_time = base.warmup_us * 0.5;
    const auto streams = turningHotWorkload(static_cast<std::size_t>(hot),
                                            static_cast<std::size_t>(flags.streams), rate,
                                            hot_share, batch, switch_time);
    t.beginRow();
    t.add(perSecond(rate));

    SimConfig c = base;
    c.policy.paradigm = Paradigm::kLocking;
    c.policy.locking = LockingPolicy::kMru;
    t.add(runOnce(c, model, streams).mean_delay_us);

    c = base;
    c.policy.paradigm = Paradigm::kIps;
    c.policy.ips = IpsPolicy::kWired;
    t.add(runOnce(c, model, streams).mean_delay_us);

    c = base;
    c.policy.paradigm = Paradigm::kHybrid;
    c.policy.locking = LockingPolicy::kMru;
    c.policy.ips = IpsPolicy::kWired;
    for (int h = 0; h < hot; ++h)
      c.policy.hybrid_locking_streams.push_back(static_cast<std::uint32_t>(h));
    t.add(runOnce(c, model, streams).mean_delay_us);

    c = base;
    c.policy.paradigm = Paradigm::kHybrid;
    c.policy.locking = LockingPolicy::kMru;
    c.policy.ips = IpsPolicy::kWired;
    c.adaptive_hybrid = true;
    const RunMetrics adaptive = runOnce(c, model, streams);
    t.add(adaptive.mean_delay_us);
    t.add(static_cast<double>(adaptive.reclassifications));
  }
  t.print();
  return 0;
}
