// Extension (iii): under IPS, vary the number of independent stacks K while
// keeping 8 processors. Few stacks limit concurrency (streams pile onto few
// serial contexts); many stacks dilute per-stack warmth and overload wired
// processors unevenly. Wired placement maps stack k to processor k mod N.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("ext_ips_stacks", "IPS: effect of the number of independent stacks");
  const auto flags = CommonFlags::declare(cli);
  const double& rate = cli.flag<double>("rate", 0.02, "aggregate packet rate (pkts/us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
  std::printf("# Extension iii — IPS, %d procs, %d streams, rate %.0f pkts/s\n", flags.procs,
              flags.streams, perSecond(rate));
  TableWriter t({"stacks", "Wired_delay_us", "MRU_delay_us", "Wired_util"}, flags.csv, 2);
  const std::vector<unsigned> stack_counts =
      flags.fast ? std::vector<unsigned>{2, 8, 16} : std::vector<unsigned>{1, 2, 4, 8, 12, 16};
  for (unsigned k : stack_counts) {
    SimConfig c = flags.makeConfigFor(rate);
    c.policy.paradigm = Paradigm::kIps;
    c.policy.ips_stacks = k;
    c.policy.ips = IpsPolicy::kWired;
    const RunMetrics wired = runOnce(c, model, streams);
    c.policy.ips = IpsPolicy::kMru;
    const RunMetrics mru = runOnce(c, model, streams);
    t.addRow({static_cast<double>(k), wired.mean_delay_us, mru.mean_delay_us,
              wired.utilization});
  }
  t.print();
  return 0;
}
