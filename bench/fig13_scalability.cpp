// Intra-stream scalability (abstract / §5): the maximum sustainable
// throughput of a SINGLE stream as processors are added. Expected shape:
// Locking scales with N (any processor can take the next packet); IPS is
// capped near one processor's service rate regardless of N.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig13_scalability", "single-stream max throughput vs processor count");
  const auto flags = CommonFlags::declare(cli);
  const double& bound = cli.flag<double>("delay-bound", 2'000.0, "capacity delay bound (us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  const auto make = [](double rate) { return makePoissonStreams(1, rate); };

  std::printf("# Intra-stream scalability — one stream, capacity under %.0f us mean delay\n",
              bound);
  TableWriter t({"procs", "Locking_MRU_pkts_per_s", "IPS_Wired_pkts_per_s", "speedup_ratio"},
                flags.csv, 1);
  const std::vector<int> procs = flags.fast ? std::vector<int>{1, 4, 8}
                                            : std::vector<int>{1, 2, 4, 6, 8};
  struct Row {
    CapacityResult locking, ips;
  };
  const auto rows = sweep(flags, procs.size(), [&](std::size_t i) {
    SimConfig locking = flags.makeConfig();
    locking.seed = pointSeed(flags, i);
    locking.num_procs = static_cast<unsigned>(procs[i]);
    locking.policy.paradigm = Paradigm::kLocking;
    locking.policy.locking = LockingPolicy::kMru;
    locking.measure_us = flags.fast ? 200'000.0 : 600'000.0;
    SimConfig ips = locking;
    ips.policy.paradigm = Paradigm::kIps;
    ips.policy.ips = IpsPolicy::kWired;
    return Row{findMaxRate(locking, model, make, 0.001, 0.09, bound, 10),
               findMaxRate(ips, model, make, 0.001, 0.09, bound, 10)};
  });
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const auto& cap_l = rows[i].locking;
    const auto& cap_i = rows[i].ips;
    t.addRow({static_cast<double>(procs[i]), perSecond(cap_l.max_rate_per_us),
              perSecond(cap_i.max_rate_per_us),
              cap_l.max_rate_per_us / std::max(cap_i.max_rate_per_us, 1e-9)});
  }
  t.print();
  return 0;
}
