// legacy_simulator.hpp — the seed repo's event kernel, frozen as a baseline.
//
// This is the pre-optimization Simulator (std::function callbacks heap-
// allocated per event, std::unordered_set lazy cancellation, binary
// std::priority_queue), kept verbatim under namespace legacy so
// sim_kernel_bench can report the current kernel's speedup against it on
// the same machine and workload. Not linked anywhere else.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/check.hpp"

namespace affinity::legacy {

using SimTime = double;

class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  EventHandle schedule(SimTime at, std::function<void()> fn) {
    AFF_CHECK(at >= now_);
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{at, seq, std::move(fn)});
    pending_.insert(seq);
    return EventHandle(seq);
  }

  EventHandle scheduleAfter(SimTime delay, std::function<void()> fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  bool cancel(EventHandle h) noexcept {
    if (!h.valid()) return false;
    return pending_.erase(h.id_) == 1;
  }

  std::uint64_t runUntil(SimTime until) {
    std::uint64_t ran = 0;
    SimTime at;
    while (peekTime(at) && at <= until) {
      step();
      ++ran;
    }
    if (now_ < until) now_ = until;
    return ran;
  }

  std::uint64_t runAll() {
    std::uint64_t ran = 0;
    while (step()) ++ran;
    return ran;
  }

  bool step() {
    Entry e;
    if (!popNext(e)) return false;
    now_ = e.at;
    ++executed_;
    e.fn();
    return true;
  }

  [[nodiscard]] std::size_t pendingCount() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t executedCount() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool popNext(Entry& out) {
    while (!heap_.empty()) {
      Entry& top = const_cast<Entry&>(heap_.top());
      if (pending_.erase(top.seq) == 0) {
        heap_.pop();
        continue;
      }
      out = std::move(top);
      heap_.pop();
      return true;
    }
    return false;
  }

  bool peekTime(SimTime& at) {
    while (!heap_.empty()) {
      const Entry& top = heap_.top();
      if (pending_.count(top.seq) == 0) {
        heap_.pop();
        continue;
      }
      at = top.at;
      return true;
    }
    return false;
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace affinity::legacy
