// Concurrent-stream capacity (abstract): how many concurrent streams, each
// at a fixed per-stream packet rate, the host can support under a mean-delay
// bound — comparing no-affinity, affinity-scheduled Locking, and IPS.
// Expected: affinity scheduling enables the host to support a greater
// number of concurrent streams.
#include <cstdio>
#include <iterator>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

namespace {

// Largest stream count in [1, limit] that keeps mean delay under bound.
int maxStreams(const SimConfig& base, const ExecTimeModel& model, double per_stream_rate,
               double bound, int limit) {
  int lo = 0, hi = limit + 1;  // lo feasible, hi infeasible
  while (hi - lo > 1) {
    const int mid = (lo + hi) / 2;
    ProtocolSim sim(base, model, makePoissonStreams(static_cast<std::size_t>(mid),
                                                    per_stream_rate * mid));
    const RunMetrics m = sim.run();
    const bool ok = !m.saturated && m.mean_delay_us <= bound;
    (ok ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("tab2_stream_capacity", "max concurrent streams under a delay bound");
  const auto flags = CommonFlags::declare(cli);
  const double& per_stream =
      cli.flag<double>("per-stream-rate", 0.0012, "per-stream packet rate (pkts/us)");
  const double& bound = cli.flag<double>("delay-bound", 600.0, "mean delay bound (us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# Table 2 — max concurrent streams at %.0f pkts/s each, delay bound %.0f us\n",
              perSecond(per_stream), bound);
  TableWriter t({"configuration", "max_streams", "aggregate_pkts_per_s"}, flags.csv, 0);
  struct Case {
    const char* name;
    Paradigm paradigm;
    LockingPolicy locking;
    IpsPolicy ips;
  };
  const Case cases[] = {
      {"Locking/FCFS (no affinity)", Paradigm::kLocking, LockingPolicy::kFcfs, IpsPolicy::kWired},
      {"Locking/MRU", Paradigm::kLocking, LockingPolicy::kMru, IpsPolicy::kWired},
      {"Locking/StreamMRU", Paradigm::kLocking, LockingPolicy::kStreamMru, IpsPolicy::kWired},
      {"Locking/WiredStreams", Paradigm::kLocking, LockingPolicy::kWiredStreams,
       IpsPolicy::kWired},
      {"IPS/Wired", Paradigm::kIps, LockingPolicy::kMru, IpsPolicy::kWired},
  };
  const std::size_t ncases = std::size(cases);
  const auto counts = sweep(flags, ncases, [&](std::size_t i) {
    const Case& cs = cases[i];
    SimConfig c = flags.makeConfig();
    c.seed = pointSeed(flags, i);
    c.measure_us = flags.fast ? 200'000.0 : 700'000.0;
    c.policy.paradigm = cs.paradigm;
    c.policy.locking = cs.locking;
    c.policy.ips = cs.ips;
    return maxStreams(c, model, per_stream, bound, 64);
  });
  for (std::size_t i = 0; i < ncases; ++i) {
    t.beginRow();
    t.addText(cases[i].name);
    t.add(counts[i]);
    t.add(perSecond(per_stream * counts[i]));
  }
  t.print();
  return 0;
}
