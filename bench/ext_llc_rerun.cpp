// Extension: "2020s topology" rerun of the headline figures (6, 8, 9, 12)
// on a shared-LLC machine (MachineParams::modern2020: private 32 KB L1s and
// a 1 MB L2 per core behind a shared 32 MiB LLC) under the reuse-distance
// cache model, side by side with the paper's 1995 SGI Challenge + SST
// model. Clock and cycles-per-ref stay at the paper's values, so the two
// columns differ only in hierarchy *shape* — the question is which 1995
// scheduling conclusions survive three decades of cache evolution.
// EXPERIMENTS.md ("Shared-LLC rerun") records the verdicts; the pinned
// shapes live in tests/golden_llc_test.cpp.
#include <cstdio>

#include "bench/common.hpp"
#include "cachesim/rd_capture.hpp"

using namespace affinity;
using namespace affinity::bench;

namespace {

double lockingDelay(const CommonFlags& flags, const ExecTimeModel& model, LockingPolicy policy,
                    double rate, std::uint64_t point_index) {
  const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
  SimConfig c = flags.makeConfigFor(rate);
  c.seed = derivePointSeed(flags.seed, point_index);
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = policy;
  return runOnce(c, model, streams).mean_delay_us;
}

double ipsDelay(const CommonFlags& flags, const ExecTimeModel& model, IpsPolicy policy,
                double rate, std::uint64_t point_index) {
  const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
  SimConfig c = flags.makeConfigFor(rate);
  c.seed = derivePointSeed(flags.seed, point_index);
  c.policy.paradigm = Paradigm::kIps;
  c.policy.ips = policy;
  return runOnce(c, model, streams).mean_delay_us;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ext_llc_rerun", "shared-LLC (2020s topology) rerun of figures 6/8/9/12");
  const auto flags = CommonFlags::declare(cli);
  cli.parse(argc, argv);

  const ExecTimeModel legacy = ExecTimeModel::standard();
  RdCaptureParams capture;
  capture.co_runners = static_cast<unsigned>(flags.procs);
  const ExecTimeModel modern(cachedDefaultRdModel(MachineParams::modern2020(), capture),
                             ReloadParams::measuredUdpReceive().splitForSharedLlc(),
                             FootprintShares{});

  std::printf("# Shared-LLC rerun: 1995 (SST, no LLC) vs 2020s (reuse, 32 MiB shared LLC)\n");
  std::printf("# both t_cold = %.1f us; modern splits dl2 into dl2=%.1f dl3=%.1f\n",
              legacy.tCold(), modern.reloadParams().dl2_us, modern.reloadParams().dl3_us);

  // Figure 6 — Locking delay, MRU vs Wired-Streams around the crossover.
  {
    TableWriter t({"rate_pkts_per_s", "MRU_1995", "Wired_1995", "MRU_2020", "Wired_2020"},
                  flags.csv, 1);
    const double rates[] = {0.030, 0.034, 0.038, 0.040, 0.042, 0.046};
    const std::uint64_t idx[] = {5, 7, 9, 10, 11, 13};
    for (int i = 0; i < 6; ++i) {
      t.beginRow();
      t.add(perSecond(rates[i]));
      t.add(lockingDelay(flags, legacy, LockingPolicy::kMru, rates[i], idx[i]));
      t.add(lockingDelay(flags, legacy, LockingPolicy::kWiredStreams, rates[i], idx[i]));
      t.add(lockingDelay(flags, modern, LockingPolicy::kMru, rates[i], idx[i]));
      t.add(lockingDelay(flags, modern, LockingPolicy::kWiredStreams, rates[i], idx[i]));
    }
    std::printf("\n## Figure 6 rerun — Locking mean delay (us)\n");
    t.print();
  }

  // Figure 8 — IPS placement at light load (code-warmth concentration win).
  {
    TableWriter t({"rate_pkts_per_s", "Random_1995", "MRU_1995", "Wired_1995", "Random_2020",
                   "MRU_2020", "Wired_2020"},
                  flags.csv, 1);
    const double rates[] = {0.0005, 0.001, 0.004};
    const std::uint64_t idx[] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      t.beginRow();
      t.add(perSecond(rates[i]));
      for (const ExecTimeModel* m : {&legacy, &modern})
        for (IpsPolicy p : {IpsPolicy::kRandom, IpsPolicy::kMru, IpsPolicy::kWired})
          t.add(ipsDelay(flags, *m, p, rates[i], idx[i]));
    }
    std::printf("\n## Figure 8 rerun — IPS mean delay at light load (us)\n");
    t.print();
  }

  // Figure 9 — capacity under a 1 ms delay bound, Locking-MRU vs IPS-Wired.
  {
    TableWriter t({"model", "Locking_pkts_s", "IPS_pkts_s", "IPS_over_Locking"}, flags.csv, 3);
    const auto make = [&](double rate) {
      return makePoissonStreams(static_cast<std::size_t>(flags.streams), rate);
    };
    const char* names[] = {"1995", "2020"};
    const ExecTimeModel* models[] = {&legacy, &modern};
    for (int i = 0; i < 2; ++i) {
      SimConfig locking = flags.makeConfig();
      locking.measure_us = 800'000.0;
      locking.policy.paradigm = Paradigm::kLocking;
      locking.policy.locking = LockingPolicy::kMru;
      SimConfig ips = locking;
      ips.policy.paradigm = Paradigm::kIps;
      ips.policy.ips = IpsPolicy::kWired;
      const CapacityResult cl = findMaxRate(locking, *models[i], make, 0.002, 0.08, 1000.0, 10);
      const CapacityResult ci = findMaxRate(ips, *models[i], make, 0.002, 0.08, 1000.0, 10);
      t.beginRow();
      t.addText(names[i]);
      t.add(cl.max_rate_per_us * 1e6);
      t.add(ci.max_rate_per_us * 1e6);
      t.add(ci.max_rate_per_us / cl.max_rate_per_us);
    }
    std::printf("\n## Figure 9 rerun — capacity at 1 ms delay bound\n");
    t.print();
  }

  // Figure 12 — burstiness crossover, Locking-MRU vs IPS-Wired by batch.
  {
    TableWriter t({"batch", "Locking_1995", "IPS_1995", "Locking_2020", "IPS_2020"}, flags.csv,
                  1);
    const double batches[] = {1.0, 4.0, 8.0};
    const std::uint64_t idx[] = {0, 2, 3};
    for (int i = 0; i < 3; ++i) {
      const auto streams =
          makeBatchStreams(static_cast<std::size_t>(flags.streams), 0.012, batches[i], false);
      t.beginRow();
      t.add(batches[i]);
      for (const ExecTimeModel* m : {&legacy, &modern}) {
        SimConfig lc = flags.makeConfig();
        lc.seed = derivePointSeed(flags.seed, idx[i]);
        lc.policy.paradigm = Paradigm::kLocking;
        lc.policy.locking = LockingPolicy::kMru;
        t.add(runOnce(lc, *m, streams).mean_delay_us);
        SimConfig ic = flags.makeConfig();
        ic.seed = derivePointSeed(flags.seed, idx[i]);
        ic.policy.paradigm = Paradigm::kIps;
        ic.policy.ips = IpsPolicy::kWired;
        t.add(runOnce(ic, *m, streams).mean_delay_us);
      }
    }
    std::printf("\n## Figure 12 rerun — burstiness, mean delay (us)\n");
    t.print();
  }

  return 0;
}
