// Ablation: the per-level footprint decomposition is load-bearing
// (DESIGN.md §2). This bench sweeps the code share of the L2 transient —
// holding totals fixed — and shows the IPS low-rate policy crossover
// (MRU vs Wired) appear as code becomes the dominant L2 component, and the
// high-rate stream-affinity benefit under Locking shrink as the stream
// share is diluted.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

namespace {

ExecTimeModel modelWithL2CodeShare(double l2_code) {
  FootprintShares s;  // L1 shares stay at the defaults
  s.l2_code = l2_code;
  const double rest = 1.0 - l2_code;
  s.l2_shared = rest * (0.15 / 0.35);
  s.l2_stream = rest * (0.20 / 0.35);
  return ExecTimeModel(FlushModel(MachineParams::sgiChallenge(), SstParams::mvsWorkload()),
                       ReloadParams::measuredUdpReceive(), s);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ext_ablation_shares", "sensitivity of the policy crossovers to the L2 code share");
  const auto flags = CommonFlags::declare(cli);
  const double& low_rate = cli.flag<double>("low-rate", 0.0005, "low-rate probe (pkts/us)");
  const double& high_rate = cli.flag<double>("high-rate", 0.035, "high-rate probe (pkts/us)");
  cli.parse(argc, argv);

  std::printf(
      "# Ablation — L2 transient share of the shared code; L1 shares fixed.\n"
      "# ips_mru_adv: IPS Wired-vs-MRU delay gap at %.0f pkts/s (positive = MRU wins,\n"
      "#              the paper's low-rate finding; needs a code-heavy L2 share).\n"
      "# lock_aff_red: %% delay reduction of StreamMRU vs FCFS at %.0f pkts/s.\n",
      perSecond(low_rate), perSecond(high_rate));
  TableWriter t({"l2_code_share", "ips_mru_adv_us", "lock_aff_red_pct"}, flags.csv, 2);
  const std::vector<double> shares =
      flags.fast ? std::vector<double>{0.2, 0.65} : std::vector<double>{0.1, 0.3, 0.5, 0.65, 0.8};
  for (double share : shares) {
    const ExecTimeModel model = modelWithL2CodeShare(share);
    t.beginRow();
    t.add(share);
    {
      SimConfig c = flags.makeConfigFor(low_rate);
      c.policy.paradigm = Paradigm::kIps;
      const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), low_rate);
      c.policy.ips = IpsPolicy::kWired;
      const RunMetrics wired = runOnce(c, model, streams);
      c.policy.ips = IpsPolicy::kMru;
      const RunMetrics mru = runOnce(c, model, streams);
      t.add(wired.mean_delay_us - mru.mean_delay_us);
    }
    {
      SimConfig c = flags.makeConfigFor(high_rate);
      c.policy.paradigm = Paradigm::kLocking;
      const auto streams = makePoissonStreams(static_cast<std::size_t>(flags.streams), high_rate);
      c.policy.locking = LockingPolicy::kFcfs;
      const RunMetrics fcfs = runOnce(c, model, streams);
      c.policy.locking = LockingPolicy::kStreamMru;
      const RunMetrics aff = runOnce(c, model, streams);
      t.add(reductionPercent(fcfs.mean_delay_us, aff.mean_delay_us));
    }
  }
  t.print();
  return 0;
}
