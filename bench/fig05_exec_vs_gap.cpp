// Figure 5 [reconstructed]: packet execution time t(x) as a function of the
// intervening non-protocol execution time x — the reload-transient
// interpolation between t_warm and t_cold = 284.3 µs.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;

int main(int argc, char** argv) {
  Cli cli("fig05_exec_vs_gap", "packet execution time vs intervening non-protocol time");
  const bool& csv = cli.flag<bool>("csv", false, "emit CSV");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  std::printf("# Figure 5 — t(x) = t_warm + F1(x) dL1 + F2(x) dL2; t_warm=%.1f t_cold=%.1f\n",
              model.tWarm(), model.tCold());
  TableWriter t({"x_us", "exec_us", "frac_of_transient"}, csv, 2);
  const double transient = model.tCold() - model.tWarm();
  for (double x : {0.0, 10.0, 50.0, 100.0, 250.0, 500.0, 1'000.0, 2'500.0, 5'000.0, 10'000.0,
                   50'000.0, 100'000.0, 500'000.0, 2'000'000.0}) {
    const double exec = model.serviceTime({x, x, x});
    t.addRow({x, exec, (exec - model.tWarm()) / transient});
  }
  t.print();
  return 0;
}
