// Intra-stream burstiness (abstract / §5): mean packet delay vs intra-stream
// batch size at a fixed aggregate packet rate. Expected shape: IPS
// serializes each burst on one stack, so its delay grows steeply with batch
// size; Locking spreads a burst over processors and absorbs it.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig12_burstiness", "delay vs intra-stream batch size: Locking vs IPS");
  const auto flags = CommonFlags::declare(cli);
  const double& rate = cli.flag<double>("rate", 0.012, "aggregate packet rate (pkts/us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  SimConfig locking = flags.makeConfig();
  locking.policy.paradigm = Paradigm::kLocking;
  locking.policy.locking = LockingPolicy::kMru;
  SimConfig ips = flags.makeConfig();
  ips.policy.paradigm = Paradigm::kIps;
  ips.policy.ips = IpsPolicy::kWired;

  std::printf("# Burstiness — fixed rate %.0f pkts/s, %d procs, %d streams; batch arrivals\n",
              perSecond(rate), flags.procs, flags.streams);
  TableWriter t({"batch_size", "Locking_MRU", "IPS_Wired", "IPS_over_Locking"}, flags.csv, 2);
  const std::vector<double> batches = flags.fast ? std::vector<double>{1, 8, 24}
                                                 : std::vector<double>{1, 2, 4, 8, 16, 24, 32};
  for (double b : batches) {
    const auto streams =
        makeBatchStreams(static_cast<std::size_t>(flags.streams), rate, b, /*geometric=*/false);
    const RunMetrics ml = runOnce(locking, model, streams);
    const RunMetrics mi = runOnce(ips, model, streams);
    t.addRow({b, ml.mean_delay_us, mi.mean_delay_us, mi.mean_delay_us / ml.mean_delay_us});
  }
  t.print();
  return 0;
}
