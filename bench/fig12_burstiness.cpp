// Intra-stream burstiness (abstract / §5): mean packet delay vs intra-stream
// batch size at a fixed aggregate packet rate. Expected shape: IPS
// serializes each burst on one stack, so its delay grows steeply with batch
// size; Locking spreads a burst over processors and absorbs it.
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig12_burstiness", "delay vs intra-stream batch size: Locking vs IPS");
  const auto flags = CommonFlags::declare(cli);
  const double& rate = cli.flag<double>("rate", 0.012, "aggregate packet rate (pkts/us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  SimConfig locking = flags.makeConfig();
  locking.policy.paradigm = Paradigm::kLocking;
  locking.policy.locking = LockingPolicy::kMru;
  SimConfig ips = flags.makeConfig();
  ips.policy.paradigm = Paradigm::kIps;
  ips.policy.ips = IpsPolicy::kWired;

  std::printf("# Burstiness — fixed rate %.0f pkts/s, %d procs, %d streams; batch arrivals\n",
              perSecond(rate), flags.procs, flags.streams);
  TableWriter t({"batch_size", "Locking_MRU", "IPS_Wired", "IPS_over_Locking"}, flags.csv, 2);
  const std::vector<double> batches = flags.fast ? std::vector<double>{1, 8, 24}
                                                 : std::vector<double>{1, 2, 4, 8, 16, 24, 32};
  struct Row {
    double locking, ips;
  };
  const auto rows = sweep(flags, batches.size(), [&](std::size_t i) {
    const auto streams = makeBatchStreams(static_cast<std::size_t>(flags.streams), rate,
                                          batches[i], /*geometric=*/false);
    SimConfig lc = locking, ic = ips;
    lc.seed = ic.seed = pointSeed(flags, i);
    return Row{runOnce(lc, model, streams).mean_delay_us,
               runOnce(ic, model, streams).mean_delay_us};
  });
  for (std::size_t i = 0; i < batches.size(); ++i)
    t.addRow({batches[i], rows[i].locking, rows[i].ips, rows[i].ips / rows[i].locking});
  t.print();
  return 0;
}
