// Figure 7 [reconstructed axes]: marginal contributions of the individual
// affinity policies under Locking — adds StreamMRU (MRU plus stream-to-
// processor affinity) between plain MRU and Wired-Streams, at two stream
// populations. Shows how much of the benefit comes from thread/processor
// affinity (code + shared data) vs stream wiring (per-stream state).
#include <array>
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig07_locking_marginal", "Locking: marginal contribution of each affinity policy");
  const auto flags = CommonFlags::declare(cli);
  const int& streams_hi = cli.flag<int>("streams-hi", 64, "large stream population");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  for (int nstreams : {flags.streams, streams_hi}) {
    std::printf("# Figure 7 — Locking, %d procs, %d streams\n", flags.procs, nstreams);
    TableWriter t({"rate_pkts_per_s", "FCFS", "MRU", "StreamMRU", "WiredStreams"}, flags.csv, 1);
    const auto rates = rateSweep(flags.fast);
    const auto rows = sweep(flags, rates.size(), [&](std::size_t i) {
      const double rate = rates[i];
      const auto streams = makePoissonStreams(static_cast<std::size_t>(nstreams), rate);
      std::array<double, 4> row;
      std::size_t k = 0;
      for (LockingPolicy p : {LockingPolicy::kFcfs, LockingPolicy::kMru,
                              LockingPolicy::kStreamMru, LockingPolicy::kWiredStreams}) {
        SimConfig c = flags.makeConfigFor(rate);
        c.seed = pointSeed(flags, i);
        c.policy.paradigm = Paradigm::kLocking;
        c.policy.locking = p;
        row[k++] = runOnce(c, model, streams).mean_delay_us;
      }
      return row;
    });
    for (std::size_t i = 0; i < rates.size(); ++i) {
      t.beginRow();
      t.add(perSecond(rates[i]));
      for (double delay : rows[i]) t.add(delay);
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
