// Figure 7 [reconstructed axes]: marginal contributions of the individual
// affinity policies under Locking — adds StreamMRU (MRU plus stream-to-
// processor affinity) between plain MRU and Wired-Streams, at two stream
// populations. Shows how much of the benefit comes from thread/processor
// affinity (code + shared data) vs stream wiring (per-stream state).
#include <cstdio>

#include "bench/common.hpp"

using namespace affinity;
using namespace affinity::bench;

int main(int argc, char** argv) {
  Cli cli("fig07_locking_marginal", "Locking: marginal contribution of each affinity policy");
  const auto flags = CommonFlags::declare(cli);
  const int& streams_hi = cli.flag<int>("streams-hi", 64, "large stream population");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  for (int nstreams : {flags.streams, streams_hi}) {
    std::printf("# Figure 7 — Locking, %d procs, %d streams\n", flags.procs, nstreams);
    TableWriter t({"rate_pkts_per_s", "FCFS", "MRU", "StreamMRU", "WiredStreams"}, flags.csv, 1);
    for (double rate : rateSweep(flags.fast)) {
      const auto streams = makePoissonStreams(static_cast<std::size_t>(nstreams), rate);
      t.beginRow();
      t.add(perSecond(rate));
      for (LockingPolicy p : {LockingPolicy::kFcfs, LockingPolicy::kMru,
                              LockingPolicy::kStreamMru, LockingPolicy::kWiredStreams}) {
        SimConfig c = flags.makeConfigFor(rate);
        c.policy.paradigm = Paradigm::kLocking;
        c.policy.locking = p;
        const RunMetrics m = runOnce(c, model, streams);
        t.add(m.mean_delay_us);
      }
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
