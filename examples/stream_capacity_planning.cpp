// stream_capacity_planning — a capacity-planning scenario.
//
// A host must serve N concurrent clients (think: the NFS/visualization
// servers of the paper's era), each sending 1,200 packets/s, with mean
// protocol delay under 600 us. How many clients can each configuration
// carry, and what should the operator deploy?
//
//   $ ./stream_capacity_planning [--procs 8] [--per-stream-rate 0.0012]
#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"

using namespace affinity;

namespace {

int capacityInStreams(SimConfig config, const ExecTimeModel& model, double per_stream_rate,
                      double bound) {
  int lo = 0, hi = 129;
  while (hi - lo > 1) {
    const int mid = (lo + hi) / 2;
    const RunMetrics m = runOnce(
        config, model, makePoissonStreams(static_cast<std::size_t>(mid), per_stream_rate * mid));
    ((!m.saturated && m.mean_delay_us <= bound) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("stream_capacity_planning", "how many client streams can the host carry?");
  const int& procs = cli.flag<int>("procs", 8, "processors");
  const double& rate = cli.flag<double>("per-stream-rate", 0.0012, "per-client rate (pkts/us)");
  const double& bound = cli.flag<double>("delay-bound", 600.0, "mean delay bound (us)");
  cli.parse(argc, argv);

  const auto model = ExecTimeModel::standard();
  SimConfig config = defaultSimConfig();
  config.num_procs = static_cast<unsigned>(procs);
  config.measure_us = 600'000.0;

  std::printf("capacity planning: %d processors, %.0f pkts/s per client, delay bound %.0f us\n\n",
              procs, rate * 1e6, bound);

  struct Option {
    const char* label;
    Paradigm paradigm;
    LockingPolicy locking;
    IpsPolicy ips;
  };
  const Option options[] = {
      {"Locking, no affinity (FCFS)", Paradigm::kLocking, LockingPolicy::kFcfs, IpsPolicy::kWired},
      {"Locking, MRU affinity", Paradigm::kLocking, LockingPolicy::kMru, IpsPolicy::kWired},
      {"Locking, streams wired", Paradigm::kLocking, LockingPolicy::kWiredStreams,
       IpsPolicy::kWired},
      {"IPS, stacks wired", Paradigm::kIps, LockingPolicy::kMru, IpsPolicy::kWired},
  };

  int best = -1;
  const char* best_label = "";
  for (const Option& o : options) {
    config.policy.paradigm = o.paradigm;
    config.policy.locking = o.locking;
    config.policy.ips = o.ips;
    const int n = capacityInStreams(config, model, rate, bound);
    std::printf("  %-32s %3d clients (%.0f pkts/s aggregate)\n", o.label, n, n * rate * 1e6);
    if (n > best) {
      best = n;
      best_label = o.label;
    }
  }
  std::printf("\nrecommendation: \"%s\" carries the most clients (%d).\n", best_label, best);
  return 0;
}
