// bursty_video_streams — choosing a paradigm for bursty media traffic.
//
// A continuous-media server receives a few high-rate video streams whose
// packets arrive in frame-sized bursts, over a population of quiet control
// streams. This is exactly the regime where the paper's two paradigms
// diverge: IPS gives the quiet streams warm, lockless service, but a video
// frame's burst serializes on one stack. The hybrid policy (TR-94-075)
// sends the video streams through the Locking stack and everything else
// through IPS.
//
//   $ ./bursty_video_streams [--frame-pkts 24]
#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"

using namespace affinity;

namespace {

StreamSet mediaWorkload(std::size_t videos, std::size_t control, double video_rate,
                        double control_rate, double frame_pkts) {
  StreamSet set;
  for (std::size_t i = 0; i < videos; ++i)
    set.streams.push_back(
        std::make_unique<BatchPoissonArrivals>(video_rate, frame_pkts, /*geometric=*/false));
  for (std::size_t i = 0; i < control; ++i)
    set.streams.push_back(std::make_unique<PoissonArrivals>(control_rate));
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bursty_video_streams", "paradigm choice for bursty media traffic");
  const int& videos = cli.flag<int>("videos", 3, "number of video streams");
  const double& frame_pkts = cli.flag<double>("frame-pkts", 24.0, "packets per video frame burst");
  const int& control = cli.flag<int>("control", 24, "number of quiet control streams");
  cli.parse(argc, argv);

  // Each video: 30 frames/s x frame_pkts packets; control streams: 300 pkt/s.
  const double video_rate = 30e-6 * frame_pkts;
  const double control_rate = 300e-6;
  const auto streams = mediaWorkload(static_cast<std::size_t>(videos),
                                     static_cast<std::size_t>(control), video_rate, control_rate,
                                     frame_pkts);
  const double total =
      videos * video_rate + control * control_rate;
  std::printf("workload: %d video streams (%.0f-packet bursts) + %d control streams = %.0f pkts/s\n\n",
              videos, frame_pkts, control, total * 1e6);

  const auto model = ExecTimeModel::standard();
  SimConfig config = defaultSimConfig();
  config.per_stream_stats = true;

  const auto report = [&](const char* label, const RunMetrics& m) {
    double video_delay = 0.0, control_delay = 0.0;
    for (int s = 0; s < videos; ++s) video_delay += m.per_stream_mean_delay_us[s];
    for (std::size_t s = videos; s < m.per_stream_mean_delay_us.size(); ++s)
      control_delay += m.per_stream_mean_delay_us[s];
    video_delay /= videos;
    control_delay /= control;
    std::printf("  %-14s overall %7.1f us   video %7.1f us   control %7.1f us\n", label,
                m.mean_delay_us, video_delay, control_delay);
  };

  config.policy.paradigm = Paradigm::kLocking;
  config.policy.locking = LockingPolicy::kMru;
  report("Locking/MRU", runOnce(config, model, streams));

  config.policy.paradigm = Paradigm::kIps;
  config.policy.ips = IpsPolicy::kWired;
  report("IPS/Wired", runOnce(config, model, streams));

  config.policy.paradigm = Paradigm::kHybrid;
  config.policy.locking = LockingPolicy::kMru;
  config.policy.ips = IpsPolicy::kWired;
  for (int s = 0; s < videos; ++s)
    config.policy.hybrid_locking_streams.push_back(static_cast<std::uint32_t>(s));
  report("Hybrid", runOnce(config, model, streams));

  std::printf(
      "\nreading: IPS serves the quiet control streams fastest but lets video bursts\n"
      "serialize; the hybrid sends video through the multi-processor Locking stack\n"
      "and keeps the lockless IPS fast path for everything else.\n");
  return 0;
}
