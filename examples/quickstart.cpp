// quickstart — the library in one page.
//
// Builds the paper's standard model (SGI Challenge cache geometry, SST
// non-protocol workload, measured UDP/IP/FDDI reload parameters), runs one
// simulation of 16 Poisson streams on 8 processors under two scheduling
// policies, and prints what affinity scheduling buys.
//
//   $ ./quickstart
#include <cstdio>

#include "core/experiment.hpp"

using namespace affinity;

int main() {
  // 1. The analytic model: machine geometry + displacing workload +
  //    measured packet-time parameters.
  const ExecTimeModel model = ExecTimeModel::standard();
  std::printf("packet execution time: %.1f us warm ... %.1f us cold\n", model.tWarm(),
              model.tCold());

  // 2. The workload: 16 streams, 12,000 packets/s aggregate.
  const StreamSet streams = makePoissonStreams(16, 0.012);

  // 3. Two runs differing only in the scheduling policy.
  SimConfig config = defaultSimConfig();  // 8 processors
  config.policy.paradigm = Paradigm::kLocking;

  config.policy.locking = LockingPolicy::kFcfs;  // no affinity
  const RunMetrics fcfs = runOnce(config, model, streams);

  config.policy.locking = LockingPolicy::kMru;  // affinity-based
  const RunMetrics mru = runOnce(config, model, streams);

  std::printf("\n16 streams at 12k pkts/s on 8 processors (Locking paradigm):\n");
  std::printf("  no affinity (FCFS): mean delay %.1f us  (p95 %.1f, service %.1f)\n",
              fcfs.mean_delay_us, fcfs.p95_delay_us, fcfs.mean_service_us);
  std::printf("  MRU affinity:       mean delay %.1f us  (p95 %.1f, service %.1f)\n",
              mru.mean_delay_us, mru.p95_delay_us, mru.mean_service_us);
  std::printf("  reduction: %.1f%%\n",
              reductionPercent(fcfs.mean_delay_us, mru.mean_delay_us));

  // 4. The other paradigm: independent protocol stacks, wired to processors.
  config.policy.paradigm = Paradigm::kIps;
  config.policy.ips = IpsPolicy::kWired;
  const RunMetrics ips = runOnce(config, model, streams);
  std::printf("  IPS (wired stacks): mean delay %.1f us — no locks, maximal affinity\n",
              ips.mean_delay_us);
  return 0;
}
