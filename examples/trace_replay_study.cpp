// trace_replay_study — evaluate scheduling policies on a recorded trace.
//
// Workflow an operator would actually run: record (or import) an arrival
// trace, then replay the *identical* packet sequence under each candidate
// configuration — a paired comparison with no cross-configuration sampling
// noise. Here we synthesize a mixed trace (steady clients + packet-train
// sources), write it to disk, read it back, and rank the policies on it.
//
//   $ ./trace_replay_study [--trace /tmp/arrivals.txt] [--rate 0.015]
#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "workload/trace_io.hpp"

using namespace affinity;

int main(int argc, char** argv) {
  Cli cli("trace_replay_study", "paired policy comparison on a recorded arrival trace");
  const std::string& path =
      cli.flag<std::string>("trace", "/tmp/affinity_arrivals.txt", "trace file to write/read");
  const double& rate = cli.flag<double>("rate", 0.015, "aggregate packet rate (pkts/us)");
  const double& duration = cli.flag<double>("duration", 1'500'000.0, "trace length (us)");
  cli.parse(argc, argv);

  // 1. Synthesize and record a mixed workload: 12 steady clients + 4
  //    packet-train sources carrying a third of the load.
  StreamSet mixed;
  for (int i = 0; i < 12; ++i)
    mixed.streams.push_back(std::make_unique<PoissonArrivals>(rate * 0.667 / 12));
  for (int i = 0; i < 4; ++i)
    mixed.streams.push_back(
        std::make_unique<PacketTrainArrivals>(rate * 0.333 / 4, 8.0, 25.0));
  const auto records = recordArrivals(mixed, duration, /*seed=*/2026);
  if (!writeArrivalTrace(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("recorded %zu arrivals over %.1f s to %s\n", records.size(), duration / 1e6,
              path.c_str());

  // 2. Read it back (as one would with an externally captured trace).
  std::string error;
  const auto replayed = readArrivalTrace(path, &error);
  if (replayed.empty()) {
    std::fprintf(stderr, "read failed: %s\n", error.c_str());
    return 1;
  }

  // 3. Replay under each configuration.
  const auto model = ExecTimeModel::standard();
  struct Option {
    const char* label;
    Paradigm paradigm;
    LockingPolicy locking;
    IpsPolicy ips;
    bool adaptive;
  };
  const Option options[] = {
      {"Locking/FCFS", Paradigm::kLocking, LockingPolicy::kFcfs, IpsPolicy::kWired, false},
      {"Locking/MRU", Paradigm::kLocking, LockingPolicy::kMru, IpsPolicy::kWired, false},
      {"Locking/StreamMRU", Paradigm::kLocking, LockingPolicy::kStreamMru, IpsPolicy::kWired,
       false},
      {"IPS/Wired", Paradigm::kIps, LockingPolicy::kMru, IpsPolicy::kWired, false},
      {"Adaptive hybrid", Paradigm::kHybrid, LockingPolicy::kMru, IpsPolicy::kWired, true},
  };

  std::printf("\n%-20s %10s %10s %10s\n", "configuration", "mean_us", "p95_us", "p99_us");
  double best = 1e18;
  const char* best_label = "";
  for (const Option& o : options) {
    SimConfig c = defaultSimConfig();
    c.warmup_us = 0.0;
    c.measure_us = duration + 200'000.0;  // replay fully and drain
    c.policy.paradigm = o.paradigm;
    c.policy.locking = o.locking;
    c.policy.ips = o.ips;
    c.adaptive_hybrid = o.adaptive;
    const StreamSet replay = makeTraceStreams(replayed, duration);
    const RunMetrics m = runOnce(c, model, replay);
    std::printf("%-20s %10.1f %10.1f %10.1f\n", o.label, m.mean_delay_us, m.p95_delay_us,
                m.p99_delay_us);
    if (m.mean_delay_us < best) {
      best = m.mean_delay_us;
      best_label = o.label;
    }
  }
  std::printf("\nbest configuration on this trace: %s (%.1f us mean delay)\n", best_label, best);
  return 0;
}
