// parallel_stack_runtime — the REAL stack on REAL threads.
//
// Everything else in this repository simulates the multiprocessor; this
// example runs the actual UDP/IP/FDDI receive path (src/proto) on actual
// worker threads under both paradigms and reports throughput:
//
//  * Locking — one shared stack + mutex, shared work queue;
//  * IPS     — one stack per worker, lock-free rings, hash routing.
//
//   $ ./parallel_stack_runtime [--workers 4] [--frames 200000]
#include <chrono>
#include <cstdio>

#include "proto/stack.hpp"
#include "runtime/engine.hpp"
#include "util/cli.hpp"

using namespace affinity;

namespace {

struct RunResult {
  double frames_per_s;
  EngineStats stats;
};

RunResult runLocking(unsigned workers, int frames,
                     const std::vector<std::vector<std::uint8_t>>& pool) {
  LockingEngine eng(workers, HostConfig{}, 8192);
  eng.openPort(7000, 1u << 20);
  eng.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < frames; ++i)
    eng.submit({pool[static_cast<std::size_t>(i) % pool.size()],
                static_cast<std::uint32_t>(i % 16), {}});
  eng.stop();
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  const EngineStats s = eng.stats();
  if (s.delivered != static_cast<std::uint64_t>(frames))
    std::printf("  (warning: %llu of %d frames delivered)\n",
                static_cast<unsigned long long>(s.delivered), frames);
  return RunResult{frames / dt.count(), s};
}

RunResult runIps(unsigned workers, int frames,
                 const std::vector<std::vector<std::uint8_t>>& pool) {
  IpsEngine eng(workers, HostConfig{}, 8192);
  eng.openPort(7000, 1u << 20);
  eng.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < frames; ++i)
    eng.submit({pool[static_cast<std::size_t>(i) % pool.size()],
                static_cast<std::uint32_t>(i % 16), {}});
  eng.stop();
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return RunResult{frames / dt.count(), eng.stats()};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("parallel_stack_runtime", "real threads through the real protocol stack");
  const int& workers = cli.flag<int>("workers", 4, "worker threads per engine");
  const int& frames = cli.flag<int>("frames", 200'000, "frames to push through each engine");
  cli.parse(argc, argv);

  // Pre-build valid frames for 16 streams.
  std::vector<std::vector<std::uint8_t>> pool;
  const std::vector<std::uint8_t> payload(64, 0x77);
  for (int s = 0; s < 16; ++s) {
    FrameSpec spec;
    spec.dst_port = 7000;
    spec.src_port = static_cast<std::uint16_t>(1000 + s);
    pool.push_back(buildUdpFrame(spec, payload));
  }

  std::printf("host has %u usable CPUs; running %d workers, %d frames per engine\n\n",
              availableCpus(), workers, frames);
  const RunResult lk = runLocking(static_cast<unsigned>(workers), frames, pool);
  std::printf("  Locking (shared stack + mutex): %10.0f frames/s   lat p50 %.1f us, p99 %.1f us\n",
              lk.frames_per_s, lk.stats.latency_p50_us, lk.stats.latency_p99_us);
  const RunResult ips = runIps(static_cast<unsigned>(workers), frames, pool);
  std::printf("  IPS (stack per worker, no locks): %8.0f frames/s   lat p50 %.1f us, p99 %.1f us\n",
              ips.frames_per_s, ips.stats.latency_p50_us, ips.stats.latency_p99_us);
  std::printf("\nIPS/Locking throughput ratio: %.2fx", ips.frames_per_s / lk.frames_per_s);
  if (availableCpus() == 1)
    std::printf("  (single-CPU host: expect ~1x; the contrast needs real parallelism)");
  std::printf("\n");
  return 0;
}
