// histogram.hpp — fixed-resolution log-linear histogram with quantiles.
//
// Packet delays span several orders of magnitude across the arrival-rate
// sweeps, so a log-spaced histogram gives useful quantile resolution
// everywhere without per-sample storage.
#pragma once

#include <cstdint>
#include <vector>

namespace affinity {

/// Histogram over (0, +inf) with logarithmically spaced bucket boundaries:
/// `buckets_per_decade` buckets per factor of 10, covering [min_value,
/// min_value * 10^decades). Values below the range land in an underflow
/// bucket, values above in an overflow bucket. Quantiles are estimated by
/// linear interpolation within a bucket.
class Histogram {
 public:
  Histogram(double min_value, int decades, int buckets_per_decade);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }

  /// Quantile q in [0, 1]; returns 0 for an empty histogram. q=1 returns an
  /// upper bound of the max's bucket.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double mean() const noexcept { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

  /// Number of samples that fell above the histogram range (diagnostic; a
  /// large overflow count means the range should be widened).
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  /// Merges another histogram with identical bucket configuration (used to
  /// combine per-worker histograms; aborts on mismatched configuration).
  void merge(const Histogram& other);

 private:
  [[nodiscard]] double bucketLow(std::size_t i) const noexcept;

  double min_value_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace affinity
