#include "stats/time_weighted.hpp"

namespace affinity {

void TimeWeighted::set(double t, double level) noexcept {
  if (!started_) {
    started_ = true;
    start_t_ = t;
  } else if (t > last_t_) {
    area_ += level_ * (t - last_t_);
  }
  last_t_ = t;
  level_ = level;
}

double TimeWeighted::average(double t_end) const noexcept {
  if (!started_ || t_end <= start_t_) return 0.0;
  double area = area_;
  if (t_end > last_t_) area += level_ * (t_end - last_t_);
  return area / (t_end - start_t_);
}

void TimeWeighted::resetAt(double t) noexcept {
  area_ = 0.0;
  start_t_ = t;
  if (t > last_t_) last_t_ = t;
}

}  // namespace affinity
