// batch_means.hpp — confidence intervals for steady-state simulation output.
//
// Observations from one simulation run are autocorrelated, so a naive
// t-interval on per-packet delays is too narrow. The method of batch means
// groups consecutive observations into batches large enough that batch
// averages are approximately independent, then forms a t-interval over the
// batch averages.
#pragma once

#include <cstdint>
#include <vector>

namespace affinity {

/// Fixed-batch-size batch-means estimator.
class BatchMeans {
 public:
  /// `batch_size` consecutive observations form one batch.
  explicit BatchMeans(std::uint64_t batch_size);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t batchCount() const noexcept { return static_cast<std::uint64_t>(batches_.size()); }
  [[nodiscard]] double mean() const noexcept;

  /// Half-width of the two-sided confidence interval over batch means at the
  /// given level (0.90, 0.95, or 0.99; others fall back to 0.95). Returns
  /// +inf with fewer than 2 complete batches.
  [[nodiscard]] double halfWidth(double level = 0.95) const noexcept;

 private:
  std::uint64_t batch_size_;
  std::uint64_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  std::vector<double> batches_;
};

/// Two-sided Student-t critical value t_{dof, (1+level)/2}; tabulated for
/// small dof, normal approximation above. Exposed for tests.
double studentTCritical(std::uint64_t dof, double level) noexcept;

}  // namespace affinity
