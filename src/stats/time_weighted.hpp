// time_weighted.hpp — time-averaged piecewise-constant quantities.
//
// Used for queue lengths and busy-processor counts: the estimator integrates
// the level over simulated time.
#pragma once

namespace affinity {

/// Time average of a piecewise-constant signal. Call set(t, level) at each
/// change; average(t_end) integrates up to t_end.
class TimeWeighted {
 public:
  /// Records that the signal changed to `level` at time `t` (non-decreasing).
  void set(double t, double level) noexcept;

  /// Adds `delta` to the current level at time `t`.
  void adjust(double t, double delta) noexcept { set(t, level_ + delta); }

  [[nodiscard]] double level() const noexcept { return level_; }

  /// Time average over [start, t_end] where `start` was the first set() time
  /// (or 0 if resetAt was used).
  [[nodiscard]] double average(double t_end) const noexcept;

  /// Discards accumulated area and restarts integration at time `t`
  /// (used to discard the warmup transient).
  void resetAt(double t) noexcept;

 private:
  double level_ = 0.0;
  double last_t_ = 0.0;
  double start_t_ = 0.0;
  double area_ = 0.0;
  bool started_ = false;
};

}  // namespace affinity
