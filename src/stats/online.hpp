// online.hpp — single-pass summary statistics (Welford's algorithm).
#pragma once

#include <cstdint>
#include <limits>

namespace affinity {

/// Numerically stable running mean / variance / min / max.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction form of
  /// Welford / Chan et al.).
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace affinity
