#include "stats/batch_means.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace affinity {

namespace {
// t critical values, two-sided, levels 0.90 / 0.95 / 0.99, dof 1..30.
constexpr double kT90[30] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
                             1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
                             1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
                             1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr double kT95[30] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
                             2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
                             2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
                             2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
constexpr double kT99[30] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
                             3.250,  3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
                             2.898,  2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
                             2.787,  2.779, 2.771, 2.763, 2.756, 2.750};
}  // namespace

double studentTCritical(std::uint64_t dof, double level) noexcept {
  if (dof == 0) return std::numeric_limits<double>::infinity();
  const double* table = kT95;
  double z = 1.960;
  if (level == 0.90) {
    table = kT90;
    z = 1.645;
  } else if (level == 0.99) {
    table = kT99;
    z = 2.576;
  }
  if (dof <= 30) return table[dof - 1];
  return z;
}

BatchMeans::BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size) {
  AFF_CHECK(batch_size > 0);
}

void BatchMeans::add(double x) noexcept {
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    batches_.push_back(batch_sum_ / static_cast<double>(batch_size_));
    batch_sum_ = 0.0;
    in_batch_ = 0;
  }
}

double BatchMeans::mean() const noexcept {
  // Include the partial batch so mean() matches the plain sample mean.
  double sum = batch_sum_;
  std::uint64_t n = in_batch_;
  for (double b : batches_) {
    sum += b * static_cast<double>(batch_size_);
    n += batch_size_;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double BatchMeans::halfWidth(double level) const noexcept {
  const std::size_t k = batches_.size();
  if (k < 2) return std::numeric_limits<double>::infinity();
  double mean = 0.0;
  for (double b : batches_) mean += b;
  mean /= static_cast<double>(k);
  double ss = 0.0;
  for (double b : batches_) ss += (b - mean) * (b - mean);
  const double var = ss / static_cast<double>(k - 1);
  const double t = studentTCritical(k - 1, level);
  return t * std::sqrt(var / static_cast<double>(k));
}

}  // namespace affinity
