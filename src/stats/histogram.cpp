#include "stats/histogram.hpp"

#include <cmath>

#include "util/check.hpp"

namespace affinity {

Histogram::Histogram(double min_value, int decades, int buckets_per_decade)
    : min_value_(min_value),
      log_min_(std::log10(min_value)),
      inv_log_step_(buckets_per_decade),
      log_step_(1.0 / buckets_per_decade),
      buckets_(static_cast<std::size_t>(decades) * buckets_per_decade, 0) {
  AFF_CHECK(min_value > 0.0);
  AFF_CHECK(decades > 0 && buckets_per_decade > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  sum_ += x;
  if (!(x >= min_value_)) {  // also catches NaN
    ++underflow_;
    return;
  }
  const double pos = (std::log10(x) - log_min_) * inv_log_step_;
  const auto idx = static_cast<std::size_t>(pos);
  if (idx >= buckets_.size()) {
    ++overflow_;
    return;
  }
  ++buckets_[idx];
}

void Histogram::merge(const Histogram& other) {
  AFF_CHECK(buckets_.size() == other.buckets_.size());
  AFF_CHECK(min_value_ == other.min_value_ && log_step_ == other.log_step_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
}

double Histogram::bucketLow(std::size_t i) const noexcept {
  return std::pow(10.0, log_min_ + static_cast<double>(i) * log_step_);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return min_value_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cum + static_cast<double>(buckets_[i]);
    if (target <= next && buckets_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(buckets_[i]);
      const double lo = bucketLow(i);
      const double hi = bucketLow(i + 1);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bucketLow(buckets_.size());  // all remaining mass is overflow
}

}  // namespace affinity
