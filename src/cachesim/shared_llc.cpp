#include "cachesim/shared_llc.hpp"

#include "util/check.hpp"

namespace affinity {

SharedLlcSystem::SharedLlcSystem(const MachineParams& machine, unsigned procs)
    : machine_(machine),
      llc_(machine.llc),
      llc_accesses_(procs, 0),
      llc_misses_(procs, 0) {
  AFF_CHECK(machine.llc.size_bytes > 0 && procs > 0);
  priv_.reserve(procs);
  for (unsigned p = 0; p < procs; ++p) priv_.push_back(std::make_unique<Hierarchy>(machine));
}

SharedLlcSystem::Outcome SharedLlcSystem::access(unsigned proc, std::uint64_t addr,
                                                 RefKind kind) {
  AFF_DCHECK(proc < priv_.size());
  const Hierarchy::Outcome o = priv_[proc]->access(addr, kind);
  Outcome out{o.cycles, o.l1_miss, o.l2_miss, false};
  if (o.l2_miss) {
    // The private hierarchy charged l2_miss_cycles for the L2→LLC hop;
    // an LLC miss additionally pays the LLC→memory fill.
    ++llc_accesses_[proc];
    const CacheLevel::Result r = llc_.access(addr, kind == RefKind::kStore);
    if (!r.hit) {
      ++llc_misses_[proc];
      out.llc_miss = true;
      out.cycles += machine_.llc_miss_cycles;
    }
  }
  return out;
}

void SharedLlcSystem::resetStats() noexcept {
  for (auto& h : priv_) h->resetStats();
  llc_.resetStats();
  for (auto& c : llc_accesses_) c = 0;
  for (auto& c : llc_misses_) c = 0;
}

}  // namespace affinity
