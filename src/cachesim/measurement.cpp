#include "cachesim/measurement.hpp"

#include "cachesim/coherence.hpp"

namespace affinity {

MeasurementHarness::MeasurementHarness(MachineParams machine, ProtocolLayout layout,
                                       ProtocolTraceParams params, std::uint64_t seed)
    : machine_(machine), gen_(layout, params), seed_(seed) {
  Rng rng(seed_);
  // Two packets of the same stream: one to warm, one to time. Different
  // packet-buffer slots, so header references behave identically (the timed
  // packet's buffer is always uncached, as for freshly-DMA'd data).
  gen_.receivePacket(/*stream=*/0, /*pkt_seq=*/0, rng, warm_trace_);
  gen_.receivePacket(/*stream=*/0, /*pkt_seq=*/1, rng, measure_trace_);
}

double MeasurementHarness::replay(Hierarchy& h, const std::vector<MemRef>& trace) const {
  double cycles = 0.0;
  for (const MemRef& r : trace) cycles += h.access(r.addr, r.kind).cycles;
  return cycles / machine_.clock_hz * 1e6;
}

void MeasurementHarness::warm(Hierarchy& h) const {
  // The two packet traces cover slightly different parts of the code /
  // shared / stream regions (different branches, hash probes), so warming
  // must include the measured packet's own protocol references — as the
  // paper does by running the same packet repeatedly. Its packet *buffer*
  // is then re-cooled: the timed packet always arrives as fresh DMA data.
  replay(h, warm_trace_);
  replay(h, measure_trace_);
  replay(h, measure_trace_);
  const auto& lay = gen_.layout();
  invalidateRegion(h, lay.pktBase(1), lay.pkt_bytes_each);
}

void MeasurementHarness::invalidateRegion(Hierarchy& h, std::uint64_t lo, std::uint64_t bytes) {
  const std::uint32_t step = h.machine().l1d.line_bytes;
  for (std::uint64_t a = lo; a < lo + bytes; a += step) h.invalidateLine(a);
}

void MeasurementHarness::invalidateRegionL1(Hierarchy& h, std::uint64_t lo, std::uint64_t bytes) {
  const std::uint32_t step = h.machine().l1d.line_bytes;
  for (std::uint64_t a = lo; a < lo + bytes; a += step) h.invalidateL1Line(a);
}

MeasuredParams::ComponentPenalty MeasurementHarness::measureComponent(std::uint64_t lo,
                                                                      std::uint64_t bytes,
                                                                      double t_warm_us) const {
  MeasuredParams::ComponentPenalty p;
  {
    Hierarchy h(machine_);
    warm(h);
    invalidateRegionL1(h, lo, bytes);
    p.l1_us = replay(h, measure_trace_) - t_warm_us;
  }
  {
    Hierarchy h(machine_);
    warm(h);
    invalidateRegion(h, lo, bytes);
    p.full_us = replay(h, measure_trace_) - t_warm_us;
  }
  if (p.l1_us < 0.0) p.l1_us = 0.0;
  if (p.full_us < p.l1_us) p.full_us = p.l1_us;
  return p;
}

MeasuredParams MeasurementHarness::measure() const {
  MeasuredParams out;
  const auto& lay = gen_.layout();

  {  // t_warm
    Hierarchy h(machine_);
    warm(h);
    out.t_warm_us = replay(h, measure_trace_);
  }
  {  // t_l1cold: footprint in L2 only
    Hierarchy h(machine_);
    warm(h);
    h.flushL1();
    out.t_l1cold_us = replay(h, measure_trace_);
  }
  {  // t_cold
    Hierarchy h(machine_);
    out.t_cold_us = replay(h, measure_trace_);
  }

  out.code = measureComponent(lay.code_base, lay.code_bytes, out.t_warm_us);
  out.shared = measureComponent(lay.shared_base, lay.shared_bytes, out.t_warm_us);
  out.stream = measureComponent(lay.streamBase(0), lay.stream_bytes_each, out.t_warm_us);

  out.reload.t_warm_us = out.t_warm_us;
  out.reload.dl1_us = out.t_l1cold_us - out.t_warm_us;
  out.reload.dl2_us = out.t_cold_us - out.t_l1cold_us;

  const double l1_total = out.code.l1_us + out.shared.l1_us + out.stream.l1_us;
  if (l1_total > 0.0) {
    out.shares.l1_code = out.code.l1_us / l1_total;
    out.shares.l1_shared = out.shared.l1_us / l1_total;
    out.shares.l1_stream = out.stream.l1_us / l1_total;
  }
  const double l2_total = out.code.l2_us() + out.shared.l2_us() + out.stream.l2_us();
  if (l2_total > 0.0) {
    out.shares.l2_code = out.code.l2_us() / l2_total;
    out.shares.l2_shared = out.shared.l2_us() / l2_total;
    out.shares.l2_stream = out.stream.l2_us() / l2_total;
  }
  return out;
}

MeasurementHarness::MigrationTimes MeasurementHarness::measureMigration() const {
  MigrationTimes out;
  const auto replayOn = [this](CoherentSystem& sys, unsigned proc,
                               const std::vector<MemRef>& trace) {
    double cycles = 0.0;
    for (const MemRef& r : trace) cycles += sys.access(proc, r.addr, r.kind).cycles;
    return cycles / machine_.clock_hz * 1e6;
  };
  {
    CoherentSystem sys(machine_, 2);
    replayOn(sys, 0, warm_trace_);
    replayOn(sys, 0, measure_trace_);
    replayOn(sys, 0, measure_trace_);
    out.t_same_proc_us = replayOn(sys, 0, measure_trace_);
  }
  {
    CoherentSystem sys(machine_, 2);
    replayOn(sys, 0, warm_trace_);
    replayOn(sys, 0, measure_trace_);
    replayOn(sys, 0, measure_trace_);  // state warm and partly dirty on P0
    out.t_other_proc_us = replayOn(sys, 1, measure_trace_);
  }
  {
    CoherentSystem sys(machine_, 2);
    out.t_cold_us = replayOn(sys, 1, measure_trace_);
  }
  return out;
}

void MeasurementHarness::ageWith(Hierarchy& h, double x_us, Rng& rng) const {
  const double refs = x_us * machine_.refsPerMicrosecond();
  BackgroundTraceGenerator bg;
  std::vector<MemRef> trace;
  bg.generate(static_cast<std::uint64_t>(refs), rng, trace);
  for (const MemRef& r : trace) h.access(r.addr, r.kind);
}

double MeasurementHarness::measureAged(double x_us) const {
  Hierarchy h(machine_);
  warm(h);
  Rng rng(seed_ ^ 0xabcdef);
  ageWith(h, x_us, rng);
  return replay(h, measure_trace_);
}

MeasurementHarness::DisplacedFractions MeasurementHarness::displacedAfter(double x_us) const {
  Hierarchy h(machine_);
  warm(h);
  const auto& lay = gen_.layout();
  const std::uint64_t lo = lay.code_base;
  const std::uint64_t hi = lay.streamBase(0) + lay.stream_bytes_each;
  const double l1_before = static_cast<double>(h.l1i().residentWithin(lo, hi) +
                                               h.l1d().residentWithin(lo, hi));
  const double l2_before = static_cast<double>(h.l2().residentWithin(lo, hi));
  Rng rng(seed_ ^ 0x123457);
  ageWith(h, x_us, rng);
  const double l1_after = static_cast<double>(h.l1i().residentWithin(lo, hi) +
                                              h.l1d().residentWithin(lo, hi));
  const double l2_after = static_cast<double>(h.l2().residentWithin(lo, hi));
  DisplacedFractions f;
  if (l1_before > 0) f.l1 = 1.0 - l1_after / l1_before;
  if (l2_before > 0) f.l2 = 1.0 - l2_after / l2_before;
  return f;
}

}  // namespace affinity
