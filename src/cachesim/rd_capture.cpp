#include "cachesim/rd_capture.hpp"

#include <map>
#include <tuple>
#include <utility>

#include "util/check.hpp"
#include "util/mutex.hpp"

namespace affinity {

// ---------------------------------------------------------------------------
// RdMonitor

RdMonitor::RdMonitor(std::uint32_t line_bytes, RdHistogram* hist, FootprintCurve* curve)
    : line_bytes_(line_bytes), hist_(hist), curve_(curve) {
  AFF_CHECK(line_bytes_ > 0);
  fenwick_.reserve(1024);
}

void RdMonitor::setMark(std::uint64_t pos, int delta) noexcept {
  for (std::uint64_t i = pos + 1; i <= fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i - 1] += delta;
  }
}

std::uint64_t RdMonitor::marksAfter(std::uint64_t pos) const noexcept {
  // prefix(pos+1) counts marks at indices <= pos; the rest are after it.
  std::int64_t prefix = 0;
  for (std::uint64_t i = pos + 1; i > 0; i -= i & (~i + 1)) prefix += fenwick_[i - 1];
  return marks_ - static_cast<std::uint64_t>(prefix);
}

void RdMonitor::observe(std::uint64_t addr) {
  const std::uint64_t line = addr / line_bytes_;
  if (hist_ == nullptr) {
    // Footprint-only monitor: no stack-distance bookkeeping needed.
    last_pos_.try_emplace(line, time_);
    ++time_;
    maybeCheckpoint();
    return;
  }
  if (fenwick_.size() <= time_) {
    // A Fenwick node at index i summarizes (i - lowbit(i), i]; nodes past
    // the old size must include older marks, so zero-growing the array
    // would corrupt prefix sums. Rebuild from the live marks instead (one
    // mark per tracked line — O(lines · log n) per doubling, amortized
    // negligible).
    fenwick_.assign(fenwick_.empty() ? 1024 : fenwick_.size() * 2, 0);
    for (const auto& [l, pos] : last_pos_) setMark(pos, +1);
  }
  const auto [it, inserted] = last_pos_.try_emplace(line, time_);
  if (inserted) {
    hist_->addCold();
  } else {
    // Marks strictly after the previous access are lines touched since —
    // each marked exactly once at its own last access: the stack distance.
    hist_->add(marksAfter(it->second));
    setMark(it->second, -1);
    --marks_;
    it->second = time_;
  }
  setMark(time_, +1);
  ++marks_;
  ++time_;
  maybeCheckpoint();
}

void RdMonitor::maybeCheckpoint() {
  if (curve_ == nullptr || time_ < next_checkpoint_) return;
  curve_->addSample(time_, distinctLines());
  // Geometric spacing, ~8 checkpoints per octave (matches the histogram's
  // resolution).
  next_checkpoint_ += std::max<std::uint64_t>(1, next_checkpoint_ / 8);
}

void RdMonitor::finish() {
  if (curve_ == nullptr) return;
  if (curve_->empty() ||
      curve_->samples().back().first < time_) {
    if (time_ > 0) curve_->addSample(time_, distinctLines());
  }
  curve_->setCap(distinctLines());
}

// ---------------------------------------------------------------------------
// RdProfileBuilder

RdProfileBuilder::RdProfileBuilder(std::string name, const MachineParams& machine)
    : ifetch_(machine.l1i.line_bytes, &profile_.ifetch, nullptr),
      data_(machine.l1d.line_bytes, &profile_.data, nullptr),
      unified_(machine.l2.line_bytes, &profile_.unified, &profile_.fp_l2),
      l1_all_(machine.l1d.line_bytes, nullptr, &profile_.fp_l1) {
  profile_.name = std::move(name);
  profile_.l1_line_bytes = machine.l1d.line_bytes;
  profile_.l2_line_bytes = machine.l2.line_bytes;
}

void RdProfileBuilder::feed(const MemRef& ref) {
  ++profile_.total_refs;
  if (ref.kind == RefKind::kIFetch) {
    ++profile_.ifetch_refs;
    ifetch_.observe(ref.addr);
  } else {
    data_.observe(ref.addr);
  }
  unified_.observe(ref.addr);
  l1_all_.observe(ref.addr);
}

RdProfile RdProfileBuilder::finish() {
  ifetch_.finish();
  data_.finish();
  unified_.finish();
  l1_all_.finish();
  return std::move(profile_);
}

// ---------------------------------------------------------------------------
// capture entry points

RdProfile captureFromTrace(const MachineParams& machine, const std::string& name,
                           const std::vector<MemRef>& refs) {
  RdProfileBuilder b(name, machine);
  b.feed(refs);
  return b.finish();
}

RdProfile captureProtocolRdProfile(const MachineParams& machine, const ProtocolLayout& layout,
                                   const ProtocolTraceParams& params, unsigned streams,
                                   unsigned packets, std::uint64_t seed) {
  AFF_CHECK(streams > 0);
  ProtocolTraceGenerator gen(layout, params);
  RdProfileBuilder b("protocol", machine);
  Rng rng(seed);
  std::vector<MemRef> pkt;
  pkt.reserve(gen.refsPerPacket() + 16);
  for (unsigned p = 0; p < packets; ++p) {
    pkt.clear();
    gen.receivePacket(p % streams, p, rng, pkt);
    b.feed(pkt);
  }
  return b.finish();
}

RdProfile captureBackgroundRdProfile(const MachineParams& machine, std::uint64_t refs,
                                     std::uint64_t seed) {
  BackgroundTraceGenerator gen;
  RdProfileBuilder b("background", machine);
  Rng rng(seed);
  std::vector<MemRef> chunk;
  constexpr std::uint64_t kChunk = 16 * 1024;
  for (std::uint64_t done = 0; done < refs; done += kChunk) {
    chunk.clear();
    gen.generate(std::min(kChunk, refs - done), rng, chunk);
    b.feed(chunk);
  }
  return b.finish();
}

std::shared_ptr<const RdCacheModel> cachedDefaultRdModel(const MachineParams& machine,
                                                         const RdCaptureParams& capture) {
  using Key = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t, unsigned,
                         unsigned, std::uint64_t, std::uint64_t, unsigned, std::uint64_t>;
  const Key key{machine.l1i.size_bytes, machine.l1d.size_bytes, machine.l2.size_bytes,
                machine.llc.size_bytes, capture.profile_streams, capture.profile_packets,
                capture.profile_bg_refs, capture.profile_seed, capture.co_runners,
                static_cast<std::uint64_t>(capture.protocol_duty * 1e6)};
  static Mutex mu;
  static std::map<Key, std::shared_ptr<const RdCacheModel>>* cache =
      new std::map<Key, std::shared_ptr<const RdCacheModel>>();
  {
    MutexLock lock(mu);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  // Capture outside the lock (the pass takes tens of milliseconds); racing
  // duplicate captures are deterministic and identical, and first-insert
  // wins below, so every concurrent caller converges on one instance
  // (pinned by rd_model_test's memoization test).
  RdProfile proto = captureProtocolRdProfile(
      machine, ProtocolLayout::standard(), ProtocolTraceParams{}, capture.profile_streams,
      capture.profile_packets, capture.profile_seed);
  std::uint64_t bg_seed_state = capture.profile_seed + 1;
  RdProfile bg = captureBackgroundRdProfile(machine, capture.profile_bg_refs,
                                            splitmix64(bg_seed_state));
  auto model = std::make_shared<const RdCacheModel>(machine, std::move(proto), std::move(bg),
                                                    capture.co_runners, capture.protocol_duty);
  MutexLock lock(mu);
  return cache->emplace(key, std::move(model)).first->second;
}

}  // namespace affinity
