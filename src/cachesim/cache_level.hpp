// cache_level.hpp — one set-associative, write-back, LRU cache level.
//
// Addresses are byte addresses; the cache operates at line granularity.
// Set count and line size must be powers of two (true of the modeled
// hardware and asserted at construction).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/machine.hpp"
#include "util/check.hpp"

namespace affinity {

/// A single cache array with LRU replacement and write-back dirty tracking.
class CacheLevel {
 public:
  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    [[nodiscard]] double missRate() const noexcept {
      return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
    }
  };

  /// Outcome of one access.
  struct Result {
    bool hit = false;
    bool evicted_valid = false;          ///< a valid line was displaced
    std::uint64_t evicted_line_addr = 0; ///< line address of the victim (if any)
  };

  explicit CacheLevel(CacheLevelParams params);

  /// Performs a read (`is_write == false`) or write access; allocates on
  /// miss (write-allocate).
  Result access(std::uint64_t addr, bool is_write);

  /// True if the line containing `addr` is resident.
  [[nodiscard]] bool contains(std::uint64_t addr) const noexcept;

  /// Removes the line containing `addr` if resident; returns whether it was.
  bool invalidate(std::uint64_t addr) noexcept;

  /// Invalidates the whole array (models a cache flush).
  void flushAll() noexcept;

  /// Number of valid lines (diagnostics / tests).
  [[nodiscard]] std::uint64_t residentLineCount() const noexcept;

  /// Number of valid lines whose address is in [lo, hi) — used by the
  /// measurement harness to observe how much of a footprint survives.
  [[nodiscard]] std::uint64_t residentWithin(std::uint64_t lo, std::uint64_t hi) const noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void resetStats() noexcept { stats_ = Stats{}; }
  [[nodiscard]] const CacheLevelParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t lineAddr(std::uint64_t addr) const noexcept {
    return addr >> line_shift_ << line_shift_;
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheLevelParams params_;
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::vector<Line> lines_;  // [set][way] flattened
  std::uint32_t line_shift_ = 0;
  std::uint64_t lru_clock_ = 0;
  Stats stats_;
};

}  // namespace affinity
