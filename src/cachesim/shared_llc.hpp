// shared_llc.hpp — N private hierarchies over one shared last-level cache.
//
// The trace-driven ground truth for the "2020s topology": each processor
// keeps its private L1I/L1D/L2 (cachesim/hierarchy.hpp, inclusion enforced
// within the private levels), and private-L2 misses fall through to a
// single shared CacheLevel. The LLC is non-inclusive of the private levels
// (the common modern arrangement), so no back-invalidation crosses the
// shared boundary and per-processor occupancy is purely LRU competition —
// exactly the regime the reuse-distance occupancy solver
// (RdCacheModel::solveOccupancy) models analytically. rd_model_test pins
// the two against each other.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cachesim/hierarchy.hpp"

namespace affinity {

/// N-processor shared-LLC system. Not thread-safe (trace replay is serial).
class SharedLlcSystem {
 public:
  /// `machine.llc.size_bytes` must be > 0.
  SharedLlcSystem(const MachineParams& machine, unsigned procs);

  struct Outcome {
    double cycles = 0.0;
    bool l1_miss = false;
    bool l2_miss = false;
    bool llc_miss = false;
  };

  /// One reference by processor `proc`.
  Outcome access(unsigned proc, std::uint64_t addr, RefKind kind);

  [[nodiscard]] unsigned procs() const noexcept { return static_cast<unsigned>(priv_.size()); }
  [[nodiscard]] const Hierarchy& hierarchy(unsigned proc) const noexcept { return *priv_[proc]; }
  [[nodiscard]] const CacheLevel& llc() const noexcept { return llc_; }
  [[nodiscard]] const MachineParams& machine() const noexcept { return machine_; }

  /// Per-processor LLC accesses/misses (the LLC level's own Stats aggregate
  /// all processors; occupancy validation needs the split).
  [[nodiscard]] std::uint64_t llcAccesses(unsigned proc) const noexcept {
    return llc_accesses_[proc];
  }
  [[nodiscard]] std::uint64_t llcMisses(unsigned proc) const noexcept {
    return llc_misses_[proc];
  }

  /// Lines currently resident in the LLC within [lo, hi) — occupancy probe
  /// for the partitioning differential.
  [[nodiscard]] std::uint64_t llcResidentWithin(std::uint64_t lo, std::uint64_t hi) const {
    return llc_.residentWithin(lo, hi);
  }

  void resetStats() noexcept;

 private:
  MachineParams machine_;
  std::vector<std::unique_ptr<Hierarchy>> priv_;
  CacheLevel llc_;
  std::vector<std::uint64_t> llc_accesses_;
  std::vector<std::uint64_t> llc_misses_;
};

}  // namespace affinity
