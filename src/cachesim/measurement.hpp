// measurement.hpp — the paper's §4 experiments, replayed on the simulated
// memory hierarchy.
//
// The paper parameterizes its analytic model with packet execution times
// measured on the SGI Challenge under controlled cache states:
//
//   t_warm    — protocol footprint resident in L1 and L2
//   t_l1cold  — footprint evicted from L1 but resident in L2
//   t_cold    — footprint resident in neither (paper: 284.3 µs)
//
// and isolates the individual components of affinity-based overhead by
// selectively invalidating one region (code / shared data / stream state)
// at a time. This harness reproduces that methodology against `cachesim`,
// yielding the ReloadParams and FootprintShares consumed by ExecTimeModel.
#pragma once

#include "cache/exec_time.hpp"
#include "cachesim/hierarchy.hpp"
#include "cachesim/trace.hpp"

namespace affinity {

/// Output of the measurement experiments.
struct MeasuredParams {
  ReloadParams reload;
  FootprintShares shares;
  double t_warm_us = 0.0;
  double t_l1cold_us = 0.0;
  double t_cold_us = 0.0;
  /// Per-component penalties over t_warm (µs): `l1` from invalidating the
  /// region in L1 only; `full` from invalidating it at both levels. The L2
  /// contribution is full - l1.
  struct ComponentPenalty {
    double l1_us = 0.0;
    double full_us = 0.0;
    [[nodiscard]] double l2_us() const noexcept { return full_us - l1_us; }
  };
  ComponentPenalty code;
  ComponentPenalty shared;
  ComponentPenalty stream;
};

/// Runs controlled cache-state experiments on one simulated hierarchy.
class MeasurementHarness {
 public:
  MeasurementHarness(MachineParams machine, ProtocolLayout layout, ProtocolTraceParams params,
                     std::uint64_t seed = 42);

  /// Full experiment suite: warm / L1-cold / cold plus per-component
  /// selective invalidation.
  [[nodiscard]] MeasuredParams measure() const;

  /// Packet execution time after the caches aged under `x_us` microseconds
  /// of background (non-protocol) activity. Used to validate the analytic
  /// F1/F2 interpolation against direct simulation.
  [[nodiscard]] double measureAged(double x_us) const;

  /// Fractions of the warmed protocol footprint displaced from L1D and L2
  /// after `x_us` of background activity (direct observation, for comparing
  /// with FlushModel::f1/f2).
  struct DisplacedFractions {
    double l1 = 0.0;
    double l2 = 0.0;
  };
  [[nodiscard]] DisplacedFractions displacedAfter(double x_us) const;

  /// Stream-migration experiment on the coherent multiprocessor: processor 0
  /// processes a stream's packets (warming and *dirtying* its state), then
  /// the next packet of the same stream executes on processor 1. Validates
  /// the simulation model's assumption that a migrated component is at least
  /// fully cold (write-invalidate plus cache-to-cache intervention costs).
  struct MigrationTimes {
    double t_same_proc_us = 0.0;   ///< next packet stays on processor 0
    double t_other_proc_us = 0.0;  ///< next packet migrates to processor 1
    double t_cold_us = 0.0;        ///< reference: nothing cached anywhere
  };
  [[nodiscard]] MigrationTimes measureMigration() const;

  [[nodiscard]] const ProtocolTraceGenerator& generator() const noexcept { return gen_; }
  [[nodiscard]] const MachineParams& machine() const noexcept { return machine_; }

 private:
  /// Replays `trace` on `h`, returning execution time in µs.
  double replay(Hierarchy& h, const std::vector<MemRef>& trace) const;
  /// Warms `h`: replays the warm packet and the measured packet's protocol
  /// footprint, then re-cools the measured packet's buffer (fresh DMA data).
  void warm(Hierarchy& h) const;
  /// Invalidates every line of [lo, lo+bytes) in `h` (both levels).
  static void invalidateRegion(Hierarchy& h, std::uint64_t lo, std::uint64_t bytes);
  /// Invalidates every L1 line of [lo, lo+bytes), leaving L2 copies.
  static void invalidateRegionL1(Hierarchy& h, std::uint64_t lo, std::uint64_t bytes);
  /// Penalty over t_warm from cooling one region at L1 only and at both
  /// levels (two separate experiments).
  MeasuredParams::ComponentPenalty measureComponent(std::uint64_t lo, std::uint64_t bytes,
                                                    double t_warm_us) const;
  /// Runs background references worth `x_us` of execution on `h`.
  void ageWith(Hierarchy& h, double x_us, Rng& rng) const;

  MachineParams machine_;
  ProtocolTraceGenerator gen_;
  std::vector<MemRef> warm_trace_;     ///< packet used for warming (slot 0)
  std::vector<MemRef> measure_trace_;  ///< packet used for timing (slot 1)
  std::uint64_t seed_;
};

}  // namespace affinity
