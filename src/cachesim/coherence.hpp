// coherence.hpp — multiple processors' hierarchies with write-invalidate
// coherence at L2-line granularity.
//
// A line directory tracks which processors may cache each L2 line and which
// (if any) holds it dirty. Stores invalidate remote copies; loads of a
// remotely-dirty line pay the cache-to-cache intervention penalty and
// downgrade the owner to shared. The directory is a *superset*
// approximation: silent local evictions do not notify it, so a remote
// "present" bit may be stale — this only causes harmless extra invalidate
// probes and slightly pessimistic intervention charging, and keeps the
// simulator simple (the Challenge's snoopy bus has no directory either).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cachesim/hierarchy.hpp"

namespace affinity {

/// P coherent cache hierarchies over a shared memory.
class CoherentSystem {
 public:
  CoherentSystem(const MachineParams& machine, unsigned num_procs);

  /// One reference by processor `proc`; returns its cost in cycles.
  Hierarchy::Outcome access(unsigned proc, std::uint64_t addr, RefKind kind);

  [[nodiscard]] unsigned numProcs() const noexcept { return static_cast<unsigned>(procs_.size()); }
  [[nodiscard]] Hierarchy& proc(unsigned i) noexcept { return *procs_[i]; }
  [[nodiscard]] const Hierarchy& proc(unsigned i) const noexcept { return *procs_[i]; }

  /// Number of invalidation messages sent so far (diagnostic).
  [[nodiscard]] std::uint64_t invalidationsSent() const noexcept { return invalidations_; }
  /// Number of cache-to-cache interventions (dirty-remote fills).
  [[nodiscard]] std::uint64_t interventions() const noexcept { return interventions_; }

 private:
  struct LineState {
    std::uint32_t present_mask = 0;  ///< processors that may cache the line
    int dirty_owner = -1;            ///< processor holding it modified, or -1
  };

  MachineParams machine_;
  std::vector<std::unique_ptr<Hierarchy>> procs_;
  std::unordered_map<std::uint64_t, LineState> directory_;
  std::uint64_t line_mask_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t interventions_ = 0;
};

}  // namespace affinity
