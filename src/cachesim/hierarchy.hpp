// hierarchy.hpp — one processor's two-level cache hierarchy.
//
// Split L1 I/D over a unified L2, mirroring the R4400/Challenge arrangement.
// Inclusion is enforced (an L2 eviction back-invalidates the L1s) so that
// invalidating a line at L2 is sufficient for coherence.
//
// The hierarchy charges cycles per access: cycles_per_ref for the access
// itself (pipeline + L1 hit), plus the L1 and L2 miss penalties from
// MachineParams. Writebacks are not separately charged (the Challenge's
// writeback buffers mostly hide them; constant costs would not change any
// comparison in the study).
#pragma once

#include <cstdint>

#include "cachesim/cache_level.hpp"

namespace affinity {

/// Kind of memory reference.
enum class RefKind : std::uint8_t { kIFetch, kLoad, kStore };

/// One processor's L1I + L1D + unified L2.
class Hierarchy {
 public:
  explicit Hierarchy(const MachineParams& machine);

  /// Result of one reference.
  struct Outcome {
    double cycles = 0.0;
    bool l1_miss = false;
    bool l2_miss = false;
  };

  /// Performs one reference and returns its cost. `external_dirty` should be
  /// true when coherence knows another processor holds the line dirty (adds
  /// the intervention penalty on an L2 miss; the coherence layer decides).
  Outcome access(std::uint64_t addr, RefKind kind, bool external_dirty = false);

  /// Coherence back-invalidate of one line (and its L1 copies).
  void invalidateLine(std::uint64_t addr) noexcept;

  /// Invalidates one L1-sized line in the L1 caches only (L2 copy kept) —
  /// used by the measurement harness to cool a region at L1 granularity.
  void invalidateL1Line(std::uint64_t addr) noexcept;

  /// Flushes L1 caches only (measurement harness: "L1 cold, L2 warm").
  void flushL1() noexcept;

  /// Flushes the whole hierarchy ("everything cold").
  void flushAll() noexcept;

  [[nodiscard]] const CacheLevel& l1i() const noexcept { return l1i_; }
  [[nodiscard]] const CacheLevel& l1d() const noexcept { return l1d_; }
  [[nodiscard]] const CacheLevel& l2() const noexcept { return l2_; }
  [[nodiscard]] CacheLevel& l2() noexcept { return l2_; }
  [[nodiscard]] const MachineParams& machine() const noexcept { return machine_; }

  void resetStats() noexcept;

  /// Converts an access cost in cycles to microseconds at the machine clock.
  [[nodiscard]] double cyclesToUs(double cycles) const noexcept {
    return cycles / machine_.clock_hz * 1e6;
  }

 private:
  MachineParams machine_;
  CacheLevel l1i_;
  CacheLevel l1d_;
  CacheLevel l2_;
};

}  // namespace affinity
