#include "cachesim/coherence.hpp"

namespace affinity {

CoherentSystem::CoherentSystem(const MachineParams& machine, unsigned num_procs)
    : machine_(machine) {
  AFF_CHECK(num_procs >= 1 && num_procs <= 32);
  procs_.reserve(num_procs);
  for (unsigned i = 0; i < num_procs; ++i) procs_.push_back(std::make_unique<Hierarchy>(machine));
  line_mask_ = ~static_cast<std::uint64_t>(machine.l2.line_bytes - 1);
}

Hierarchy::Outcome CoherentSystem::access(unsigned proc, std::uint64_t addr, RefKind kind) {
  AFF_DCHECK(proc < procs_.size());
  const std::uint64_t line = addr & line_mask_;
  LineState& st = directory_[line];
  const bool external_dirty = st.dirty_owner >= 0 && st.dirty_owner != static_cast<int>(proc);
  if (external_dirty) ++interventions_;

  const auto out = procs_[proc]->access(addr, kind, external_dirty);

  const std::uint32_t self_bit = 1u << proc;
  if (kind == RefKind::kStore) {
    // Invalidate all remote copies.
    std::uint32_t remote = st.present_mask & ~self_bit;
    for (unsigned j = 0; remote != 0; ++j, remote >>= 1) {
      if (remote & 1u) {
        procs_[j]->invalidateLine(line);
        ++invalidations_;
      }
    }
    st.present_mask = self_bit;
    st.dirty_owner = static_cast<int>(proc);
  } else {
    if (external_dirty) st.dirty_owner = -1;  // owner downgraded to shared
    st.present_mask |= self_bit;
  }
  return out;
}

}  // namespace affinity
