#include "cachesim/cache_level.hpp"

namespace affinity {

CacheLevel::CacheLevel(CacheLevelParams params)
    : params_(params),
      sets_(params.sets()),
      ways_(params.associativity),
      lines_(sets_ * ways_) {
  AFF_CHECK(params_.size_bytes > 0 && params_.line_bytes > 0);
  AFF_CHECK(params_.associativity >= 1);
  AFF_CHECK((params_.line_bytes & (params_.line_bytes - 1)) == 0);
  AFF_CHECK(sets_ > 0);
  AFF_CHECK((sets_ & (sets_ - 1)) == 0);
  line_shift_ = 0;
  while ((1u << line_shift_) < params_.line_bytes) ++line_shift_;
}

CacheLevel::Result CacheLevel::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t tag = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(tag & (sets_ - 1));
  Line* base = &lines_[set * ways_];
  // LRU: stamp via monotone counter.
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = ++lru_clock_;
      l.dirty = l.dirty || is_write;
      return Result{true, false, 0};
    }
  }
  ++stats_.misses;
  // Victim: invalid way if any, else LRU.
  Line* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (!l.valid) {
      victim = &l;
      break;
    }
    if (l.lru < victim->lru) victim = &l;
  }
  Result r{false, false, 0};
  if (victim->valid) {
    ++stats_.evictions;
    r.evicted_valid = true;
    r.evicted_line_addr = victim->tag << line_shift_;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru = ++lru_clock_;
  return r;
}

bool CacheLevel::contains(std::uint64_t addr) const noexcept {
  const std::uint64_t tag = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(tag & (sets_ - 1));
  const Line* base = &lines_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

bool CacheLevel::invalidate(std::uint64_t addr) noexcept {
  const std::uint64_t tag = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(tag & (sets_ - 1));
  Line* base = &lines_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.valid = false;
      l.dirty = false;
      return true;
    }
  }
  return false;
}

void CacheLevel::flushAll() noexcept {
  for (Line& l : lines_) {
    l.valid = false;
    l.dirty = false;
  }
}

std::uint64_t CacheLevel::residentLineCount() const noexcept {
  std::uint64_t n = 0;
  for (const Line& l : lines_)
    if (l.valid) ++n;
  return n;
}

std::uint64_t CacheLevel::residentWithin(std::uint64_t lo, std::uint64_t hi) const noexcept {
  std::uint64_t n = 0;
  for (const Line& l : lines_) {
    if (!l.valid) continue;
    const std::uint64_t a = l.tag << line_shift_;
    if (a >= lo && a < hi) ++n;
  }
  return n;
}

}  // namespace affinity
