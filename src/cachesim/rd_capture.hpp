// rd_capture.hpp — profiling pass: reference traces → RdProfile.
//
// The reuse-distance model (cache/reuse.hpp) is only as good as its
// profiles, and the profiles are captured here — from the *same* trace
// generators the differential cachesim replays, so the two sides of
// tests/rd_model_test.cpp disagree only where the model approximates, never
// because they saw different traces.
//
// Stack distances are exact (Bennett–Kruskal): a Fenwick tree over access
// indices holds one mark per currently-tracked line at its last access
// position; the reuse distance of a re-access is the number of marks after
// that position. O(log n) per reference, deterministic, and independent of
// any capture parallelism — profiles serialize byte-identically however
// many SweepRunner jobs produced them (pinned by rd_model_test).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/reuse.hpp"
#include "cachesim/trace.hpp"

namespace affinity {

/// Exact LRU stack-distance monitor for one line-granularity view of a
/// reference stream.
class RdMonitor {
 public:
  /// Either sink may be null (footprint-only or histogram-only monitors).
  explicit RdMonitor(std::uint32_t line_bytes, RdHistogram* hist, FootprintCurve* curve);

  /// Observes one reference; records its stack distance into the histogram
  /// and advances the footprint checkpoints.
  void observe(std::uint64_t addr);

  /// Seals the footprint curve: emits a final checkpoint and sets the cap
  /// to the number of distinct lines seen.
  void finish();

  [[nodiscard]] std::uint64_t refs() const noexcept { return time_; }
  [[nodiscard]] std::uint64_t distinctLines() const noexcept {
    return static_cast<std::uint64_t>(last_pos_.size());
  }

 private:
  [[nodiscard]] std::uint64_t marksAfter(std::uint64_t pos) const noexcept;
  void setMark(std::uint64_t pos, int delta) noexcept;
  void maybeCheckpoint();

  std::uint32_t line_bytes_;
  RdHistogram* hist_;
  FootprintCurve* curve_;                                   // may be null
  std::unordered_map<std::uint64_t, std::uint64_t> last_pos_;  // line -> last access index
  std::vector<std::int32_t> fenwick_;                       // marks over access indices
  std::uint64_t time_ = 0;
  std::uint64_t marks_ = 0;
  std::uint64_t next_checkpoint_ = 64;
};

/// Feeds a reference stream through the three profile views (I and D at L1
/// line granularity, unified at L2 granularity) and both footprint curves.
class RdProfileBuilder {
 public:
  RdProfileBuilder(std::string name, const MachineParams& machine);

  void feed(const MemRef& ref);
  void feed(const std::vector<MemRef>& refs) {
    for (const MemRef& r : refs) feed(r);
  }

  /// Seals and returns the profile. The builder is spent afterwards.
  [[nodiscard]] RdProfile finish();

 private:
  RdProfile profile_;
  RdMonitor ifetch_;
  RdMonitor data_;
  RdMonitor unified_;
  RdMonitor l1_all_;  ///< footprint-only: whole stream at L1 line granularity
};

/// One-shot capture of an arbitrary trace.
[[nodiscard]] RdProfile captureFromTrace(const MachineParams& machine, const std::string& name,
                                         const std::vector<MemRef>& refs);

/// Captures the protocol workload: `packets` packet executions round-robin
/// across `streams` streams (arrival interleaving is the differential
/// battery's job; round-robin is the steady symmetric mix the analytic
/// model assumes). Deterministic in `seed`.
[[nodiscard]] RdProfile captureProtocolRdProfile(const MachineParams& machine,
                                                 const ProtocolLayout& layout,
                                                 const ProtocolTraceParams& params,
                                                 unsigned streams, unsigned packets,
                                                 std::uint64_t seed);

/// Captures the displacing background workload over `refs` references.
[[nodiscard]] RdProfile captureBackgroundRdProfile(const MachineParams& machine,
                                                   std::uint64_t refs, std::uint64_t seed);

/// Parameters of a default (scenario-path) RD model capture.
struct RdCaptureParams {
  unsigned profile_streams = 8;
  unsigned profile_packets = 64;
  std::uint64_t profile_bg_refs = 300'000;
  std::uint64_t profile_seed = 42;
  unsigned co_runners = 1;
  double protocol_duty = 0.5;
};

/// Builds (and memoizes, keyed by machine geometry + capture parameters)
/// the RD model the scenario path uses for `cache.model = reuse`. The cache
/// keeps repeated buildScenario calls from re-running the profiling pass.
[[nodiscard]] std::shared_ptr<const RdCacheModel> cachedDefaultRdModel(
    const MachineParams& machine, const RdCaptureParams& capture);

}  // namespace affinity
