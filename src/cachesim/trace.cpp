#include "cachesim/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace affinity {

std::uint32_t ProtocolTraceGenerator::refsPerPacket() const noexcept {
  std::uint32_t n = 0;
  for (unsigned l = 0; l < 3; ++l) n += params_.ifetch_per_layer[l] + params_.data_per_layer[l];
  return n;
}

void ProtocolTraceGenerator::layerTrace(unsigned layer, std::uint64_t stream,
                                        std::uint64_t pkt_seq, Rng& rng,
                                        std::vector<MemRef>& out) const {
  // Each layer owns a third of the code segment and of the shared data.
  const std::uint64_t code_seg = layout_.code_bytes / 3;
  const std::uint64_t code_lo = layout_.code_base + layer * code_seg;
  const std::uint64_t shared_seg = layout_.shared_bytes / 3;
  const std::uint64_t shared_lo = layout_.shared_base + layer * shared_seg;
  const std::uint64_t stream_lo = layout_.streamBase(stream);
  const std::uint64_t pkt_lo = layout_.pktBase(pkt_seq);

  const std::uint32_t n_ifetch = params_.ifetch_per_layer[layer];
  const std::uint32_t n_data = params_.data_per_layer[layer];

  // Interleave: basic blocks of sequential ifetches with data references
  // sprinkled between them. The code walk restarts from pseudo-random block
  // starts to model loops/branches while covering most of the segment.
  std::uint32_t emitted_i = 0;
  std::uint32_t emitted_d = 0;
  std::uint64_t pc = code_lo;
  std::uint32_t header_refs = std::min<std::uint32_t>(n_data / 8 + 2, n_data);

  while (emitted_i < n_ifetch || emitted_d < n_data) {
    // One basic block: 6..18 instructions.
    const std::uint32_t block = 6 + static_cast<std::uint32_t>(rng.uniform_u64(13));
    for (std::uint32_t k = 0; k < block && emitted_i < n_ifetch; ++k) {
      out.push_back(MemRef{pc, RefKind::kIFetch});
      pc += 4;
      if (pc >= code_lo + code_seg) pc = code_lo;
      ++emitted_i;
    }
    // Branch: mostly forward/backward within the segment (loops reuse code).
    if (rng.bernoulli(0.35)) pc = code_lo + (rng.uniform_u64(code_seg / 64) * 64);

    // Data references for this block.
    const std::uint32_t d = std::min<std::uint32_t>(1 + static_cast<std::uint32_t>(rng.uniform_u64(4)),
                                                    n_data - emitted_d);
    for (std::uint32_t k = 0; k < d; ++k) {
      const bool is_store = rng.bernoulli(params_.store_fraction);
      const RefKind kind = is_store ? RefKind::kStore : RefKind::kLoad;
      std::uint64_t addr;
      if (header_refs > 0) {
        // Header examination: sequential loads at the front of the packet.
        addr = pkt_lo + (n_data / 8 + 2 - header_refs) * 8;
        out.push_back(MemRef{addr, RefKind::kLoad});
        --header_refs;
        ++emitted_d;
        continue;
      }
      if (rng.bernoulli(params_.stream_fraction[layer])) {
        // PCB / session / socket-buffer access: wide (the session structure,
        // reassembly map and socket buffer are all touched per packet), with
        // a hot-field bias toward the front.
        const std::uint64_t span = rng.bernoulli(0.5) ? layout_.stream_bytes_each / 2
                                                      : layout_.stream_bytes_each;
        addr = stream_lo + (rng.uniform_u64(span / 8) * 8);
      } else {
        // Shared structures (demux hash heads, driver queue, counters) are
        // hot and concentrated: most probes hit the same few lines.
        const std::uint64_t span =
            rng.bernoulli(0.7) ? shared_seg / 4 : shared_seg;
        addr = shared_lo + (rng.uniform_u64(span / 8) * 8);
      }
      out.push_back(MemRef{addr, kind});
      ++emitted_d;
    }
    if (emitted_i >= n_ifetch && emitted_d < n_data) {
      // Drain remaining data refs without code.
      continue;
    }
  }
}

void ProtocolTraceGenerator::receivePacket(std::uint64_t stream, std::uint64_t pkt_seq, Rng& rng,
                                           std::vector<MemRef>& out) const {
  out.reserve(out.size() + refsPerPacket());
  for (unsigned layer = 0; layer < 3; ++layer) layerTrace(layer, stream, pkt_seq, rng, out);
}

void ProtocolTraceGenerator::touchPayload(std::uint64_t stream, std::uint64_t pkt_seq,
                                          std::uint32_t payload_bytes,
                                          std::vector<MemRef>& out) const {
  const std::uint64_t pkt_lo = layout_.pktBase(pkt_seq);
  const std::uint64_t buf_lo = layout_.streamBase(stream) + layout_.stream_bytes_each / 2;
  const std::uint32_t n = payload_bytes / 8;  // one dword per 8 bytes
  out.reserve(out.size() + 2ull * n);
  for (std::uint32_t k = 0; k < n; ++k) {
    out.push_back(MemRef{pkt_lo + 8ull * k, RefKind::kLoad});
    out.push_back(MemRef{buf_lo + 8ull * (k % (layout_.stream_bytes_each / 16)), RefKind::kStore});
  }
}

void BackgroundTraceGenerator::generate(std::uint64_t n, Rng& rng, std::vector<MemRef>& out) {
  out.reserve(out.size() + n);
  for (std::uint64_t k = 0; k < n; ++k) {
    std::uint64_t offset;
    const double u = rng.uniform();
    if (u < 0.20) {
      // Sequential drift (new data): strong spatial locality.
      frontier_ = (frontier_ + 8) % ws_bytes_;
      offset = frontier_;
    } else if (u < 0.72) {
      // Tight temporal reuse of the recent past (within ~96 KB behind the
      // frontier) — the dominant component, as in the SST fit's strong
      // temporal-locality exponent.
      const std::uint64_t window = std::min<std::uint64_t>(ws_bytes_, 96ull << 10);
      const std::uint64_t back = rng.uniform_u64(window / 8) * 8;
      offset = (frontier_ + ws_bytes_ - back) % ws_bytes_;
    } else if (u < 0.94) {
      // Medium-range reuse (sub-MB): inter-task working sets.
      const std::uint64_t window = std::min<std::uint64_t>(ws_bytes_, 768ull << 10);
      const std::uint64_t back = rng.uniform_u64(window / 8) * 8;
      offset = (frontier_ + ws_bytes_ - back) % ws_bytes_;
    } else {
      // Long-range reuse across the whole working set.
      offset = rng.uniform_u64(ws_bytes_ / 8) * 8;
    }
    const RefKind kind = (u < 0.55) ? (rng.bernoulli(0.3) ? RefKind::kStore : RefKind::kLoad)
                                    : RefKind::kIFetch;
    out.push_back(MemRef{base_ + offset, kind});
  }
}

}  // namespace affinity
