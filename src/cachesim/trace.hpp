// trace.hpp — synthetic memory-reference traces.
//
// Two generators:
//
//  * ProtocolTraceGenerator — emits the reference stream of one receive-side
//    UDP/IP/FDDI packet execution against a fixed address-space layout
//    (code, writable shared stack data, per-stream PCB/session state,
//    per-packet buffer). The shape follows the x-kernel fast path: for each
//    layer, a code walk with loops, loads of layer-shared structures, header
//    loads from the packet buffer, and PCB/demux accesses. The reference
//    count is sized so an all-hits execution matches the measured t_warm
//    scale (~2,700 references ≈ 135 µs at 5 cycles/ref, 100 MHz).
//
//  * BackgroundTraceGenerator — emits the displacing non-protocol workload:
//    a stream mixing a drifting sequential component with Zipf-like reuse of
//    a large working set, approximating the locality the SST power law
//    summarizes. The measurement harness uses it to age caches for a chosen
//    duration.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "util/rng.hpp"

namespace affinity {

/// One memory reference.
struct MemRef {
  std::uint64_t addr;
  RefKind kind;
};

/// Byte layout of the protocol implementation in the shared address space.
///
/// Bases are staggered modulo both the 16 KB L1 size and the 1 MB L2 size so
/// the regions do not alias onto the same cache sets (a linker would achieve
/// the same by laying them out contiguously): the D-cache users (shared,
/// stream, packet) occupy disjoint L1 index ranges, and all regions occupy
/// disjoint L2 index ranges.
struct ProtocolLayout {
  std::uint64_t code_base = 0x0100'0000;       ///< L1 idx 0, L2 idx 0
  std::uint64_t code_bytes = 24 * 1024;        ///< fast-path text + read-only tables
                                               ///< (exceeds the 16 KB L1I, as the
                                               ///< x-kernel's text does)
  std::uint64_t shared_base = 0x0204'0000;     ///< L1 idx 0, L2 idx 256K
  std::uint64_t shared_bytes = 5 * 1024;       ///< driver queues, IP tables, demux hash
  std::uint64_t stream_base = 0x0308'1800;     ///< L1 idx 6K, L2 idx ~518K
  std::uint64_t stream_bytes_each = 6 * 1024;  ///< PCB + session + socket buffer
  std::uint64_t stream_stride = 16 * 1024;     ///< spacing between stream areas
  std::uint64_t pkt_base = 0x060c'3400;        ///< L1 idx 13K, L2 idx ~781K
  std::uint64_t pkt_bytes_each = 4 * 1024;
  std::uint64_t pkt_slots = 32;  ///< ring of buffers; 32*4K stays below the L2 wrap

  [[nodiscard]] std::uint64_t streamBase(std::uint64_t s) const noexcept {
    return stream_base + s * stream_stride;
  }
  [[nodiscard]] std::uint64_t pktBase(std::uint64_t slot) const noexcept {
    return pkt_base + (slot % pkt_slots) * pkt_bytes_each;
  }

  static ProtocolLayout standard() noexcept { return ProtocolLayout{}; }
};

/// Knobs for the per-packet reference stream.
struct ProtocolTraceParams {
  // Instruction references per layer (driver/FDDI, IP, UDP + socket deliver).
  std::uint32_t ifetch_per_layer[3] = {560, 480, 620};
  // Data references per layer (shared structures + headers + PCB).
  std::uint32_t data_per_layer[3] = {320, 260, 420};
  double store_fraction = 0.28;  ///< of data references that are writes
  // Fraction of each layer's data references that touch per-stream state
  // (layer 0/1 demux lightly; UDP/socket heavily).
  double stream_fraction[3] = {0.10, 0.20, 0.80};
};

/// Emits packet-execution reference streams (deterministic per (stream,
/// sequence, seed)).
class ProtocolTraceGenerator {
 public:
  ProtocolTraceGenerator(ProtocolLayout layout, ProtocolTraceParams params) noexcept
      : layout_(layout), params_(params) {}

  /// Appends the references of one received packet of `stream` to `out`.
  void receivePacket(std::uint64_t stream, std::uint64_t pkt_seq, Rng& rng,
                     std::vector<MemRef>& out) const;

  /// Appends data-touching references (copy/checksum over `payload_bytes` of
  /// packet data, sequential loads + stores to a stream buffer).
  void touchPayload(std::uint64_t stream, std::uint64_t pkt_seq, std::uint32_t payload_bytes,
                    std::vector<MemRef>& out) const;

  [[nodiscard]] const ProtocolLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const ProtocolTraceParams& params() const noexcept { return params_; }

  /// Total references per packet (sum of the per-layer counts).
  [[nodiscard]] std::uint32_t refsPerPacket() const noexcept;

 private:
  void layerTrace(unsigned layer, std::uint64_t stream, std::uint64_t pkt_seq, Rng& rng,
                  std::vector<MemRef>& out) const;

  ProtocolLayout layout_;
  ProtocolTraceParams params_;
};

/// Non-protocol (background) workload reference generator.
class BackgroundTraceGenerator {
 public:
  /// `working_set_bytes` bounds the region the workload wanders over.
  explicit BackgroundTraceGenerator(std::uint64_t base = 0x4000'0000,
                                    std::uint64_t working_set_bytes = 64ull << 20) noexcept
      : base_(base), ws_bytes_(working_set_bytes) {}

  /// Appends `n` references to `out`.
  void generate(std::uint64_t n, Rng& rng, std::vector<MemRef>& out);

 private:
  std::uint64_t base_;
  std::uint64_t ws_bytes_;
  std::uint64_t frontier_ = 0;  ///< sequential drift position (bytes)
};

}  // namespace affinity
