#include "cachesim/hierarchy.hpp"

namespace affinity {

Hierarchy::Hierarchy(const MachineParams& machine)
    : machine_(machine), l1i_(machine.l1i), l1d_(machine.l1d), l2_(machine.l2) {}

Hierarchy::Outcome Hierarchy::access(std::uint64_t addr, RefKind kind, bool external_dirty) {
  Outcome out;
  out.cycles = machine_.cycles_per_ref;
  CacheLevel& l1 = (kind == RefKind::kIFetch) ? l1i_ : l1d_;
  const bool is_write = kind == RefKind::kStore;
  const auto r1 = l1.access(addr, is_write);
  if (r1.hit) return out;
  out.l1_miss = true;
  out.cycles += machine_.l1_miss_cycles;
  const auto r2 = l2_.access(addr, is_write);
  if (!r2.hit) {
    out.l2_miss = true;
    out.cycles += external_dirty ? machine_.intervention_cycles : machine_.l2_miss_cycles;
    if (r2.evicted_valid) {
      // Enforce inclusion: every L1 line covered by the evicted (wider) L2
      // line leaves the L1s too.
      const std::uint64_t lo = r2.evicted_line_addr;
      for (std::uint64_t a = lo; a < lo + machine_.l2.line_bytes;
           a += machine_.l1d.line_bytes) {
        l1i_.invalidate(a);
        l1d_.invalidate(a);
      }
    }
  }
  return out;
}

void Hierarchy::invalidateLine(std::uint64_t addr) noexcept {
  // L2 lines are wider than L1 lines; invalidate every L1 line covered by
  // the L2 line.
  const std::uint64_t l2_line = l2_.lineAddr(addr);
  const std::uint32_t l1_line = machine_.l1d.line_bytes;
  for (std::uint64_t a = l2_line; a < l2_line + machine_.l2.line_bytes; a += l1_line) {
    l1i_.invalidate(a);
    l1d_.invalidate(a);
  }
  l2_.invalidate(l2_line);
}

void Hierarchy::invalidateL1Line(std::uint64_t addr) noexcept {
  l1i_.invalidate(addr);
  l1d_.invalidate(addr);
}

void Hierarchy::flushL1() noexcept {
  l1i_.flushAll();
  l1d_.flushAll();
}

void Hierarchy::flushAll() noexcept {
  flushL1();
  l2_.flushAll();
}

void Hierarchy::resetStats() noexcept {
  l1i_.resetStats();
  l1d_.resetStats();
  l2_.resetStats();
}

}  // namespace affinity
