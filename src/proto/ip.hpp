// ip.hpp — IPv4 receive layer (host fast path).
#pragma once

#include "proto/headers.hpp"
#include "proto/layer.hpp"

namespace affinity {

/// Validates the IPv4 header (checksum, version, length, TTL), rejects
/// fragments to the slow path (counted, dropped here — the paper's fast
/// path excludes reassembly), and demuxes by protocol number to registered
/// upper layers (UDP by default; TCP registrable).
class Ipv4Layer final : public ProtocolLayer {
 public:
  struct Stats {
    std::uint64_t datagrams = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t dropped_checksum = 0;
    std::uint64_t dropped_ttl = 0;
    std::uint64_t dropped_fragment = 0;
    std::uint64_t dropped_not_udp = 0;  ///< no upper layer for the protocol
    std::uint64_t dropped_length = 0;
  };

  /// `local` is this host's address (0 accepts any); `above` gets protocol
  /// 17 (UDP) datagrams (not owned; may be nullptr). `verify_checksum` can
  /// be disabled to model interfaces that checksum in firmware (paper §4
  /// footnote on SGI NFS).
  Ipv4Layer(std::uint32_t local, ProtocolLayer* above, bool verify_checksum = true) noexcept
      : local_(local), verify_checksum_(verify_checksum) {
    if (above != nullptr) registerProtocol(Ipv4Header::kProtoUdp, above);
  }

  /// Registers (or replaces) the upper layer for an IP protocol number.
  void registerProtocol(std::uint8_t protocol, ProtocolLayer* layer) noexcept {
    upper_[protocol] = layer;
  }

  [[nodiscard]] const char* name() const noexcept override { return "ip"; }
  bool receive(Packet& pkt, ReceiveContext& ctx) override;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  std::uint32_t local_;
  bool verify_checksum_;
  ProtocolLayer* upper_[256] = {};
  Stats stats_;
};

}  // namespace affinity
