#include "proto/udp.hpp"

#include "proto/checksum.hpp"

namespace affinity {

bool UdpSession::deliver(std::span<const std::uint8_t> payload) {
  if (count_ >= ring_.size()) {
    ++overflow_;
    return false;
  }
  // assign() into the slot reuses whatever capacity an earlier datagram
  // left there — no allocation once the ring has warmed up.
  ring_[(head_ + count_) % ring_.size()].assign(payload.begin(), payload.end());
  ++count_;
  ++delivered_;
  bytes_ += payload.size();
  return true;
}

bool UdpSession::read(std::vector<std::uint8_t>& out) {
  if (count_ == 0) return false;
  std::vector<std::uint8_t>& slot = ring_[head_];
  out.assign(slot.begin(), slot.end());
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return true;
}

UdpSession& UdpLayer::open(std::uint16_t port, std::size_t queue_capacity) {
  auto [it, inserted] = sessions_.insert_or_assign(port, UdpSession(port, queue_capacity));
  (void)inserted;
  return it->second;
}

bool UdpLayer::close(std::uint16_t port) { return sessions_.erase(port) == 1; }

UdpSession* UdpLayer::find(std::uint16_t port) noexcept {
  auto it = sessions_.find(port);
  return it == sessions_.end() ? nullptr : &it->second;
}

bool UdpLayer::receive(Packet& pkt, ReceiveContext& ctx) {
  ++stats_.datagrams;
  const auto header = UdpHeader::decode(pkt.bytes());
  if (!header || header->length < UdpHeader::kSize || header->length > pkt.size()) {
    ++stats_.dropped_malformed;
    ctx.drop = DropReason::kUdpMalformed;
    return false;
  }
  if (verify_checksum_ && header->checksum != 0) {
    // Pseudo-header: src, dst, zero|proto, udp length.
    ChecksumAccumulator acc;
    acc.addWord(static_cast<std::uint16_t>(ctx.src_addr >> 16));
    acc.addWord(static_cast<std::uint16_t>(ctx.src_addr));
    acc.addWord(static_cast<std::uint16_t>(local_addr_ >> 16));
    acc.addWord(static_cast<std::uint16_t>(local_addr_));
    acc.addWord(Ipv4Header::kProtoUdp);
    acc.addWord(header->length);
    acc.add(pkt.bytes().first(header->length));
    if (acc.finish() != 0) {
      ++stats_.dropped_checksum;
      ctx.drop = DropReason::kUdpBadChecksum;
      return false;
    }
  }
  UdpSession* session = find(header->dst_port);
  if (session == nullptr) {
    ++stats_.dropped_no_session;
    ctx.drop = DropReason::kUdpNoSession;
    return false;
  }
  if (!pkt.truncate(header->length) || !pkt.pull(UdpHeader::kSize)) {
    ++stats_.dropped_malformed;
    ctx.drop = DropReason::kUdpMalformed;
    return false;
  }
  if (!session->deliver(pkt.bytes())) {
    ++stats_.dropped_session_full;
    ctx.drop = DropReason::kSessionFull;
    return false;
  }
  ctx.dst_port = header->dst_port;
  ctx.payload_bytes = static_cast<std::uint16_t>(pkt.size());
  ++stats_.delivered;
  return true;
}

}  // namespace affinity
