// send.hpp — the send-side UDP/IP/FDDI path (paper extension i).
//
// Send-side processing builds the frame by *pushing* headers onto the front
// of the packet, layer by layer (the x-kernel's push path), the mirror image
// of the receive side's pulls. Each push function is a real layer
// implementation: it fills its wire header (checksums included) in place.
#pragma once

#include <cstdint>
#include <optional>

#include "proto/headers.hpp"
#include "proto/packet.hpp"

namespace affinity {

/// Addressing for one outgoing datagram.
struct SendContext {
  MacAddr src_mac{};
  MacAddr dst_mac{};
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;
  std::uint16_t ip_id = 0;
  bool udp_checksum = true;
};

/// UDP layer push: prepends the UDP header over the current payload and
/// (optionally) computes the checksum with the IPv4 pseudo-header. False —
/// packet unchanged — when the datagram would overflow the 16-bit UDP
/// length field (caller-supplied payload size is external input, not a
/// program invariant).
[[nodiscard]] bool pushUdp(Packet& pkt, const SendContext& ctx);

/// IPv4 layer push: prepends a 20-byte header (checksum computed) over the
/// current UDP datagram. False — packet unchanged — when the datagram would
/// overflow the 16-bit IP total-length field.
[[nodiscard]] bool pushIp(Packet& pkt, const SendContext& ctx);

/// FDDI MAC/LLC push: prepends the 21-byte FDDI + SNAP header.
void pushFddi(Packet& pkt, const SendContext& ctx);

/// Full send path with per-datagram statistics; produces frames the receive
/// stack accepts.
class UdpSendPath {
 public:
  struct Stats {
    std::uint64_t datagrams = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t oversize = 0;  ///< payloads rejected: exceed 16-bit lengths
  };

  /// Builds a complete frame carrying `payload`; nullopt (counted in
  /// stats().oversize) when the payload cannot fit a UDP/IPv4 datagram.
  std::optional<Packet> send(std::span<const std::uint8_t> payload, const SendContext& ctx);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Stats stats_;
};

}  // namespace affinity
