#include "proto/send.hpp"

#include "proto/checksum.hpp"

namespace affinity {

bool pushUdp(Packet& pkt, const SendContext& ctx) {
  const std::size_t udp_len = UdpHeader::kSize + pkt.size();
  if (udp_len > 0xffff) return false;
  auto header = pkt.push(UdpHeader::kSize);
  UdpHeader h;
  h.src_port = ctx.src_port;
  h.dst_port = ctx.dst_port;
  h.length = static_cast<std::uint16_t>(udp_len);
  h.checksum = 0;
  h.encode(header);
  if (ctx.udp_checksum) {
    ChecksumAccumulator acc;
    acc.addWord(static_cast<std::uint16_t>(ctx.src_ip >> 16));
    acc.addWord(static_cast<std::uint16_t>(ctx.src_ip));
    acc.addWord(static_cast<std::uint16_t>(ctx.dst_ip >> 16));
    acc.addWord(static_cast<std::uint16_t>(ctx.dst_ip));
    acc.addWord(Ipv4Header::kProtoUdp);
    acc.addWord(h.length);
    acc.add(pkt.bytes());  // header now included: cursor is at the UDP header
    std::uint16_t ck = acc.finish();
    if (ck == 0) ck = 0xffff;  // RFC 768: 0 on the wire means "no checksum"
    writeBe16(pkt.mutableBytes(), 6, ck);
  }
  return true;
}

bool pushIp(Packet& pkt, const SendContext& ctx) {
  const std::size_t total = Ipv4Header::kMinSize + pkt.size();
  if (total > 0xffff) return false;
  auto header = pkt.push(Ipv4Header::kMinSize);
  Ipv4Header h;
  h.total_length = static_cast<std::uint16_t>(total);
  h.identification = ctx.ip_id;
  h.ttl = ctx.ttl;
  h.src = ctx.src_ip;
  h.dst = ctx.dst_ip;
  h.encode(header);  // encode() computes the header checksum
  return true;
}

void pushFddi(Packet& pkt, const SendContext& ctx) {
  auto header = pkt.push(FddiHeader::kSize);
  FddiHeader h;
  h.src = ctx.src_mac;
  h.dst = ctx.dst_mac;
  h.encode(header);
}

std::optional<Packet> UdpSendPath::send(std::span<const std::uint8_t> payload,
                                        const SendContext& ctx) {
  Packet pkt = Packet::withHeadroom(FddiHeader::kSize + Ipv4Header::kMinSize + UdpHeader::kSize);
  pkt.append(payload);
  if (!pushUdp(pkt, ctx) || !pushIp(pkt, ctx)) {
    ++stats_.oversize;
    return std::nullopt;
  }
  pushFddi(pkt, ctx);
  ++stats_.datagrams;
  stats_.payload_bytes += payload.size();
  return pkt;
}

}  // namespace affinity
