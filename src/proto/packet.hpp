// packet.hpp — message buffers for the protocol stack.
//
// A Packet owns a flat byte buffer and maintains an x-kernel-style header
// window: layers *pull* their header off the front on receive and *push*
// headers onto the front on send, without copying payload bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace affinity {

/// A network message with pull/push header cursor semantics.
class Packet {
 public:
  Packet() = default;

  /// Creates a packet with `headroom` reserved bytes before an empty body
  /// (send path: payload appended, then headers pushed into headroom).
  static Packet withHeadroom(std::size_t headroom);

  /// Creates a packet holding a received frame (cursor at byte 0).
  static Packet fromFrame(std::span<const std::uint8_t> frame);

  /// Reloads this packet with a received frame, reusing the existing buffer
  /// capacity (cursor back to byte 0). The stacks keep one scratch Packet
  /// and assignFrame() each frame into it, so the receive path stops
  /// allocating once the scratch has grown to the largest frame seen.
  void assignFrame(std::span<const std::uint8_t> frame) {
    data_.assign(frame.begin(), frame.end());
    begin_ = 0;
  }

  /// Bytes remaining from the cursor to the end (header + payload on
  /// receive; payload on send before pushes).
  [[nodiscard]] std::size_t size() const noexcept { return data_.size() - begin_; }

  /// Read-only view from the cursor.
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_.data() + begin_, size()};
  }

  /// Mutable view from the cursor.
  [[nodiscard]] std::span<std::uint8_t> mutableBytes() noexcept {
    return {data_.data() + begin_, size()};
  }

  /// Pulls `n` bytes off the front (receive-side header strip). Returns the
  /// view of the pulled header, or nullopt — cursor unchanged — when fewer
  /// than `n` bytes remain. A short pull is a property of the *input* frame
  /// (truncated on the wire), so it is a recoverable parse error, never an
  /// assertion: layers turn it into a typed DropReason.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> pull(std::size_t n);

  /// Pushes `n` bytes onto the front (send-side header prepend); returns a
  /// mutable view of the new header. Grows the buffer if headroom is short.
  std::span<std::uint8_t> push(std::size_t n);

  /// Appends payload bytes at the tail.
  void append(std::span<const std::uint8_t> payload);

  /// Truncates the packet to `n` bytes from the cursor (drops trailing
  /// padding, e.g. after IP total-length is known). Returns false — packet
  /// unchanged — when `n` exceeds size(): a declared length larger than the
  /// received bytes is a recoverable parse error on adversarial input.
  [[nodiscard]] bool truncate(std::size_t n);

  /// Restores the cursor to byte 0 (whole frame visible again).
  void resetCursor() noexcept { begin_ = 0; }

 private:
  std::vector<std::uint8_t> data_;
  std::size_t begin_ = 0;  ///< cursor: index of first visible byte
};

}  // namespace affinity
