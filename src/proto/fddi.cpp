#include "proto/fddi.hpp"

namespace affinity {

bool FddiLayer::receive(Packet& pkt, ReceiveContext& ctx) {
  ++stats_.frames;
  const auto header = FddiHeader::decode(pkt.bytes());
  if (!header) {
    ++stats_.dropped_malformed;
    ctx.drop = DropReason::kFddiMalformed;
    return false;
  }
  const bool group = (header->dst[0] & 0x01) != 0;  // multicast/broadcast bit
  if (!group && header->dst != local_) {
    ++stats_.dropped_wrong_dest;
    ctx.drop = DropReason::kFddiWrongDest;
    return false;
  }
  if (header->ethertype != FddiHeader::kEtherTypeIpv4) {
    ++stats_.dropped_not_ip;
    ctx.drop = DropReason::kFddiNotIp;
    return false;
  }
  if (!pkt.pull(FddiHeader::kSize)) {
    ++stats_.dropped_malformed;
    ctx.drop = DropReason::kFddiMalformed;
    return false;
  }
  if (!above_->receive(pkt, ctx)) return false;
  ++stats_.delivered;
  return true;
}

}  // namespace affinity
