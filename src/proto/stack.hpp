// stack.hpp — an assembled UDP/IP/FDDI receive stack + frame builder.
//
// ProtocolStack is the unit the paper parallelizes: under Locking there is
// one instance shared by all processors (callers serialize around its shared
// state); under IPS each stack instance is private to a subset of streams.
#pragma once

#include <memory>

#include "proto/fddi.hpp"
#include "proto/ip.hpp"
#include "proto/tcp.hpp"
#include "proto/udp.hpp"

namespace affinity {

/// Host identity for a stack instance.
struct HostConfig {
  MacAddr mac{0x08, 0x00, 0x69, 0x01, 0x02, 0x03};  // SGI OUI, suitably retro
  std::uint32_t ip = 0xc0a80101;                    // 192.168.1.1
  bool verify_ip_checksum = true;
  bool verify_udp_checksum = true;
};

/// One complete receive-side stack: FDDI → IPv4 → UDP → sessions.
class ProtocolStack {
 public:
  explicit ProtocolStack(HostConfig config = HostConfig{});

  // The layers hold raw upward pointers into this object; it must not move.
  ProtocolStack(const ProtocolStack&) = delete;
  ProtocolStack& operator=(const ProtocolStack&) = delete;

  /// Processes one received frame. Returns the context (drop reason, port).
  ReceiveContext receiveFrame(std::span<const std::uint8_t> frame);

  /// Opens a UDP endpoint.
  UdpSession& open(std::uint16_t port, std::size_t queue_capacity = 64) {
    return udp_.open(port, queue_capacity);
  }

  [[nodiscard]] FddiLayer& fddi() noexcept { return fddi_; }
  [[nodiscard]] Ipv4Layer& ip() noexcept { return ip_; }
  [[nodiscard]] UdpLayer& udp() noexcept { return udp_; }
  [[nodiscard]] const HostConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::uint64_t framesReceived() const noexcept { return fddi_.stats().frames; }
  [[nodiscard]] std::uint64_t framesDelivered() const noexcept { return udp_.stats().delivered; }

 private:
  HostConfig config_;
  UdpLayer udp_;
  Ipv4Layer ip_;
  FddiLayer fddi_;
  // Scratch packet reloaded per frame (capacity persists across frames, so
  // the steady-state receive path allocates nothing). Callers already
  // serialize receiveFrame per stack instance — Locking under stack_mu_,
  // IPS by stack-per-worker ownership — so one scratch is safe.
  Packet rx_packet_;
};

/// A receive stack with both UDP and TCP above IP: FDDI → IPv4 → {UDP, TCP}.
class DualProtocolStack {
 public:
  explicit DualProtocolStack(HostConfig config = HostConfig{});

  DualProtocolStack(const DualProtocolStack&) = delete;
  DualProtocolStack& operator=(const DualProtocolStack&) = delete;

  /// Processes one received frame (UDP or TCP).
  ReceiveContext receiveFrame(std::span<const std::uint8_t> frame);

  [[nodiscard]] UdpLayer& udp() noexcept { return udp_; }
  [[nodiscard]] TcpLayer& tcp() noexcept { return tcp_; }
  [[nodiscard]] Ipv4Layer& ip() noexcept { return ip_; }
  [[nodiscard]] FddiLayer& fddi() noexcept { return fddi_; }

 private:
  HostConfig config_;
  UdpLayer udp_;
  TcpLayer tcp_;
  Ipv4Layer ip_;
  FddiLayer fddi_;
  Packet rx_packet_;  // per-frame scratch; see ProtocolStack::rx_packet_
};

/// Parameters for constructing a valid UDP/IP/FDDI frame.
struct FrameSpec {
  MacAddr src_mac{0x08, 0x00, 0x69, 0xaa, 0xbb, 0xcc};
  MacAddr dst_mac{0x08, 0x00, 0x69, 0x01, 0x02, 0x03};
  std::uint32_t src_ip = 0xc0a80102;  // 192.168.1.2
  std::uint32_t dst_ip = 0xc0a80101;
  std::uint16_t src_port = 2049;
  std::uint16_t dst_port = 7000;
  std::uint8_t ttl = 64;
  bool udp_checksum = true;
  std::uint16_t ip_id = 0;
};

/// Builds a complete wire frame carrying `payload` (the send-side encode
/// path; also the test-vector source for the receive side).
std::vector<std::uint8_t> buildUdpFrame(const FrameSpec& spec,
                                        std::span<const std::uint8_t> payload);

}  // namespace affinity
