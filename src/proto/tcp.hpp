// tcp.hpp — TCP receive-side processing with the classic header-prediction
// fast path.
//
// The paper argues its UDP results carry to TCP: "at its most influential
// ... TCP-specific processing only accounts for around 15% of overall packet
// execution time". This layer makes that concrete: a receive-side TCP whose
// common case (established connection, next in-sequence segment, plain
// ACK/PSH flags) is a handful of compares and an append — Van Jacobson
// header prediction — and whose slow path handles connection setup,
// out-of-order segments (reassembly queue), FIN/RST, and duplicates.
//
// Scope (receive side of the paper's setting): passive-open endpoints, data
// flowing toward this host, ACKs generated as descriptors the caller may
// turn into frames via the send path. No retransmission timers (nothing to
// retransmit — we send only ACKs), no congestion control (sender side).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "proto/headers.hpp"
#include "proto/layer.hpp"

namespace affinity {

/// Outgoing ACK request produced by the receiver (the caller owns turning
/// these into frames; in the simulation they are accounted, not transmitted).
struct TcpAckDescriptor {
  std::uint32_t peer_addr = 0;
  std::uint16_t peer_port = 0;
  std::uint16_t local_port = 0;
  std::uint32_t seq = 0;  ///< our sequence number
  std::uint32_t ack = 0;  ///< cumulative ack
  std::uint8_t flags = TcpHeader::kFlagAck;
};

/// One TCP connection's receive state (the PCB).
class TcpSession {
 public:
  enum class State : std::uint8_t {
    kListen,
    kSynReceived,
    kEstablished,
    kCloseWait,  ///< peer sent FIN; we still deliver buffered data
    kClosed,
  };

  struct Stats {
    std::uint64_t segments = 0;
    std::uint64_t fast_path = 0;       ///< header-prediction hits
    std::uint64_t out_of_order = 0;    ///< queued for reassembly
    std::uint64_t duplicates = 0;      ///< wholly below rcv_nxt
    std::uint64_t acks_generated = 0;
    std::uint64_t bytes_delivered = 0;
  };

  TcpSession(std::uint16_t local_port, std::uint32_t peer_addr, std::uint16_t peer_port,
             std::uint32_t iss = 0x1000);

  /// Processes one segment's header + payload. Appends any ACKs to `acks`.
  /// Returns false (with a reason) only for segments that are dropped
  /// outright (bad state, RST'd connection).
  bool segment(const TcpHeader& h, std::span<const std::uint8_t> payload,
               std::vector<TcpAckDescriptor>& acks, DropReason& drop);

  /// Reads in-order received bytes (up to `max`) into `out`; returns count.
  std::size_t read(std::vector<std::uint8_t>& out, std::size_t max = SIZE_MAX);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] std::uint32_t rcvNxt() const noexcept { return rcv_nxt_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t reassemblyDepth() const noexcept { return reassembly_.size(); }
  [[nodiscard]] std::size_t available() const noexcept { return buffer_.size(); }

 private:
  void enqueueAck(std::vector<TcpAckDescriptor>& acks, std::uint8_t flags = TcpHeader::kFlagAck);
  void acceptInOrder(std::span<const std::uint8_t> payload);
  void drainReassembly();

  std::uint16_t local_port_;
  std::uint32_t peer_addr_;
  std::uint16_t peer_port_;
  State state_ = State::kListen;
  std::uint32_t rcv_nxt_ = 0;  ///< next expected sequence number
  std::uint32_t snd_nxt_;      ///< our (ACK-only) sequence number
  std::uint16_t rcv_wnd_ = 32 * 1024;
  std::deque<std::uint8_t> buffer_;              ///< in-order delivered bytes
  std::map<std::uint32_t, std::vector<std::uint8_t>> reassembly_;  ///< seq -> data
  bool ack_pending_ = false;  ///< delayed-ACK state (ack every 2nd segment)
  Stats stats_;
};

/// TCP demux layer: (local port, peer addr, peer port) -> session; ports in
/// listen mode accept new connections.
class TcpLayer final : public ProtocolLayer {
 public:
  struct Stats {
    std::uint64_t segments = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t dropped_checksum = 0;
    std::uint64_t dropped_no_listener = 0;
  };

  explicit TcpLayer(std::uint32_t local_addr, bool verify_checksum = true) noexcept
      : local_addr_(local_addr), verify_checksum_(verify_checksum) {}

  /// Opens a passive listener on `port`.
  void listen(std::uint16_t port) { listeners_.insert(port); }

  /// Finds an established (or in-progress) session; nullptr if none.
  [[nodiscard]] TcpSession* find(std::uint16_t local_port, std::uint32_t peer_addr,
                                 std::uint16_t peer_port) noexcept;

  [[nodiscard]] const char* name() const noexcept override { return "tcp"; }
  bool receive(Packet& pkt, ReceiveContext& ctx) override;

  /// ACKs produced since the last drain (the driver/send path consumes them).
  std::vector<TcpAckDescriptor> drainAcks();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t sessionCount() const noexcept { return sessions_.size(); }

 private:
  struct Key {
    std::uint16_t local_port;
    std::uint32_t peer_addr;
    std::uint16_t peer_port;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t x = (static_cast<std::uint64_t>(k.peer_addr) << 32) |
                        (static_cast<std::uint64_t>(k.local_port) << 16) | k.peer_port;
      x *= 0x9e3779b97f4a7c15ULL;
      return static_cast<std::size_t>(x ^ (x >> 32));
    }
  };

  std::uint32_t local_addr_;
  bool verify_checksum_;
  std::unordered_map<Key, TcpSession, KeyHash> sessions_;
  std::set<std::uint16_t> listeners_;
  std::vector<TcpAckDescriptor> pending_acks_;
  Stats stats_;
};

/// Frame parameters for building TCP test/workload segments.
struct TcpFrameSpec {
  MacAddr src_mac{0x08, 0x00, 0x69, 0xaa, 0xbb, 0xcc};
  MacAddr dst_mac{0x08, 0x00, 0x69, 0x01, 0x02, 0x03};
  std::uint32_t src_ip = 0xc0a80102;
  std::uint32_t dst_ip = 0xc0a80101;
  std::uint16_t src_port = 3000;
  std::uint16_t dst_port = 8000;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = TcpHeader::kFlagAck;
};

/// Builds a complete FDDI/IP/TCP frame (checksummed).
std::vector<std::uint8_t> buildTcpFrame(const TcpFrameSpec& spec,
                                        std::span<const std::uint8_t> payload);

}  // namespace affinity
