// layer.hpp — the protocol-layer framework (x-kernel style).
//
// Layers form a receive chain; each pulls its header off the Packet and
// either hands the rest up or drops with a reason. The framework is
// deliberately minimal: the paper's parallelism is *message-level* (a packet
// traverses the whole stack on one processor in one thread), so no
// layer-to-layer queueing exists.
#pragma once

#include <cstdint>

#include "proto/packet.hpp"

namespace affinity {

/// Why a packet did not reach a session.
enum class DropReason : std::uint8_t {
  kNone = 0,
  kFddiMalformed,
  kFddiWrongDest,
  kFddiNotIp,
  kIpMalformed,
  kIpBadChecksum,
  kIpTtlExpired,
  kIpFragment,   ///< fragments take the slow path; the fast path counts+drops
  kIpNotUdp,
  kIpBadLength,
  kUdpMalformed,
  kUdpBadChecksum,
  kUdpNoSession,
  kSessionFull,
  kTcpMalformed,
  kTcpBadChecksum,
  kTcpNoListener,
  kTcpBadState,
};

/// Number of DropReason values (kNone included) — sizes per-cause counter
/// arrays (EngineStats::dropped_by_reason).
inline constexpr std::size_t kNumDropReasons =
    static_cast<std::size_t>(DropReason::kTcpBadState) + 1;

/// Human-readable name of a drop reason.
const char* dropReasonName(DropReason r) noexcept;

/// Per-receive bookkeeping threaded through the layers.
struct ReceiveContext {
  DropReason drop = DropReason::kNone;
  std::uint16_t dst_port = 0;   ///< filled by UDP on successful demux
  std::uint32_t src_addr = 0;   ///< filled by IP
  std::uint16_t payload_bytes = 0;

  [[nodiscard]] bool dropped() const noexcept { return drop != DropReason::kNone; }
};

/// Interface every layer implements.
class ProtocolLayer {
 public:
  virtual ~ProtocolLayer() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Processes the packet (cursor at this layer's header). Returns true if
  /// the packet was accepted (delivered or passed up); on false, ctx.drop
  /// says why.
  virtual bool receive(Packet& pkt, ReceiveContext& ctx) = 0;
};

}  // namespace affinity
