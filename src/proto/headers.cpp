#include "proto/headers.hpp"

#include "proto/checksum.hpp"
#include "util/check.hpp"

namespace affinity {

std::uint16_t readBe16(std::span<const std::uint8_t> in, std::size_t off) noexcept {
  return static_cast<std::uint16_t>((in[off] << 8) | in[off + 1]);
}

std::uint32_t readBe32(std::span<const std::uint8_t> in, std::size_t off) noexcept {
  return (static_cast<std::uint32_t>(in[off]) << 24) |
         (static_cast<std::uint32_t>(in[off + 1]) << 16) |
         (static_cast<std::uint32_t>(in[off + 2]) << 8) | in[off + 3];
}

void writeBe16(std::span<std::uint8_t> out, std::size_t off, std::uint16_t v) noexcept {
  out[off] = static_cast<std::uint8_t>(v >> 8);
  out[off + 1] = static_cast<std::uint8_t>(v);
}

void writeBe32(std::span<std::uint8_t> out, std::size_t off, std::uint32_t v) noexcept {
  out[off] = static_cast<std::uint8_t>(v >> 24);
  out[off + 1] = static_cast<std::uint8_t>(v >> 16);
  out[off + 2] = static_cast<std::uint8_t>(v >> 8);
  out[off + 3] = static_cast<std::uint8_t>(v);
}

namespace {
constexpr std::uint8_t kSnapDsap = 0xaa;
constexpr std::uint8_t kSnapSsap = 0xaa;
constexpr std::uint8_t kSnapControl = 0x03;
}  // namespace

void FddiHeader::encode(std::span<std::uint8_t> out) const noexcept {
  AFF_DCHECK(out.size() >= kSize);
  out[0] = frame_control;
  for (int i = 0; i < 6; ++i) out[1 + i] = dst[i];
  for (int i = 0; i < 6; ++i) out[7 + i] = src[i];
  out[13] = kSnapDsap;
  out[14] = kSnapSsap;
  out[15] = kSnapControl;
  out[16] = out[17] = out[18] = 0;  // OUI = 00-00-00 (encapsulated ethernet)
  writeBe16(out, 19, ethertype);
}

std::optional<FddiHeader> FddiHeader::decode(std::span<const std::uint8_t> in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  if (in[13] != kSnapDsap || in[14] != kSnapSsap || in[15] != kSnapControl) return std::nullopt;
  FddiHeader h;
  h.frame_control = in[0];
  for (int i = 0; i < 6; ++i) h.dst[i] = in[1 + i];
  for (int i = 0; i < 6; ++i) h.src[i] = in[7 + i];
  h.ethertype = readBe16(in, 19);
  return h;
}

void Ipv4Header::encode(std::span<std::uint8_t> out) const noexcept {
  AFF_DCHECK(out.size() >= headerBytes());
  out[0] = static_cast<std::uint8_t>((version << 4) | ihl);
  out[1] = tos;
  writeBe16(out, 2, total_length);
  writeBe16(out, 4, identification);
  writeBe16(out, 6,
            static_cast<std::uint16_t>((static_cast<std::uint16_t>(flags) << 13) |
                                       (fragment_offset & 0x1fff)));
  out[8] = ttl;
  out[9] = protocol;
  writeBe16(out, 10, 0);  // checksum computed below
  writeBe32(out, 12, src);
  writeBe32(out, 16, dst);
  for (std::size_t i = kMinSize; i < headerBytes(); ++i) out[i] = 0;  // options zeroed
  const std::uint16_t ck = internetChecksum(out.first(headerBytes()));
  writeBe16(out, 10, ck);
}

std::optional<Ipv4Header> Ipv4Header::decode(std::span<const std::uint8_t> in) noexcept {
  if (in.size() < kMinSize) return std::nullopt;
  Ipv4Header h;
  h.version = in[0] >> 4;
  h.ihl = in[0] & 0x0f;
  if (h.ihl < 5) return std::nullopt;
  if (in.size() < h.headerBytes()) return std::nullopt;
  h.tos = in[1];
  h.total_length = readBe16(in, 2);
  h.identification = readBe16(in, 4);
  const std::uint16_t ff = readBe16(in, 6);
  h.flags = static_cast<std::uint8_t>(ff >> 13);
  h.fragment_offset = ff & 0x1fff;
  h.ttl = in[8];
  h.protocol = in[9];
  h.checksum = readBe16(in, 10);
  h.src = readBe32(in, 12);
  h.dst = readBe32(in, 16);
  return h;
}

void TcpHeader::encode(std::span<std::uint8_t> out) const noexcept {
  AFF_DCHECK(out.size() >= headerBytes());
  writeBe16(out, 0, src_port);
  writeBe16(out, 2, dst_port);
  writeBe32(out, 4, seq);
  writeBe32(out, 8, ack);
  out[12] = static_cast<std::uint8_t>(data_offset << 4);
  out[13] = flags;
  writeBe16(out, 14, window);
  writeBe16(out, 16, checksum);
  writeBe16(out, 18, urgent);
  for (std::size_t i = kMinSize; i < headerBytes(); ++i) out[i] = 0;  // options zeroed
}

std::optional<TcpHeader> TcpHeader::decode(std::span<const std::uint8_t> in) noexcept {
  if (in.size() < kMinSize) return std::nullopt;
  TcpHeader h;
  h.src_port = readBe16(in, 0);
  h.dst_port = readBe16(in, 2);
  h.seq = readBe32(in, 4);
  h.ack = readBe32(in, 8);
  h.data_offset = in[12] >> 4;
  if (h.data_offset < 5) return std::nullopt;
  if (in.size() < h.headerBytes()) return std::nullopt;
  h.flags = in[13] & 0x3f;
  h.window = readBe16(in, 14);
  h.checksum = readBe16(in, 16);
  h.urgent = readBe16(in, 18);
  return h;
}

void UdpHeader::encode(std::span<std::uint8_t> out) const noexcept {
  AFF_DCHECK(out.size() >= kSize);
  writeBe16(out, 0, src_port);
  writeBe16(out, 2, dst_port);
  writeBe16(out, 4, length);
  writeBe16(out, 6, checksum);
}

std::optional<UdpHeader> UdpHeader::decode(std::span<const std::uint8_t> in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = readBe16(in, 0);
  h.dst_port = readBe16(in, 2);
  h.length = readBe16(in, 4);
  h.checksum = readBe16(in, 6);
  return h;
}

}  // namespace affinity
