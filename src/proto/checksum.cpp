#include "proto/checksum.hpp"

namespace affinity {

void ChecksumAccumulator::add(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t i = 0;
  if (odd_ && !bytes.empty()) {
    // Complete the previously-dangling byte as the low half of a word.
    sum_ += bytes[0];
    i = 1;
    odd_ = false;
  }
  for (; i + 1 < bytes.size(); i += 2)
    sum_ += static_cast<std::uint16_t>((bytes[i] << 8) | bytes[i + 1]);
  if (i < bytes.size()) {
    sum_ += static_cast<std::uint16_t>(bytes[i] << 8);
    odd_ = true;
  }
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internetChecksum(std::span<const std::uint8_t> bytes) noexcept {
  ChecksumAccumulator acc;
  acc.add(bytes);
  return acc.finish();
}

bool checksumValid(std::span<const std::uint8_t> bytes) noexcept {
  return internetChecksum(bytes) == 0;
}

}  // namespace affinity
