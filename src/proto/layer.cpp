#include "proto/layer.hpp"

namespace affinity {

const char* dropReasonName(DropReason r) noexcept {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kFddiMalformed: return "fddi-malformed";
    case DropReason::kFddiWrongDest: return "fddi-wrong-dest";
    case DropReason::kFddiNotIp: return "fddi-not-ip";
    case DropReason::kIpMalformed: return "ip-malformed";
    case DropReason::kIpBadChecksum: return "ip-bad-checksum";
    case DropReason::kIpTtlExpired: return "ip-ttl-expired";
    case DropReason::kIpFragment: return "ip-fragment";
    case DropReason::kIpNotUdp: return "ip-not-udp";
    case DropReason::kIpBadLength: return "ip-bad-length";
    case DropReason::kUdpMalformed: return "udp-malformed";
    case DropReason::kUdpBadChecksum: return "udp-bad-checksum";
    case DropReason::kUdpNoSession: return "udp-no-session";
    case DropReason::kSessionFull: return "session-full";
    case DropReason::kTcpMalformed: return "tcp-malformed";
    case DropReason::kTcpBadChecksum: return "tcp-bad-checksum";
    case DropReason::kTcpNoListener: return "tcp-no-listener";
    case DropReason::kTcpBadState: return "tcp-bad-state";
  }
  return "unknown";
}

}  // namespace affinity
