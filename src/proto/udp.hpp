// udp.hpp — UDP receive layer with port demux and per-session delivery.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "proto/headers.hpp"
#include "proto/layer.hpp"

namespace affinity {

/// One open UDP endpoint (the PCB + socket receive queue). This is the
/// per-stream state whose cache affinity the paper's policies manage.
///
/// The socket buffer is a fixed ring of byte vectors allocated once at
/// construction; a slot's vector keeps its capacity across reuse, so after
/// the first lap around the ring deliver()/read() perform no allocation —
/// part of the zero-alloc steady-state frame path (util/arena.hpp).
class UdpSession {
 public:
  explicit UdpSession(std::uint16_t port, std::size_t queue_capacity = 64)
      : port_(port), ring_(queue_capacity > 0 ? queue_capacity : 1) {}

  /// Enqueues a received payload; false if the socket buffer is full.
  bool deliver(std::span<const std::uint8_t> payload);

  /// Dequeues the oldest datagram into `out`; false if empty.
  bool read(std::vector<std::uint8_t>& out);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::size_t queued() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t deliveredCount() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t overflowCount() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t bytesDelivered() const noexcept { return bytes_; }

 private:
  std::uint16_t port_;
  std::vector<std::vector<std::uint8_t>> ring_;  // fixed slots; [head_, head_+count_)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t bytes_ = 0;
};

/// UDP layer: optional checksum verification (with IPv4 pseudo-header) and
/// port demux into sessions.
class UdpLayer final : public ProtocolLayer {
 public:
  struct Stats {
    std::uint64_t datagrams = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t dropped_checksum = 0;
    std::uint64_t dropped_no_session = 0;
    std::uint64_t dropped_session_full = 0;
  };

  explicit UdpLayer(std::uint32_t local_addr, bool verify_checksum = true) noexcept
      : local_addr_(local_addr), verify_checksum_(verify_checksum) {}

  /// Opens a session on `port` (replaces any existing one). Returns it.
  UdpSession& open(std::uint16_t port, std::size_t queue_capacity = 64);

  /// Closes the session on `port`; true if one existed.
  bool close(std::uint16_t port);

  [[nodiscard]] UdpSession* find(std::uint16_t port) noexcept;
  [[nodiscard]] std::size_t sessionCount() const noexcept { return sessions_.size(); }

  [[nodiscard]] const char* name() const noexcept override { return "udp"; }
  bool receive(Packet& pkt, ReceiveContext& ctx) override;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  std::uint32_t local_addr_;
  bool verify_checksum_;
  std::unordered_map<std::uint16_t, UdpSession> sessions_;
  Stats stats_;
};

}  // namespace affinity
