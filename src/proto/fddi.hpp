// fddi.hpp — FDDI MAC/LLC receive layer.
#pragma once

#include "proto/headers.hpp"
#include "proto/layer.hpp"

namespace affinity {

/// Validates the FDDI + LLC/SNAP header, filters on destination address
/// (unicast-to-us or group bit), and hands IPv4 payloads upward.
class FddiLayer final : public ProtocolLayer {
 public:
  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t dropped_wrong_dest = 0;
    std::uint64_t dropped_not_ip = 0;
  };

  /// `local` is this host's MAC; `above` receives IPv4 payloads (not owned).
  FddiLayer(MacAddr local, ProtocolLayer* above) noexcept : local_(local), above_(above) {}

  [[nodiscard]] const char* name() const noexcept override { return "fddi"; }
  bool receive(Packet& pkt, ReceiveContext& ctx) override;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  MacAddr local_;
  ProtocolLayer* above_;
  Stats stats_;
};

}  // namespace affinity
