#include "proto/stack.hpp"

#include "proto/checksum.hpp"

namespace affinity {

ProtocolStack::ProtocolStack(HostConfig config)
    : config_(config),
      udp_(config.ip, config.verify_udp_checksum),
      ip_(config.ip, &udp_, config.verify_ip_checksum),
      fddi_(config.mac, &ip_) {}

ReceiveContext ProtocolStack::receiveFrame(std::span<const std::uint8_t> frame) {
  rx_packet_.assignFrame(frame);
  ReceiveContext ctx;
  fddi_.receive(rx_packet_, ctx);
  return ctx;
}

DualProtocolStack::DualProtocolStack(HostConfig config)
    : config_(config),
      udp_(config.ip, config.verify_udp_checksum),
      tcp_(config.ip, config.verify_udp_checksum),
      ip_(config.ip, &udp_, config.verify_ip_checksum),
      fddi_(config.mac, &ip_) {
  ip_.registerProtocol(TcpHeader::kProtoTcp, &tcp_);
}

ReceiveContext DualProtocolStack::receiveFrame(std::span<const std::uint8_t> frame) {
  rx_packet_.assignFrame(frame);
  ReceiveContext ctx;
  fddi_.receive(rx_packet_, ctx);
  return ctx;
}

std::vector<std::uint8_t> buildUdpFrame(const FrameSpec& spec,
                                        std::span<const std::uint8_t> payload) {
  const std::size_t udp_len = UdpHeader::kSize + payload.size();
  const std::size_t ip_len = Ipv4Header::kMinSize + udp_len;
  const std::size_t frame_len = FddiHeader::kSize + ip_len;
  std::vector<std::uint8_t> frame(frame_len);
  std::span<std::uint8_t> out{frame};

  FddiHeader fddi;
  fddi.dst = spec.dst_mac;
  fddi.src = spec.src_mac;
  fddi.encode(out);

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(ip_len);
  ip.identification = spec.ip_id;
  ip.ttl = spec.ttl;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.encode(out.subspan(FddiHeader::kSize));

  UdpHeader udp;
  udp.src_port = spec.src_port;
  udp.dst_port = spec.dst_port;
  udp.length = static_cast<std::uint16_t>(udp_len);
  udp.checksum = 0;
  auto udp_region = out.subspan(FddiHeader::kSize + Ipv4Header::kMinSize);
  udp.encode(udp_region);
  if (!payload.empty())
    std::memcpy(udp_region.data() + UdpHeader::kSize, payload.data(), payload.size());

  if (spec.udp_checksum) {
    ChecksumAccumulator acc;
    acc.addWord(static_cast<std::uint16_t>(spec.src_ip >> 16));
    acc.addWord(static_cast<std::uint16_t>(spec.src_ip));
    acc.addWord(static_cast<std::uint16_t>(spec.dst_ip >> 16));
    acc.addWord(static_cast<std::uint16_t>(spec.dst_ip));
    acc.addWord(Ipv4Header::kProtoUdp);
    acc.addWord(udp.length);
    acc.add(std::span<const std::uint8_t>{udp_region.data(), udp_len});
    std::uint16_t ck = acc.finish();
    if (ck == 0) ck = 0xffff;  // RFC 768: transmitted 0 means "no checksum"
    writeBe16(udp_region, 6, ck);
  }
  return frame;
}

}  // namespace affinity
