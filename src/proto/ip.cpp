#include "proto/ip.hpp"

#include "proto/checksum.hpp"

namespace affinity {

bool Ipv4Layer::receive(Packet& pkt, ReceiveContext& ctx) {
  ++stats_.datagrams;
  const auto header = Ipv4Header::decode(pkt.bytes());
  if (!header || header->version != 4) {
    ++stats_.dropped_malformed;
    ctx.drop = DropReason::kIpMalformed;
    return false;
  }
  if (header->total_length < header->headerBytes() || header->total_length > pkt.size()) {
    ++stats_.dropped_length;
    ctx.drop = DropReason::kIpBadLength;
    return false;
  }
  if (verify_checksum_ && !checksumValid(pkt.bytes().first(header->headerBytes()))) {
    ++stats_.dropped_checksum;
    ctx.drop = DropReason::kIpBadChecksum;
    return false;
  }
  if (header->ttl == 0) {
    ++stats_.dropped_ttl;
    ctx.drop = DropReason::kIpTtlExpired;
    return false;
  }
  if (header->isFragment()) {
    ++stats_.dropped_fragment;
    ctx.drop = DropReason::kIpFragment;
    return false;
  }
  if (local_ != 0 && header->dst != local_) {
    // Not for us and we do not forward; treat as malformed destination.
    ++stats_.dropped_malformed;
    ctx.drop = DropReason::kIpMalformed;
    return false;
  }
  ProtocolLayer* above = upper_[header->protocol];
  if (above == nullptr) {
    ++stats_.dropped_not_udp;
    ctx.drop = DropReason::kIpNotUdp;
    return false;
  }
  ctx.src_addr = header->src;
  // Strip header and any link padding past total_length. Both lengths were
  // validated above, but truncated/hostile input is re-checked here rather
  // than asserted: a failure is a countable drop, not a crash.
  if (!pkt.truncate(header->total_length) || !pkt.pull(header->headerBytes())) {
    ++stats_.dropped_length;
    ctx.drop = DropReason::kIpBadLength;
    return false;
  }
  if (!above->receive(pkt, ctx)) return false;
  ++stats_.delivered;
  return true;
}

}  // namespace affinity
