// checksum.hpp — RFC 1071 Internet checksum.
#pragma once

#include <cstdint>
#include <span>

namespace affinity {

/// Incremental ones-complement sum accumulator. Feed byte ranges (odd splits
/// allowed only at the final range, per RFC 1071 byte-order rules we keep it
/// simple: ranges after the first must start 16-bit aligned relative to the
/// checksummed stream, which all our callers satisfy).
class ChecksumAccumulator {
 public:
  /// Adds a byte range to the running sum.
  void add(std::span<const std::uint8_t> bytes) noexcept;

  /// Adds one 16-bit word in host order (e.g. pseudo-header fields).
  void addWord(std::uint16_t word) noexcept { sum_ += word; }

  /// Final folded ones-complement checksum (to store in a header).
  [[nodiscard]] std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  ///< previous ranges ended on an odd byte
};

/// One-shot checksum of a byte range.
std::uint16_t internetChecksum(std::span<const std::uint8_t> bytes) noexcept;

/// Verifies a range whose checksum field is already in place (sums to
/// 0xffff when valid).
bool checksumValid(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace affinity
