// headers.hpp — wire-format codecs for the FDDI / IPv4 / UDP headers.
//
// Headers are encoded/decoded explicitly byte-by-byte (network byte order)
// rather than by struct punning, so the code is endian- and
// alignment-independent.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

namespace affinity {

/// 48-bit MAC address.
using MacAddr = std::array<std::uint8_t, 6>;

/// FDDI MAC + LLC/SNAP header as used for IP over FDDI (RFC 1188):
/// FC (1) | dst (6) | src (6) | LLC DSAP/SSAP/ctl (3) | SNAP OUI (3) |
/// ethertype (2)  — 21 bytes total.
struct FddiHeader {
  static constexpr std::size_t kSize = 21;
  static constexpr std::uint8_t kFrameControlLlc = 0x50;  ///< async LLC frame
  static constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

  std::uint8_t frame_control = kFrameControlLlc;
  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ethertype = kEtherTypeIpv4;

  /// Writes the header into `out` (size >= kSize).
  void encode(std::span<std::uint8_t> out) const noexcept;
  /// Parses; nullopt if `in` is short or LLC/SNAP is malformed.
  static std::optional<FddiHeader> decode(std::span<const std::uint8_t> in) noexcept;
};

/// IPv4 header (no options on the fast path; options are parsed but sent to
/// the slow path by the IP layer).
struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;
  static constexpr std::uint8_t kProtoUdp = 17;

  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  ///< header length in 32-bit words
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t flags = 0;           ///< bit1 = DF, bit0(of 3) = MF
  std::uint16_t fragment_offset = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtoUdp;
  std::uint16_t checksum = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;

  [[nodiscard]] std::size_t headerBytes() const noexcept { return ihl * 4u; }
  [[nodiscard]] bool moreFragments() const noexcept { return flags & 0x1; }
  [[nodiscard]] bool isFragment() const noexcept {
    return moreFragments() || fragment_offset != 0;
  }

  /// Writes the header (with correct checksum) into `out`
  /// (size >= headerBytes()).
  void encode(std::span<std::uint8_t> out) const noexcept;
  /// Parses without verifying the checksum (the IP layer verifies).
  static std::optional<Ipv4Header> decode(std::span<const std::uint8_t> in) noexcept;
};

/// TCP header (options parsed over, not interpreted — the receive fast path
/// of the era predates SACK).
struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;
  static constexpr std::uint8_t kProtoTcp = 6;

  static constexpr std::uint8_t kFlagFin = 0x01;
  static constexpr std::uint8_t kFlagSyn = 0x02;
  static constexpr std::uint8_t kFlagRst = 0x04;
  static constexpr std::uint8_t kFlagPsh = 0x08;
  static constexpr std::uint8_t kFlagAck = 0x10;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  ///< header length in 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 8192;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  [[nodiscard]] std::size_t headerBytes() const noexcept { return data_offset * 4u; }
  [[nodiscard]] bool has(std::uint8_t flag) const noexcept { return (flags & flag) != 0; }

  void encode(std::span<std::uint8_t> out) const noexcept;
  static std::optional<TcpHeader> decode(std::span<const std::uint8_t> in) noexcept;
};

/// UDP header.
struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    ///< header + payload
  std::uint16_t checksum = 0;  ///< 0 = not computed (legal for IPv4 UDP)

  void encode(std::span<std::uint8_t> out) const noexcept;
  static std::optional<UdpHeader> decode(std::span<const std::uint8_t> in) noexcept;
};

// Big-endian field access helpers shared by the codecs (and tests).
std::uint16_t readBe16(std::span<const std::uint8_t> in, std::size_t off) noexcept;
std::uint32_t readBe32(std::span<const std::uint8_t> in, std::size_t off) noexcept;
void writeBe16(std::span<std::uint8_t> out, std::size_t off, std::uint16_t v) noexcept;
void writeBe32(std::span<std::uint8_t> out, std::size_t off, std::uint32_t v) noexcept;

}  // namespace affinity
