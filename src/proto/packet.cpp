#include "proto/packet.hpp"

namespace affinity {

Packet Packet::withHeadroom(std::size_t headroom) {
  Packet p;
  p.data_.resize(headroom);
  p.begin_ = headroom;
  return p;
}

Packet Packet::fromFrame(std::span<const std::uint8_t> frame) {
  Packet p;
  p.data_.assign(frame.begin(), frame.end());
  p.begin_ = 0;
  return p;
}

std::optional<std::span<const std::uint8_t>> Packet::pull(std::size_t n) {
  if (n > size()) return std::nullopt;
  std::span<const std::uint8_t> header{data_.data() + begin_, n};
  begin_ += n;
  return header;
}

std::span<std::uint8_t> Packet::push(std::size_t n) {
  if (n > begin_) {
    // Not enough headroom: shift the contents right.
    const std::size_t need = n - begin_;
    data_.insert(data_.begin(), need, 0);
    begin_ += need;
  }
  begin_ -= n;
  return {data_.data() + begin_, n};
}

void Packet::append(std::span<const std::uint8_t> payload) {
  data_.insert(data_.end(), payload.begin(), payload.end());
}

bool Packet::truncate(std::size_t n) {
  if (n > size()) return false;
  data_.resize(begin_ + n);
  return true;
}

}  // namespace affinity
