#include "proto/tcp.hpp"

#include <algorithm>
#include <cstring>

#include "proto/checksum.hpp"
#include "util/check.hpp"

namespace affinity {

namespace {

/// Wrapping sequence-number compare: true iff a precedes b.
inline bool seqLt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seqLe(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) <= 0;
}

}  // namespace

// ---------------------------------------------------------------- session --

TcpSession::TcpSession(std::uint16_t local_port, std::uint32_t peer_addr,
                       std::uint16_t peer_port, std::uint32_t iss)
    : local_port_(local_port), peer_addr_(peer_addr), peer_port_(peer_port), snd_nxt_(iss) {}

void TcpSession::enqueueAck(std::vector<TcpAckDescriptor>& acks, std::uint8_t flags) {
  TcpAckDescriptor d;
  d.peer_addr = peer_addr_;
  d.peer_port = peer_port_;
  d.local_port = local_port_;
  d.seq = snd_nxt_;
  d.ack = rcv_nxt_;
  d.flags = flags;
  acks.push_back(d);
  ++stats_.acks_generated;
}

void TcpSession::acceptInOrder(std::span<const std::uint8_t> payload) {
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
  stats_.bytes_delivered += payload.size();
}

void TcpSession::drainReassembly() {
  for (auto it = reassembly_.begin(); it != reassembly_.end();) {
    const std::uint32_t seg_seq = it->first;
    const auto& data = it->second;
    const std::uint32_t seg_end = seg_seq + static_cast<std::uint32_t>(data.size());
    if (seqLt(rcv_nxt_, seg_seq)) break;  // still a gap
    if (seqLe(seg_end, rcv_nxt_)) {
      it = reassembly_.erase(it);  // fully duplicate
      continue;
    }
    const std::uint32_t skip = rcv_nxt_ - seg_seq;
    acceptInOrder(std::span<const std::uint8_t>(data).subspan(skip));
    it = reassembly_.erase(it);
  }
}

bool TcpSession::segment(const TcpHeader& h, std::span<const std::uint8_t> payload,
                         std::vector<TcpAckDescriptor>& acks, DropReason& drop) {
  ++stats_.segments;
  if (state_ == State::kClosed) {
    drop = DropReason::kTcpBadState;
    return false;
  }
  if (h.has(TcpHeader::kFlagRst)) {
    state_ = State::kClosed;
    return true;
  }

  switch (state_) {
    case State::kListen: {
      if (!h.has(TcpHeader::kFlagSyn) || h.has(TcpHeader::kFlagAck)) {
        drop = DropReason::kTcpBadState;
        return false;
      }
      rcv_nxt_ = h.seq + 1;
      state_ = State::kSynReceived;
      enqueueAck(acks, TcpHeader::kFlagSyn | TcpHeader::kFlagAck);
      ++snd_nxt_;  // our SYN consumes one sequence number
      return true;
    }
    case State::kSynReceived: {
      if (h.has(TcpHeader::kFlagSyn)) {
        // SYN retransmission: re-answer.
        enqueueAck(acks, TcpHeader::kFlagSyn | TcpHeader::kFlagAck);
        return true;
      }
      if (h.has(TcpHeader::kFlagAck) && h.ack == snd_nxt_) {
        state_ = State::kEstablished;
        // Fall through to normal processing of any piggybacked data.
        break;
      }
      drop = DropReason::kTcpBadState;
      return false;
    }
    case State::kEstablished:
    case State::kCloseWait:
      break;
    case State::kClosed:
      drop = DropReason::kTcpBadState;
      return false;
  }

  // --- header prediction fast path (Van Jacobson) --------------------------
  // Established, exactly the next in-sequence data segment, no surprises
  // pending: a few compares and an append.
  const std::uint8_t interesting =
      h.flags & ~(TcpHeader::kFlagAck | TcpHeader::kFlagPsh);
  if (state_ == State::kEstablished && interesting == 0 && !payload.empty() &&
      h.seq == rcv_nxt_ && reassembly_.empty()) {
    acceptInOrder(payload);
    ++stats_.fast_path;
    // Delayed ACK: every second data segment.
    if (ack_pending_) {
      enqueueAck(acks);
      ack_pending_ = false;
    } else {
      ack_pending_ = true;
    }
    return true;
  }

  // --- slow path ------------------------------------------------------------
  if (!payload.empty()) {
    const auto len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t seg_end = h.seq + len;
    if (seqLe(seg_end, rcv_nxt_)) {
      ++stats_.duplicates;
      enqueueAck(acks);  // duplicate: re-ACK what we have
    } else if (seqLt(rcv_nxt_, h.seq)) {
      ++stats_.out_of_order;
      reassembly_.emplace(h.seq, std::vector<std::uint8_t>(payload.begin(), payload.end()));
      enqueueAck(acks);  // duplicate ACK signals the gap
    } else {
      // Overlaps rcv_nxt: accept the new tail, then drain what unblocks.
      acceptInOrder(payload.subspan(rcv_nxt_ - h.seq));
      drainReassembly();
      enqueueAck(acks);
      ack_pending_ = false;
    }
  }

  if (h.has(TcpHeader::kFlagFin)) {
    const std::uint32_t fin_seq =
        h.seq + static_cast<std::uint32_t>(payload.size());
    if (fin_seq == rcv_nxt_ && reassembly_.empty()) {
      ++rcv_nxt_;  // the FIN consumes one sequence number
      state_ = State::kCloseWait;
    }
    enqueueAck(acks);
  } else if (payload.empty() && state_ == State::kEstablished) {
    // Pure ACK carrying no data: nothing to do on the receive side.
  }
  return true;
}

std::size_t TcpSession::read(std::vector<std::uint8_t>& out, std::size_t max) {
  const std::size_t n = std::min(max, buffer_.size());
  out.assign(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

// ------------------------------------------------------------------ layer --

TcpSession* TcpLayer::find(std::uint16_t local_port, std::uint32_t peer_addr,
                           std::uint16_t peer_port) noexcept {
  auto it = sessions_.find(Key{local_port, peer_addr, peer_port});
  return it == sessions_.end() ? nullptr : &it->second;
}

std::vector<TcpAckDescriptor> TcpLayer::drainAcks() {
  std::vector<TcpAckDescriptor> out;
  out.swap(pending_acks_);
  return out;
}

bool TcpLayer::receive(Packet& pkt, ReceiveContext& ctx) {
  ++stats_.segments;
  const auto header = TcpHeader::decode(pkt.bytes());
  if (!header || header->headerBytes() > pkt.size()) {
    ++stats_.dropped_malformed;
    ctx.drop = DropReason::kTcpMalformed;
    return false;
  }
  if (verify_checksum_) {
    ChecksumAccumulator acc;
    acc.addWord(static_cast<std::uint16_t>(ctx.src_addr >> 16));
    acc.addWord(static_cast<std::uint16_t>(ctx.src_addr));
    acc.addWord(static_cast<std::uint16_t>(local_addr_ >> 16));
    acc.addWord(static_cast<std::uint16_t>(local_addr_));
    acc.addWord(TcpHeader::kProtoTcp);
    acc.addWord(static_cast<std::uint16_t>(pkt.size()));
    acc.add(pkt.bytes());
    if (acc.finish() != 0) {
      ++stats_.dropped_checksum;
      ctx.drop = DropReason::kTcpBadChecksum;
      return false;
    }
  }

  const Key key{header->dst_port, ctx.src_addr, header->src_port};
  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    if (!header->has(TcpHeader::kFlagSyn) || listeners_.count(header->dst_port) == 0) {
      ++stats_.dropped_no_listener;
      ctx.drop = DropReason::kTcpNoListener;
      return false;
    }
    it = sessions_
             .emplace(key, TcpSession(header->dst_port, ctx.src_addr, header->src_port))
             .first;
  }

  if (!pkt.pull(header->headerBytes())) {
    ++stats_.dropped_malformed;
    ctx.drop = DropReason::kTcpMalformed;
    return false;
  }
  DropReason drop = DropReason::kNone;
  if (!it->second.segment(*header, pkt.bytes(), pending_acks_, drop)) {
    ctx.drop = drop;
    return false;
  }
  ctx.dst_port = header->dst_port;
  ctx.payload_bytes = static_cast<std::uint16_t>(pkt.size());
  ++stats_.delivered;
  return true;
}

// ---------------------------------------------------------------- builder --

std::vector<std::uint8_t> buildTcpFrame(const TcpFrameSpec& spec,
                                        std::span<const std::uint8_t> payload) {
  const std::size_t tcp_len = TcpHeader::kMinSize + payload.size();
  const std::size_t ip_len = Ipv4Header::kMinSize + tcp_len;
  const std::size_t frame_len = FddiHeader::kSize + ip_len;
  std::vector<std::uint8_t> frame(frame_len);
  std::span<std::uint8_t> out{frame};

  FddiHeader fddi;
  fddi.dst = spec.dst_mac;
  fddi.src = spec.src_mac;
  fddi.encode(out);

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(ip_len);
  ip.protocol = TcpHeader::kProtoTcp;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.encode(out.subspan(FddiHeader::kSize));

  TcpHeader tcp;
  tcp.src_port = spec.src_port;
  tcp.dst_port = spec.dst_port;
  tcp.seq = spec.seq;
  tcp.ack = spec.ack;
  tcp.flags = spec.flags;
  auto tcp_region = out.subspan(FddiHeader::kSize + Ipv4Header::kMinSize);
  tcp.encode(tcp_region);
  if (!payload.empty())
    std::memcpy(tcp_region.data() + TcpHeader::kMinSize, payload.data(), payload.size());

  ChecksumAccumulator acc;
  acc.addWord(static_cast<std::uint16_t>(spec.src_ip >> 16));
  acc.addWord(static_cast<std::uint16_t>(spec.src_ip));
  acc.addWord(static_cast<std::uint16_t>(spec.dst_ip >> 16));
  acc.addWord(static_cast<std::uint16_t>(spec.dst_ip));
  acc.addWord(TcpHeader::kProtoTcp);
  acc.addWord(static_cast<std::uint16_t>(tcp_len));
  acc.add(std::span<const std::uint8_t>{tcp_region.data(), tcp_len});
  writeBe16(tcp_region, 16, acc.finish());
  return frame;
}

}  // namespace affinity
