// ledger.hpp — append-only JSON-array perf ledger (BENCH_<date>.json).
//
// A ledger file is a JSON array of row objects, one per recorded benchmark
// run, kept human-diffable: one row per line. appendLedgerRow() splices a
// new row before the closing bracket so the file stays a valid JSON array
// after every append; a missing file is created, an unparsable file is
// rewritten from scratch (the old content is preserved under
// "<path>.corrupt" so a bad write never silently destroys history).
#pragma once

#include <string>

namespace affinity::obs {

/// Appends `row_json` (a complete JSON object, no trailing comma/newline)
/// to the JSON array in `path`. Returns false on I/O failure.
bool appendLedgerRow(const std::string& path, const std::string& row_json);

/// Number of rows currently in the ledger (0 if missing/unreadable).
/// Counts top-level objects, tolerant of whitespace/newlines.
std::size_t ledgerRowCount(const std::string& path);

}  // namespace affinity::obs
