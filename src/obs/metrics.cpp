#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace affinity::obs {

namespace {

void atomicAdd(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomicMin(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x < cur && !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomicMax(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x > cur && !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------- MeanStat

void MeanStat::add(double x) noexcept {
  // First sample seeds min/max; racing first samples both run the CAS loops,
  // so the extrema stay correct either way.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  } else {
    atomicMin(min_, x);
    atomicMax(max_, x);
  }
  atomicAdd(sum_, x);
}

double MeanStat::mean() const noexcept {
  const auto n = count_.load(std::memory_order_relaxed);
  return n == 0 ? 0.0 : sum_.load(std::memory_order_relaxed) / static_cast<double>(n);
}

double MeanStat::min() const noexcept { return min_.load(std::memory_order_relaxed); }
double MeanStat::max() const noexcept { return max_.load(std::memory_order_relaxed); }

// -------------------------------------------------------- TimeWeightedStat

void TimeWeightedStat::set(double t, double level) noexcept {
  if (!started_) {
    started_ = true;
    start_t_ = last_t_ = t;
  } else if (t > last_t_) {
    area_ += level_ * (t - last_t_);
    last_t_ = t;
  }
  level_ = level;
  if (level > max_level_) max_level_ = level;
}

double TimeWeightedStat::average() const noexcept {
  const double span = last_t_ - start_t_;
  return span > 0.0 ? area_ / span : 0.0;
}

// ------------------------------------------------------------ LatencyHisto

LatencyHisto::LatencyHisto(double min_value, int decades, int buckets_per_decade)
    : min_value_(min_value),
      log_min_(std::log10(min_value)),
      inv_log_step_(buckets_per_decade),
      log_step_(1.0 / buckets_per_decade),
      buckets_(static_cast<std::size_t>(decades) * buckets_per_decade) {
  AFF_CHECK(min_value > 0.0 && decades > 0 && buckets_per_decade > 0);
}

void LatencyHisto::add(double x) noexcept {
  total_.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(sum_, x);
  if (!(x >= min_value_)) {  // also catches NaN
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto idx = static_cast<std::size_t>((std::log10(x) - log_min_) * inv_log_step_);
  if (idx >= buckets_.size()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

double LatencyHisto::bucketLow(std::size_t i) const noexcept {
  return std::pow(10.0, log_min_ + static_cast<double>(i) * log_step_);
}

LatencyHisto::Snapshot LatencyHisto::snapshot() const {
  Snapshot s;
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  const std::uint64_t under = underflow_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  std::uint64_t in_buckets = 0;
  for (auto c : counts) in_buckets += c;
  s.count = in_buckets + under + s.overflow;
  if (s.count == 0) return s;
  s.mean = sum_.load(std::memory_order_relaxed) / static_cast<double>(s.count);

  // Percentiles over the ranked [underflow | buckets | overflow] sequence;
  // a percentile landing in a bucket reports the bucket's geometric midpoint.
  const auto quantile = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(s.count - 1));
    if (rank < under) return min_value_;
    std::uint64_t seen = under;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (rank < seen) return bucketLow(i) * std::pow(10.0, 0.5 * log_step_);
    }
    return bucketLow(counts.size());  // overflow: report the histogram ceiling
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

// --------------------------------------------------------- MetricSample

const char* MetricSample::kindName() const noexcept {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kMean: return "mean";
    case Kind::kTimeWeighted: return "time_weighted";
    case Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

// ------------------------------------------------------- MetricsRegistry

MetricsRegistry::Entry& MetricsRegistry::find_or_create_locked(const std::string& name,
                                                               MetricSample::Kind kind) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    std::fprintf(stderr, "metric '%s' re-registered with a different kind (%d vs %d)\n",
                 name.c_str(), static_cast<int>(it->second.kind), static_cast<int>(kind));
    AFF_CHECK(it->second.kind == kind);
  }
  return it->second;
}

// The instrument is created while mu_ is still held: two threads racing to
// register the same name must agree on one instrument (annotating this path
// surfaced a create-after-unlock race in the original code).

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = find_or_create_locked(name, MetricSample::Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = find_or_create_locked(name, MetricSample::Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

MeanStat& MetricsRegistry::meanStat(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = find_or_create_locked(name, MetricSample::Kind::kMean);
  if (!e.mean) e.mean = std::make_unique<MeanStat>();
  return *e.mean;
}

TimeWeightedStat& MetricsRegistry::timeWeighted(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = find_or_create_locked(name, MetricSample::Kind::kTimeWeighted);
  if (!e.time_weighted) e.time_weighted = std::make_unique<TimeWeightedStat>();
  return *e.time_weighted;
}

LatencyHisto& MetricsRegistry::histogram(const std::string& name, double min_value, int decades,
                                         int buckets_per_decade) {
  MutexLock lock(mu_);
  Entry& e = find_or_create_locked(name, MetricSample::Kind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<LatencyHisto>(min_value, decades, buckets_per_decade);
  }
  return *e.histogram;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        s.count = e.counter->value();
        s.value = static_cast<double>(s.count);
        break;
      case MetricSample::Kind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricSample::Kind::kMean:
        s.count = e.mean->count();
        s.value = e.mean->mean();
        s.min = e.mean->min();
        s.max = e.mean->max();
        break;
      case MetricSample::Kind::kTimeWeighted:
        s.value = e.time_weighted->average();
        s.last = e.time_weighted->level();
        s.max = e.time_weighted->maxLevel();
        break;
      case MetricSample::Kind::kHistogram: {
        const auto h = e.histogram->snapshot();
        s.count = h.count;
        s.value = h.mean;
        s.p50 = h.p50;
        s.p95 = h.p95;
        s.p99 = h.p99;
        s.overflow = h.overflow;
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::writeJson(std::FILE* out) const {
  const auto samples = snapshot();
  std::fprintf(out, "{\n  \"metrics\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    std::fprintf(out, "    {\"name\": \"%s\", \"type\": \"%s\"", jsonEscape(s.name).c_str(),
                 s.kindName());
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        std::fprintf(out, ", \"value\": %llu", static_cast<unsigned long long>(s.count));
        break;
      case MetricSample::Kind::kGauge:
        std::fprintf(out, ", \"value\": %.17g", s.value);
        break;
      case MetricSample::Kind::kMean:
        std::fprintf(out, ", \"count\": %llu, \"mean\": %.17g, \"min\": %.17g, \"max\": %.17g",
                     static_cast<unsigned long long>(s.count), s.value, s.min, s.max);
        break;
      case MetricSample::Kind::kTimeWeighted:
        std::fprintf(out, ", \"avg\": %.17g, \"last\": %.17g, \"max\": %.17g", s.value, s.last,
                     s.max);
        break;
      case MetricSample::Kind::kHistogram:
        std::fprintf(out,
                     ", \"count\": %llu, \"mean\": %.17g, \"p50\": %.17g, \"p95\": %.17g, "
                     "\"p99\": %.17g, \"overflow\": %llu",
                     static_cast<unsigned long long>(s.count), s.value, s.p50, s.p95, s.p99,
                     static_cast<unsigned long long>(s.overflow));
        break;
    }
    std::fprintf(out, "}%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

bool MetricsRegistry::writeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  writeJson(f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// ---------------------------------------------------------------- helpers

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace affinity::obs
