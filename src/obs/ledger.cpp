#include "obs/ledger.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace affinity::obs {

namespace {

bool readAll(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool writeAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

bool appendLedgerRow(const std::string& path, const std::string& row_json) {
  std::string existing;
  const bool had_file = readAll(path, existing);

  if (had_file) {
    // Valid target shape: "[ ...rows... ]" (possibly "[]"). Splice before
    // the final ']'.
    const auto open = existing.find('[');
    const auto close = existing.rfind(']');
    if (open != std::string::npos && close != std::string::npos && open < close) {
      const std::string body = existing.substr(open + 1, close - open - 1);
      const bool empty = body.find('{') == std::string::npos;
      std::string out = "[\n";
      if (!empty) {
        // Keep existing rows verbatim, trimming trailing whitespace.
        std::string trimmed = body;
        while (!trimmed.empty() &&
               (trimmed.back() == '\n' || trimmed.back() == ' ' || trimmed.back() == '\t')) {
          trimmed.pop_back();
        }
        while (!trimmed.empty() && (trimmed.front() == '\n' || trimmed.front() == ' ')) {
          trimmed.erase(trimmed.begin());
        }
        out += trimmed + ",\n";
      }
      out += row_json + "\n]\n";
      return writeAll(path, out);
    }
    // Unparsable: preserve the old content, then start a fresh array.
    (void)writeAll(path + ".corrupt", existing);
    std::fprintf(stderr, "ledger: %s is not a JSON array; previous content saved to %s.corrupt\n",
                 path.c_str(), path.c_str());
  }
  return writeAll(path, "[\n" + row_json + "\n]\n");
}

std::size_t ledgerRowCount(const std::string& path) {
  std::string content;
  if (!readAll(path, content)) return 0;
  // Rows are top-level objects: count '{' at brace depth 1 relative to the
  // array (good enough for our own writer's output, which never nests
  // objects inside row values beyond one level of braces in strings-free
  // numeric rows).
  std::size_t rows = 0;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : content) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) ++rows;
      ++depth;
    } else if (c == '}') {
      --depth;
    }
  }
  return rows;
}

}  // namespace affinity::obs
