#include "obs/trace.hpp"

#include <algorithm>

#include "obs/metrics.hpp"  // jsonEscape
#include "util/check.hpp"

namespace affinity::obs {

std::atomic<TraceSession*> TraceSession::active_{nullptr};

TraceSession::TraceSession(std::size_t track_capacity)
    : track_capacity_(track_capacity), epoch_(std::chrono::steady_clock::now()) {
  AFF_CHECK(track_capacity_ > 0);
}

TraceSession::~TraceSession() {
  // Never leave a dangling global pointer behind.
  TraceSession* self = this;
  active_.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

std::uint32_t TraceSession::track(const std::string& name) {
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i]->name == name) return static_cast<std::uint32_t>(i);
  }
  auto t = std::make_unique<Track>();
  t->name = name;
  t->ring.resize(track_capacity_);
  tracks_.push_back(std::move(t));
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void TraceSession::span(std::uint32_t track, const char* name, double begin_us, double end_us,
                        std::uint64_t arg0, std::uint64_t arg1) noexcept {
  Track& t = trackRef(track);
  Record& r = t.ring[t.next];
  if (t.written >= t.ring.size()) dropped_.fetch_add(1, std::memory_order_relaxed);
  r.begin = begin_us;
  r.end = end_us;
  r.name = name;
  r.arg0 = arg0;
  r.arg1 = arg1;
  r.is_span = true;
  t.next = (t.next + 1) % t.ring.size();
  ++t.written;
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void TraceSession::instant(std::uint32_t track, const char* name, double ts_us,
                           std::uint64_t arg0) noexcept {
  Track& t = trackRef(track);
  Record& r = t.ring[t.next];
  if (t.written >= t.ring.size()) dropped_.fetch_add(1, std::memory_order_relaxed);
  r.begin = ts_us;
  r.end = ts_us;
  r.name = name;
  r.arg0 = arg0;
  r.arg1 = 0;
  r.is_span = false;
  t.next = (t.next + 1) % t.ring.size();
  ++t.written;
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

double TraceSession::steadyNowUs() const noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t TraceSession::recordedCount() const noexcept {
  return recorded_.load(std::memory_order_relaxed);
}

std::uint64_t TraceSession::droppedCount() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::size_t TraceSession::trackCount() const {
  MutexLock lock(mu_);
  return tracks_.size();
}

namespace {

// One emitted trace_event line. `phase` is the Chrome ph character.
struct Emission {
  double ts;
  std::uint32_t tid;
  std::uint64_t seq;  // within-track order, breaks ts ties so E(n) < B(n+1)
  char phase;
  const char* name;
  std::uint64_t arg0, arg1;
};

}  // namespace

void TraceSession::writeChromeTrace(std::FILE* out) const {
  MutexLock lock(mu_);
  std::vector<Emission> ev;
  for (std::uint32_t ti = 0; ti < tracks_.size(); ++ti) {
    const Track& t = *tracks_[ti];
    const std::size_t n = std::min<std::uint64_t>(t.written, t.ring.size());
    // Oldest surviving record first (ring order).
    const std::size_t start = t.written > t.ring.size() ? t.next : 0;
    std::uint64_t seq = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const Record& r = t.ring[(start + k) % t.ring.size()];
      if (r.is_span) {
        ev.push_back({r.begin, ti, seq++, 'B', r.name, r.arg0, r.arg1});
        ev.push_back({r.end, ti, seq++, 'E', r.name, 0, 0});
      } else {
        ev.push_back({r.begin, ti, seq++, 'i', r.name, r.arg0, 0});
      }
    }
  }
  // Per track, records are written in nondecreasing-end order and spans do
  // not nest, so within-track seq order is already time order; the global
  // sort only interleaves tracks. (ts, tid, seq) keeps equal-timestamp
  // events of one track in recording order, so B/E stay properly paired.
  std::sort(ev.begin(), ev.end(), [](const Emission& a, const Emission& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.seq < b.seq;
  });

  std::fprintf(out, "{\"traceEvents\": [\n");
  bool first = true;
  for (std::uint32_t ti = 0; ti < tracks_.size(); ++ti) {
    std::fprintf(out,
                 "%s{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, \"name\": \"thread_name\", "
                 "\"args\": {\"name\": \"%s\"}}",
                 first ? "" : ",\n", ti + 1, jsonEscape(tracks_[ti]->name).c_str());
    first = false;
  }
  for (const Emission& e : ev) {
    std::fprintf(out, "%s{\"ph\": \"%c\", \"pid\": 1, \"tid\": %u, \"ts\": %.6f, \"name\": \"%s\"",
                 first ? "" : ",\n", e.phase, e.tid + 1, e.ts, jsonEscape(e.name).c_str());
    first = false;
    if (e.phase == 'i') {
      std::fprintf(out, ", \"s\": \"t\", \"args\": {\"arg0\": %llu}",
                   static_cast<unsigned long long>(e.arg0));
    } else if (e.phase == 'B') {
      std::fprintf(out, ", \"args\": {\"arg0\": %llu, \"arg1\": %llu}",
                   static_cast<unsigned long long>(e.arg0),
                   static_cast<unsigned long long>(e.arg1));
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out, "\n], \"displayTimeUnit\": \"ms\"}\n");
}

bool TraceSession::writeChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  writeChromeTrace(f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace affinity::obs
