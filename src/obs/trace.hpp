// trace.hpp — scoped-span / instant-event tracing with Chrome trace_event
// export (docs/OBSERVABILITY.md).
//
// A TraceSession collects events on named *tracks* (one per simulated
// processor, engine worker, sweep worker, ...). Each track is a fixed-size
// ring of complete records written by exactly one thread — recording is a
// couple of stores into preallocated memory, no locks, no allocation. When
// a ring wraps, the oldest records are overwritten; because spans are stored
// whole (begin + end in one record, written when the span closes), overwrite
// can never orphan half of a begin/end pair.
//
// Timestamps are caller-supplied doubles in microseconds. The discrete-event
// simulator passes virtual time; real-thread engines pass
// TraceSession::steadyNowUs() (steady_clock relative to the session epoch).
// Don't mix the two clocks in one session — run simulators with their own
// session (SimConfig::trace) and engines against the global one.
//
// Tracing is OFF by default. Engines consult the process-global slot
// (TraceSession::active(), a single relaxed atomic load) once at start();
// bench/sim_kernel_bench pins the disabled cost of that pattern below 1 %.
// Event names must be string literals (or otherwise outlive the session) —
// records store the pointer.
//
// export: writeChromeTrace() emits the Chrome trace_event JSON array format
// ({"traceEvents": [...]}) with "B"/"E" duration events and "i" instants,
// globally sorted by timestamp, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"

namespace affinity::obs {

class TraceSession {
 public:
  /// `track_capacity` = records kept per track (ring size).
  explicit TraceSession(std::size_t track_capacity = 1 << 14);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Creates (or finds, by name) a track; returns its id. Takes a mutex —
  /// call during setup, not per event. Each track must then be written by at
  /// most one thread at a time.
  std::uint32_t track(const std::string& name) AFF_EXCLUDES(mu_);

  /// Records a completed span [begin_us, end_us] on `track`.
  void span(std::uint32_t track, const char* name, double begin_us, double end_us,
            std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) noexcept;

  /// Records an instant event at ts_us on `track`.
  void instant(std::uint32_t track, const char* name, double ts_us,
               std::uint64_t arg0 = 0) noexcept;

  /// Microseconds of steady_clock elapsed since this session was created.
  [[nodiscard]] double steadyNowUs() const noexcept;

  /// Total records accepted / overwritten (diagnostics).
  [[nodiscard]] std::uint64_t recordedCount() const noexcept;
  [[nodiscard]] std::uint64_t droppedCount() const noexcept;
  [[nodiscard]] std::size_t trackCount() const AFF_EXCLUDES(mu_);

  /// Chrome trace_event export. Call after writers have quiesced (engines
  /// stopped / simulation finished). File form returns false on I/O failure.
  void writeChromeTrace(std::FILE* out) const AFF_EXCLUDES(mu_);
  [[nodiscard]] bool writeChromeTrace(const std::string& path) const;

  // ---- process-global slot (for real-thread engines & benches) ----
  /// The active session, or nullptr. One relaxed atomic load — this is the
  /// entire cost of tracing when disabled.
  static TraceSession* active() noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  /// Makes this session the global one (replaces any previous).
  void activate() noexcept { active_.store(this, std::memory_order_release); }
  /// Clears the global slot.
  static void deactivate() noexcept { active_.store(nullptr, std::memory_order_release); }

 private:
  struct Record {
    double begin = 0.0;   // span begin, or instant timestamp
    double end = 0.0;     // span end (unused for instants)
    const char* name = nullptr;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    bool is_span = false;
  };
  struct Track {
    std::string name;
    std::vector<Record> ring;
    std::size_t next = 0;     // ring write cursor
    std::uint64_t written = 0;  // total records ever written
  };

  // Lock-free by protocol, not by mutex: track() never invalidates existing
  // ids (growth only, unique_ptr elements are address-stable), each track is
  // written by one thread, and callers only pass ids track() returned to
  // them — hence exempt from the mu_ annotation on tracks_.
  Track& trackRef(std::uint32_t id) noexcept AFF_NO_THREAD_SAFETY_ANALYSIS {
    return *tracks_[id];
  }

  const std::size_t track_capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  // Innermost-tier lock; guards tracks_ vector growth (not record writes).
  mutable Mutex mu_{"TraceSession::mu_"};
  std::vector<std::unique_ptr<Track>> tracks_ AFF_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};

  static std::atomic<TraceSession*> active_;
};

}  // namespace affinity::obs
