// metrics.hpp — lock-free metrics registry (docs/OBSERVABILITY.md).
//
// A MetricsRegistry is a name -> instrument map that the simulator, the
// sweep runner, the scheduling layer and the real-thread engines register
// into. Instruments are built for the two usage patterns in this repo:
//
//   * hot-path updates from concurrent threads (engine workers, parallel
//     sweep points): Counter / Gauge / MeanStat / LatencyHisto update with
//     relaxed atomics only — no locks, no allocation, wait-free except for
//     the bounded CAS loops on double accumulators;
//   * single-writer simulated-time integrals (queue depths, busy
//     processors): TimeWeightedStat, plain fields, owned by one simulation.
//
// Registration (find-or-create by name) takes a mutex — it happens once per
// metric, never per sample. References returned by the registry are stable
// for the registry's lifetime, so hot paths hold instrument pointers and
// never touch the map again. snapshot() / writeJson() are read-side and may
// run while writers are active (counters are then merely approximately
// consistent with each other, exactly consistent per instrument).
//
// Naming scheme: dotted lowercase paths, "<domain>.<subsystem>.<metric>",
// e.g. "sim.affinity.l2_warm_fraction", "engine.ips.worker.3.processed".
// Per-entity instruments embed the entity index as a path segment.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"

namespace affinity::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous level.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Streaming mean/min/max over added samples (no per-sample storage).
class MeanStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Time average of a piecewise-constant signal (queue depth, busy workers).
/// SINGLE WRITER: owned by one simulation/thread; snapshot after finalize().
class TimeWeightedStat {
 public:
  /// Signal changed to `level` at time `t` (nondecreasing).
  void set(double t, double level) noexcept;
  void adjust(double t, double delta) noexcept { set(t, level_ + delta); }
  /// Closes the integral at `t` (typically the end of the run).
  void finalize(double t) noexcept { set(t, level_); }

  [[nodiscard]] double level() const noexcept { return level_; }
  /// Time average over the observed span (0 before two set() calls).
  [[nodiscard]] double average() const noexcept;
  [[nodiscard]] double maxLevel() const noexcept { return max_level_; }

 private:
  double level_ = 0.0;
  double last_t_ = 0.0;
  double start_t_ = 0.0;
  double area_ = 0.0;
  double max_level_ = 0.0;
  bool started_ = false;
};

/// Fixed-bucket log-linear latency histogram with lock-free adds:
/// `buckets_per_decade` buckets per factor of 10 covering
/// [min_value, min_value * 10^decades); under/overflow buckets catch the
/// rest. Same bucket geometry as stats::Histogram, but every bucket is a
/// relaxed atomic so engine workers can add concurrently.
class LatencyHisto {
 public:
  LatencyHisto(double min_value, int decades, int buckets_per_decade);

  void add(double x) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t overflow = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  /// Consistent-enough view under concurrent adds (exact once writers stop).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  [[nodiscard]] double bucketLow(std::size_t i) const noexcept;

  double min_value_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// One exported sample of any instrument (see MetricsRegistry::snapshot).
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kMean, kTimeWeighted, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  // Populated per kind; unused fields stay zero.
  std::uint64_t count = 0;   ///< counter value / sample count
  double value = 0.0;        ///< gauge value / mean / time-weighted average
  double min = 0.0, max = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::uint64_t overflow = 0;
  double last = 0.0;  ///< time-weighted final level

  [[nodiscard]] const char* kindName() const noexcept;
};

/// The registry. Instruments are created on first use and live as long as
/// the registry; lookups of an existing name with a different kind abort
/// (two subsystems disagreeing about a name is a bug worth dying for).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) AFF_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) AFF_EXCLUDES(mu_);
  MeanStat& meanStat(const std::string& name) AFF_EXCLUDES(mu_);
  TimeWeightedStat& timeWeighted(const std::string& name) AFF_EXCLUDES(mu_);
  LatencyHisto& histogram(const std::string& name, double min_value = 0.05, int decades = 9,
                          int buckets_per_decade = 32) AFF_EXCLUDES(mu_);

  [[nodiscard]] std::size_t size() const AFF_EXCLUDES(mu_);

  /// All instruments, sorted by name (deterministic export order).
  [[nodiscard]] std::vector<MetricSample> snapshot() const AFF_EXCLUDES(mu_);

  /// Writes the snapshot as a JSON document. The file form returns false on
  /// I/O failure.
  void writeJson(std::FILE* out) const;
  [[nodiscard]] bool writeJson(const std::string& path) const;

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<MeanStat> mean;
    std::unique_ptr<TimeWeightedStat> time_weighted;
    std::unique_ptr<LatencyHisto> histogram;
  };

  // Returns a reference that outlives the lock: entries are pointer-stable
  // (std::map nodes) and, once the instrument exists, immutable-in-shape —
  // so hot paths hold instrument pointers without ever re-entering mu_.
  // Callers must finish creating the instrument before releasing mu_
  // (creation after unlock would race a concurrent registration).
  Entry& find_or_create_locked(const std::string& name,
                               MetricSample::Kind kind) AFF_REQUIRES(mu_);

  // Innermost-tier lock: registration/snapshot may run under an engine
  // stack mutex; nothing is acquired while it is held.
  mutable Mutex mu_{"MetricsRegistry::mu_"};
  // std::map keeps names sorted for snapshot(); entries are pointer-stable.
  std::map<std::string, Entry> entries_ AFF_GUARDED_BY(mu_);
};

/// Escapes a string for embedding in a JSON document (shared by the metrics
/// and trace exporters).
std::string jsonEscape(const std::string& s);

}  // namespace affinity::obs
