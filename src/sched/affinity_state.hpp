// affinity_state.hpp — last-touch bookkeeping behind the affinity policies.
//
// Tracks, per footprint component, where and when it was last resident:
//   * code        — per processor: when protocol code last executed there
//   * shared data — (Locking) the single shared instance: last processor +
//                   time (a packet on any other processor invalidates it)
//   * stream      — per stream: last processor + time
//   * stack       — per IPS stack: last processor + time
//
// Ages returned are "µs since last resident on this processor", or kColdAge
// when the component was last used elsewhere (coherence makes remote copies
// useless) or never used.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/exec_time.hpp"

namespace affinity {

/// Last-touch tables for every footprint component.
class AffinityState {
 public:
  AffinityState(unsigned num_procs, std::size_t num_streams, unsigned num_stacks);

  // --- ages at the moment a packet would begin service ---------------------

  /// Age of the protocol code+ro-data on `proc` (kColdAge if protocol never
  /// ran there).
  [[nodiscard]] double codeAge(unsigned proc, double now) const noexcept;

  /// Age of the Locking shared writable data on `proc`.
  [[nodiscard]] double sharedAge(unsigned proc, double now) const noexcept;

  /// Age of `stream`'s state on `proc`.
  [[nodiscard]] double streamAge(unsigned proc, std::uint32_t stream, double now) const noexcept;

  /// Age of IPS `stack`'s private data on `proc`.
  [[nodiscard]] double stackAge(unsigned proc, std::uint32_t stack, double now) const noexcept;

  // --- location-independent ages (shared-LLC model) -------------------------
  // "Time since the component was last touched on *any* processor": the
  // shared LLC keeps a migrated footprint warm even though coherence makes
  // it cold in the private levels. kColdAge only when never touched.

  /// Age of the protocol code since it last ran anywhere.
  [[nodiscard]] double codeAgeAnywhere(double now) const noexcept {
    double latest = -kColdAge;
    for (const double t : code_last_) latest = t > latest ? t : latest;
    if (latest == -kColdAge) return kColdAge;
    const double age = now - latest;
    return age > 0.0 ? age : 0.0;
  }
  /// Age of the Locking shared data since its last touch anywhere.
  [[nodiscard]] double sharedAgeAnywhere(double now) const noexcept {
    return ageAnywhere(shared_last_, now);
  }
  /// Age of `stream`'s state since its last touch anywhere.
  [[nodiscard]] double streamAgeAnywhere(std::uint32_t stream, double now) const noexcept {
    return stream < stream_last_.size() ? ageAnywhere(stream_last_[stream], now) : kColdAge;
  }
  /// Age of IPS `stack`'s data since its last touch anywhere.
  [[nodiscard]] double stackAgeAnywhere(std::uint32_t stack, double now) const noexcept {
    return stack < stack_last_.size() ? ageAnywhere(stack_last_[stack], now) : kColdAge;
  }

  // --- last-location queries used by the policies ---------------------------

  /// Processor `stream` last completed on, or -1.
  [[nodiscard]] int lastProcOfStream(std::uint32_t stream) const noexcept;
  /// Processor `stack` last completed on, or -1.
  [[nodiscard]] int lastProcOfStack(std::uint32_t stack) const noexcept;
  /// Time protocol code last finished on `proc` (-inf if never).
  [[nodiscard]] double lastProtocolTime(unsigned proc) const noexcept;

  // --- updates --------------------------------------------------------------

  /// Records completion of a packet of `stream` (and `stack`; pass
  /// kNoStack under pure Locking) on `proc` at time `now`.
  void onComplete(unsigned proc, std::uint32_t stream, std::uint32_t stack,
                  double now) noexcept;

  /// Discards `stream`'s last-touch record: its state is cold everywhere,
  /// as after a flow-table eviction threw the per-flow footprint away. The
  /// next packet of the stream pays the full cold-reload transient and does
  /// not count as a migration (there is no previous location any more).
  void forgetStream(std::uint32_t stream) noexcept {
    if (stream < stream_last_.size()) stream_last_[stream] = LastTouch{};
  }

  static constexpr std::uint32_t kNoStack = 0xffffffff;

  [[nodiscard]] unsigned numProcs() const noexcept {
    return static_cast<unsigned>(code_last_.size());
  }

  // --- migration accounting (observability) ---------------------------------
  // A migration is a completion on a different processor than the previous
  // completion of the same stream/stack — i.e. the dispatch decisions the
  // affinity policies exist to avoid. Counted unconditionally (two integer
  // compares per completion) so the sim can export them without changing
  // behaviour.

  /// Completions whose stream last ran on a *different* processor.
  [[nodiscard]] std::uint64_t streamMigrations() const noexcept { return stream_migrations_; }
  /// Completions whose stack last ran on a *different* processor.
  [[nodiscard]] std::uint64_t stackMigrations() const noexcept { return stack_migrations_; }
  /// Completions whose stream had run before (denominator for migration rate).
  [[nodiscard]] std::uint64_t streamRevisits() const noexcept { return stream_revisits_; }
  [[nodiscard]] std::uint64_t stackRevisits() const noexcept { return stack_revisits_; }

 private:
  struct LastTouch {
    int proc = -1;
    double time = 0.0;
  };

  static double ageOf(const LastTouch& lt, unsigned proc, double now) noexcept {
    if (lt.proc != static_cast<int>(proc)) return kColdAge;
    const double age = now - lt.time;
    return age > 0.0 ? age : 0.0;
  }

  static double ageAnywhere(const LastTouch& lt, double now) noexcept {
    if (lt.proc < 0) return kColdAge;
    const double age = now - lt.time;
    return age > 0.0 ? age : 0.0;
  }

  std::vector<double> code_last_;  ///< per processor; -inf if never
  LastTouch shared_last_;          ///< Locking shared data
  std::vector<LastTouch> stream_last_;
  std::vector<LastTouch> stack_last_;

  std::uint64_t stream_migrations_ = 0;
  std::uint64_t stack_migrations_ = 0;
  std::uint64_t stream_revisits_ = 0;
  std::uint64_t stack_revisits_ = 0;
};

}  // namespace affinity
