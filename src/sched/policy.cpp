#include "sched/policy.hpp"

namespace affinity {

const char* paradigmName(Paradigm p) noexcept {
  switch (p) {
    case Paradigm::kLocking: return "Locking";
    case Paradigm::kIps: return "IPS";
    case Paradigm::kHybrid: return "Hybrid";
  }
  return "?";
}

const char* lockingPolicyName(LockingPolicy p) noexcept {
  switch (p) {
    case LockingPolicy::kFcfs: return "FCFS";
    case LockingPolicy::kMru: return "MRU";
    case LockingPolicy::kStreamMru: return "StreamMRU";
    case LockingPolicy::kWiredStreams: return "WiredStreams";
    case LockingPolicy::kStealAffinity: return "StealAffinity";
  }
  return "?";
}

const char* ipsPolicyName(IpsPolicy p) noexcept {
  switch (p) {
    case IpsPolicy::kRandom: return "Random";
    case IpsPolicy::kMru: return "MRU";
    case IpsPolicy::kWired: return "Wired";
  }
  return "?";
}

std::string PolicyConfig::describe() const {
  std::string s = paradigmName(paradigm);
  switch (paradigm) {
    case Paradigm::kLocking:
      s += "/";
      s += lockingPolicyName(locking);
      break;
    case Paradigm::kIps:
      s += "/";
      s += ipsPolicyName(ips);
      break;
    case Paradigm::kHybrid:
      s += "(";
      s += lockingPolicyName(locking);
      s += "+";
      s += ipsPolicyName(ips);
      s += ")";
      break;
  }
  return s;
}

}  // namespace affinity
