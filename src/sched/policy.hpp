// policy.hpp — the parallelization paradigms and affinity scheduling
// policies evaluated by the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace affinity {

/// How protocol processing is parallelized (paper §1).
enum class Paradigm : std::uint8_t {
  kLocking,  ///< one shared stack, lock-protected; any packet on any processor
  kIps,      ///< independent protocol stacks; streams statically mapped to stacks
  kHybrid,   ///< per-stream choice: designated streams use Locking, rest IPS
};

/// Scheduling policy under Locking.
enum class LockingPolicy : std::uint8_t {
  kFcfs,         ///< no affinity: global FIFO, arbitrary idle processor
  kMru,          ///< most-recently-protocol-active idle processor
  kStreamMru,    ///< prefer the idle processor this stream last used, then MRU
  kWiredStreams, ///< streams hashed to processors; packets queue only there
  /// kWiredStreams plus affinity-aware work stealing: an idle processor
  /// whose own queue is empty steals a bounded batch from the queue whose
  /// head stream is coldest at its home (cheapest migration), paying a
  /// per-steal penalty plus the cache model's cold-reload transients. The
  /// modern answer to the wired paradigm's load imbalance (Gu et al.,
  /// arXiv:2111.04994).
  kStealAffinity,
};

/// Scheduling policy under IPS.
enum class IpsPolicy : std::uint8_t {
  kRandom,  ///< no affinity: runnable stack on an arbitrary idle processor
  kMru,     ///< stack prefers its last processor, then the MRU-protocol one
  kWired,   ///< stack k wired to processor k mod N
};

/// Complete policy selection for one simulation run.
struct PolicyConfig {
  Paradigm paradigm = Paradigm::kLocking;
  LockingPolicy locking = LockingPolicy::kMru;
  IpsPolicy ips = IpsPolicy::kWired;
  /// Number of independent stacks under IPS/Hybrid (0 = one per processor).
  unsigned ips_stacks = 0;
  /// Hybrid: stream ids processed via the Locking stack (all others IPS).
  std::vector<std::uint32_t> hybrid_locking_streams;

  [[nodiscard]] std::string describe() const;
};

const char* paradigmName(Paradigm p) noexcept;
const char* lockingPolicyName(LockingPolicy p) noexcept;
const char* ipsPolicyName(IpsPolicy p) noexcept;

}  // namespace affinity
