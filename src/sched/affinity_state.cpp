#include "sched/affinity_state.hpp"

#include <limits>

#include "util/check.hpp"

namespace affinity {

AffinityState::AffinityState(unsigned num_procs, std::size_t num_streams, unsigned num_stacks)
    : code_last_(num_procs, -std::numeric_limits<double>::infinity()),
      stream_last_(num_streams),
      stack_last_(num_stacks) {
  AFF_CHECK(num_procs >= 1);
}

double AffinityState::codeAge(unsigned proc, double now) const noexcept {
  AFF_DCHECK(proc < code_last_.size());
  const double last = code_last_[proc];
  if (last == -std::numeric_limits<double>::infinity()) return kColdAge;
  const double age = now - last;
  return age > 0.0 ? age : 0.0;
}

double AffinityState::sharedAge(unsigned proc, double now) const noexcept {
  return ageOf(shared_last_, proc, now);
}

double AffinityState::streamAge(unsigned proc, std::uint32_t stream, double now) const noexcept {
  AFF_DCHECK(stream < stream_last_.size());
  return ageOf(stream_last_[stream], proc, now);
}

double AffinityState::stackAge(unsigned proc, std::uint32_t stack, double now) const noexcept {
  AFF_DCHECK(stack < stack_last_.size());
  return ageOf(stack_last_[stack], proc, now);
}

int AffinityState::lastProcOfStream(std::uint32_t stream) const noexcept {
  AFF_DCHECK(stream < stream_last_.size());
  return stream_last_[stream].proc;
}

int AffinityState::lastProcOfStack(std::uint32_t stack) const noexcept {
  AFF_DCHECK(stack < stack_last_.size());
  return stack_last_[stack].proc;
}

double AffinityState::lastProtocolTime(unsigned proc) const noexcept {
  AFF_DCHECK(proc < code_last_.size());
  return code_last_[proc];
}

void AffinityState::onComplete(unsigned proc, std::uint32_t stream, std::uint32_t stack,
                               double now) noexcept {
  AFF_DCHECK(proc < code_last_.size());
  code_last_[proc] = now;
  shared_last_ = LastTouch{static_cast<int>(proc), now};
  if (stream < stream_last_.size()) {
    const int prev = stream_last_[stream].proc;
    if (prev >= 0) {
      ++stream_revisits_;
      if (prev != static_cast<int>(proc)) ++stream_migrations_;
    }
    stream_last_[stream] = LastTouch{static_cast<int>(proc), now};
  }
  if (stack != kNoStack && stack < stack_last_.size()) {
    const int prev = stack_last_[stack].proc;
    if (prev >= 0) {
      ++stack_revisits_;
      if (prev != static_cast<int>(proc)) ++stack_migrations_;
    }
    stack_last_[stack] = LastTouch{static_cast<int>(proc), now};
  }
}

}  // namespace affinity
