// parallel_sim.hpp — conservative (lookahead + epoch barrier) parallel
// execution of ProtocolSim, bit-identical to the serial run.
//
// The eligible configurations — IPS with wired stacks, stateless NIC
// dispatch, no shared bus, no lock path, no observation hooks — decompose
// exactly: stream -> stack -> processor is a fixed map, a processor serves
// only its own stacks, and the cache-affinity ages it reads are functions of
// its own history. Partitioning the simulated processors across shards
// (proc % shards) therefore partitions the *entire event graph*; the only
// state the serial run shares across the partition is the statistics
// accumulators. Each shard runs its slice of the simulation on its own
// thread (synchronizing at epoch barriers sized from the analytic minimum
// service time) and logs every statistics-mutating operation with its
// virtual timestamp; the coordinator then replays the merged logs into
// fresh accumulators in serial order. Floating-point statistics come out
// bit-identical because same-timestamp operations from different shards
// commute bitwise — except two measured completions, the one case that
// falls back to an honest serial rerun (still deterministic: the tie is a
// pure function of config + seed). docs/PARALLEL_SIM.md carries the full
// argument; GoldenSeed.ParallelMatchesSerial is the gate.
#pragma once

#include <cstdint>
#include <string>

#include "core/protocol_sim.hpp"

namespace affinity::obs {
class MetricsRegistry;
}  // namespace affinity::obs

namespace affinity {

/// How a parallel run was actually executed (introspection for tests and
/// tools; never affects results).
struct ParallelRunInfo {
  bool parallel = false;     ///< shards actually ran on threads
  unsigned shards = 0;       ///< shard/thread count used
  std::uint64_t epochs = 0;  ///< barrier synchronizations per shard
  double lookahead_us = 0.0; ///< analytic minimum service time
  bool replay_fallback = false;  ///< cross-shard completion tie -> serial rerun
  const char* fallback_reason = nullptr;  ///< why serial ran (nullptr if parallel)
};

/// True when `config` is in the exactly-decomposable family described
/// above. Ineligible configurations still honor parallel_procs — they just
/// run serially, producing the same bits they always did.
[[nodiscard]] bool parallelEligible(const SimConfig& config, const char** reason = nullptr);

/// Runs the simulation on min(config.parallel_procs, num_procs) threads
/// when eligible (serially otherwise) and returns metrics bit-identical to
/// ProtocolSim::run(). runOnce() routes here when parallel_procs > 1.
RunMetrics runParallel(const SimConfig& config, const ExecTimeModel& model,
                       const StreamSet& streams, ParallelRunInfo* info = nullptr);

/// Publishes a run's ParallelRunInfo as gauges under `prefix`
/// (docs/OBSERVABILITY.md, `sim.parallel.*`). Introspection only — the
/// numbers describe how the run executed, never what it computed.
void exportParallelRunInfo(const ParallelRunInfo& info, obs::MetricsRegistry& reg,
                           const std::string& prefix = "sim.parallel");

/// Implementation: shard construction, the epoch/barrier loop, and the
/// commit-log merge/replay. Friend of ProtocolSim.
class ParallelProtocolSim {
 public:
  static RunMetrics run(const SimConfig& config, const ExecTimeModel& model,
                        const StreamSet& streams, ParallelRunInfo* info);
};

}  // namespace affinity
