#include "core/experiment.hpp"

#include <algorithm>

#include "core/parallel_sim.hpp"

namespace affinity {

SimConfig defaultSimConfig() {
  SimConfig c;
  c.num_procs = 8;
  c.policy.paradigm = Paradigm::kLocking;
  c.policy.locking = LockingPolicy::kMru;
  return c;
}

void setAutoWindow(SimConfig& config, double rate_per_us, std::uint64_t target_packets) {
  const double window = static_cast<double>(target_packets) / std::max(rate_per_us, 1e-9);
  config.measure_us = std::max(window, 500'000.0);
  config.warmup_us = std::max(0.15 * config.measure_us, 100'000.0);
}

RunMetrics runOnce(const SimConfig& config, const ExecTimeModel& model,
                   const StreamSet& streams) {
  if (config.parallel_procs > 1) return runParallel(config, model, streams);
  ProtocolSim sim(config, model, streams);
  return sim.run();
}

double reductionPercent(double baseline, double improved) noexcept {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (baseline - improved) / baseline;
}

RunMetrics runUntilConfident(SimConfig config, const ExecTimeModel& model,
                             const StreamSet& streams, double target_fraction,
                             int max_doublings) {
  RunMetrics m = runOnce(config, model, streams);
  for (int i = 0; i < max_doublings; ++i) {
    if (m.saturated || m.completed == 0) return m;
    if (m.ci95_delay_us <= target_fraction * m.mean_delay_us) return m;
    config.measure_us *= 2.0;
    m = runOnce(config, model, streams);
  }
  return m;
}

}  // namespace affinity
