// scenario.hpp — build a complete experiment from a configuration file.
//
// A scenario file describes machine, model, workload, policy and run
// control; `buildScenario` turns it into the objects the simulator needs.
// This makes experiments reproducible artifacts (see scenarios/*.ini and
// tools/affinity_sim).
//
// Schema (all keys optional; defaults = the paper's standard setup):
//
//   [machine]  processors, lock_overhead_us, critical_section_us,
//              bus_occupancy
//   [model]    profile = udp-receive | udp-send | tcp-receive;
//              t_warm_us / dl1_us / dl2_us overrides
//   [cache]    model = sst | reuse (displacement model behind the reload
//              transients); topology = sgi-challenge | modern-llc (shared
//              32 MiB LLC; splits the memory transient, llc_split);
//              profile_streams, profile_packets, profile_bg_refs,
//              profile_seed, co_runners, duty (reuse-distance capture knobs
//              — docs/DESIGN.md cache-model seam)
//   [workload] type = poisson | batch | train | hotcold | zipf | churn |
//              trace; streams, rate_pkts_per_s, batch, geometric, train_len,
//              intercar_gap_us, hot, hot_share, zipf_alpha, churn_span_us,
//              trace_file
//   [policy]   paradigm = locking | ips | hybrid; locking = fcfs | mru |
//              stream-mru | wired-streams; ips = random | mru | wired;
//              stacks, adaptive, hybrid_locking_streams = 0,1,2
//   [flow]     enabled, budget_bytes, shards, policy = lru | fifo | random |
//              direct; shed, high_water, low_water, admit_fraction, seed
//              (bounded flow-state table — docs/ROBUSTNESS.md)
//   [run]      seed, warmup_us, measure_us, v_us, per_stream, confident,
//              parallel (conservative-parallel thread count, 0 = serial;
//              bit-identical results either way — docs/PARALLEL_SIM.md)
#pragma once

#include <optional>
#include <string>

#include "core/protocol_sim.hpp"
#include "util/config.hpp"

namespace affinity {

/// Everything needed to run one configured experiment.
struct Scenario {
  SimConfig config;
  ExecTimeModel model = ExecTimeModel::standard();
  StreamSet streams;
  bool run_until_confident = false;
};

/// Builds a scenario; nullopt (with `error`) for semantically invalid
/// configurations (unknown enum values, missing trace file, bad rates).
std::optional<Scenario> buildScenario(const ConfigFile& cfg, std::string* error = nullptr);

}  // namespace affinity
