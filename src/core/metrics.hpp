// metrics.hpp — outputs of one simulation run.
#pragma once

#include <cstdint>
#include <vector>

namespace affinity {

/// Steady-state performance metrics (collected after warmup).
struct RunMetrics {
  // Packet delay = completion − arrival (queueing + service), µs.
  double mean_delay_us = 0.0;
  double p50_delay_us = 0.0;
  double p95_delay_us = 0.0;
  double p99_delay_us = 0.0;
  double ci95_delay_us = 0.0;  ///< batch-means 95% half-width on the mean

  double mean_service_us = 0.0;  ///< execution time only (cache effects + overheads)
  double mean_lock_wait_us = 0.0;

  double offered_rate_per_us = 0.0;    ///< configured aggregate arrival rate
  double throughput_per_us = 0.0;      ///< completions per µs in the window
  double utilization = 0.0;            ///< mean busy processors / N
  double mean_queue_len = 0.0;         ///< time-averaged waiting packets

  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t backlog_end = 0;  ///< packets waiting or in service at the end

  /// True when the offered load exceeded capacity (backlog grew through the
  /// measurement window); delay numbers are then transient artifacts.
  bool saturated = false;

  /// Adaptive hybrid: number of stream reclassifications performed.
  std::uint64_t reclassifications = 0;

  /// Work stealing (LockingPolicy::kStealAffinity): steal operations and
  /// total jobs migrated by them (jobs >= steals when batches > 1).
  std::uint64_t steals = 0;
  std::uint64_t stolen_jobs = 0;
  /// Measured reload cost charged to stolen jobs inside the window (µs):
  /// their per-level reload transients plus the flat steal penalty. An
  /// upper bound on the migration's extra cache cost, asserted against the
  /// Gu et al. steal-cache-complexity envelope (cache/steal_bound.hpp).
  double steal_reload_us = 0.0;
  /// NIC dispatch front-end (SimConfig::dispatch): FDir/TFN pin moves.
  std::uint64_t flow_migrations = 0;
  /// TransportFriendly dispatch ledger (all zero for the other modes):
  /// consumer feedback accepted, repin proposals parked behind in-flight
  /// frames, parked proposals applied after drain, and proposals dropped as
  /// stale past the feedback window.
  std::uint64_t tfn_feedback = 0;
  std::uint64_t tfn_deferred = 0;
  std::uint64_t tfn_applied = 0;
  std::uint64_t tfn_stale = 0;

  /// Bounded flow table (SimConfig::flow): admission ledger. Conservation
  /// extends to arrived == completed_total + backlog + flow_shed; evictions
  /// cost warm state (cold reload on the next packet), never packets.
  std::uint64_t flow_inserts = 0;
  std::uint64_t flow_hits = 0;
  std::uint64_t flow_evictions = 0;
  std::uint64_t flow_shed = 0;        ///< packets refused by load shedding
  std::uint64_t flow_occupancy = 0;   ///< live entries at the end of the run
  std::uint64_t flow_capacity = 0;    ///< fixed entry capacity (0 = disabled)

  /// Mean delay per stream (same order as the StreamSet), if requested.
  std::vector<double> per_stream_mean_delay_us;
};

}  // namespace affinity
