// protocol_sim.hpp — the paper's multiprocessor protocol-processing
// simulation model (§3.1), with analytic per-packet service times (§3.2).
//
// N processors serve packets from S streams. A packet executes on exactly
// one processor in one thread (message-level parallelism). Its service time
// comes from ExecTimeModel: a warm base time plus reload transients for the
// footprint components (code / shared data / stream state) scaled by how
// long ago — and where — each component last executed (AffinityState).
// Whenever a processor is not executing protocol code, the general
// non-protocol workload runs on it and displaces the protocol footprint at
// the SST-modelled rate; this is captured by the component ages.
//
// Under Locking every packet additionally pays the lock acquisition
// overhead and serializes through a short critical section on the shared
// stack (modelled as a FIFO resource). Under IPS a stack processes its
// packets serially (one schedulable context per stack) but needs no locks.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cache/exec_time.hpp"
#include "core/metrics.hpp"
#include "flow/flow_table.hpp"
#include "net/dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/affinity_state.hpp"
#include "sched/policy.hpp"
#include "sim/simulator.hpp"
#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "stats/online.hpp"
#include "stats/time_weighted.hpp"
#include "util/rng.hpp"
#include "workload/stream_set.hpp"

namespace affinity {

/// Observation hook for tests and detailed traces: called at every service
/// start and completion. Implementations must not mutate the simulation.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// `stack` is AffinityState::kNoStack for Locking-paradigm packets.
  /// `arrival_us` is the packet's arrival time: per-stream service starts
  /// with nondecreasing arrival_us iff the run preserved stream order.
  virtual void onServiceStart(unsigned proc, std::uint32_t stream, std::uint32_t stack,
                              double arrival_us, double now_us, double service_us) = 0;
  virtual void onServiceEnd(unsigned proc, std::uint32_t stream, std::uint32_t stack,
                            double now_us) = 0;
};

/// Configuration of one simulation run.
struct SimConfig {
  unsigned num_procs = 8;
  PolicyConfig policy;
  /// Per-packet lock acquisition/release overhead under Locking (µs): the
  /// parallelized x-kernel receive path takes several locks per packet
  /// (driver queue, IP demux map, UDP demux map, socket buffer), and
  /// software synchronization on RISC shared-memory machines is expensive
  /// (paper §1, citing Bjorkman & Gunningberg and Nahum et al.).
  double lock_overhead_us = 20.0;
  /// Serialized critical-section length on the shared stack under Locking
  /// (the demux-map lookups packets cannot overlap).
  double critical_section_us = 8.0;
  /// V: fixed per-packet overhead that gains nothing from affinity
  /// (data-touching work on uncached packet data; paper Figs. 10–11).
  double fixed_overhead_us = 0.0;
  /// Memory-bus contention (the Challenge's POWERpath-2 is a shared bus):
  /// fraction of a packet's L2-reload time that occupies the bus
  /// exclusively. 0 disables the model; ~0.35 is typical (per-miss bus
  /// occupancy vs total miss latency). The bus is modeled as a FIFO
  /// resource acquired for that long at service start — concurrent cold
  /// packets on different processors then delay each other, which is what
  /// caps multiprocessor scalability for cache-cold workloads.
  double bus_occupancy_fraction = 0.0;
  double warmup_us = 200'000.0;     ///< discarded transient
  double measure_us = 2'000'000.0;  ///< measurement window
  std::uint64_t seed = 1;
  bool per_stream_stats = false;
  /// Conservative-parallel execution (docs/PARALLEL_SIM.md): number of real
  /// threads to shard the simulated processors across; 0/1 = serial. Honored
  /// by runOnce() via runParallel(); configurations outside the
  /// exactly-decomposable family silently run serially — the results are
  /// bit-identical to the serial run either way (that is the contract,
  /// guarded by GoldenSeed.ParallelMatchesSerial).
  unsigned parallel_procs = 0;
  /// Optional observation hook (not owned; may be nullptr).
  SimObserver* observer = nullptr;

  // --- observability (docs/OBSERVABILITY.md) -------------------------------
  /// Optional metrics registry (not owned). Only thread-safe instruments
  /// (counters, means, histograms) are written unless `metrics_exclusive`
  /// is set, so one registry may be shared by parallel sweep points — the
  /// streaming stats then aggregate across every point that ran. Purely
  /// observational: enabling it changes no simulation result (guarded by
  /// determinism_test).
  obs::MetricsRegistry* metrics = nullptr;
  /// Promise that this sim is the registry's only concurrent writer; the
  /// sim then additionally registers single-writer time-weighted
  /// instruments (live per-processor queue depth / busy level). Set by
  /// single-run tools (tools/affinity_sim), never by parallel sweeps.
  bool metrics_exclusive = false;
  /// Optional trace session (not owned): per-processor service spans and
  /// control instants in *virtual* time. Give each concurrently-running
  /// sim its own session — virtual timelines of different runs must not
  /// interleave. Also purely observational.
  obs::TraceSession* trace = nullptr;

  // --- adaptive hybrid (paradigm == kHybrid) -------------------------------
  // Instead of a fixed hybrid_locking_streams list, reclassify streams
  // periodically from their observed arrival behavior: streams whose
  // windowed rate or burst size exceeds the thresholds are routed through
  // the Locking stack (multi-processor burst absorption); the rest keep the
  // lockless IPS fast path. This automates the TR's hybrid proposal.
  bool adaptive_hybrid = false;
  double adapt_interval_us = 50'000.0;
  double adapt_rate_threshold_per_us = 0.004;  ///< ≈ half a processor's capacity
  std::uint32_t adapt_batch_threshold = 4;     ///< max batch seen in a window
  /// Hysteresis: consecutive quiet windows required before a hot stream is
  /// demoted back to IPS (bursty streams are quiet between bursts; demoting
  /// eagerly causes flapping).
  std::uint32_t adapt_demote_windows = 4;
  /// Burstiness detector: an arrival is "clustered" when it follows the
  /// stream's previous arrival within this gap (packet trains, video
  /// frames). A stream whose clustered fraction exceeds the threshold in a
  /// window (with at least 8 arrivals) is classified hot even if its rate is
  /// modest — exactly the streams whose bursts serialize on an IPS stack.
  double adapt_cluster_gap_us = 100.0;
  double adapt_cluster_fraction = 0.5;

  // --- NIC dispatch front-end + work stealing ------------------------------
  /// Receive-side classifier ahead of the scheduler: kDirect reproduces the
  /// historical `stream % queues` map bit-for-bit (the default everywhere);
  /// kRss routes by Toeplitz hash; kFlowDirector pins streams to their
  /// last-used queue and migrates the pin when a steal re-homes a stream —
  /// Wu et al.'s reordering pathology (arXiv:1106.0443), reproduced
  /// deterministically here. kTransportFriendly is the companion paper's
  /// fix (arXiv:1106.0445): the pin moves only on consumer feedback, and
  /// only after the old home's in-flight prefix for the stream has drained
  /// — completions drive the move, and the deliberate repins that do occur
  /// cold-reset the stream's affinity footprint (the migration transient).
  net::NicDispatchMode dispatch = net::NicDispatchMode::kDirect;
  /// kTransportFriendly staleness window: a deferred repin proposal that is
  /// outlived by this many completions at the current pin is dropped.
  unsigned tfn_window = net::NicDispatcher::kDefaultTfnWindow;
  /// Work stealing (policy.locking == kStealAffinity): at most this many
  /// jobs move per steal (head-of-queue prefix, order preserved in flight).
  unsigned steal_batch = 4;
  /// Victims with fewer queued jobs than this are left alone: a singleton
  /// job is usually cheaper served warm at its home than migrated cold, so
  /// stealing engages only once a backlog (a burst) builds.
  unsigned steal_min_queue = 2;
  /// Flat cost of the steal operation itself (queue transfer, CAS traffic),
  /// charged to the first stolen job on top of the cache model's
  /// cold-reload transients for the migrated footprint.
  double steal_penalty_us = 5.0;

  // --- bounded flow state (docs/ROBUSTNESS.md) -----------------------------
  /// Per-flow state table: bounded replacement for the implicit "one state
  /// record per stream forever" assumption. Admission is charged on every
  /// arrival; an eviction cold-resets the victim stream's affinity state
  /// (the performance cost of losing its footprint) and, when shedding is
  /// armed (flow.shed_enabled), new-flow arrivals can be refused outright
  /// under occupancy pressure — those packets extend the conservation
  /// equation: arrived == completed + backlog + flow_shed. The default
  /// budget is sized to never evict at paper-scale stream counts, so every
  /// golden figure is unchanged with the table on.
  flow::FlowTableConfig flow;

  /// Effective stack count under IPS/Hybrid (ips_stacks or one per proc).
  [[nodiscard]] unsigned effectiveStacks() const noexcept {
    return policy.ips_stacks != 0 ? policy.ips_stacks : num_procs;
  }
};

/// One simulation run. Construct, then run() exactly once.
class ProtocolSim {
 public:
  /// `streams` is cloned; the model is copied.
  ProtocolSim(SimConfig config, const ExecTimeModel& model, const StreamSet& streams);

  /// Executes the run and returns steady-state metrics.
  RunMetrics run();

 private:
  // Conservative-parallel execution (core/parallel_sim.{hpp,cpp}) constructs
  // one ProtocolSim per shard, restricts each to the streams whose wired
  // processor it owns, and replays the shards' statistics commit logs into
  // fresh accumulators in serial order. docs/PARALLEL_SIM.md carries the
  // determinism argument; nothing else may touch the shard machinery.
  friend class ParallelProtocolSim;

  /// One statistics-mutating operation, logged (shard mode only) at the
  /// virtual time it executed so the coordinator can replay the serial
  /// update order. Levels (not deltas) are logged for the time-weighted
  /// signals: the merged global level is then the sum of the latest
  /// per-shard levels, independent of same-timestamp interleaving.
  struct ShardOp {
    enum class Kind : std::uint8_t {
      kQueueLen,    ///< a = this shard's queued-packet count after the change
      kBusyLevel,   ///< a = this shard's busy-processor level after the change
      kCompletion,  ///< a = delay, b = exec time, c = lock/bus wait (measured)
    };
    Kind kind;
    double t;
    double a;
    double b;
    double c;
  };

  /// Restricts this instance to shard `shard` of `num_shards` and turns on
  /// commit logging. Call before run()/beginRun(); only configurations that
  /// pass parallelEligible() (core/parallel_sim.hpp) decompose exactly.
  void shardForParallel(unsigned shard, unsigned num_shards);
  /// run() prologue: schedules arrivals (owned streams only in shard mode),
  /// the warmup reset, and the mid-window backlog snapshot.
  void beginRun();
  /// Advances the event loop to virtual time `until` (epoch step).
  void advanceTo(double until) { sim_.runUntil(until); }
  /// run() epilogue: conservation check + metric extraction.
  RunMetrics finishRun();
  [[nodiscard]] bool ownsStream(std::uint32_t stream) const noexcept {
    return !shard_mode_ || owned_stream_[stream] != 0;
  }
  /// busy_procs_ adjustment, logged in shard mode.
  void noteBusyLevel(double now, double delta) noexcept;

  struct Job {
    std::uint32_t stream;
    double arrival_us;
    /// Route assigned at arrival and stable for the job's lifetime: the
    /// wired processor queue (Locking wired/steal) or the IPS stack. Kept
    /// on the job because FlowDirector pins can move while it waits.
    std::uint32_t queue = 0;
    /// Set when the job reached its queue by a steal (kStealAffinity) —
    /// batch followers start later with no extra_us, so the flag, not the
    /// penalty argument, drives the migrated-footprint cost accounting
    /// (RunMetrics::steal_reload_us, bounded by cache/steal_bound.hpp).
    bool stolen = false;
  };

  /// Wired-family Locking policies route through per-processor queues.
  [[nodiscard]] bool wiredLocking() const noexcept {
    return config_.policy.locking == LockingPolicy::kWiredStreams ||
           config_.policy.locking == LockingPolicy::kStealAffinity;
  }

  // --- paradigm helpers ---
  [[nodiscard]] bool usesLocking(std::uint32_t stream) const noexcept;
  [[nodiscard]] std::uint32_t stackOf(std::uint32_t stream) const noexcept;

  // --- dispatch ---
  void onArrival(std::uint32_t stream);
  void arrivePacket(std::uint32_t stream);
  /// `extra_us` is added to the execution time (the steal penalty).
  void startService(unsigned proc, const Job& job, double extra_us = 0.0);
  void onComplete(unsigned proc, const Job& job, double lock_wait, double service);
  void tryDispatchStack(std::uint32_t stack);
  void feedProcessor(unsigned proc);
  /// kStealAffinity: `thief` is idle with an empty wired queue; migrate a
  /// bounded batch from the best victim. Returns true if a job started.
  bool trySteal(unsigned thief);

  /// Chooses an idle processor per the Locking policy; -1 if none idle.
  [[nodiscard]] int chooseIdleForLocking(std::uint32_t stream);
  /// Chooses an idle processor for a runnable IPS stack; -1 if none usable.
  [[nodiscard]] int chooseIdleForStack(std::uint32_t stack);
  [[nodiscard]] int mruIdleProc() const noexcept;
  [[nodiscard]] int randomIdleProc();

  [[nodiscard]] bool inMeasureWindow() const noexcept {
    return sim_.now() >= config_.warmup_us;
  }
  [[nodiscard]] std::uint64_t backlogNow() const noexcept;
  void recordQueueChange() noexcept;

  void scheduleArrivals(std::uint32_t stream);
  void markStackRunnable(std::uint32_t stack);
  bool takeFromRunnable(std::uint32_t stack);
  void adaptStreams();

  // --- observability (no-ops unless config_.metrics / config_.trace) ------
  void initObservability();
  /// Queue depth attributable to processor `proc` changed by `delta`
  /// (wired Locking queue, or an IPS stack whose wired home is `proc`).
  void noteProcQueue(unsigned proc, int delta) noexcept;
  void noteGlobalQueue(int delta) noexcept;
  void exportRunMetrics(const RunMetrics& m);

  SimConfig config_;
  ExecTimeModel model_;
  StreamSet streams_;
  Simulator sim_;
  AffinityState affinity_;
  // NIC front-end: one classifier per queue space (processor queues for the
  // Locking wired family, stack queues for IPS). Under kDirect both are
  // bit-identical to the historical modulo maps.
  net::NicDispatcher nic_wired_;
  net::NicDispatcher nic_stack_;
  std::uint64_t steals_ = 0;
  std::uint64_t stolen_jobs_ = 0;
  /// Measured reload cost of stolen jobs inside the window (µs): their full
  /// per-level reload transients plus the flat steal penalty — an upper
  /// bound on the migration's *extra* misses, gated against the Gu et al.
  /// steal-cache-complexity envelope in tests/steal_bound_test.cpp.
  double steal_reload_us_ = 0.0;
  // Bounded flow state (null when config_.flow.enabled is false). Single
  // writer (the event loop), so admissions are deterministic; in shard mode
  // each shard's table sees only its owned streams, which decomposes
  // exactly when no eviction or shedding can occur (parallel_sim gates).
  std::unique_ptr<flow::FlowTable> flow_table_;
  std::uint64_t flow_shed_ = 0;  ///< arrivals refused by the shedding layer
  Rng dispatch_rng_;
  std::vector<Rng> stream_rngs_;
  std::vector<std::uint8_t> uses_locking_;  ///< per stream (paradigm/hybrid)
  double end_time_ = 0.0;

  // Adaptive-hybrid window statistics (per stream).
  std::vector<std::uint64_t> window_arrivals_;
  std::vector<std::uint32_t> window_max_batch_;
  std::vector<std::uint32_t> quiet_windows_;
  std::vector<std::uint64_t> window_clustered_;
  std::vector<double> last_arrival_time_;
  std::uint64_t reclassifications_ = 0;

  // Processor state.
  std::vector<std::uint8_t> proc_idle_;
  unsigned idle_count_ = 0;

  // Locking queues.
  std::deque<Job> global_queue_;                  // FCFS / MRU / StreamMRU
  std::vector<std::deque<Job>> wired_queues_;     // WiredStreams (per proc)

  // IPS state.
  std::vector<std::deque<Job>> stack_queues_;
  std::vector<std::uint8_t> stack_busy_;
  std::vector<std::uint8_t> stack_waiting_;       ///< in runnable_stacks_
  std::deque<std::uint32_t> runnable_stacks_;  // FIFO of stacks awaiting a proc
  std::vector<std::vector<std::uint32_t>> stacks_by_proc_;  // wired placement

  // Shared-stack lock (Locking): time it next becomes free.
  double lock_free_at_ = 0.0;
  // Memory bus (when modeled): time it next becomes free.
  double bus_free_at_ = 0.0;
  std::uint64_t queued_count_ = 0;

  // Statistics.
  OnlineStats delay_;
  OnlineStats service_;
  OnlineStats lock_wait_;
  BatchMeans delay_batches_{500};
  Histogram delay_hist_{0.1, 8, 32};
  TimeWeighted busy_procs_;
  TimeWeighted queue_len_;
  std::uint64_t arrived_ = 0;
  std::uint64_t completed_ = 0;        ///< completions inside the window
  std::uint64_t completed_total_ = 0;  ///< all completions (conservation)
  std::uint64_t backlog_mid_ = 0;
  bool mid_recorded_ = false;
  std::vector<OnlineStats> per_stream_delay_;
  bool ran_ = false;

  // Conservative-parallel shard state (inert in serial runs).
  bool shard_mode_ = false;
  std::vector<std::uint8_t> owned_stream_;  ///< stream -> owned by this shard
  std::vector<ShardOp> shard_ops_;          ///< commit log, execution order

  // Observability plumbing (resolved once in initObservability; hot paths
  // test obs_on_ / the individual pointers, never the registry map).
  struct ObsHooks {
    obs::Counter* arrived = nullptr;
    obs::Counter* completed = nullptr;
    obs::LatencyHisto* delay = nullptr;
    obs::MeanStat* service = nullptr;
    obs::MeanStat* lock_wait = nullptr;
    obs::MeanStat* l1_warm = nullptr;
    obs::MeanStat* l2_warm = nullptr;
    obs::MeanStat* l3_warm = nullptr;  ///< shared-LLC topologies only (ΔL3 > 0)
    obs::Counter* stream_mru_hit = nullptr;
    obs::Counter* stream_mru_fallback = nullptr;
    obs::Counter* ips_mru_hit = nullptr;
    obs::Counter* ips_mru_fallback = nullptr;
    obs::Counter* steal_count = nullptr;
    obs::Counter* steal_jobs = nullptr;
    // metrics_exclusive only (single-writer live levels):
    std::vector<obs::TimeWeightedStat*> proc_queue;
    obs::TimeWeightedStat* global_queue = nullptr;
  };
  ObsHooks hooks_;
  bool obs_on_ = false;
  // Internal per-processor integrals (always safe; exported as averages).
  std::vector<TimeWeighted> proc_queue_tw_;
  std::vector<TimeWeighted> proc_busy_tw_;
  TimeWeighted global_queue_tw_;
  // Trace tracks (one per processor + one control track).
  std::vector<std::uint32_t> trace_tracks_;
  std::uint32_t trace_ctl_track_ = 0;
};

}  // namespace affinity
