#include "core/sweep_runner.hpp"

#include "util/rng.hpp"

namespace affinity {

std::uint64_t derivePointSeed(std::uint64_t base_seed, std::uint64_t point_index) noexcept {
  // Two splitmix64 steps from a mix of base and index: the golden-ratio
  // multiplier decorrelates adjacent indices, the second step guards
  // against base seeds chosen adversarially close together (1, 2, 3…).
  std::uint64_t state = base_seed ^ (point_index * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

SweepRunner::SweepRunner(unsigned jobs) noexcept : jobs_(jobs) {
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw != 0 ? hw : 1;
  }
}

std::vector<RunMetrics> SweepRunner::run(const ExecTimeModel& model,
                                         const std::vector<SweepPoint>& points) const {
  return map(points.size(), [&](std::size_t i) {
    const SweepPoint& p = points[i];
    return p.confident ? runUntilConfident(p.config, model, p.streams, p.target_fraction,
                                           p.max_doublings)
                       : runOnce(p.config, model, p.streams);
  });
}

std::vector<RunMetrics> SweepRunner::runReplications(const SimConfig& config,
                                                     const ExecTimeModel& model,
                                                     const StreamSet& streams,
                                                     std::size_t replications,
                                                     double target_fraction,
                                                     int max_doublings) const {
  return map(replications, [&](std::size_t i) {
    SimConfig c = config;
    c.seed = derivePointSeed(config.seed, i);
    return runUntilConfident(c, model, streams, target_fraction, max_doublings);
  });
}

}  // namespace affinity
