// experiment.hpp — conveniences shared by the bench drivers and examples.
#pragma once

#include "core/capacity.hpp"
#include "core/protocol_sim.hpp"

namespace affinity {

/// The study's standard configuration: 8 processors (the Challenge XL),
/// Locking/MRU, measured-model defaults for lock costs.
SimConfig defaultSimConfig();

/// Sizes warmup/measurement windows so roughly `target_packets` complete in
/// the window at the given aggregate rate (bounded below for stability).
void setAutoWindow(SimConfig& config, double rate_per_us,
                   std::uint64_t target_packets = 150'000);

/// One run.
RunMetrics runOnce(const SimConfig& config, const ExecTimeModel& model,
                   const StreamSet& streams);

/// Percentage reduction of `improved` relative to `baseline` (positive =
/// improvement).
double reductionPercent(double baseline, double improved) noexcept;

/// Sequential run-length control: reruns the simulation with doubled
/// measurement windows until the 95% batch-means half-width on mean delay is
/// below `target_fraction` of the mean (or `max_doublings` is reached, or
/// the run saturates — saturated runs return immediately since their delay
/// is a transient). Returns the final run's metrics.
RunMetrics runUntilConfident(SimConfig config, const ExecTimeModel& model,
                             const StreamSet& streams, double target_fraction = 0.05,
                             int max_doublings = 4);

}  // namespace affinity
