#include "core/scenario.hpp"

#include <sstream>

#include "cachesim/rd_capture.hpp"
#include "core/experiment.hpp"

#include "workload/trace_io.hpp"

namespace affinity {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

bool parsePolicy(const ConfigFile& cfg, SimConfig& out, std::string* error) {
  const std::string paradigm = cfg.getString("policy.paradigm", "locking");
  if (paradigm == "locking") {
    out.policy.paradigm = Paradigm::kLocking;
  } else if (paradigm == "ips") {
    out.policy.paradigm = Paradigm::kIps;
  } else if (paradigm == "hybrid") {
    out.policy.paradigm = Paradigm::kHybrid;
  } else {
    return fail(error, "unknown policy.paradigm '" + paradigm + "'");
  }

  const std::string locking = cfg.getString("policy.locking", "mru");
  if (locking == "fcfs") {
    out.policy.locking = LockingPolicy::kFcfs;
  } else if (locking == "mru") {
    out.policy.locking = LockingPolicy::kMru;
  } else if (locking == "stream-mru") {
    out.policy.locking = LockingPolicy::kStreamMru;
  } else if (locking == "wired-streams") {
    out.policy.locking = LockingPolicy::kWiredStreams;
  } else if (locking == "steal-affinity") {
    out.policy.locking = LockingPolicy::kStealAffinity;
  } else {
    return fail(error, "unknown policy.locking '" + locking + "'");
  }

  const std::string ips = cfg.getString("policy.ips", "wired");
  if (ips == "random") {
    out.policy.ips = IpsPolicy::kRandom;
  } else if (ips == "mru") {
    out.policy.ips = IpsPolicy::kMru;
  } else if (ips == "wired") {
    out.policy.ips = IpsPolicy::kWired;
  } else {
    return fail(error, "unknown policy.ips '" + ips + "'");
  }

  out.policy.ips_stacks = static_cast<unsigned>(cfg.getInt("policy.stacks", 0));
  out.adaptive_hybrid = cfg.getBool("policy.adaptive", false);

  // The NIC front-end reads from its own [net] section, with the historical
  // [policy] spelling kept as a fallback (every shipped scenario predating
  // the section still parses identically).
  const std::string dispatch =
      cfg.getString("net.dispatch", cfg.getString("policy.dispatch", "direct"));
  if (!net::parseNicMode(dispatch, &out.dispatch))
    return fail(error, "unknown net.dispatch '" + dispatch + "'");
  out.tfn_window = static_cast<unsigned>(cfg.getInt(
      "net.tfn_window", static_cast<int>(net::NicDispatcher::kDefaultTfnWindow)));
  if (out.tfn_window == 0) return fail(error, "net.tfn_window must be positive");
  out.steal_batch = static_cast<unsigned>(cfg.getInt("policy.steal_batch", 4));
  out.steal_min_queue = static_cast<unsigned>(cfg.getInt("policy.steal_min_queue", 2));
  out.steal_penalty_us = cfg.getDouble("policy.steal_penalty_us", 5.0);

  const std::string hybrid_list = cfg.getString("policy.hybrid_locking_streams", "");
  if (!hybrid_list.empty()) {
    std::stringstream ss(hybrid_list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      try {
        out.policy.hybrid_locking_streams.push_back(
            static_cast<std::uint32_t>(std::stoul(item)));
      } catch (...) {
        return fail(error, "bad stream id '" + item + "' in hybrid_locking_streams");
      }
    }
  }
  return true;
}

bool parseModel(const ConfigFile& cfg, ExecTimeModel& out, std::string* error) {
  const std::string profile = cfg.getString("model.profile", "udp-receive");
  ReloadParams reload;
  FootprintShares shares;  // receive-path defaults
  if (profile == "udp-receive") {
    reload = ReloadParams::measuredUdpReceive();
  } else if (profile == "udp-send") {
    reload = ReloadParams::measuredUdpSend();
  } else if (profile == "tcp-receive") {
    reload = ReloadParams::measuredTcpReceive();
  } else {
    return fail(error, "unknown model.profile '" + profile + "'");
  }
  reload.t_warm_us = cfg.getDouble("model.t_warm_us", reload.t_warm_us);
  reload.dl1_us = cfg.getDouble("model.dl1_us", reload.dl1_us);
  reload.dl2_us = cfg.getDouble("model.dl2_us", reload.dl2_us);
  out = ExecTimeModel(FlushModel(MachineParams::sgiChallenge(), SstParams::mvsWorkload()),
                      reload, shares);
  return true;
}

// [cache] — displacement-model plugin seam (DESIGN.md). Runs after
// parseModel so the reuse/LLC variants inherit whatever reload profile and
// overrides [model] selected; with the default `model = sst` on the
// `sgi-challenge` topology this is a no-op and the scenario is bit-identical
// to the pre-[cache] schema.
bool parseCache(const ConfigFile& cfg, unsigned num_procs, ExecTimeModel& model,
                std::string* error) {
  const std::string kind = cfg.getString("cache.model", "sst");
  const std::string topology = cfg.getString("cache.topology", "sgi-challenge");

  MachineParams machine;
  if (topology == "sgi-challenge") {
    machine = MachineParams::sgiChallenge();
  } else if (topology == "modern-llc") {
    machine = MachineParams::modern2020();
  } else {
    return fail(error, "unknown cache.topology '" + topology + "'");
  }
  const bool has_llc = machine.llc.size_bytes > 0;

  ReloadParams reload = model.reloadParams();
  const FootprintShares shares = model.shares();
  if (has_llc) reload = reload.splitForSharedLlc(cfg.getDouble("cache.llc_split", 0.6));

  if (kind == "sst") {
    // Default model + default topology: keep the model parseModel built.
    if (topology == "sgi-challenge") return true;
    model = ExecTimeModel(FlushModel(machine, SstParams::mvsWorkload()), reload, shares);
    return true;
  }
  if (kind != "reuse") return fail(error, "unknown cache.model '" + kind + "'");

  RdCaptureParams capture;
  capture.profile_streams =
      static_cast<unsigned>(cfg.getInt("cache.profile_streams",
                                       static_cast<int>(capture.profile_streams)));
  capture.profile_packets =
      static_cast<unsigned>(cfg.getInt("cache.profile_packets",
                                       static_cast<int>(capture.profile_packets)));
  capture.profile_bg_refs = static_cast<std::uint64_t>(
      cfg.getInt("cache.profile_bg_refs", static_cast<int>(capture.profile_bg_refs)));
  capture.profile_seed =
      static_cast<std::uint64_t>(cfg.getInt("cache.profile_seed", 42));
  // Co-runners share the LLC; on the shared-LLC topology every processor's
  // packet stream competes for it, so default to the machine size there.
  capture.co_runners = static_cast<unsigned>(
      cfg.getInt("cache.co_runners", has_llc ? static_cast<int>(num_procs) : 1));
  capture.protocol_duty = cfg.getDouble("cache.duty", capture.protocol_duty);
  if (capture.profile_streams == 0 || capture.profile_packets == 0 ||
      capture.profile_bg_refs == 0)
    return fail(error, "cache profile parameters must be positive");
  if (capture.co_runners == 0) return fail(error, "cache.co_runners must be positive");
  if (capture.protocol_duty < 0.0 || capture.protocol_duty > 1.0)
    return fail(error, "cache.duty must be in [0, 1]");

  model = ExecTimeModel(cachedDefaultRdModel(machine, capture), reload, shares);
  return true;
}

bool parseWorkload(const ConfigFile& cfg, StreamSet& out, std::string* error) {
  const std::string type = cfg.getString("workload.type", "poisson");
  const auto streams = static_cast<std::size_t>(cfg.getInt("workload.streams", 16));
  const double rate = cfg.getDouble("workload.rate_pkts_per_s", 12'000.0) / 1e6;
  if (type != "trace" && (rate <= 0.0 || streams == 0))
    return fail(error, "workload rate and streams must be positive");

  if (type == "poisson") {
    out = makePoissonStreams(streams, rate);
  } else if (type == "batch") {
    out = makeBatchStreams(streams, rate, cfg.getDouble("workload.batch", 8.0),
                           cfg.getBool("workload.geometric", false));
  } else if (type == "train") {
    out = makeTrainStreams(streams, rate, cfg.getDouble("workload.train_len", 8.0),
                           cfg.getDouble("workload.intercar_gap_us", 30.0));
  } else if (type == "hotcold") {
    const auto hot = static_cast<std::size_t>(cfg.getInt("workload.hot", 2));
    if (hot == 0 || hot >= streams) return fail(error, "workload.hot must be in (0, streams)");
    out = makeHotColdStreams(hot, streams - hot, rate,
                             cfg.getDouble("workload.hot_share", 0.5));
  } else if (type == "zipf") {
    const double alpha = cfg.getDouble("workload.zipf_alpha", 1.0);
    if (alpha < 0.0) return fail(error, "workload.zipf_alpha must be >= 0");
    out = makeZipfStreams(streams, rate, alpha);
  } else if (type == "churn") {
    const double span = cfg.getDouble("workload.churn_span_us", 1'000'000.0);
    if (span < 0.0) return fail(error, "workload.churn_span_us must be >= 0");
    out = makeChurnStreams(streams, rate, span);
  } else if (type == "trace") {
    const std::string path = cfg.getString("workload.trace_file", "");
    if (path.empty()) return fail(error, "workload.type=trace requires workload.trace_file");
    std::string read_error;
    const auto records = readArrivalTrace(path, &read_error);
    if (records.empty()) return fail(error, "trace: " + read_error);
    out = makeTraceStreams(records);
  } else {
    return fail(error, "unknown workload.type '" + type + "'");
  }
  return true;
}

bool parseFlow(const ConfigFile& cfg, SimConfig& out, std::string* error) {
  out.flow.enabled = cfg.getBool("flow.enabled", out.flow.enabled);
  out.flow.budget_bytes = static_cast<std::size_t>(
      cfg.getInt("flow.budget_bytes", static_cast<std::int64_t>(out.flow.budget_bytes)));
  out.flow.shards = static_cast<unsigned>(cfg.getInt("flow.shards", out.flow.shards));
  const std::string policy = cfg.getString("flow.policy", "lru");
  if (!flow::parseEvictPolicy(policy, &out.flow.policy))
    return fail(error, "unknown flow.policy '" + policy + "'");
  out.flow.shed_enabled = cfg.getBool("flow.shed", out.flow.shed_enabled);
  out.flow.shed_high_water = cfg.getDouble("flow.high_water", out.flow.shed_high_water);
  out.flow.shed_low_water = cfg.getDouble("flow.low_water", out.flow.shed_low_water);
  out.flow.shed_admit_fraction =
      cfg.getDouble("flow.admit_fraction", out.flow.shed_admit_fraction);
  out.flow.seed = static_cast<std::uint64_t>(
      cfg.getInt("flow.seed", static_cast<std::int64_t>(out.flow.seed)));
  if (out.flow.shed_high_water < out.flow.shed_low_water)
    return fail(error, "flow.high_water must be >= flow.low_water");
  return true;
}

}  // namespace

std::optional<Scenario> buildScenario(const ConfigFile& cfg, std::string* error) {
  Scenario s;
  s.config = defaultSimConfig();
  s.config.num_procs = static_cast<unsigned>(cfg.getInt("machine.processors", 8));
  if (s.config.num_procs == 0 || s.config.num_procs > 64) {
    if (error) *error = "machine.processors out of range";
    return std::nullopt;
  }
  s.config.lock_overhead_us = cfg.getDouble("machine.lock_overhead_us", 20.0);
  s.config.critical_section_us = cfg.getDouble("machine.critical_section_us", 8.0);
  s.config.bus_occupancy_fraction = cfg.getDouble("machine.bus_occupancy", 0.0);

  if (!parseModel(cfg, s.model, error)) return std::nullopt;
  if (!parseCache(cfg, s.config.num_procs, s.model, error)) return std::nullopt;
  if (!parseWorkload(cfg, s.streams, error)) return std::nullopt;
  if (!parsePolicy(cfg, s.config, error)) return std::nullopt;
  if (!parseFlow(cfg, s.config, error)) return std::nullopt;

  s.config.seed = static_cast<std::uint64_t>(cfg.getInt("run.seed", 1));
  s.config.warmup_us = cfg.getDouble("run.warmup_us", 200'000.0);
  s.config.measure_us = cfg.getDouble("run.measure_us", 2'000'000.0);
  s.config.fixed_overhead_us = cfg.getDouble("run.v_us", 0.0);
  s.config.per_stream_stats = cfg.getBool("run.per_stream", false);
  s.config.parallel_procs = static_cast<unsigned>(cfg.getInt("run.parallel", 0));
  s.run_until_confident = cfg.getBool("run.confident", false);

  if (s.config.adaptive_hybrid && s.config.policy.paradigm != Paradigm::kHybrid) {
    if (error) *error = "policy.adaptive requires policy.paradigm = hybrid";
    return std::nullopt;
  }
  return s;
}

}  // namespace affinity
