#include "core/capacity.hpp"

#include "util/check.hpp"

namespace affinity {

namespace {
bool feasible(const SimConfig& base, const ExecTimeModel& model,
              const StreamSetFactory& make_streams, double rate, double delay_bound_us,
              RunMetrics& out) {
  ProtocolSim sim(base, model, make_streams(rate));
  out = sim.run();
  return !out.saturated && out.mean_delay_us <= delay_bound_us && out.completed > 0;
}
}  // namespace

CapacityResult findMaxRate(const SimConfig& base, const ExecTimeModel& model,
                           const StreamSetFactory& make_streams, double lo_rate,
                           double hi_rate, double delay_bound_us, int iters) {
  AFF_CHECK(lo_rate > 0.0 && hi_rate > lo_rate);
  CapacityResult result;
  RunMetrics metrics;

  if (!feasible(base, model, make_streams, lo_rate, delay_bound_us, metrics)) {
    // Even the lower bound is infeasible; report it as the (degenerate) max.
    result.max_rate_per_us = 0.0;
    result.at_max = metrics;
    return result;
  }
  result.max_rate_per_us = lo_rate;
  result.at_max = metrics;

  if (feasible(base, model, make_streams, hi_rate, delay_bound_us, metrics)) {
    result.max_rate_per_us = hi_rate;
    result.at_max = metrics;
    return result;  // everything in range is feasible
  }

  double lo = lo_rate, hi = hi_rate;
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(base, model, make_streams, mid, delay_bound_us, metrics)) {
      lo = mid;
      result.max_rate_per_us = mid;
      result.at_max = metrics;
    } else {
      hi = mid;
    }
  }
  return result;
}

}  // namespace affinity
