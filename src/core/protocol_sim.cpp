#include "core/protocol_sim.hpp"

#include <algorithm>

namespace affinity {

ProtocolSim::ProtocolSim(SimConfig config, const ExecTimeModel& model, const StreamSet& streams)
    : config_(config),
      model_(model),
      streams_(streams.clone()),
      affinity_(config.num_procs, streams.count(), config.effectiveStacks()),
      nic_wired_(config.dispatch, config.num_procs, config.tfn_window),
      nic_stack_(config.dispatch, config.effectiveStacks(), config.tfn_window),
      dispatch_rng_(Rng(config.seed).split(0xd15c)),
      proc_idle_(config.num_procs, 1),
      idle_count_(config.num_procs),
      wired_queues_(config.num_procs),
      stack_queues_(config.effectiveStacks()),
      stack_busy_(config.effectiveStacks(), 0),
      stack_waiting_(config.effectiveStacks(), 0),
      stacks_by_proc_(config.num_procs) {
  AFF_CHECK(config_.num_procs >= 1);
  AFF_CHECK(!streams_.streams.empty());
  const auto num_streams = static_cast<std::uint32_t>(streams_.count());
  Rng seeder(config_.seed);
  stream_rngs_.reserve(num_streams);
  for (std::uint32_t s = 0; s < num_streams; ++s) stream_rngs_.push_back(seeder.split(s + 1));

  uses_locking_.assign(num_streams, 0);
  switch (config_.policy.paradigm) {
    case Paradigm::kLocking:
      std::fill(uses_locking_.begin(), uses_locking_.end(), 1);
      break;
    case Paradigm::kIps:
      break;
    case Paradigm::kHybrid:
      for (std::uint32_t s : config_.policy.hybrid_locking_streams)
        if (s < num_streams) uses_locking_[s] = 1;
      break;
  }

  const unsigned stacks = config_.effectiveStacks();
  for (std::uint32_t k = 0; k < stacks; ++k)
    stacks_by_proc_[k % config_.num_procs].push_back(k);

  if (config_.per_stream_stats) per_stream_delay_.resize(num_streams);
  if (config_.flow.enabled) flow_table_ = std::make_unique<flow::FlowTable>(config_.flow);
  initObservability();
}

void ProtocolSim::initObservability() {
  if (config_.trace != nullptr) {
    trace_tracks_.reserve(config_.num_procs);
    for (unsigned p = 0; p < config_.num_procs; ++p)
      trace_tracks_.push_back(config_.trace->track("proc " + std::to_string(p)));
    trace_ctl_track_ = config_.trace->track("sim control");
  }
  if (config_.metrics == nullptr) return;
  obs_on_ = true;
  auto& reg = *config_.metrics;
  hooks_.arrived = &reg.counter("sim.packets.arrived");
  hooks_.completed = &reg.counter("sim.packets.completed");
  hooks_.delay = &reg.histogram("sim.delay_us");
  hooks_.service = &reg.meanStat("sim.service_us");
  hooks_.lock_wait = &reg.meanStat("sim.lock_wait_us");
  hooks_.l1_warm = &reg.meanStat("sim.affinity.l1_warm_fraction");
  hooks_.l2_warm = &reg.meanStat("sim.affinity.l2_warm_fraction");
  if (model_.reloadParams().dl3_us > 0.0) {
    hooks_.l3_warm = &reg.meanStat("sim.cache.rd.l3_warm_fraction");
  }
  if (model_.kind() == CacheModelKind::kReuse && model_.reuseModel() != nullptr) {
    // Reuse-distance model parameters (docs/OBSERVABILITY.md, sim.cache.rd.*):
    // static per-run gauges describing the profile the run used.
    const RdCacheModel& rd = *model_.reuseModel();
    reg.gauge("sim.cache.rd.proto_lines").set(rd.protoLinesL2());
    reg.gauge("sim.cache.rd.llc_share_lines").set(rd.llcShareLines());
    reg.gauge("sim.cache.rd.co_runners").set(static_cast<double>(rd.coRunners()));
  }
  hooks_.stream_mru_hit = &reg.counter("sim.sched.stream_mru.hit");
  hooks_.stream_mru_fallback = &reg.counter("sim.sched.stream_mru.fallback");
  hooks_.ips_mru_hit = &reg.counter("sim.sched.ips_mru.hit");
  hooks_.ips_mru_fallback = &reg.counter("sim.sched.ips_mru.fallback");
  hooks_.steal_count = &reg.counter("sim.sched.steal.count");
  hooks_.steal_jobs = &reg.counter("sim.sched.steal.jobs");
  proc_queue_tw_.resize(config_.num_procs);
  proc_busy_tw_.resize(config_.num_procs);
  if (config_.metrics_exclusive) {
    hooks_.proc_queue.reserve(config_.num_procs);
    for (unsigned p = 0; p < config_.num_procs; ++p) {
      hooks_.proc_queue.push_back(
          &reg.timeWeighted("sim.proc." + std::to_string(p) + ".queue_depth"));
    }
    hooks_.global_queue = &reg.timeWeighted("sim.queue.global_depth");
  }
}

void ProtocolSim::noteProcQueue(unsigned proc, int delta) noexcept {
  if (!obs_on_) return;
  const double now = sim_.now();
  proc_queue_tw_[proc].adjust(now, delta);
  if (!hooks_.proc_queue.empty()) hooks_.proc_queue[proc]->adjust(now, delta);
}

void ProtocolSim::noteGlobalQueue(int delta) noexcept {
  if (!obs_on_) return;
  const double now = sim_.now();
  global_queue_tw_.adjust(now, delta);
  if (hooks_.global_queue != nullptr) hooks_.global_queue->adjust(now, delta);
}

bool ProtocolSim::usesLocking(std::uint32_t stream) const noexcept {
  return uses_locking_[stream] != 0;
}

std::uint32_t ProtocolSim::stackOf(std::uint32_t stream) const noexcept {
  return stream % config_.effectiveStacks();
}

std::uint64_t ProtocolSim::backlogNow() const noexcept {
  return queued_count_ + (config_.num_procs - idle_count_);
}

void ProtocolSim::recordQueueChange() noexcept {
  queue_len_.set(sim_.now(), static_cast<double>(queued_count_));
  if (shard_mode_) {
    shard_ops_.push_back(ShardOp{ShardOp::Kind::kQueueLen, sim_.now(),
                                 static_cast<double>(queued_count_), 0.0, 0.0});
  }
}

void ProtocolSim::noteBusyLevel(double now, double delta) noexcept {
  busy_procs_.adjust(now, delta);
  if (shard_mode_) {
    shard_ops_.push_back(
        ShardOp{ShardOp::Kind::kBusyLevel, now, busy_procs_.level(), 0.0, 0.0});
  }
}

void ProtocolSim::shardForParallel(unsigned shard, unsigned num_shards) {
  AFF_CHECK(!ran_);
  AFF_CHECK(num_shards >= 1 && shard < num_shards);
  // Only the exactly-decomposable family may be sharded; the full predicate
  // is parallelEligible() (core/parallel_sim.hpp). These are the invariants
  // the shard machinery itself relies on.
  AFF_CHECK(config_.policy.paradigm == Paradigm::kIps &&
            config_.policy.ips == IpsPolicy::kWired && !config_.adaptive_hybrid &&
            config_.bus_occupancy_fraction == 0.0 && config_.observer == nullptr &&
            config_.metrics == nullptr && config_.trace == nullptr);
  shard_mode_ = true;
  const auto num_streams = static_cast<std::uint32_t>(streams_.count());
  owned_stream_.assign(num_streams, 0);
  for (std::uint32_t s = 0; s < num_streams; ++s) {
    // The stream's whole service chain is pinned: stream -> stack (stateless
    // NIC dispatch) -> wired processor. Owning the processor owns the chain.
    const unsigned proc = nic_stack_.queueOf(s) % config_.num_procs;
    if (proc % num_shards == shard) owned_stream_[s] = 1;
  }
}

void ProtocolSim::scheduleArrivals(std::uint32_t stream) {
  const auto a = streams_.streams[stream]->next(stream_rngs_[stream]);
  const double t = sim_.now() + a.gap_us;
  if (t > end_time_) return;
  sim_.schedule(t, [this, stream, batch = a.batch] {
    if (config_.adaptive_hybrid) {
      window_arrivals_[stream] += batch;
      if (batch > window_max_batch_[stream]) window_max_batch_[stream] = batch;
      const double now = sim_.now();
      if (last_arrival_time_[stream] >= 0.0 &&
          now - last_arrival_time_[stream] <= config_.adapt_cluster_gap_us)
        ++window_clustered_[stream];
      window_clustered_[stream] += batch - 1;  // co-arrivals are clustered
      last_arrival_time_[stream] = now;
    }
    for (std::uint32_t k = 0; k < batch; ++k) arrivePacket(stream);
    scheduleArrivals(stream);
  });
}

int ProtocolSim::mruIdleProc() const noexcept {
  int best = -1;
  double best_time = -kColdAge;
  for (unsigned p = 0; p < config_.num_procs; ++p) {
    if (!proc_idle_[p]) continue;
    const double t = affinity_.lastProtocolTime(p);
    if (best < 0 || t > best_time) {
      best = static_cast<int>(p);
      best_time = t;
    }
  }
  return best;
}

int ProtocolSim::randomIdleProc() {
  if (idle_count_ == 0) return -1;
  std::uint64_t pick = dispatch_rng_.uniform_u64(idle_count_);
  for (unsigned p = 0; p < config_.num_procs; ++p) {
    if (!proc_idle_[p]) continue;
    if (pick == 0) return static_cast<int>(p);
    --pick;
  }
  return -1;  // unreachable
}

int ProtocolSim::chooseIdleForLocking(std::uint32_t stream) {
  if (idle_count_ == 0) return -1;
  switch (config_.policy.locking) {
    case LockingPolicy::kFcfs:
      return randomIdleProc();
    case LockingPolicy::kMru:
      return mruIdleProc();
    case LockingPolicy::kStreamMru: {
      const int lp = affinity_.lastProcOfStream(stream);
      if (lp >= 0 && proc_idle_[lp]) {
        if (obs_on_) hooks_.stream_mru_hit->inc();
        return lp;
      }
      if (obs_on_) hooks_.stream_mru_fallback->inc();
      return mruIdleProc();
    }
    case LockingPolicy::kWiredStreams:
    case LockingPolicy::kStealAffinity:
      break;  // handled by the caller (per-processor queues)
  }
  return -1;
}

int ProtocolSim::chooseIdleForStack(std::uint32_t stack) {
  switch (config_.policy.ips) {
    case IpsPolicy::kWired: {
      const unsigned p = stack % config_.num_procs;
      return proc_idle_[p] ? static_cast<int>(p) : -1;
    }
    case IpsPolicy::kRandom:
      return randomIdleProc();
    case IpsPolicy::kMru: {
      if (idle_count_ == 0) return -1;
      const int lp = affinity_.lastProcOfStack(stack);
      if (lp >= 0 && proc_idle_[lp]) {
        if (obs_on_) hooks_.ips_mru_hit->inc();
        return lp;
      }
      if (obs_on_) hooks_.ips_mru_fallback->inc();
      return mruIdleProc();
    }
  }
  return -1;
}

void ProtocolSim::arrivePacket(std::uint32_t stream) {
  ++arrived_;
  if (obs_on_) hooks_.arrived->inc();
  if (flow_table_ != nullptr) {
    // Charge the bounded flow table before any scheduling decision. The sim
    // is single-threaded and consumes state synchronously, so the in-flight
    // count is released immediately — the table here models *state*
    // retention, not frame custody (the runtime engines do both).
    const auto r = flow_table_->admit(stream);
    if (r.status == flow::AdmitResult::Status::kShed) {
      // Refused outright: the packet never enters a queue. Conservation
      // extends to arrived == completed + backlog + flow_shed.
      ++flow_shed_;
      return;
    }
    flow_table_->release(stream, r.gen);
    if (r.evicted && r.victim_key != flow::AdmitResult::kNoVictim) {
      // The victim's per-flow state is gone: its next packet pays the full
      // cold-reload transient wherever it lands.
      affinity_.forgetStream(r.victim_key);
    }
  }
  const double now = sim_.now();
  if (usesLocking(stream)) {
    if (wiredLocking()) {
      const unsigned p = nic_wired_.queueOf(stream);
      // TransportFriendly: the frame enters the old home's in-flight prefix
      // the moment it is routed; a deferred repin waits for it to complete.
      nic_wired_.noteDispatched(stream);
      const Job job{stream, now, p};
      if (proc_idle_[p]) {
        startService(p, job);
      } else {
        wired_queues_[p].push_back(job);
        ++queued_count_;
        recordQueueChange();
        noteProcQueue(p, +1);
        // Work stealing is what keeps wired queues from starving idle
        // processors: give the lowest-index idle one a chance right away.
        if (config_.policy.locking == LockingPolicy::kStealAffinity && idle_count_ > 0) {
          for (unsigned t = 0; t < config_.num_procs; ++t) {
            if (proc_idle_[t]) {
              trySteal(t);
              break;
            }
          }
        }
      }
      return;
    }
    const Job job{stream, now, 0};
    const int p = chooseIdleForLocking(stream);
    if (p >= 0) {
      startService(static_cast<unsigned>(p), job);
    } else {
      global_queue_.push_back(job);
      ++queued_count_;
      recordQueueChange();
      noteGlobalQueue(+1);
    }
    return;
  }
  const std::uint32_t k = nic_stack_.queueOf(stream);
  nic_stack_.noteDispatched(stream);
  const Job job{stream, now, k};
  stack_queues_[k].push_back(job);
  ++queued_count_;
  recordQueueChange();
  noteProcQueue(k % config_.num_procs, +1);
  tryDispatchStack(k);
}

void ProtocolSim::markStackRunnable(std::uint32_t stack) {
  if (config_.policy.ips == IpsPolicy::kWired) return;  // found via stacks_by_proc_
  if (stack_waiting_[stack]) return;
  runnable_stacks_.push_back(stack);
  stack_waiting_[stack] = 1;
}

bool ProtocolSim::takeFromRunnable(std::uint32_t stack) {
  if (!stack_waiting_[stack]) return false;
  auto it = std::find(runnable_stacks_.begin(), runnable_stacks_.end(), stack);
  AFF_DCHECK(it != runnable_stacks_.end());
  runnable_stacks_.erase(it);
  stack_waiting_[stack] = 0;
  return true;
}

void ProtocolSim::tryDispatchStack(std::uint32_t stack) {
  if (stack_busy_[stack] || stack_queues_[stack].empty()) return;
  const int p = chooseIdleForStack(stack);
  if (p < 0) {
    markStackRunnable(stack);
    return;
  }
  takeFromRunnable(stack);
  const Job job = stack_queues_[stack].front();
  stack_queues_[stack].pop_front();
  --queued_count_;
  recordQueueChange();
  noteProcQueue(stack % config_.num_procs, -1);
  startService(static_cast<unsigned>(p), job);
}

void ProtocolSim::startService(unsigned proc, const Job& job, double extra_us) {
  AFF_DCHECK(proc_idle_[proc]);
  const double now = sim_.now();
  const bool locking = usesLocking(job.stream);
  CacheStateAges ages;
  std::uint32_t stack = AffinityState::kNoStack;
  if (locking) {
    ages.code = affinity_.codeAge(proc, now);
    ages.shared = affinity_.sharedAge(proc, now);
    ages.stream = affinity_.streamAge(proc, job.stream, now);
  } else {
    stack = job.queue;
    const double a = affinity_.stackAge(proc, stack, now);
    ages.code = affinity_.codeAge(proc, now);
    ages.shared = a;  // stack-private data: shared + stream components
    ages.stream = a;
    stack_busy_[stack] = 1;
  }
  if (model_.reloadParams().dl3_us > 0.0) {
    // Shared-LLC topology: the L3 term keys on where the footprint was last
    // touched *anywhere* — a migrated component is cold in the private
    // levels but usually still LLC-warm. Skipped entirely on two-level
    // machines, where the ages above reproduce the paper bit-for-bit.
    ages.code_any = affinity_.codeAgeAnywhere(now);
    if (locking) {
      ages.shared_any = affinity_.sharedAgeAnywhere(now);
      ages.stream_any = affinity_.streamAgeAnywhere(job.stream, now);
    } else {
      const double a_any = affinity_.stackAgeAnywhere(stack, now);
      ages.shared_any = a_any;
      ages.stream_any = a_any;
    }
  }
  const auto parts = model_.serviceParts(ages);
  if (obs_on_) {
    // Warm fraction per level: how much of the full reload transient this
    // packet did NOT pay (1 = perfectly warm, 0 = fully cold/migrated).
    const auto& rp = model_.reloadParams();
    hooks_.l1_warm->add(1.0 - parts.l1 / rp.dl1_us);
    hooks_.l2_warm->add(1.0 - parts.l2 / rp.dl2_us);
    if (hooks_.l3_warm != nullptr) hooks_.l3_warm->add(1.0 - parts.l3 / rp.dl3_us);
    proc_busy_tw_[proc].set(now, 1.0);
  }
  if (job.stolen && inMeasureWindow()) {
    steal_reload_us_ += parts.l1 + parts.l2 + parts.l3 + extra_us;
  }
  double exec = parts.total() + config_.fixed_overhead_us + extra_us;
  double lock_wait = 0.0;
  if (locking) {
    exec += config_.lock_overhead_us;
    lock_wait = std::max(0.0, lock_free_at_ - now);
    lock_free_at_ = now + lock_wait + config_.critical_section_us;
  }
  if (config_.bus_occupancy_fraction > 0.0 && parts.l2 > 0.0) {
    // The L2-reload portion occupies the shared memory bus; queue behind
    // other processors' in-flight reloads.
    const double bus_time = config_.bus_occupancy_fraction * parts.l2;
    const double bus_wait = std::max(0.0, bus_free_at_ - now);
    bus_free_at_ = now + bus_wait + bus_time;
    lock_wait += bus_wait;  // accounted with the other stall time
  }
  proc_idle_[proc] = 0;
  --idle_count_;
  noteBusyLevel(now, +1.0);
  if (config_.observer != nullptr)
    config_.observer->onServiceStart(proc, job.stream, stack, job.arrival_us, now,
                                     lock_wait + exec);
  sim_.scheduleAfter(lock_wait + exec, [this, proc, job, lock_wait, exec] {
    onComplete(proc, job, lock_wait, exec);
  });
}

void ProtocolSim::feedProcessor(unsigned proc) {
  AFF_DCHECK(proc_idle_[proc]);
  // Candidate Locking job.
  std::deque<Job>* lock_queue = nullptr;
  std::size_t lock_index = 0;
  if (wiredLocking()) {
    if (!wired_queues_[proc].empty()) lock_queue = &wired_queues_[proc];
  } else if (!global_queue_.empty()) {
    lock_queue = &global_queue_;
    if (config_.policy.locking == LockingPolicy::kStreamMru) {
      // Per-processor thread pools (paper footnote 7): a freed processor
      // prefers a waiting packet whose stream last executed here, so stream
      // affinity survives high load. Bounded scan keeps dispatch O(1)-ish
      // and limits reordering.
      const std::size_t depth = std::min<std::size_t>(global_queue_.size(), 64);
      for (std::size_t i = 0; i < depth; ++i) {
        if (affinity_.lastProcOfStream((*lock_queue)[i].stream) == static_cast<int>(proc)) {
          lock_index = i;
          break;
        }
      }
    }
  }

  // Candidate IPS stack for this processor.
  int stack = -1;
  if (config_.policy.ips == IpsPolicy::kWired) {
    double oldest = 0.0;
    for (std::uint32_t k : stacks_by_proc_[proc]) {
      if (stack_busy_[k] || stack_queues_[k].empty()) continue;
      const double head = stack_queues_[k].front().arrival_us;
      if (stack < 0 || head < oldest) {
        stack = static_cast<int>(k);
        oldest = head;
      }
    }
  } else {
    // Prefer a runnable stack with affinity for this processor (MRU), else
    // the longest-waiting runnable stack.
    if (config_.policy.ips == IpsPolicy::kMru) {
      for (std::uint32_t k : runnable_stacks_) {
        if (!stack_busy_[k] && !stack_queues_[k].empty() &&
            affinity_.lastProcOfStack(k) == static_cast<int>(proc)) {
          stack = static_cast<int>(k);
          break;
        }
      }
    }
    if (stack < 0) {
      for (std::uint32_t k : runnable_stacks_) {
        if (!stack_busy_[k] && !stack_queues_[k].empty()) {
          stack = static_cast<int>(k);
          break;
        }
      }
    }
  }

  if (lock_queue == nullptr && stack < 0) {
    // No local work anywhere: the steal policy raids another wired queue
    // rather than idling (strictly a last resort, so affinity is spent only
    // when the alternative is an idle processor).
    if (config_.policy.locking == LockingPolicy::kStealAffinity) trySteal(proc);
    return;
  }
  // Hybrid fairness: serve whichever candidate's head arrived first.
  bool take_locking = lock_queue != nullptr;
  if (lock_queue != nullptr && stack >= 0) {
    take_locking =
        (*lock_queue)[lock_index].arrival_us <= stack_queues_[stack].front().arrival_us;
  }
  if (take_locking) {
    const Job job = (*lock_queue)[lock_index];
    lock_queue->erase(lock_queue->begin() + static_cast<std::ptrdiff_t>(lock_index));
    --queued_count_;
    recordQueueChange();
    if (lock_queue == &global_queue_) {
      noteGlobalQueue(-1);
    } else {
      noteProcQueue(proc, -1);
    }
    startService(proc, job);
  } else {
    const auto k = static_cast<std::uint32_t>(stack);
    takeFromRunnable(k);
    const Job job = stack_queues_[k].front();
    stack_queues_[k].pop_front();
    --queued_count_;
    recordQueueChange();
    noteProcQueue(k % config_.num_procs, -1);
    startService(proc, job);
  }
}

bool ProtocolSim::trySteal(unsigned thief) {
  AFF_DCHECK(proc_idle_[thief]);
  if (!wired_queues_[thief].empty()) return false;  // own work first
  const double now = sim_.now();
  // Victim: the queue whose head stream is coldest at its own home — that
  // job has the least warm state to forfeit by migrating. Ties go to the
  // longest backlog (the load-imbalance signal), then the lowest index
  // (determinism).
  int victim = -1;
  double best_age = 0.0;
  std::size_t best_len = 0;
  const std::size_t min_len = std::max<unsigned>(config_.steal_min_queue, 1);
  for (unsigned q = 0; q < config_.num_procs; ++q) {
    if (q == thief || wired_queues_[q].size() < min_len) continue;
    const double age = affinity_.streamAge(q, wired_queues_[q].front().stream, now);
    const std::size_t len = wired_queues_[q].size();
    if (victim < 0 || age > best_age || (age == best_age && len > best_len)) {
      victim = static_cast<int>(q);
      best_age = age;
      best_len = len;
    }
  }
  if (victim < 0) return false;
  auto& vq = wired_queues_[static_cast<unsigned>(victim)];
  const std::size_t take =
      std::min<std::size_t>(std::max<unsigned>(config_.steal_batch, 1), vq.size());
  ++steals_;
  stolen_jobs_ += take;
  if (obs_on_) {
    hooks_.steal_count->inc();
    hooks_.steal_jobs->inc(take);
  }
  // FlowDirector's pin follows the theft immediately (packet-triggered
  // update — the pathology). TransportFriendly learns only from the thief's
  // *completions* (onComplete feedback), so the steal itself must not touch
  // the pin here: doing so would also double-drain the in-flight window.
  const bool fdir = config_.dispatch == net::NicDispatchMode::kFlowDirector;
  Job first = vq.front();
  vq.pop_front();
  first.queue = thief;
  first.stolen = true;
  if (fdir) nic_wired_.noteRun(first.stream, thief);
  for (std::size_t i = 1; i < take; ++i) {
    Job j = vq.front();
    vq.pop_front();
    j.queue = thief;
    j.stolen = true;
    if (fdir) nic_wired_.noteRun(j.stream, thief);
    wired_queues_[thief].push_back(j);
  }
  noteProcQueue(static_cast<unsigned>(victim), -static_cast<int>(take));
  if (take > 1) noteProcQueue(thief, static_cast<int>(take - 1));
  --queued_count_;
  recordQueueChange();
  startService(thief, first, config_.steal_penalty_us);
  return true;
}

void ProtocolSim::onComplete(unsigned proc, const Job& job, double lock_wait, double exec) {
  const double now = sim_.now();
  const bool locking = usesLocking(job.stream);
  const std::uint32_t stack = locking ? AffinityState::kNoStack : job.queue;
  affinity_.onComplete(proc, job.stream, stack, now);
  if (locking) {
    if (wiredLocking() && nic_wired_.noteRun(job.stream, proc)) {
      // A deferred transport-friendly repin just applied: the stream's warm
      // footprint at the old home is forfeited, so its next packet pays the
      // cold-reload transient at the new one — the deliberate migration's
      // cost, charged through the same cache model as every other one.
      affinity_.forgetStream(job.stream);
    }
  } else {
    // Stack pins never move (a stream's stack is fixed), so TFN feedback
    // here only closes the in-flight window; no repin can apply.
    (void)nic_stack_.noteRun(job.stream, job.queue);
  }
  if (config_.observer != nullptr) config_.observer->onServiceEnd(proc, job.stream, stack, now);
  ++completed_total_;
  if (config_.trace != nullptr) {
    config_.trace->span(trace_tracks_[proc], locking ? "service (locking)" : "service (ips)",
                        now - (lock_wait + exec), now, job.stream,
                        stack == AffinityState::kNoStack ? 0 : stack);
  }
  if (obs_on_) proc_busy_tw_[proc].set(now, 0.0);

  if (inMeasureWindow()) {
    const double delay = now - job.arrival_us;
    delay_.add(delay);
    delay_batches_.add(delay);
    delay_hist_.add(delay);
    service_.add(exec);
    lock_wait_.add(lock_wait);
    ++completed_;
    if (config_.per_stream_stats) per_stream_delay_[job.stream].add(delay);
    if (shard_mode_) {
      shard_ops_.push_back(ShardOp{ShardOp::Kind::kCompletion, now, delay, exec, lock_wait});
    }
    if (obs_on_) {
      hooks_.completed->inc();
      hooks_.delay->add(delay);
      hooks_.service->add(exec);
      hooks_.lock_wait->add(lock_wait);
    }
  }

  if (stack != AffinityState::kNoStack) {
    stack_busy_[stack] = 0;
    if (!stack_queues_[stack].empty()) markStackRunnable(stack);
  }
  proc_idle_[proc] = 1;
  ++idle_count_;
  noteBusyLevel(now, -1.0);
  feedProcessor(proc);
  if (stack != AffinityState::kNoStack) tryDispatchStack(stack);
}

void ProtocolSim::adaptStreams() {
  const double interval = config_.adapt_interval_us;
  for (std::uint32_t s = 0; s < uses_locking_.size(); ++s) {
    const double rate = static_cast<double>(window_arrivals_[s]) / interval;
    const bool clustered =
        window_arrivals_[s] >= 8 &&
        static_cast<double>(window_clustered_[s]) >
            config_.adapt_cluster_fraction * static_cast<double>(window_arrivals_[s]);
    const bool hot = rate > config_.adapt_rate_threshold_per_us ||
                     window_max_batch_[s] >= config_.adapt_batch_threshold || clustered;
    if (hot) {
      quiet_windows_[s] = 0;
      if (!uses_locking_[s]) {
        uses_locking_[s] = 1;
        ++reclassifications_;
        // Packets already queued on the old side complete there; new
        // arrivals take the new route (a live-reconfiguration transient).
        if (config_.trace != nullptr)
          config_.trace->instant(trace_ctl_track_, "promote to locking", sim_.now(), s);
      }
    } else if (uses_locking_[s]) {
      // Demote only after a sustained quiet spell (hysteresis): bursty
      // streams are quiet between bursts.
      if (++quiet_windows_[s] >= config_.adapt_demote_windows) {
        uses_locking_[s] = 0;
        quiet_windows_[s] = 0;
        ++reclassifications_;
        if (config_.trace != nullptr)
          config_.trace->instant(trace_ctl_track_, "demote to ips", sim_.now(), s);
      }
    }
    window_arrivals_[s] = 0;
    window_max_batch_[s] = 0;
    window_clustered_[s] = 0;
  }
  if (sim_.now() + interval <= end_time_)
    sim_.scheduleAfter(interval, [this] { adaptStreams(); });
}

RunMetrics ProtocolSim::run() {
  beginRun();
  sim_.runUntil(end_time_);
  return finishRun();
}

void ProtocolSim::beginRun() {
  AFF_CHECK(!ran_);
  ran_ = true;
  end_time_ = config_.warmup_us + config_.measure_us;
  busy_procs_.set(0.0, 0.0);
  queue_len_.set(0.0, 0.0);
  if (obs_on_) {
    global_queue_tw_.set(0.0, 0.0);
    for (unsigned p = 0; p < config_.num_procs; ++p) {
      proc_queue_tw_[p].set(0.0, 0.0);
      proc_busy_tw_[p].set(0.0, 0.0);
    }
  }

  if (config_.adaptive_hybrid) {
    AFF_CHECK(config_.policy.paradigm == Paradigm::kHybrid);
    window_arrivals_.assign(streams_.count(), 0);
    window_max_batch_.assign(streams_.count(), 0);
    quiet_windows_.assign(streams_.count(), 0);
    window_clustered_.assign(streams_.count(), 0);
    last_arrival_time_.assign(streams_.count(), -1.0);
    sim_.scheduleAfter(config_.adapt_interval_us, [this] { adaptStreams(); });
  }

  for (std::uint32_t s = 0; s < streams_.count(); ++s) {
    if (!ownsStream(s)) continue;  // another shard's chain (serial: owns all)
    scheduleArrivals(s);
  }
  sim_.schedule(config_.warmup_us, [this] {
    busy_procs_.resetAt(sim_.now());
    queue_len_.resetAt(sim_.now());
  });
  const double mid = config_.warmup_us + config_.measure_us * 0.5;
  sim_.schedule(mid, [this] { backlog_mid_ = backlogNow(); });
}

RunMetrics ProtocolSim::finishRun() {
  // Conservation: every arrived packet is done, still in the system, or was
  // refused by the flow-table shedding layer (never silently lost).
  AFF_CHECK(arrived_ == completed_total_ + backlogNow() + flow_shed_);

  RunMetrics m;
  m.mean_delay_us = delay_.mean();
  m.p50_delay_us = delay_hist_.quantile(0.50);
  m.p95_delay_us = delay_hist_.quantile(0.95);
  m.p99_delay_us = delay_hist_.quantile(0.99);
  m.ci95_delay_us = delay_batches_.halfWidth(0.95);
  m.mean_service_us = service_.mean();
  m.mean_lock_wait_us = lock_wait_.mean();
  m.offered_rate_per_us = streams_.totalRatePerUs();
  m.throughput_per_us = static_cast<double>(completed_) / config_.measure_us;
  m.utilization = busy_procs_.average(end_time_) / config_.num_procs;
  m.mean_queue_len = queue_len_.average(end_time_);
  m.arrived = arrived_;
  m.completed = completed_;
  m.backlog_end = backlogNow();
  m.reclassifications = reclassifications_;
  m.steals = steals_;
  m.stolen_jobs = stolen_jobs_;
  m.steal_reload_us = steal_reload_us_;
  const net::NicDispatchStats wired_ns = nic_wired_.stats();
  const net::NicDispatchStats stack_ns = nic_stack_.stats();
  m.flow_migrations = wired_ns.migrations + stack_ns.migrations;
  m.tfn_feedback = wired_ns.tfn_feedback + stack_ns.tfn_feedback;
  m.tfn_deferred = wired_ns.tfn_deferred + stack_ns.tfn_deferred;
  m.tfn_applied = wired_ns.tfn_applied + stack_ns.tfn_applied;
  m.tfn_stale = wired_ns.tfn_stale + stack_ns.tfn_stale;
  if (flow_table_ != nullptr) {
    const auto fs = flow_table_->stats();
    m.flow_inserts = fs.inserts;
    m.flow_hits = fs.hits;
    m.flow_evictions = fs.evictions();
    m.flow_shed = flow_shed_;
    m.flow_occupancy = fs.occupancy;
    m.flow_capacity = fs.capacity;
  }
  // Saturated: the backlog kept growing through the second half of the
  // window (allowing for stochastic noise around a modest level).
  const std::uint64_t floor = 6ull * config_.num_procs;
  m.saturated = m.backlog_end > floor && backlog_mid_ > config_.num_procs &&
                2 * m.backlog_end > 3 * backlog_mid_;  // grew >= 1.5x since midpoint
  if (config_.per_stream_stats) {
    m.per_stream_mean_delay_us.reserve(per_stream_delay_.size());
    for (const auto& s : per_stream_delay_) m.per_stream_mean_delay_us.push_back(s.mean());
  }
  if (obs_on_) exportRunMetrics(m);
  return m;
}

void ProtocolSim::exportRunMetrics(const RunMetrics& m) {
  auto& reg = *config_.metrics;
  reg.counter("sim.run.count").inc();
  if (m.saturated) reg.counter("sim.run.saturated").inc();
  reg.meanStat("sim.run.mean_delay_us").add(m.mean_delay_us);
  reg.meanStat("sim.run.throughput_per_us").add(m.throughput_per_us);
  reg.meanStat("sim.run.utilization").add(m.utilization);
  reg.meanStat("sim.run.mean_queue_len").add(m.mean_queue_len);
  reg.meanStat("sim.kernel.events_executed").add(static_cast<double>(sim_.executedCount()));
  reg.meanStat("sim.kernel.events_pending_end").add(static_cast<double>(sim_.pendingCount()));
  if (config_.policy.locking == LockingPolicy::kStealAffinity) {
    reg.gauge("sim.cache.rd.steal_reload_us").set(m.steal_reload_us);
  }
  reg.counter("sim.affinity.stream_migrations").inc(affinity_.streamMigrations());
  reg.counter("sim.affinity.stream_revisits").inc(affinity_.streamRevisits());
  reg.counter("sim.affinity.stack_migrations").inc(affinity_.stackMigrations());
  reg.counter("sim.affinity.stack_revisits").inc(affinity_.stackRevisits());
  reg.counter("sim.hybrid.reclassifications").inc(reclassifications_);
  reg.counter("sim.net.dispatch.pins").inc(nic_wired_.stats().pins + nic_stack_.stats().pins);
  reg.counter("sim.net.dispatch.migrations").inc(m.flow_migrations);
  if (config_.dispatch == net::NicDispatchMode::kTransportFriendly) {
    // TransportFriendly ledger (docs/OBSERVABILITY.md, sim.net.dispatch.tfn.*);
    // gated on the mode so every other configuration's export is unchanged.
    reg.counter("sim.net.dispatch.tfn.feedback").inc(m.tfn_feedback);
    reg.counter("sim.net.dispatch.tfn.deferred").inc(m.tfn_deferred);
    reg.counter("sim.net.dispatch.tfn.applied").inc(m.tfn_applied);
    reg.counter("sim.net.dispatch.tfn.stale").inc(m.tfn_stale);
  }
  if (flow_table_ != nullptr) {
    // Bounded flow table (docs/OBSERVABILITY.md, sim.flow.*).
    reg.counter("sim.flow.inserts").inc(m.flow_inserts);
    reg.counter("sim.flow.hits").inc(m.flow_hits);
    reg.counter("sim.flow.evicted").inc(m.flow_evictions);
    reg.counter("sim.flow.shed").inc(m.flow_shed);
    reg.meanStat("sim.flow.occupancy").add(static_cast<double>(m.flow_occupancy));
    reg.meanStat("sim.flow.capacity").add(static_cast<double>(m.flow_capacity));
  }
  for (unsigned p = 0; p < config_.num_procs; ++p) {
    const std::string base = "sim.proc." + std::to_string(p);
    reg.meanStat(base + ".queue_depth_avg").add(proc_queue_tw_[p].average(end_time_));
    reg.meanStat(base + ".busy_frac").add(proc_busy_tw_[p].average(end_time_));
  }
  if (config_.metrics_exclusive) {
    for (auto* tw : hooks_.proc_queue) tw->finalize(end_time_);
    if (hooks_.global_queue != nullptr) hooks_.global_queue->finalize(end_time_);
    reg.timeWeighted("sim.queue.global_depth");  // ensure present even if never pushed
  }
}

}  // namespace affinity
