// capacity.hpp — maximum-throughput search.
//
// The paper reports "maximum throughput capacity": the highest offered load
// a configuration sustains (stable queues, acceptable delay). We binary
// search the arrival rate for the largest value that is neither saturated
// nor above a mean-delay bound.
#pragma once

#include <functional>

#include "core/protocol_sim.hpp"

namespace affinity {

/// Builds the stream set for a given aggregate rate (packets/µs).
using StreamSetFactory = std::function<StreamSet(double rate_per_us)>;

struct CapacityResult {
  double max_rate_per_us = 0.0;  ///< highest feasible aggregate rate found
  RunMetrics at_max;             ///< metrics at that rate
};

/// Binary searches [lo_rate, hi_rate] for the maximum feasible rate. A rate
/// is feasible when the run is not saturated and mean delay <= bound.
/// `iters` bisection steps (the result rate is within (hi-lo)/2^iters).
CapacityResult findMaxRate(const SimConfig& base, const ExecTimeModel& model,
                           const StreamSetFactory& make_streams, double lo_rate,
                           double hi_rate, double delay_bound_us, int iters = 12);

}  // namespace affinity
