#include "core/parallel_sim.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "analytic/lookahead.hpp"
#include "obs/metrics.hpp"
#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "stats/online.hpp"
#include "stats/time_weighted.hpp"
#include "util/check.hpp"

namespace affinity {

bool parallelEligible(const SimConfig& config, const char** reason) {
  const auto fail = [&](const char* why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  if (config.policy.paradigm != Paradigm::kIps) return fail("paradigm is not ips");
  if (config.policy.ips != IpsPolicy::kWired)
    return fail("non-wired IPS placement reads global idle state");
  if (config.dispatch == net::NicDispatchMode::kFlowDirector)
    return fail("flow-director pins are shared mutable state");
  if (config.dispatch == net::NicDispatchMode::kTransportFriendly)
    return fail("transport-friendly feedback pins are shared mutable state");
  if (config.adaptive_hybrid) return fail("adaptive hybrid reclassifies globally");
  if (config.bus_occupancy_fraction > 0.0) return fail("shared memory bus couples shards");
  if (config.observer != nullptr || config.metrics != nullptr || config.trace != nullptr)
    return fail("observation hooks see the global event order");
  if (config.flow.enabled && config.flow.shed_enabled)
    return fail("flow shedding reads global table occupancy");
  if (reason != nullptr) *reason = nullptr;
  return true;
}

RunMetrics runParallel(const SimConfig& config, const ExecTimeModel& model,
                       const StreamSet& streams, ParallelRunInfo* info) {
  return ParallelProtocolSim::run(config, model, streams, info);
}

RunMetrics ParallelProtocolSim::run(const SimConfig& config, const ExecTimeModel& model,
                                    const StreamSet& streams, ParallelRunInfo* info) {
  ParallelRunInfo local;
  ParallelRunInfo& out = info != nullptr ? *info : local;
  out = ParallelRunInfo{};

  const char* reason = nullptr;
  const unsigned shards_wanted = std::min(config.parallel_procs, config.num_procs);
  if (shards_wanted <= 1 || !parallelEligible(config, &reason)) {
    out.fallback_reason = shards_wanted <= 1 ? "fewer than two shards" : reason;
    ProtocolSim serial(config, model, streams);
    return serial.run();
  }
  if (config.flow.enabled) {
    // Each shard's flow table sees only its owned streams, which decomposes
    // exactly only when the serial run could not have evicted either — a
    // table smaller than the stream universe is guaranteed to evict, and
    // eviction decisions depend on global admission order.
    const flow::FlowTable probe(config.flow);
    if (probe.capacity() < streams.count()) {
      out.fallback_reason = "flow table smaller than stream universe";
      ProtocolSim serial(config, model, streams);
      return serial.run();
    }
  }
  const unsigned num_shards = shards_wanted;

  // Epoch length: many lookaheads per barrier. Correctness does not depend
  // on the choice — eligible shards share no simulation state at all — it
  // only amortizes barrier overhead while keeping the protocol shaped like
  // a classic conservative PDES loop (docs/PARALLEL_SIM.md).
  const double lookahead = minServiceTimeUs(model, config.fixed_overhead_us);
  out.lookahead_us = lookahead;
  const double epoch_us = std::max(lookahead, 1.0) * 1024.0;
  const double end_time = config.warmup_us + config.measure_us;

  std::vector<std::unique_ptr<ProtocolSim>> shard;
  shard.reserve(num_shards);
  for (unsigned i = 0; i < num_shards; ++i) {
    shard.push_back(std::make_unique<ProtocolSim>(config, model, streams));
    shard.back()->shardForParallel(i, num_shards);
  }

  std::vector<std::exception_ptr> errors(num_shards);
  std::uint64_t epochs = 0;
  {
    std::barrier sync(static_cast<std::ptrdiff_t>(num_shards));
    const auto worker = [&](unsigned i) {
      try {
        shard[i]->beginRun();
        double t = 0.0;
        while (t < end_time) {
          t = std::min(t + epoch_us, end_time);
          shard[i]->advanceTo(t);
          sync.arrive_and_wait();
          if (i == 0) ++epochs;
        }
      } catch (...) {
        errors[i] = std::current_exception();
        sync.arrive_and_drop();  // release peers; later phases expect one fewer
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(num_shards - 1);
    for (unsigned i = 1; i < num_shards; ++i) pool.emplace_back(worker, i);
    worker(0);
    for (auto& th : pool) th.join();
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  std::vector<RunMetrics> sm;
  sm.reserve(num_shards);
  for (auto& s : shard) sm.push_back(s->finishRun());  // per-shard conservation

  {
    // Residual flow-table hazard: windows can overflow even below capacity
    // (open addressing). A shard that evicted has cold-reset a stream the
    // serial run may not have — not recoverable from the logs, so rerun.
    std::uint64_t evictions = 0;
    for (const auto& r : sm) evictions += r.flow_evictions;
    if (evictions > 0) {
      out.replay_fallback = true;
      out.fallback_reason = "flow eviction in shard mode";
      ProtocolSim serial(config, model, streams);
      return serial.run();
    }
  }

  // --- replay the merged commit logs in virtual-time order ----------------
  // Shard logs are individually time-sorted (operations log at execution
  // time); a k-way merge on (t, shard) reconstructs the serial update order
  // up to permutations of same-timestamp cross-shard operations, all of
  // which commute bitwise — except two measured completions, detected below.
  using Op = ProtocolSim::ShardOp;
  OnlineStats delay, service, lock_wait;
  BatchMeans delay_batches{500};
  TimeWeighted busy, queue;
  busy.set(0.0, 0.0);
  queue.set(0.0, 0.0);
  std::vector<double> shard_busy(num_shards, 0.0);
  std::vector<double> shard_queue(num_shards, 0.0);
  std::vector<std::size_t> pos(num_shards, 0);
  double busy_total = 0.0;
  double queue_total = 0.0;
  bool reset_done = false;
  double last_completion_t = -1.0;
  unsigned last_completion_shard = 0;
  bool tie = false;
  for (;;) {
    int next = -1;
    double best_t = 0.0;
    for (unsigned i = 0; i < num_shards; ++i) {
      if (pos[i] >= shard[i]->shard_ops_.size()) continue;
      const double t = shard[i]->shard_ops_[pos[i]].t;
      if (next < 0 || t < best_t) {
        next = static_cast<int>(i);
        best_t = t;
      }
    }
    if (next < 0) break;
    const auto i = static_cast<unsigned>(next);
    const Op& op = shard[i]->shard_ops_[pos[i]++];
    if (!reset_done && op.t >= config.warmup_us) {
      // The serial warmup-reset event runs before any same-time dynamic
      // event (smaller sequence number), and reordering it against
      // same-time level sets is bitwise neutral (area contributions at the
      // reset instant are discarded or zero either way).
      busy.resetAt(config.warmup_us);
      queue.resetAt(config.warmup_us);
      reset_done = true;
    }
    switch (op.kind) {
      case Op::Kind::kQueueLen:
        queue_total += op.a - shard_queue[i];  // small exact integers
        shard_queue[i] = op.a;
        queue.set(op.t, queue_total);
        break;
      case Op::Kind::kBusyLevel:
        busy_total += op.a - shard_busy[i];
        shard_busy[i] = op.a;
        busy.set(op.t, busy_total);
        break;
      case Op::Kind::kCompletion:
        if (op.t == last_completion_t && i != last_completion_shard) tie = true;
        last_completion_t = op.t;
        last_completion_shard = i;
        delay.add(op.a);
        delay_batches.add(op.a);
        service.add(op.b);
        lock_wait.add(op.c);
        break;
    }
  }
  if (!reset_done) {
    busy.resetAt(config.warmup_us);
    queue.resetAt(config.warmup_us);
  }

  if (tie) {
    // Two shards completed measured packets at bitwise-equal virtual times:
    // the serial interleaving of their order-sensitive accumulator updates
    // is not recoverable from the logs, so buy exactness the honest way.
    // Deterministic: the tie is a pure function of config + seed, so the
    // same inputs always take this path.
    out.replay_fallback = true;
    out.fallback_reason = "cross-shard completion-time tie";
    ProtocolSim serial(config, model, streams);
    return serial.run();
  }

  out.parallel = true;
  out.shards = num_shards;
  out.epochs = epochs;

  Histogram hist{0.1, 8, 32};
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t backlog_end = 0;
  std::uint64_t backlog_mid = 0;
  std::uint64_t steals = 0;
  std::uint64_t stolen = 0;
  std::uint64_t migrations = 0;
  std::uint64_t reclass = 0;
  std::uint64_t flow_inserts = 0;
  std::uint64_t flow_hits = 0;
  std::uint64_t flow_occupancy = 0;
  for (unsigned i = 0; i < num_shards; ++i) {
    hist.merge(shard[i]->delay_hist_);  // bin counts sum exactly
    arrived += sm[i].arrived;
    completed += sm[i].completed;
    backlog_end += sm[i].backlog_end;
    backlog_mid += shard[i]->backlog_mid_;
    steals += sm[i].steals;
    stolen += sm[i].stolen_jobs;
    migrations += sm[i].flow_migrations;
    reclass += sm[i].reclassifications;
    // Streams partition across shards, so per-stream table state sums
    // exactly; capacity is a config constant, not a sum.
    flow_inserts += sm[i].flow_inserts;
    flow_hits += sm[i].flow_hits;
    flow_occupancy += sm[i].flow_occupancy;
  }

  RunMetrics m;
  m.mean_delay_us = delay.mean();
  m.p50_delay_us = hist.quantile(0.50);
  m.p95_delay_us = hist.quantile(0.95);
  m.p99_delay_us = hist.quantile(0.99);
  m.ci95_delay_us = delay_batches.halfWidth(0.95);
  m.mean_service_us = service.mean();
  m.mean_lock_wait_us = lock_wait.mean();
  // Same expression over an identical clone as the serial epilogue.
  m.offered_rate_per_us = shard[0]->streams_.totalRatePerUs();
  m.throughput_per_us = static_cast<double>(completed) / config.measure_us;
  m.utilization = busy.average(end_time) / config.num_procs;
  m.mean_queue_len = queue.average(end_time);
  m.arrived = arrived;
  m.completed = completed;
  m.backlog_end = backlog_end;
  m.reclassifications = reclass;
  m.steals = steals;
  m.stolen_jobs = stolen;
  m.flow_migrations = migrations;
  m.flow_inserts = flow_inserts;
  m.flow_hits = flow_hits;
  m.flow_occupancy = flow_occupancy;
  m.flow_capacity = sm.empty() ? 0 : sm[0].flow_capacity;
  const std::uint64_t floor = 6ull * config.num_procs;
  m.saturated = backlog_end > floor && backlog_mid > config.num_procs &&
                2 * backlog_end > 3 * backlog_mid;
  if (config.per_stream_stats) {
    m.per_stream_mean_delay_us.assign(streams.count(), 0.0);
    for (unsigned i = 0; i < num_shards; ++i) {
      for (std::size_t s = 0; s < shard[i]->per_stream_delay_.size(); ++s) {
        if (shard[i]->owned_stream_[s] != 0) {
          m.per_stream_mean_delay_us[s] = shard[i]->per_stream_delay_[s].mean();
        }
      }
    }
  }
  return m;
}

void exportParallelRunInfo(const ParallelRunInfo& info, obs::MetricsRegistry& reg,
                           const std::string& prefix) {
  reg.gauge(prefix + ".engaged").set(info.parallel ? 1.0 : 0.0);
  reg.gauge(prefix + ".shards").set(static_cast<double>(info.shards));
  reg.gauge(prefix + ".epochs").set(static_cast<double>(info.epochs));
  reg.gauge(prefix + ".lookahead_us").set(info.lookahead_us);
  reg.gauge(prefix + ".replay_fallback").set(info.replay_fallback ? 1.0 : 0.0);
}

}  // namespace affinity
