#include "core/metrics.hpp"

// Aggregate-only header; this translation unit anchors the library.
