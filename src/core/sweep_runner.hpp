// sweep_runner.hpp — parallel execution of independent sweep points.
//
// Every figure reproduction sweeps an axis (arrival rate, processor count,
// burstiness…) where each point is an independent simulation; the paper's
// own subject is exploiting multiprocessors, so the experiment layer should
// too. SweepRunner fans points across a std::thread pool and collects
// results in input order, so a driver's output is byte-identical whatever
// the worker count. Determinism across --jobs values comes for free as long
// as each point's work is a pure function of its index: derive per-point
// seeds with derivePointSeed (a splitmix64 mix of the base seed and the
// point index) instead of sharing one RNG across points.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/mutex.hpp"

namespace affinity {

/// Deterministic per-point seed: splitmix64 mix of base seed and point
/// index. Distinct indices give statistically independent seeds; the result
/// does not depend on worker count or execution order.
[[nodiscard]] std::uint64_t derivePointSeed(std::uint64_t base_seed,
                                            std::uint64_t point_index) noexcept;

/// One simulation point of a sweep.
struct SweepPoint {
  SimConfig config;
  StreamSet streams;
  /// When true the point runs through runUntilConfident (window doubling
  /// until the delay CI tightens) instead of a single runOnce.
  bool confident = false;
  double target_fraction = 0.05;
  int max_doublings = 4;
};

/// Fixed-size worker pool mapping point indices to results in input order.
class SweepRunner {
 public:
  /// `jobs` worker threads; 0 means one per hardware thread.
  explicit SweepRunner(unsigned jobs = 1) noexcept;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Opt-in observability: per-point wall-time spans on one trace track per
  /// worker (steady-clock session time) and completion counters / wall-time
  /// stats in the registry. Pure observation — results and their order are
  /// unchanged (the determinism guarantee above still holds). Either
  /// pointer may be null.
  void instrument(obs::MetricsRegistry* metrics, obs::TraceSession* trace) {
    metrics_ = metrics;
    trace_ = trace;
    worker_tracks_.clear();
    if (trace_ != nullptr) {
      for (unsigned w = 0; w < jobs_; ++w)
        worker_tracks_.push_back(trace_->track("sweep worker " + std::to_string(w)));
    }
  }

  /// Invokes `fn(i)` for i in [0, n), possibly concurrently, and returns
  /// the results ordered by index. `fn` must be safe to call from multiple
  /// threads on distinct indices; exceptions propagate (first one wins).
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    obs::Counter* done = metrics_ != nullptr ? &metrics_->counter("sweep.points_completed") : nullptr;
    obs::MeanStat* wall = metrics_ != nullptr ? &metrics_->meanStat("sweep.point_wall_us") : nullptr;
    auto timed = [&](std::size_t wid, std::size_t i) {
      const double t0 = trace_ != nullptr ? trace_->steadyNowUs() : 0.0;
      const auto c0 = wall != nullptr ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
      R r = fn(i);
      if (wall != nullptr) {
        wall->add(std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - c0)
                      .count());
      }
      if (done != nullptr) done->inc();
      if (trace_ != nullptr && wid < worker_tracks_.size())
        trace_->span(worker_tracks_[wid], "sweep point", t0, trace_->steadyNowUs(), i);
      return r;
    };
    std::vector<std::optional<R>> slots(n);
    if (jobs_ <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(timed(0, i));
    } else {
      std::atomic<std::size_t> next{0};
      // Locals, so GUARDED_BY cannot name them; the MutexLock below is the
      // whole discipline.  afflint: allow(guarded-mutex)
      Mutex err_mu{"SweepRunner::err_mu"};
      std::exception_ptr first_error;
      auto worker = [&](std::size_t wid) {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            slots[i].emplace(timed(wid, i));
          } catch (...) {
            MutexLock lock(err_mu);
            if (!first_error) first_error = std::current_exception();
            next.store(n, std::memory_order_relaxed);  // drain remaining work
            return;
          }
        }
      };
      const std::size_t nthreads = std::min<std::size_t>(jobs_, n);
      std::vector<std::thread> pool;
      pool.reserve(nthreads - 1);
      for (std::size_t t = 1; t < nthreads; ++t) pool.emplace_back(worker, t);
      worker(0);  // the calling thread is worker 0
      for (auto& t : pool) t.join();
      if (first_error) std::rethrow_exception(first_error);
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Runs each point (runOnce or runUntilConfident per point.confident)
  /// and returns metrics in point order. Does not touch point seeds — set
  /// them up front, e.g. with derivePointSeed.
  std::vector<RunMetrics> run(const ExecTimeModel& model,
                              const std::vector<SweepPoint>& points) const;

  /// `replications` independent runs of one configuration with per-index
  /// derived seeds (splitmix of config.seed and the replication index),
  /// each through runUntilConfident. Results are in replication order and
  /// independent of the worker count.
  std::vector<RunMetrics> runReplications(const SimConfig& config, const ExecTimeModel& model,
                                          const StreamSet& streams, std::size_t replications,
                                          double target_fraction = 0.05,
                                          int max_doublings = 4) const;

 private:
  unsigned jobs_;
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned; null = no metrics
  obs::TraceSession* trace_ = nullptr;       // not owned; null = no spans
  std::vector<std::uint32_t> worker_tracks_;
};

}  // namespace affinity
