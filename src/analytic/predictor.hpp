// predictor.hpp — closed-form performance predictions per scheduling policy.
//
// Mirrors the paper's analytic track: given the execution-time model and a
// workload (N processors, S homogeneous Poisson streams, aggregate rate λ),
// predict the steady-state mean service time, mean delay, utilization, and
// capacity under each policy *without simulating*. The prediction solves a
// small fixed point: component ages depend on how busy the system is, which
// depends on the service time the ages produce.
//
// Approximations (each documented at its use):
//  * mean gaps stand in for the full gap distributions (the F curves are
//    concave, so this biases slightly optimistic);
//  * migration probabilities use uniform placement over the processors the
//    policy actually employs at the given load;
//  * queueing uses Allen–Cunneen M/G/c on the predicted first two service
//    moments (partitioned policies use per-partition M/G/1).
//
// The `ext_analytic_vs_sim` bench and `analytic_test` quantify the accuracy
// against the discrete-event simulator (typically within ~10 % below 0.8
// utilization).
#pragma once

#include "cache/exec_time.hpp"
#include "sched/policy.hpp"

namespace affinity {

/// Workload and platform description for a prediction.
struct PredictorInput {
  unsigned num_procs = 8;
  unsigned num_streams = 16;
  double rate_per_us = 0.01;        ///< aggregate Poisson packet rate
  double lock_overhead_us = 20.0;   ///< Locking only
  double critical_section_us = 8.0; ///< Locking only (capacity cap 1/t_cs)
  double fixed_overhead_us = 0.0;   ///< V
  unsigned ips_stacks = 0;          ///< 0 = one per processor
};

/// Predicted steady-state behavior.
struct Prediction {
  double service_us = 0.0;      ///< mean packet execution time
  double wait_us = 0.0;         ///< mean queueing wait
  double delay_us = 0.0;        ///< service + wait (+ lock wait)
  double utilization = 0.0;     ///< busy processors / N
  double capacity_per_us = 0.0; ///< max sustainable aggregate rate
  bool stable = true;           ///< offered rate below predicted capacity
};

/// Prediction for a Locking-paradigm policy.
Prediction predictLocking(const ExecTimeModel& model, LockingPolicy policy,
                          const PredictorInput& in);

/// Prediction for an IPS-paradigm policy.
Prediction predictIps(const ExecTimeModel& model, IpsPolicy policy, const PredictorInput& in);

}  // namespace affinity
