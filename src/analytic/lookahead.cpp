#include "analytic/lookahead.hpp"

namespace affinity {

double minServiceTimeUs(const ExecTimeModel& model, double fixed_overhead_us) noexcept {
  const auto parts = model.serviceParts(CacheStateAges{});  // all components age 0
  return parts.total() + fixed_overhead_us;
}

}  // namespace affinity
