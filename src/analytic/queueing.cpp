#include "analytic/queueing.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace affinity {

double erlangC(unsigned c, double offered_load) {
  AFF_CHECK(c >= 1);
  const double a = offered_load;
  if (a <= 0.0) return 0.0;
  if (a >= static_cast<double>(c)) return 1.0;
  // Erlang-B recurrence: B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1)).
  double b = 1.0;
  for (unsigned k = 1; k <= c; ++k) b = a * b / (static_cast<double>(k) + a * b);
  const double rho = a / static_cast<double>(c);
  return b / (1.0 - rho + rho * b);
}

double mmcMeanWait(unsigned c, double lambda, double service_us) {
  AFF_CHECK(lambda >= 0.0 && service_us > 0.0);
  const double a = lambda * service_us;  // offered load in Erlangs
  const double rho = a / static_cast<double>(c);
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  const double pw = erlangC(c, a);
  return pw * service_us / (static_cast<double>(c) * (1.0 - rho));
}

double md1MeanWait(double lambda, double service_us) {
  AFF_CHECK(lambda >= 0.0 && service_us > 0.0);
  const double rho = lambda * service_us;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return rho * service_us / (2.0 * (1.0 - rho));
}

double allenCunneenMeanWait(unsigned c, double lambda, double service_us, double ca2,
                            double cs2) {
  const double w = mmcMeanWait(c, lambda, service_us);
  return 0.5 * (ca2 + cs2) * w;
}

}  // namespace affinity
