// queueing.hpp — closed-form queueing results used by the analytic
// performance predictor and by the tests that validate the simulator.
//
// The paper's methodology combines simulation with "a variety of
// queueing-theoretic techniques" (it cites Squillante & Lazowska's use of
// them); this module provides the standard toolbox: Erlang-C, M/M/c, M/D/1,
// and the Allen–Cunneen approximation for M/G/c.
#pragma once

namespace affinity {

/// Erlang-C: probability an arrival must wait in an M/M/c queue with
/// utilization rho = lambda*s/c (< 1). Computed with the numerically stable
/// recurrence on the Erlang-B blocking probability.
double erlangC(unsigned c, double offered_load);

/// Mean waiting time (queue only) in M/M/c; `service_us` is the mean service
/// time, `lambda` in customers/µs. Returns +inf at or above saturation.
double mmcMeanWait(unsigned c, double lambda, double service_us);

/// Mean waiting time in M/D/1 (Pollaczek–Khinchine with zero service
/// variance): Wq = rho * s / (2 (1 - rho)).
double md1MeanWait(double lambda, double service_us);

/// Allen–Cunneen approximation for the mean wait of M/G/c:
///   Wq ≈ (Ca² + Cs²)/2 · Wq(M/M/c)
/// with Ca² the squared coefficient of variation of inter-arrival times
/// (1 for Poisson) and Cs² that of service times.
double allenCunneenMeanWait(unsigned c, double lambda, double service_us, double ca2,
                            double cs2);

}  // namespace affinity
