#include "analytic/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analytic/queueing.hpp"
#include "util/check.hpp"

namespace affinity {

namespace {

/// Per-component affinity profile at a given operating point: probability
/// the component is cold because it last lived on another processor, and
/// the mean age when it is on the right processor.
struct ComponentProfile {
  double p_cold = 0.0;
  double gap_us = 0.0;
};

/// E[F(age)] under the two-point approximation: migrated => fully flushed;
/// resident => flushed according to the mean gap. (F is concave, so using
/// the mean gap is slightly optimistic; the validation bench quantifies it.)
/// Dispatches through the model's f1At/f2At so it works under either
/// displacement model (`cache.model = sst | reuse`).
double expectedFlush(const ExecTimeModel& model, bool l2, const ComponentProfile& c) {
  const double f = l2 ? model.f2At(c.gap_us) : model.f1At(c.gap_us);
  return c.p_cold + (1.0 - c.p_cold) * f;
}

/// Mean service time for component profiles (code, shared, stream).
double meanService(const ExecTimeModel& model, const ComponentProfile& code,
                   const ComponentProfile& shared, const ComponentProfile& stream) {
  const FootprintShares& g = model.shares();
  const double l1 = g.l1_code * expectedFlush(model, false, code) +
                    g.l1_shared * expectedFlush(model, false, shared) +
                    g.l1_stream * expectedFlush(model, false, stream);
  const double l2 = g.l2_code * expectedFlush(model, true, code) +
                    g.l2_shared * expectedFlush(model, true, shared) +
                    g.l2_stream * expectedFlush(model, true, stream);
  double t = model.tWarm() + l1 * model.reloadParams().dl1_us + l2 * model.reloadParams().dl2_us;
  // Shared LLC: location-independent, so a migration does NOT cold the L3
  // footprint — p_cold never applies and only background decay at the mean
  // gap matters. This is the mechanism that shrinks the 1995 migration
  // penalty on modern topologies (EXPERIMENTS.md shared-LLC rerun).
  if (model.reloadParams().dl3_us > 0.0) {
    const double l3 = g.l2_code * model.f3At(code.gap_us) +
                      g.l2_shared * model.f3At(shared.gap_us) +
                      g.l2_stream * model.f3At(stream.gap_us);
    t += l3 * model.reloadParams().dl3_us;
  }
  return t;
}

/// Squared coefficient of variation of service from the dominant variance
/// source: the stream/stack migration coin-flip between a "resident" and a
/// "migrated" service time.
double serviceCv2(const ExecTimeModel& model, const ComponentProfile& code,
                  const ComponentProfile& shared, ComponentProfile stream, double s_mean) {
  ComponentProfile hot = stream;
  hot.p_cold = 0.0;
  ComponentProfile cold = stream;
  cold.p_cold = 1.0;
  const double s_hot = meanService(model, code, shared, hot);
  const double s_cold = meanService(model, code, shared, cold);
  const double p = stream.p_cold;
  const double var = p * (1.0 - p) * (s_cold - s_hot) * (s_cold - s_hot);
  return s_mean > 0.0 ? var / (s_mean * s_mean) : 0.0;
}

double positiveGap(double cycle_us, double service_us) {
  const double gap = cycle_us - service_us;
  return gap > 1.0 ? gap : 1.0;
}

/// Builds the component profiles for a Locking policy at service estimate s.
void lockingProfiles(LockingPolicy policy, const PredictorInput& in, double s,
                     ComponentProfile& code, ComponentProfile& shared,
                     ComponentProfile& stream) {
  const double n = in.num_procs;
  const double lam = in.rate_per_us;
  const double streams = in.num_streams;
  // Processors the policy actually uses at this load: concentrating policies
  // pack work onto ~(offered load + 1) processors.
  const double busy = std::min(n, lam * s);
  const double m = (policy == LockingPolicy::kFcfs) ? n : std::min(n, busy + 1.0);

  code.p_cold = 0.0;
  code.gap_us = positiveGap(m / lam, s);  // protocol visits each used proc at rate lam/m
  shared.p_cold = 1.0 - 1.0 / m;          // last packet was on another used proc
  shared.gap_us = positiveGap(m / lam, s);
  stream.gap_us = positiveGap(streams / lam, s);  // the stream's own interarrival
  switch (policy) {
    case LockingPolicy::kFcfs:
      stream.p_cold = 1.0 - 1.0 / n;
      break;
    case LockingPolicy::kMru:
      stream.p_cold = 1.0 - 1.0 / m;
      break;
    case LockingPolicy::kStreamMru:
      // The queue scan and idle preference find the stream's home processor
      // most of the time (empirically ~0.85 across loads in the simulator).
      stream.p_cold = 0.15;
      break;
    case LockingPolicy::kWiredStreams:
    case LockingPolicy::kStealAffinity:
      // Stealing only engages on backlogged queues, so the steady-state
      // (sub-saturation) profile matches the wired placement; the per-steal
      // migration cost shows up only in the simulator's transient bursts.
      stream.p_cold = 0.0;
      // Each processor only sees its own streams: protocol visit rate lam/n.
      code.gap_us = positiveGap(n / lam, s);
      shared.gap_us = positiveGap(n / lam, s);
      break;
  }
}

/// Component profiles for an IPS policy. The shared+stream components are
/// keyed by the stack.
void ipsProfiles(IpsPolicy policy, const PredictorInput& in, unsigned stacks, double s,
                 ComponentProfile& code, ComponentProfile& stack) {
  const double n = in.num_procs;
  const double lam = in.rate_per_us;
  const double k = stacks;
  const double busy = std::min(n, lam * s);
  const double m = std::min(n, busy + 1.0);
  stack.gap_us = positiveGap(k / lam, s);  // per-stack packet interarrival
  switch (policy) {
    case IpsPolicy::kRandom:
      code.gap_us = positiveGap(n / lam, s);
      stack.p_cold = 1.0 - 1.0 / n;
      break;
    case IpsPolicy::kMru:
      // Concentration keeps code warm; stacks mostly stick to their last
      // processor (they migrate when it is busy and another is idle — a
      // mid-load phenomenon).
      code.gap_us = positiveGap(m / lam, s);
      stack.p_cold = (1.0 - 1.0 / m) * std::min(1.0, 2.0 * (busy / n) * (1.0 - busy / n));
      break;
    case IpsPolicy::kWired:
      code.gap_us = positiveGap(n / lam, s);  // each proc sees only its stacks
      stack.p_cold = 0.0;
      break;
  }
  code.p_cold = 0.0;
}

}  // namespace

Prediction predictLocking(const ExecTimeModel& model, LockingPolicy policy,
                          const PredictorInput& in) {
  AFF_CHECK(in.rate_per_us > 0.0 && in.num_procs >= 1 && in.num_streams >= 1);
  ComponentProfile code, shared, stream;
  double s = model.tWarm() + in.lock_overhead_us + in.fixed_overhead_us;
  for (int iter = 0; iter < 60; ++iter) {
    lockingProfiles(policy, in, s, code, shared, stream);
    const double next =
        meanService(model, code, shared, stream) + in.lock_overhead_us + in.fixed_overhead_us;
    s = 0.5 * (s + next);
  }

  Prediction p;
  p.service_us = s;
  const double cs2 = serviceCv2(model, code, shared, stream, s);

  // Capacity: saturated service (back-to-back execution, gaps -> 0).
  ComponentProfile c0 = code, sh0 = shared, st0 = stream;
  c0.gap_us = sh0.gap_us = 1.0;
  st0.gap_us = positiveGap(static_cast<double>(in.num_streams) / in.rate_per_us, s);
  const double s_sat =
      meanService(model, c0, sh0, st0) + in.lock_overhead_us + in.fixed_overhead_us;
  p.capacity_per_us = static_cast<double>(in.num_procs) / s_sat;
  if (in.critical_section_us > 0.0)
    p.capacity_per_us = std::min(p.capacity_per_us, 1.0 / in.critical_section_us);

  // Busy-period service time: packets that actually queue are served
  // back-to-back, so the caches are much warmer than the long-run mean —
  // using the mean service in the wait formula would overstate congestion
  // (the system is self-stabilizing). Approximate busy-period gaps by the
  // service time itself.
  ComponentProfile cb = code, shb = shared, stb = stream;
  cb.gap_us = shb.gap_us = stb.gap_us = s;
  const double s_busy =
      meanService(model, cb, shb, stb) + in.lock_overhead_us + in.fixed_overhead_us;

  // Queueing: pooled M/G/c for the work-conserving policies; partitioned
  // per-processor M/G/1 for wired streams.
  if (policy == LockingPolicy::kWiredStreams) {
    const double lam_per = in.rate_per_us / in.num_procs;
    p.wait_us = allenCunneenMeanWait(1, lam_per, s_busy, 1.0, cs2);
  } else {
    p.wait_us = allenCunneenMeanWait(in.num_procs, in.rate_per_us, s_busy, 1.0, cs2);
  }
  // Lock contention: the shared critical section behaves as an M/D/1 server.
  const double rho_lock = in.rate_per_us * in.critical_section_us;
  const double lock_wait =
      rho_lock < 1.0 ? md1MeanWait(in.rate_per_us, in.critical_section_us) : 1e9;

  p.utilization = std::min(1.0, in.rate_per_us * s / in.num_procs);
  p.stable = in.rate_per_us < p.capacity_per_us && std::isfinite(p.wait_us);
  p.delay_us = p.stable ? s + p.wait_us + lock_wait
                        : std::numeric_limits<double>::infinity();
  return p;
}

Prediction predictIps(const ExecTimeModel& model, IpsPolicy policy, const PredictorInput& in) {
  AFF_CHECK(in.rate_per_us > 0.0 && in.num_procs >= 1);
  const unsigned stacks = in.ips_stacks != 0 ? in.ips_stacks : in.num_procs;
  ComponentProfile code, stack;
  double s = model.tWarm() + in.fixed_overhead_us;
  for (int iter = 0; iter < 60; ++iter) {
    ipsProfiles(policy, in, stacks, s, code, stack);
    const double next = meanService(model, code, stack, stack) + in.fixed_overhead_us;
    s = 0.5 * (s + next);
  }

  Prediction p;
  p.service_us = s;
  const double cs2 = serviceCv2(model, code, stack, stack, s);

  // Capacity: limited by stacks (serial contexts) and by processors.
  ComponentProfile c0 = code, st0 = stack;
  c0.gap_us = 1.0;
  st0.gap_us = positiveGap(static_cast<double>(stacks) / in.rate_per_us, s);
  const double s_sat = meanService(model, c0, st0, st0) + in.fixed_overhead_us;
  p.capacity_per_us =
      std::min<double>(stacks, in.num_procs) / s_sat;

  // Busy-period service: queued packets of a stack run back-to-back on one
  // processor, so their stack state (and the code) is warm — see the
  // Locking predictor for why the wait formula must use this, not the mean.
  ComponentProfile cb = code, stb = stack;
  cb.gap_us = stb.gap_us = s;
  stb.p_cold = 0.0;  // within a busy period the stack does not migrate
  const double s_busy = meanService(model, cb, stb, stb) + in.fixed_overhead_us;

  // Queueing: a packet waits for its (serial) stack — per-stack M/G/1 — and,
  // when stacks outnumber processors, also for a processor. Take the larger
  // of the two bottlenecks.
  const double lam_per_stack = in.rate_per_us / stacks;
  const double stack_wait = allenCunneenMeanWait(1, lam_per_stack, s_busy, 1.0, cs2);
  const double proc_wait =
      allenCunneenMeanWait(in.num_procs, in.rate_per_us, s_busy, 1.0, cs2);
  p.wait_us = std::max(stack_wait, proc_wait);

  p.utilization = std::min(1.0, in.rate_per_us * s / in.num_procs);
  p.stable = in.rate_per_us < p.capacity_per_us && std::isfinite(p.wait_us);
  p.delay_us = p.stable ? s + p.wait_us : std::numeric_limits<double>::infinity();
  return p;
}

}  // namespace affinity
