// lookahead.hpp — conservative-parallel lookahead bound from the analytic
// execution-time model.
//
// A conservative parallel simulation may let a shard run ahead of its peers
// by any amount smaller than the minimum time in which one shard's event
// could affect another. For the protocol model that bound is the minimum
// per-packet service time: no completion (the only event that frees a
// processor or touches statistics) can follow its service start by less.
// serviceParts() is monotone in the component ages, so evaluating it at age
// zero in every component — a perfectly warm cache — yields the exact
// minimum over all reachable cache states (docs/PARALLEL_SIM.md derives
// this and explains why the eligible configurations need the bound only to
// size epochs, not for correctness).
#pragma once

#include "cache/exec_time.hpp"

namespace affinity {

/// Minimum per-packet service time under `model` (warm caches) plus the
/// fixed per-packet overhead V. Strictly positive for every real model.
[[nodiscard]] double minServiceTimeUs(const ExecTimeModel& model,
                                      double fixed_overhead_us = 0.0) noexcept;

}  // namespace affinity
