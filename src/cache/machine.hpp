// machine.hpp — cache-hierarchy geometry and processor parameters.
//
// Defaults model the paper's platform: an SGI Challenge XL with 100 MHz MIPS
// R4400 processors — split 16 KB direct-mapped L1 I/D caches and a 1 MB
// direct-mapped unified L2 with 128-byte lines.
#pragma once

#include <cstdint>

namespace affinity {

/// Geometry of one cache level.
struct CacheLevelParams {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 0;
  std::uint32_t associativity = 1;

  /// Number of sets (size / (line * assoc)).
  [[nodiscard]] std::uint64_t sets() const noexcept {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * associativity);
  }
  [[nodiscard]] std::uint64_t lines() const noexcept { return size_bytes / line_bytes; }
};

/// Processor + memory-hierarchy parameters used by both the analytic model
/// and the trace-driven cache simulator.
struct MachineParams {
  double clock_hz = 100e6;         ///< processor clock
  double cycles_per_ref = 5.0;     ///< paper's m: average cycles per memory reference
  CacheLevelParams l1i{16 * 1024, 32, 1};
  CacheLevelParams l1d{16 * 1024, 32, 1};
  CacheLevelParams l2{1024 * 1024, 128, 1};
  /// Fraction of the reference stream that is instruction fetches; the paper
  /// assumes an approximately even I/D split (citing Hill & Smith).
  double ifetch_fraction = 0.5;
  /// Miss penalties used by the trace-driven simulator (cycles per line).
  double l1_miss_cycles = 12.0;  ///< L1 miss filled from L2
  double l2_miss_cycles = 85.0;  ///< L2 miss filled from memory (Challenge bus)
  /// Extra cycles to fetch a line dirty in another processor's cache
  /// (cache-to-cache intervention on the Challenge's POWERpath-2 bus).
  double intervention_cycles = 140.0;

  /// References issued per microsecond of execution: f_clk / (m * 1e6).
  [[nodiscard]] double refsPerMicrosecond() const noexcept {
    return clock_hz / (cycles_per_ref * 1e6);
  }

  /// The paper's platform (SGI Challenge XL, MIPS R4400 @ 100 MHz).
  static MachineParams sgiChallenge() noexcept { return MachineParams{}; }
};

}  // namespace affinity
