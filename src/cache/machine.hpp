// machine.hpp — cache-hierarchy geometry and processor parameters.
//
// Defaults model the paper's platform: an SGI Challenge XL with 100 MHz MIPS
// R4400 processors — split 16 KB direct-mapped L1 I/D caches and a 1 MB
// direct-mapped unified L2 with 128-byte lines.
#pragma once

#include <cstdint>

namespace affinity {

/// Geometry of one cache level.
struct CacheLevelParams {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 0;
  std::uint32_t associativity = 1;

  /// Number of sets (size / (line * assoc)).
  [[nodiscard]] std::uint64_t sets() const noexcept {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * associativity);
  }
  [[nodiscard]] std::uint64_t lines() const noexcept { return size_bytes / line_bytes; }
};

/// Processor + memory-hierarchy parameters used by both the analytic model
/// and the trace-driven cache simulator.
struct MachineParams {
  double clock_hz = 100e6;         ///< processor clock
  double cycles_per_ref = 5.0;     ///< paper's m: average cycles per memory reference
  CacheLevelParams l1i{16 * 1024, 32, 1};
  CacheLevelParams l1d{16 * 1024, 32, 1};
  CacheLevelParams l2{1024 * 1024, 128, 1};
  /// Shared last-level cache behind the private L2s. size_bytes == 0 (the
  /// 1995 default) means the hierarchy stops at the private L2 and
  /// `l2_miss_cycles` is the full memory penalty.
  CacheLevelParams llc{0, 64, 16};
  /// Fraction of the reference stream that is instruction fetches; the paper
  /// assumes an approximately even I/D split (citing Hill & Smith).
  double ifetch_fraction = 0.5;
  /// Miss penalties used by the trace-driven simulator (cycles per line).
  double l1_miss_cycles = 12.0;  ///< L1 miss filled from L2
  double l2_miss_cycles = 85.0;  ///< L2 miss filled from next level (memory when no LLC)
  /// Additional cycles for an LLC miss filled from memory; only meaningful
  /// when `llc.size_bytes > 0` (an L2 miss then costs l2_miss_cycles to
  /// reach the LLC plus llc_miss_cycles when the LLC also misses).
  double llc_miss_cycles = 0.0;
  /// Extra cycles to fetch a line dirty in another processor's cache
  /// (cache-to-cache intervention on the Challenge's POWERpath-2 bus).
  double intervention_cycles = 140.0;

  /// References issued per microsecond of execution: f_clk / (m * 1e6).
  [[nodiscard]] double refsPerMicrosecond() const noexcept {
    return clock_hz / (cycles_per_ref * 1e6);
  }

  /// The paper's platform (SGI Challenge XL, MIPS R4400 @ 100 MHz).
  static MachineParams sgiChallenge() noexcept { return MachineParams{}; }

  /// "2020s topology": server-class private 32 KB 8-way L1 I/D (64 B lines)
  /// and 1 MB 16-way L2 per core, behind a shared 32 MiB 16-way LLC. The
  /// clock and cycles-per-ref are deliberately kept at the paper's values so
  /// the reran figures differ only in hierarchy *shape*, not time scale —
  /// the EXPERIMENTS.md shared-LLC section compares conclusions, not
  /// absolute microseconds. The 1995 memory penalty (85 cycles) is split
  /// into an L2→LLC hop (40) and an LLC→memory hop (45) so a worst-case
  /// full miss costs the same as before and warm-LLC reloads are the new
  /// middle ground.
  static MachineParams modern2020() noexcept {
    MachineParams m;
    m.l1i = CacheLevelParams{32 * 1024, 64, 8};
    m.l1d = CacheLevelParams{32 * 1024, 64, 8};
    m.l2 = CacheLevelParams{1024 * 1024, 64, 16};
    m.llc = CacheLevelParams{32ull * 1024 * 1024, 64, 16};
    m.l2_miss_cycles = 40.0;
    m.llc_miss_cycles = 45.0;
    return m;
  }
};

}  // namespace affinity
