// exec_time.hpp — packet execution time as a reload transient.
//
// The paper models packet processing time as the linear interpolation of the
// maximum reload transient (the Squillante–Lazowska D + R·C form), applied
// per cache level:
//
//     t(x) = t_warm + F1(x)·ΔL1 + F2(x)·ΔL2,     t_cold = t_warm + ΔL1 + ΔL2
//
// where t_warm, and the L1/L2 reload transients ΔL1/ΔL2, are *measured*
// (paper §4: controlled cache-state experiments on the SGI Challenge; here:
// the trace-driven cachesim measurement harness, bench/tab1_exec_times).
// The paper quotes t_cold = 284.3 µs for receive-side UDP/IP/FDDI.
//
// For the scheduling policies the footprint is decomposed into components
// with separate affinity bookkeeping (DESIGN.md §2): shared code, writable
// shared stack data, and per-stream state. Each component ages independently
// (time since it was last present on the executing processor; +inf if it was
// last used on a different processor).
#pragma once

#include <limits>
#include <memory>

#include "cache/flush.hpp"
#include "cache/reuse.hpp"

namespace affinity {

/// Which displacement model drives the reload transients: the paper's
/// fitted SST power law or the measured reuse-distance profiles
/// (`cache.model = sst | reuse` in scenario files).
enum class CacheModelKind { kSst, kReuse };

/// Measured reload-transient scalars (microseconds).
struct ReloadParams {
  double t_warm_us = 135.7;  ///< everything cached on this processor
  double dl1_us = 48.6;      ///< full L1 reload transient (L1 cold, L2 warm)
  double dl2_us = 100.0;     ///< full private-L2 reload transient
  /// Full shared-LLC reload transient. 0 (the 1995 default) means the
  /// hierarchy has no shared level and every formula reduces exactly to the
  /// paper's two-level t(x) = t_warm + F1·ΔL1 + F2·ΔL2.
  double dl3_us = 0.0;

  /// Fully-cold packet time; the paper's measured value is 284.3 µs.
  [[nodiscard]] double tCold() const noexcept { return t_warm_us + dl1_us + dl2_us + dl3_us; }

  /// Re-expresses a two-level parameter set on a shared-LLC hierarchy by
  /// splitting the memory-refill transient ΔL2 into a private-L2 part and a
  /// shared-LLC part, preserving tCold. `llc_share` is the fraction of the
  /// old ΔL2 that becomes ΔL3 (an LLC hit refetches from the LLC instead of
  /// memory, so the LLC inherits the bulk of the old memory transient).
  [[nodiscard]] ReloadParams splitForSharedLlc(double llc_share = 0.6) const noexcept {
    ReloadParams r = *this;
    r.dl3_us = dl2_us * llc_share;
    r.dl2_us = dl2_us * (1.0 - llc_share);
    return r;
  }

  /// Defaults for the receive-side UDP/IP/FDDI fast path, chosen to match
  /// the paper's quoted t_cold = 284.3 µs; regenerate from the cache
  /// simulator with bench/tab1_exec_times.
  static ReloadParams measuredUdpReceive() noexcept { return ReloadParams{}; }

  /// Send-side processing (paper extension i): slightly cheaper warm path,
  /// smaller data footprint.
  static ReloadParams measuredUdpSend() noexcept { return ReloadParams{118.0, 41.0, 83.0}; }

  /// TCP/IP/FDDI receive path. The paper (citing Kay & Pasquale) notes that
  /// TCP-specific processing accounts for at most ~15% of packet execution
  /// time and that the UDP/TCP overhead breakdowns are very similar — so the
  /// TCP parameters are the UDP ones scaled by 15% on the warm path with a
  /// modestly larger state footprint (the TCP PCB dwarfs the UDP one).
  static ReloadParams measuredTcpReceive() noexcept { return ReloadParams{156.1, 53.5, 110.0}; }
};

/// Footprint decomposition: fractions of each reload transient attributable
/// to each component. The per-level split matters: the protocol *text*
/// (code) is the largest region and dominates the memory-refill transient
/// ΔL2, while the per-stream session state — re-referenced on every packet —
/// dominates the small, fast-cycling L1 transient ΔL1. This is what creates
/// the paper's policy crossovers: at low rate concentrating work (MRU) keeps
/// the big shared code L2-warm; at high rate code is warm everywhere and
/// wiring streams/stacks to processors protects the L1-heavy stream state.
/// Each triplet must be nonnegative and sum to 1.
struct FootprintShares {
  double l1_code = 0.30;    ///< share of ΔL1 from code + read-only data
  double l1_shared = 0.20;  ///< share of ΔL1 from writable shared stack data
  double l1_stream = 0.50;  ///< share of ΔL1 from per-stream PCB/session state
  double l2_code = 0.65;    ///< share of ΔL2 from code + read-only data
  double l2_shared = 0.15;  ///< share of ΔL2 from writable shared stack data
  double l2_stream = 0.20;  ///< share of ΔL2 from per-stream PCB/session state

  [[nodiscard]] bool valid() const noexcept {
    const auto ok = [](double a, double b, double c) {
      const double sum = a + b + c;
      return a >= 0 && b >= 0 && c >= 0 && sum > 0.999 && sum < 1.001;
    };
    return ok(l1_code, l1_shared, l1_stream) && ok(l2_code, l2_shared, l2_stream);
  }
};

/// Sentinel age for a component whose last use was on another processor.
inline constexpr double kColdAge = std::numeric_limits<double>::infinity();

/// Ages (µs since last resident on the executing processor) of the three
/// footprint components. kColdAge means "never / last used elsewhere".
///
/// The `*_any` fields are the shared-LLC counterparts: time since the
/// component was last touched on *any* processor — a migrated footprint is
/// cold in the private levels but still warm in the shared LLC. They
/// default to kColdAge ("no better information"), so the effective L3 age
/// min(local, any) degrades to the local age and two-level behavior is
/// unchanged when callers don't populate them.
struct CacheStateAges {
  double code = 0.0;
  double shared = 0.0;
  double stream = 0.0;
  double code_any = kColdAge;
  double shared_any = kColdAge;
  double stream_any = kColdAge;
};

/// Combines the flush model, measured reload scalars and footprint shares
/// into the per-packet service-time function used by the simulator.
class ExecTimeModel {
 public:
  ExecTimeModel(FlushModel flush, ReloadParams reload, FootprintShares shares);

  /// Reuse-distance variant: the same service-time structure with the SST
  /// power-law displacement replaced by the measured RdCacheModel curves
  /// (and, when the machine has a shared LLC, a third reload level).
  ExecTimeModel(std::shared_ptr<const RdCacheModel> rd, ReloadParams reload,
                FootprintShares shares);

  /// Reload cost F1(x)·ΔL1 + F2(x)·ΔL2 (+ F3(x)·ΔL3) for one fully-aged
  /// footprint; reload(0) = 0, reload(kColdAge) = ΔL1 + ΔL2 + ΔL3.
  [[nodiscard]] double reload(double age_us) const noexcept;

  /// Packet execution time given per-component ages (no fixed overheads).
  [[nodiscard]] double serviceTime(const CacheStateAges& ages) const noexcept;

  /// Breakdown of serviceTime(): warm base plus the per-level reload
  /// portions (µs). `base + l1 + l2 + l3 == serviceTime(ages)`. The L2+L3
  /// portion is the memory-bus traffic a packet generates — used by the
  /// bus-contention model. `l3` is 0 unless ΔL3 > 0 (shared-LLC topology).
  struct ServiceParts {
    double base = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double l3 = 0.0;
    [[nodiscard]] double total() const noexcept { return base + l1 + l2 + l3; }
  };
  [[nodiscard]] ServiceParts serviceParts(const CacheStateAges& ages) const noexcept;

  /// Kind-dispatched per-level flush fractions (0 at age 0, 1 at kColdAge).
  /// The predictor uses these instead of reaching into flush() so it works
  /// under either displacement model.
  [[nodiscard]] double f1At(double age_us) const noexcept;
  [[nodiscard]] double f2At(double age_us) const noexcept;
  /// Shared-LLC flush fraction; 0 whenever ΔL3 == 0. Unlike f1/f2 this is
  /// NOT forced to 1 at kColdAge: a footprint cold on this processor can
  /// still be warm in the shared LLC, so the caller passes the *anywhere*
  /// age here.
  [[nodiscard]] double f3At(double age_us) const noexcept;

  [[nodiscard]] double tWarm() const noexcept { return reload_.t_warm_us; }
  [[nodiscard]] double tCold() const noexcept { return reload_.tCold(); }
  [[nodiscard]] const FootprintShares& shares() const noexcept { return shares_; }
  [[nodiscard]] const FlushModel& flush() const noexcept { return flush_; }
  [[nodiscard]] const ReloadParams& reloadParams() const noexcept { return reload_; }
  [[nodiscard]] CacheModelKind kind() const noexcept { return kind_; }
  /// Non-null iff kind() == kReuse.
  [[nodiscard]] const RdCacheModel* reuseModel() const noexcept { return rd_.get(); }
  [[nodiscard]] const MachineParams& machineParams() const noexcept {
    return rd_ ? rd_->machine() : flush_.machine();
  }

  /// Standard model of the paper's platform and measured parameters.
  static ExecTimeModel standard() {
    return ExecTimeModel(FlushModel(MachineParams::sgiChallenge(), SstParams::mvsWorkload()),
                         ReloadParams::measuredUdpReceive(), FootprintShares{});
  }

 private:
  FlushModel flush_;
  std::shared_ptr<const RdCacheModel> rd_;  ///< set iff kind_ == kReuse
  CacheModelKind kind_ = CacheModelKind::kSst;
  ReloadParams reload_;
  FootprintShares shares_;
};

}  // namespace affinity
