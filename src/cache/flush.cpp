#include "cache/flush.hpp"

#include <cmath>

#include "util/check.hpp"

namespace affinity {

double fractionDisplaced(double unique_lines, double sets, unsigned assoc) noexcept {
  AFF_DCHECK(sets > 0.0 && assoc >= 1);
  if (unique_lines <= 0.0) return 0.0;
  if (assoc == 1) {
    // Exact binomial form: P(X >= 1) = 1 - (1 - 1/S)^u.
    return 1.0 - std::exp(unique_lines * std::log1p(-1.0 / sets));
  }
  // Poisson approximation: lambda = u / S per set.
  const double lambda = unique_lines / sets;
  // E[min(X, A)] = Σ_{k=1..A} P(X >= k); accumulate survivor function.
  double pmf = std::exp(-lambda);  // P(X = 0)
  double cdf = pmf;
  double expected = 0.0;
  for (unsigned k = 1; k <= assoc; ++k) {
    expected += 1.0 - cdf;  // P(X >= k)
    pmf *= lambda / static_cast<double>(k);
    cdf += pmf;
  }
  const double f = expected / static_cast<double>(assoc);
  return f > 1.0 ? 1.0 : f;
}

double FlushModel::f1(double x_us) const noexcept {
  const double r = refs(x_us) * (1.0 - machine_.ifetch_fraction);
  const double u = uniqueLines(sst_, r, machine_.l1d.line_bytes);
  return fractionDisplaced(u, static_cast<double>(machine_.l1d.sets()),
                           machine_.l1d.associativity);
}

double FlushModel::f2(double x_us) const noexcept {
  const double u = uniqueLines(sst_, refs(x_us), machine_.l2.line_bytes);
  return fractionDisplaced(u, static_cast<double>(machine_.l2.sets()),
                           machine_.l2.associativity);
}

double FlushModel::f3(double x_us, double issuing_procs) const noexcept {
  if (machine_.llc.size_bytes == 0) return 0.0;
  const double u =
      uniqueLines(sst_, refs(x_us) * issuing_procs, machine_.llc.line_bytes);
  return fractionDisplaced(u, static_cast<double>(machine_.llc.sets()),
                           machine_.llc.associativity);
}

}  // namespace affinity
