#include "cache/footprint.hpp"

#include <cmath>

namespace affinity {

double uniqueLines(const SstParams& p, double refs, double line_bytes) noexcept {
  if (refs <= 1.0) return refs > 0.0 ? refs : 0.0;
  const double logL = std::log10(line_bytes);
  const double logR = std::log10(refs);
  // u = W * L^a * R^b * 10^(log_d * logL * logR)
  const double log_u = std::log10(p.W) + p.a * logL + p.b * logR + p.log_d * logL * logR;
  const double u = std::pow(10.0, log_u);
  return u > refs ? refs : u;
}

double refsForUniqueLines(const SstParams& p, double lines, double line_bytes) noexcept {
  if (lines <= 0.0) return 0.0;
  double lo = 1.0, hi = 1.0;
  while (uniqueLines(p, hi, line_bytes) < lines && hi < 1e18) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (uniqueLines(p, mid, line_bytes) < lines)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace affinity
