#include "cache/machine.hpp"

// Header-only data; this translation unit anchors the library.
