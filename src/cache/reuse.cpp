#include "cache/reuse.hpp"

#include "cache/flush.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace affinity {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// P(hit | reuse distance d) for a cache with `sets` sets and `assoc` ways
/// under uniform independent set mapping of the d intervening lines. Exact
/// binomial survivor for direct-mapped (mirrors fractionDisplaced); Poisson
/// otherwise.
double pHitAtDistance(double d, double sets, unsigned assoc) noexcept {
  if (d <= 0.0) return 1.0;
  if (assoc == 1) {
    return std::exp(d * std::log1p(-1.0 / sets));  // (1 - 1/S)^d
  }
  const double lambda = d / sets;
  double pmf = std::exp(-lambda);
  double p_hit = 0.0;
  for (unsigned k = 0; k < assoc; ++k) {
    p_hit += pmf;
    pmf *= lambda / static_cast<double>(k + 1);
  }
  return p_hit > 1.0 ? 1.0 : p_hit;
}

void appendU64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

// ---------------------------------------------------------------------------
// RdHistogram

unsigned RdHistogram::bucketOf(std::uint64_t d) noexcept {
  if (d < kExactMax) return static_cast<unsigned>(d);
  unsigned octave = 63u - static_cast<unsigned>(__builtin_clzll(d));
  if (octave >= kMaxOctave) octave = kMaxOctave - 1;
  const std::uint64_t lo = std::uint64_t{1} << octave;
  const std::uint64_t width = lo / kSubPerOctave;  // >= 8 for octave >= 6
  const unsigned sub = static_cast<unsigned>((d - lo) / width);
  return static_cast<unsigned>(kExactMax) + (octave - kOctave0) * kSubPerOctave + sub;
}

std::uint64_t RdHistogram::bucketLo(unsigned b) noexcept {
  if (b < kExactMax) return b;
  const unsigned rel = b - static_cast<unsigned>(kExactMax);
  const unsigned octave = kOctave0 + rel / kSubPerOctave;
  const unsigned sub = rel % kSubPerOctave;
  const std::uint64_t base = std::uint64_t{1} << octave;
  return base + sub * (base / kSubPerOctave);
}

std::uint64_t RdHistogram::bucketHi(unsigned b) noexcept {
  if (b < kExactMax) return b;
  if (b + 1 >= kBuckets) return std::numeric_limits<std::uint64_t>::max();
  return bucketLo(b + 1) - 1;
}

void RdHistogram::add(std::uint64_t d) noexcept {
  ++buckets_[bucketOf(d)];
  ++finite_;
}

double RdHistogram::hitsFullyAssoc(double capacity_lines) const noexcept {
  if (capacity_lines <= 0.0) return 0.0;
  double hits = 0.0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[b];
    if (n == 0) continue;
    const double lo = static_cast<double>(bucketLo(b));
    if (capacity_lines <= lo) break;  // buckets are ascending; the rest miss
    const double width = static_cast<double>(bucketHi(b)) - lo + 1.0;
    const double frac = (capacity_lines - lo) / width;
    hits += static_cast<double>(n) * (frac < 1.0 ? frac : 1.0);
  }
  return hits;
}

double RdHistogram::missRatioFullyAssoc(double capacity_lines) const noexcept {
  const std::uint64_t t = total();
  if (t == 0) return 1.0;
  return 1.0 - hitsFullyAssoc(capacity_lines) / static_cast<double>(t);
}

double RdHistogram::missRatio(const CacheLevelParams& level) const noexcept {
  const std::uint64_t t = total();
  if (t == 0) return 1.0;
  if (level.associativity >= 1 && level.lines() > 0 &&
      level.sets() == 1) {
    // Fully associative: the stack property is exact; skip the mapping model.
    return missRatioFullyAssoc(static_cast<double>(level.lines()));
  }
  const double sets = static_cast<double>(level.sets());
  double hits = 0.0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[b];
    if (n == 0) continue;
    const double lo = static_cast<double>(bucketLo(b));
    const double hi = static_cast<double>(bucketHi(b));
    const double rep = b < kExactMax ? lo : 0.5 * (lo + hi);
    hits += static_cast<double>(n) * pHitAtDistance(rep, sets, level.associativity);
  }
  return 1.0 - hits / static_cast<double>(t);
}

void RdHistogram::merge(const RdHistogram& other) noexcept {
  for (unsigned b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  finite_ += other.finite_;
  cold_ += other.cold_;
}

void RdHistogram::serialize(std::string* out) const {
  out->append("cold ");
  appendU64(out, cold_);
  out->append(" ;");
  for (unsigned b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    out->push_back(' ');
    appendU64(out, b);
    out->push_back(':');
    appendU64(out, buckets_[b]);
  }
}

bool RdHistogram::deserialize(const std::string& line) {
  *this = RdHistogram{};
  std::istringstream in(line);
  std::string tok;
  if (!(in >> tok) || tok != "cold") return false;
  if (!(in >> cold_)) return false;
  if (!(in >> tok) || tok != ";") return false;
  while (in >> tok) {
    const auto colon = tok.find(':');
    if (colon == std::string::npos) return false;
    char* end = nullptr;
    const unsigned long long b = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + colon || b >= kBuckets) return false;
    const unsigned long long n = std::strtoull(tok.c_str() + colon + 1, &end, 10);
    if (*end != '\0') return false;
    buckets_[static_cast<unsigned>(b)] = n;
    finite_ += n;
  }
  return true;
}

// ---------------------------------------------------------------------------
// FootprintCurve

void FootprintCurve::addSample(std::uint64_t refs, std::uint64_t lines) {
  AFF_DCHECK(samples_.empty() || refs > samples_.back().first);
  samples_.emplace_back(refs, lines);
}

double FootprintCurve::lines(double refs) const noexcept {
  if (refs <= 0.0 || samples_.empty()) return 0.0;
  const double cap =
      cap_lines_ > 0 ? static_cast<double>(cap_lines_) : kInf;
  // Below the first sample: the curve passes through the origin.
  const double r0 = static_cast<double>(samples_.front().first);
  const double l0 = static_cast<double>(samples_.front().second);
  if (refs <= r0) {
    // u(n) is concave; the chord from the origin underestimates, but a
    // reference can touch at most one new line, so also clamp at `refs`.
    return std::min({l0 * refs / r0, refs, cap});
  }
  // Interior: linear interpolation between bracketing samples.
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double r1 = static_cast<double>(samples_[i].first);
    if (refs > r1) continue;
    const double ra = static_cast<double>(samples_[i - 1].first);
    const double la = static_cast<double>(samples_[i - 1].second);
    const double lb = static_cast<double>(samples_[i].second);
    const double t = (refs - ra) / (r1 - ra);
    return std::min(la + t * (lb - la), cap);
  }
  // Beyond the last sample: power-law tail fitted to the last decade of
  // samples (or the last two when the capture is short), exponent clamped
  // to [0, 1] so the tail stays physical (sublinear, non-decreasing).
  const double rn = static_cast<double>(samples_.back().first);
  const double ln = static_cast<double>(samples_.back().second);
  std::size_t j = samples_.size() - 1;
  while (j > 0 && static_cast<double>(samples_[j].first) > rn / 10.0) --j;
  const double rj = static_cast<double>(samples_[j].first);
  const double lj = static_cast<double>(samples_[j].second);
  double expo = 0.0;
  if (rj < rn && lj > 0.0 && ln > lj) {
    expo = std::log(ln / lj) / std::log(rn / rj);
    expo = std::clamp(expo, 0.0, 1.0);
  }
  return std::min(ln * std::pow(refs / rn, expo), cap);
}

double FootprintCurve::refsFor(double target_lines) const noexcept {
  if (target_lines <= 0.0) return 0.0;
  if (samples_.empty()) return kInf;
  if (cap_lines_ > 0 && target_lines >= static_cast<double>(cap_lines_)) return kInf;
  double hi = static_cast<double>(samples_.back().first);
  while (lines(hi) < target_lines) {
    hi *= 2.0;
    if (hi > 1e18) return kInf;
  }
  double lo = 0.0;
  for (int it = 0; it < 200 && hi - lo > 1e-6 * (1.0 + hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    (lines(mid) < target_lines ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

void FootprintCurve::serialize(std::string* out) const {
  out->append("cap ");
  appendU64(out, cap_lines_);
  out->append(" ;");
  for (const auto& [refs, lines] : samples_) {
    out->push_back(' ');
    appendU64(out, refs);
    out->push_back(':');
    appendU64(out, lines);
  }
}

bool FootprintCurve::deserialize(const std::string& line) {
  *this = FootprintCurve{};
  std::istringstream in(line);
  std::string tok;
  if (!(in >> tok) || tok != "cap") return false;
  if (!(in >> cap_lines_)) return false;
  if (!(in >> tok) || tok != ";") return false;
  while (in >> tok) {
    const auto colon = tok.find(':');
    if (colon == std::string::npos) return false;
    char* end = nullptr;
    const unsigned long long r = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + colon) return false;
    const unsigned long long l = std::strtoull(tok.c_str() + colon + 1, &end, 10);
    if (*end != '\0') return false;
    if (!samples_.empty() && r <= samples_.back().first) return false;
    samples_.emplace_back(r, l);
  }
  return true;
}

// ---------------------------------------------------------------------------
// RdProfile

std::string RdProfile::serialize() const {
  std::string out;
  out.reserve(4096);
  out.append("rd-profile v1\n");
  out.append("name ").append(name).push_back('\n');
  out.append("lines ");
  appendU64(&out, l1_line_bytes);
  out.push_back(' ');
  appendU64(&out, l2_line_bytes);
  out.push_back('\n');
  out.append("refs ");
  appendU64(&out, total_refs);
  out.push_back(' ');
  appendU64(&out, ifetch_refs);
  out.push_back('\n');
  const auto emitHist = [&out](const char* key, const RdHistogram& h) {
    out.append(key);
    out.push_back(' ');
    h.serialize(&out);
    out.push_back('\n');
  };
  const auto emitCurve = [&out](const char* key, const FootprintCurve& c) {
    out.append(key);
    out.push_back(' ');
    c.serialize(&out);
    out.push_back('\n');
  };
  emitHist("ifetch", ifetch);
  emitHist("data", data);
  emitHist("unified", unified);
  emitCurve("fp_l1", fp_l1);
  emitCurve("fp_l2", fp_l2);
  return out;
}

std::optional<RdProfile> RdProfile::deserialize(const std::string& text, std::string* error) {
  const auto fail = [error](const char* why) -> std::optional<RdProfile> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "rd-profile v1") return fail("bad header");
  RdProfile p;
  bool saw_refs = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto space = line.find(' ');
    const std::string key = line.substr(0, space);
    const std::string rest = space == std::string::npos ? std::string{} : line.substr(space + 1);
    if (key == "name") {
      p.name = rest;
    } else if (key == "lines") {
      if (std::sscanf(rest.c_str(), "%u %u", &p.l1_line_bytes, &p.l2_line_bytes) != 2)
        return fail("bad lines");
    } else if (key == "refs") {
      unsigned long long t = 0;
      unsigned long long i = 0;
      if (std::sscanf(rest.c_str(), "%llu %llu", &t, &i) != 2) return fail("bad refs");
      p.total_refs = t;
      p.ifetch_refs = i;
      saw_refs = true;
    } else if (key == "ifetch") {
      if (!p.ifetch.deserialize(rest)) return fail("bad ifetch histogram");
    } else if (key == "data") {
      if (!p.data.deserialize(rest)) return fail("bad data histogram");
    } else if (key == "unified") {
      if (!p.unified.deserialize(rest)) return fail("bad unified histogram");
    } else if (key == "fp_l1") {
      if (!p.fp_l1.deserialize(rest)) return fail("bad fp_l1 curve");
    } else if (key == "fp_l2") {
      if (!p.fp_l2.deserialize(rest)) return fail("bad fp_l2 curve");
    } else {
      return fail("unknown key");
    }
  }
  if (!saw_refs) return fail("missing refs");
  return p;
}

bool RdProfile::saveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string text = serialize();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

std::optional<RdProfile> RdProfile::loadFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str(), error);
}

// ---------------------------------------------------------------------------
// RdCacheModel

namespace {

/// A curve's asymptotic footprint: the cap if set, else the last sample.
double fullFootprint(const FootprintCurve& c) noexcept {
  if (c.capLines() > 0) return static_cast<double>(c.capLines());
  if (c.empty()) return 0.0;
  return static_cast<double>(c.samples().back().second);
}

}  // namespace

RdCacheModel::RdCacheModel(MachineParams machine, RdProfile protocol, RdProfile background,
                           unsigned co_runners, double protocol_duty)
    : machine_(machine),
      proto_(std::move(protocol)),
      bg_(std::move(background)),
      co_runners_(co_runners == 0 ? 1 : co_runners),
      protocol_duty_(std::clamp(protocol_duty, 0.0, 1.0)) {
  if (machine_.llc.size_bytes > 0) {
    // Partition the shared LLC among the co-running streams: every
    // co-runner contributes one protocol stream and one background stream,
    // weighted by its duty cycle.
    const double r = machine_.refsPerMicrosecond();
    std::vector<const FootprintCurve*> fps;
    std::vector<double> rates;
    fps.reserve(2 * co_runners_);
    rates.reserve(2 * co_runners_);
    for (unsigned i = 0; i < co_runners_; ++i) {
      fps.push_back(&proto_.fp_l2);
      rates.push_back(r * protocol_duty_);
      fps.push_back(&bg_.fp_l2);
      rates.push_back(r * (1.0 - protocol_duty_));
    }
    const std::vector<double> occ =
        solveOccupancy(static_cast<double>(machine_.llc.lines()), fps, rates);
    llc_share_lines_ = occ.empty() ? 0.0 : occ[0];
  }
}

double RdCacheModel::f1(double x_us) const noexcept {
  if (x_us <= 0.0) return 0.0;
  const double refs = x_us * machine_.refsPerMicrosecond();
  const double data_refs = refs * (1.0 - bg_.ifetchFraction());
  const double u = bg_.fp_l1.lines(data_refs);
  return fractionDisplaced(u, static_cast<double>(machine_.l1d.sets()),
                           machine_.l1d.associativity);
}

double RdCacheModel::f2(double x_us) const noexcept {
  if (x_us <= 0.0) return 0.0;
  const double u = bg_.fp_l2.lines(x_us * machine_.refsPerMicrosecond());
  return fractionDisplaced(u, static_cast<double>(machine_.l2.sets()),
                           machine_.l2.associativity);
}

double RdCacheModel::f3(double x_us) const noexcept {
  if (x_us <= 0.0 || machine_.llc.size_bytes == 0) return 0.0;
  const double r = x_us * machine_.refsPerMicrosecond();
  // Displacing LLC traffic during the gap: the local processor runs its
  // background, and each of the other co-runners keeps issuing its full
  // protocol + background mix.
  double u = bg_.fp_l2.lines(r);
  if (co_runners_ > 1) {
    const double others = static_cast<double>(co_runners_ - 1);
    u += others * (proto_.fp_l2.lines(r * protocol_duty_) +
                   bg_.fp_l2.lines(r * (1.0 - protocol_duty_)));
  }
  return fractionDisplaced(u, static_cast<double>(machine_.llc.sets()),
                           machine_.llc.associativity);
}

// The per-level predictions use the fully-associative stack conversion,
// not the Poisson set-conflict correction: the protocol address layout is
// deliberately staggered so regions don't alias (trace.hpp — "a linker
// would achieve the same"), which makes the direct-mapped cachesim behave
// like a fully-associative cache of the same capacity. Uniform-mapping
// corrections model *random* interfering lines (right for the background
// displacement in f1/f2/f3, wrong here — they overpredict protocol
// self-conflicts by an order of magnitude). tests/rd_model_test.cpp pins
// the residual gap.
double RdCacheModel::l1iGlobalMissRatio() const noexcept {
  return proto_.ifetch.missRatioFullyAssoc(static_cast<double>(machine_.l1i.lines())) *
         proto_.ifetchFraction();
}

double RdCacheModel::l1dGlobalMissRatio() const noexcept {
  return proto_.data.missRatioFullyAssoc(static_cast<double>(machine_.l1d.lines())) *
         (1.0 - proto_.ifetchFraction());
}

double RdCacheModel::l2GlobalMissRatio() const noexcept {
  // Stack property of inclusive LRU: an access misses in L2 iff its reuse
  // distance at L2 line granularity exceeds the L2 capacity — L1 filtering
  // does not change which accesses those are.
  return proto_.unified.missRatioFullyAssoc(static_cast<double>(machine_.l2.lines()));
}

double RdCacheModel::llcGlobalMissRatio() const noexcept {
  if (machine_.llc.size_bytes == 0) return 0.0;
  // Only accesses with RD >= C_l2 reach the (non-inclusive) LLC at all, and
  // of those, the LLC serves the ones within this stream's occupancy share:
  // a miss needs RD >= max(share, C_l2). (Assumes llc.line_bytes ==
  // l2.line_bytes, true of the modern2020 preset, so one unified histogram
  // covers both levels.)
  const double c = std::max(llc_share_lines_, static_cast<double>(machine_.l2.lines()));
  return proto_.unified.missRatioFullyAssoc(c);
}

double RdCacheModel::protoLinesL2() const noexcept { return fullFootprint(proto_.fp_l2); }

std::vector<double> RdCacheModel::solveOccupancy(
    double capacity_lines, const std::vector<const FootprintCurve*>& footprints,
    const std::vector<double>& rate_refs_per_us) {
  AFF_DCHECK(footprints.size() == rate_refs_per_us.size());
  const std::size_t n = footprints.size();
  std::vector<double> occ(n, 0.0);
  if (n == 0 || capacity_lines <= 0.0) return occ;

  const auto occupancyAt = [&](double window_us, std::vector<double>* out) -> double {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double c = footprints[i]->lines(rate_refs_per_us[i] * window_us);
      if (out != nullptr) (*out)[i] = c;
      sum += c;
    }
    return sum;
  };

  // Everything fits: each stream keeps its whole footprint.
  double total_full = 0.0;
  for (std::size_t i = 0; i < n; ++i) total_full += fullFootprint(*footprints[i]);
  if (total_full <= capacity_lines) {
    for (std::size_t i = 0; i < n; ++i) occ[i] = fullFootprint(*footprints[i]);
    return occ;
  }

  // Bisect the common window W with sum_i u_i(r_i W) = C. The sum is
  // monotone non-decreasing in W, 0 at W = 0 and > C at saturation.
  double hi = 1.0;
  while (occupancyAt(hi, nullptr) < capacity_lines && hi < 1e15) hi *= 2.0;
  double lo = 0.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    (occupancyAt(mid, nullptr) < capacity_lines ? lo : hi) = mid;
  }
  occupancyAt(0.5 * (lo + hi), &occ);
  return occ;
}

}  // namespace affinity
