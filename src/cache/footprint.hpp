// footprint.hpp — the Singh–Stone–Thiebaut footprint function u(R, L).
//
// u(R, L) estimates the number of unique cache lines (line size L bytes)
// touched by R memory references of a workload:
//
//     u(R, L) = W · L^a · R^b · d^(log L · log R)        (paper eq. 2)
//
// The paper models the displacing *non-protocol* workload with the constants
// Singh, Stone and Thiebaut fitted to a 200M-reference multiprogrammed
// IBM/370 MVS trace: W = 2.19827, a = 0.033233, b = 0.827457,
// log d = -0.13025. Logarithms are base-10: with base-10 the fitted
// constants give u ∝ L^(-0.75) at R = 10^6 (sensible spatial locality),
// whereas base-2 drives u to ~0 (see DESIGN.md §2).
#pragma once

namespace affinity {

/// Constants of the SST footprint power law.
struct SstParams {
  double W = 2.19827;
  double a = 0.033233;
  double b = 0.827457;
  double log_d = -0.13025;  ///< log10 of the interaction constant d

  /// The multiprogrammed MVS workload fit used by the paper for the
  /// non-protocol activity.
  static SstParams mvsWorkload() noexcept { return SstParams{}; }
};

/// Number of unique lines of size `line_bytes` touched in `refs` references.
/// Returns 0 for refs <= 0; clamps at `refs` (a reference stream cannot touch
/// more unique lines than it has references).
double uniqueLines(const SstParams& p, double refs, double line_bytes) noexcept;

/// Inverse-ish helper for tests: references needed to touch `lines` unique
/// lines (bisection on uniqueLines; `lines` must be reachable).
double refsForUniqueLines(const SstParams& p, double lines, double line_bytes) noexcept;

}  // namespace affinity
