// steal_bound.hpp — theoretical envelope on work-stealing cache cost.
//
// Gu, Fineman et al. ("Analysis of Work Stealing with latency", and the
// randomized-work-stealing cache-complexity line culminating in
// arXiv:2111.04994) bound the *extra* cache misses a work-stealing
// execution incurs over the serial one: each steal can force at most one
// reload of the stolen task's footprint per private cache level, and a
// level of C lines can never lose more than C lines to a migration —
//
//     extra_misses(level) <= steals · min(footprint_lines, capacity_lines)
//
// This file turns that bound into a microsecond envelope the simulator's
// measured migrated-footprint reload cost must stay under
// (tests/steal_bound_test.cpp). The envelope is computed purely from cache
// geometry + per-level footprint line counts supplied by the caller — an
// independent cross-check on the simulator's reload accounting, not a
// restatement of it.
#pragma once

#include <cstdint>

#include "cache/machine.hpp"

namespace affinity {

/// Per-level line counts of the footprint a stolen job drags with it.
struct StealFootprintLines {
  double l1 = 0.0;   ///< lines the job re-references in an L1 (I + D)
  double l2 = 0.0;   ///< lines at private-L2 granularity
  double llc = 0.0;  ///< lines at LLC granularity (ignored when no LLC)
};

/// Worst-case extra cache-miss cycles one steal can cost across the private
/// levels (plus the shared LLC when present): per level,
/// min(footprint, capacity) line fills at that level's miss penalty.
double stealColdMissCyclesBound(const MachineParams& machine,
                                const StealFootprintLines& footprint) noexcept;

/// Total envelope, in microseconds, for an execution with `stolen_jobs`
/// stolen jobs: stolen_jobs · (per-steal miss-cycle bound) / clock, plus the
/// scheduler's own fixed per-steal overhead (`steals` steal operations at
/// `steal_penalty_us` each — the simulator folds that overhead into the same
/// measured counter the envelope gates).
double stealCacheComplexityEnvelopeUs(const MachineParams& machine,
                                      const StealFootprintLines& footprint,
                                      std::uint64_t steals, std::uint64_t stolen_jobs,
                                      double steal_penalty_us) noexcept;

}  // namespace affinity
