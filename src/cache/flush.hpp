// flush.hpp — F(x): fraction of the cached protocol footprint displaced by
// intervening non-protocol execution of duration x (paper Appendix).
//
// The u(R,L) unique lines of the intervening workload are assumed to map
// independently and uniformly into the cache's S sets; the per-set count is
// X ~ Binomial(u, 1/S). For a direct-mapped cache a resident line is
// displaced iff X >= 1, so
//
//     F = 1 - (1 - 1/S)^u
//
// and for A-way LRU the displaced fraction is E[min(X, A)] / A
// = (1/A) Σ_{k=1..A} P(X >= k), evaluated with a Poisson(u/S) approximation.
//
// F1 applies u to half the reference stream (split L1 I/D caches, the paper's
// even-split assumption); F2 applies it to the full stream and the L2
// geometry. The protocol footprint is flushed much more slowly from the 1 MB
// L2 than from the 16 KB L1s (paper Fig. 4; bench/fig04_flush_curves).
#pragma once

#include "cache/footprint.hpp"
#include "cache/machine.hpp"

namespace affinity {

/// Fraction of a cache with `sets` sets and associativity `assoc` displaced
/// by `unique_lines` independently-mapped interfering lines.
double fractionDisplaced(double unique_lines, double sets, unsigned assoc) noexcept;

/// Per-level flush fractions for a machine under an SST-modelled
/// non-protocol workload.
class FlushModel {
 public:
  FlushModel(MachineParams machine, SstParams sst) noexcept
      : machine_(machine), sst_(sst) {}

  /// References issued by the intervening workload in `x_us` microseconds.
  [[nodiscard]] double refs(double x_us) const noexcept {
    return x_us > 0.0 ? x_us * machine_.refsPerMicrosecond() : 0.0;
  }

  /// Fraction of the footprint flushed from the (data) L1 after x_us of
  /// intervening execution. Uses the D-cache geometry with the non-ifetch
  /// share of the reference stream.
  [[nodiscard]] double f1(double x_us) const noexcept;

  /// Fraction flushed from the unified L2 after x_us.
  [[nodiscard]] double f2(double x_us) const noexcept;

  /// Fraction flushed from the shared LLC after x_us, scaling the displacing
  /// reference stream by `issuing_procs` (every processor sharing the LLC
  /// keeps issuing during the gap). 0 when the machine has no LLC.
  [[nodiscard]] double f3(double x_us, double issuing_procs = 1.0) const noexcept;

  [[nodiscard]] const MachineParams& machine() const noexcept { return machine_; }
  [[nodiscard]] const SstParams& sst() const noexcept { return sst_; }

 private:
  MachineParams machine_;
  SstParams sst_;
};

}  // namespace affinity
