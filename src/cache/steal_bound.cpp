#include "cache/steal_bound.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace affinity {

double stealColdMissCyclesBound(const MachineParams& machine,
                                const StealFootprintLines& footprint) noexcept {
  AFF_DCHECK(footprint.l1 >= 0.0 && footprint.l2 >= 0.0 && footprint.llc >= 0.0);
  // A migration can cold-miss at most the smaller of (what the job touches,
  // what the level can hold). Both L1s move together, so their capacities
  // add.
  const double l1_cap =
      static_cast<double>(machine.l1i.lines()) + static_cast<double>(machine.l1d.lines());
  double cycles = std::min(footprint.l1, l1_cap) * machine.l1_miss_cycles +
                  std::min(footprint.l2, static_cast<double>(machine.l2.lines())) *
                      machine.l2_miss_cycles;
  if (machine.llc.size_bytes > 0) {
    cycles += std::min(footprint.llc, static_cast<double>(machine.llc.lines())) *
              machine.llc_miss_cycles;
  }
  return cycles;
}

double stealCacheComplexityEnvelopeUs(const MachineParams& machine,
                                      const StealFootprintLines& footprint,
                                      std::uint64_t steals, std::uint64_t stolen_jobs,
                                      double steal_penalty_us) noexcept {
  const double per_steal_cycles = stealColdMissCyclesBound(machine, footprint);
  const double miss_us =
      static_cast<double>(stolen_jobs) * per_steal_cycles / machine.clock_hz * 1e6;
  return miss_us + static_cast<double>(steals) * steal_penalty_us;
}

}  // namespace affinity
