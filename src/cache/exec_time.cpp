#include "cache/exec_time.hpp"

#include "util/check.hpp"

namespace affinity {

ExecTimeModel::ExecTimeModel(FlushModel flush, ReloadParams reload, FootprintShares shares)
    : flush_(flush), reload_(reload), shares_(shares) {
  AFF_CHECK(shares_.valid());
  AFF_CHECK(reload_.t_warm_us > 0.0 && reload_.dl1_us >= 0.0 && reload_.dl2_us >= 0.0);
}

double ExecTimeModel::reload(double age_us) const noexcept {
  if (age_us <= 0.0) return 0.0;
  if (age_us == kColdAge) return reload_.dl1_us + reload_.dl2_us;
  return flush_.f1(age_us) * reload_.dl1_us + flush_.f2(age_us) * reload_.dl2_us;
}

namespace {
inline double flushAt(const FlushModel& fm, double age_us, bool l2) noexcept {
  if (age_us <= 0.0) return 0.0;
  if (age_us == kColdAge) return 1.0;
  return l2 ? fm.f2(age_us) : fm.f1(age_us);
}
}  // namespace

ExecTimeModel::ServiceParts ExecTimeModel::serviceParts(
    const CacheStateAges& ages) const noexcept {
  const double l1 = shares_.l1_code * flushAt(flush_, ages.code, false) +
                    shares_.l1_shared * flushAt(flush_, ages.shared, false) +
                    shares_.l1_stream * flushAt(flush_, ages.stream, false);
  const double l2 = shares_.l2_code * flushAt(flush_, ages.code, true) +
                    shares_.l2_shared * flushAt(flush_, ages.shared, true) +
                    shares_.l2_stream * flushAt(flush_, ages.stream, true);
  return ServiceParts{reload_.t_warm_us, l1 * reload_.dl1_us, l2 * reload_.dl2_us};
}

double ExecTimeModel::serviceTime(const CacheStateAges& ages) const noexcept {
  return serviceParts(ages).total();
}

}  // namespace affinity
