#include "cache/exec_time.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace affinity {

ExecTimeModel::ExecTimeModel(FlushModel flush, ReloadParams reload, FootprintShares shares)
    : flush_(flush), kind_(CacheModelKind::kSst), reload_(reload), shares_(shares) {
  AFF_CHECK(shares_.valid());
  AFF_CHECK(reload_.t_warm_us > 0.0 && reload_.dl1_us >= 0.0 && reload_.dl2_us >= 0.0 &&
            reload_.dl3_us >= 0.0);
}

ExecTimeModel::ExecTimeModel(std::shared_ptr<const RdCacheModel> rd, ReloadParams reload,
                             FootprintShares shares)
    : flush_(FlushModel(rd->machine(), SstParams::mvsWorkload())),
      rd_(std::move(rd)),
      kind_(CacheModelKind::kReuse),
      reload_(reload),
      shares_(shares) {
  AFF_CHECK(shares_.valid());
  AFF_CHECK(reload_.t_warm_us > 0.0 && reload_.dl1_us >= 0.0 && reload_.dl2_us >= 0.0 &&
            reload_.dl3_us >= 0.0);
}

double ExecTimeModel::f1At(double age_us) const noexcept {
  if (age_us <= 0.0) return 0.0;
  if (age_us == kColdAge) return 1.0;
  return kind_ == CacheModelKind::kSst ? flush_.f1(age_us) : rd_->f1(age_us);
}

double ExecTimeModel::f2At(double age_us) const noexcept {
  if (age_us <= 0.0) return 0.0;
  if (age_us == kColdAge) return 1.0;
  return kind_ == CacheModelKind::kSst ? flush_.f2(age_us) : rd_->f2(age_us);
}

double ExecTimeModel::f3At(double age_us) const noexcept {
  if (reload_.dl3_us <= 0.0 || age_us <= 0.0) return 0.0;
  if (age_us == kColdAge) return 1.0;
  if (kind_ == CacheModelKind::kReuse) return rd_->f3(age_us);
  const double procs = rd_ ? rd_->coRunners() : 1.0;
  return flush_.f3(age_us, procs);
}

double ExecTimeModel::reload(double age_us) const noexcept {
  if (age_us <= 0.0) return 0.0;
  if (age_us == kColdAge) return reload_.dl1_us + reload_.dl2_us + reload_.dl3_us;
  double r = f1At(age_us) * reload_.dl1_us + f2At(age_us) * reload_.dl2_us;
  if (reload_.dl3_us > 0.0) r += f3At(age_us) * reload_.dl3_us;
  return r;
}

ExecTimeModel::ServiceParts ExecTimeModel::serviceParts(
    const CacheStateAges& ages) const noexcept {
  const double l1 = shares_.l1_code * f1At(ages.code) +
                    shares_.l1_shared * f1At(ages.shared) +
                    shares_.l1_stream * f1At(ages.stream);
  const double l2 = shares_.l2_code * f2At(ages.code) +
                    shares_.l2_shared * f2At(ages.shared) +
                    shares_.l2_stream * f2At(ages.stream);
  double l3 = 0.0;
  if (reload_.dl3_us > 0.0) {
    // The shared LLC doesn't care which processor last touched a component:
    // its age is the time since the last touch *anywhere*. The local age is
    // still an upper bound on warmth (a component re-referenced here was
    // re-referenced somewhere), so take the min — with the default
    // *_any == kColdAge this degrades to the local age.
    const double code_age = std::min(ages.code, ages.code_any);
    const double shared_age = std::min(ages.shared, ages.shared_any);
    const double stream_age = std::min(ages.stream, ages.stream_any);
    // Reuse the L2 share split: the same components refill through the LLC.
    l3 = shares_.l2_code * f3At(code_age) + shares_.l2_shared * f3At(shared_age) +
         shares_.l2_stream * f3At(stream_age);
  }
  return ServiceParts{reload_.t_warm_us, l1 * reload_.dl1_us, l2 * reload_.dl2_us,
                      l3 * reload_.dl3_us};
}

double ExecTimeModel::serviceTime(const CacheStateAges& ages) const noexcept {
  return serviceParts(ages).total();
}

}  // namespace affinity
