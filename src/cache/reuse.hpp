// reuse.hpp — reuse-distance cache model (ROADMAP item 4).
//
// The SST flush model (cache/flush.hpp) summarizes the displacing workload
// with a fitted 1985 power law. This file replaces that summary with
// *measured* locality: a reuse-distance (LRU stack distance) histogram and a
// footprint curve u(n) captured from the trace-driven cachesim
// (cachesim/rd_capture.hpp), following the profile-based shared-cache
// construction of Saeed & Falakniyaz (arXiv:1907.12666):
//
//   * RdHistogram    — distribution of stack distances (in unique lines).
//     For a fully-associative LRU cache of C lines an access hits iff its
//     reuse distance is < C, so the histogram converts directly into a
//     miss-ratio curve; for A-way set-associative caches the conversion
//     applies the same Poisson set-conflict correction the SST model uses
//     (Smith's formula: the d intervening distinct lines land uniformly in
//     S sets; the access hits iff fewer than A of them map to its set).
//   * FootprintCurve — u(n): expected distinct lines touched in n
//     consecutive references. The measured analogue of the SST u(R, L).
//   * RdProfile      — one workload's capture: per-stream histograms (I /
//     D / unified) plus footprint curves at both line granularities, with a
//     compact deterministic text serialization (byte-identical across
//     capture job counts — guarded by rd_model_test).
//   * RdCacheModel   — the pluggable alternative to FlushModel: private
//     L1/L2 flush fractions from the background's measured footprint, a
//     shared-LLC displacement curve driven by *all* co-runners' combined
//     traffic, and the LLC occupancy fixed point that partitions shared
//     space among co-running reference streams by their footprint curves.
//
// ExecTimeModel selects between the SST and reuse models via CacheModelKind
// (`cache.model = sst | reuse` in scenario files); every prediction this
// model makes is pinned differentially against the trace cachesim in
// tests/rd_model_test.cpp before any figure relies on it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/machine.hpp"

namespace affinity {

/// Histogram of LRU stack distances, in unique lines. Distances below
/// kExactMax occupy one bucket each (exact accounting for the micro-trace
/// property tests); larger distances share geometric buckets with
/// kSubPerOctave subdivisions per power of two.
class RdHistogram {
 public:
  static constexpr std::uint64_t kExactMax = 64;
  static constexpr unsigned kSubPerOctave = 8;
  static constexpr unsigned kOctave0 = 6;  // log2(kExactMax)
  static constexpr unsigned kMaxOctave = 48;
  static constexpr unsigned kBuckets =
      static_cast<unsigned>(kExactMax) + (kMaxOctave - kOctave0) * kSubPerOctave;

  /// Records one access with finite reuse distance `d` (0 = immediate
  /// re-reference of the most recent line).
  void add(std::uint64_t d) noexcept;
  /// Records a first-touch access (infinite distance: a compulsory miss).
  void addCold() noexcept { ++cold_; }

  [[nodiscard]] std::uint64_t total() const noexcept { return finite_ + cold_; }
  [[nodiscard]] std::uint64_t cold() const noexcept { return cold_; }
  [[nodiscard]] std::uint64_t finite() const noexcept { return finite_; }

  /// Accesses with reuse distance < `capacity_lines` — the hits a
  /// fully-associative LRU cache of that size would serve. Monotone
  /// non-decreasing in capacity; exact for distances < kExactMax, linear
  /// interpolation within a geometric bucket above.
  [[nodiscard]] double hitsFullyAssoc(double capacity_lines) const noexcept;

  /// 1 - hitsFullyAssoc/total (1.0 for an empty histogram: every access of
  /// an empty stream is vacuously a miss). Monotone non-increasing in
  /// capacity.
  [[nodiscard]] double missRatioFullyAssoc(double capacity_lines) const noexcept;

  /// Set-associative miss ratio under Smith's uniform-mapping correction:
  /// P(miss | d) = P(Poisson(d / sets) >= assoc), averaged over the
  /// histogram; cold accesses always miss.
  [[nodiscard]] double missRatio(const CacheLevelParams& level) const noexcept;

  void merge(const RdHistogram& other) noexcept;

  [[nodiscard]] static unsigned bucketOf(std::uint64_t d) noexcept;
  [[nodiscard]] static std::uint64_t bucketLo(unsigned b) noexcept;
  [[nodiscard]] static std::uint64_t bucketHi(unsigned b) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

  // Deterministic compact form: "cold <n> ; <bucket>:<count> ...", sparse,
  // ascending bucket index.
  void serialize(std::string* out) const;
  [[nodiscard]] bool deserialize(const std::string& line);

 private:
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t finite_ = 0;
  std::uint64_t cold_ = 0;
};

/// Sampled footprint function u(n): expected distinct lines in n
/// consecutive references, captured at geometrically spaced checkpoints.
/// Beyond the captured range the curve extrapolates with the power law
/// fitted to the last sampled decade, clamped at `cap_lines` (the
/// workload's total distinct lines) — the measured analogue of SST's
/// u(R, L) = W L^a R^b d^(log L log R).
class FootprintCurve {
 public:
  void addSample(std::uint64_t refs, std::uint64_t lines);
  void setCap(std::uint64_t cap_lines) noexcept { cap_lines_ = cap_lines; }

  /// Distinct lines expected in `refs` references (interpolated/extrapolated).
  [[nodiscard]] double lines(double refs) const noexcept;
  /// Inverse: references needed to touch `lines` distinct lines (bisection;
  /// returns +inf past the cap).
  [[nodiscard]] double refsFor(double lines) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::uint64_t capLines() const noexcept { return cap_lines_; }
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint64_t>>& samples()
      const noexcept {
    return samples_;
  }

  void serialize(std::string* out) const;
  [[nodiscard]] bool deserialize(const std::string& line);

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> samples_;  // (refs, lines) ascending
  std::uint64_t cap_lines_ = 0;  // 0 = uncapped
};

/// One workload's reuse-distance capture. Histograms are split the way the
/// hierarchy splits the reference stream: instruction fetches (L1I), data
/// references (L1D), and the unified stream at the L2 line granularity.
struct RdProfile {
  std::string name = "unnamed";
  std::uint32_t l1_line_bytes = 32;
  std::uint32_t l2_line_bytes = 128;
  std::uint64_t total_refs = 0;
  std::uint64_t ifetch_refs = 0;

  RdHistogram ifetch;   ///< I-stream distances at L1 line granularity
  RdHistogram data;     ///< D-stream distances at L1 line granularity
  RdHistogram unified;  ///< all references at L2 line granularity

  FootprintCurve fp_l1;  ///< distinct L1-lines vs references (whole stream)
  FootprintCurve fp_l2;  ///< distinct L2-lines vs references

  [[nodiscard]] double ifetchFraction() const noexcept {
    return total_refs ? static_cast<double>(ifetch_refs) / static_cast<double>(total_refs) : 0.0;
  }

  /// Deterministic text form ("rd-profile v1" header); byte-identical for
  /// identical captures whatever the capture parallelism.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static std::optional<RdProfile> deserialize(const std::string& text,
                                                            std::string* error = nullptr);
  [[nodiscard]] bool saveFile(const std::string& path) const;
  [[nodiscard]] static std::optional<RdProfile> loadFile(const std::string& path,
                                                         std::string* error = nullptr);
};

/// The reuse-distance flush/occupancy model: drop-in alternative to the SST
/// FlushModel, parameterized by a protocol profile, a background profile,
/// and the number of symmetric co-runners sharing the LLC (processors each
/// running the same protocol + background mix).
class RdCacheModel {
 public:
  RdCacheModel(MachineParams machine, RdProfile protocol, RdProfile background,
               unsigned co_runners = 1, double protocol_duty = 0.5);

  /// Fraction of the protocol footprint displaced from the private L1D
  /// after `x_us` of local background execution (measured-footprint
  /// analogue of FlushModel::f1).
  [[nodiscard]] double f1(double x_us) const noexcept;
  /// Same for the private L2.
  [[nodiscard]] double f2(double x_us) const noexcept;
  /// Fraction displaced from the *shared* LLC after `x_us` during which all
  /// co-runners kept issuing (their background plus their protocol work).
  /// 0 when the machine has no shared LLC.
  [[nodiscard]] double f3(double x_us) const noexcept;

  // --- per-level global miss-ratio predictions (misses / total references),
  //     the quantities the differential battery pins against the cachesim --
  [[nodiscard]] double l1iGlobalMissRatio() const noexcept;
  [[nodiscard]] double l1dGlobalMissRatio() const noexcept;
  [[nodiscard]] double l2GlobalMissRatio() const noexcept;
  /// LLC miss ratio at this protocol stream's solved occupancy share
  /// (fully-associative conversion — modern LLCs are 16-way).
  [[nodiscard]] double llcGlobalMissRatio() const noexcept;

  /// Protocol footprint, in L2-granularity lines (its total distinct lines).
  [[nodiscard]] double protoLinesL2() const noexcept;
  /// The protocol stream's solved share of the shared LLC, in lines
  /// (= protoLinesL2 when everything fits). 0 when no LLC.
  [[nodiscard]] double llcShareLines() const noexcept { return llc_share_lines_; }

  /// Shared-LLC occupancy fixed point (arXiv:1907.12666 construction): find
  /// the window W with sum_i u_i(rate_i * W) = capacity and give stream i
  /// the c_i = u_i(rate_i * W) lines it touches in that window. When the
  /// combined footprints fit, each stream simply keeps its whole footprint.
  /// Returns one occupancy (in lines) per stream.
  [[nodiscard]] static std::vector<double> solveOccupancy(
      double capacity_lines, const std::vector<const FootprintCurve*>& footprints,
      const std::vector<double>& rate_refs_per_us);

  [[nodiscard]] const MachineParams& machine() const noexcept { return machine_; }
  [[nodiscard]] const RdProfile& protocol() const noexcept { return proto_; }
  [[nodiscard]] const RdProfile& background() const noexcept { return bg_; }
  [[nodiscard]] unsigned coRunners() const noexcept { return co_runners_; }

 private:
  MachineParams machine_;
  RdProfile proto_;
  RdProfile bg_;
  unsigned co_runners_;
  double protocol_duty_;     ///< fraction of each co-runner's refs that are protocol
  double llc_share_lines_ = 0.0;  ///< solved at construction
};

}  // namespace affinity
