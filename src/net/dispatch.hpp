// dispatch.hpp — the NIC receive-side dispatch front-end.
//
// Models the stream→queue classifiers modern NICs offer ahead of whatever
// software scheduling policy runs behind them:
//
//   kDirect       — the repo's historical `stream % queues` map (the paper's
//                   idealized classifier). Bit-identical to pre-front-end
//                   behavior, so it is the default everywhere.
//   kRss          — receive-side scaling: Toeplitz hash of the stream's
//                   synthetic 4-tuple indexes a 128-entry indirection table.
//                   Stateless, so per-stream order is preserved by
//                   construction.
//   kFlowDirector — Intel Flow Director's pinning behavior: a flow table
//                   remembers the queue each stream last ran on and routes
//                   new arrivals there. When the consumer side re-homes a
//                   stream (a steal, a watchdog failover), the pin follows —
//                   and packets still queued at the old home are now behind
//                   packets routed to the new one. That migration-reorder
//                   pathology is exactly Wu et al., "Why Does Flow Director
//                   Cause Packet Reordering?" (arXiv:1106.0443), and
//                   tests/ordering_test.cpp reproduces it on purpose.
//   kTransportFriendly — the companion paper's fix ("A Transport-Friendly
//                   NIC for Multicore/Multiprocessor Systems",
//                   arXiv:1106.0445): first-seen streams take RSS placement,
//                   and thereafter the pin moves only on consumer-side
//                   feedback (noteRun reporting who actually consumed the
//                   flow) — and the move is *deferred* until every frame
//                   already dispatched to the old home has drained
//                   (noteDispatched/noteRun/noteDrained bracket the in-flight
//                   window). New arrivals therefore never overtake a stranded
//                   prefix: per-stream order is preserved by construction
//                   while load still follows the consumer. A proposal that
//                   keeps losing to fresh old-home consumption for more than
//                   the staleness window is dropped as stale.
//
// Thread-safe: the flow table is Mutex-guarded because runtime engines call
// queueOf() from submitters while workers call noteRun() concurrently. The
// simulator calls everything from one thread and pays one uncontended lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/toeplitz.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace affinity::net {

enum class NicDispatchMode : std::uint8_t {
  kDirect,             ///< stream % queues (seed behavior; the default)
  kRss,                ///< Toeplitz hash -> indirection table
  kFlowDirector,       ///< pin to last-used queue; migrates with the consumer
  kTransportFriendly,  ///< feedback-driven pin; repin deferred until drained
};

[[nodiscard]] const char* nicModeName(NicDispatchMode mode) noexcept;

/// Parses "direct" / "rss" / "flow-director" / "tfn" (scenario INI
/// spelling; "fdir" and "transport-friendly" are accepted aliases).
/// Returns true and sets `out` on success.
[[nodiscard]] bool parseNicMode(const std::string& text, NicDispatchMode* out) noexcept;

/// Counters a dispatcher accumulates; exported as net.dispatch.* metrics by
/// whichever runner owns the dispatcher.
struct NicDispatchStats {
  std::uint64_t routed = 0;      ///< queueOf() calls
  std::uint64_t pins = 0;        ///< FDir/TFN: first-seen streams pinned
  std::uint64_t migrations = 0;  ///< FDir/TFN: pins moved to a new queue
  // TransportFriendly only:
  std::uint64_t tfn_feedback = 0;  ///< consumer feedback events accepted
  std::uint64_t tfn_deferred = 0;  ///< repin proposals parked behind in-flight
  std::uint64_t tfn_applied = 0;   ///< deferred proposals applied after drain
  std::uint64_t tfn_stale = 0;     ///< proposals/feedback dropped as stale
};

/// One receive-side classifier instance. `num_queues` is the fan-out (worker
/// or processor count); ids returned by queueOf() are in [0, num_queues).
class NicDispatcher {
 public:
  static constexpr std::size_t kIndirectionEntries = 128;  // RSS spec size
  /// Default TransportFriendly staleness window: a repin proposal that is
  /// outlived by this many consumptions at the *current* pin is dropped.
  static constexpr unsigned kDefaultTfnWindow = 32;

  NicDispatcher(NicDispatchMode mode, unsigned num_queues,
                unsigned tfn_window = kDefaultTfnWindow);

  [[nodiscard]] NicDispatchMode mode() const noexcept { return mode_; }
  [[nodiscard]] unsigned numQueues() const noexcept { return num_queues_; }
  [[nodiscard]] unsigned tfnWindow() const noexcept { return tfn_window_; }

  /// Routes a stream to a queue. FlowDirector pins first-seen streams via
  /// the RSS hash and then follows noteRun()/repin() updates;
  /// TransportFriendly pins the same way but only feedback moves the pin.
  /// Pure routing: no in-flight accounting (see noteDispatched()).
  [[nodiscard]] unsigned queueOf(std::uint32_t stream) AFF_EXCLUDES(mu_);

  /// TransportFriendly: a frame for `stream` is about to be enqueued at the
  /// routed queue — opens one slot of the in-flight window that gates
  /// deferred repins. Callers invoke it *before* the push and cancel with
  /// noteDrained() if the push fails, so the window over-counts rather than
  /// under-counts (a pending repin can never apply ahead of a frame that is
  /// physically queued). No-op for the other modes.
  void noteDispatched(std::uint32_t stream) AFF_EXCLUDES(mu_);

  /// Consumer feedback: the consumer on `queue` just ran `stream`.
  /// FlowDirector moves the pin immediately (counts a migration when it
  /// actually moves). TransportFriendly closes one in-flight slot and
  /// treats a mismatched queue as a *deferred* repin proposal, applied only
  /// once the old home drains; returns true exactly when a deferred repin
  /// was applied by this call (so cache models can charge the cold
  /// transient). Stateless modes no-op and return false.
  bool noteRun(std::uint32_t stream, unsigned queue) AFF_EXCLUDES(mu_);

  /// TransportFriendly: closes one in-flight slot *without* trusting the
  /// consumer's placement feedback — the frame drained, but via a dead
  /// worker's reconcile, a stale flow generation, or a cancelled push.
  /// `stale_feedback` counts the event under tfn_stale (pass false for pure
  /// push-failure cancellation). May apply a pending repin once the stream
  /// fully drains. No-op for the other modes.
  void noteDrained(std::uint32_t stream, bool stale_feedback = false) AFF_EXCLUDES(mu_);

  /// Forced re-pin (watchdog failover, explicit rebalance). FlowDirector
  /// moves the pin immediately and counts a migration even for a first pin,
  /// since the stream was evicted rather than observed. TransportFriendly
  /// defers exactly like feedback would: the move waits for the old home's
  /// in-flight prefix to drain.
  void repin(std::uint32_t stream, unsigned queue) AFF_EXCLUDES(mu_);

  [[nodiscard]] NicDispatchStats stats() const AFF_EXCLUDES(mu_);

 private:
  const NicDispatchMode mode_;
  const unsigned num_queues_;
  const unsigned tfn_window_;
  const ToeplitzHash hash_;
  std::vector<unsigned> indirection_;  // immutable after construction

  // Pin state is an inner lock domain: consumer-feedback calls (noteRun,
  // noteDelivered) may arrive from code holding an engine stack mutex.
  mutable Mutex mu_{"NicDispatcher::mu_"};
  // Flow table: stream -> pinned queue + 1 (0 = unpinned). Grows on demand;
  // stream ids in this repo are dense small integers.
  std::vector<unsigned> pin_ AFF_GUARDED_BY(mu_);
  // TransportFriendly per-stream state, same indexing as pin_:
  //   pending_[s]     — proposed queue + 1 (0 = no proposal pending)
  //   inflight_[s]    — frames dispatched to the current pin, not yet drained
  //   pending_age_[s] — consumptions at the current pin since the proposal
  std::vector<unsigned> pending_ AFF_GUARDED_BY(mu_);
  std::vector<std::uint32_t> inflight_ AFF_GUARDED_BY(mu_);
  std::vector<std::uint32_t> pending_age_ AFF_GUARDED_BY(mu_);
  NicDispatchStats stats_ AFF_GUARDED_BY(mu_);

  [[nodiscard]] unsigned hashQueue(std::uint32_t stream) const noexcept;
  void ensureStream(std::uint32_t stream) AFF_REQUIRES(mu_);
  bool applyPendingLocked(std::uint32_t stream) AFF_REQUIRES(mu_);
};

}  // namespace affinity::net
