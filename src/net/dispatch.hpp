// dispatch.hpp — the NIC receive-side dispatch front-end.
//
// Models the two hardware stream→queue classifiers modern NICs offer ahead
// of whatever software scheduling policy runs behind them:
//
//   kDirect       — the repo's historical `stream % queues` map (the paper's
//                   idealized classifier). Bit-identical to pre-front-end
//                   behavior, so it is the default everywhere.
//   kRss          — receive-side scaling: Toeplitz hash of the stream's
//                   synthetic 4-tuple indexes a 128-entry indirection table.
//                   Stateless, so per-stream order is preserved by
//                   construction.
//   kFlowDirector — Intel Flow Director's pinning behavior: a flow table
//                   remembers the queue each stream last ran on and routes
//                   new arrivals there. When the consumer side re-homes a
//                   stream (a steal, a watchdog failover), the pin follows —
//                   and packets still queued at the old home are now behind
//                   packets routed to the new one. That migration-reorder
//                   pathology is exactly Wu et al., "Why Does Flow Director
//                   Cause Packet Reordering?" (arXiv:1106.0443), and
//                   tests/ordering_test.cpp reproduces it on purpose.
//
// Thread-safe: the flow table is Mutex-guarded because runtime engines call
// queueOf() from submitters while workers call noteRun() concurrently. The
// simulator calls everything from one thread and pays one uncontended lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/toeplitz.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace affinity::net {

enum class NicDispatchMode : std::uint8_t {
  kDirect,        ///< stream % queues (seed behavior; the default)
  kRss,           ///< Toeplitz hash -> indirection table
  kFlowDirector,  ///< pin to last-used queue; migrates with the consumer
};

[[nodiscard]] const char* nicModeName(NicDispatchMode mode) noexcept;

/// Parses "direct" / "rss" / "flow-director" (scenario INI spelling).
/// Returns true and sets `out` on success.
[[nodiscard]] bool parseNicMode(const std::string& text, NicDispatchMode* out) noexcept;

/// Counters a dispatcher accumulates; exported as net.dispatch.* metrics by
/// whichever runner owns the dispatcher.
struct NicDispatchStats {
  std::uint64_t routed = 0;      ///< queueOf() calls
  std::uint64_t pins = 0;        ///< FlowDirector: first-seen streams pinned
  std::uint64_t migrations = 0;  ///< FlowDirector: pins moved to a new queue
};

/// One receive-side classifier instance. `num_queues` is the fan-out (worker
/// or processor count); ids returned by queueOf() are in [0, num_queues).
class NicDispatcher {
 public:
  static constexpr std::size_t kIndirectionEntries = 128;  // RSS spec size

  NicDispatcher(NicDispatchMode mode, unsigned num_queues);

  [[nodiscard]] NicDispatchMode mode() const noexcept { return mode_; }
  [[nodiscard]] unsigned numQueues() const noexcept { return num_queues_; }

  /// Routes a stream to a queue. FlowDirector pins first-seen streams via
  /// the RSS hash and then follows noteRun()/repin() updates.
  [[nodiscard]] unsigned queueOf(std::uint32_t stream) AFF_EXCLUDES(mu_);

  /// FlowDirector learns placement: the consumer on `queue` just ran
  /// `stream`, so future arrivals route there. Counts a migration when the
  /// pin actually moves. No-op for stateless modes.
  void noteRun(std::uint32_t stream, unsigned queue) AFF_EXCLUDES(mu_);

  /// Forced re-pin (watchdog failover, explicit rebalance): same table
  /// update as noteRun but counted as a migration even for a first pin,
  /// since the stream was evicted rather than observed.
  void repin(std::uint32_t stream, unsigned queue) AFF_EXCLUDES(mu_);

  [[nodiscard]] NicDispatchStats stats() const AFF_EXCLUDES(mu_);

 private:
  const NicDispatchMode mode_;
  const unsigned num_queues_;
  const ToeplitzHash hash_;
  std::vector<unsigned> indirection_;  // immutable after construction

  mutable Mutex mu_;
  // Flow table: stream -> pinned queue + 1 (0 = unpinned). Grows on demand;
  // stream ids in this repo are dense small integers.
  std::vector<unsigned> pin_ AFF_GUARDED_BY(mu_);
  NicDispatchStats stats_ AFF_GUARDED_BY(mu_);

  [[nodiscard]] unsigned hashQueue(std::uint32_t stream) const noexcept;
};

}  // namespace affinity::net
