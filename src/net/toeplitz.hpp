// toeplitz.hpp — the Toeplitz hash used by NIC receive-side scaling (RSS).
//
// RSS-capable NICs hash each packet's n-tuple with a keyed Toeplitz hash and
// use the low bits to index an indirection table of receive queues; the
// Microsoft RSS specification fixes the algorithm and publishes a 40-byte
// verification key with known input/output vectors (pinned by net_test).
// This is the classifier the paper's scheduling policies assume exists: a
// deterministic, stateless stream→queue map with good spread.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace affinity::net {

/// Keyed Toeplitz hash over an arbitrary byte string.
class ToeplitzHash {
 public:
  static constexpr std::size_t kKeyBytes = 40;

  /// The Microsoft RSS verification key (every NIC vendor's default).
  ToeplitzHash() noexcept;
  explicit ToeplitzHash(const std::array<std::uint8_t, kKeyBytes>& key) noexcept : key_(key) {}

  /// Hash of `data` (the n-tuple, big-endian fields, per the RSS spec).
  /// Inputs longer than kKeyBytes - 4 wrap the key (non-standard but
  /// deterministic; RSS tuples are at most 36 bytes so the spec range is
  /// exact).
  [[nodiscard]] std::uint32_t hash(std::span<const std::uint8_t> data) const noexcept;

  [[nodiscard]] const std::array<std::uint8_t, kKeyBytes>& key() const noexcept { return key_; }

 private:
  std::array<std::uint8_t, kKeyBytes> key_;
};

/// The 12-byte IPv4 2-tuple+ports input (src_ip, dst_ip, src_port, dst_port,
/// all big-endian) the RSS spec hashes for TCP/UDP.
[[nodiscard]] std::array<std::uint8_t, 12> rssTuple(std::uint32_t src_ip, std::uint32_t dst_ip,
                                                    std::uint16_t src_port,
                                                    std::uint16_t dst_port) noexcept;

/// The synthetic 4-tuple this repo uses for a stream id: every stream is a
/// distinct (src_ip, src_port) talking to the host's fixed (dst_ip, port)
/// — the same convention as workload/frame_gen.
[[nodiscard]] std::uint32_t rssHashForStream(const ToeplitzHash& h, std::uint32_t stream) noexcept;

}  // namespace affinity::net
