#include "net/toeplitz.hpp"

namespace affinity::net {
namespace {

// The verification key published in the Microsoft RSS specification; the
// known-answer vectors it comes with are pinned in tests/net_test.cpp.
constexpr std::array<std::uint8_t, ToeplitzHash::kKeyBytes> kMicrosoftKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3,
    0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3,
    0x80, 0x30, 0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

}  // namespace

ToeplitzHash::ToeplitzHash() noexcept : key_(kMicrosoftKey) {}

std::uint32_t ToeplitzHash::hash(std::span<const std::uint8_t> data) const noexcept {
  // Shift register holding the key bits still ahead of the input cursor: the
  // top 32 bits are the window XORed in when the current input bit is set.
  std::uint64_t window = 0;
  for (std::size_t i = 0; i < 8; ++i) window = (window << 8) | key_[i];
  std::size_t refill = 8;
  std::uint32_t out = 0;
  for (const std::uint8_t byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1U) out ^= static_cast<std::uint32_t>(window >> 32);
      window <<= 1;
    }
    window |= key_[refill % kKeyBytes];
    ++refill;
  }
  return out;
}

std::array<std::uint8_t, 12> rssTuple(std::uint32_t src_ip, std::uint32_t dst_ip,
                                      std::uint16_t src_port, std::uint16_t dst_port) noexcept {
  std::array<std::uint8_t, 12> tuple{};
  const auto put32 = [&tuple](std::size_t at, std::uint32_t v) {
    tuple[at] = static_cast<std::uint8_t>(v >> 24);
    tuple[at + 1] = static_cast<std::uint8_t>(v >> 16);
    tuple[at + 2] = static_cast<std::uint8_t>(v >> 8);
    tuple[at + 3] = static_cast<std::uint8_t>(v);
  };
  put32(0, src_ip);
  put32(4, dst_ip);
  tuple[8] = static_cast<std::uint8_t>(src_port >> 8);
  tuple[9] = static_cast<std::uint8_t>(src_port);
  tuple[10] = static_cast<std::uint8_t>(dst_port >> 8);
  tuple[11] = static_cast<std::uint8_t>(dst_port);
  return tuple;
}

std::uint32_t rssHashForStream(const ToeplitzHash& h, std::uint32_t stream) noexcept {
  // One synthetic client per stream on the 10/8 net, all talking to the
  // host's media port — the same shape workload/frame_gen synthesizes.
  const std::uint32_t src_ip = 0x0A000001U + stream;
  const std::uint16_t src_port = static_cast<std::uint16_t>(40000U + (stream % 16384U));
  const std::uint32_t dst_ip = 0xC0A80101U;  // 192.168.1.1
  const std::uint16_t dst_port = 9000;
  const auto tuple = rssTuple(src_ip, dst_ip, src_port, dst_port);
  return h.hash(tuple);
}

}  // namespace affinity::net
