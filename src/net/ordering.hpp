// ordering.hpp — per-stream delivery-order checker.
//
// Streams carry monotonically increasing sequence numbers stamped at submit
// time; a consumer-side OrderingChecker records each delivery and counts
// regressions (a sequence number at or below the stream's last one). Any
// in-order transport keeps every stream's sequence strictly increasing at
// the delivery point; FlowDirector-with-migration provably does not
// (Wu et al., arXiv:1106.0443), and tests/ordering_test.cpp uses this
// checker to pin both facts.
//
// Beyond the aggregate counts, the checker captures each stream's *first*
// offending delivery (the sequence that arrived behind the watermark, and
// the watermark it arrived behind) so an A-B test failure prints the exact
// stranded prefix instead of a bare count.
//
// Thread-safe: engines deliver from many worker threads at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace affinity::net {

/// The first out-of-order (or duplicate) delivery observed on one stream.
struct OrderingFault {
  std::uint32_t stream = 0;
  std::uint64_t seq = 0;        ///< the offending sequence number
  std::uint64_t watermark = 0;  ///< highest seq the stream had already shown
};

struct OrderingReport {
  std::uint64_t observed = 0;    ///< record() calls
  std::uint64_t reordered = 0;   ///< seq strictly below the stream's last
  std::uint64_t duplicated = 0;  ///< seq equal to the stream's last
  std::uint64_t streams = 0;     ///< distinct streams seen
  /// First offense per faulted stream, in discovery order; capped at
  /// kMaxFaults entries so the report stays bounded under a pathology.
  std::vector<OrderingFault> faults;

  static constexpr std::size_t kMaxFaults = 16;

  [[nodiscard]] bool inOrder() const noexcept { return reordered == 0 && duplicated == 0; }

  /// Human-readable fault lines ("stream 3: seq 0 arrived behind watermark
  /// 4") for test-failure messages; empty string when in order.
  [[nodiscard]] std::string describeFaults() const;
};

class OrderingChecker {
 public:
  /// Records delivery of `seq` on `stream`. Sequence numbers are per-stream,
  /// start anywhere, and must strictly increase for an in-order verdict.
  void record(std::uint32_t stream, std::uint64_t seq) AFF_EXCLUDES(mu_);

  [[nodiscard]] OrderingReport report() const AFF_EXCLUDES(mu_);

 private:
  // Taken inside the engines' delivered-observer callback, i.e. while an
  // engine stack mutex is held — the one real cross-class nesting in the
  // tree, so the order is declared from both sides (the AFTER here is the
  // redundant mirror of the engines' BEFORE; flipping it is the lint
  // mutation demo in tests/lint_test.cpp).
  mutable Mutex mu_{"OrderingChecker::mu_"}
      AFF_ACQUIRED_AFTER(LockingEngine::stack_mu_, DispatchEngine::stack_mu_);
  // last_[stream] = last seq + 1 (0 = stream unseen); dense small ids.
  std::vector<std::uint64_t> last_ AFF_GUARDED_BY(mu_);
  // faulted_[stream] = 1 once the stream's first offense is captured.
  std::vector<std::uint8_t> faulted_ AFF_GUARDED_BY(mu_);
  OrderingReport report_ AFF_GUARDED_BY(mu_);
};

}  // namespace affinity::net
