#include "net/ordering.hpp"

namespace affinity::net {

void OrderingChecker::record(std::uint32_t stream, std::uint64_t seq) {
  MutexLock lock(mu_);
  ++report_.observed;
  if (stream >= last_.size()) last_.resize(stream + 1, 0);
  const std::uint64_t entry = seq + 1;
  if (last_[stream] == 0) {
    ++report_.streams;
  } else if (entry == last_[stream]) {
    ++report_.duplicated;
    return;  // keep the watermark
  } else if (entry < last_[stream]) {
    ++report_.reordered;
    return;  // keep the high watermark so one stall counts every late frame
  }
  last_[stream] = entry;
}

OrderingReport OrderingChecker::report() const {
  MutexLock lock(mu_);
  return report_;
}

}  // namespace affinity::net
