#include "net/ordering.hpp"

namespace affinity::net {

std::string OrderingReport::describeFaults() const {
  std::string out;
  for (const OrderingFault& f : faults) {
    out += "stream " + std::to_string(f.stream) + ": seq " + std::to_string(f.seq) +
           " arrived behind watermark " + std::to_string(f.watermark) + "\n";
  }
  const std::uint64_t faulted_streams = static_cast<std::uint64_t>(faults.size());
  if (reordered + duplicated > 0 && faulted_streams == kMaxFaults)
    out += "(first " + std::to_string(kMaxFaults) + " faulted streams shown)\n";
  return out;
}

void OrderingChecker::record(std::uint32_t stream, std::uint64_t seq) {
  MutexLock lock(mu_);
  ++report_.observed;
  if (stream >= last_.size()) {
    last_.resize(stream + 1, 0);
    faulted_.resize(stream + 1, 0);
  }
  const std::uint64_t entry = seq + 1;
  if (last_[stream] == 0) {
    ++report_.streams;
  } else if (entry <= last_[stream]) {
    if (entry == last_[stream]) {
      ++report_.duplicated;
    } else {
      ++report_.reordered;
    }
    if (!faulted_[stream] && report_.faults.size() < OrderingReport::kMaxFaults) {
      faulted_[stream] = 1;
      report_.faults.push_back(OrderingFault{stream, seq, last_[stream] - 1});
    }
    return;  // keep the high watermark so one stall counts every late frame
  }
  last_[stream] = entry;
}

OrderingReport OrderingChecker::report() const {
  MutexLock lock(mu_);
  return report_;
}

}  // namespace affinity::net
