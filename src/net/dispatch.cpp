#include "net/dispatch.hpp"

#include "util/check.hpp"

namespace affinity::net {

const char* nicModeName(NicDispatchMode mode) noexcept {
  switch (mode) {
    case NicDispatchMode::kDirect: return "direct";
    case NicDispatchMode::kRss: return "rss";
    case NicDispatchMode::kFlowDirector: return "flow-director";
    case NicDispatchMode::kTransportFriendly: return "tfn";
  }
  return "?";
}

bool parseNicMode(const std::string& text, NicDispatchMode* out) noexcept {
  if (text == "direct") {
    *out = NicDispatchMode::kDirect;
  } else if (text == "rss") {
    *out = NicDispatchMode::kRss;
  } else if (text == "flow-director" || text == "fdir") {
    *out = NicDispatchMode::kFlowDirector;
  } else if (text == "tfn" || text == "transport-friendly") {
    *out = NicDispatchMode::kTransportFriendly;
  } else {
    return false;
  }
  return true;
}

NicDispatcher::NicDispatcher(NicDispatchMode mode, unsigned num_queues, unsigned tfn_window)
    : mode_(mode), num_queues_(num_queues), tfn_window_(tfn_window) {
  AFF_CHECK(num_queues >= 1);
  indirection_.resize(kIndirectionEntries);
  // Default round-robin table population, as RSS drivers program at init.
  for (std::size_t i = 0; i < kIndirectionEntries; ++i)
    indirection_[i] = static_cast<unsigned>(i % num_queues_);
}

unsigned NicDispatcher::hashQueue(std::uint32_t stream) const noexcept {
  const std::uint32_t h = rssHashForStream(hash_, stream);
  return indirection_[h % kIndirectionEntries];
}

void NicDispatcher::ensureStream(std::uint32_t stream) {
  if (stream >= pin_.size()) pin_.resize(stream + 1, 0);
  if (mode_ == NicDispatchMode::kTransportFriendly && stream >= inflight_.size()) {
    pending_.resize(stream + 1, 0);
    inflight_.resize(stream + 1, 0);
    pending_age_.resize(stream + 1, 0);
  }
}

// Applies a parked repin proposal iff the old home has fully drained.
// Returns true when the pin actually moved — the caller's cue to charge a
// cold transient for the deliberate migration.
bool NicDispatcher::applyPendingLocked(std::uint32_t stream) {
  if (pending_[stream] == 0 || inflight_[stream] != 0) return false;
  pin_[stream] = pending_[stream];
  pending_[stream] = 0;
  pending_age_[stream] = 0;
  ++stats_.migrations;
  ++stats_.tfn_applied;
  return true;
}

unsigned NicDispatcher::queueOf(std::uint32_t stream) {
  switch (mode_) {
    case NicDispatchMode::kDirect: {
      MutexLock lock(mu_);
      ++stats_.routed;
      return stream % num_queues_;
    }
    case NicDispatchMode::kRss: {
      MutexLock lock(mu_);
      ++stats_.routed;
      return hashQueue(stream);
    }
    case NicDispatchMode::kFlowDirector:
    case NicDispatchMode::kTransportFriendly: {
      MutexLock lock(mu_);
      ++stats_.routed;
      ensureStream(stream);
      if (pin_[stream] == 0) {
        // Toeplitz seed placement for first-seen streams keeps RSS-level
        // load spread; only subsequent state updates diverge by mode.
        pin_[stream] = hashQueue(stream) + 1;
        ++stats_.pins;
      }
      return pin_[stream] - 1;
    }
  }
  return 0;  // unreachable
}

void NicDispatcher::noteDispatched(std::uint32_t stream) {
  if (mode_ != NicDispatchMode::kTransportFriendly) return;
  MutexLock lock(mu_);
  ensureStream(stream);
  ++inflight_[stream];
}

bool NicDispatcher::noteRun(std::uint32_t stream, unsigned queue) {
  if (mode_ == NicDispatchMode::kFlowDirector) {
    MutexLock lock(mu_);
    ensureStream(stream);
    const unsigned entry = queue + 1;
    if (pin_[stream] == entry) return false;
    if (pin_[stream] == 0) {
      ++stats_.pins;
    } else {
      ++stats_.migrations;
    }
    pin_[stream] = entry;
    return false;
  }
  if (mode_ != NicDispatchMode::kTransportFriendly) return false;
  MutexLock lock(mu_);
  ensureStream(stream);
  if (inflight_[stream] > 0) --inflight_[stream];
  ++stats_.tfn_feedback;
  const unsigned entry = queue + 1;
  if (pin_[stream] == 0) {
    // Feedback ahead of any routed arrival: take it as the first placement.
    pin_[stream] = entry;
    ++stats_.pins;
  } else if (entry != pin_[stream]) {
    // The consumer moved (a steal, a failover): park the proposal; it
    // applies only once the old home's in-flight prefix drains. Repeated
    // feedback from the same new consumer reinforces without re-arming.
    if (pending_[stream] != entry) {
      pending_[stream] = entry;
      pending_age_[stream] = 0;
      ++stats_.tfn_deferred;
    }
  } else if (pending_[stream] != 0) {
    // The current pin is still consuming: the parked proposal ages, and a
    // proposal that loses the race past the window was a transient — drop
    // it rather than migrate on stale evidence.
    if (++pending_age_[stream] > tfn_window_) {
      pending_[stream] = 0;
      pending_age_[stream] = 0;
      ++stats_.tfn_stale;
    }
  }
  return applyPendingLocked(stream);
}

void NicDispatcher::noteDrained(std::uint32_t stream, bool stale_feedback) {
  if (mode_ != NicDispatchMode::kTransportFriendly) return;
  MutexLock lock(mu_);
  ensureStream(stream);
  if (inflight_[stream] > 0) --inflight_[stream];
  if (stale_feedback) ++stats_.tfn_stale;
  (void)applyPendingLocked(stream);
}

void NicDispatcher::repin(std::uint32_t stream, unsigned queue) {
  if (mode_ == NicDispatchMode::kFlowDirector) {
    MutexLock lock(mu_);
    ensureStream(stream);
    const unsigned entry = queue + 1;
    if (pin_[stream] == entry) return;
    pin_[stream] = entry;
    ++stats_.migrations;
    return;
  }
  if (mode_ != NicDispatchMode::kTransportFriendly) return;
  MutexLock lock(mu_);
  ensureStream(stream);
  const unsigned entry = queue + 1;
  if (pin_[stream] == entry) {
    // Re-pinned back to the current home: cancel any parked proposal.
    pending_[stream] = 0;
    pending_age_[stream] = 0;
    return;
  }
  if (inflight_[stream] == 0) {
    // Old home already drained — the move is safe immediately.
    pin_[stream] = entry;
    pending_[stream] = 0;
    pending_age_[stream] = 0;
    ++stats_.migrations;
    return;
  }
  if (pending_[stream] != entry) {
    pending_[stream] = entry;
    pending_age_[stream] = 0;
    ++stats_.tfn_deferred;
  }
}

NicDispatchStats NicDispatcher::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace affinity::net
