#include "net/dispatch.hpp"

#include "util/check.hpp"

namespace affinity::net {

const char* nicModeName(NicDispatchMode mode) noexcept {
  switch (mode) {
    case NicDispatchMode::kDirect: return "direct";
    case NicDispatchMode::kRss: return "rss";
    case NicDispatchMode::kFlowDirector: return "flow-director";
  }
  return "?";
}

bool parseNicMode(const std::string& text, NicDispatchMode* out) noexcept {
  if (text == "direct") {
    *out = NicDispatchMode::kDirect;
  } else if (text == "rss") {
    *out = NicDispatchMode::kRss;
  } else if (text == "flow-director" || text == "fdir") {
    *out = NicDispatchMode::kFlowDirector;
  } else {
    return false;
  }
  return true;
}

NicDispatcher::NicDispatcher(NicDispatchMode mode, unsigned num_queues)
    : mode_(mode), num_queues_(num_queues) {
  AFF_CHECK(num_queues >= 1);
  indirection_.resize(kIndirectionEntries);
  // Default round-robin table population, as RSS drivers program at init.
  for (std::size_t i = 0; i < kIndirectionEntries; ++i)
    indirection_[i] = static_cast<unsigned>(i % num_queues_);
}

unsigned NicDispatcher::hashQueue(std::uint32_t stream) const noexcept {
  const std::uint32_t h = rssHashForStream(hash_, stream);
  return indirection_[h % kIndirectionEntries];
}

unsigned NicDispatcher::queueOf(std::uint32_t stream) {
  switch (mode_) {
    case NicDispatchMode::kDirect: {
      MutexLock lock(mu_);
      ++stats_.routed;
      return stream % num_queues_;
    }
    case NicDispatchMode::kRss: {
      MutexLock lock(mu_);
      ++stats_.routed;
      return hashQueue(stream);
    }
    case NicDispatchMode::kFlowDirector: {
      MutexLock lock(mu_);
      ++stats_.routed;
      if (stream >= pin_.size()) pin_.resize(stream + 1, 0);
      if (pin_[stream] == 0) {
        pin_[stream] = hashQueue(stream) + 1;
        ++stats_.pins;
      }
      return pin_[stream] - 1;
    }
  }
  return 0;  // unreachable
}

void NicDispatcher::noteRun(std::uint32_t stream, unsigned queue) {
  if (mode_ != NicDispatchMode::kFlowDirector) return;
  MutexLock lock(mu_);
  if (stream >= pin_.size()) pin_.resize(stream + 1, 0);
  const unsigned entry = queue + 1;
  if (pin_[stream] == entry) return;
  if (pin_[stream] == 0) {
    ++stats_.pins;
  } else {
    ++stats_.migrations;
  }
  pin_[stream] = entry;
}

void NicDispatcher::repin(std::uint32_t stream, unsigned queue) {
  if (mode_ != NicDispatchMode::kFlowDirector) return;
  MutexLock lock(mu_);
  if (stream >= pin_.size()) pin_.resize(stream + 1, 0);
  const unsigned entry = queue + 1;
  if (pin_[stream] == entry) return;
  pin_[stream] = entry;
  ++stats_.migrations;
}

NicDispatchStats NicDispatcher::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace affinity::net
