// dispatch_engine.hpp — a real-thread engine with pluggable dispatch policy.
//
// The LockingEngine's shared queue gives no placement control; this engine
// adds a software dispatcher (mirroring the paper's scheduling layer): the
// submitting thread routes each frame to a worker per policy —
//
//   kRoundRobin  — no affinity (the FCFS baseline),
//   kMruWorker   — the most-recently-*dispatched-to* worker whose queue has
//                  room (concentrates work to keep caches warm),
//   kStreamHash  — stream -> worker (the Wired-Streams analogue).
//
// Workers share one ProtocolStack under a mutex (the Locking paradigm), so
// the policies differ only in cache placement — on real multicore hardware
// kStreamHash keeps each stream's session state in one core's cache. On the
// CI host (1 CPU) the policies are functionally identical, which the tests
// exploit to verify correctness invariants.
#pragma once

#include <atomic>

#include "runtime/engine.hpp"

namespace affinity {

/// Worker-placement policy for DispatchEngine.
enum class DispatchPolicy : std::uint8_t { kRoundRobin, kMruWorker, kStreamHash };

const char* dispatchPolicyName(DispatchPolicy p) noexcept;

/// Locking-paradigm engine with per-worker queues and a placement policy.
class DispatchEngine {
 public:
  DispatchEngine(unsigned workers, DispatchPolicy policy, HostConfig host,
                 std::size_t ring_capacity = 1024)
      : DispatchEngine(workers, policy, host, optionsWithCapacity(ring_capacity)) {}
  DispatchEngine(unsigned workers, DispatchPolicy policy, HostConfig host,
                 const EngineOptions& options);
  ~DispatchEngine() { stop(); }

  /// Opens a UDP port on the shared stack (call before start()).
  void openPort(std::uint16_t port, std::size_t session_queue = 1024);

  void start();

  /// Routes the frame per the policy. When every candidate ring is full the
  /// overload policy applies (kBlock waits with bounded backoff, limited by
  /// the submit deadline when set). False once stopped or rejected —
  /// stats() splits the causes (rejected_stopped vs rejected_queue_full).
  bool submit(WorkItem item);

  /// Closes intake, drains, joins (idempotent).
  void stop();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] DispatchPolicy policy() const noexcept { return policy_; }

  /// stats() snapshot into `reg` under `prefix` (see exportEngineStats).
  void exportMetrics(obs::MetricsRegistry& reg,
                     const std::string& prefix = "engine.dispatch") const {
    exportEngineStats(stats(), reg, prefix);
  }

  /// The worker the policy would pick right now (exposed for tests).
  [[nodiscard]] unsigned route(std::uint32_t stream);

 private:
  struct PerWorker {
    std::unique_ptr<SpscRing<WorkItem>> ring;
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> delivered{0};
    std::array<std::uint64_t, kNumDropReasons> reasons{};  // owner-written
    LatencyRecorder latency;
    std::uint32_t trace_track = 0;
  };

  static EngineOptions optionsWithCapacity(std::size_t capacity) {
    EngineOptions o;
    o.queue_capacity = capacity;
    return o;
  }

  unsigned workers_;
  DispatchPolicy policy_;
  EngineOptions options_;
  // Shared stack (Locking paradigm): receiveFrame always runs under
  // stack_mu_; the dispatch policies differ only in cache placement.
  Mutex stack_mu_;
  ProtocolStack stack_ AFF_GUARDED_BY(stack_mu_);
  std::vector<PerWorker> per_worker_;
  WorkerPool pool_;
  std::atomic<bool> intake_open_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_stopped_{0};
  unsigned rr_next_ = 0;   ///< round-robin cursor (submitter thread only)
  unsigned mru_last_ = 0;  ///< most recently dispatched-to worker
  obs::TraceSession* trace_ = nullptr;  // captured at start(); see LockingEngine
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace affinity
